#!/usr/bin/env python3
"""mouse_lint: repo-specific determinism lint for the MOUSE tree.

Every subsystem since PR 1 stakes its correctness on one invariant:
stats, campaign reports and serve traces are byte-identical across
thread counts.  This checker enforces the source-level discipline that
invariant rests on, at lint time instead of at campaign-diff time.

Rules (see docs/STATIC_ANALYSIS.md for the full rationale):

  unordered-iteration   No iteration over std::unordered_{map,set}
                        in src/exp, src/inject, src/obs, src/serve —
                        hash-order leaks break byte-identity of folded
                        stats, JSON reports and traces.
  host-clock            No std::chrono::system_clock, time(), rand(),
                        srand() or std::random_device anywhere in the
                        tree — simulation results must depend only on
                        SplitMix seeds.  Legitimate host-timing sites
                        live in src/obs, src/serve and the bench
                        harnesses, and carry an allow() suppression;
                        the suppression is refused elsewhere.
  schema-constants      Every JSON "schema"/"*_schema" emitter and
                        version check must reference the constants in
                        src/common/schema_versions.hh, never an inline
                        number.
  obs-hook-args         The gate argument of MOUSE_OBS_HOOK is
                        evaluated even when telemetry is off, so it
                        must be a plain identifier / member chain
                        (at most a trailing .get()) — never a call or
                        allocating expression.
  float-accumulate      No float/double accumulation via
                        std::accumulate / std::reduce /
                        std::transform_reduce in src/exp, src/inject,
                        src/obs, src/serve — folds must run in a
                        deterministic fixed order (index-order loops,
                        StatRegistry::mergeFrom), not in whatever
                        order a container yields.

Suppressions: a finding line (or the pure-comment line directly above
it) may carry

    // mouse-lint: allow(<rule-id>) -- <justification>

The justification is mandatory; an allow() without one is itself a
finding.  host-clock suppressions are only honoured under src/obs,
src/serve and bench/.

Output: human-readable findings on stdout, or a machine document with
--json ({"lint_schema":1,...}).  Exit codes: 0 clean, 2 findings,
1 operational error (unreadable input, malformed compile_commands).
"""

import argparse
import json
import os
import re
import sys

LINT_SCHEMA_VERSION = 1

# Directories (relative to the repo root) whose contents feed stat
# folding, JSON emission or report assembly.
ORDER_SENSITIVE_DIRS = ("src/exp", "src/inject", "src/obs", "src/serve")
# Directories whose host-timing spans may legitimately read a host
# clock (behind an allow() suppression): the telemetry/serving
# host-timeline code, and the bench harnesses whose reports carry a
# google-benchmark-style context date.
HOST_TIMING_DIRS = ("src/obs", "src/serve", "bench")
# Scanned by default, next to anything compile_commands.json names.
DEFAULT_SCAN_DIRS = ("src", "tools", "tests", "bench", "examples")
# Never scanned by default discovery: the lint's own known-bad
# fixture corpus (pass it explicitly to lint it).
EXCLUDE_DIRS = ("tests/lint_fixtures",)

CXX_SUFFIXES = (".cc", ".hh", ".cpp", ".hpp", ".h")

SUPPRESS_RE = re.compile(
    r"mouse-lint:\s*allow\(([A-Za-z0-9_-]+)\)\s*(?:--\s*(.*))?$")


class Finding:
    def __init__(self, rule, path, line, message, snippet):
        self.rule = rule
        self.path = path
        self.line = line
        self.message = message
        self.snippet = snippet.strip()

    def as_dict(self):
        return {
            "rule": self.rule,
            "file": self.path,
            "line": self.line,
            "message": self.message,
            "snippet": self.snippet,
        }


class SourceFile:
    """One scanned file: raw text plus a comment/string-blanked view
    with identical line/column layout, and its suppression table."""

    def __init__(self, root, relpath, text):
        self.relpath = relpath
        self.raw = text
        self.raw_lines = text.splitlines()
        # code: comments AND string contents blanked; nocomment:
        # comments blanked, string literals kept (for the schema
        # rule, which inspects emitted JSON keys).
        self.code, self.nocomment = blank_comments_and_strings(text)
        self.code_lines = self.code.splitlines()
        self.nocomment_lines = self.nocomment.splitlines()
        # line -> (rule, justification or None, is_whole_line_comment)
        self.suppressions = {}
        self.used_suppressions = set()
        self._collect_suppressions()

    def _collect_suppressions(self):
        for i, line in enumerate(self.raw_lines, start=1):
            m = SUPPRESS_RE.search(line)
            if not m:
                continue
            whole = self.code_lines[i - 1].strip() == "" if \
                i - 1 < len(self.code_lines) else True
            just = (m.group(2) or "").strip()
            self.suppressions[i] = (m.group(1), just or None, whole)

    def suppression_for(self, line):
        """The allow() covering LINE: on the line itself, or in the
        pure-comment block directly above it (a blank line breaks
        the association)."""
        if line in self.suppressions:
            return line
        prev = line - 1
        while prev >= 1:
            if prev in self.suppressions:
                return prev if self.suppressions[prev][2] else None
            is_comment = (prev - 1 < len(self.code_lines) and
                          self.code_lines[prev - 1].strip() == "" and
                          self.raw_lines[prev - 1].strip() != "")
            if not is_comment:
                return None
            prev -= 1
        return None


def blank_comments_and_strings(text):
    """Two same-layout views of TEXT (every newline and column kept,
    so regex hits keep their true line numbers): one with comments
    and string/char-literal contents replaced by spaces, one with
    only the comments blanked."""
    code = []
    nocomment = []
    i = 0
    n = len(text)
    state = "code"  # code | line | block | str | chr

    def emit(code_c, nocomment_c):
        code.append(code_c)
        nocomment.append(nocomment_c)

    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line"
                emit("  ", "  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block"
                emit("  ", "  ")
                i += 2
                continue
            if c == '"':
                state = "str"
            elif c == "'":
                state = "chr"
            emit(c, c)
        elif state == "line":
            if c == "\n":
                state = "code"
                emit(c, c)
            else:
                emit(" ", " ")
        elif state == "block":
            if c == "*" and nxt == "/":
                state = "code"
                emit("  ", "  ")
                i += 2
                continue
            keep = c if c == "\n" else " "
            emit(keep, keep)
        elif state in ("str", "chr"):
            quote = '"' if state == "str" else "'"
            if c == "\\" and nxt:
                emit("  ", c + nxt)
                i += 2
                continue
            if c == quote:
                state = "code"
                emit(quote, quote)
            elif c == "\n":  # unterminated; resync
                state = "code"
                emit(c, c)
            else:
                emit(" ", c)
        i += 1
    return "".join(code), "".join(nocomment)


def statement_around(lines, idx, max_lines=8):
    """The logical statement starting at LINES[idx] (0-based): joined
    lines up to the terminating ';' or brace, capped at MAX_LINES."""
    parts = []
    for j in range(idx, min(idx + max_lines, len(lines))):
        parts.append(lines[j])
        if ";" in lines[j] or lines[j].rstrip().endswith("{"):
            break
    return " ".join(parts)


def first_macro_arg(text, open_paren):
    """The first comma-separated argument of the call whose '(' is at
    TEXT[open_paren], honouring nested parens/brackets.  Returns
    (arg, ok)."""
    depth = 0
    i = open_paren
    start = open_paren + 1
    while i < len(text):
        c = text[i]
        if c in "([{":
            depth += 1
        elif c in ")]}":
            depth -= 1
            if depth == 0:
                return text[start:i].strip(), True
        elif c == "," and depth == 1:
            return text[start:i].strip(), True
        i += 1
    return "", False


def under(relpath, dirs):
    return any(relpath == d or relpath.startswith(d + "/")
               for d in dirs)


# -- Rule registry ----------------------------------------------------

RULES = {}


def rule(rule_id, description):
    def wrap(fn):
        RULES[rule_id] = {"id": rule_id, "description": description,
                          "check": fn}
        return fn
    return wrap


UNORDERED_DECL_RE = re.compile(
    r"\bunordered_(?:map|set|multimap|multiset)\b")
UNORDERED_VAR_RE = re.compile(
    r"\bunordered_(?:map|set|multimap|multiset)\s*<[^;{}]*?>\s*"
    r"[&*\s]*(\w+)\s*(?:[;={,)(]|$)")
RANGE_FOR_RE = re.compile(r"\bfor\s*\(([^;)]*?):([^;)]*)\)")


@rule("unordered-iteration",
      "no iteration over std::unordered_map/unordered_set in "
      "order-sensitive subsystems (src/exp, src/inject, src/obs, "
      "src/serve): hash order leaks into folded stats and reports")
def check_unordered_iteration(sf, findings):
    if not under(sf.relpath, ORDER_SENSITIVE_DIRS):
        return
    names = set()
    for m in UNORDERED_VAR_RE.finditer(sf.code):
        names.add(m.group(1))
    for i, line in enumerate(sf.code_lines, start=1):
        for m in RANGE_FOR_RE.finditer(line):
            expr = m.group(2).strip()
            base = re.split(r"[.\->\[(]", expr, 1)[0].strip()
            if UNORDERED_DECL_RE.search(expr) or base in names:
                findings.append(Finding(
                    "unordered-iteration", sf.relpath, i,
                    f"range-for over unordered container '{expr}': "
                    "iterate a sorted/index-ordered copy instead",
                    sf.raw_lines[i - 1]))
        for name in names:
            if re.search(rf"\b{re.escape(name)}\s*\.\s*"
                         r"c?(?:begin|end|rbegin|rend)\s*\(", line):
                findings.append(Finding(
                    "unordered-iteration", sf.relpath, i,
                    f"iterator over unordered container '{name}': "
                    "hash order is not deterministic across "
                    "platforms or library versions",
                    sf.raw_lines[i - 1]))


HOST_CLOCK_PATTERNS = (
    (re.compile(r"\bsystem_clock\b"), "std::chrono::system_clock"),
    (re.compile(r"(?<![\w.:>])s?rand\s*\("), "rand()/srand()"),
    (re.compile(r"\brandom_device\b"), "std::random_device"),
    (re.compile(r"(?<![\w.:>])time\s*\("), "time()"),
    (re.compile(r"\bstd::time\s*\("), "std::time()"),
    (re.compile(r"\bgettimeofday\s*\("), "gettimeofday()"),
)


@rule("host-clock",
      "no wall-clock / ambient-randomness reads outside the "
      "host-timing spans of src/obs and src/serve: simulated results "
      "must depend only on SplitMix seeds")
def check_host_clock(sf, findings):
    for i, line in enumerate(sf.code_lines, start=1):
        for pat, what in HOST_CLOCK_PATTERNS:
            if pat.search(line):
                findings.append(Finding(
                    "host-clock", sf.relpath, i,
                    f"{what} is nondeterministic input; derive "
                    "randomness from SplitMix seeds and timing from "
                    "the simulated clock",
                    sf.raw_lines[i - 1]))


SCHEMA_KEY_RE = re.compile(r'\\"(\w*schema)\\":')
SCHEMA_PLAIN_KEY_RE = re.compile(r'"(\w*schema)"(?!\s*:)')
SCHEMA_CONST_RE = re.compile(r"\bk\w*SchemaVersion\b")


@rule("schema-constants",
      "JSON schema-version emitters and checks must reference the "
      "constants in src/common/schema_versions.hh, not inline "
      "numbers")
def check_schema_constants(sf, findings):
    for i, line in enumerate(sf.nocomment_lines, start=1):
        for m in SCHEMA_KEY_RE.finditer(line):
            rest = line[m.end():]
            stmt = statement_around(sf.nocomment_lines, i - 1)
            if re.match(r"\s*\d", rest):
                findings.append(Finding(
                    "schema-constants", sf.relpath, i,
                    f'"{m.group(1)}" emitted with an inline version '
                    "number; reference "
                    "common/schema_versions.hh instead",
                    line))
            elif not SCHEMA_CONST_RE.search(stmt):
                findings.append(Finding(
                    "schema-constants", sf.relpath, i,
                    f'"{m.group(1)}" emitter does not reference a '
                    "k*SchemaVersion constant from "
                    "common/schema_versions.hh",
                    line))
        # Consumer-side checks: scanning for the key and comparing
        # the scanned value against a bare number.
        for m in SCHEMA_PLAIN_KEY_RE.finditer(line):
            stmt = statement_around(sf.nocomment_lines, i - 1)
            if re.search(r"[!=]=\s*\d", stmt) and \
                    not SCHEMA_CONST_RE.search(stmt):
                findings.append(Finding(
                    "schema-constants", sf.relpath, i,
                    f'"{m.group(1)}" version check compares against '
                    "an inline number; reference "
                    "common/schema_versions.hh instead",
                    line))


GATE_OK_RE = re.compile(
    r"^[A-Za-z_]\w*(?:(?:->|\.)[A-Za-z_]\w*)*(?:\.get\(\))?$")


@rule("obs-hook-args",
      "the gate argument of MOUSE_OBS_HOOK is evaluated even when "
      "telemetry is off, so it must be a plain identifier/member "
      "chain — zero cost when off")
def check_obs_hook_args(sf, findings):
    for m in re.finditer(r"\bMOUSE_OBS_HOOK\s*\(", sf.code):
        line = sf.code.count("\n", 0, m.start()) + 1
        # Skip the macro's own definition (telemetry.hh).
        line_text = sf.code_lines[line - 1].lstrip()
        if line_text.startswith("#") or "#define" in line_text:
            continue
        gate, ok = first_macro_arg(sf.code, m.end() - 1)
        gate = " ".join(gate.split())
        if not ok:
            continue  # unterminated (end of file); compiler's problem
        if not GATE_OK_RE.match(gate.replace(" ", "")):
            findings.append(Finding(
                "obs-hook-args", sf.relpath, line,
                f"MOUSE_OBS_HOOK gate '{gate}' is not a plain "
                "identifier/member chain; it runs even with "
                "telemetry off, so hoist calls or allocations out",
                sf.raw_lines[line - 1]))


FLOAT_ACCUM_RE = re.compile(
    r"\bstd::(accumulate|reduce|transform_reduce)\s*\(")
FLOATISH_RE = re.compile(
    r"\d\.\d|\d\.[fe)]|\bfloat\b|\bdouble\b|\d+\.\s*[,)]|\d+f\b")


@rule("float-accumulate",
      "no float/double accumulation via std::accumulate/std::reduce "
      "in order-sensitive subsystems: FP addition is not "
      "associative, so fold in a deterministic fixed order instead")
def check_float_accumulate(sf, findings):
    if not under(sf.relpath, ORDER_SENSITIVE_DIRS):
        return
    for i, line in enumerate(sf.code_lines, start=1):
        m = FLOAT_ACCUM_RE.search(line)
        if not m:
            continue
        stmt = statement_around(sf.code_lines, i - 1)
        if m.group(1) != "accumulate" or FLOATISH_RE.search(stmt):
            findings.append(Finding(
                "float-accumulate", sf.relpath, i,
                f"std::{m.group(1)} over a container folds in "
                "container order; use an index-ordered loop or the "
                "StatRegistry merge discipline so sums are "
                "bit-identical across thread counts",
                sf.raw_lines[i - 1]))


SOURCE_POWER_RE = re.compile(r"\bsourcePower\b")


@rule("source-power",
      "the scalar HarvestConfig::sourcePower field was replaced by "
      "SourceSpec (docs/HARVESTING.md); outside src/harvest the "
      "identifier must not reappear")
def check_source_power(sf, findings):
    if under(sf.relpath, ("src/harvest",)):
        return
    for i, line in enumerate(sf.code_lines, start=1):
        if SOURCE_POWER_RE.search(line):
            findings.append(Finding(
                "source-power", sf.relpath, i,
                "sourcePower is the retired scalar harvest field; "
                "describe the environment with a SourceSpec "
                "(SourceSpec::constant(w) for the old meaning)",
                sf.raw_lines[i - 1]))


SONIC_MODEL_RE = re.compile(r"\bSonicModel\b")


@rule("sonic-model",
      "SONIC runs through the scheme entry points of "
      "baseline/sonic_scheme.hh (or the \"sonic\" selector); outside "
      "src/baseline the SonicModel class must not be used directly")
def check_sonic_model(sf, findings):
    if under(sf.relpath, ("src/baseline",)):
        return
    for i, line in enumerate(sf.code_lines, start=1):
        if SONIC_MODEL_RE.search(line):
            findings.append(Finding(
                "sonic-model", sf.relpath, i,
                "direct SonicModel use outside src/baseline; call "
                "sonicRunContinuous/sonicRunHarvested "
                "(baseline/sonic_scheme.hh) or select the \"sonic\" "
                "scheme so every system goes through one dispatch",
                sf.raw_lines[i - 1]))


# -- File discovery ---------------------------------------------------

def load_compile_commands(path, root):
    """(files, include_dirs) named by compile_commands.json, both
    restricted to ROOT.  Include dirs are used to chase project
    headers that live outside the default scan dirs."""
    try:
        with open(path) as f:
            entries = json.load(f)
    except OSError as e:
        raise RuntimeError(
            f"cannot read compile_commands '{path}': {e}")
    except json.JSONDecodeError as e:
        raise RuntimeError(f"'{path}' is not valid JSON: {e}")
    if not isinstance(entries, list):
        raise RuntimeError(f"'{path}' is not a compile database")
    files = set()
    incdirs = set()
    for entry in entries:
        directory = entry.get("directory", root)
        fpath = os.path.normpath(
            os.path.join(directory, entry.get("file", "")))
        if fpath.startswith(root + os.sep):
            files.add(fpath)
        command = entry.get("command") or " ".join(
            entry.get("arguments", []))
        for m in re.finditer(r"-I\s*(\S+)", command):
            inc = os.path.normpath(os.path.join(directory, m.group(1)))
            if inc.startswith(root + os.sep) or inc == root:
                incdirs.add(inc)
    return files, incdirs


INCLUDE_RE = re.compile(r'^\s*#\s*include\s*"([^"]+)"', re.M)


def chase_headers(files, incdirs, root):
    """Project headers reachable from FILES via quoted includes,
    resolved against INCDIRS — pulls in headers that new subsystems
    add outside the default scan set."""
    seen = set(files)
    queue = list(files)
    while queue:
        path = queue.pop()
        try:
            with open(path, encoding="utf-8", errors="replace") as f:
                text = f.read()
        except OSError:
            continue
        for m in INCLUDE_RE.finditer(text):
            for inc in [os.path.dirname(path), *incdirs]:
                cand = os.path.normpath(os.path.join(inc, m.group(1)))
                if cand.startswith(root + os.sep) and \
                        os.path.isfile(cand) and cand not in seen:
                    seen.add(cand)
                    queue.append(cand)
                    break
    return seen


def discover_files(root, explicit, compile_commands):
    files = set()
    if explicit:
        for p in explicit:
            ap = os.path.abspath(p)
            if os.path.isdir(ap):
                for dirpath, _, names in os.walk(ap):
                    files.update(os.path.join(dirpath, n)
                                 for n in names
                                 if n.endswith(CXX_SUFFIXES))
            elif os.path.isfile(ap):
                files.add(ap)
            else:
                raise RuntimeError(f"no such file or directory: {p}")
        return sorted(files)
    for d in DEFAULT_SCAN_DIRS:
        top = os.path.join(root, d)
        for dirpath, _, names in os.walk(top):
            files.update(os.path.join(dirpath, n) for n in names
                         if n.endswith(CXX_SUFFIXES))
    if compile_commands and os.path.isfile(compile_commands):
        cc_files, incdirs = load_compile_commands(
            compile_commands, root)
        files.update(f for f in chase_headers(cc_files, incdirs, root)
                     if f.endswith(CXX_SUFFIXES))
    return sorted(
        f for f in files
        if not under(os.path.relpath(f, root), EXCLUDE_DIRS))


# -- Driver -----------------------------------------------------------

def apply_suppressions(sf, findings):
    """Split FINDINGS into (kept, suppressed) per sf's allow()
    table, and append findings for malformed or misplaced allows."""
    kept, suppressed = [], []
    for f in findings:
        line = sf.suppression_for(f.line)
        if line is None:
            kept.append(f)
            continue
        rule_id, justification, _ = sf.suppressions[line]
        if rule_id != f.rule:
            kept.append(f)
            continue
        sf.used_suppressions.add(line)
        if justification is None:
            kept.append(f)
            kept.append(Finding(
                "suppression", sf.relpath, line,
                f"allow({rule_id}) has no justification; write "
                "'mouse-lint: allow(rule) -- why it is safe'",
                sf.raw_lines[line - 1]))
        elif f.rule == "host-clock" and \
                not under(sf.relpath, HOST_TIMING_DIRS):
            kept.append(f)
            kept.append(Finding(
                "suppression", sf.relpath, line,
                "allow(host-clock) is only honoured under "
                + " and ".join(HOST_TIMING_DIRS)
                + "; simulated code paths may not read host time",
                sf.raw_lines[line - 1]))
        else:
            suppressed.append(f)
    for line, (rule_id, _, _) in sorted(sf.suppressions.items()):
        if rule_id not in RULES and rule_id != "suppression":
            kept.append(Finding(
                "suppression", sf.relpath, line,
                f"allow({rule_id}) names an unknown rule; known: "
                + ", ".join(sorted(RULES)),
                sf.raw_lines[line - 1]))
        elif line not in sf.used_suppressions:
            kept.append(Finding(
                "suppression", sf.relpath, line,
                f"allow({rule_id}) suppresses nothing on this or the "
                "next line; delete it",
                sf.raw_lines[line - 1]))
    return kept, suppressed


def lint_file(root, path, rule_ids):
    rel = os.path.relpath(path, root)
    try:
        with open(path, encoding="utf-8", errors="replace") as f:
            text = f.read()
    except OSError as e:
        raise RuntimeError(f"cannot read '{path}': {e}")
    sf = SourceFile(root, rel, text)
    findings = []
    for rule_id in rule_ids:
        RULES[rule_id]["check"](sf, findings)
    return apply_suppressions(sf, findings)


def main(argv=None):
    ap = argparse.ArgumentParser(
        prog="mouse_lint.py",
        description="Determinism lint for the MOUSE tree "
                    "(docs/STATIC_ANALYSIS.md).")
    ap.add_argument("paths", nargs="*",
                    help="files or directories to lint (default: "
                         "src/ and tools/ under --root, plus "
                         "anything compile_commands.json names)")
    ap.add_argument("--root", default=None,
                    help="repository root (default: the parent of "
                         "this script's directory)")
    ap.add_argument("--compile-commands", default=None,
                    help="compile_commands.json for the file list "
                         "and include dirs (default: "
                         "ROOT/build/compile_commands.json when "
                         "present)")
    ap.add_argument("--rule", action="append", default=[],
                    dest="rules", metavar="ID",
                    help="run only this rule (repeatable)")
    ap.add_argument("--json", action="store_true",
                    help="emit a machine-readable report on stdout")
    ap.add_argument("--out", default=None,
                    help="also write the JSON report to this path")
    ap.add_argument("--list-rules", action="store_true",
                    help="print the rule registry and exit")
    args = ap.parse_args(argv)

    if args.list_rules:
        for rule_id in sorted(RULES):
            print(f"{rule_id}: {RULES[rule_id]['description']}")
        return 0

    root = os.path.abspath(
        args.root or
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
    # The implicit default may be absent (tree not configured yet);
    # an explicitly named compile database must exist.
    compile_commands = args.compile_commands or os.path.join(
        root, "build", "compile_commands.json")
    if args.compile_commands and not os.path.isfile(compile_commands):
        print(f"error: cannot read compile_commands "
              f"'{compile_commands}': no such file", file=sys.stderr)
        return 1

    rule_ids = args.rules or sorted(RULES)
    for rule_id in rule_ids:
        if rule_id not in RULES:
            print(f"error: unknown rule '{rule_id}'; known: "
                  + ", ".join(sorted(RULES)), file=sys.stderr)
            return 1

    try:
        files = discover_files(root, args.paths, compile_commands)
        all_kept, all_suppressed = [], []
        for path in files:
            kept, suppressed = lint_file(root, path, rule_ids)
            all_kept.extend(kept)
            all_suppressed.extend(suppressed)
    except RuntimeError as e:
        print(f"error: {e}", file=sys.stderr)
        return 1

    all_kept.sort(key=lambda f: (f.path, f.line, f.rule))
    report = {
        "lint_schema": LINT_SCHEMA_VERSION,
        "root": root,
        "rules": [{"id": r, "description": RULES[r]["description"]}
                  for r in rule_ids],
        "files_scanned": len(files),
        "findings": [f.as_dict() for f in all_kept],
        "suppressed": [f.as_dict() for f in all_suppressed],
    }
    body = json.dumps(report, indent=2) + "\n"
    if args.out:
        with open(args.out, "w") as f:
            f.write(body)
    if args.json:
        sys.stdout.write(body)
    else:
        for f in all_kept:
            print(f"{f.path}:{f.line}: [{f.rule}] {f.message}")
            print(f"    {f.snippet}")
        print(f"{len(files)} files scanned, {len(all_kept)} "
              f"finding(s), {len(all_suppressed)} suppressed")
    return 2 if all_kept else 0


if __name__ == "__main__":
    sys.exit(main())
