#!/usr/bin/env python3
"""Benchmark regression gate for CI.

Compares a fresh google-benchmark JSON report against the committed
baseline and fails (exit 1) when a watched benchmark's items/sec
regresses more than the allowed fraction.  Because CI machines differ
from the machine the baseline was recorded on, the gate also supports
a machine-independent check: the ratio between two benchmarks from
the *same* run (e.g. word-parallel vs scalar-oracle gate execution),
which cancels the host speed out.

A third, fully machine-independent check is the absolute floor: a
benchmark whose items/sec must clear a fixed acceptance threshold
(e.g. the serving bench's 1e5 classifications/sec target), checked
against the fresh run only.

The BASELINE argument names the undated committed baseline
(e.g. bench/baselines/BENCH_sim_throughput.json).  Each merge also
appends a dated sibling (BENCH_sim_throughput_YYYY-MM-DD.json); when
any exist, the lexicographically-latest dated file is compared
instead (ISO dates sort correctly), so the gate always tracks the
most recent merge without rewriting CI invocations.

Usage:
  check_bench_regression.py NEW.json BASELINE.json \
      --bench BM_TileGateExecution/1024 --max-regress 0.20 \
      --ratio BM_TileGateExecution/1024:BM_TileGateExecutionScalar/1024 \
      --min-ratio 10 \
      --min-items 'BM_ServeSaturation/bnn/16384:1e5'

  check_bench_regression.py --list-baselines bench/baselines

Exit codes: 0 all gates pass, 1 a gate failed, 2 a report file is
missing or malformed (the error names the directory searched, and
--list-baselines shows what is actually committed there).
"""

import argparse
import json
import os
import re
import sys


def fail_usage(message):
    print(f"error: {message}", file=sys.stderr)
    sys.exit(2)


def resolve_baseline(path):
    """Pick the latest dated sibling of the undated baseline PATH.

    BENCH_foo.json resolves to the greatest BENCH_foo_YYYY-MM-DD.json
    in the same directory when any exist (ISO dates compare correctly
    as strings), else to PATH itself.
    """
    directory = os.path.dirname(path) or "."
    stem = os.path.basename(path)
    if not stem.endswith(".json"):
        return path
    pattern = re.compile(
        re.escape(stem[: -len(".json")]) + r"_\d{4}-\d{2}-\d{2}\.json")
    try:
        dated = sorted(
            f for f in os.listdir(directory) if pattern.fullmatch(f))
    except OSError:
        return path  # load_items_per_second reports the clear error
    return os.path.join(directory, dated[-1]) if dated else path


def list_baselines(path):
    """Print every BENCH_*.json under PATH (a baseline directory, or
    any file inside one), marking the entry resolve_baseline() would
    pick for each undated stem."""
    directory = path if os.path.isdir(path) else \
        (os.path.dirname(path) or ".")
    try:
        names = sorted(f for f in os.listdir(directory)
                       if f.endswith(".json"))
    except OSError as e:
        fail_usage(f"cannot list baseline directory '{directory}':"
                   f" {e.strerror or e}")
    if not names:
        print(f"no baselines in {directory}")
        return
    undated = [n for n in names
               if not re.search(r"_\d{4}-\d{2}-\d{2}\.json$", n)]
    print(f"baselines in {directory}:")
    for stem in undated:
        selected = os.path.basename(
            resolve_baseline(os.path.join(directory, stem)))
        for name in names:
            if name == stem or name.startswith(
                    stem[: -len(".json")] + "_"):
                mark = "  <- selected" if name == selected else ""
                print(f"  {name}{mark}")
    strays = [n for n in names
              if not any(n == s or
                         n.startswith(s[: -len(".json")] + "_")
                         for s in undated)]
    for name in strays:
        print(f"  {name}  (no undated stem; never selected)")


def load_items_per_second(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except OSError as e:
        directory = os.path.dirname(path) or "."
        fail_usage(f"cannot read benchmark report '{path}':"
                   f" {e.strerror or e} (searched {directory};"
                   " run with --list-baselines to see what is"
                   " committed there)")
    except json.JSONDecodeError as e:
        fail_usage(f"'{path}' is not valid JSON: {e}")
    if not isinstance(doc, dict) or not isinstance(
            doc.get("benchmarks"), list):
        fail_usage(f"'{path}' has no 'benchmarks' array (not a"
                   " google-benchmark JSON report)")
    out = {}
    for bench in doc["benchmarks"]:
        if "items_per_second" in bench:
            out[bench["name"]] = bench["items_per_second"]
    return out


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("new", nargs="?",
                    help="fresh benchmark JSON report")
    ap.add_argument("baseline", nargs="?",
                    help="committed baseline JSON")
    ap.add_argument("--list-baselines", metavar="DIR",
                    help="list the BENCH_*.json baselines in DIR (a"
                         " directory, or any baseline path inside"
                         " one), mark which dated entry each undated"
                         " stem resolves to, and exit")
    ap.add_argument("--bench", action="append", default=[],
                    help="benchmark name to gate against the baseline"
                         " (repeatable)")
    ap.add_argument("--max-regress", type=float, default=0.20,
                    help="allowed fractional items/sec regression"
                         " versus the baseline (default 0.20)")
    ap.add_argument("--ratio", action="append", default=[],
                    help="FAST:SLOW benchmark pair from the new run"
                         " whose items/sec ratio must stay large"
                         " (machine-independent; repeatable)")
    ap.add_argument("--min-ratio", type=float, default=10.0,
                    help="minimum FAST/SLOW ratio (default 10)")
    ap.add_argument("--min-items", action="append", default=[],
                    help="NAME:FLOOR absolute items/sec floor the"
                         " fresh run must clear (machine-independent"
                         " acceptance gate; repeatable)")
    args = ap.parse_args()

    if args.list_baselines:
        list_baselines(args.list_baselines)
        return 0
    if not args.new or not args.baseline:
        fail_usage("NEW.json and BASELINE.json are required unless"
                   " --list-baselines is given")

    baseline = resolve_baseline(args.baseline)
    if baseline != args.baseline:
        print(f"baseline: {baseline} (latest dated entry for"
              f" {args.baseline})")
    new = load_items_per_second(args.new)
    base = load_items_per_second(baseline)
    failed = False

    for name in args.bench:
        if name not in new:
            print(f"FAIL: {name} missing from {args.new}")
            failed = True
            continue
        if name not in base:
            print(f"FAIL: {name} missing from baseline"
                  f" {baseline}")
            failed = True
            continue
        floor = base[name] * (1.0 - args.max_regress)
        verdict = "ok" if new[name] >= floor else "FAIL"
        print(f"{verdict}: {name} {new[name]:.3e} items/s"
              f" (baseline {base[name]:.3e},"
              f" floor {floor:.3e})")
        failed |= new[name] < floor

    for pair in args.ratio:
        fast_name, slow_name = pair.split(":", 1)
        if fast_name not in new or slow_name not in new:
            print(f"FAIL: ratio pair {pair} missing from {args.new}")
            failed = True
            continue
        ratio = new[fast_name] / new[slow_name]
        verdict = "ok" if ratio >= args.min_ratio else "FAIL"
        print(f"{verdict}: {fast_name} / {slow_name} ="
              f" {ratio:.1f}x (min {args.min_ratio:g}x)")
        failed |= ratio < args.min_ratio

    for spec in args.min_items:
        name, floor_text = spec.rsplit(":", 1)
        floor = float(floor_text)
        if name not in new:
            print(f"FAIL: {name} missing from {args.new}")
            failed = True
            continue
        verdict = "ok" if new[name] >= floor else "FAIL"
        print(f"{verdict}: {name} {new[name]:.3e} items/s"
              f" (absolute floor {floor:.3e})")
        failed |= new[name] < floor

    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
