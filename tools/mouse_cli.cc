/**
 * @file
 * mouse_cli — command-line driver for the MOUSE simulator.
 *
 * Subcommands:
 *   info    [--tech T] [--json]         device + gate operating points
 *   bench   NAME [--tech T] [--power W] [--continuous] [--json]
 *                                       run one paper benchmark
 *   sweep   NAME [--tech T] [--threads N] [--json]
 *                                       Figure-9-style power sweep on
 *                                       the parallel experiment runner
 *   analyze NAME [--tech T]             static forward-progress report
 *   area    MB   [--tech T]             Table-III area query
 *   inject  [--workload W] [...]        fault-injection campaign
 *                                       (docs/FAULT_INJECTION.md);
 *                                       --replay PATH re-runs a saved
 *                                       reproducer
 *   serve   [--requests N] [...]        batched-inference serving
 *                                       driver (docs/SERVING.md);
 *                                       --stream PATH replays a
 *                                       request stream instead of
 *                                       synthetic load; live metrics
 *                                       via --metrics-out, harvested
 *                                       power via --harvest-power
 *   metrics-summary PATH                render a --metrics-out
 *                                       snapshot as a human summary
 *   list                                benchmark, tech, and injection
 *                                       workload names
 *
 * Tech names: modern-stt (default), projected-stt, she.
 * Benchmark names: mnist, mnist-bin, har, adult, finn, fpbnn.
 *
 * Every command validates its flags strictly against one table of
 * CommandSpecs (kCommands): a flag no command knows and a flag that
 * belongs to a different command both exit 2 with a usage hint, so
 * typos never silently run a default configuration.
 * Exit codes: 0 success (inject: campaign clean / replay did not
 * reproduce a failure), 1 inject found or reproduced mismatches,
 * 2 usage or I/O error.
 *
 * --json prints machine-readable RunResult/SweepResult serializations
 * so benches and CI can diff results without scraping tables.  Sweep
 * point results are byte-identical for any --threads value.
 *
 * bench/sweep also take telemetry outputs (docs/OBSERVABILITY.md):
 *   --stats-out PATH     stat-registry tree (JSON; .csv gives a flat
 *                        table)
 *   --trace-out PATH     Chrome trace_event JSON (load in Perfetto or
 *                        chrome://tracing)
 *   --waveform-out PATH  capacitor-voltage / harvested-power CSV
 *   --json-out PATH      the --json document, written to a file
 * Output paths are validated (opened) before any simulation runs; an
 * unwritable path exits 2 immediately.  A live progress/ETA line is
 * shown on stderr when it is a terminal, or when --progress is given;
 * stdout stays byte-identical either way.
 */

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <optional>
#include <string>
#include <thread>

#ifndef _WIN32
#include <unistd.h>
#endif

#include "baseline/selector.hh"
#include "common/rng.hh"
#include "common/schema_versions.hh"
#include "energy/area_model.hh"
#include "harvest/platform.hh"
#include "harvest/power_trace.hh"
#include "harvest/trace_corpus.hh"
#include "exp/names.hh"
#include "exp/runner.hh"
#include "inject/campaign.hh"
#include "inject/replay.hh"
#include "serve/demo.hh"
#include "serve/service.hh"
#include "sim/termination.hh"

using namespace mouse;

namespace
{

int
usage()
{
    std::fprintf(
        stderr,
        "usage: mouse_cli <command> [args]\n"
        "  info    [--tech T] [--json]\n"
        "  bench   NAME [--tech T] [--power WATTS | --power-trace "
        "SRC]\n"
        "          [--platform P] [--scheme SEL] [--continuous] "
        "[--json]\n"
        "  sweep   NAME [--tech T] [--threads N] [--power-trace SRC]\n"
        "          [--platform P] [--scheme SEL] [--json]\n"
        "  analyze NAME [--tech T]\n"
        "  area    MB [--tech T]\n"
        "  inject  [--workload W] [--sonic-window N] [--no-journal]\n"
        "          [--random N] [--max-outages N] [--seed S]\n"
        "          [--threads N] [--report PATH] [--json]\n"
        "  inject  --replay PATH [--json]\n"
        "  serve   [--tech T] [--model bnn|svm|mixed] [--requests N]\n"
        "          [--batch N] [--threads N] [--seed S]\n"
        "          [--stream PATH] [--json] [--trace-out PATH]\n"
        "          [--metrics-out PATH] [--metrics-interval-ms N]\n"
        "          [--watchdog-ms N] [--harvest-power WATTS]\n"
        "          [--harvest-cap FARADS] [--power-trace SRC]\n"
        "          [--platform P]\n"
        "  metrics-summary PATH\n"
        "  list\n"
        "bench/sweep outputs:\n"
        "  --stats-out PATH     stat registry (JSON, or CSV if PATH "
        "ends .csv)\n"
        "  --trace-out PATH     Chrome trace_event JSON "
        "(Perfetto-loadable)\n"
        "  --waveform-out PATH  capacitor voltage / harvest power "
        "CSV\n"
        "  --json-out PATH      --json document written to PATH\n"
        "  --progress           force the stderr progress/ETA line\n"
        "tech: modern-stt | projected-stt | she\n"
        "benchmarks: mnist mnist-bin har adult finn fpbnn\n"
        "inject workloads: see `mouse_cli list`\n"
        "--power-trace SRC: a corpus trace name (solar-day-night,\n"
        "  rf-bursty, piezo-impulse) or a trace_schema-1 JSON file;\n"
        "--platform P: mementos | nvp | batteryless capacitor preset\n"
        "  (docs/HARVESTING.md)\n"
        "--scheme SEL: which system runs the point — mouse | "
        "mcu:bec |\n"
        "  mcu:odab | mcu:clank | mcu:oracle | sonic "
        "(docs/BASELINES.md)\n");
    return 2;
}

/**
 * Write BODY to PATH through a sibling ".tmp" file renamed into
 * place, so a concurrent reader (live metrics scrapers, a tail -f on
 * a --json-out) never sees a torn document.  Every snapshot-style
 * output of the CLI funnels through here.
 */
bool
atomicWriteFile(const std::string &path, const std::string &body)
{
    const std::string tmp = path + ".tmp";
    std::FILE *fp = std::fopen(tmp.c_str(), "wb");
    if (!fp) {
        std::fprintf(stderr,
                     "mouse_cli: cannot open '%s' for writing: %s\n",
                     tmp.c_str(), std::strerror(errno));
        return false;
    }
    const std::size_t put = std::fwrite(body.data(), 1, body.size(),
                                        fp);
    const bool flushed = std::fclose(fp) == 0 && put == body.size();
    if (!flushed) {
        std::fprintf(stderr, "mouse_cli: short write to '%s'\n",
                     tmp.c_str());
        std::remove(tmp.c_str());
        return false;
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::fprintf(stderr,
                     "mouse_cli: cannot rename '%s' to '%s': %s\n",
                     tmp.c_str(), path.c_str(), std::strerror(errno));
        std::remove(tmp.c_str());
        return false;
    }
    return true;
}

/** Parsed common flags. */
struct Options
{
    TechConfig tech = TechConfig::ModernStt;
    Watts power = 60e-6;
    bool continuous = false;
    bool json = false;
    /** Worker threads for sweep; 0 = hardware_concurrency. */
    unsigned threads = 0;
    /** Telemetry output paths; empty means the channel is off. */
    std::string statsOut;
    std::string traceOut;
    std::string waveformOut;
    std::string jsonOut;
    /** Show the stderr progress line even when not a terminal. */
    bool progress = false;
    /** bench/sweep: baseline system/scheme selector
     *  (baseline/selector.hh); empty runs MOUSE. */
    std::string scheme;
    /** inject: campaign workload name (inject/workload.hh). */
    std::string workload = "small-svm";
    /** inject: checkpoint window; 1 = MOUSE's per-cycle protocol,
     *  N > 1 = SONIC-style window of N instructions. */
    unsigned sonicWindow = 1;
    /** inject: model a broken restart path (skip journal replay). */
    bool noJournal = false;
    /** inject: randomized multi-outage schedules appended after the
     *  exhaustive single-cut enumeration. */
    std::size_t randomSchedules = 0;
    /** inject: outages per random schedule (2..N). */
    std::size_t maxOutages = 3;
    /** inject: root seed of the random-schedule derivation. */
    std::uint64_t rootSeed = 1;
    /** inject: campaign report JSON written here when non-empty. */
    std::string reportOut;
    /** inject: replay the artifact/report at this path instead of
     *  running a campaign. */
    std::string replayPath;
    /** serve: synthetic requests to generate (ignored with
     *  --stream). */
    std::size_t requests = 256;
    /** serve: which demo models take load. */
    std::string serveModel = "mixed";
    /** serve: cap on requests per batch; 0 = one full pass. */
    unsigned maxBatch = 0;
    /** serve: request-stream file replayed instead of synthetic
     *  load ("-" reads stdin). */
    std::string streamPath;
    /** serve: live metrics snapshot path (empty = off); .prom/.txt
     *  writes Prometheus text, anything else JSON. */
    std::string metricsOut;
    /** serve: snapshot rewrite period. */
    std::uint64_t metricsIntervalMs = 1000;
    /** serve: queue-stall watchdog no-progress threshold; 0 = off. */
    std::uint64_t watchdogMs = 0;
    /** serve: harvested-power serving (harvester watts; 0 = wall
     *  power). */
    double harvestPower = 0.0;
    /** serve: buffer-capacitance override for harvested serving
     *  (0 keeps the tech's buffer). */
    double harvestCap = 0.0;
    /** bench/sweep/serve: harvesting scenario — a corpus trace name
     *  or the path of a trace_schema-1 JSON file (empty = off). */
    std::string powerTrace;
    /** bench/sweep/serve: platform preset name (empty = tech
     *  defaults). */
    std::string platformName;
};

/**
 * An output file claimed before the run starts, so a typo'd path
 * fails in milliseconds instead of after a long sweep.
 */
class OutputFile
{
  public:
    OutputFile() = default;
    OutputFile(const OutputFile &) = delete;
    OutputFile &operator=(const OutputFile &) = delete;

    ~OutputFile()
    {
        if (fp_) {
            std::fclose(fp_);
        }
    }

    /** @return false (with a stderr message) if PATH is unwritable. */
    bool
    open(const std::string &path)
    {
        if (path.empty()) {
            return true;
        }
        path_ = path;
        fp_ = std::fopen(path.c_str(), "wb");
        if (!fp_) {
            std::fprintf(stderr,
                         "mouse_cli: cannot open '%s' for writing: "
                         "%s\n",
                         path.c_str(), std::strerror(errno));
            return false;
        }
        return true;
    }

    bool
    wanted() const
    {
        return fp_ != nullptr;
    }

    /** Atomically replace the claimed file with BODY (the open()
     *  probe only reserved the path). */
    void
    write(const std::string &body)
    {
        if (!fp_) {
            return;
        }
        std::fclose(fp_);
        fp_ = nullptr;
        atomicWriteFile(path_, body);
    }

    const std::string &
    path() const
    {
        return path_;
    }

  private:
    std::string path_;
    FILE *fp_ = nullptr;
};

/** The telemetry outputs of one bench/sweep invocation. */
struct Outputs
{
    OutputFile stats;
    OutputFile trace;
    OutputFile waveform;
    OutputFile json;

    /** Claim every requested path; false aborts the command. */
    bool
    open(const Options &opts)
    {
        return stats.open(opts.statsOut) &&
               trace.open(opts.traceOut) &&
               waveform.open(opts.waveformOut) &&
               json.open(opts.jsonOut);
    }

    /** Channels to record, derived from which files were asked for. */
    obs::TraceConfig
    traceConfig() const
    {
        obs::TraceConfig cfg;
        cfg.stats = stats.wanted();
        cfg.events = trace.wanted();
        cfg.waveform = trace.wanted() || waveform.wanted();
        return cfg;
    }

    void
    writeTelemetry(const exp::SweepResult &res)
    {
        if (res.stats) {
            const bool csv =
                stats.path().size() >= 4 &&
                stats.path().compare(stats.path().size() - 4, 4,
                                     ".csv") == 0;
            stats.write(csv ? res.stats->toCsv()
                            : res.stats->toJson() + "\n");
        }
        if (res.trace) {
            trace.write(res.trace->toChromeJson() + "\n");
            waveform.write(res.trace->waveformCsv());
        }
    }
};

/** Throttled stderr progress/ETA line ("12/18 points ... eta 0.4s"). */
class ProgressMeter
{
  public:
    void
    report(std::size_t done, std::size_t total)
    {
        const auto now = std::chrono::steady_clock::now();
        if (done < total && started_ &&
            now - last_ < std::chrono::milliseconds(100)) {
            return;
        }
        started_ = true;
        last_ = now;
        const double secs =
            std::chrono::duration<double>(now - start_).count();
        const double eta =
            done > 0 ? secs * static_cast<double>(total - done) /
                           static_cast<double>(done)
                     : 0.0;
        std::fprintf(stderr,
                     "\r%zu/%zu points (%3.0f%%) eta %5.1fs ", done,
                     total,
                     100.0 * static_cast<double>(done) /
                         static_cast<double>(total ? total : 1),
                     eta);
        if (done >= total) {
            std::fprintf(stderr, "\n");
        }
        std::fflush(stderr);
    }

  private:
    std::chrono::steady_clock::time_point start_ =
        std::chrono::steady_clock::now();
    std::chrono::steady_clock::time_point last_{};
    bool started_ = false;
};

bool
progressWanted(const Options &opts)
{
#ifndef _WIN32
    if (isatty(fileno(stderr))) {
        return true;
    }
#endif
    return opts.progress;
}

/** Every flag any command understands.  Membership here decides
 *  whether a rejected flag reads "unknown" or "does not apply". */
constexpr const char *kAllFlags[] = {
    "--tech",         "--power",      "--continuous",
    "--json",         "--threads",    "--stats-out",
    "--trace-out",    "--waveform-out", "--json-out",
    "--progress",     "--workload",   "--sonic-window",
    "--no-journal",   "--random",     "--max-outages",
    "--seed",         "--report",     "--replay",
    "--requests",     "--model",      "--batch",
    "--stream",       "--metrics-out", "--metrics-interval-ms",
    "--watchdog-ms",  "--harvest-power", "--harvest-cap",
    "--power-trace",  "--platform",    "--scheme",
};

/** Flags that are pure switches; every other flag consumes a value. */
constexpr const char *kSwitchFlags[] = {
    "--continuous",
    "--json",
    "--progress",
    "--no-journal",
};

bool
inList(const char *flag, const char *const *list, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i) {
        if (!std::strcmp(flag, list[i])) {
            return true;
        }
    }
    return false;
}

// -- Command table ---------------------------------------------------
//
// One CommandSpec per subcommand: its name, whether it takes a
// positional argument, and exactly which flags it accepts.  Every
// command's strict validation runs through this one table (and
// parseFlags below), so a new subcommand gets "unknown flag" /
// "does not apply" / missing-value handling by adding a row, and the
// behaviors can never drift apart between commands.

/** Declarative shape of one subcommand. */
struct CommandSpec
{
    const char *name;
    /** Name of the required positional argument, or null. */
    const char *positional;
    const char *const *flags;
    std::size_t numFlags;
};

constexpr const char *kInfoFlags[] = {"--tech", "--json"};
constexpr const char *kBenchFlags[] = {
    "--tech",      "--power",        "--continuous",
    "--json",      "--stats-out",    "--trace-out",
    "--waveform-out", "--json-out",  "--progress",
    "--power-trace", "--platform",   "--scheme",
};
constexpr const char *kSweepFlags[] = {
    "--tech",      "--threads",      "--json",
    "--stats-out", "--trace-out",    "--waveform-out",
    "--json-out",  "--progress",     "--power-trace",
    "--platform",  "--scheme",
};
constexpr const char *kAnalyzeFlags[] = {"--tech"};
constexpr const char *kAreaFlags[] = {"--tech"};
constexpr const char *kInjectFlags[] = {
    "--workload",   "--sonic-window", "--no-journal",
    "--random",     "--max-outages",  "--seed",
    "--threads",    "--report",       "--replay",
    "--json",
};
constexpr const char *kServeFlags[] = {
    "--tech",    "--model",     "--requests",  "--batch",
    "--threads", "--seed",      "--stream",    "--json",
    "--json-out", "--stats-out", "--progress", "--trace-out",
    "--metrics-out", "--metrics-interval-ms", "--watchdog-ms",
    "--harvest-power", "--harvest-cap", "--power-trace",
    "--platform",
};

constexpr CommandSpec kCommands[] = {
    {"info", nullptr, kInfoFlags, std::size(kInfoFlags)},
    {"bench", "NAME", kBenchFlags, std::size(kBenchFlags)},
    {"sweep", "NAME", kSweepFlags, std::size(kSweepFlags)},
    {"analyze", "NAME", kAnalyzeFlags, std::size(kAnalyzeFlags)},
    {"area", "MB", kAreaFlags, std::size(kAreaFlags)},
    {"inject", nullptr, kInjectFlags, std::size(kInjectFlags)},
    {"serve", nullptr, kServeFlags, std::size(kServeFlags)},
    {"metrics-summary", "PATH", nullptr, 0},
    {"list", nullptr, nullptr, 0},
};

const CommandSpec *
findCommand(const std::string &cmd)
{
    for (const CommandSpec &spec : kCommands) {
        if (cmd == spec.name) {
            return &spec;
        }
    }
    return nullptr;
}

/** Strict non-negative integer parse ("--threads needs ..."). */
bool
parseCount(const char *flag, const char *val, std::uint64_t &out)
{
    char *end = nullptr;
    errno = 0;
    const unsigned long long n = std::strtoull(val, &end, 10);
    if (val[0] == '-' || end == val || *end != '\0' ||
        errno == ERANGE) {
        std::fprintf(stderr,
                     "%s needs a non-negative integer, got '%s'\n",
                     flag, val);
        return false;
    }
    out = n;
    return true;
}

/**
 * Parse one command's flags against its CommandSpec.  Only the
 * spec's flags are accepted: a flag no command knows is rejected as
 * unknown, one that belongs to a different command as not applicable
 * — both exit 2 through usage(), so a typo never silently runs a
 * default configuration.
 */
bool
parseFlags(int argc, char **argv, int start, const CommandSpec &spec,
           Options &opts)
{
    for (int i = start; i < argc; ++i) {
        const char *flag = argv[i];
        if (!inList(flag, kAllFlags, std::size(kAllFlags))) {
            std::fprintf(stderr, "unknown flag '%s'\n", flag);
            return false;
        }
        if (!inList(flag, spec.flags, spec.numFlags)) {
            std::fprintf(stderr,
                         "flag '%s' does not apply to '%s'\n", flag,
                         spec.name);
            return false;
        }
        const char *val = nullptr;
        if (!inList(flag, kSwitchFlags, std::size(kSwitchFlags))) {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "flag '%s' needs a value\n",
                             flag);
                return false;
            }
            val = argv[++i];
        }
        std::uint64_t n = 0;
        if (!std::strcmp(flag, "--tech")) {
            const auto tech = names::parseTech(val);
            if (!tech) {
                std::fprintf(stderr, "unknown tech '%s'\n", val);
                return false;
            }
            opts.tech = *tech;
        } else if (!std::strcmp(flag, "--power")) {
            char *end = nullptr;
            opts.power = std::strtod(val, &end);
            if (end == val || *end != '\0' || opts.power <= 0.0) {
                std::fprintf(
                    stderr,
                    "--power needs a positive number, got '%s'\n",
                    val);
                return false;
            }
        } else if (!std::strcmp(flag, "--threads")) {
            if (!parseCount(flag, val, n)) {
                return false;
            }
            opts.threads = static_cast<unsigned>(n);
        } else if (!std::strcmp(flag, "--continuous")) {
            opts.continuous = true;
        } else if (!std::strcmp(flag, "--json")) {
            opts.json = true;
        } else if (!std::strcmp(flag, "--stats-out")) {
            opts.statsOut = val;
        } else if (!std::strcmp(flag, "--trace-out")) {
            opts.traceOut = val;
        } else if (!std::strcmp(flag, "--waveform-out")) {
            opts.waveformOut = val;
        } else if (!std::strcmp(flag, "--json-out")) {
            opts.jsonOut = val;
        } else if (!std::strcmp(flag, "--progress")) {
            opts.progress = true;
        } else if (!std::strcmp(flag, "--workload")) {
            opts.workload = val;
        } else if (!std::strcmp(flag, "--sonic-window")) {
            if (!parseCount(flag, val, n)) {
                return false;
            }
            if (n < 1) {
                std::fprintf(stderr,
                             "--sonic-window needs a window >= 1, "
                             "got '%s'\n",
                             val);
                return false;
            }
            opts.sonicWindow = static_cast<unsigned>(n);
        } else if (!std::strcmp(flag, "--no-journal")) {
            opts.noJournal = true;
        } else if (!std::strcmp(flag, "--random")) {
            if (!parseCount(flag, val, n)) {
                return false;
            }
            opts.randomSchedules = n;
        } else if (!std::strcmp(flag, "--max-outages")) {
            if (!parseCount(flag, val, n)) {
                return false;
            }
            if (n < 2) {
                std::fprintf(stderr,
                             "--max-outages needs a count >= 2, "
                             "got '%s'\n",
                             val);
                return false;
            }
            opts.maxOutages = n;
        } else if (!std::strcmp(flag, "--seed")) {
            if (!parseCount(flag, val, n)) {
                return false;
            }
            opts.rootSeed = n;
        } else if (!std::strcmp(flag, "--report")) {
            opts.reportOut = val;
        } else if (!std::strcmp(flag, "--replay")) {
            opts.replayPath = val;
        } else if (!std::strcmp(flag, "--requests")) {
            if (!parseCount(flag, val, n)) {
                return false;
            }
            if (n < 1) {
                std::fprintf(stderr,
                             "--requests needs a count >= 1, got "
                             "'%s'\n",
                             val);
                return false;
            }
            opts.requests = n;
        } else if (!std::strcmp(flag, "--model")) {
            if (std::strcmp(val, "bnn") && std::strcmp(val, "svm") &&
                std::strcmp(val, "mixed")) {
                std::fprintf(stderr,
                             "--model must be bnn, svm, or mixed, "
                             "got '%s'\n",
                             val);
                return false;
            }
            opts.serveModel = val;
        } else if (!std::strcmp(flag, "--batch")) {
            if (!parseCount(flag, val, n)) {
                return false;
            }
            opts.maxBatch = static_cast<unsigned>(n);
        } else if (!std::strcmp(flag, "--stream")) {
            opts.streamPath = val;
        } else if (!std::strcmp(flag, "--metrics-out")) {
            opts.metricsOut = val;
        } else if (!std::strcmp(flag, "--metrics-interval-ms")) {
            if (!parseCount(flag, val, n)) {
                return false;
            }
            if (n < 1) {
                std::fprintf(stderr,
                             "--metrics-interval-ms needs a period "
                             ">= 1, got '%s'\n",
                             val);
                return false;
            }
            opts.metricsIntervalMs = n;
        } else if (!std::strcmp(flag, "--watchdog-ms")) {
            if (!parseCount(flag, val, n)) {
                return false;
            }
            opts.watchdogMs = n;
        } else if (!std::strcmp(flag, "--harvest-power")) {
            char *end = nullptr;
            opts.harvestPower = std::strtod(val, &end);
            if (end == val || *end != '\0' ||
                opts.harvestPower <= 0.0) {
                std::fprintf(stderr,
                             "--harvest-power needs a positive "
                             "number of watts, got '%s'\n",
                             val);
                return false;
            }
        } else if (!std::strcmp(flag, "--harvest-cap")) {
            char *end = nullptr;
            opts.harvestCap = std::strtod(val, &end);
            if (end == val || *end != '\0' ||
                opts.harvestCap <= 0.0) {
                std::fprintf(stderr,
                             "--harvest-cap needs a positive number "
                             "of farads, got '%s'\n",
                             val);
                return false;
            }
        } else if (!std::strcmp(flag, "--power-trace")) {
            opts.powerTrace = val;
        } else if (!std::strcmp(flag, "--scheme")) {
            BaselineSelector sel;
            std::string why;
            if (!parseBaselineSelector(val, &sel, &why)) {
                std::fprintf(stderr,
                             "--scheme: %s (want:", why.c_str());
                for (const std::string &name :
                     baselineSelectorNames()) {
                    std::fprintf(stderr, " %s", name.c_str());
                }
                std::fprintf(stderr, ")\n");
                return false;
            }
            opts.scheme = val;
        } else if (!std::strcmp(flag, "--platform")) {
            if (platformByName(val) == nullptr) {
                std::fprintf(stderr,
                             "--platform: unknown platform '%s' "
                             "(want:",
                             val);
                for (const std::string &name : platformNames()) {
                    std::fprintf(stderr, " %s", name.c_str());
                }
                std::fprintf(stderr, ")\n");
                return false;
            }
            opts.platformName = val;
        }
    }
    return true;
}

int
cmdInfo(const Options &opts)
{
    const GateLibrary lib(makeDeviceConfig(opts.tech));
    const DeviceConfig &cfg = lib.config();
    if (opts.json) {
        std::string gates;
        for (GateType g : lib.feasibleGates()) {
            if (!gates.empty()) {
                gates += ",";
            }
            gates += "\"" + jsonEscape(gateName(g)) + "\"";
        }
        std::printf(
            "{\"tech\":\"%s\",\"name\":\"%s\","
            "\"frequency_hz\":%.17g,"
            "\"cap_voltage_low_v\":%.17g,"
            "\"cap_voltage_high_v\":%.17g,"
            "\"buffer_capacitance_f\":%.17g,"
            "\"write_energy_j\":%.17g,\"read_energy_j\":%.17g,"
            "\"feasible_gates\":[%s]}\n",
            names::techName(opts.tech),
            jsonEscape(cfg.name()).c_str(), cfg.frequency(),
            cfg.capVoltageLow, cfg.capVoltageHigh,
            cfg.bufferCapacitance, lib.writeOp().energy,
            lib.readOp().energy, gates.c_str());
        return 0;
    }
    std::printf("%s: %.1f MHz, window %.0f..%.0f mV, buffer %.0f uF\n",
                cfg.name().c_str(), cfg.frequency() / 1e6,
                cfg.capVoltageLow * 1e3, cfg.capVoltageHigh * 1e3,
                cfg.bufferCapacitance * 1e6);
    std::printf("MTJ: Rp %.2f k, Rap %.2f k, tsw %.0f ns, Ic %.0f uA "
                "(TMR %.2f)\n",
                cfg.mtj.rParallel / 1e3, cfg.mtj.rAntiParallel / 1e3,
                cfg.mtj.switchingTime * 1e9,
                cfg.mtj.switchingCurrent * 1e6, cfg.mtj.tmr());
    std::printf("feasible gates:");
    for (GateType g : lib.feasibleGates()) {
        std::printf(" %s", gateName(g).c_str());
    }
    std::printf("\nwrite %.1f mV / %.3f fJ, read %.1f mV / %.3f fJ\n",
                lib.writeOp().voltage * 1e3,
                lib.writeOp().energy * 1e15,
                lib.readOp().voltage * 1e3,
                lib.readOp().energy * 1e15);
    return 0;
}

/** Map a rejected RunRequest onto exit 2 with a usage hint.  The
 *  engine carries the typed RunError in the result instead of dying
 *  mid-run; the CLI is where it becomes a user-facing message. */
bool
checkRunOk(const RunResult &r)
{
    if (r.ok()) {
        return true;
    }
    std::fprintf(stderr, "mouse_cli: invalid run request: %s\n",
                 runErrorMessage(r.error));
    std::fprintf(stderr,
                 "run 'mouse_cli' without arguments for usage\n");
    return false;
}

std::optional<std::string> readFile(const std::string &path);

/**
 * Resolve a --power-trace argument before anything simulates: a
 * corpus trace name wins, anything else is read as a trace_schema-1
 * JSON file.  A missing file, malformed JSON, or wrong trace_schema
 * prints a "path:line: message" error and fails (exit 2 upstream),
 * matching the strict up-front validation of every other flag.
 */
bool
resolveSourceSpec(const std::string &arg, SourceSpec &out)
{
    if (const PowerTrace *t = corpusTrace(arg)) {
        out = SourceSpec::corpusTrace(t->name);
        return true;
    }
    const auto text = readFile(arg);
    if (!text) {
        return false;
    }
    PowerTraceError err;
    const auto trace = parsePowerTrace(*text, &err);
    if (!trace) {
        std::fprintf(stderr, "mouse_cli: %s:%zu: %s\n", arg.c_str(),
                     err.line, err.message.c_str());
        return false;
    }
    out = SourceSpec::trace(*trace);
    return true;
}

/** One-point grid for `bench`: reuses the runner end to end. */
int
cmdBench(const exp::Benchmark &b, const Options &opts)
{
    Outputs out;
    if (!out.open(opts)) {
        return 2;
    }
    exp::SweepGrid grid;
    grid.techs = {opts.tech};
    grid.benchmarks = {b};
    if (!opts.powerTrace.empty()) {
        if (opts.continuous) {
            std::fprintf(stderr,
                         "--continuous and --power-trace are "
                         "mutually exclusive\n");
            return 2;
        }
        SourceSpec spec;
        if (!resolveSourceSpec(opts.powerTrace, spec)) {
            return 2;
        }
        grid.sources = {spec};
    } else {
        grid.powers = {opts.continuous ? exp::kContinuousPower
                                       : opts.power};
    }
    if (!opts.platformName.empty()) {
        grid.platforms = {opts.platformName};
    }
    if (!opts.scheme.empty()) {
        grid.schemes = {opts.scheme};
    }
    grid.telemetry = out.traceConfig();
    exp::ExperimentRunner runner(1);
    const exp::SweepResult res = runner.run(grid);
    const RunResult &r = res.points.front();
    if (!checkRunOk(r)) {
        return 2;
    }
    out.writeTelemetry(res);
    out.json.write(r.toJson() + "\n");
    if (opts.json) {
        std::printf("%s\n", r.toJson().c_str());
        return 0;
    }
    if (opts.continuous) {
        std::printf("%s on %s, continuous power\n", b.name.c_str(),
                    makeDeviceConfig(opts.tech).name().c_str());
    } else {
        std::printf("%s on %s, %.0f uW harvester\n", b.name.c_str(),
                    makeDeviceConfig(opts.tech).name().c_str(),
                    opts.power * 1e6);
    }
    const GateLibrary lib(makeDeviceConfig(opts.tech));
    MappingInfo info;
    (void)exp::traceFor(lib, b, &info);
    std::printf("layout: %u elem/col, %u cols/unit, %llu units x %u "
                "batch(es), %.1f + %.1f MB\n",
                info.elementsPerColumn, info.colsPerUnit,
                static_cast<unsigned long long>(info.unitsPerBatch),
                info.batches, info.instrMB, info.dataMB);
    std::printf("%s\n", r.stats.summary().c_str());
    return 0;
}

int
cmdSweep(const exp::Benchmark &b, const Options &opts)
{
    Outputs out;
    if (!out.open(opts)) {
        return 2;
    }
    exp::SweepGrid grid;
    grid.techs = {opts.tech};
    grid.benchmarks = {b};
    if (!opts.powerTrace.empty()) {
        SourceSpec spec;
        if (!resolveSourceSpec(opts.powerTrace, spec)) {
            return 2;
        }
        grid.sources = {spec};
    } else {
        grid.powers = exp::powerSweep();
    }
    if (!opts.platformName.empty()) {
        grid.platforms = {opts.platformName};
    }
    if (!opts.scheme.empty()) {
        grid.schemes = {opts.scheme};
    }
    grid.telemetry = out.traceConfig();
    exp::ExperimentRunner runner(opts.threads);
    ProgressMeter meter;
    if (progressWanted(opts)) {
        runner.setProgress([&meter](std::size_t done,
                                    std::size_t total) {
            meter.report(done, total);
        });
    }
    const exp::SweepResult res = runner.run(grid);
    for (const RunResult &r : res.points) {
        if (!checkRunOk(r)) {
            return 2;
        }
    }
    out.writeTelemetry(res);
    out.json.write(res.toJson() + "\n");
    if (opts.json) {
        std::printf("%s\n", res.toJson().c_str());
        return 0;
    }
    std::printf("%-12s %16s %14s %10s\n", "power", "latency (us)",
                "energy (uJ)", "outages");
    for (std::size_t i = 0; i < res.points.size(); ++i) {
        const RunStats &s = res.points[i].stats;
        std::printf("%9.0f uW %16.0f %14.3f %10llu\n",
                    res.points[i].meta.power * 1e6,
                    s.totalTime() * 1e6, s.totalEnergy() * 1e6,
                    static_cast<unsigned long long>(s.outages));
    }
    // Timing goes to stderr so stdout stays byte-identical across
    // thread counts and runs.
    std::fprintf(stderr, "(%zu points in %.1f ms on %u threads)\n",
                 res.points.size(), res.wallSeconds * 1e3,
                 res.threads);
    return 0;
}

int
cmdAnalyze(const exp::Benchmark &b, const Options &opts)
{
    const GateLibrary lib(makeDeviceConfig(opts.tech));
    const EnergyModel energy(lib);
    const Trace trace = exp::traceFor(lib, b);
    const TerminationReport r =
        analyzeTermination(trace, energy, HarvestConfig{});
    std::printf("%s on %s\n", b.name.c_str(),
                lib.config().name().c_str());
    std::printf("burst energy: %.3f nJ\n", r.burstEnergy * 1e9);
    std::printf("worst instruction + restore: %.3f pJ (block %zu)\n",
                (r.worstInstructionEnergy + r.worstRestoreEnergy) *
                    1e12,
                r.bindingBlock);
    std::printf("forward progress: %s (margin %.0fx, min buffer "
                "%.3f nF)\n",
                r.terminates ? "GUARANTEED" : "NOT GUARANTEED",
                r.margin, r.minCapacitance * 1e9);
    return 0;
}

int
cmdArea(double mb, const Options &opts)
{
    std::printf("%.0f MB on %s: %.2f mm^2 (rounded capacity %.0f "
                "MB)\n",
                mb, makeDeviceConfig(opts.tech).name().c_str(),
                mouseAreaForFootprint(opts.tech, mb),
                roundUpPow2Mb(mb));
    return 0;
}

std::optional<std::string>
readFile(const std::string &path)
{
    std::FILE *fp = std::fopen(path.c_str(), "rb");
    if (!fp) {
        std::fprintf(stderr, "mouse_cli: cannot read '%s': %s\n",
                     path.c_str(), std::strerror(errno));
        return std::nullopt;
    }
    std::string text;
    char buf[4096];
    std::size_t n = 0;
    while ((n = std::fread(buf, 1, sizeof(buf), fp)) > 0) {
        text.append(buf, n);
    }
    std::fclose(fp);
    return text;
}

/** `metrics-summary PATH`: render a --metrics-out JSON snapshot as a
 *  one-screen human summary.  Exit 2 when the file is unreadable or
 *  not a metrics_schema-1 document. */
int
cmdMetricsSummary(const std::string &path)
{
    const auto text = readFile(path);
    if (!text) {
        return 2;
    }
    const auto snap = obs::MetricsSnapshot::fromJson(*text);
    if (!snap) {
        std::fprintf(stderr,
                     "mouse_cli: '%s' is not a metrics snapshot "
                     "(want the --metrics-out JSON document, "
                     "metrics_schema %d)\n",
                     path.c_str(), schema::kMetricsSchemaVersion);
        return 2;
    }
    const obs::MetricsSnapshot &s = *snap;
    std::printf("metrics snapshot: uptime %.1f s, window %.1f s\n",
                s.uptimeSeconds, s.windowSeconds);
    std::printf("requests: %llu submitted, %llu completed over %llu "
                "batches; queue %lld, %u worker(s) active\n",
                static_cast<unsigned long long>(s.submitted),
                static_cast<unsigned long long>(s.completed),
                static_cast<unsigned long long>(s.batches),
                static_cast<long long>(s.queueDepth),
                s.activeWorkers);
    std::printf("throughput: %.1f/s lifetime, %.1f/s window "
                "(occupancy %.0f%%)\n",
                s.throughputPerS, s.windowThroughputPerS,
                s.windowOccupancy * 1e2);
    std::printf("simulated: %.3f ms array time, %.3f uJ total, "
                "%.3f nJ/request in window\n",
                s.simSeconds * 1e3, s.energyJoules * 1e6,
                s.windowEnergyPerRequestJ * 1e9);
    std::printf("outages: %llu (%.3f ms stalled lifetime, %.3f ms "
                "in window); stall warnings: %llu\n",
                static_cast<unsigned long long>(s.outages),
                s.outageStallSeconds * 1e3,
                s.windowOutageStallSeconds * 1e3,
                static_cast<unsigned long long>(s.stallWarnings));
    std::printf("host latency (window, n=%llu): p50 %.3f ms, "
                "p95 %.3f ms, p99 %.3f ms\n",
                static_cast<unsigned long long>(s.hostLatency.count),
                s.hostLatency.p50 * 1e3, s.hostLatency.p95 * 1e3,
                s.hostLatency.p99 * 1e3);
    std::printf("sim latency  (window, n=%llu): p50 %.3f ms, "
                "p95 %.3f ms, p99 %.3f ms\n",
                static_cast<unsigned long long>(s.simLatency.count),
                s.simLatency.p50 * 1e3, s.simLatency.p95 * 1e3,
                s.simLatency.p99 * 1e3);
    return 0;
}

void
printOutcome(const inject::PointOutcome &o)
{
    std::printf("verdict: %s\n", inject::verdictName(o.verdict));
    std::printf("committed %llu, reexecuted %llu\n",
                static_cast<unsigned long long>(o.committed),
                static_cast<unsigned long long>(o.reexecuted));
    if (!o.note.empty()) {
        std::printf("note: %s\n", o.note.c_str());
    }
}

/** `inject --replay PATH`: re-run a saved reproducer (a standalone
 *  artifact or a whole campaign report, whose first shrunk schedule
 *  is picked).  Exit 1 when the failure reproduces. */
int
cmdInjectReplay(const Options &opts)
{
    const auto text = readFile(opts.replayPath);
    if (!text) {
        return 2;
    }
    const auto art = inject::parseReplayArtifact(*text);
    if (!art) {
        std::fprintf(stderr,
                     "'%s' is not a replay artifact or campaign "
                     "report with failures\n",
                     opts.replayPath.c_str());
        return 2;
    }
    const auto w = inject::makeCampaignWorkload(art->workload);
    if (!w) {
        std::fprintf(stderr, "unknown inject workload '%s'\n",
                     art->workload.c_str());
        return 2;
    }
    const inject::PointOutcome o =
        inject::replaySchedule(*w, art->schedule);
    const bool reproduced = o.verdict == inject::Verdict::kCorrupted ||
                            o.verdict == inject::Verdict::kIncomplete;
    if (opts.json) {
        std::printf("%s\n",
                    inject::replayArtifactJson(w->name, o.schedule)
                        .c_str());
    }
    std::printf("replaying %llu-outage schedule on '%s'\n",
                static_cast<unsigned long long>(
                    o.schedule.points.size()),
                w->name.c_str());
    printOutcome(o);
    std::printf(reproduced ? "failure REPRODUCED\n"
                           : "no failure reproduced\n");
    return reproduced ? 1 : 0;
}

int
cmdInject(const Options &opts)
{
    if (!opts.replayPath.empty()) {
        return cmdInjectReplay(opts);
    }
    const auto w = inject::makeCampaignWorkload(opts.workload);
    if (!w) {
        std::fprintf(stderr, "unknown inject workload '%s' (try:",
                     opts.workload.c_str());
        for (const std::string &name :
             inject::campaignWorkloadNames()) {
            std::fprintf(stderr, " %s", name.c_str());
        }
        std::fprintf(stderr, ")\n");
        return 2;
    }
    OutputFile report;
    if (!report.open(opts.reportOut)) {
        return 2;
    }

    inject::CampaignConfig cfg;
    cfg.checkpointPeriod = opts.sonicWindow;
    cfg.restoreJournal = !opts.noJournal;
    cfg.randomSchedules = opts.randomSchedules;
    cfg.maxOutagesPerSchedule = opts.maxOutages;
    cfg.rootSeed = opts.rootSeed;
    cfg.threads = opts.threads;
    const inject::CampaignReport rep = inject::runCampaign(*w, cfg);
    report.write(rep.toJson() + "\n");
    if (opts.json) {
        std::printf("%s\n", rep.toJson().c_str());
        return rep.clean() ? 0 : 1;
    }

    std::printf("%s: golden run commits %llu instructions "
                "(%llu attempts)\n",
                w->name.c_str(),
                static_cast<unsigned long long>(rep.goldenCommitted),
                static_cast<unsigned long long>(rep.goldenAttempts));
    std::printf("checkpoint window %u, journal restore %s\n",
                cfg.checkpointPeriod,
                cfg.restoreJournal ? "on" : "OFF");
    std::printf("%llu points:",
                static_cast<unsigned long long>(rep.points));
    for (std::size_t v = 0; v < inject::kNumVerdicts; ++v) {
        std::printf(" %llu %s%s",
                    static_cast<unsigned long long>(rep.verdicts[v]),
                    inject::verdictName(
                        static_cast<inject::Verdict>(v)),
                    v + 1 < inject::kNumVerdicts ? "," : "\n");
    }
    std::printf("replayed commits: %llu\n",
                static_cast<unsigned long long>(rep.replays));
    if (rep.clean()) {
        std::printf("clean: every faulted run converged to the "
                    "golden state\n");
        return 0;
    }
    std::printf("MISMATCHES: %llu points diverged; shrunk "
                "reproducers:\n",
                static_cast<unsigned long long>(rep.mismatches));
    for (const inject::PointOutcome &f : rep.failures) {
        std::printf("  [%s] %s\n", inject::verdictName(f.verdict),
                    f.note.c_str());
        std::printf("    %s\n",
                    inject::replayArtifactJson(w->name, f.shrunk)
                        .c_str());
    }
    return 1;
}

// -- serve ------------------------------------------------------------

/**
 * Parse one request-stream line: "<bnn|svm> <e0> <e1> ...".
 * Blank lines and '#' comments are skipped (returns true with
 * model = npos).  A malformed line prints a message and fails.
 */
bool
parseStreamLine(const std::string &line, std::size_t lineNo,
                serve::ModelId bnn, serve::ModelId svm,
                std::size_t &model, serve::Input &in)
{
    model = static_cast<std::size_t>(-1);
    in.clear();
    std::size_t pos = line.find_first_not_of(" \t\r");
    if (pos == std::string::npos || line[pos] == '#') {
        return true;
    }
    const std::size_t end = line.find_first_of(" \t\r", pos);
    const std::string name = line.substr(pos, end - pos);
    if (name == "bnn") {
        model = bnn;
    } else if (name == "svm") {
        model = svm;
    } else {
        std::fprintf(stderr,
                     "stream line %zu: unknown model '%s' (want "
                     "bnn or svm)\n",
                     lineNo, name.c_str());
        return false;
    }
    pos = end;
    while (pos != std::string::npos) {
        pos = line.find_first_not_of(" \t\r", pos);
        if (pos == std::string::npos) {
            break;
        }
        char *endp = nullptr;
        const long v = std::strtol(line.c_str() + pos, &endp, 10);
        if (endp == line.c_str() + pos || v < 0 || v > 255) {
            std::fprintf(stderr,
                         "stream line %zu: bad element near '%s'\n",
                         lineNo, line.c_str() + pos);
            return false;
        }
        in.push_back(static_cast<std::uint8_t>(v));
        pos = static_cast<std::size_t>(endp - line.c_str());
    }
    return true;
}

/**
 * Rewrite the live-metrics snapshot at @p path: Prometheus text for
 * .prom/.txt paths, JSON otherwise.  Written to a sibling tmp file
 * and renamed so a concurrent reader never sees a torn document.
 */
bool
writeMetricsSnapshot(const std::string &path,
                     const obs::MetricsSnapshot &snap)
{
    const auto endsWith = [&path](const char *suffix) {
        const std::size_t n = std::strlen(suffix);
        return path.size() >= n &&
               path.compare(path.size() - n, n, suffix) == 0;
    };
    const std::string body = endsWith(".prom") || endsWith(".txt")
                                 ? snap.toPrometheus()
                                 : snap.toJson() + "\n";
    return atomicWriteFile(path, body);
}

/** Batched-inference serving driver (docs/SERVING.md): registers
 *  the deterministic demo models, admits synthetic or streamed
 *  requests, drains the engine pool, and reports schema-v4 serve
 *  JSON or a human summary.  Live observability (span tracing,
 *  metrics snapshots, the queue-stall watchdog, harvested power) is
 *  documented in docs/OBSERVABILITY.md. */
int
cmdServe(const Options &opts)
{
    Outputs out;
    if (!out.open(opts)) {
        return 2;
    }

    serve::ServiceConfig cfg;
    cfg.engine.tech = opts.tech;
    cfg.engine.array.tileRows = 512;
    cfg.engine.array.tileCols = 1024;
    cfg.engine.array.numDataTiles = 1;
    cfg.engine.array.numInstructionTiles = 4096;
    cfg.workers = opts.threads > 0 ? opts.threads : 1;
    cfg.maxBatch = opts.maxBatch;
    if (opts.harvestPower > 0.0 || !opts.powerTrace.empty() ||
        !opts.platformName.empty()) {
        cfg.harvested = true;
        if (!opts.powerTrace.empty()) {
            if (opts.harvestPower > 0.0) {
                std::fprintf(stderr,
                             "--harvest-power and --power-trace are "
                             "mutually exclusive\n");
                return 2;
            }
            if (!resolveSourceSpec(opts.powerTrace,
                                   cfg.harvest.source)) {
                return 2;
            }
        } else if (opts.harvestPower > 0.0) {
            cfg.harvest.source =
                SourceSpec::constant(opts.harvestPower);
        }
        cfg.harvest.platform = opts.platformName;
        if (opts.harvestCap > 0.0) {
            cfg.harvest.capacitanceOverride = opts.harvestCap;
        }
    }
    serve::InferenceService svc(cfg);

    obs::MetricsHub hub;
    if (!opts.metricsOut.empty() || opts.watchdogMs > 0) {
        svc.setMetrics(&hub);
    }
    // Claim the metrics path before admitting load, like every other
    // output (a typo'd path fails immediately, not after the drain).
    if (!opts.metricsOut.empty() &&
        !writeMetricsSnapshot(opts.metricsOut, hub.snapshot())) {
        return 2;
    }
    if (out.trace.wanted()) {
        svc.setTracing(true);
    }

    const serve::ModelId bnn = svc.addModel(serve::demoBnn(opts.rootSeed));
    const serve::ModelId svm =
        svc.addModel(serve::demoSvm(opts.rootSeed + 1));

    if (!opts.streamPath.empty()) {
        const bool fromStdin = opts.streamPath == "-";
        std::FILE *fp = fromStdin
                            ? stdin
                            : std::fopen(opts.streamPath.c_str(),
                                         "rb");
        if (!fp) {
            std::fprintf(stderr,
                         "mouse_cli: cannot read '%s': %s\n",
                         opts.streamPath.c_str(),
                         std::strerror(errno));
            return 2;
        }
        std::string line;
        std::size_t lineNo = 0;
        char buf[4096];
        bool ok = true;
        while (ok && std::fgets(buf, sizeof(buf), fp)) {
            ++lineNo;
            line = buf;
            if (!line.empty() && line.back() == '\n') {
                line.pop_back();
            }
            std::size_t model = 0;
            serve::Input in;
            if (!parseStreamLine(line, lineNo, bnn, svm, model,
                                 in)) {
                ok = false;
                break;
            }
            if (model == static_cast<std::size_t>(-1)) {
                continue;  // blank / comment
            }
            const serve::ModelId m =
                static_cast<serve::ModelId>(model);
            if (!svc.model(m).validInput(in)) {
                std::fprintf(
                    stderr,
                    "stream line %zu: payload invalid for '%s' "
                    "(want %zu elements of %u bit(s))\n",
                    lineNo, svc.model(m).name().c_str(),
                    svc.model(m).inputSize(),
                    svc.model(m).elementBits());
                ok = false;
                break;
            }
            svc.submit(m, std::move(in));
        }
        if (!fromStdin) {
            std::fclose(fp);
        }
        if (!ok) {
            return 2;
        }
    } else {
        Rng rng(opts.rootSeed + 2);
        for (std::size_t i = 0; i < opts.requests; ++i) {
            serve::ModelId m = bnn;
            if (opts.serveModel == "svm") {
                m = svm;
            } else if (opts.serveModel == "mixed") {
                m = rng.below(2) == 0 ? bnn : svm;
            }
            svc.submit(m, serve::randomInput(rng, svc.model(m)));
        }
    }

    const std::size_t admitted = svc.pendingRequests();
    if (admitted == 0) {
        std::fprintf(stderr, "serve: no requests admitted\n");
        return 2;
    }

    // Same stderr progress/ETA line sweeps get, with batches as the
    // unit of work; gated on the TTY check exactly like bench/sweep.
    ProgressMeter meter;
    if (progressWanted(opts)) {
        svc.setProgress(
            [&meter](std::size_t done, std::size_t total) {
                meter.report(done, total);
            });
    }
    // Periodic snapshot rewriter; drain() blocks, so it runs beside.
    std::atomic<bool> metricsStop{false};
    std::thread emitter;
    if (!opts.metricsOut.empty()) {
        emitter = std::thread([&]() {
            while (!metricsStop.load(std::memory_order_relaxed)) {
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(
                        opts.metricsIntervalMs));
                writeMetricsSnapshot(opts.metricsOut,
                                     hub.snapshot());
            }
        });
    }
    std::optional<obs::StallWatchdog> watchdog;
    if (opts.watchdogMs > 0) {
        watchdog.emplace(hub,
                         static_cast<double>(opts.watchdogMs) / 1e3);
        watchdog->start(
            std::max(static_cast<double>(opts.watchdogMs) / 4.0,
                     10.0) /
                1e3,
            [](const obs::StallReport &r) {
                std::fprintf(stderr,
                             "serve: queue stall detected: %s\n",
                             r.toJson().c_str());
            });
    }

    const double secs = svc.drain();

    if (watchdog) {
        watchdog->stop();
    }
    if (emitter.joinable()) {
        metricsStop.store(true, std::memory_order_relaxed);
        emitter.join();
    }
    if (!opts.metricsOut.empty()) {
        // Final snapshot, so even a sub-interval run leaves the
        // completed totals on disk.
        writeMetricsSnapshot(opts.metricsOut, hub.snapshot());
    }
    if (out.trace.wanted()) {
        out.trace.write(svc.requestTrace().toChromeJson() + "\n");
    }

    const std::string report = svc.reportJson();
    out.json.write(report + "\n");
    if (out.stats.wanted()) {
        const auto reg = svc.stats();
        const bool csv =
            out.stats.path().size() >= 4 &&
            out.stats.path().compare(out.stats.path().size() - 4, 4,
                                     ".csv") == 0;
        out.stats.write(csv ? reg->toCsv() : reg->toJson() + "\n");
    }
    if (opts.json) {
        std::printf("%s\n", report.c_str());
        return 0;
    }
    std::printf("serve: %zu requests over %zu batches on %s "
                "(%u worker%s)\n",
                svc.completed(), svc.batchesRun(),
                makeDeviceConfig(opts.tech).name().c_str(),
                cfg.workers, cfg.workers == 1 ? "" : "s");
    const auto reg = svc.stats();
    std::printf("throughput: %.0f classifications/s over %.1f ms "
                "drain\n",
                static_cast<double>(svc.completed()) /
                    (secs > 0.0 ? secs : 1.0),
                secs * 1e3);
    std::printf("simulated: %.3f ms array time, %.3f uJ "
                "(%.0f classifications/s-array)\n",
                reg->scalarValue("serve.sim_time_s") * 1e3,
                reg->scalarValue("serve.energy_j") * 1e6,
                reg->counterValue("serve.requests") /
                    (reg->scalarValue("serve.sim_time_s") > 0.0
                         ? reg->scalarValue("serve.sim_time_s")
                         : 1.0));
    return 0;
}

int
cmdList()
{
    std::printf("benchmarks:\n");
    const auto &keys = names::listBenchmarks();
    const auto &all = exp::paperBenchmarks();
    for (std::size_t i = 0; i < all.size(); ++i) {
        std::printf("  %-10s %s (%.0f MB)\n", keys[i].c_str(),
                    all[i].name.c_str(), all[i].capacityMB);
    }
    std::printf("techs:");
    for (TechConfig tech : names::allTechs()) {
        std::printf(" %s", names::techName(tech));
    }
    std::printf("\n");
    std::printf("inject workloads:\n");
    for (const std::string &name : inject::campaignWorkloadNames()) {
        const auto w = inject::makeCampaignWorkload(name);
        std::printf("  %-10s %s\n", name.c_str(),
                    w ? w->description.c_str() : "");
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        return usage();
    }
    const std::string cmd = argv[1];
    const CommandSpec *spec = findCommand(cmd);
    if (!spec) {
        std::fprintf(stderr, "unknown command '%s'\n", cmd.c_str());
        return usage();
    }
    if (spec->positional && argc < 3) {
        std::fprintf(stderr, "'%s' needs a %s argument\n",
                     spec->name, spec->positional);
        return usage();
    }
    const int flagStart = spec->positional ? 3 : 2;
    Options opts;
    if (!parseFlags(argc, argv, flagStart, *spec, opts)) {
        return usage();
    }

    if (cmd == "list") {
        return cmdList();
    }
    if (cmd == "info") {
        return cmdInfo(opts);
    }
    if (cmd == "area") {
        char *end = nullptr;
        const double mb = std::strtod(argv[2], &end);
        if (end == argv[2] || *end != '\0' || mb <= 0.0) {
            std::fprintf(stderr,
                         "capacity must be a positive number, got "
                         "'%s'\n",
                         argv[2]);
            return 2;
        }
        return cmdArea(mb, opts);
    }
    if (cmd == "inject") {
        return cmdInject(opts);
    }
    if (cmd == "serve") {
        return cmdServe(opts);
    }
    if (cmd == "metrics-summary") {
        return cmdMetricsSummary(argv[2]);
    }
    // bench / sweep / analyze share the benchmark positional.
    const auto bi = names::benchmarkIndex(argv[2]);
    if (!bi) {
        std::fprintf(stderr, "unknown benchmark '%s'\n", argv[2]);
        return 2;
    }
    const exp::Benchmark &b = exp::paperBenchmarks()[*bi];
    if (cmd == "bench") {
        return cmdBench(b, opts);
    }
    if (cmd == "sweep") {
        return cmdSweep(b, opts);
    }
    return cmdAnalyze(b, opts);
}
