/**
 * @file
 * Tests for the unified RunRequest/RunResult API: structured
 * validation of malformed requests (typed RunError instead of a
 * mid-run assert), metadata echo, and JSON serialization with the
 * documented keys.  The legacy shim-equivalence tests left with the
 * shims themselves (docs/EXPERIMENTS_API.md, "Legacy entry points").
 */

#include <gtest/gtest.h>

#include "core/accelerator.hh"

namespace mouse
{
namespace
{

MouseConfig
smallConfig()
{
    MouseConfig cfg;
    cfg.tech = TechConfig::ProjectedStt;
    cfg.array.tileRows = 128;
    cfg.array.tileCols = 8;
    cfg.array.numDataTiles = 2;
    cfg.array.numInstructionTiles = 512;
    return cfg;
}

Program
adderProgram(const Accelerator &acc)
{
    KernelBuilder kb(acc.gateLibrary(), acc.config().array, 0, 16);
    kb.activate(0, 3);
    const Word a = kb.pinnedWord(0, 4);
    const Word b = kb.pinnedWord(8, 4);
    (void)kb.add(a, b);
    return kb.finish();
}

TEST(RunApi, ExecuteRunsFunctionalAndTrace)
{
    Accelerator acc(smallConfig());
    const Program prog = adderProgram(acc);
    acc.loadProgram(prog);

    RunRequest req;
    req.fidelity = Fidelity::Functional;
    req.power = PowerMode::Continuous;
    const RunResult func = acc.execute(req);
    EXPECT_TRUE(func.ok());
    EXPECT_GT(func.stats.instructionsCommitted, 0u);
    EXPECT_GE(func.wallSeconds, 0.0);
    EXPECT_FALSE(func.meta.tech.empty());

    const Trace trace = Trace::fromProgram(prog, acc.config().array);
    req.fidelity = Fidelity::Trace;
    req.trace = &trace;
    const RunResult traced = acc.execute(req);
    EXPECT_TRUE(traced.ok());
    EXPECT_GT(traced.stats.computeEnergy, 0.0);
}

TEST(RunApi, HarvestedMetaEcho)
{
    Accelerator acc(smallConfig());
    acc.loadProgram(adderProgram(acc));
    RunRequest req;
    req.power = PowerMode::Harvested;
    req.harvest.sourcePower = 2e-6;
    req.harvest.seed = 99;
    const RunResult got = acc.execute(req);
    EXPECT_TRUE(got.ok());
    EXPECT_EQ(got.meta.seed, 99u);
    EXPECT_EQ(got.meta.sourcePower, 2e-6);
}

TEST(RunApi, LabelIsEchoedIntoMeta)
{
    Accelerator acc(smallConfig());
    const Program prog = adderProgram(acc);
    const Trace trace = Trace::fromProgram(prog, acc.config().array);
    RunRequest req;
    req.fidelity = Fidelity::Trace;
    req.trace = &trace;
    req.label = "point-7";
    EXPECT_EQ(acc.execute(req).meta.label, "point-7");
}

TEST(RunApi, JsonCarriesStatsAndMeta)
{
    Accelerator acc(smallConfig());
    const Program prog = adderProgram(acc);
    const Trace trace = Trace::fromProgram(prog, acc.config().array);
    RunRequest req;
    req.fidelity = Fidelity::Trace;
    req.trace = &trace;
    req.label = "json \"probe\"";
    const RunResult res = acc.execute(req);
    const std::string j = res.toJson();
    EXPECT_NE(j.find("\"instructions_committed\":"),
              std::string::npos);
    EXPECT_NE(j.find("\"total_energy_j\":"), std::string::npos);
    EXPECT_NE(j.find("\"wall_seconds\":"), std::string::npos);
    EXPECT_NE(j.find("\"tech\":\"Projected STT\""),
              std::string::npos);
    // Quotes in labels must be escaped.
    EXPECT_NE(j.find("json \\\"probe\\\""), std::string::npos);
    // Valid runs carry no error field.
    EXPECT_EQ(j.find("\"error\":"), std::string::npos);
    EXPECT_EQ(j.front(), '{');
    EXPECT_EQ(j.back(), '}');
}

// -- Structured validation: each invalid combination is rejected ----
// with a typed error instead of a mid-run assert, stats stay zero,
// and nothing is simulated.

void
expectRejected(Accelerator &acc, const RunRequest &req, RunError want)
{
    const RunResult res = acc.execute(req);
    EXPECT_FALSE(res.ok());
    EXPECT_EQ(res.error, want);
    EXPECT_EQ(res.stats.instructionsCommitted, 0u);
    EXPECT_EQ(res.stats.totalEnergy(), 0.0);
    // Metadata still identifies the rejecting configuration.
    EXPECT_FALSE(res.meta.tech.empty());
    // The JSON carries the machine-readable error name.
    const std::string j = res.toJson();
    EXPECT_NE(j.find(std::string("\"error\":\"") +
                     runErrorName(want) + "\""),
              std::string::npos);
}

TEST(RunApi, TraceFidelityWithoutTraceIsRejected)
{
    Accelerator acc(smallConfig());
    RunRequest req;
    req.fidelity = Fidelity::Trace;
    EXPECT_EQ(validateRunRequest(req), RunError::kTraceMissing);
    expectRejected(acc, req, RunError::kTraceMissing);
}

TEST(RunApi, ScheduledPowerWithoutScheduleIsRejected)
{
    Accelerator acc(smallConfig());
    RunRequest req;
    req.power = PowerMode::Scheduled;
    EXPECT_EQ(validateRunRequest(req), RunError::kScheduleMissing);
    expectRejected(acc, req, RunError::kScheduleMissing);
}

TEST(RunApi, ScheduleWithNonScheduledPowerIsRejected)
{
    Accelerator acc(smallConfig());
    OutageSchedule schedule;
    RunRequest req;
    req.power = PowerMode::Continuous;
    req.schedule = &schedule;
    EXPECT_EQ(validateRunRequest(req),
              RunError::kScheduleWithoutScheduledPower);
    expectRejected(acc, req,
                   RunError::kScheduleWithoutScheduledPower);
}

TEST(RunApi, MaxAttemptsWithNonScheduledPowerIsRejected)
{
    Accelerator acc(smallConfig());
    RunRequest req;
    req.power = PowerMode::Harvested;
    req.maxAttempts = 32;
    EXPECT_EQ(validateRunRequest(req),
              RunError::kMaxAttemptsWithoutScheduledPower);
    expectRejected(acc, req,
                   RunError::kMaxAttemptsWithoutScheduledPower);
}

TEST(RunApi, ScheduledTraceFidelityIsRejected)
{
    Accelerator acc(smallConfig());
    const Program prog = adderProgram(acc);
    const Trace trace = Trace::fromProgram(prog, acc.config().array);
    OutageSchedule schedule;
    RunRequest req;
    req.fidelity = Fidelity::Trace;
    req.trace = &trace;
    req.power = PowerMode::Scheduled;
    req.schedule = &schedule;
    EXPECT_EQ(validateRunRequest(req),
              RunError::kScheduledTraceFidelity);
    expectRejected(acc, req, RunError::kScheduledTraceFidelity);
}

TEST(RunApi, RunErrorNamesAndMessagesAreStable)
{
    EXPECT_STREQ(runErrorName(RunError::kNone), "none");
    EXPECT_STREQ(runErrorName(RunError::kTraceMissing),
                 "trace_missing");
    EXPECT_STREQ(runErrorName(RunError::kScheduleMissing),
                 "schedule_missing");
    EXPECT_STREQ(
        runErrorName(RunError::kScheduleWithoutScheduledPower),
        "schedule_without_scheduled_power");
    EXPECT_STREQ(
        runErrorName(RunError::kMaxAttemptsWithoutScheduledPower),
        "max_attempts_without_scheduled_power");
    EXPECT_STREQ(runErrorName(RunError::kScheduledTraceFidelity),
                 "scheduled_trace_fidelity");
    // Every message spells out the fix.
    EXPECT_NE(std::string(runErrorMessage(RunError::kTraceMissing))
                  .find("req.trace"),
              std::string::npos);
    EXPECT_NE(
        std::string(runErrorMessage(RunError::kScheduleMissing))
            .find("req.schedule"),
        std::string::npos);
}

} // namespace
} // namespace mouse
