/**
 * @file
 * Tests for the unified RunRequest/RunResult API: structured
 * validation of malformed requests (typed RunError instead of a
 * mid-run assert), metadata echo, and JSON serialization with the
 * documented keys.  The legacy shim-equivalence tests left with the
 * shims themselves (docs/EXPERIMENTS_API.md, "Legacy entry points").
 */

#include <gtest/gtest.h>

#include "core/accelerator.hh"

namespace mouse
{
namespace
{

MouseConfig
smallConfig()
{
    MouseConfig cfg;
    cfg.tech = TechConfig::ProjectedStt;
    cfg.array.tileRows = 128;
    cfg.array.tileCols = 8;
    cfg.array.numDataTiles = 2;
    cfg.array.numInstructionTiles = 512;
    return cfg;
}

Program
adderProgram(const Accelerator &acc)
{
    KernelBuilder kb(acc.gateLibrary(), acc.config().array, 0, 16);
    kb.activate(0, 3);
    const Word a = kb.pinnedWord(0, 4);
    const Word b = kb.pinnedWord(8, 4);
    (void)kb.add(a, b);
    return kb.finish();
}

TEST(RunApi, ExecuteRunsFunctionalAndTrace)
{
    Accelerator acc(smallConfig());
    const Program prog = adderProgram(acc);
    acc.loadProgram(prog);

    RunRequest req;
    req.fidelity = Fidelity::Functional;
    req.power = PowerMode::Continuous;
    const RunResult func = acc.execute(req);
    EXPECT_TRUE(func.ok());
    EXPECT_GT(func.stats.instructionsCommitted, 0u);
    EXPECT_GE(func.wallSeconds, 0.0);
    EXPECT_FALSE(func.meta.tech.empty());

    const Trace trace = Trace::fromProgram(prog, acc.config().array);
    req.fidelity = Fidelity::Trace;
    req.trace = observe(trace);
    const RunResult traced = acc.execute(req);
    EXPECT_TRUE(traced.ok());
    EXPECT_GT(traced.stats.computeEnergy, 0.0);
}

TEST(RunApi, HarvestedMetaEcho)
{
    Accelerator acc(smallConfig());
    acc.loadProgram(adderProgram(acc));
    RunRequest req;
    req.power = PowerMode::Harvested;
    req.harvest.source = SourceSpec::constant(2e-6);
    req.harvest.seed = 99;
    const RunResult got = acc.execute(req);
    EXPECT_TRUE(got.ok());
    EXPECT_EQ(got.meta.seed, 99u);
    EXPECT_EQ(got.meta.power, 2e-6);
    EXPECT_EQ(got.meta.source, "constant");
}

TEST(RunApi, LabelIsEchoedIntoMeta)
{
    Accelerator acc(smallConfig());
    const Program prog = adderProgram(acc);
    const Trace trace = Trace::fromProgram(prog, acc.config().array);
    RunRequest req;
    req.fidelity = Fidelity::Trace;
    req.trace = observe(trace);
    req.label = "point-7";
    EXPECT_EQ(acc.execute(req).meta.label, "point-7");
}

TEST(RunApi, JsonCarriesStatsAndMeta)
{
    Accelerator acc(smallConfig());
    const Program prog = adderProgram(acc);
    const Trace trace = Trace::fromProgram(prog, acc.config().array);
    RunRequest req;
    req.fidelity = Fidelity::Trace;
    req.trace = observe(trace);
    req.label = "json \"probe\"";
    const RunResult res = acc.execute(req);
    const std::string j = res.toJson();
    EXPECT_NE(j.find("\"instructions_committed\":"),
              std::string::npos);
    EXPECT_NE(j.find("\"total_energy_j\":"), std::string::npos);
    EXPECT_NE(j.find("\"wall_seconds\":"), std::string::npos);
    EXPECT_NE(j.find("\"tech\":\"Projected STT\""),
              std::string::npos);
    // Quotes in labels must be escaped.
    EXPECT_NE(j.find("json \\\"probe\\\""), std::string::npos);
    // Valid runs carry no error field.
    EXPECT_EQ(j.find("\"error\":"), std::string::npos);
    EXPECT_EQ(j.front(), '{');
    EXPECT_EQ(j.back(), '}');
}

// -- Structured validation: each invalid combination is rejected ----
// with a typed error instead of a mid-run assert, stats stay zero,
// and nothing is simulated.

void
expectRejected(Accelerator &acc, const RunRequest &req, RunError want)
{
    const RunResult res = acc.execute(req);
    EXPECT_FALSE(res.ok());
    EXPECT_EQ(res.error, want);
    EXPECT_EQ(res.stats.instructionsCommitted, 0u);
    EXPECT_EQ(res.stats.totalEnergy(), 0.0);
    // Metadata still identifies the rejecting configuration.
    EXPECT_FALSE(res.meta.tech.empty());
    // The JSON carries the machine-readable error name.
    const std::string j = res.toJson();
    EXPECT_NE(j.find(std::string("\"error\":\"") +
                     runErrorName(want) + "\""),
              std::string::npos);
}

TEST(RunApi, TraceFidelityWithoutTraceIsRejected)
{
    Accelerator acc(smallConfig());
    RunRequest req;
    req.fidelity = Fidelity::Trace;
    EXPECT_EQ(validateRunRequest(req), RunError::kTraceMissing);
    expectRejected(acc, req, RunError::kTraceMissing);
}

TEST(RunApi, ScheduledPowerWithoutScheduleIsRejected)
{
    Accelerator acc(smallConfig());
    RunRequest req;
    req.power = PowerMode::Scheduled;
    EXPECT_EQ(validateRunRequest(req), RunError::kScheduleMissing);
    expectRejected(acc, req, RunError::kScheduleMissing);
}

TEST(RunApi, ScheduleWithNonScheduledPowerIsRejected)
{
    Accelerator acc(smallConfig());
    OutageSchedule schedule;
    RunRequest req;
    req.power = PowerMode::Continuous;
    req.schedule = observe(schedule);
    EXPECT_EQ(validateRunRequest(req),
              RunError::kScheduleWithoutScheduledPower);
    expectRejected(acc, req,
                   RunError::kScheduleWithoutScheduledPower);
}

TEST(RunApi, MaxAttemptsWithNonScheduledPowerIsRejected)
{
    Accelerator acc(smallConfig());
    RunRequest req;
    req.power = PowerMode::Harvested;
    req.maxAttempts = 32;
    EXPECT_EQ(validateRunRequest(req),
              RunError::kMaxAttemptsWithoutScheduledPower);
    expectRejected(acc, req,
                   RunError::kMaxAttemptsWithoutScheduledPower);
}

TEST(RunApi, ScheduledTraceFidelityIsRejected)
{
    Accelerator acc(smallConfig());
    const Program prog = adderProgram(acc);
    const Trace trace = Trace::fromProgram(prog, acc.config().array);
    OutageSchedule schedule;
    RunRequest req;
    req.fidelity = Fidelity::Trace;
    req.trace = observe(trace);
    req.power = PowerMode::Scheduled;
    req.schedule = observe(schedule);
    EXPECT_EQ(validateRunRequest(req),
              RunError::kScheduledTraceFidelity);
    expectRejected(acc, req, RunError::kScheduledTraceFidelity);
}

TEST(RunApi, InvalidHarvestSourceIsRejected)
{
    Accelerator acc(smallConfig());
    RunRequest req;
    req.power = PowerMode::Harvested;
    req.harvest.source = SourceSpec::constant(0.0);
    EXPECT_EQ(validateRunRequest(req),
              RunError::kHarvestSourceInvalid);
    expectRejected(acc, req, RunError::kHarvestSourceInvalid);

    req.harvest.source =
        SourceSpec::trace(std::vector<TracePowerSource::Segment>{});
    expectRejected(acc, req, RunError::kHarvestSourceInvalid);

    req.harvest.source = SourceSpec::corpusTrace("no-such-trace");
    expectRejected(acc, req, RunError::kHarvestSourceInvalid);

    req.harvest.source = SourceSpec::square(0.01, 1.5, 200e-6);
    expectRejected(acc, req, RunError::kHarvestSourceInvalid);
}

TEST(RunApi, UnknownHarvestPlatformIsRejected)
{
    Accelerator acc(smallConfig());
    RunRequest req;
    req.power = PowerMode::Harvested;
    req.harvest.platform = "mars-rover";
    EXPECT_EQ(validateRunRequest(req),
              RunError::kHarvestPlatformUnknown);
    expectRejected(acc, req, RunError::kHarvestPlatformUnknown);

    // A catalog name passes validation.
    req.harvest.platform = "mementos";
    EXPECT_EQ(validateRunRequest(req), RunError::kNone);

    // The source is checked before the platform.
    req.harvest.source = SourceSpec::constant(-1.0);
    req.harvest.platform = "mars-rover";
    EXPECT_EQ(validateRunRequest(req),
              RunError::kHarvestSourceInvalid);
}

TEST(RunApi, RunErrorNamesAndMessagesAreStable)
{
    EXPECT_STREQ(runErrorName(RunError::kNone), "none");
    EXPECT_STREQ(runErrorName(RunError::kTraceMissing),
                 "trace_missing");
    EXPECT_STREQ(runErrorName(RunError::kScheduleMissing),
                 "schedule_missing");
    EXPECT_STREQ(
        runErrorName(RunError::kScheduleWithoutScheduledPower),
        "schedule_without_scheduled_power");
    EXPECT_STREQ(
        runErrorName(RunError::kMaxAttemptsWithoutScheduledPower),
        "max_attempts_without_scheduled_power");
    EXPECT_STREQ(runErrorName(RunError::kScheduledTraceFidelity),
                 "scheduled_trace_fidelity");
    EXPECT_STREQ(runErrorName(RunError::kHarvestSourceInvalid),
                 "harvest_source_invalid");
    EXPECT_STREQ(runErrorName(RunError::kHarvestPlatformUnknown),
                 "harvest_platform_unknown");
    // Every message spells out the fix.
    EXPECT_NE(std::string(runErrorMessage(RunError::kTraceMissing))
                  .find("req.trace"),
              std::string::npos);
    EXPECT_NE(
        std::string(runErrorMessage(RunError::kScheduleMissing))
            .find("req.schedule"),
        std::string::npos);
}

// -- Observer types and the builder ---------------------------------

TEST(RunApi, ObserverPtrSemantics)
{
    const int x = 7;
    ObserverPtr<const int> p;
    EXPECT_FALSE(p);
    p = observe(x);
    ASSERT_TRUE(p);
    EXPECT_EQ(*p, 7);
    EXPECT_EQ(p.get(), &x);
    EXPECT_TRUE(p == observe(x));
    p = nullptr;
    EXPECT_FALSE(p);
}

TEST(RunApi, BuilderProducesValidRequests)
{
    const RunRequest cont = RunRequestBuilder()
                                .functional()
                                .continuous()
                                .label("c")
                                .build();
    EXPECT_EQ(validateRunRequest(cont), RunError::kNone);
    EXPECT_EQ(cont.power, PowerMode::Continuous);
    EXPECT_EQ(cont.label, "c");

    HarvestConfig h;
    h.source = SourceSpec::constant(3e-6);
    const RunRequest harv =
        RunRequestBuilder().harvested(h).build();
    EXPECT_EQ(validateRunRequest(harv), RunError::kNone);
    EXPECT_EQ(harv.harvest.source.constantPower, 3e-6);

    OutageSchedule s;
    const RunRequest sched =
        RunRequestBuilder().scheduled(s, 42).build();
    EXPECT_EQ(validateRunRequest(sched), RunError::kNone);
    EXPECT_EQ(sched.schedule.get(), &s);
    EXPECT_EQ(sched.maxAttempts, 42u);
}

TEST(RunApi, BuilderModeSwitchesClearStaleFields)
{
    // scheduled() then continuous(): the schedule and attempt guard
    // must not leak into the continuous request (which would be
    // rejected by validation).
    OutageSchedule s;
    const RunRequest req = RunRequestBuilder()
                               .scheduled(s, 9)
                               .continuous()
                               .build();
    EXPECT_EQ(validateRunRequest(req), RunError::kNone);
    EXPECT_FALSE(req.schedule);
    EXPECT_EQ(req.maxAttempts, 0u);
}

TEST(RunApi, BuilderTracedSourceDropsStaleScheduleFields)
{
    // scheduled() then tracedSource(): the new harvested request
    // must not keep the outage schedule or attempt guard.
    OutageSchedule s;
    const RunRequest req =
        RunRequestBuilder()
            .scheduled(s, 9)
            .tracedSource(SourceSpec::corpusTrace("rf-bursty"))
            .build();
    EXPECT_EQ(validateRunRequest(req), RunError::kNone);
    EXPECT_EQ(req.power, PowerMode::Harvested);
    EXPECT_FALSE(req.schedule);
    EXPECT_EQ(req.maxAttempts, 0u);
    EXPECT_EQ(req.harvest.source.corpus, "rf-bursty");
}

TEST(RunApi, BuilderPlatformComposesWithSources)
{
    OutageSchedule s;
    const RunRequest req = RunRequestBuilder()
                               .scheduled(s, 9)
                               .platform("nvp")
                               .build();
    EXPECT_EQ(validateRunRequest(req), RunError::kNone);
    EXPECT_EQ(req.power, PowerMode::Harvested);
    EXPECT_FALSE(req.schedule);
    EXPECT_EQ(req.harvest.platform, "nvp");
    // Default source survives a platform-only selection.
    EXPECT_TRUE(req.harvest.source.isConstant());

    // Order does not matter: source then platform keeps both.
    const RunRequest both =
        RunRequestBuilder()
            .tracedSource(SourceSpec::square(0.01, 0.3, 200e-6))
            .platform("batteryless")
            .build();
    EXPECT_EQ(validateRunRequest(both), RunError::kNone);
    EXPECT_EQ(both.harvest.source.kind, SourceKind::kSquare);
    EXPECT_EQ(both.harvest.platform, "batteryless");
}

// -- Asynchronous submit/poll/wait ----------------------------------

TEST(RunApi, SubmitWaitMatchesExecute)
{
    Accelerator sync(smallConfig());
    const Program prog = adderProgram(sync);
    sync.loadProgram(prog);
    const RunResult direct = sync.execute(RunRequest{});

    Accelerator async(smallConfig());
    async.loadProgram(prog);
    const RequestHandle h = async.submit(RunRequest{});
    EXPECT_EQ(async.pendingRequests(), 1u);
    const RunResult queued = async.wait(h);
    EXPECT_EQ(async.pendingRequests(), 0u);
    EXPECT_TRUE(queued.ok());
    EXPECT_EQ(queued.stats.instructionsCommitted,
              direct.stats.instructionsCommitted);
    EXPECT_EQ(queued.stats.totalEnergy(),
              direct.stats.totalEnergy());
    // Serve metadata appears only on the async path.
    EXPECT_FALSE(direct.serve.present);
    EXPECT_TRUE(queued.serve.present);
    EXPECT_EQ(queued.serve.requestId, h.id);
    EXPECT_EQ(queued.serve.queueDepth, 0u);
    EXPECT_GE(queued.serve.queueSeconds, 0.0);
}

TEST(RunApi, PollAdvancesQueueInSubmissionOrder)
{
    Accelerator acc(smallConfig());
    acc.loadProgram(adderProgram(acc));
    const RequestHandle h1 = acc.submit(RunRequest{});
    const RequestHandle h2 = acc.submit(RunRequest{});
    EXPECT_NE(h1.id, h2.id);
    EXPECT_EQ(acc.pendingRequests(), 2u);

    // Polling the *second* request first runs the first request (at
    // most one run per poll), so the first poll comes back empty.
    std::optional<RunResult> r2 = acc.poll(h2);
    EXPECT_FALSE(r2.has_value());
    EXPECT_EQ(acc.pendingRequests(), 1u);
    r2 = acc.poll(h2);
    ASSERT_TRUE(r2.has_value());
    EXPECT_EQ(r2->serve.requestId, h2.id);
    EXPECT_EQ(r2->serve.queueDepth, 1u);

    // The first result was filed and is still redeemable.
    const std::optional<RunResult> r1 = acc.poll(h1);
    ASSERT_TRUE(r1.has_value());
    EXPECT_EQ(r1->serve.requestId, h1.id);
    // A handle redeems at most once.
    EXPECT_FALSE(acc.poll(h1).has_value());
}

TEST(RunApi, SubmittedInvalidRequestCarriesTypedError)
{
    Accelerator acc(smallConfig());
    acc.loadProgram(adderProgram(acc));
    RunRequest bad;
    bad.fidelity = Fidelity::Trace;  // no trace attached
    const RunResult res = acc.wait(acc.submit(bad));
    EXPECT_FALSE(res.ok());
    EXPECT_EQ(res.error, RunError::kTraceMissing);
    EXPECT_TRUE(res.serve.present);
}

TEST(RunApi, ServeJsonBlockIsSchemaV6)
{
    Accelerator acc(smallConfig());
    acc.loadProgram(adderProgram(acc));
    const RunResult direct = acc.execute(RunRequest{});
    // Schema 4 everywhere; the serve block only on async results.
    // mouse-lint: allow(schema-constants) -- golden pin: the test
    // hardcodes the published version on purpose, so an accidental
    // bump of the central constant fails here.
    EXPECT_NE(direct.toJson().find("\"schema\":6"),
              std::string::npos);
    EXPECT_EQ(direct.toJson().find("\"serve\":"),
              std::string::npos);

    const RunResult queued = acc.wait(acc.submit(RunRequest{}));
    const std::string j = queued.toJson();
    EXPECT_NE(j.find("\"serve\":{"), std::string::npos);
    EXPECT_NE(j.find("\"request_id\":"), std::string::npos);
    EXPECT_NE(j.find("\"batch_size\":"), std::string::npos);
    EXPECT_NE(j.find("\"queue_depth\":"), std::string::npos);
    EXPECT_NE(j.find("\"queue_seconds\":"), std::string::npos);
}

} // namespace
} // namespace mouse
