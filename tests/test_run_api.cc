/**
 * @file
 * Tests for the unified RunRequest/RunResult API: every legacy
 * Accelerator entry point must return stats identical to its
 * execute() equivalent, and RunResult must serialize to JSON with
 * the documented keys.
 */

#include <gtest/gtest.h>

#include "core/accelerator.hh"

// This file deliberately calls the deprecated shims: the equivalence
// tests below are what keeps them honest until their removal
// (docs/EXPERIMENTS_API.md, "Legacy entry points").
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"

namespace mouse
{
namespace
{

MouseConfig
smallConfig()
{
    MouseConfig cfg;
    cfg.tech = TechConfig::ProjectedStt;
    cfg.array.tileRows = 128;
    cfg.array.tileCols = 8;
    cfg.array.numDataTiles = 2;
    cfg.array.numInstructionTiles = 512;
    return cfg;
}

Program
adderProgram(const Accelerator &acc)
{
    KernelBuilder kb(acc.gateLibrary(), acc.config().array, 0, 16);
    kb.activate(0, 3);
    const Word a = kb.pinnedWord(0, 4);
    const Word b = kb.pinnedWord(8, 4);
    (void)kb.add(a, b);
    return kb.finish();
}

void
expectSameStats(const RunStats &a, const RunStats &b)
{
    EXPECT_EQ(a.instructionsCommitted, b.instructionsCommitted);
    EXPECT_EQ(a.instructionsDead, b.instructionsDead);
    EXPECT_EQ(a.outages, b.outages);
    EXPECT_EQ(a.activeTime, b.activeTime);
    EXPECT_EQ(a.deadTime, b.deadTime);
    EXPECT_EQ(a.restoreTime, b.restoreTime);
    EXPECT_EQ(a.chargingTime, b.chargingTime);
    EXPECT_EQ(a.computeEnergy, b.computeEnergy);
    EXPECT_EQ(a.backupEnergy, b.backupEnergy);
    EXPECT_EQ(a.deadEnergy, b.deadEnergy);
    EXPECT_EQ(a.restoreEnergy, b.restoreEnergy);
    EXPECT_EQ(a.idleEnergy, b.idleEnergy);
}

TEST(RunApi, ExecuteMatchesRunContinuous)
{
    Accelerator legacy(smallConfig());
    const Program prog = adderProgram(legacy);
    legacy.loadProgram(prog);
    const RunStats want = legacy.runContinuous();

    Accelerator unified(smallConfig());
    unified.loadProgram(prog);
    RunRequest req;
    req.fidelity = Fidelity::Functional;
    req.power = PowerMode::Continuous;
    const RunResult got = unified.execute(req);
    expectSameStats(want, got.stats);
    EXPECT_GE(got.wallSeconds, 0.0);
    EXPECT_FALSE(got.meta.tech.empty());
}

TEST(RunApi, ExecuteMatchesRunHarvested)
{
    HarvestConfig harvest;
    harvest.sourcePower = 2e-6;
    harvest.seed = 99;

    Accelerator legacy(smallConfig());
    const Program prog = adderProgram(legacy);
    legacy.loadProgram(prog);
    const RunStats want = legacy.runHarvested(harvest);

    Accelerator unified(smallConfig());
    unified.loadProgram(prog);
    RunRequest req;
    req.fidelity = Fidelity::Functional;
    req.power = PowerMode::Harvested;
    req.harvest = harvest;
    const RunResult got = unified.execute(req);
    expectSameStats(want, got.stats);
    EXPECT_EQ(got.meta.seed, 99u);
    EXPECT_EQ(got.meta.sourcePower, 2e-6);
}

TEST(RunApi, ExecuteMatchesSimulateContinuousAndHarvested)
{
    Accelerator acc(smallConfig());
    const Program prog = adderProgram(acc);
    const Trace trace = Trace::fromProgram(prog, acc.config().array);

    const RunStats want_cont = acc.simulateContinuous(trace);
    RunRequest req;
    req.fidelity = Fidelity::Trace;
    req.power = PowerMode::Continuous;
    req.trace = &trace;
    expectSameStats(want_cont, acc.execute(req).stats);

    HarvestConfig harvest;
    harvest.sourcePower = 1e-3;
    const RunStats want_harv = acc.simulateHarvested(trace, harvest);
    req.power = PowerMode::Harvested;
    req.harvest = harvest;
    expectSameStats(want_harv, acc.execute(req).stats);
}

TEST(RunApi, LabelIsEchoedIntoMeta)
{
    Accelerator acc(smallConfig());
    const Program prog = adderProgram(acc);
    const Trace trace = Trace::fromProgram(prog, acc.config().array);
    RunRequest req;
    req.fidelity = Fidelity::Trace;
    req.trace = &trace;
    req.label = "point-7";
    EXPECT_EQ(acc.execute(req).meta.label, "point-7");
}

TEST(RunApi, JsonCarriesStatsAndMeta)
{
    Accelerator acc(smallConfig());
    const Program prog = adderProgram(acc);
    const Trace trace = Trace::fromProgram(prog, acc.config().array);
    RunRequest req;
    req.fidelity = Fidelity::Trace;
    req.trace = &trace;
    req.label = "json \"probe\"";
    const RunResult res = acc.execute(req);
    const std::string j = res.toJson();
    EXPECT_NE(j.find("\"instructions_committed\":"),
              std::string::npos);
    EXPECT_NE(j.find("\"total_energy_j\":"), std::string::npos);
    EXPECT_NE(j.find("\"wall_seconds\":"), std::string::npos);
    EXPECT_NE(j.find("\"tech\":\"Projected STT\""),
              std::string::npos);
    // Quotes in labels must be escaped.
    EXPECT_NE(j.find("json \\\"probe\\\""), std::string::npos);
    EXPECT_EQ(j.front(), '{');
    EXPECT_EQ(j.back(), '}');
}

TEST(RunApi, TraceFidelityWithoutTraceDies)
{
    Accelerator acc(smallConfig());
    RunRequest req;
    req.fidelity = Fidelity::Trace;
    EXPECT_EXIT(acc.execute(req), testing::ExitedWithCode(1),
                "needs a trace");
}

} // namespace
} // namespace mouse

#pragma GCC diagnostic pop
