/**
 * @file
 * Tests for the energy model (NVSim-calibrated peripheral shares,
 * backup/restore pricing) and the Table III area model.
 */

#include <gtest/gtest.h>

#include "energy/area_model.hh"
#include "energy/energy_model.hh"

namespace mouse
{
namespace
{

class EnergyModelTech : public ::testing::TestWithParam<TechConfig>
{
  protected:
    EnergyModelTech()
        : lib_(makeDeviceConfig(GetParam())), energy_(lib_)
    {
    }

    GateLibrary lib_;
    EnergyModel energy_;
};

TEST_P(EnergyModelTech, PeripheralShareCalibration)
{
    // On the calibration anchor (1024-column write through the
    // generation's STT path), peripherals must consume exactly the
    // configured share of total energy.
    const DeviceConfig &cfg = lib_.config();
    const Amperes iw =
        GateLibrary::kWriteOverdrive * cfg.mtj.switchingCurrent;
    const Joules anchor_cell =
        iw * iw * (cfg.mtj.rAntiParallel + cfg.accessTransistorR) *
        cfg.mtj.switchingTime;
    const Joules device = anchor_cell * 1024;
    const Joules periph = energy_.peripheralEnergy(1024);
    EXPECT_NEAR(periph / (periph + device), 0.57, 1e-9);
}

TEST(EnergyModelCross, ShePeripheralsEqualProjectedStt)
{
    // The SHE design shares peripheral CMOS with STT (the paper:
    // "SHE has no advantage over STT for an individual restart").
    const GateLibrary stt(makeDeviceConfig(TechConfig::ProjectedStt));
    const GateLibrary she(makeDeviceConfig(TechConfig::ProjectedShe));
    const EnergyModel e_stt(stt);
    const EnergyModel e_she(she);
    EXPECT_DOUBLE_EQ(e_stt.peripheralEnergy(256),
                     e_she.peripheralEnergy(256));
    // Near: the ACT shadow-register *read* goes through the cell's
    // own sense path, which differs slightly between the designs.
    EXPECT_NEAR(e_stt.restoreEnergy(1, 128),
                e_she.restoreEnergy(1, 128),
                0.01 * e_stt.restoreEnergy(1, 128));
}

TEST_P(EnergyModelTech, PeripheralEnergyGrowsWithColumns)
{
    EXPECT_LT(energy_.peripheralEnergy(1),
              energy_.peripheralEnergy(64));
    EXPECT_LT(energy_.peripheralEnergy(64),
              energy_.peripheralEnergy(1024));
    // But there is a fixed floor (decode + wordline select).
    EXPECT_GT(energy_.peripheralEnergy(0), 0.0);
}

TEST_P(EnergyModelTech, BackupIsFarCheaperThanWideInstructions)
{
    // Section IX: backup writes a few register bits per cycle and
    // must remain a small fraction of a many-column instruction.
    const Joules instr =
        energy_.estimateInstructionEnergy(Opcode::kGateNand2, 1024);
    EXPECT_LT(energy_.backupEnergyPerCycle(), instr * 0.15);
}

TEST_P(EnergyModelTech, RestoreScalesWithJournalAndColumns)
{
    EXPECT_LT(energy_.restoreEnergy(1, 4),
              energy_.restoreEnergy(3, 4));
    EXPECT_LT(energy_.restoreEnergy(1, 4),
              energy_.restoreEnergy(1, 1024));
    EXPECT_EQ(energy_.restoreCycles(3), 3u);
}

TEST_P(EnergyModelTech, EstimateCoversAllOpcodes)
{
    for (int op = 0;
         op < static_cast<int>(Opcode::kNumOpcodes); ++op) {
        const Joules e = energy_.estimateInstructionEnergy(
            static_cast<Opcode>(op), 16);
        if (static_cast<Opcode>(op) == Opcode::kHalt) {
            EXPECT_EQ(e, 0.0);
        } else {
            EXPECT_GT(e, 0.0) << "opcode " << op;
        }
    }
}

TEST_P(EnergyModelTech, FetchChargesSixtyFourBits)
{
    EXPECT_GT(energy_.fetchEnergy(),
              lib_.readOp().energy * 64);
}

INSTANTIATE_TEST_SUITE_P(AllTechs, EnergyModelTech,
                         ::testing::Values(TechConfig::ModernStt,
                                           TechConfig::ProjectedStt,
                                           TechConfig::ProjectedShe));

TEST(EnergyOrdering, TechnologiesRankAsInThePaper)
{
    const GateLibrary modern(makeDeviceConfig(TechConfig::ModernStt));
    const GateLibrary proj(makeDeviceConfig(TechConfig::ProjectedStt));
    const GateLibrary she(makeDeviceConfig(TechConfig::ProjectedShe));
    const EnergyModel em(modern);
    const EnergyModel ep(proj);
    const EnergyModel es(she);
    const Joules e_m =
        em.estimateInstructionEnergy(Opcode::kGateNand2, 1024);
    const Joules e_p =
        ep.estimateInstructionEnergy(Opcode::kGateNand2, 1024);
    const Joules e_s =
        es.estimateInstructionEnergy(Opcode::kGateNand2, 1024);
    EXPECT_GT(e_m, e_p);
    EXPECT_GT(e_p, e_s);
}

TEST(AreaModel, RoundUpPow2)
{
    EXPECT_EQ(roundUpPow2Mb(0.3), 1.0);
    EXPECT_EQ(roundUpPow2Mb(1.0), 1.0);
    EXPECT_EQ(roundUpPow2Mb(1.1), 2.0);
    EXPECT_EQ(roundUpPow2Mb(34.5), 64.0);
    EXPECT_EQ(roundUpPow2Mb(8.0), 8.0);
}

TEST(AreaModel, ReproducesTableThree)
{
    // Table III: benchmark footprints vs the paper's mm^2 values.
    const struct
    {
        double mb;
        double modern;
        double projected;
        double she;
    } rows[] = {
        {64.0, 50.98, 38.67, 77.35},
        {8.0, 5.43, 4.13, 8.24},
        {16.0, 10.86, 8.24, 16.48},
        {1.0, 0.71, 0.53, 1.06},
    };
    // Tolerance 2.5 %: Table III prints two decimals, so the small
    // (1 MB) row carries ~1.6 % rounding in the technology ratios.
    for (const auto &row : rows) {
        EXPECT_NEAR(mouseArea(TechConfig::ModernStt, row.mb),
                    row.modern, 0.025 * row.modern)
            << row.mb << " MB";
        EXPECT_NEAR(mouseArea(TechConfig::ProjectedStt, row.mb),
                    row.projected, 0.025 * row.projected);
        EXPECT_NEAR(mouseArea(TechConfig::ProjectedShe, row.mb),
                    row.she, 0.025 * row.she);
    }
}

TEST(AreaModel, SheCostsRoughlyTwiceProjectedStt)
{
    // Section VIII: the second access transistor doubles cell area.
    for (double mb : {1.0, 8.0, 64.0}) {
        const double ratio =
            mouseArea(TechConfig::ProjectedShe, mb) /
            mouseArea(TechConfig::ProjectedStt, mb);
        EXPECT_NEAR(ratio, 2.0, 0.05);
    }
}

TEST(AreaModel, FootprintHelperRoundsUp)
{
    EXPECT_DOUBLE_EQ(
        mouseAreaForFootprint(TechConfig::ModernStt, 34.5),
        mouseArea(TechConfig::ModernStt, 64.0));
}

} // namespace
} // namespace mouse
