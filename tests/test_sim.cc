/**
 * @file
 * Tests for the simulators: trace/functional agreement, harvesting
 * behaviour (outages, breakdown accounting, power sweeps), and the
 * headline intermittent-correctness property — a harvested run with
 * many real outages produces exactly the same memory contents as a
 * continuously powered one.
 */

#include <gtest/gtest.h>

#include "compile/builder.hh"
#include "sim/simulator.hh"

namespace mouse
{
namespace
{

/** Shared workload: an 8-bit multiply in 4 SIMD columns. */
class SimTest : public ::testing::Test
{
  protected:
    SimTest() : lib_(makeDeviceConfig(TechConfig::ProjectedStt))
    {
        cfg_.tileRows = 128;
        cfg_.tileCols = 8;
        cfg_.numDataTiles = 1;
        cfg_.numInstructionTiles = 512;
    }

    Program
    buildWorkload(Word &product)
    {
        KernelBuilder kb(lib_, cfg_, 0, 24);
        kb.activate(0, 3);
        const Word a = kb.pinnedWord(0, 6);
        const Word b = kb.pinnedWord(12, 6);
        product = kb.mulUnsigned(a, b);
        return kb.finish();
    }

    void
    seed(TileGrid &grid)
    {
        const std::uint64_t avals[4] = {11, 63, 0, 37};
        const std::uint64_t bvals[4] = {52, 63, 9, 1};
        for (ColAddr c = 0; c < 4; ++c) {
            for (unsigned i = 0; i < 6; ++i) {
                grid.tile(0).setBit(static_cast<RowAddr>(2 * i), c,
                                    (avals[c] >> i) & 1);
                grid.tile(0).setBit(static_cast<RowAddr>(12 + 2 * i),
                                    c, (bvals[c] >> i) & 1);
            }
        }
    }

    std::uint64_t
    readProduct(TileGrid &grid, const Word &product, ColAddr col)
    {
        std::uint64_t v = 0;
        for (std::size_t i = 0; i < product.size(); ++i) {
            v |= static_cast<std::uint64_t>(
                     grid.tile(0).bit(product[i].row, col))
                 << i;
        }
        return v;
    }

    GateLibrary lib_;
    ArrayConfig cfg_;
};

TEST_F(SimTest, ContinuousFunctionalComputesProducts)
{
    Word product;
    const Program prog = buildWorkload(product);
    TileGrid grid(cfg_, lib_);
    seed(grid);
    InstructionMemory imem(cfg_);
    imem.load(prog.encode());
    EnergyModel energy(lib_);
    Controller ctrl(grid, imem, energy);

    const RunStats stats = runContinuousFunctional(ctrl);
    EXPECT_EQ(readProduct(grid, product, 0), 11u * 52u);
    EXPECT_EQ(readProduct(grid, product, 1), 63u * 63u);
    EXPECT_EQ(readProduct(grid, product, 2), 0u);
    EXPECT_EQ(readProduct(grid, product, 3), 37u);

    EXPECT_EQ(stats.instructionsCommitted, prog.size() - 1);
    EXPECT_EQ(stats.outages, 0u);
    EXPECT_EQ(stats.deadEnergy, 0.0);
    EXPECT_EQ(stats.restoreEnergy, 0.0);
    EXPECT_EQ(stats.chargingTime, 0.0);
    EXPECT_GT(stats.computeEnergy, 0.0);
    EXPECT_GT(stats.backupEnergy, 0.0);
}

TEST_F(SimTest, TraceMatchesFunctionalCyclesAndApproxEnergy)
{
    Word product;
    const Program prog = buildWorkload(product);

    // Functional run.
    TileGrid grid(cfg_, lib_);
    seed(grid);
    InstructionMemory imem(cfg_);
    imem.load(prog.encode());
    EnergyModel energy(lib_);
    Controller ctrl(grid, imem, energy);
    const RunStats functional = runContinuousFunctional(ctrl);

    // Trace run of the same program.
    const Trace trace = Trace::fromProgram(prog, cfg_);
    const RunStats traced = runContinuousTrace(trace, energy);

    // Cycle counts are exact (the instruction stream is static)...
    EXPECT_EQ(traced.instructionsCommitted,
              functional.instructionsCommitted);
    // The functional run adds one extra fetch for HALT.
    EXPECT_NEAR(traced.activeTime,
                functional.activeTime - energy.cycleTime(),
                1e-12);
    EXPECT_DOUBLE_EQ(traced.backupEnergy, functional.backupEnergy);
    // ...and energy agrees to the data-dependence of gate currents.
    EXPECT_NEAR(traced.computeEnergy, functional.computeEnergy,
                0.3 * functional.computeEnergy);
}

TEST_F(SimTest, HarvestedFunctionalMatchesContinuousResults)
{
    // The paper's headline correctness claim, end to end: outages at
    // arbitrary micro-steps never change the computed product.
    Word product;
    const Program prog = buildWorkload(product);
    EnergyModel energy(lib_);

    for (Watts power : {3e-6, 10e-6, 60e-6}) {
        for (std::uint64_t seed_v : {1ull, 7ull, 99ull}) {
            TileGrid grid(cfg_, lib_);
            seed(grid);
            InstructionMemory imem(cfg_);
            imem.load(prog.encode());
            Controller ctrl(grid, imem, energy);

            HarvestConfig harvest;
            harvest.source = SourceSpec::constant(power);
            harvest.seed = seed_v;
            const RunStats stats =
                runHarvestedFunctional(ctrl, harvest);

            EXPECT_EQ(readProduct(grid, product, 0), 11u * 52u)
                << "power " << power << " seed " << seed_v;
            EXPECT_EQ(readProduct(grid, product, 1), 63u * 63u);
            EXPECT_EQ(readProduct(grid, product, 3), 37u);
            EXPECT_EQ(stats.instructionsCommitted, prog.size() - 1);
            EXPECT_GT(stats.chargingTime, 0.0);
        }
    }
}

TEST_F(SimTest, HarvestedTraceBreakdownAccounting)
{
    Word product;
    const Program prog = buildWorkload(product);
    const Trace trace = Trace::fromProgram(prog, cfg_);
    EnergyModel energy(lib_);

    HarvestConfig harvest;
    harvest.source = SourceSpec::constant(60e-6);
    const RunStats stats = runHarvestedTrace(trace, energy, harvest);

    EXPECT_EQ(stats.instructionsCommitted, trace.totalInstructions());
    // Breakdown components must sum to the total exactly.
    EXPECT_NEAR(stats.totalEnergy(),
                stats.computeEnergy + stats.backupEnergy +
                    stats.deadEnergy + stats.restoreEnergy +
                    stats.idleEnergy,
                1e-18);
    EXPECT_GT(stats.computeEnergy, 0.0);
    EXPECT_GT(stats.backupEnergy, 0.0);
    // The projected-tech buffer is small enough that this workload
    // needs at least one recharge.
    EXPECT_GT(stats.chargingTime, 0.0);
}

TEST_F(SimTest, LatencyFallsAsPowerRises)
{
    Word product;
    const Program prog = buildWorkload(product);
    const Trace trace = Trace::fromProgram(prog, cfg_);
    EnergyModel energy(lib_);

    Seconds prev = 1e18;
    for (Watts power : {1e-6, 10e-6, 100e-6, 1e-3}) {
        HarvestConfig harvest;
        harvest.source = SourceSpec::constant(power);
        const RunStats stats =
            runHarvestedTrace(trace, energy, harvest);
        EXPECT_LT(stats.totalTime(), prev) << "power " << power;
        prev = stats.totalTime();
    }
}

TEST_F(SimTest, EnergyNearlyIndependentOfPower)
{
    // Section IX: MOUSE spends negligible energy while off, so total
    // energy barely moves across the power sweep.
    Word product;
    const Program prog = buildWorkload(product);
    const Trace trace = Trace::fromProgram(prog, cfg_);
    EnergyModel energy(lib_);

    HarvestConfig lo;
    lo.source = SourceSpec::constant(1e-6);
    HarvestConfig hi;
    hi.source = SourceSpec::constant(1e-3);
    const RunStats slow = runHarvestedTrace(trace, energy, lo);
    const RunStats fast = runHarvestedTrace(trace, energy, hi);
    EXPECT_NEAR(slow.totalEnergy(), fast.totalEnergy(),
                0.1 * fast.totalEnergy());
    EXPECT_GE(slow.totalEnergy(), fast.totalEnergy());
}

TEST_F(SimTest, MoreOutagesAtLowerPowerAndDeadEnergyOrdering)
{
    Word product;
    const Program prog = buildWorkload(product);
    EnergyModel energy(lib_);

    std::uint64_t prev_outages = ~0ull;
    for (Watts power : {1e-6, 60e-6}) {
        TileGrid grid(cfg_, lib_);
        seed(grid);
        InstructionMemory imem(cfg_);
        imem.load(prog.encode());
        Controller ctrl(grid, imem, energy);
        HarvestConfig harvest;
        harvest.source = SourceSpec::constant(power);
        const RunStats stats = runHarvestedFunctional(ctrl, harvest);
        EXPECT_LE(stats.outages, prev_outages);
        EXPECT_EQ(stats.instructionsDead, stats.outages);
        prev_outages = stats.outages;
    }
}

TEST_F(SimTest, ContinuousTraceHasNoIntermittentCosts)
{
    Word product;
    const Program prog = buildWorkload(product);
    const Trace trace = Trace::fromProgram(prog, cfg_);
    EnergyModel energy(lib_);
    const RunStats stats = runContinuousTrace(trace, energy);
    // Restore and Dead are zero under continuous power (Section IX).
    EXPECT_EQ(stats.deadEnergy, 0.0);
    EXPECT_EQ(stats.restoreEnergy, 0.0);
    EXPECT_EQ(stats.deadTime, 0.0);
    EXPECT_EQ(stats.restoreTime, 0.0);
    EXPECT_EQ(stats.chargingTime, 0.0);
    EXPECT_EQ(stats.outages, 0u);
}

TEST_F(SimTest, CheckpointPeriodTradeoff)
{
    Word product;
    const Program prog = buildWorkload(product);
    const Trace trace = Trace::fromProgram(prog, cfg_);
    EnergyModel energy(lib_);

    HarvestConfig base;
    base.source = SourceSpec::constant(1e-6);
    base.capacitanceOverride = 2e-9;  // force outages
    const RunStats p1 = runHarvestedTrace(trace, energy, base);
    ASSERT_GT(p1.outages, 0u);

    HarvestConfig wide = base;
    wide.checkpointPeriod = 32;
    const RunStats p32 = runHarvestedTrace(trace, energy, wide);

    // Wider period: strictly less backup, strictly more dead work.
    EXPECT_LT(p32.backupEnergy, p1.backupEnergy / 8);
    EXPECT_GT(p32.deadEnergy, p1.deadEnergy);
    // Committed work is unchanged.
    EXPECT_EQ(p32.instructionsCommitted, p1.instructionsCommitted);
}

TEST_F(SimTest, CheckpointPeriodOneIsDefaultBehaviour)
{
    Word product;
    const Program prog = buildWorkload(product);
    const Trace trace = Trace::fromProgram(prog, cfg_);
    EnergyModel energy(lib_);
    HarvestConfig a;
    a.source = SourceSpec::constant(10e-6);
    HarvestConfig b = a;
    b.checkpointPeriod = 1;
    const RunStats ra = runHarvestedTrace(trace, energy, a);
    const RunStats rb = runHarvestedTrace(trace, energy, b);
    EXPECT_DOUBLE_EQ(ra.totalEnergy(), rb.totalEnergy());
    EXPECT_DOUBLE_EQ(ra.totalTime(), rb.totalTime());
}

TEST(RunStatsDerived, SharesAreZeroWhenTotalsAreZero)
{
    // A default-constructed RunStats has zero totals; every derived
    // share must return 0, not NaN, so JSON dumps stay parseable and
    // comparisons stay meaningful.
    const RunStats zero;
    EXPECT_DOUBLE_EQ(zero.totalTime(), 0.0);
    EXPECT_DOUBLE_EQ(zero.totalEnergy(), 0.0);
    EXPECT_DOUBLE_EQ(zero.deadEnergyShare(), 0.0);
    EXPECT_DOUBLE_EQ(zero.backupEnergyShare(), 0.0);
    EXPECT_DOUBLE_EQ(zero.restoreEnergyShare(), 0.0);
    EXPECT_DOUBLE_EQ(zero.deadTimeShare(), 0.0);
    EXPECT_DOUBLE_EQ(zero.restoreTimeShare(), 0.0);
}

TEST(RunStatsDerived, SharesPartitionTheTotals)
{
    RunStats s;
    s.activeTime = 3.0;
    s.deadTime = 1.0;
    s.restoreTime = 0.5;
    s.chargingTime = 0.5;
    s.computeEnergy = 6.0;
    s.backupEnergy = 2.0;
    s.deadEnergy = 1.0;
    s.restoreEnergy = 0.5;
    s.idleEnergy = 0.5;
    EXPECT_DOUBLE_EQ(s.totalTime(), 5.0);
    EXPECT_DOUBLE_EQ(s.totalEnergy(), 10.0);
    EXPECT_DOUBLE_EQ(s.deadEnergyShare(), 0.1);
    EXPECT_DOUBLE_EQ(s.backupEnergyShare(), 0.2);
    EXPECT_DOUBLE_EQ(s.restoreEnergyShare(), 0.05);
    EXPECT_DOUBLE_EQ(s.deadTimeShare(), 0.2);
    EXPECT_DOUBLE_EQ(s.restoreTimeShare(), 0.1);
}

TEST(RunStatsDerived, SummaryIsCompleteForZeroAndPopulatedStats)
{
    // summary() on all-zero stats must not emit nan/inf anywhere.
    const std::string zero = RunStats{}.summary();
    EXPECT_EQ(zero.find("nan"), std::string::npos) << zero;
    EXPECT_EQ(zero.find("inf"), std::string::npos) << zero;
    EXPECT_NE(zero.find("instructions: 0 committed"),
              std::string::npos)
        << zero;

    RunStats s;
    s.instructionsCommitted = 12;
    s.instructionsDead = 3;
    s.outages = 2;
    s.activeTime = 1e-6;
    s.computeEnergy = 4e-6;
    const std::string text = s.summary();
    EXPECT_NE(text.find("12 committed"), std::string::npos) << text;
    EXPECT_NE(text.find("3 dead"), std::string::npos) << text;
    EXPECT_NE(text.find("2 outages"), std::string::npos) << text;
    EXPECT_NE(text.find("latency [us]"), std::string::npos) << text;
    EXPECT_NE(text.find("energy [uJ]"), std::string::npos) << text;
}

TEST(SimNonTermination, DetectedAndFatal)
{
    // A giant per-instruction cost (4096-wide activation on modern
    // tech with a microscopic buffer) can never fit in one burst.
    GateLibrary lib(makeDeviceConfig(TechConfig::ModernStt));
    EnergyModel energy(lib);
    Trace trace;
    trace.append(Opcode::kGateNand2, 1024, 1024, 10);

    HarvestConfig harvest;
    harvest.source = SourceSpec::constant(60e-6);
    EXPECT_EXIT(
        {
            // Shrink the buffer via a custom config: reuse modern
            // voltages but a 1 nF capacitor.
            DeviceConfig tiny = makeDeviceConfig(TechConfig::ModernStt);
            tiny.bufferCapacitance = 1e-9;
            GateLibrary tiny_lib(tiny);
            EnergyModel tiny_energy(tiny_lib);
            runHarvestedTrace(trace, tiny_energy, harvest);
        },
        ::testing::ExitedWithCode(1), "non-termination");
}

} // namespace
} // namespace mouse
