/**
 * @file
 * Fault-injection engine tests (src/inject, docs/FAULT_INJECTION.md).
 *
 * The headline claims proved here:
 *  - MOUSE (per-cycle checkpointing, journal restored) survives an
 *    exhaustive campaign — every attempt x micro-step x fraction —
 *    with zero mismatches and zero re-execution.
 *  - A SONIC-style checkpoint window yields *reexecuted* verdicts
 *    (state identical, extra commits), never corruption.
 *  - Disabling the journal-restore path produces real corruption,
 *    which the shrinker minimizes to a single-outage reproducer.
 *  - Reports are byte-identical across thread counts.
 */

#include <gtest/gtest.h>

#include "inject/campaign.hh"
#include "inject/env_schedule.hh"
#include "inject/replay.hh"
#include "arch/tile.hh"
#include "inject/workload.hh"
#include "sim/outage_schedule.hh"

using namespace mouse;
using namespace mouse::inject;

namespace
{

CampaignWorkload
gates()
{
    auto w = makeCampaignWorkload("gates");
    EXPECT_TRUE(w.has_value());
    return *w;
}

} // namespace

// ---------------------------------------------------------------------
// Schedule plumbing.
// ---------------------------------------------------------------------

TEST(OutageScheduleJson, RoundTrips)
{
    OutageSchedule s;
    s.checkpointPeriod = 4;
    s.restoreJournal = false;
    s.points.push_back({7, MicroStep::kCommit, 1.0});
    s.points.push_back({2, MicroStep::kFetch, 0.25});
    s.normalize();
    ASSERT_EQ(s.points[0].attempt, 2u);

    const auto back = OutageSchedule::fromJson(s.toJson());
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->checkpointPeriod, 4u);
    EXPECT_FALSE(back->restoreJournal);
    ASSERT_EQ(back->points.size(), 2u);
    EXPECT_EQ(back->points[0], s.points[0]);
    EXPECT_EQ(back->points[1], s.points[1]);
}

TEST(OutageScheduleJson, RejectsMalformedInput)
{
    EXPECT_FALSE(OutageSchedule::fromJson("").has_value());
    EXPECT_FALSE(OutageSchedule::fromJson("not json").has_value());
    EXPECT_FALSE(
        OutageSchedule::fromJson("{\"outages\":[{\"step\":"
                                 "\"warp\"}]}")
            .has_value());
}

TEST(OutageScheduleJson, MicroStepNamesRoundTrip)
{
    for (MicroStep s :
         {MicroStep::kFetch, MicroStep::kExecute, MicroStep::kWritePc,
          MicroStep::kCommit}) {
        const auto back = parseMicroStep(microStepName(s));
        ASSERT_TRUE(back.has_value());
        EXPECT_EQ(*back, s);
    }
    EXPECT_FALSE(parseMicroStep("warp").has_value());
}

// ---------------------------------------------------------------------
// Scheduled runner semantics.
// ---------------------------------------------------------------------

TEST(ScheduledRun, EmptyScheduleEqualsContinuousRun)
{
    const CampaignWorkload w = gates();

    auto cont = freshRun(w);
    RunRequest creq;
    const RunResult cres = cont->execute(creq);
    const MachineState cstate = captureState(*cont);

    auto sched = freshRun(w);
    OutageSchedule empty;
    RunRequest sreq;
    sreq.power = PowerMode::Scheduled;
    sreq.schedule = observe(empty);
    const RunResult sres = sched->execute(sreq);
    const MachineState sstate = captureState(*sched);

    EXPECT_EQ(sres.stats.instructionsCommitted,
              cres.stats.instructionsCommitted);
    EXPECT_EQ(sres.stats.outages, 0u);
    EXPECT_EQ(diffState(cstate, sstate), "");
}

TEST(ScheduledRun, OutageIsCountedAndRunStillCompletes)
{
    const CampaignWorkload w = gates();
    OutageSchedule s;
    s.points.push_back({3, MicroStep::kExecute, 0.5});

    auto acc = freshRun(w);
    RunRequest req;
    req.power = PowerMode::Scheduled;
    req.schedule = observe(s);
    const RunResult res = acc->execute(req);
    EXPECT_TRUE(acc->controller().halted());
    EXPECT_EQ(res.stats.outages, 1u);
    EXPECT_EQ(res.stats.instructionsDead, 1u);
}

// ---------------------------------------------------------------------
// The headline result: MOUSE is intermittent-correct at every cut.
// ---------------------------------------------------------------------

TEST(Campaign, ExhaustiveMouseCampaignIsClean)
{
    const CampaignWorkload w = gates();
    CampaignConfig cfg;
    const CampaignReport r = runCampaign(w, cfg);

    EXPECT_GT(r.goldenCommitted, 0u);
    // Every attempt (including the HALT step) x 4 micro-steps x 3
    // fractions.
    EXPECT_EQ(r.points, r.goldenAttempts * 4 * 3);
    EXPECT_EQ(r.mismatches, 0u);
    EXPECT_EQ(r.replays, 0u);
    EXPECT_EQ(r.verdicts[static_cast<std::size_t>(Verdict::kMatch)],
              r.points);
    EXPECT_TRUE(r.clean());
    EXPECT_TRUE(r.failures.empty());

    // The stat tree folded one count per point.
    ASSERT_TRUE(r.stats != nullptr);
    EXPECT_EQ(
        static_cast<std::uint64_t>(
            r.stats->counterValue("inject.points")),
        r.points);
    EXPECT_EQ(r.stats->counterValue("inject.mismatches"), 0.0);
}

TEST(Campaign, RandomMultiOutageSchedulesAreCleanToo)
{
    const CampaignWorkload w = gates();
    CampaignConfig cfg;
    cfg.fractions = {0.5};
    cfg.randomSchedules = 24;
    cfg.maxOutagesPerSchedule = 4;
    const CampaignReport r = runCampaign(w, cfg);
    EXPECT_EQ(r.points, r.goldenAttempts * 4 + 24);
    EXPECT_EQ(r.mismatches, 0u);
}

// ---------------------------------------------------------------------
// SONIC-style window checkpointing: re-execution expected, not
// corruption.
// ---------------------------------------------------------------------

TEST(Campaign, SonicWindowReexecutesButStaysIdempotent)
{
    const CampaignWorkload w = gates();
    CampaignConfig cfg;
    cfg.checkpointPeriod = 4;
    cfg.fractions = {1.0};
    const CampaignReport r = runCampaign(w, cfg);

    EXPECT_EQ(r.mismatches, 0u) << "window replay must be idempotent";
    // Any cut past the first window boundary rolls back and
    // re-executes committed work.
    EXPECT_GT(
        r.verdicts[static_cast<std::size_t>(Verdict::kReexecuted)],
        0u);
    EXPECT_GT(r.replays, 0u);
    EXPECT_EQ(
        r.verdicts[static_cast<std::size_t>(Verdict::kCorrupted)],
        0u);
}

// ---------------------------------------------------------------------
// A deliberately broken restart path is caught and shrunk.
// ---------------------------------------------------------------------

TEST(Campaign, BrokenRestartPathIsCaughtAndShrunk)
{
    const CampaignWorkload w = gates();
    CampaignConfig cfg;
    cfg.restoreJournal = false;
    cfg.fractions = {0.5};
    const CampaignReport r = runCampaign(w, cfg);

    // Skipping the Activate-Columns replay leaves the column latch
    // empty: gate pulses after the first cut drive nothing.
    ASSERT_GT(r.mismatches, 0u)
        << "a defective restart path must not pass the checker";
    ASSERT_FALSE(r.failures.empty());
    for (const PointOutcome &f : r.failures) {
        EXPECT_EQ(f.verdict, Verdict::kCorrupted);
        EXPECT_FALSE(f.note.empty());
        // Single-cut schedules are already minimal.
        EXPECT_EQ(f.shrunk.points.size(), 1u);
    }
}

TEST(Shrinker, MinimizesMultiOutageScheduleToSinglePoint)
{
    const CampaignWorkload w = gates();

    // Golden reference.
    auto acc = freshRun(w);
    RunRequest req;
    const std::uint64_t committed =
        acc->execute(req).stats.instructionsCommitted;
    const MachineState golden = captureState(*acc);
    acc.reset();

    // Three outages; with restoreJournal off each alone corrupts,
    // so the shrinker must get down to exactly one point.
    OutageSchedule s;
    s.restoreJournal = false;
    s.points.push_back({1, MicroStep::kExecute, 0.5});
    s.points.push_back({3, MicroStep::kCommit, 1.0});
    s.points.push_back({5, MicroStep::kExecute, 0.5});

    const PointOutcome o =
        runSchedule(w, s, golden, committed, committed + 32);
    ASSERT_EQ(o.verdict, Verdict::kCorrupted);

    std::uint64_t runs = 0;
    const OutageSchedule small =
        shrinkSchedule(w, s, golden, committed, committed + 32, runs);
    EXPECT_EQ(small.points.size(), 1u);
    EXPECT_GT(runs, 0u);
    const PointOutcome confirm =
        runSchedule(w, small, golden, committed, committed + 32);
    EXPECT_EQ(confirm.verdict, Verdict::kCorrupted);
}

// ---------------------------------------------------------------------
// Determinism: the report is byte-identical for any thread count.
// ---------------------------------------------------------------------

TEST(Campaign, ReportIsByteIdenticalAcrossThreadCounts)
{
    const CampaignWorkload w = gates();
    CampaignConfig cfg;
    cfg.fractions = {0.0, 1.0};
    cfg.randomSchedules = 8;

    cfg.threads = 1;
    const std::string serial = runCampaign(w, cfg).toJson();
    cfg.threads = 4;
    const std::string parallel = runCampaign(w, cfg).toJson();
    EXPECT_EQ(serial, parallel);

    // And a failing campaign stays deterministic too (failures list
    // + shrinker results fold in index order).
    cfg.restoreJournal = false;
    cfg.threads = 1;
    const std::string fserial = runCampaign(w, cfg).toJson();
    cfg.threads = 4;
    const std::string fparallel = runCampaign(w, cfg).toJson();
    EXPECT_EQ(fserial, fparallel);
}

TEST(EnvSchedule, SquareSourceDrainsTheBucketDeterministically)
{
    // A 30% duty square at attempt scale: the drought phase must
    // starve the energy bucket and emit outage points, and the walk
    // is pure arithmetic, so two calls agree exactly.
    const SourceSpec square = SourceSpec::square(1e-4, 0.3, 1e-6);
    EnvScheduleParams params;
    params.attempts = 400;
    params.attemptEnergy = 25e-12;
    params.attemptPeriod = 1e-6;
    params.fallbackCapacitance = 100e-12;
    const OutageSchedule a = scheduleFromSource(square, params);
    const OutageSchedule b = scheduleFromSource(square, params);
    EXPECT_FALSE(a.points.empty());
    ASSERT_EQ(a.points.size(), b.points.size());
    for (std::size_t i = 0; i < a.points.size(); ++i) {
        EXPECT_EQ(a.points[i].attempt, b.points[i].attempt);
        EXPECT_EQ(a.points[i].step, b.points[i].step);
    }

    // A strong constant source never drains the bucket.
    const OutageSchedule calm = scheduleFromSource(
        SourceSpec::constant(5e-3), params);
    EXPECT_TRUE(calm.points.empty());
}

TEST(EnvSchedule, CampaignFoldsEnvSourcesIntoItsScheduleSet)
{
    const CampaignWorkload w = gates();
    CampaignConfig cfg;
    cfg.fractions = {0.5};
    cfg.randomSchedules = 2;
    const std::uint64_t baseline = runCampaign(w, cfg).points;

    cfg.envSources = {SourceSpec::square(1e-4, 0.3, 1e-6)};
    cfg.envPlatform = "nvp";
    const CampaignReport rep = runCampaign(w, cfg);
    const std::string j = rep.toJson();
    EXPECT_NE(j.find("\"env_sources\":[\"square\"]"),
              std::string::npos);
    EXPECT_NE(j.find("\"env_platform\":\"nvp\""),
              std::string::npos);
    // One extra schedule per environment source.
    EXPECT_EQ(rep.points, baseline + 1);
}

TEST(Campaign, ReportIsByteIdenticalScalarVsWordParallel)
{
    // The word-parallel tile fast path must not move a single
    // verdict: a campaign run through the retained scalar oracle
    // (the pre-fast-path model) serializes byte-for-byte the same.
    const CampaignWorkload w = gates();
    CampaignConfig cfg;
    cfg.fractions = {0.0, 0.5, 1.0};
    cfg.randomSchedules = 4;
    cfg.threads = 2;

    Tile::setScalarOracle(true);
    const std::string golden = runCampaign(w, cfg).toJson();
    Tile::setScalarOracle(false);
    const std::string fast = runCampaign(w, cfg).toJson();
    EXPECT_EQ(golden, fast);
}

// ---------------------------------------------------------------------
// Report and replay artifacts.
// ---------------------------------------------------------------------

TEST(Report, CarriesSchemaVersionAndVerdictTaxonomy)
{
    const CampaignWorkload w = gates();
    CampaignConfig cfg;
    cfg.fractions = {0.5};
    const std::string j = runCampaign(w, cfg).toJson();
    // mouse-lint: allow(schema-constants) -- golden pin: the test
    // hardcodes the published version on purpose, so an accidental
    // bump of the central constant fails here.
    EXPECT_NE(j.find("\"schema\":6"), std::string::npos);
    EXPECT_NE(j.find("\"workload\":\"gates\""), std::string::npos);
    EXPECT_NE(j.find("\"verdicts\":{\"match\":"), std::string::npos);
    EXPECT_NE(j.find("\"stat_registry\":"), std::string::npos);
    EXPECT_EQ(j.find("wall_seconds"), std::string::npos)
        << "report must not embed wall clock (byte-stable)";
}

TEST(Replay, ArtifactRoundTripsAndReproduces)
{
    OutageSchedule s;
    s.restoreJournal = false;
    s.points.push_back({2, MicroStep::kCommit, 1.0});

    const std::string artifact = replayArtifactJson("gates", s);
    const auto parsed = parseReplayArtifact(artifact);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->workload, "gates");
    ASSERT_EQ(parsed->schedule.points.size(), 1u);
    EXPECT_EQ(parsed->schedule.points[0], s.points[0]);
    EXPECT_FALSE(parsed->schedule.restoreJournal);

    const PointOutcome o =
        replaySchedule(gates(), parsed->schedule);
    EXPECT_EQ(o.verdict, Verdict::kCorrupted);
}

TEST(Replay, PicksShrunkScheduleOutOfCampaignReport)
{
    const CampaignWorkload w = gates();
    CampaignConfig cfg;
    cfg.restoreJournal = false;
    cfg.fractions = {0.5};
    const CampaignReport r = runCampaign(w, cfg);
    ASSERT_FALSE(r.failures.empty());

    const auto parsed = parseReplayArtifact(r.toJson());
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->workload, "gates");
    EXPECT_EQ(parsed->schedule.points.size(),
              r.failures[0].shrunk.points.size());

    const PointOutcome o = replaySchedule(w, parsed->schedule);
    EXPECT_EQ(o.verdict, Verdict::kCorrupted);
}

TEST(Replay, RejectsGarbage)
{
    EXPECT_FALSE(parseReplayArtifact("").has_value());
    EXPECT_FALSE(parseReplayArtifact("{\"workload\":\"gates\"}")
                     .has_value());
    EXPECT_FALSE(
        parseReplayArtifact("{\"schedule\":{\"outages\":[]}}")
            .has_value());
}

// ---------------------------------------------------------------------
// Workload registry.
// ---------------------------------------------------------------------

TEST(Workloads, RegistryIsConsistent)
{
    for (const std::string &name : campaignWorkloadNames()) {
        const auto w = makeCampaignWorkload(name);
        ASSERT_TRUE(w.has_value()) << name;
        EXPECT_EQ(w->name, name);
        EXPECT_FALSE(w->description.empty());
        EXPECT_GT(w->program.size(), 0u) << name;
    }
    EXPECT_FALSE(makeCampaignWorkload("no-such").has_value());
}

TEST(Workloads, SeedingIsDeterministic)
{
    const CampaignWorkload w = gates();
    auto a = freshRun(w);
    auto b = freshRun(w);
    EXPECT_EQ(diffState(captureState(*a), captureState(*b)), "");
}
