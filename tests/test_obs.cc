/**
 * @file
 * Tests for the telemetry subsystem: the hierarchical stat registry
 * (kinds, merge policies, formulas, JSON/CSV dumps), the Chrome
 * trace_event sink (well-formedness, caps, merge re-tagging), and —
 * the load-bearing property — bit-identical telemetry aggregates for
 * any sweep thread count, with RunStats untouched by tracing.
 */

#include <gtest/gtest.h>

#include <cctype>
#include <cstring>
#include <string>

#include "core/accelerator.hh"
#include "exp/names.hh"
#include "exp/runner.hh"
#include "obs/stat_registry.hh"
#include "obs/trace_sink.hh"

namespace mouse
{
namespace
{

// -- A tiny recursive-descent JSON syntax checker -------------------
//
// Enough to assert our hand-rolled serializers emit documents that a
// real parser (CI runs python3 -m json.tool) will accept: balanced
// structure, quoted keys, legal literals, no trailing commas.

class JsonChecker
{
  public:
    explicit JsonChecker(const std::string &text) : s_(text) {}

    bool
    valid()
    {
        skipWs();
        if (!value()) {
            return false;
        }
        skipWs();
        return pos_ == s_.size();
    }

  private:
    bool
    value()
    {
        if (pos_ >= s_.size()) {
            return false;
        }
        switch (s_[pos_]) {
          case '{':
            return object();
          case '[':
            return array();
          case '"':
            return string();
          case 't':
            return literal("true");
          case 'f':
            return literal("false");
          case 'n':
            return literal("null");
          default:
            return number();
        }
    }

    bool
    object()
    {
        ++pos_; // '{'
        skipWs();
        if (peek() == '}') {
            ++pos_;
            return true;
        }
        while (true) {
            skipWs();
            if (!string()) {
                return false;
            }
            skipWs();
            if (peek() != ':') {
                return false;
            }
            ++pos_;
            skipWs();
            if (!value()) {
                return false;
            }
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == '}') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    bool
    array()
    {
        ++pos_; // '['
        skipWs();
        if (peek() == ']') {
            ++pos_;
            return true;
        }
        while (true) {
            skipWs();
            if (!value()) {
                return false;
            }
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == ']') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    bool
    string()
    {
        if (peek() != '"') {
            return false;
        }
        ++pos_;
        while (pos_ < s_.size() && s_[pos_] != '"') {
            if (s_[pos_] == '\\') {
                ++pos_;
                if (pos_ >= s_.size()) {
                    return false;
                }
            }
            ++pos_;
        }
        if (pos_ >= s_.size()) {
            return false;
        }
        ++pos_; // closing quote
        return true;
    }

    bool
    number()
    {
        const std::size_t start = pos_;
        if (peek() == '-') {
            ++pos_;
        }
        while (pos_ < s_.size() &&
               (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
                s_[pos_] == '.' || s_[pos_] == 'e' ||
                s_[pos_] == 'E' || s_[pos_] == '+' ||
                s_[pos_] == '-')) {
            ++pos_;
        }
        return pos_ > start;
    }

    bool
    literal(const char *word)
    {
        const std::size_t n = std::strlen(word);
        if (s_.compare(pos_, n, word) != 0) {
            return false;
        }
        pos_ += n;
        return true;
    }

    char
    peek() const
    {
        return pos_ < s_.size() ? s_[pos_] : '\0';
    }

    void
    skipWs()
    {
        while (pos_ < s_.size() &&
               std::isspace(static_cast<unsigned char>(s_[pos_]))) {
            ++pos_;
        }
    }

    const std::string &s_;
    std::size_t pos_ = 0;
};

bool
validJson(const std::string &text)
{
    return JsonChecker(text).valid();
}

// -- StatRegistry ----------------------------------------------------

TEST(StatRegistry, RegistrationIsIdempotent)
{
    obs::StatRegistry reg;
    obs::Counter &a = reg.counter("sim.instr.committed");
    obs::Counter &b = reg.counter("sim.instr.committed");
    EXPECT_EQ(&a, &b);
    a += 3;
    b.increment();
    EXPECT_EQ(reg.findCounter("sim.instr.committed")->value(), 4u);
    EXPECT_EQ(reg.size(), 1u);
}

TEST(StatRegistry, DottedNamesNestInJson)
{
    obs::StatRegistry reg;
    reg.counter("sim.outage.count") += 7;
    reg.scalar("sim.energy.total_j").set(1.5);
    reg.counter("tile.0.ops") += 11;
    reg.counter("tile.1.ops") += 13;
    const std::string j = reg.toJson();
    EXPECT_TRUE(validJson(j)) << j;
    // Groups open once and hold their children.
    EXPECT_NE(j.find("\"sim\":{"), std::string::npos) << j;
    EXPECT_NE(j.find("\"outage\":{\"count\":7}"), std::string::npos)
        << j;
    EXPECT_NE(j.find("\"tile\":{\"0\":{\"ops\":11},\"1\":{\"ops\":13}}"),
              std::string::npos)
        << j;
    // Leaf names never appear with their dotted prefix.
    EXPECT_EQ(j.find("sim.outage"), std::string::npos) << j;
}

TEST(StatRegistry, HistogramMomentsAreExact)
{
    obs::StatRegistry reg;
    obs::Histogram &h = reg.histogram("lat");
    double sum = 0.0;
    for (int i = 1; i <= 1000; ++i) {
        h.sample(static_cast<double>(i));
        sum += i;
    }
    EXPECT_EQ(h.count(), 1000u);
    EXPECT_DOUBLE_EQ(h.sum(), sum);
    EXPECT_DOUBLE_EQ(h.min(), 1.0);
    EXPECT_DOUBLE_EQ(h.max(), 1000.0);
    EXPECT_DOUBLE_EQ(h.mean(), sum / 1000.0);
}

TEST(StatRegistry, HistogramPercentilesTrackTheDistribution)
{
    obs::Histogram h;
    for (int i = 1; i <= 1000; ++i) {
        h.sample(static_cast<double>(i));
    }
    // Buckets are geometric (8/decade, ratio ~1.33), so allow one
    // bucket of slack around the exact order statistics.
    EXPECT_NEAR(h.percentile(0.5), 500.0, 500.0 * 0.35);
    EXPECT_NEAR(h.percentile(0.9), 900.0, 900.0 * 0.35);
    // The tails clamp to the exact observed extremes.
    EXPECT_DOUBLE_EQ(h.percentile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(h.percentile(1.0), 1000.0);
    EXPECT_LE(h.percentile(0.999), 1000.0);
}

TEST(StatRegistry, HistogramHandlesNonPositiveAndEmpty)
{
    obs::Histogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.5), 0.0);
    h.sample(0.0);
    h.sample(-3.0);
    EXPECT_EQ(h.count(), 2u);
    EXPECT_DOUBLE_EQ(h.min(), -3.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.5), -3.0);
}

TEST(StatRegistry, ScalarMergePolicies)
{
    obs::StatRegistry a;
    obs::StatRegistry b;
    a.scalar("v.min", obs::MergePolicy::kMin).observe(2.0);
    a.scalar("v.max", obs::MergePolicy::kMax).observe(2.0);
    a.scalar("v.sum", obs::MergePolicy::kSum).observe(2.0);
    b.scalar("v.min", obs::MergePolicy::kMin).observe(1.0);
    b.scalar("v.max", obs::MergePolicy::kMax).observe(5.0);
    b.scalar("v.sum", obs::MergePolicy::kSum).observe(3.0);
    a.merge(b);
    EXPECT_DOUBLE_EQ(a.scalarValue("v.min"), 1.0);
    EXPECT_DOUBLE_EQ(a.scalarValue("v.max"), 5.0);
    EXPECT_DOUBLE_EQ(a.scalarValue("v.sum"), 5.0);
    // An untouched scalar must not poison a min-merge with its 0.
    obs::StatRegistry c;
    c.scalar("v.min", obs::MergePolicy::kMin);
    c.merge(a);
    EXPECT_DOUBLE_EQ(c.scalarValue("v.min"), 1.0);
}

TEST(StatRegistry, MergeSumsCountersAndHistograms)
{
    obs::StatRegistry a;
    obs::StatRegistry b;
    a.counter("n") += 10;
    b.counter("n") += 32;
    b.counter("only_b") += 1;
    a.histogram("h").sample(1.0);
    b.histogram("h").sample(100.0);
    a.merge(b);
    EXPECT_EQ(a.findCounter("n")->value(), 42u);
    EXPECT_EQ(a.findCounter("only_b")->value(), 1u);
    EXPECT_EQ(a.findHistogram("h")->count(), 2u);
    EXPECT_DOUBLE_EQ(a.findHistogram("h")->max(), 100.0);
}

TEST(StatRegistry, FormulasEvaluateByNameAndSurviveMerges)
{
    obs::StatRegistry a;
    a.counter("work.done") += 8;
    a.counter("work.total") += 10;
    a.formula("work.share", [](const obs::StatRegistry &r) {
        const double total = r.counterValue("work.total");
        return total > 0.0 ? r.counterValue("work.done") / total
                           : 0.0;
    });
    EXPECT_NE(a.toJson().find("\"share\":0.8"), std::string::npos)
        << a.toJson();

    // Merged into a fresh registry, the formula re-evaluates against
    // the *merged* counters, not a snapshot.
    obs::StatRegistry b;
    b.counter("work.done") += 2;
    b.counter("work.total") += 10;
    b.merge(a);
    EXPECT_NE(b.toJson().find("\"share\":0.5"), std::string::npos)
        << b.toJson();
}

TEST(StatRegistry, CsvIsFlatAndComplete)
{
    obs::StatRegistry reg;
    reg.counter("a.n") += 4;
    reg.scalar("a.v").set(2.5);
    reg.histogram("b.h").sample(10.0);
    const std::string csv = reg.toCsv();
    EXPECT_EQ(csv.find("name,kind,value,count,sum,min,max,mean,p50,"
                       "p90,p99"),
              0u)
        << csv;
    EXPECT_NE(csv.find("a.n,counter,4"), std::string::npos) << csv;
    EXPECT_NE(csv.find("a.v,scalar,2.5"), std::string::npos) << csv;
    EXPECT_NE(csv.find("b.h,histogram"), std::string::npos) << csv;
}

TEST(StatRegistry, EmptyRegistryDumpsEmptyObject)
{
    obs::StatRegistry reg;
    EXPECT_TRUE(reg.empty());
    EXPECT_EQ(reg.toJson(), "{}");
    EXPECT_TRUE(validJson(reg.toJson()));
}

// -- TraceSink -------------------------------------------------------

TEST(TraceSink, ChromeJsonIsWellFormed)
{
    obs::TraceSink sink;
    sink.complete("burst", "exec", 1e-6, 2e-6,
                  "{\"instructions\":64}");
    sink.instant("power_off", "power", 5e-6);
    sink.counter("power_state", "power", 5e-6, 0.0);
    sink.sample(1e-3, 0.5, 60e-6);
    const std::string j = sink.toChromeJson();
    EXPECT_TRUE(validJson(j)) << j;
    EXPECT_NE(j.find("\"traceEvents\":["), std::string::npos);
    EXPECT_NE(j.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(j.find("\"ph\":\"i\""), std::string::npos);
    EXPECT_NE(j.find("\"cap_voltage_v\""), std::string::npos);
    EXPECT_NE(j.find("\"harvest_power_w\""), std::string::npos);
    // Complete events carry microsecond timestamps and durations.
    EXPECT_NE(j.find("\"ts\":1,"), std::string::npos) << j;
    EXPECT_NE(j.find("\"dur\":2"), std::string::npos) << j;
}

TEST(TraceSink, MergeRetagsPidAndKeepsOrder)
{
    obs::TraceSink a;
    obs::TraceSink b;
    a.instant("outage", "power", 1e-6);
    b.instant("outage", "power", 2e-6);
    b.sample(1e-3, 0.4, 0.0);
    obs::TraceSink merged;
    merged.mergeFrom(a, 0);
    merged.mergeFrom(b, 7);
    ASSERT_EQ(merged.events().size(), 2u);
    EXPECT_EQ(merged.events()[0].pid, 0u);
    EXPECT_EQ(merged.events()[1].pid, 7u);
    ASSERT_EQ(merged.waveform().size(), 1u);
    EXPECT_EQ(merged.waveform()[0].pid, 7u);
    EXPECT_TRUE(validJson(merged.toChromeJson()));
}

TEST(TraceSink, BufferCapsCountDropsAndStayValid)
{
    obs::TraceSink sink(2, 1);
    sink.instant("a", "t", 1e-6);
    sink.instant("b", "t", 2e-6);
    sink.instant("c", "t", 3e-6);
    sink.sample(1.0, 0.1, 0.0);
    sink.sample(2.0, 0.2, 0.0);
    EXPECT_EQ(sink.events().size(), 2u);
    EXPECT_EQ(sink.droppedEvents(), 1u);
    EXPECT_EQ(sink.droppedSamples(), 1u);
    const std::string j = sink.toChromeJson();
    EXPECT_TRUE(validJson(j)) << j;
    EXPECT_NE(j.find("\"dropped_events\":1"), std::string::npos) << j;
}

TEST(TraceSink, WaveformCsvRoundTrips)
{
    obs::TraceSink sink;
    sink.sample(0.25, 0.5, 60e-6);
    const std::string csv = sink.waveformCsv();
    EXPECT_EQ(csv.find("point,t_s,cap_voltage_v,harvest_power_w\n"),
              0u);
    EXPECT_NE(csv.find("0,0.25,0.5,"), std::string::npos) << csv;
}

// -- End-to-end determinism ------------------------------------------

exp::SweepGrid
telemetryGrid()
{
    exp::SweepGrid grid;
    grid.techs = {TechConfig::ModernStt};
    // SVM ADULT: the smallest paper workload, keeps the test fast.
    grid.benchmarks = {exp::paperBenchmarks()[3]};
    grid.powers = {exp::kContinuousPower, 60e-6, 200e-6};
    grid.seedsPerPoint = 2;
    grid.rootSeed = 9;
    grid.telemetry.stats = true;
    grid.telemetry.events = true;
    grid.telemetry.waveform = true;
    return grid;
}

TEST(Telemetry, AggregatesAreIdenticalAcrossThreadCounts)
{
    const exp::SweepGrid grid = telemetryGrid();
    const exp::SweepResult serial =
        exp::ExperimentRunner(1).run(grid);
    const exp::SweepResult parallel =
        exp::ExperimentRunner(4).run(grid);
    ASSERT_NE(serial.stats, nullptr);
    ASSERT_NE(parallel.stats, nullptr);
    EXPECT_FALSE(serial.stats->empty());
    // Byte-identical dumps: merge order is grid order, timestamps
    // are simulated time, nothing depends on the schedule.
    EXPECT_EQ(serial.stats->toJson(), parallel.stats->toJson());
    EXPECT_EQ(serial.stats->toCsv(), parallel.stats->toCsv());
    ASSERT_NE(serial.trace, nullptr);
    ASSERT_NE(parallel.trace, nullptr);
    EXPECT_FALSE(serial.trace->empty());
    EXPECT_EQ(serial.trace->toChromeJson(),
              parallel.trace->toChromeJson());
    EXPECT_EQ(serial.trace->waveformCsv(),
              parallel.trace->waveformCsv());
}

TEST(Telemetry, TracingDoesNotPerturbRunStats)
{
    exp::SweepGrid off = telemetryGrid();
    off.telemetry = obs::TraceConfig{};
    const exp::SweepResult traced =
        exp::ExperimentRunner(2).run(telemetryGrid());
    const exp::SweepResult untraced =
        exp::ExperimentRunner(2).run(off);
    ASSERT_EQ(traced.points.size(), untraced.points.size());
    for (std::size_t i = 0; i < traced.points.size(); ++i) {
        // The probe only observes; simulated physics are identical
        // bit for bit with telemetry on or off.
        EXPECT_EQ(toJson(traced.points[i].stats),
                  toJson(untraced.points[i].stats));
    }
    EXPECT_EQ(untraced.stats, nullptr);
    EXPECT_EQ(untraced.trace, nullptr);
}

TEST(Telemetry, FunctionalRunRecordsControllerAndTileStats)
{
    MouseConfig cfg;
    cfg.tech = TechConfig::ProjectedStt;
    cfg.array.tileRows = 128;
    cfg.array.tileCols = 8;
    cfg.array.numDataTiles = 2;
    cfg.array.numInstructionTiles = 512;
    Accelerator acc(cfg);
    KernelBuilder kb(acc.gateLibrary(), cfg.array, 0, 16);
    kb.activate(0, 3);
    (void)kb.add(kb.pinnedWord(0, 4), kb.pinnedWord(8, 4));
    acc.loadProgram(kb.finish());

    RunRequest req;
    req.fidelity = Fidelity::Functional;
    req.power = PowerMode::Continuous;
    req.telemetry.stats = true;
    req.telemetry.events = true;
    const RunResult res = acc.execute(req);
    ASSERT_NE(res.statsTree, nullptr);
    // Controller stats cover every committed instruction (steps
    // also counts the final halt fetch, so >=, and within one).
    EXPECT_GE(res.statsTree->counterValue("controller.steps"),
              static_cast<double>(res.stats.instructionsCommitted));
    EXPECT_LE(res.statsTree->counterValue("controller.steps"),
              static_cast<double>(res.stats.instructionsCommitted) +
                  1.0);
    // ...and the executing tile saw the array-level operations.
    const obs::Counter *ops =
        res.statsTree->findCounter("tile.0.ops");
    ASSERT_NE(ops, nullptr);
    EXPECT_GT(ops->value(), 0u);
    // Functional runs emit per-instruction events.
    ASSERT_NE(res.traceSink, nullptr);
    EXPECT_FALSE(res.traceSink->events().empty());
    EXPECT_TRUE(validJson(res.traceSink->toChromeJson()));
    // The RunResult JSON embeds the stats tree.
    EXPECT_NE(res.toJson().find("\"stat_registry\":"),
              std::string::npos);
    EXPECT_TRUE(validJson(res.toJson()));
}

TEST(Telemetry, StatsTreeMatchesRunStatsTotals)
{
    const exp::SweepResult res =
        exp::ExperimentRunner(2).run(telemetryGrid());
    std::uint64_t committed = 0;
    std::uint64_t outages = 0;
    for (const RunResult &r : res.points) {
        committed += r.stats.instructionsCommitted;
        outages += r.stats.outages;
        ASSERT_NE(r.statsTree, nullptr);
        // Each point's own tree matches its own RunStats.
        EXPECT_EQ(
            r.statsTree->findCounter("sim.instr.committed")->value(),
            r.stats.instructionsCommitted);
    }
    EXPECT_EQ(res.stats->findCounter("sim.instr.committed")->value(),
              committed);
    EXPECT_EQ(res.stats->findCounter("sim.outage.count")->value(),
              outages);
}

} // namespace
} // namespace mouse
