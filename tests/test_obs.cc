/**
 * @file
 * Tests for the telemetry subsystem: the hierarchical stat registry
 * (kinds, merge policies, formulas, JSON/CSV dumps), the Chrome
 * trace_event sink (well-formedness, caps, merge re-tagging), and —
 * the load-bearing property — bit-identical telemetry aggregates for
 * any sweep thread count, with RunStats untouched by tracing.
 */

#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <cstring>
#include <string>

#include "core/accelerator.hh"
#include "exp/names.hh"
#include "exp/runner.hh"
#include "obs/metrics_hub.hh"
#include "obs/stat_registry.hh"
#include "obs/trace_sink.hh"

namespace mouse
{
namespace
{

// -- A tiny recursive-descent JSON syntax checker -------------------
//
// Enough to assert our hand-rolled serializers emit documents that a
// real parser (CI runs python3 -m json.tool) will accept: balanced
// structure, quoted keys, legal literals, no trailing commas.

class JsonChecker
{
  public:
    explicit JsonChecker(const std::string &text) : s_(text) {}

    bool
    valid()
    {
        skipWs();
        if (!value()) {
            return false;
        }
        skipWs();
        return pos_ == s_.size();
    }

  private:
    bool
    value()
    {
        if (pos_ >= s_.size()) {
            return false;
        }
        switch (s_[pos_]) {
          case '{':
            return object();
          case '[':
            return array();
          case '"':
            return string();
          case 't':
            return literal("true");
          case 'f':
            return literal("false");
          case 'n':
            return literal("null");
          default:
            return number();
        }
    }

    bool
    object()
    {
        ++pos_; // '{'
        skipWs();
        if (peek() == '}') {
            ++pos_;
            return true;
        }
        while (true) {
            skipWs();
            if (!string()) {
                return false;
            }
            skipWs();
            if (peek() != ':') {
                return false;
            }
            ++pos_;
            skipWs();
            if (!value()) {
                return false;
            }
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == '}') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    bool
    array()
    {
        ++pos_; // '['
        skipWs();
        if (peek() == ']') {
            ++pos_;
            return true;
        }
        while (true) {
            skipWs();
            if (!value()) {
                return false;
            }
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == ']') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    bool
    string()
    {
        if (peek() != '"') {
            return false;
        }
        ++pos_;
        while (pos_ < s_.size() && s_[pos_] != '"') {
            if (s_[pos_] == '\\') {
                ++pos_;
                if (pos_ >= s_.size()) {
                    return false;
                }
            }
            ++pos_;
        }
        if (pos_ >= s_.size()) {
            return false;
        }
        ++pos_; // closing quote
        return true;
    }

    bool
    number()
    {
        const std::size_t start = pos_;
        if (peek() == '-') {
            ++pos_;
        }
        while (pos_ < s_.size() &&
               (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
                s_[pos_] == '.' || s_[pos_] == 'e' ||
                s_[pos_] == 'E' || s_[pos_] == '+' ||
                s_[pos_] == '-')) {
            ++pos_;
        }
        return pos_ > start;
    }

    bool
    literal(const char *word)
    {
        const std::size_t n = std::strlen(word);
        if (s_.compare(pos_, n, word) != 0) {
            return false;
        }
        pos_ += n;
        return true;
    }

    char
    peek() const
    {
        return pos_ < s_.size() ? s_[pos_] : '\0';
    }

    void
    skipWs()
    {
        while (pos_ < s_.size() &&
               std::isspace(static_cast<unsigned char>(s_[pos_]))) {
            ++pos_;
        }
    }

    const std::string &s_;
    std::size_t pos_ = 0;
};

bool
validJson(const std::string &text)
{
    return JsonChecker(text).valid();
}

// -- StatRegistry ----------------------------------------------------

TEST(StatRegistry, RegistrationIsIdempotent)
{
    obs::StatRegistry reg;
    obs::Counter &a = reg.counter("sim.instr.committed");
    obs::Counter &b = reg.counter("sim.instr.committed");
    EXPECT_EQ(&a, &b);
    a += 3;
    b.increment();
    EXPECT_EQ(reg.findCounter("sim.instr.committed")->value(), 4u);
    EXPECT_EQ(reg.size(), 1u);
}

TEST(StatRegistry, DottedNamesNestInJson)
{
    obs::StatRegistry reg;
    reg.counter("sim.outage.count") += 7;
    reg.scalar("sim.energy.total_j").set(1.5);
    reg.counter("tile.0.ops") += 11;
    reg.counter("tile.1.ops") += 13;
    const std::string j = reg.toJson();
    EXPECT_TRUE(validJson(j)) << j;
    // Groups open once and hold their children.
    EXPECT_NE(j.find("\"sim\":{"), std::string::npos) << j;
    EXPECT_NE(j.find("\"outage\":{\"count\":7}"), std::string::npos)
        << j;
    EXPECT_NE(j.find("\"tile\":{\"0\":{\"ops\":11},\"1\":{\"ops\":13}}"),
              std::string::npos)
        << j;
    // Leaf names never appear with their dotted prefix.
    EXPECT_EQ(j.find("sim.outage"), std::string::npos) << j;
}

TEST(StatRegistry, HistogramMomentsAreExact)
{
    obs::StatRegistry reg;
    obs::Histogram &h = reg.histogram("lat");
    double sum = 0.0;
    for (int i = 1; i <= 1000; ++i) {
        h.sample(static_cast<double>(i));
        sum += i;
    }
    EXPECT_EQ(h.count(), 1000u);
    EXPECT_DOUBLE_EQ(h.sum(), sum);
    EXPECT_DOUBLE_EQ(h.min(), 1.0);
    EXPECT_DOUBLE_EQ(h.max(), 1000.0);
    EXPECT_DOUBLE_EQ(h.mean(), sum / 1000.0);
}

TEST(StatRegistry, HistogramPercentilesTrackTheDistribution)
{
    obs::Histogram h;
    for (int i = 1; i <= 1000; ++i) {
        h.sample(static_cast<double>(i));
    }
    // Buckets are geometric (8/decade, ratio ~1.33), so allow one
    // bucket of slack around the exact order statistics.
    EXPECT_NEAR(h.percentile(0.5), 500.0, 500.0 * 0.35);
    EXPECT_NEAR(h.percentile(0.9), 900.0, 900.0 * 0.35);
    // The tails clamp to the exact observed extremes.
    EXPECT_DOUBLE_EQ(h.percentile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(h.percentile(1.0), 1000.0);
    EXPECT_LE(h.percentile(0.999), 1000.0);
}

TEST(StatRegistry, HistogramHandlesNonPositiveAndEmpty)
{
    obs::Histogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.5), 0.0);
    h.sample(0.0);
    h.sample(-3.0);
    EXPECT_EQ(h.count(), 2u);
    EXPECT_DOUBLE_EQ(h.min(), -3.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.5), -3.0);
}

TEST(StatRegistry, HistogramQuantilesExactOnKnownDistributions)
{
    // A constant distribution pins every quantile: interpolation is
    // clamped to [min, max] = [v, v].
    obs::Histogram constant;
    for (int i = 0; i < 64; ++i) {
        constant.sample(3.25);
    }
    for (double q : {0.0, 0.01, 0.5, 0.95, 0.99, 1.0}) {
        EXPECT_DOUBLE_EQ(constant.percentile(q), 3.25) << q;
    }

    // A two-spike distribution (100x 1.0, 100x 1000.0): quantiles
    // below the median resolve to the low spike's bucket, above it
    // to the high spike's, with at most one geometric bucket
    // (ratio 10^(1/8) ~ 1.334) of interpolation slack.
    obs::Histogram spikes;
    for (int i = 0; i < 100; ++i) {
        spikes.sample(1.0);
        spikes.sample(1000.0);
    }
    const double ratio = std::pow(10.0, 1.0 / 8.0);
    EXPECT_GE(spikes.percentile(0.25), 1.0);
    EXPECT_LE(spikes.percentile(0.25), 1.0 * ratio);
    EXPECT_GE(spikes.percentile(0.75), 1000.0 / ratio);
    EXPECT_DOUBLE_EQ(spikes.percentile(1.0), 1000.0);
    EXPECT_DOUBLE_EQ(spikes.percentile(0.0), 1.0);

    // Quantiles are monotone in q.
    double prev = spikes.percentile(0.0);
    for (double q = 0.1; q <= 1.0; q += 0.1) {
        const double cur = spikes.percentile(q);
        EXPECT_GE(cur, prev) << q;
        prev = cur;
    }
}

TEST(StatRegistry, EmptyHistogramQuantilesAreZero)
{
    obs::Histogram h;
    EXPECT_EQ(h.count(), 0u);
    for (double q : {0.0, 0.5, 0.99, 1.0}) {
        EXPECT_DOUBLE_EQ(h.percentile(q), 0.0) << q;
    }
    EXPECT_DOUBLE_EQ(h.sum(), 0.0);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(StatRegistry, ScalarMergePolicies)
{
    obs::StatRegistry a;
    obs::StatRegistry b;
    a.scalar("v.min", obs::MergePolicy::kMin).observe(2.0);
    a.scalar("v.max", obs::MergePolicy::kMax).observe(2.0);
    a.scalar("v.sum", obs::MergePolicy::kSum).observe(2.0);
    b.scalar("v.min", obs::MergePolicy::kMin).observe(1.0);
    b.scalar("v.max", obs::MergePolicy::kMax).observe(5.0);
    b.scalar("v.sum", obs::MergePolicy::kSum).observe(3.0);
    a.merge(b);
    EXPECT_DOUBLE_EQ(a.scalarValue("v.min"), 1.0);
    EXPECT_DOUBLE_EQ(a.scalarValue("v.max"), 5.0);
    EXPECT_DOUBLE_EQ(a.scalarValue("v.sum"), 5.0);
    // An untouched scalar must not poison a min-merge with its 0.
    obs::StatRegistry c;
    c.scalar("v.min", obs::MergePolicy::kMin);
    c.merge(a);
    EXPECT_DOUBLE_EQ(c.scalarValue("v.min"), 1.0);
}

TEST(StatRegistry, MergeSumsCountersAndHistograms)
{
    obs::StatRegistry a;
    obs::StatRegistry b;
    a.counter("n") += 10;
    b.counter("n") += 32;
    b.counter("only_b") += 1;
    a.histogram("h").sample(1.0);
    b.histogram("h").sample(100.0);
    a.merge(b);
    EXPECT_EQ(a.findCounter("n")->value(), 42u);
    EXPECT_EQ(a.findCounter("only_b")->value(), 1u);
    EXPECT_EQ(a.findHistogram("h")->count(), 2u);
    EXPECT_DOUBLE_EQ(a.findHistogram("h")->max(), 100.0);
}

TEST(StatRegistry, FormulasEvaluateByNameAndSurviveMerges)
{
    obs::StatRegistry a;
    a.counter("work.done") += 8;
    a.counter("work.total") += 10;
    a.formula("work.share", [](const obs::StatRegistry &r) {
        const double total = r.counterValue("work.total");
        return total > 0.0 ? r.counterValue("work.done") / total
                           : 0.0;
    });
    EXPECT_NE(a.toJson().find("\"share\":0.8"), std::string::npos)
        << a.toJson();

    // Merged into a fresh registry, the formula re-evaluates against
    // the *merged* counters, not a snapshot.
    obs::StatRegistry b;
    b.counter("work.done") += 2;
    b.counter("work.total") += 10;
    b.merge(a);
    EXPECT_NE(b.toJson().find("\"share\":0.5"), std::string::npos)
        << b.toJson();
}

TEST(StatRegistry, CsvIsFlatAndComplete)
{
    obs::StatRegistry reg;
    reg.counter("a.n") += 4;
    reg.scalar("a.v").set(2.5);
    reg.histogram("b.h").sample(10.0);
    const std::string csv = reg.toCsv();
    EXPECT_EQ(csv.find("name,kind,value,count,sum,min,max,mean,p50,"
                       "p90,p99"),
              0u)
        << csv;
    EXPECT_NE(csv.find("a.n,counter,4"), std::string::npos) << csv;
    EXPECT_NE(csv.find("a.v,scalar,2.5"), std::string::npos) << csv;
    EXPECT_NE(csv.find("b.h,histogram"), std::string::npos) << csv;
}

TEST(StatRegistry, EmptyRegistryDumpsEmptyObject)
{
    obs::StatRegistry reg;
    EXPECT_TRUE(reg.empty());
    EXPECT_EQ(reg.toJson(), "{}");
    EXPECT_TRUE(validJson(reg.toJson()));
}

// -- TraceSink -------------------------------------------------------

TEST(TraceSink, ChromeJsonIsWellFormed)
{
    obs::TraceSink sink;
    sink.complete("burst", "exec", 1e-6, 2e-6,
                  "{\"instructions\":64}");
    sink.instant("power_off", "power", 5e-6);
    sink.counter("power_state", "power", 5e-6, 0.0);
    sink.sample(1e-3, 0.5, 60e-6);
    const std::string j = sink.toChromeJson();
    EXPECT_TRUE(validJson(j)) << j;
    EXPECT_NE(j.find("\"traceEvents\":["), std::string::npos);
    EXPECT_NE(j.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(j.find("\"ph\":\"i\""), std::string::npos);
    EXPECT_NE(j.find("\"cap_voltage_v\""), std::string::npos);
    EXPECT_NE(j.find("\"harvest_power_w\""), std::string::npos);
    // Complete events carry microsecond timestamps and durations.
    EXPECT_NE(j.find("\"ts\":1,"), std::string::npos) << j;
    EXPECT_NE(j.find("\"dur\":2"), std::string::npos) << j;
}

TEST(TraceSink, MergeRetagsPidAndKeepsOrder)
{
    obs::TraceSink a;
    obs::TraceSink b;
    a.instant("outage", "power", 1e-6);
    b.instant("outage", "power", 2e-6);
    b.sample(1e-3, 0.4, 0.0);
    obs::TraceSink merged;
    merged.mergeFrom(a, 0);
    merged.mergeFrom(b, 7);
    ASSERT_EQ(merged.events().size(), 2u);
    EXPECT_EQ(merged.events()[0].pid, 0u);
    EXPECT_EQ(merged.events()[1].pid, 7u);
    ASSERT_EQ(merged.waveform().size(), 1u);
    EXPECT_EQ(merged.waveform()[0].pid, 7u);
    EXPECT_TRUE(validJson(merged.toChromeJson()));
}

TEST(TraceSink, BufferCapsCountDropsAndStayValid)
{
    obs::TraceSink sink(2, 1);
    sink.instant("a", "t", 1e-6);
    sink.instant("b", "t", 2e-6);
    sink.instant("c", "t", 3e-6);
    sink.sample(1.0, 0.1, 0.0);
    sink.sample(2.0, 0.2, 0.0);
    EXPECT_EQ(sink.events().size(), 2u);
    EXPECT_EQ(sink.droppedEvents(), 1u);
    EXPECT_EQ(sink.droppedSamples(), 1u);
    const std::string j = sink.toChromeJson();
    EXPECT_TRUE(validJson(j)) << j;
    EXPECT_NE(j.find("\"dropped_events\":1"), std::string::npos) << j;
}

TEST(TraceSink, AppendFromPreservesTrackLayout)
{
    // The serving layer lays requests out on (pid = batch row,
    // tid = slot lane) tracks; appendFrom must keep that layout
    // where mergeFrom would flatten it onto one re-tagged row.
    obs::TraceSink batch0;
    batch0.complete("request", "serve", 0.0, 1e-3, "", 1, 3);
    batch0.instant("batch_cut", "serve", 0.0, "", 0, 0);
    obs::TraceSink batch1;
    batch1.complete("request", "serve", 1e-3, 2e-3, "", 2, 0);
    obs::TraceSink all;
    all.appendFrom(batch0);
    all.appendFrom(batch1);
    ASSERT_EQ(all.events().size(), 3u);
    EXPECT_EQ(all.events()[0].pid, 1u);
    EXPECT_EQ(all.events()[0].tid, 3u);
    EXPECT_EQ(all.events()[1].pid, 0u);
    EXPECT_EQ(all.events()[2].pid, 2u);
    const std::string j = all.toChromeJson();
    EXPECT_TRUE(validJson(j)) << j;
    EXPECT_NE(j.find("\"pid\":1"), std::string::npos) << j;
    EXPECT_NE(j.find("\"tid\":3"), std::string::npos) << j;
}

TEST(TraceSink, AppendFromRespectsCapsAndCarriesDropCounts)
{
    obs::TraceSink big;
    for (int i = 0; i < 4; ++i) {
        big.instant("e", "t", i * 1e-6);
    }
    obs::TraceSink capped(2, 1);
    capped.appendFrom(big);
    EXPECT_EQ(capped.events().size(), 2u);
    EXPECT_EQ(capped.droppedEvents(), 2u);
    EXPECT_TRUE(validJson(capped.toChromeJson()));
}

TEST(TraceSink, WaveformCsvRoundTrips)
{
    obs::TraceSink sink;
    sink.sample(0.25, 0.5, 60e-6);
    const std::string csv = sink.waveformCsv();
    EXPECT_EQ(csv.find("point,t_s,cap_voltage_v,harvest_power_w\n"),
              0u);
    EXPECT_NE(csv.find("0,0.25,0.5,"), std::string::npos) << csv;
}

// -- MetricsHub ------------------------------------------------------

TEST(MetricsHub, LifetimeAndWindowAccumulate)
{
    obs::MetricsHub hub;
    hub.recordSubmit(4);
    {
        const obs::MetricsSnapshot s = hub.snapshot();
        EXPECT_EQ(s.submitted, 4u);
        EXPECT_EQ(s.completed, 0u);
        EXPECT_EQ(s.queueDepth, 4);
    }
    hub.workerActive(+1);
    hub.recordBatch(4, 8, 2.0e-3, 5.0e-6, 0.5e-3, 3);
    hub.recordDone(1.0e-3, 2.5e-4);
    hub.recordDone(2.0e-3, 2.5e-4);
    hub.recordDone(3.0e-3, 2.5e-4);
    hub.recordDone(4.0e-3, 2.5e-4);
    const obs::MetricsSnapshot mid = hub.snapshot();
    EXPECT_EQ(mid.activeWorkers, 1u);
    hub.workerActive(-1);

    const obs::MetricsSnapshot s = hub.snapshot();
    EXPECT_EQ(s.submitted, 4u);
    EXPECT_EQ(s.completed, 4u);
    EXPECT_EQ(s.batches, 1u);
    EXPECT_EQ(s.queueDepth, 0);
    EXPECT_EQ(s.activeWorkers, 0u);
    EXPECT_EQ(s.slotsTotal, 8u);
    EXPECT_EQ(s.slotsUsed, 4u);
    EXPECT_EQ(s.outages, 3u);
    EXPECT_DOUBLE_EQ(s.simSeconds, 2.0e-3);
    EXPECT_DOUBLE_EQ(s.energyJoules, 5.0e-6);
    EXPECT_DOUBLE_EQ(s.outageStallSeconds, 0.5e-3);
    EXPECT_GT(s.throughputPerS, 0.0);
    // The whole run fits inside the 10 s window.
    EXPECT_EQ(s.windowCompleted, 4u);
    EXPECT_EQ(s.windowBatches, 1u);
    EXPECT_DOUBLE_EQ(s.windowOccupancy, 0.5);
    EXPECT_DOUBLE_EQ(s.windowEnergyPerRequestJ, 5.0e-6 / 4.0);
    EXPECT_DOUBLE_EQ(s.windowOutageStallSeconds, 0.5e-3);
    // Latency quantiles clamp to the observed range and are
    // monotone in q.
    EXPECT_EQ(s.hostLatency.count, 4u);
    EXPECT_GE(s.hostLatency.p50, 1.0e-3);
    EXPECT_LE(s.hostLatency.p99, 4.0e-3);
    EXPECT_LE(s.hostLatency.p50, s.hostLatency.p95);
    EXPECT_LE(s.hostLatency.p95, s.hostLatency.p99);
    EXPECT_EQ(s.simLatency.count, 4u);
    EXPECT_DOUBLE_EQ(s.simLatency.p50, 2.5e-4);
    EXPECT_DOUBLE_EQ(s.simLatency.p99, 2.5e-4);
}

TEST(MetricsHub, SnapshotJsonRoundTrips)
{
    obs::MetricsHub hub;
    hub.recordSubmit(7);
    hub.recordBatch(5, 8, 1.25e-3, 3.5e-7, 2.0e-4, 11);
    for (int i = 0; i < 5; ++i) {
        hub.recordDone(1e-3 * (i + 1), 2.5e-4 * (i + 1));
    }
    hub.recordStallWarning();
    const obs::MetricsSnapshot s = hub.snapshot();
    const std::string j = s.toJson();
    EXPECT_TRUE(validJson(j)) << j;
    // mouse-lint: allow(schema-constants) -- golden pin: the test
    // hardcodes the published version on purpose, so an accidental
    // bump of the central constant fails here.
    EXPECT_NE(j.find("\"metrics_schema\":1"), std::string::npos) << j;

    const std::optional<obs::MetricsSnapshot> r =
        obs::MetricsSnapshot::fromJson(j);
    ASSERT_TRUE(r.has_value()) << j;
    // %.17g serialization round-trips doubles exactly.
    EXPECT_DOUBLE_EQ(r->uptimeSeconds, s.uptimeSeconds);
    EXPECT_DOUBLE_EQ(r->windowSeconds, s.windowSeconds);
    EXPECT_EQ(r->submitted, s.submitted);
    EXPECT_EQ(r->completed, s.completed);
    EXPECT_EQ(r->batches, s.batches);
    EXPECT_EQ(r->slotsTotal, s.slotsTotal);
    EXPECT_EQ(r->slotsUsed, s.slotsUsed);
    EXPECT_EQ(r->outages, s.outages);
    EXPECT_EQ(r->stallWarnings, s.stallWarnings);
    EXPECT_EQ(r->queueDepth, s.queueDepth);
    EXPECT_EQ(r->activeWorkers, s.activeWorkers);
    EXPECT_DOUBLE_EQ(r->simSeconds, s.simSeconds);
    EXPECT_DOUBLE_EQ(r->energyJoules, s.energyJoules);
    EXPECT_DOUBLE_EQ(r->outageStallSeconds, s.outageStallSeconds);
    EXPECT_DOUBLE_EQ(r->throughputPerS, s.throughputPerS);
    EXPECT_EQ(r->windowCompleted, s.windowCompleted);
    EXPECT_EQ(r->windowBatches, s.windowBatches);
    EXPECT_DOUBLE_EQ(r->windowThroughputPerS,
                     s.windowThroughputPerS);
    EXPECT_DOUBLE_EQ(r->windowOccupancy, s.windowOccupancy);
    EXPECT_DOUBLE_EQ(r->windowEnergyPerRequestJ,
                     s.windowEnergyPerRequestJ);
    EXPECT_DOUBLE_EQ(r->windowOutageStallSeconds,
                     s.windowOutageStallSeconds);
    EXPECT_EQ(r->hostLatency.count, s.hostLatency.count);
    EXPECT_DOUBLE_EQ(r->hostLatency.p50, s.hostLatency.p50);
    EXPECT_DOUBLE_EQ(r->hostLatency.p95, s.hostLatency.p95);
    EXPECT_DOUBLE_EQ(r->hostLatency.p99, s.hostLatency.p99);
    EXPECT_EQ(r->simLatency.count, s.simLatency.count);
    EXPECT_DOUBLE_EQ(r->simLatency.p99, s.simLatency.p99);

    // Garbage and truncated documents fail cleanly.
    EXPECT_FALSE(obs::MetricsSnapshot::fromJson("{}").has_value());
    EXPECT_FALSE(
        obs::MetricsSnapshot::fromJson(j.substr(0, j.size() / 2))
            .has_value());
    EXPECT_FALSE(obs::MetricsSnapshot::fromJson("not json at all")
                     .has_value());
}

TEST(MetricsHub, PrometheusExpositionNamesTheFamilies)
{
    obs::MetricsHub hub;
    hub.recordSubmit(2);
    hub.recordBatch(2, 4, 1e-3, 2e-7, 0.0, 0);
    hub.recordDone(1e-3, 5e-4);
    hub.recordDone(2e-3, 5e-4);
    const std::string p = hub.snapshot().toPrometheus();
    for (const char *family :
         {"mouse_serve_requests_submitted_total",
          "mouse_serve_requests_completed_total",
          "mouse_serve_batches_total", "mouse_serve_outages_total",
          "mouse_serve_stall_warnings_total",
          "mouse_serve_queue_depth", "mouse_serve_active_workers",
          "mouse_serve_uptime_seconds",
          "mouse_serve_window_throughput_per_second",
          "mouse_serve_window_batch_occupancy",
          "mouse_serve_host_latency_seconds",
          "mouse_serve_sim_latency_seconds"}) {
        EXPECT_NE(p.find(family), std::string::npos) << family;
    }
    EXPECT_NE(p.find("# TYPE mouse_serve_requests_completed_total"
                     " counter"),
              std::string::npos)
        << p;
    EXPECT_NE(p.find("quantile=\"0.99\""), std::string::npos) << p;
    EXPECT_NE(p.find("mouse_serve_requests_completed_total 2"),
              std::string::npos)
        << p;
}

// -- StallWatchdog ---------------------------------------------------

TEST(StallWatchdog, DetectsIdleQueueOncePerEpisode)
{
    obs::MetricsHub hub;
    obs::StallWatchdog dog(hub, 1.0);
    hub.recordSubmit(3);
    // First call seeds the progress baseline, never reports.
    EXPECT_FALSE(dog.check(0.0).has_value());
    EXPECT_FALSE(dog.check(0.5).has_value());
    const std::optional<obs::StallReport> r = dog.check(1.5);
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(r->kind, obs::StallReport::Kind::kIdleQueue);
    EXPECT_GE(r->stalledSeconds, 1.0);
    EXPECT_EQ(r->queueDepth, 3);
    EXPECT_EQ(r->activeWorkers, 0u);
    EXPECT_STREQ(r->kindName(), "idle_queue");
    EXPECT_TRUE(validJson(r->toJson())) << r->toJson();
    // One report per episode: no re-fire while still stalled.
    EXPECT_FALSE(dog.check(2.0).has_value());
    EXPECT_FALSE(dog.check(10.0).has_value());
}

TEST(StallWatchdog, ClassifiesStuckDrainAndRearmsOnProgress)
{
    obs::MetricsHub hub;
    obs::StallWatchdog dog(hub, 1.0);
    hub.recordSubmit(2);
    hub.workerActive(+1);
    EXPECT_FALSE(dog.check(0.0).has_value());
    const std::optional<obs::StallReport> r1 = dog.check(1.25);
    ASSERT_TRUE(r1.has_value());
    // Workers are active, so the queue is not idle — the drain
    // cursor is stuck.
    EXPECT_EQ(r1->kind, obs::StallReport::Kind::kStuckDrain);
    EXPECT_STREQ(r1->kindName(), "stuck_drain");

    // Progress re-arms the detector...
    hub.recordBatch(1, 1, 1e-3, 1e-7, 0.0, 0);
    hub.recordDone(1e-3, 1e-3);
    EXPECT_FALSE(dog.check(1.5).has_value());
    // ...and a fresh no-progress window reports again.
    EXPECT_FALSE(dog.check(2.0).has_value());
    const std::optional<obs::StallReport> r2 = dog.check(2.75);
    ASSERT_TRUE(r2.has_value());
    EXPECT_EQ(r2->queueDepth, 1);

    // Draining the queue clears the stall state entirely.
    hub.recordBatch(1, 1, 1e-3, 1e-7, 0.0, 0);
    hub.recordDone(1e-3, 1e-3);
    hub.workerActive(-1);
    EXPECT_FALSE(dog.check(3.0).has_value());
    EXPECT_FALSE(dog.check(20.0).has_value());
}

// -- End-to-end determinism ------------------------------------------

exp::SweepGrid
telemetryGrid()
{
    exp::SweepGrid grid;
    grid.techs = {TechConfig::ModernStt};
    // SVM ADULT: the smallest paper workload, keeps the test fast.
    grid.benchmarks = {exp::paperBenchmarks()[3]};
    grid.powers = {exp::kContinuousPower, 60e-6, 200e-6};
    grid.seedsPerPoint = 2;
    grid.rootSeed = 9;
    grid.telemetry.stats = true;
    grid.telemetry.events = true;
    grid.telemetry.waveform = true;
    return grid;
}

TEST(Telemetry, AggregatesAreIdenticalAcrossThreadCounts)
{
    const exp::SweepGrid grid = telemetryGrid();
    const exp::SweepResult serial =
        exp::ExperimentRunner(1).run(grid);
    const exp::SweepResult parallel =
        exp::ExperimentRunner(4).run(grid);
    ASSERT_NE(serial.stats, nullptr);
    ASSERT_NE(parallel.stats, nullptr);
    EXPECT_FALSE(serial.stats->empty());
    // Byte-identical dumps: merge order is grid order, timestamps
    // are simulated time, nothing depends on the schedule.
    EXPECT_EQ(serial.stats->toJson(), parallel.stats->toJson());
    EXPECT_EQ(serial.stats->toCsv(), parallel.stats->toCsv());
    ASSERT_NE(serial.trace, nullptr);
    ASSERT_NE(parallel.trace, nullptr);
    EXPECT_FALSE(serial.trace->empty());
    EXPECT_EQ(serial.trace->toChromeJson(),
              parallel.trace->toChromeJson());
    EXPECT_EQ(serial.trace->waveformCsv(),
              parallel.trace->waveformCsv());
}

TEST(Telemetry, TracingDoesNotPerturbRunStats)
{
    exp::SweepGrid off = telemetryGrid();
    off.telemetry = obs::TraceConfig{};
    const exp::SweepResult traced =
        exp::ExperimentRunner(2).run(telemetryGrid());
    const exp::SweepResult untraced =
        exp::ExperimentRunner(2).run(off);
    ASSERT_EQ(traced.points.size(), untraced.points.size());
    for (std::size_t i = 0; i < traced.points.size(); ++i) {
        // The probe only observes; simulated physics are identical
        // bit for bit with telemetry on or off.
        EXPECT_EQ(toJson(traced.points[i].stats),
                  toJson(untraced.points[i].stats));
    }
    EXPECT_EQ(untraced.stats, nullptr);
    EXPECT_EQ(untraced.trace, nullptr);
}

TEST(Telemetry, FunctionalRunRecordsControllerAndTileStats)
{
    MouseConfig cfg;
    cfg.tech = TechConfig::ProjectedStt;
    cfg.array.tileRows = 128;
    cfg.array.tileCols = 8;
    cfg.array.numDataTiles = 2;
    cfg.array.numInstructionTiles = 512;
    Accelerator acc(cfg);
    KernelBuilder kb(acc.gateLibrary(), cfg.array, 0, 16);
    kb.activate(0, 3);
    (void)kb.add(kb.pinnedWord(0, 4), kb.pinnedWord(8, 4));
    acc.loadProgram(kb.finish());

    RunRequest req;
    req.fidelity = Fidelity::Functional;
    req.power = PowerMode::Continuous;
    req.telemetry.stats = true;
    req.telemetry.events = true;
    const RunResult res = acc.execute(req);
    ASSERT_NE(res.statsTree, nullptr);
    // Controller stats cover every committed instruction (steps
    // also counts the final halt fetch, so >=, and within one).
    EXPECT_GE(res.statsTree->counterValue("controller.steps"),
              static_cast<double>(res.stats.instructionsCommitted));
    EXPECT_LE(res.statsTree->counterValue("controller.steps"),
              static_cast<double>(res.stats.instructionsCommitted) +
                  1.0);
    // ...and the executing tile saw the array-level operations.
    const obs::Counter *ops =
        res.statsTree->findCounter("tile.0.ops");
    ASSERT_NE(ops, nullptr);
    EXPECT_GT(ops->value(), 0u);
    // Functional runs emit per-instruction events.
    ASSERT_NE(res.traceSink, nullptr);
    EXPECT_FALSE(res.traceSink->events().empty());
    EXPECT_TRUE(validJson(res.traceSink->toChromeJson()));
    // The RunResult JSON embeds the stats tree.
    EXPECT_NE(res.toJson().find("\"stat_registry\":"),
              std::string::npos);
    EXPECT_TRUE(validJson(res.toJson()));
}

TEST(Telemetry, StatsTreeMatchesRunStatsTotals)
{
    const exp::SweepResult res =
        exp::ExperimentRunner(2).run(telemetryGrid());
    std::uint64_t committed = 0;
    std::uint64_t outages = 0;
    for (const RunResult &r : res.points) {
        committed += r.stats.instructionsCommitted;
        outages += r.stats.outages;
        ASSERT_NE(r.statsTree, nullptr);
        // Each point's own tree matches its own RunStats.
        EXPECT_EQ(
            r.statsTree->findCounter("sim.instr.committed")->value(),
            r.stats.instructionsCommitted);
    }
    EXPECT_EQ(res.stats->findCounter("sim.instr.committed")->value(),
              committed);
    EXPECT_EQ(res.stats->findCounter("sim.outage.count")->value(),
              outages);
}

} // namespace
} // namespace mouse
