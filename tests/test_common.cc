/**
 * @file
 * Tests for the shared utilities: deterministic RNG behaviour.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"

namespace mouse
{
namespace
{

TEST(Rng, SameSeedSameStream)
{
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_EQ(a.next(), b.next());
    }
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 1000; ++i) {
        same += a.next() == b.next();
    }
    EXPECT_LT(same, 5);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, BelowRespectsBound)
{
    Rng rng(9);
    for (int i = 0; i < 10000; ++i) {
        EXPECT_LT(rng.below(17), 17u);
    }
}

TEST(Rng, BetweenIsInclusive)
{
    Rng rng(11);
    bool saw_lo = false;
    bool saw_hi = false;
    for (int i = 0; i < 10000; ++i) {
        const auto v = rng.between(-3, 3);
        ASSERT_GE(v, -3);
        ASSERT_LE(v, 3);
        saw_lo |= v == -3;
        saw_hi |= v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalMomentsRoughlyStandard)
{
    Rng rng(13);
    double sum = 0.0;
    double sq = 0.0;
    constexpr int n = 20000;
    for (int i = 0; i < n; ++i) {
        const double x = rng.normal();
        sum += x;
        sq += x * x;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.03);
    EXPECT_NEAR(sq / n, 1.0, 0.05);
}

} // namespace
} // namespace mouse
