/**
 * @file
 * Tests for the static forward-progress analyzer and the
 * time-varying power-source path of the harvesting simulator.
 */

#include <gtest/gtest.h>

#include "compile/builder.hh"
#include "ml/mapping.hh"
#include "sim/termination.hh"

namespace mouse
{
namespace
{

Trace
smallTrace(const GateLibrary &lib)
{
    ArrayConfig cfg;
    cfg.tileRows = 128;
    cfg.tileCols = 64;
    cfg.numDataTiles = 1;
    KernelBuilder kb(lib, cfg, 0, 16);
    kb.activate(0, 63);
    Word s = kb.add(kb.pinnedWord(0, 4), kb.pinnedWord(8, 4));
    (void)s;
    return Trace::fromProgram(kb.finish(), cfg);
}

TEST(Termination, PaperConfigurationsTerminate)
{
    // Every paper benchmark on every technology must pass the static
    // check with the paper's buffer sizes — otherwise the Figure 9
    // runs could not have completed.
    for (TechConfig tech :
         {TechConfig::ModernStt, TechConfig::ProjectedStt,
          TechConfig::ProjectedShe}) {
        const GateLibrary lib(makeDeviceConfig(tech));
        const EnergyModel energy(lib);
        const Trace trace = smallTrace(lib);
        HarvestConfig harvest;
        const TerminationReport report =
            analyzeTermination(trace, energy, harvest);
        EXPECT_TRUE(report.terminates);
        EXPECT_GT(report.margin, 10.0);
        EXPECT_LT(report.minCapacitance,
                  lib.config().bufferCapacitance);
    }
}

TEST(Termination, TinyBufferFailsTheCheck)
{
    const GateLibrary lib(makeDeviceConfig(TechConfig::ModernStt));
    const EnergyModel energy(lib);
    Trace trace;
    trace.append(Opcode::kGateNand2, 200000, 200000, 5);
    HarvestConfig harvest;
    harvest.capacitanceOverride = 1e-9;
    const TerminationReport report =
        analyzeTermination(trace, energy, harvest);
    EXPECT_FALSE(report.terminates);
    EXPECT_LT(report.margin, 1.0);
    EXPECT_GT(report.minCapacitance, 1e-9);
}

TEST(Termination, ReportIdentifiesBindingBlock)
{
    const GateLibrary lib(makeDeviceConfig(TechConfig::ModernStt));
    const EnergyModel energy(lib);
    Trace trace;
    trace.append(Opcode::kGateNand2, 4, 4, 100);
    trace.append(Opcode::kGateNand2, 4096, 4096, 1);  // the hog
    trace.append(Opcode::kPreset0, 4, 4, 100);
    const TerminationReport report = analyzeTermination(
        trace, energy, HarvestConfig{});
    EXPECT_EQ(report.bindingBlock, 1u);
    EXPECT_GT(report.worstInstructionEnergy, 0.0);
}

TEST(Termination, MinCapacitanceIsTight)
{
    // Re-running the analysis with exactly minCapacitance should sit
    // at the feasibility edge (margin ~ 1).
    const GateLibrary lib(makeDeviceConfig(TechConfig::ProjectedStt));
    const EnergyModel energy(lib);
    const Trace trace = smallTrace(lib);
    HarvestConfig harvest;
    const TerminationReport first =
        analyzeTermination(trace, energy, harvest);
    harvest.capacitanceOverride = first.minCapacitance * 1.01;
    const TerminationReport tight =
        analyzeTermination(trace, energy, harvest);
    EXPECT_TRUE(tight.terminates);
    EXPECT_NEAR(tight.margin, 1.01, 0.02);
}

TEST(Termination, MaxSafeParallelismOrdering)
{
    // More efficient technologies can afford wider instructions
    // within their (smaller!) buffers.
    HarvestConfig harvest;
    const GateLibrary modern(makeDeviceConfig(TechConfig::ModernStt));
    const GateLibrary she(makeDeviceConfig(TechConfig::ProjectedShe));
    const EnergyModel e_modern(modern);
    const EnergyModel e_she(she);
    const unsigned p_modern = maxSafeParallelism(e_modern, harvest);
    const unsigned p_she = maxSafeParallelism(e_she, harvest);
    EXPECT_GT(p_modern, 1024u);  // the paper's buffers are ample
    EXPECT_GT(p_she, 1024u);
    // Analyzer consistency: a trace at the reported limit passes,
    // one just above fails.
    Trace at_limit;
    at_limit.append(Opcode::kGateNand2, p_modern, p_modern, 1);
    EXPECT_TRUE(
        analyzeTermination(at_limit, e_modern, harvest).terminates);
    Trace over;
    over.append(Opcode::kGateNand2, p_modern * 2, p_modern * 2, 1);
    EXPECT_FALSE(
        analyzeTermination(over, e_modern, harvest).terminates);
}

TEST(TimeVaryingSource, SolarTraceChargesThroughNight)
{
    // A day/night source: strong for 1 ms, off-ish for 3 ms.  The
    // run must complete, with charging time dominated by the weak
    // segments.
    const GateLibrary lib(makeDeviceConfig(TechConfig::ProjectedStt));
    const EnergyModel energy(lib);
    const Trace trace = smallTrace(lib);

    HarvestConfig harvest;
    harvest.source =
        SourceSpec::trace({{1e-3, 200e-6}, {3e-3, 2e-6}});
    harvest.capacitanceOverride = 400e-12;  // force many outages
    const RunStats stats = runHarvestedTrace(trace, energy, harvest);
    EXPECT_EQ(stats.instructionsCommitted,
              trace.totalInstructions());
    EXPECT_GT(stats.chargingTime, 0.0);

    // A constant source at the trace's average power should be
    // faster than the bursty trace is at its *minimum* power and
    // slower than at its maximum.
    HarvestConfig max_cfg;
    max_cfg.source = SourceSpec::constant(200e-6);
    max_cfg.capacitanceOverride = 400e-12;
    HarvestConfig min_cfg;
    min_cfg.source = SourceSpec::constant(2e-6);
    min_cfg.capacitanceOverride = 400e-12;
    const RunStats at_max =
        runHarvestedTrace(trace, energy, max_cfg);
    const RunStats at_min =
        runHarvestedTrace(trace, energy, min_cfg);
    EXPECT_GE(stats.totalTime(), at_max.totalTime());
    EXPECT_LE(stats.totalTime(), at_min.totalTime());
}

TEST(TimeVaryingSource, StrongSourceSustainsExecution)
{
    // With the in-execution charging credit, a source stronger than
    // the draw never causes an outage after the initial charge.
    const GateLibrary lib(makeDeviceConfig(TechConfig::ProjectedStt));
    const EnergyModel energy(lib);
    const Trace trace = smallTrace(lib);
    HarvestConfig harvest;
    harvest.source = SourceSpec::constant(50e-3);  // 50 mW >> draw
    const RunStats stats = runHarvestedTrace(trace, energy, harvest);
    EXPECT_EQ(stats.outages, 0u);
}

} // namespace
} // namespace mouse
