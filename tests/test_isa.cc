/**
 * @file
 * Tests for the 64-bit MOUSE instruction format: round-trip
 * encode/decode over the whole field space, constructors, and
 * disassembly.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "isa/instruction.hh"

namespace mouse
{
namespace
{

TEST(Isa, GateOpcodeMappingRoundTrips)
{
    for (GateType g :
         {GateType::kBuf, GateType::kNot, GateType::kAnd2,
          GateType::kNand2, GateType::kOr2, GateType::kNor2,
          GateType::kMaj3, GateType::kMin3}) {
        const Opcode op = opcodeFromGate(g);
        EXPECT_TRUE(isGateOpcode(op));
        EXPECT_EQ(gateFromOpcode(op), g);
    }
    EXPECT_FALSE(isGateOpcode(Opcode::kHalt));
    EXPECT_FALSE(isGateOpcode(Opcode::kActivateRange));
    EXPECT_FALSE(isGateOpcode(Opcode::kPreset1));
}

TEST(Isa, HaltRoundTrip)
{
    const Instruction halt = Instruction::halt();
    EXPECT_EQ(Instruction::decode(halt.encode()), halt);
    EXPECT_EQ(halt.disassemble(), "HALT");
}

TEST(Isa, TwoInputGateRoundTrip)
{
    const Instruction inst =
        Instruction::gate(GateType::kNand2, 37, 12, 14, 9);
    const Instruction back = Instruction::decode(inst.encode());
    EXPECT_EQ(back, inst);
    EXPECT_EQ(back.disassemble(), "NAND2 t37 r12,r14 -> r9");
}

TEST(Isa, ThreeInputGateRoundTrip)
{
    const Instruction inst =
        Instruction::gate(GateType::kMaj3, 511, 1022, 1020, 1018, 1023);
    const Instruction back = Instruction::decode(inst.encode());
    EXPECT_EQ(back, inst);
    EXPECT_EQ(back.rows[2], 1018);
}

TEST(Isa, MemoryOpsRoundTrip)
{
    for (const Instruction inst :
         {Instruction::readRow(3, 700), Instruction::writeRow(0, 0),
          Instruction::preset(0, 5, 11), Instruction::preset(1, 5, 12)}) {
        EXPECT_EQ(Instruction::decode(inst.encode()), inst);
    }
}

TEST(Isa, ActivateListRoundTrip)
{
    std::array<ColAddr, kMaxActivateList> cols{1, 1023, 512, 7, 300};
    const Instruction inst = Instruction::activateList(cols, 5, true);
    const Instruction back = Instruction::decode(inst.encode());
    EXPECT_EQ(back, inst);
    EXPECT_EQ(back.numCols, 5);
    EXPECT_EQ(back.cols[1], 1023);
}

TEST(Isa, ActivateRangeRoundTrip)
{
    const Instruction inst = Instruction::activateRange(10, 999, false);
    const Instruction back = Instruction::decode(inst.encode());
    EXPECT_EQ(back, inst);
    EXPECT_FALSE(back.clearActivation);
}

TEST(Isa, OpcodeLivesInTopNibble)
{
    const Instruction inst = Instruction::preset(1, 0, 0);
    EXPECT_EQ(inst.encode() >> 60,
              static_cast<std::uint64_t>(Opcode::kPreset1));
}

/** Property test: random well-formed instructions survive the wire. */
TEST(Isa, RandomRoundTripProperty)
{
    Rng rng(2026);
    const GateType encodable[] = {
        GateType::kBuf,  GateType::kNot,  GateType::kAnd2,
        GateType::kNand2, GateType::kOr2, GateType::kNor2,
        GateType::kMaj3, GateType::kMin3};
    for (int iter = 0; iter < 5000; ++iter) {
        Instruction inst;
        switch (rng.below(5)) {
          case 0: {
            const GateType g = encodable[rng.below(8)];
            const auto tile = static_cast<TileAddr>(rng.below(512));
            const auto r0 = static_cast<RowAddr>(rng.below(1024));
            const auto r1 = static_cast<RowAddr>(rng.below(1024));
            const auto r2 = static_cast<RowAddr>(rng.below(1024));
            const auto out = static_cast<RowAddr>(rng.below(1024));
            switch (gateNumInputs(g)) {
              case 1:
                inst = Instruction::gate(g, tile, r0, out);
                break;
              case 2:
                inst = Instruction::gate(g, tile, r0, r1, out);
                break;
              default:
                inst = Instruction::gate(g, tile, r0, r1, r2, out);
                break;
            }
            break;
          }
          case 1:
            inst = Instruction::readRow(
                static_cast<TileAddr>(rng.below(512)),
                static_cast<RowAddr>(rng.below(1024)));
            break;
          case 2:
            inst = rng.chance(0.5)
                       ? Instruction::preset(
                             static_cast<Bit>(rng.below(2)),
                             static_cast<TileAddr>(rng.below(512)),
                             static_cast<RowAddr>(rng.below(1024)))
                       : Instruction::writeRowShifted(
                             static_cast<TileAddr>(rng.below(512)),
                             static_cast<RowAddr>(rng.below(1024)),
                             static_cast<ColAddr>(rng.below(1024)));
            break;
          case 3: {
            std::array<ColAddr, kMaxActivateList> cols{};
            const auto n =
                static_cast<std::uint8_t>(1 + rng.below(5));
            for (int i = 0; i < n; ++i) {
                cols[static_cast<std::size_t>(i)] =
                    static_cast<ColAddr>(rng.below(1024));
            }
            inst = Instruction::activateList(cols, n, rng.chance(0.5));
            break;
          }
          default: {
            const auto lo = static_cast<ColAddr>(rng.below(1024));
            const auto hi = static_cast<ColAddr>(
                lo + rng.below(1024 - lo));
            inst = Instruction::activateRange(lo, hi, rng.chance(0.5));
            break;
          }
        }
        ASSERT_EQ(Instruction::decode(inst.encode()), inst)
            << inst.disassemble();
    }
}

} // namespace
} // namespace mouse
