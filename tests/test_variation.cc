/**
 * @file
 * Tests for the Monte Carlo device-variation analysis.
 */

#include <gtest/gtest.h>

#include "logic/variation.hh"

namespace mouse
{
namespace
{

TEST(Variation, ZeroSpreadNeverFails)
{
    for (TechConfig tech :
         {TechConfig::ModernStt, TechConfig::ProjectedStt,
          TechConfig::ProjectedShe}) {
        const GateLibrary lib(makeDeviceConfig(tech));
        Rng rng(1);
        VariationModel model;
        model.resistanceSigma = 0.0;
        model.switchingCurrentSigma = 0.0;
        for (GateType g : lib.feasibleGates()) {
            const VariationResult r =
                gateErrorRate(lib, g, model, 2000, rng);
            EXPECT_EQ(r.failures, 0u) << gateName(g);
        }
    }
}

TEST(Variation, ErrorRateGrowsWithSpread)
{
    const GateLibrary lib(makeDeviceConfig(TechConfig::ModernStt));
    double prev = -1.0;
    for (double sigma : {0.02, 0.08, 0.20}) {
        Rng rng(7);
        VariationModel model;
        model.resistanceSigma = sigma;
        model.switchingCurrentSigma = sigma;
        const VariationResult r =
            gateErrorRate(lib, GateType::kNand2, model, 30000, rng);
        EXPECT_GT(r.errorRate(), prev) << "sigma " << sigma;
        prev = r.errorRate();
    }
    EXPECT_GT(prev, 0.01);  // 20 % spread must visibly hurt
}

TEST(Variation, SheIsMoreRobustThanStt)
{
    // Section II-D: removing the output MTJ from the divider makes
    // input values easier to distinguish.
    VariationModel model;
    model.resistanceSigma = 0.10;
    model.switchingCurrentSigma = 0.10;
    const GateLibrary stt(makeDeviceConfig(TechConfig::ProjectedStt));
    const GateLibrary she(makeDeviceConfig(TechConfig::ProjectedShe));
    Rng rng_a(11);
    Rng rng_b(11);
    const VariationResult r_stt =
        gateErrorRate(stt, GateType::kAnd2, model, 40000, rng_a);
    const VariationResult r_she =
        gateErrorRate(she, GateType::kAnd2, model, 40000, rng_b);
    EXPECT_LT(r_she.errorRate(), r_stt.errorRate());
}

TEST(Variation, HighTmrBeatsLowTmr)
{
    VariationModel model;
    model.resistanceSigma = 0.06;
    model.switchingCurrentSigma = 0.06;
    const GateLibrary modern(makeDeviceConfig(TechConfig::ModernStt));
    const GateLibrary proj(makeDeviceConfig(TechConfig::ProjectedStt));
    Rng rng_a(13);
    Rng rng_b(13);
    const VariationResult r_modern =
        gateErrorRate(modern, GateType::kNand2, model, 40000, rng_a);
    const VariationResult r_proj =
        gateErrorRate(proj, GateType::kNand2, model, 40000, rng_b);
    EXPECT_LT(r_proj.errorRate(), r_modern.errorRate());
}

TEST(Variation, DeterministicGivenSeed)
{
    const GateLibrary lib(makeDeviceConfig(TechConfig::ModernStt));
    VariationModel model;
    model.resistanceSigma = 0.08;
    Rng a(99);
    Rng b(99);
    const VariationResult ra =
        gateErrorRate(lib, GateType::kNor2, model, 10000, a);
    const VariationResult rb =
        gateErrorRate(lib, GateType::kNor2, model, 10000, b);
    EXPECT_EQ(ra.failures, rb.failures);
}

} // namespace
} // namespace mouse
