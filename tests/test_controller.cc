/**
 * @file
 * Tests for the memory controller's intermittent-safety protocol:
 * the duplicated PC registers, the parity-bit commit, the Activate
 * Columns journal, and full interrupt-anywhere/restart correctness
 * (paper Section V-B, Figure 7).
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "controller/controller.hh"

namespace mouse
{
namespace
{

TEST(NvRegister, WriteIsInvisibleUntilCommit)
{
    DuplexNvRegister<std::uint32_t> reg(5);
    reg.writeInvalid(9);
    EXPECT_EQ(reg.read(), 5u);
    reg.commit();
    EXPECT_EQ(reg.read(), 9u);
}

TEST(NvRegister, CorruptingInvalidCopyIsHarmless)
{
    DuplexNvRegister<std::uint32_t> reg(5);
    reg.corruptInvalid(0xFFFFFFFFu);
    EXPECT_EQ(reg.read(), 5u);
    // A later clean write overwrites the garbage before commit.
    reg.writeInvalid(6);
    reg.commit();
    EXPECT_EQ(reg.read(), 6u);
}

TEST(NvRegister, AlternatesCopies)
{
    DuplexNvRegister<std::uint32_t> reg(0);
    for (std::uint32_t i = 1; i <= 8; ++i) {
        const bool parity_before = reg.parity();
        reg.writeInvalid(i);
        reg.commit();
        EXPECT_EQ(reg.read(), i);
        EXPECT_NE(reg.parity(), parity_before);
    }
}

/** Fixture with a small grid and a simple program. */
class ControllerTest : public ::testing::Test
{
  protected:
    ControllerTest()
        : lib_(makeDeviceConfig(TechConfig::ProjectedStt)),
          energy_(lib_)
    {
        cfg_.tileRows = 32;
        cfg_.tileCols = 16;
        cfg_.numDataTiles = 1;
        cfg_.numInstructionTiles = 1;
    }

    /**
     * A program computing, in columns 0..1:
     *   r1 = NAND(r0, r2); r3 = NOT(r0); r5 = AND(r0, r2)
     * with presets in between.
     */
    std::vector<std::uint64_t>
    simpleProgram()
    {
        std::vector<Instruction> prog = {
            Instruction::activateRange(0, 1),
            Instruction::preset(0, 0, 1),
            Instruction::gate(GateType::kNand2, 0, 0, 2, 1),
            Instruction::preset(0, 0, 3),
            Instruction::gate(GateType::kNot, 0, 0, 3),
            Instruction::preset(1, 0, 5),
            Instruction::gate(GateType::kAnd2, 0, 0, 2, 5),
            Instruction::halt(),
        };
        std::vector<std::uint64_t> words;
        words.reserve(prog.size());
        for (const auto &inst : prog) {
            words.push_back(inst.encode());
        }
        return words;
    }

    void
    seedInputs(TileGrid &grid)
    {
        // col0: a=1, b=1; col1: a=0, b=1.
        grid.tile(0).setBit(0, 0, 1);
        grid.tile(0).setBit(2, 0, 1);
        grid.tile(0).setBit(0, 1, 0);
        grid.tile(0).setBit(2, 1, 1);
    }

    void
    checkOutputs(TileGrid &grid)
    {
        EXPECT_EQ(grid.tile(0).bit(1, 0), 0);  // NAND(1,1)
        EXPECT_EQ(grid.tile(0).bit(1, 1), 1);  // NAND(0,1)
        EXPECT_EQ(grid.tile(0).bit(3, 0), 0);  // NOT(1)
        EXPECT_EQ(grid.tile(0).bit(3, 1), 1);  // NOT(0)
        EXPECT_EQ(grid.tile(0).bit(5, 0), 1);  // AND(1,1)
        EXPECT_EQ(grid.tile(0).bit(5, 1), 0);  // AND(0,1)
    }

    GateLibrary lib_;
    EnergyModel energy_;
    ArrayConfig cfg_;
};

TEST_F(ControllerTest, RunsProgramToHalt)
{
    TileGrid grid(cfg_, lib_);
    InstructionMemory imem(cfg_);
    imem.load(simpleProgram());
    seedInputs(grid);

    Controller ctrl(grid, imem, energy_);
    int steps = 0;
    while (!ctrl.halted()) {
        const StepResult r = ctrl.step();
        if (!r.halted) {
            EXPECT_GT(r.energy, 0.0);
            EXPECT_GT(r.backupEnergy, 0.0);
            EXPECT_LT(r.backupEnergy, r.energy);
        }
        ++steps;
        ASSERT_LT(steps, 100);
    }
    EXPECT_EQ(steps, 8);
    checkOutputs(grid);
    // HALT does not advance the PC.
    EXPECT_EQ(ctrl.pc(), 7u);
}

TEST_F(ControllerTest, InterruptAtEveryMicroStepStillCorrect)
{
    // Cut the power at every instruction boundary x micro-step
    // combination, restart, and require the same final state as the
    // uninterrupted run.  This is the paper's Section V claim,
    // mechanically verified.
    for (int cut_instr = 0; cut_instr < 7; ++cut_instr) {
        for (MicroStep at :
             {MicroStep::kFetch, MicroStep::kExecute,
              MicroStep::kWritePc, MicroStep::kCommit}) {
            for (double fraction : {0.001, 0.3, 0.95}) {
                TileGrid grid(cfg_, lib_);
                InstructionMemory imem(cfg_);
                imem.load(simpleProgram());
                seedInputs(grid);
                Controller ctrl(grid, imem, energy_);

                for (int i = 0; i < cut_instr; ++i) {
                    ctrl.step();
                }
                ctrl.stepInterrupted(at, fraction);
                ctrl.powerLoss();
                ctrl.restart();
                while (!ctrl.halted()) {
                    ctrl.step();
                }
                checkOutputs(grid);
            }
        }
    }
}

TEST_F(ControllerTest, RepeatedOutagesAtRandomPoints)
{
    // Property test: any number of outages at random micro-steps
    // never changes the program's result.
    Rng rng(1234);
    for (int trial = 0; trial < 50; ++trial) {
        TileGrid grid(cfg_, lib_);
        InstructionMemory imem(cfg_);
        imem.load(simpleProgram());
        seedInputs(grid);
        Controller ctrl(grid, imem, energy_);

        int guard = 0;
        while (!ctrl.halted()) {
            ASSERT_LT(++guard, 1000);
            if (rng.chance(0.4)) {
                const MicroStep at = static_cast<MicroStep>(
                    rng.below(4));
                ctrl.stepInterrupted(at, rng.uniform());
                ctrl.powerLoss();
                ctrl.restart();
            } else {
                ctrl.step();
            }
        }
        checkOutputs(grid);
    }
}

TEST_F(ControllerTest, RestartRestoresActiveColumns)
{
    TileGrid grid(cfg_, lib_);
    InstructionMemory imem(cfg_);
    imem.load(simpleProgram());
    Controller ctrl(grid, imem, energy_);

    ctrl.step();  // ACT 0..1
    EXPECT_EQ(grid.activeColumns().count(), 2u);
    ctrl.powerLoss();
    EXPECT_EQ(grid.activeColumns().count(), 0u);
    const RestartResult r = ctrl.restart();
    EXPECT_EQ(grid.activeColumns().count(), 2u);
    EXPECT_EQ(r.restoreCycles, 1u);
    EXPECT_GT(r.restoreEnergy, 0.0);
}

TEST_F(ControllerTest, AdditiveActivationJournalReplays)
{
    std::vector<Instruction> prog = {
        Instruction::activateRange(0, 1, true),
        Instruction::activateRange(4, 5, false),
        Instruction::activateList({9, 0, 0, 0, 0}, 1, false),
        Instruction::halt(),
    };
    std::vector<std::uint64_t> words;
    for (const auto &inst : prog) {
        words.push_back(inst.encode());
    }
    TileGrid grid(cfg_, lib_);
    InstructionMemory imem(cfg_);
    imem.load(words);
    Controller ctrl(grid, imem, energy_);

    ctrl.step();
    ctrl.step();
    ctrl.step();
    EXPECT_EQ(grid.activeColumns().count(), 5u);

    ctrl.powerLoss();
    const RestartResult r = ctrl.restart();
    EXPECT_EQ(r.restoreCycles, 3u);  // three journal entries
    EXPECT_EQ(grid.activeColumns().count(), 5u);
    EXPECT_TRUE(grid.activeColumns().test(9));
    EXPECT_TRUE(grid.activeColumns().test(4));
    EXPECT_TRUE(grid.activeColumns().test(0));
}

TEST_F(ControllerTest, CommitBeforePcKeepsActJournalConsistent)
{
    // Interrupt exactly between the ACT-register commit and the PC
    // commit (MicroStep::kCommit ends before the PC parity flip):
    // the journal may already hold the new activation while the PC
    // still points at the ACT instruction.  Re-execution must
    // converge.
    TileGrid grid(cfg_, lib_);
    InstructionMemory imem(cfg_);
    imem.load(simpleProgram());
    seedInputs(grid);
    Controller ctrl(grid, imem, energy_);

    ctrl.stepInterrupted(MicroStep::kCommit, 1.0);  // during ACT
    ctrl.powerLoss();
    ctrl.restart();
    EXPECT_EQ(ctrl.pc(), 0u);  // PC did not commit
    while (!ctrl.halted()) {
        ctrl.step();
    }
    checkOutputs(grid);
}

TEST_F(ControllerTest, InterruptAtBoundaryFractionsStillCorrect)
{
    // The fault-injection engine (src/inject) enumerates the exact
    // phase boundaries 0.0 and 1.0, not just interior fractions:
    // 0.0 cuts before the phase does any work, 1.0 after all of it
    // but before the next phase.  Neither may ever commit the PC —
    // the parity flip is the single commit point — so after restart
    // the PC must still address the cut instruction, and the rerun
    // must converge to the uninterrupted result.
    for (int cut_instr = 0; cut_instr < 7; ++cut_instr) {
        for (MicroStep at :
             {MicroStep::kFetch, MicroStep::kExecute,
              MicroStep::kWritePc, MicroStep::kCommit}) {
            for (double fraction : {0.0, 1.0}) {
                TileGrid grid(cfg_, lib_);
                InstructionMemory imem(cfg_);
                imem.load(simpleProgram());
                seedInputs(grid);
                Controller ctrl(grid, imem, energy_);

                for (int i = 0; i < cut_instr; ++i) {
                    ctrl.step();
                }
                ctrl.stepInterrupted(at, fraction);
                ctrl.powerLoss();
                ctrl.restart();
                EXPECT_EQ(ctrl.pc(),
                          static_cast<std::size_t>(cut_instr))
                    << "cut at instr " << cut_instr << " step "
                    << static_cast<int>(at) << " fraction "
                    << fraction;
                while (!ctrl.halted()) {
                    ctrl.step();
                }
                checkOutputs(grid);
            }
        }
    }
}

TEST_F(ControllerTest, ActJournalDepthBoundedUnderRepeatedCommitCuts)
{
    // Cut at kCommit on an *additive* ACT instruction, over and over:
    // each cut commits the ACT register (journal appended) but not
    // the PC, so the same instruction re-executes after restart.
    // Without dedup the journal would overflow its depth-4 register
    // after a few outages even though only four distinct activation
    // instructions ever ran.
    std::vector<Instruction> prog = {
        Instruction::activateRange(0, 1, true),
        Instruction::activateRange(4, 5, false),
        Instruction::activateList({9, 0, 0, 0, 0}, 1, false),
        Instruction::activateList({11, 0, 0, 0, 0}, 1, false),
        Instruction::halt(),
    };
    std::vector<std::uint64_t> words;
    for (const auto &inst : prog) {
        words.push_back(inst.encode());
    }
    TileGrid grid(cfg_, lib_);
    InstructionMemory imem(cfg_);
    imem.load(words);
    Controller ctrl(grid, imem, energy_);

    ctrl.step();  // clear ACT 0..1
    ctrl.step();  // +ACT 4..5
    ctrl.step();  // +ACT 9

    for (int outage = 0; outage < 10; ++outage) {
        ctrl.stepInterrupted(MicroStep::kCommit, 1.0);  // +ACT 11
        ctrl.powerLoss();
        const RestartResult r = ctrl.restart();
        EXPECT_LE(r.restoreCycles, ActJournal::kDepth);
        EXPECT_EQ(ctrl.pc(), 3u);  // PC never committed
    }

    while (!ctrl.halted()) {
        ctrl.step();
    }
    EXPECT_EQ(grid.activeColumns().count(), 6u);
    for (std::size_t col : {0u, 1u, 4u, 5u, 9u, 11u}) {
        EXPECT_TRUE(grid.activeColumns().test(col)) << col;
    }
    // The committed journal replays in bounded depth too.
    ctrl.powerLoss();
    const RestartResult r = ctrl.restart();
    EXPECT_LE(r.restoreCycles, ActJournal::kDepth);
    EXPECT_EQ(grid.activeColumns().count(), 6u);
}

TEST_F(ControllerTest, RollbackPcReexecutesWindowAndConverges)
{
    // rollbackPc models a SONIC-style window checkpoint: force the NV
    // PC back to a window boundary and re-execute the suffix.  The
    // window [1, 4) of simpleProgram() is hazard-free (each preset
    // writes a row only later instructions read), so ordered replay
    // must converge to the uninterrupted result with extra commits.
    TileGrid grid(cfg_, lib_);
    InstructionMemory imem(cfg_);
    imem.load(simpleProgram());
    seedInputs(grid);
    Controller ctrl(grid, imem, energy_);

    for (int i = 0; i < 4; ++i) {
        ctrl.step();
    }
    ctrl.rollbackPc(1);
    EXPECT_EQ(ctrl.pc(), 1u);
    EXPECT_FALSE(ctrl.halted());

    int steps = 0;
    while (!ctrl.halted()) {
        ctrl.step();
        ASSERT_LT(++steps, 100);
    }
    EXPECT_EQ(steps, 7);  // instructions 1..6 again, plus HALT
    checkOutputs(grid);
}

TEST_F(ControllerTest, EnergyIncludesFetchAndBackup)
{
    TileGrid grid(cfg_, lib_);
    InstructionMemory imem(cfg_);
    imem.load(simpleProgram());
    Controller ctrl(grid, imem, energy_);

    const StepResult r = ctrl.step();  // the ACT instruction
    EXPECT_GE(r.energy,
              energy_.fetchEnergy() + energy_.backupEnergyPerCycle());
    // ACT instructions additionally checkpoint the shadow register.
    EXPECT_GE(r.backupEnergy, energy_.backupEnergyPerCycle() +
                                  energy_.actRegisterBackupEnergy());
}

TEST_F(ControllerTest, HaltedStaysHaltedAcrossRestart)
{
    TileGrid grid(cfg_, lib_);
    InstructionMemory imem(cfg_);
    imem.load(simpleProgram());
    seedInputs(grid);
    Controller ctrl(grid, imem, energy_);
    while (!ctrl.halted()) {
        ctrl.step();
    }
    const std::size_t halt_pc = ctrl.pc();
    ctrl.powerLoss();
    ctrl.restart();
    // The PC still points at HALT; restarting cannot resurrect the
    // program.  (halted_ itself is volatile; re-fetch finds HALT.)
    EXPECT_EQ(ctrl.pc(), halt_pc);
}

} // namespace
} // namespace mouse
