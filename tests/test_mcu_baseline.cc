/**
 * @file
 * Tests for the intermittent-MCU baseline (docs/BASELINES.md): the
 * EhScheme policies and their factory, the op-stream construction,
 * the harvested runner (including the Clank watchdog path), the
 * fault-injection conformance campaigns, the SweepGrid `schemes`
 * axis (decode order and radix-1 back-compat), the runner's
 * system dispatch with thread-count byte-identity, and the typed
 * kBaselineSchemeUnknown error through the run API.
 */

#include <gtest/gtest.h>

#include "baseline/mcu/datasheet.hh"
#include "baseline/mcu/eh_scheme.hh"
#include "baseline/mcu/mcu_model.hh"
#include "baseline/selector.hh"
#include "exp/names.hh"
#include "exp/runner.hh"
#include "inject/mcu_campaign.hh"

namespace mouse
{
namespace
{

// -- Schemes and their factory --------------------------------------

TEST(EhScheme, FactoryCoversEveryListedName)
{
    const auto &names = mcu::ehSchemeNames();
    ASSERT_EQ(names.size(), 4u);
    EXPECT_EQ(names[0], "bec");
    EXPECT_EQ(names[3], "oracle");
    for (const std::string &n : names) {
        const auto scheme = mcu::makeEhScheme(n);
        ASSERT_NE(scheme, nullptr) << n;
        EXPECT_EQ(scheme->name(), n);
    }
    EXPECT_EQ(mcu::makeEhScheme("mementos"), nullptr);
    EXPECT_EQ(mcu::makeEhScheme(""), nullptr);
}

TEST(EhScheme, CostStructureMatchesTheDatasheet)
{
    const auto oracle = mcu::makeEhScheme("oracle");
    const auto bec = mcu::makeEhScheme("bec");
    const auto odab = mcu::makeEhScheme("odab");
    const auto clank = mcu::makeEhScheme("clank");
    // Oracle: free and perfect.
    EXPECT_EQ(oracle->perOpEnergy(), 0.0);
    EXPECT_EQ(oracle->backupEnergy(), 0.0);
    EXPECT_EQ(oracle->restoreEnergy(), 0.0);
    // BEC pays on every op, nothing at the outage.
    EXPECT_DOUBLE_EQ(bec->perOpEnergy(), mcu::kBecBackupEnergy);
    EXPECT_EQ(bec->backupEnergy(), 0.0);
    // ODAB pays just-in-time at the outage (the reserved headroom).
    EXPECT_EQ(odab->perOpEnergy(), 0.0);
    EXPECT_DOUBLE_EQ(odab->backupEnergy(), mcu::kOdabBackupEnergy);
    // Clank monitors every op and checkpoints region boundaries.
    EXPECT_GT(clank->perOpEnergy(), 0.0);
    EXPECT_DOUBLE_EQ(clank->checkpointEnergy(),
                     mcu::kClankCheckpointEnergy);
}

TEST(EhScheme, ResumeSemanticsSplitCycleVsRegionSchemes)
{
    const auto w = inject::makeCampaignWorkload("gates");
    ASSERT_TRUE(w.has_value());
    const mcu::McuProgram prog =
        mcu::mcuProgramFromProgram(w->program, 8);
    ASSERT_GT(prog.totalOps, 16u);
    const std::uint64_t cut = prog.totalOps - 1;
    for (const char *exact : {"bec", "odab", "oracle"}) {
        EXPECT_EQ(mcu::makeEhScheme(exact)->resumeOp(prog, cut), cut)
            << exact;
    }
    // Clank rolls back to the enclosing region boundary.
    const std::uint64_t resumed =
        mcu::makeEhScheme("clank")->resumeOp(prog, cut);
    EXPECT_LE(resumed, cut);
    EXPECT_EQ(resumed, prog.regionStart(cut - 1));
}

// -- Op streams -----------------------------------------------------

TEST(McuOpStream, ProgramStreamKeepsInstructionCoordinates)
{
    const auto w = inject::makeCampaignWorkload("gates");
    ASSERT_TRUE(w.has_value());
    const mcu::McuProgram prog = mcu::mcuProgramFromProgram(w->program);
    EXPECT_EQ(prog.totalOps, w->program.instructions.size());
    ASSERT_FALSE(prog.blockStart.empty());
    EXPECT_EQ(prog.blockStart.front(), 0u);
    EXPECT_EQ(prog.blockStart.back(), prog.totalOps);
    EXPECT_GT(prog.totalEnergy, 0.0);
    EXPECT_GT(prog.totalSeconds, 0.0);
    // Default Clank placement: uniform regions from op 0.
    ASSERT_FALSE(prog.checkpoints.empty());
    EXPECT_EQ(prog.checkpoints.front(), 0u);
    EXPECT_EQ(prog.regionStart(0), 0u);
    for (std::uint64_t op = 1; op < prog.totalOps; ++op) {
        EXPECT_GE(prog.regionStart(op), prog.regionStart(op - 1));
        EXPECT_LE(prog.regionStart(op), op);
    }
}

TEST(McuOpStream, BundleCostsScaleWithTheWordSerialLoop)
{
    // Every bundle prices ops * (per-instruction energy, cycles).
    const mcu::McuCost one = mcu::mcuCostFor(1);
    EXPECT_DOUBLE_EQ(one.energy, mcu::kInstructionEnergy);
    const mcu::McuCost ten = mcu::mcuCostFor(10);
    EXPECT_DOUBLE_EQ(ten.energy, 10.0 * one.energy);
    EXPECT_DOUBLE_EQ(ten.seconds, 10.0 * one.seconds);
}

// -- The model ------------------------------------------------------

mcu::McuProgram
gatesProgram(unsigned clankRegionOps = 0)
{
    const auto w = inject::makeCampaignWorkload("gates");
    return mcu::mcuProgramFromProgram(w->program, clankRegionOps);
}

TEST(McuModel, ContinuousOverheadOrdering)
{
    const mcu::McuProgram prog = gatesProgram();
    const double oracle =
        mcu::mcuRunContinuous(prog, *mcu::makeEhScheme("oracle"))
            .totalEnergy();
    const double odab =
        mcu::mcuRunContinuous(prog, *mcu::makeEhScheme("odab"))
            .totalEnergy();
    const double bec =
        mcu::mcuRunContinuous(prog, *mcu::makeEhScheme("bec"))
            .totalEnergy();
    const double clank =
        mcu::mcuRunContinuous(prog, *mcu::makeEhScheme("clank"))
            .totalEnergy();
    // On wall power ODAB never backs up: it matches the oracle.
    EXPECT_DOUBLE_EQ(odab, oracle);
    // Continuous-backup and region schemes pay on every op.
    EXPECT_GT(bec, oracle);
    EXPECT_GT(clank, oracle);
    EXPECT_DOUBLE_EQ(prog.totalEnergy, oracle);
}

TEST(McuModel, HarvestedOracleIsTheLowerBound)
{
    const mcu::McuProgram prog = gatesProgram();
    HarvestConfig harvest;
    harvest.source = SourceSpec::constant(100e-6);
    harvest.capacitanceOverride = 10e-9;  // tiny buffer: outages
    const RunStats oracle = mcu::mcuRunHarvested(
        prog, *mcu::makeEhScheme("oracle"), harvest);
    EXPECT_EQ(oracle.instructionsCommitted, prog.totalOps);
    EXPECT_GT(oracle.outages, 0u);
    for (const char *name : {"bec", "odab", "clank"}) {
        const RunStats run = mcu::mcuRunHarvested(
            prog, *mcu::makeEhScheme(name), harvest);
        EXPECT_EQ(run.instructionsCommitted, prog.totalOps) << name;
        EXPECT_GE(run.totalEnergy(), oracle.totalEnergy()) << name;
    }
}

TEST(McuModel, HarvestedRunsAreBitwiseRepeatable)
{
    const mcu::McuProgram prog = gatesProgram();
    for (const SourceSpec &src :
         {SourceSpec::constant(100e-6),
          SourceSpec::square(0.01, 0.3, 200e-6)}) {
        HarvestConfig harvest;
        harvest.source = src;
        harvest.capacitanceOverride = 100e-9;
        const auto scheme = mcu::makeEhScheme("bec");
        const RunStats a =
            mcu::mcuRunHarvested(prog, *scheme, harvest);
        const RunStats b =
            mcu::mcuRunHarvested(prog, *scheme, harvest);
        EXPECT_EQ(toJson(a), toJson(b)) << src.name();
    }
}

TEST(McuModel, WatchdogBreaksRegionsLongerThanOneBurst)
{
    // One region costs far more than a full buffer delivers: without
    // the watchdog checkpoint Clank would replay the region head
    // forever.  100 ops at 10 uJ against a ~23 uJ window.
    mcu::McuProgram prog;
    mcu::McuBlock block;
    block.count = 100;
    block.per.energy = 10e-6;
    block.per.seconds = 1e-4;
    prog.blocks = {block};
    prog.blockStart = {0, 100};
    prog.totalOps = 100;
    prog.totalEnergy = 100 * block.per.energy;
    prog.totalSeconds = 100 * block.per.seconds;
    mcu::setCheckpoints(prog, {0, 32, 64, 96});

    HarvestConfig harvest;
    harvest.source = SourceSpec::constant(1e-3);
    const auto clank = mcu::makeEhScheme("clank");
    const RunStats run = mcu::mcuRunHarvested(prog, *clank, harvest);
    EXPECT_EQ(run.instructionsCommitted, 100u);
    // The replayed region heads are Dead work; the forced
    // checkpoints are charged as backup energy.
    EXPECT_GT(run.instructionsDead, 0u);
    EXPECT_GT(run.backupEnergy, 0.0);
}

// -- Fault-injection conformance ------------------------------------

TEST(McuCampaign, ExactResumeSchemesNeverReplay)
{
    const auto w = inject::makeCampaignWorkload("gates");
    ASSERT_TRUE(w.has_value());
    for (const char *name : {"bec", "odab", "oracle"}) {
        inject::McuCampaignConfig cfg;
        cfg.scheme = name;
        const inject::McuCampaignReport rep =
            inject::runMcuCampaign(*w, cfg);
        EXPECT_TRUE(rep.clean()) << name;
        EXPECT_EQ(rep.replays, 0u) << name;
        EXPECT_GT(rep.points, 0u);
        const auto match = static_cast<std::size_t>(
            inject::Verdict::kMatch);
        EXPECT_EQ(rep.verdicts[match], rep.points) << name;
    }
}

TEST(McuCampaign, ClankReexecutesButNeverCorrupts)
{
    const auto w = inject::makeCampaignWorkload("gates");
    ASSERT_TRUE(w.has_value());
    inject::McuCampaignConfig cfg;
    cfg.scheme = "clank";
    const inject::McuCampaignReport rep =
        inject::runMcuCampaign(*w, cfg);
    EXPECT_TRUE(rep.clean());
    EXPECT_GT(rep.replays, 0u);
    const auto reex = static_cast<std::size_t>(
        inject::Verdict::kReexecuted);
    const auto corr = static_cast<std::size_t>(
        inject::Verdict::kCorrupted);
    EXPECT_GT(rep.verdicts[reex], 0u);
    EXPECT_EQ(rep.verdicts[corr], 0u);
    // The JSON is the deterministic campaign document.
    const std::string j = rep.toJson();
    EXPECT_NE(j.find("\"report\":\"mcu_campaign\""),
              std::string::npos);
    EXPECT_NE(j.find("\"clean\":true"), std::string::npos);
}

// -- Selector parsing -----------------------------------------------

TEST(BaselineSelector, SpellingsAndRejections)
{
    BaselineSelector sel;
    EXPECT_TRUE(parseBaselineSelector("", &sel));
    EXPECT_EQ(sel.system, BaselineSystem::kMouse);
    EXPECT_TRUE(parseBaselineSelector("mouse", &sel));
    EXPECT_EQ(sel.system, BaselineSystem::kMouse);
    EXPECT_TRUE(parseBaselineSelector("mcu:clank", &sel));
    EXPECT_EQ(sel.system, BaselineSystem::kMcu);
    EXPECT_EQ(sel.scheme, "clank");
    EXPECT_TRUE(parseBaselineSelector("sonic", &sel));
    EXPECT_EQ(sel.system, BaselineSystem::kSonic);

    std::string why;
    EXPECT_FALSE(parseBaselineSelector("mcu:mementos", &sel, &why));
    EXPECT_FALSE(why.empty());
    EXPECT_FALSE(parseBaselineSelector("mcu", &sel));
    EXPECT_FALSE(parseBaselineSelector("MOUSE", &sel));

    const auto names = baselineSelectorNames();
    ASSERT_EQ(names.size(), 6u);
    EXPECT_EQ(names.front(), "mouse");
    EXPECT_EQ(names.back(), "sonic");
    for (const std::string &n : names) {
        EXPECT_TRUE(parseBaselineSelector(n, &sel)) << n;
    }
}

// -- The SweepGrid schemes axis -------------------------------------

exp::SweepGrid
schemeGrid()
{
    exp::SweepGrid grid;
    grid.techs = {TechConfig::ModernStt};
    grid.benchmarks = {exp::paperBenchmarks()[3]};  // SVM ADULT
    grid.powers = {60e-6};
    grid.seedsPerPoint = 2;
    grid.schemes = {"mouse", "mcu:bec", "sonic"};
    return grid;
}

TEST(SweepGrid, SchemesAxisMultipliesTheSizeProduct)
{
    exp::SweepGrid grid = schemeGrid();
    EXPECT_EQ(grid.size(), 1u * 1u * 1u * 1u * 2u * 3u);
    grid.schemes.clear();
    EXPECT_EQ(grid.size(), 2u);
}

TEST(SweepGrid, SchemesDecodeBetweenPlatformAndBenchmark)
{
    const exp::SweepGrid grid = schemeGrid();
    // seedSlot is the fastest axis (radix 2 here), so the scheme
    // flips every two indices: 0,1 -> mouse; 2,3 -> mcu:bec; ...
    for (std::size_t i = 0; i < grid.size(); ++i) {
        const exp::SweepPoint p = grid.at(i);
        EXPECT_EQ(p.scheme, grid.schemes[(i / 2) % 3]) << i;
        EXPECT_EQ(p.seedSlot, i % 2) << i;
    }
}

TEST(SweepGrid, EmptySchemesAxisKeepsHistoricalPoints)
{
    // Radix-1 back-compat: a grid that never names schemes decodes
    // exactly as before the axis existed — same coordinates, same
    // derived seeds, scheme empty (= MOUSE).
    exp::SweepGrid with = schemeGrid();
    with.schemes = {"mouse"};
    exp::SweepGrid without = schemeGrid();
    without.schemes.clear();
    ASSERT_EQ(with.size(), without.size());
    for (std::size_t i = 0; i < without.size(); ++i) {
        const exp::SweepPoint a = with.at(i);
        const exp::SweepPoint b = without.at(i);
        EXPECT_TRUE(b.scheme.empty());
        EXPECT_EQ(a.seed, b.seed);
        EXPECT_EQ(a.benchmark, b.benchmark);
        EXPECT_EQ(a.seedSlot, b.seedSlot);
    }
}

// -- Runner dispatch ------------------------------------------------

TEST(Runner, UnknownSchemeIsATypedPointError)
{
    exp::SweepGrid grid = schemeGrid();
    grid.seedsPerPoint = 1;
    grid.schemes = {"mcu:bogus"};
    const exp::ExperimentRunner runner(1);
    const exp::SweepResult res = runner.run(grid);
    ASSERT_EQ(res.points.size(), 1u);
    EXPECT_FALSE(res.points[0].ok());
    EXPECT_EQ(res.points[0].error, RunError::kBaselineSchemeUnknown);
}

TEST(Runner, SonicWithoutCalibrationIsATypedPointError)
{
    // SONIC's calibration covers SVM MNIST and SVM HAR; asking for
    // it on ADULT must fail the point, not the process.
    exp::SweepGrid grid = schemeGrid();
    grid.seedsPerPoint = 1;
    grid.schemes = {"sonic"};
    const exp::ExperimentRunner runner(1);
    const exp::SweepResult res = runner.run(grid);
    ASSERT_EQ(res.points.size(), 1u);
    EXPECT_EQ(res.points[0].error, RunError::kBaselineSchemeUnknown);
}

TEST(Runner, SystemDispatchIsByteIdenticalAcrossThreadCounts)
{
    exp::SweepGrid grid = schemeGrid();
    grid.seedsPerPoint = 1;
    grid.schemes = {"mouse", "mcu:bec", "mcu:clank", "mcu:oracle"};
    grid.sources = {SourceSpec::constant(60e-6)};
    grid.powers.clear();
    grid.platforms = {"mementos"};

    const exp::SweepResult one = exp::ExperimentRunner(1).run(grid);
    const exp::SweepResult four = exp::ExperimentRunner(4).run(grid);
    ASSERT_EQ(one.points.size(), grid.size());
    ASSERT_EQ(four.points.size(), one.points.size());
    for (std::size_t i = 0; i < one.points.size(); ++i) {
        const RunResult &a = one.points[i];
        const RunResult &b = four.points[i];
        ASSERT_TRUE(a.ok()) << i;
        EXPECT_EQ(toJson(a.stats), toJson(b.stats)) << i;
        EXPECT_EQ(a.meta.system, b.meta.system);
        EXPECT_EQ(a.meta.scheme, b.meta.scheme);
        EXPECT_EQ(a.meta.seed, b.meta.seed);
    }
    // The metadata names the dispatched system.
    EXPECT_EQ(one.points[0].meta.system, "mouse");
    EXPECT_EQ(one.points[1].meta.system, "mcu");
    EXPECT_EQ(one.points[1].meta.scheme, "bec");
    // The MCU pays orders of magnitude more energy than MOUSE for
    // the same workload (the Figure-9 headline).
    EXPECT_GT(one.points[1].stats.totalEnergy(),
              one.points[0].stats.totalEnergy() * 10);
}

// -- The run API path -----------------------------------------------

MouseConfig
smallConfig()
{
    MouseConfig cfg;
    cfg.tech = TechConfig::ProjectedStt;
    cfg.array.tileRows = 128;
    cfg.array.tileCols = 8;
    cfg.array.numDataTiles = 2;
    cfg.array.numInstructionTiles = 512;
    return cfg;
}

Program
adderProgram(const Accelerator &acc)
{
    KernelBuilder kb(acc.gateLibrary(), acc.config().array, 0, 16);
    kb.activate(0, 3);
    const Word a = kb.pinnedWord(0, 4);
    const Word b = kb.pinnedWord(8, 4);
    (void)kb.add(a, b);
    return kb.finish();
}

TEST(RunApi, UnknownBaselineSchemeIsRejected)
{
    RunRequest req;
    req.baseline = "mcu:mementos";
    EXPECT_EQ(validateRunRequest(req),
              RunError::kBaselineSchemeUnknown);
    // SONIC has no benchmark identity at this layer.
    req.baseline = "sonic";
    EXPECT_EQ(validateRunRequest(req),
              RunError::kBaselineSchemeUnknown);
    req.baseline = "mouse";
    EXPECT_EQ(validateRunRequest(req), RunError::kNone);
}

TEST(RunApi, McuBaselineExecutesTheLoadedProgram)
{
    Accelerator acc(smallConfig());
    const Program prog = adderProgram(acc);
    acc.loadProgram(prog);
    const RunRequest req =
        RunRequestBuilder().baselineScheme("mcu:bec").build();
    const RunResult res = acc.execute(req);
    ASSERT_TRUE(res.ok());
    EXPECT_EQ(res.meta.system, "mcu");
    EXPECT_EQ(res.meta.scheme, "bec");
    EXPECT_EQ(res.stats.instructionsCommitted,
              prog.instructions.size());
    const std::string j = res.toJson();
    EXPECT_NE(j.find("\"system\":\"mcu\""), std::string::npos);
    EXPECT_NE(j.find("\"scheme\":\"bec\""), std::string::npos);
}

TEST(RunApi, DefaultRequestsReportTheMouseSystem)
{
    Accelerator acc(smallConfig());
    acc.loadProgram(adderProgram(acc));
    const RunResult res = acc.execute(RunRequest{});
    ASSERT_TRUE(res.ok());
    EXPECT_EQ(res.meta.system, "mouse");
    EXPECT_TRUE(res.meta.scheme.empty());
    EXPECT_NE(res.toJson().find("\"system\":\"mouse\""),
              std::string::npos);
}

} // namespace
} // namespace mouse
