/**
 * @file
 * Tests for the MTJ device model and the resistive-network solver:
 * the physics layer the paper's idempotency argument rests on.
 */

#include <gtest/gtest.h>

#include "device/mtj.hh"
#include "device/mtj_params.hh"
#include "device/network.hh"

namespace mouse
{
namespace
{

class MtjSwitching : public ::testing::TestWithParam<MtjParams>
{
};

TEST_P(MtjSwitching, SubCriticalCurrentNeverSwitches)
{
    const MtjParams p = GetParam();
    Mtj mtj(MtjState::P);
    EXPECT_FALSE(mtj.applyPulse(p.switchingCurrent * 0.99,
                                p.switchingTime * 100, p));
    EXPECT_EQ(mtj.state(), MtjState::P);
    mtj.set(MtjState::AP);
    EXPECT_FALSE(mtj.applyPulse(-p.switchingCurrent * 0.99,
                                p.switchingTime * 100, p));
    EXPECT_EQ(mtj.state(), MtjState::AP);
}

TEST_P(MtjSwitching, CriticalPulseSwitchesTowardCurrentDirection)
{
    const MtjParams p = GetParam();
    Mtj mtj(MtjState::P);
    EXPECT_TRUE(
        mtj.applyPulse(p.switchingCurrent, p.switchingTime, p));
    EXPECT_EQ(mtj.state(), MtjState::AP);
    EXPECT_TRUE(
        mtj.applyPulse(-p.switchingCurrent, p.switchingTime, p));
    EXPECT_EQ(mtj.state(), MtjState::P);
}

TEST_P(MtjSwitching, DirectionalityMakesPulsesIdempotent)
{
    // The paper's core physical claim (Table I): re-applying the same
    // pulse cannot undo the switch it caused.
    const MtjParams p = GetParam();
    Mtj mtj(MtjState::P);
    mtj.applyPulse(p.switchingCurrent * 2, p.switchingTime, p);
    ASSERT_EQ(mtj.state(), MtjState::AP);
    for (int i = 0; i < 10; ++i) {
        EXPECT_FALSE(
            mtj.applyPulse(p.switchingCurrent * 2, p.switchingTime, p));
        EXPECT_EQ(mtj.state(), MtjState::AP);
    }
}

TEST_P(MtjSwitching, InterruptedPulseLeavesStateUnchanged)
{
    const MtjParams p = GetParam();
    Mtj mtj(MtjState::P);
    EXPECT_FALSE(
        mtj.applyPulse(p.switchingCurrent * 2, p.switchingTime * 0.99, p));
    EXPECT_EQ(mtj.state(), MtjState::P);
    // Re-performing the full pulse then completes the switch.
    EXPECT_TRUE(
        mtj.applyPulse(p.switchingCurrent * 2, p.switchingTime, p));
    EXPECT_EQ(mtj.state(), MtjState::AP);
}

TEST_P(MtjSwitching, ResistanceTracksState)
{
    const MtjParams p = GetParam();
    Mtj mtj(MtjState::P);
    EXPECT_DOUBLE_EQ(mtj.resistance(p), p.rParallel);
    mtj.set(MtjState::AP);
    EXPECT_DOUBLE_EQ(mtj.resistance(p), p.rAntiParallel);
    EXPECT_GT(p.rAntiParallel, p.rParallel);
}

INSTANTIATE_TEST_SUITE_P(TableII, MtjSwitching,
                         ::testing::Values(modernMtj(), projectedMtj()),
                         [](const auto &info) {
                             return info.index == 0 ? "Modern"
                                                    : "Projected";
                         });

TEST(MtjParams, TableIIValues)
{
    const MtjParams modern = modernMtj();
    EXPECT_DOUBLE_EQ(modern.rParallel, 3.15e3);
    EXPECT_DOUBLE_EQ(modern.rAntiParallel, 7.34e3);
    EXPECT_DOUBLE_EQ(modern.switchingTime, 3e-9);
    EXPECT_DOUBLE_EQ(modern.switchingCurrent, 40e-6);

    const MtjParams projected = projectedMtj();
    EXPECT_DOUBLE_EQ(projected.rParallel, 7.34e3);
    EXPECT_DOUBLE_EQ(projected.rAntiParallel, 76.39e3);
    EXPECT_DOUBLE_EQ(projected.switchingTime, 1e-9);
    EXPECT_DOUBLE_EQ(projected.switchingCurrent, 3e-6);
    EXPECT_GT(projected.tmr(), modern.tmr());
}

TEST(DeviceConfig, PresetsMatchPaper)
{
    const DeviceConfig modern = makeDeviceConfig(TechConfig::ModernStt);
    EXPECT_NEAR(modern.frequency(), 30.3e6, 0.1e6);
    EXPECT_EQ(modern.cell, CellKind::Stt1T1M);
    EXPECT_DOUBLE_EQ(modern.capVoltageLow, 0.320);
    EXPECT_DOUBLE_EQ(modern.capVoltageHigh, 0.340);
    EXPECT_DOUBLE_EQ(modern.bufferCapacitance, 100e-6);

    const DeviceConfig proj = makeDeviceConfig(TechConfig::ProjectedStt);
    EXPECT_NEAR(proj.frequency(), 90.9e6, 0.1e6);
    EXPECT_DOUBLE_EQ(proj.bufferCapacitance, 10e-6);

    const DeviceConfig she = makeDeviceConfig(TechConfig::ProjectedShe);
    EXPECT_EQ(she.cell, CellKind::She2T1M);
    EXPECT_EQ(she.mtj.rParallel, proj.mtj.rParallel);
}

TEST(Network, ParallelResistanceBasics)
{
    EXPECT_DOUBLE_EQ(parallelResistance({100.0}), 100.0);
    EXPECT_DOUBLE_EQ(parallelResistance({100.0, 100.0}), 50.0);
    EXPECT_NEAR(parallelResistance({100.0, 200.0}), 200.0 / 3.0, 1e-9);
    // Parallel combination is below the smallest branch.
    EXPECT_LT(parallelResistance({50.0, 1e9}), 50.0);
}

TEST(Network, InputBranchesOrderedByState)
{
    for (auto tech : {TechConfig::ModernStt, TechConfig::ProjectedStt,
                      TechConfig::ProjectedShe}) {
        const DeviceConfig cfg = makeDeviceConfig(tech);
        EXPECT_LT(inputBranchResistance(cfg, MtjState::P),
                  inputBranchResistance(cfg, MtjState::AP));
    }
}

TEST(Network, SheWritePathBypassesMtj)
{
    const DeviceConfig she = makeDeviceConfig(TechConfig::ProjectedShe);
    // Write path resistance is MTJ-state independent and small.
    EXPECT_DOUBLE_EQ(writePathResistance(she, MtjState::P),
                     writePathResistance(she, MtjState::AP));
    EXPECT_DOUBLE_EQ(writePathResistance(she, MtjState::P),
                     she.sheChannelR + she.accessTransistorR);

    const DeviceConfig stt = makeDeviceConfig(TechConfig::ProjectedStt);
    EXPECT_GT(writePathResistance(stt, MtjState::AP),
              writePathResistance(she, MtjState::AP));
}

TEST(Network, SheOutputBranchStateIndependent)
{
    const DeviceConfig she = makeDeviceConfig(TechConfig::ProjectedShe);
    EXPECT_DOUBLE_EQ(outputBranchResistance(she, MtjState::P),
                     outputBranchResistance(she, MtjState::AP));

    const DeviceConfig stt = makeDeviceConfig(TechConfig::ProjectedStt);
    EXPECT_LT(outputBranchResistance(stt, MtjState::P),
              outputBranchResistance(stt, MtjState::AP));
}

TEST(Network, MoreLowResistanceInputsMeansMoreCurrent)
{
    const DeviceConfig cfg = makeDeviceConfig(TechConfig::ModernStt);
    const Volts v = 0.3;
    const Amperes i_pp = gateOutputCurrent(
        cfg, v, {MtjState::P, MtjState::P}, MtjState::P);
    const Amperes i_pa = gateOutputCurrent(
        cfg, v, {MtjState::P, MtjState::AP}, MtjState::P);
    const Amperes i_aa = gateOutputCurrent(
        cfg, v, {MtjState::AP, MtjState::AP}, MtjState::P);
    EXPECT_GT(i_pp, i_pa);
    EXPECT_GT(i_pa, i_aa);
}

TEST(Network, LoopResistanceMatchesHandComputation)
{
    const DeviceConfig cfg = makeDeviceConfig(TechConfig::ModernStt);
    // Two P inputs (3.15k + 1k each, in parallel) + P output (4.15k).
    const Ohms expected = (3.15e3 + 1e3) / 2.0 + 3.15e3 + 1e3;
    EXPECT_NEAR(gateLoopResistance(cfg, {MtjState::P, MtjState::P},
                                   MtjState::P),
                expected, 1e-6);
}

} // namespace
} // namespace mouse
