/**
 * @file
 * Tests for the ML layer: synthetic datasets, SVM training and
 * integer inference, BNN training/inference, and — the load-bearing
 * one — bit-exact equivalence between software SVM inference and the
 * compiled in-array program.
 */

#include <fstream>

#include <gtest/gtest.h>

#include "controller/controller.hh"
#include "ml/bnn.hh"
#include "ml/dataset.hh"
#include "ml/mapping.hh"
#include "ml/svm.hh"

namespace mouse
{
namespace
{

TEST(Dataset, ShapesMatchPaper)
{
    EXPECT_EQ(shapeFeatures(DataShape::MnistLike), 784u);
    EXPECT_EQ(shapeClasses(DataShape::MnistLike), 10u);
    EXPECT_EQ(shapeFeatures(DataShape::HarLike), 561u);
    EXPECT_EQ(shapeClasses(DataShape::HarLike), 6u);
    EXPECT_EQ(shapeFeatures(DataShape::AdultLike), 15u);
    EXPECT_EQ(shapeClasses(DataShape::AdultLike), 2u);
}

TEST(Dataset, SyntheticIsDeterministicAndCoversClasses)
{
    const Dataset a = makeSynthetic(DataShape::HarLike, 200, 42);
    const Dataset b = makeSynthetic(DataShape::HarLike, 200, 42);
    EXPECT_EQ(a.x, b.x);
    EXPECT_EQ(a.y, b.y);
    std::vector<bool> seen(a.numClasses, false);
    for (int y : a.y) {
        ASSERT_GE(y, 0);
        ASSERT_LT(y, static_cast<int>(a.numClasses));
        seen[static_cast<std::size_t>(y)] = true;
    }
    for (bool s : seen) {
        EXPECT_TRUE(s);
    }
}

TEST(Dataset, BinarizePreservesShapeAndThresholds)
{
    const Dataset data = makeSynthetic(DataShape::AdultLike, 50, 1);
    const Dataset bin = binarize(data, 128);
    EXPECT_EQ(bin.size(), data.size());
    EXPECT_EQ(bin.numFeatures, data.numFeatures);
    for (std::size_t i = 0; i < bin.size(); ++i) {
        for (unsigned j = 0; j < bin.numFeatures; ++j) {
            EXPECT_EQ(bin.x[i][j], data.x[i][j] >= 128 ? 1 : 0);
        }
    }
}

TEST(Dataset, CsvRoundTrip)
{
    const Dataset orig = makeSynthetic(DataShape::AdultLike, 40, 21);
    const std::string path = ::testing::TempDir() + "mouse_ds.csv";
    saveCsv(orig, path);
    const Dataset back = loadCsv(path, orig.numClasses);
    EXPECT_EQ(back.numFeatures, orig.numFeatures);
    EXPECT_EQ(back.x, orig.x);
    EXPECT_EQ(back.y, orig.y);
}

TEST(Dataset, CsvRejectsBadLabels)
{
    const std::string path = ::testing::TempDir() + "mouse_bad.csv";
    {
        std::ofstream out(path);
        out << "1,2,3,9\n";  // label 9 with num_classes 2
    }
    EXPECT_EXIT(loadCsv(path, 2), ::testing::ExitedWithCode(1),
                "label");
}

TEST(Dataset, CsvSkipsCommentsAndBlanks)
{
    const std::string path = ::testing::TempDir() + "mouse_cmt.csv";
    {
        std::ofstream out(path);
        out << "# header\n\n10,20,1\n# trailing\n30,40,0\n";
    }
    const Dataset data = loadCsv(path, 2);
    ASSERT_EQ(data.size(), 2u);
    EXPECT_EQ(data.numFeatures, 2u);
    EXPECT_EQ(data.x[0][1], 20);
    EXPECT_EQ(data.y[1], 0);
}

TEST(Svm, DotAndKernelIntegerMath)
{
    const Features u = {1, 2, 3};
    const Features v = {4, 5, 6};
    EXPECT_EQ(dot(u, v), 4 + 10 + 18);
    EXPECT_EQ(static_cast<std::int64_t>(polyKernel2(u, v)), 32 * 32);
}

TEST(Svm, TrainsToHighAccuracyOnSeparableData)
{
    // Low-noise synthetic clusters are nearly separable; the kernel
    // perceptron should fit them nearly perfectly.
    const Dataset train =
        makeSynthetic(DataShape::AdultLike, 300, 7, 12.0);
    const Dataset test =
        makeSynthetic(DataShape::AdultLike, 200, 8, 12.0);
    const SvmModel model = trainSvm(train);
    EXPECT_GT(svmAccuracy(model, train), 0.95);
    EXPECT_GT(svmAccuracy(model, test), 0.90);
    EXPECT_GT(model.totalSupportVectors(), 0u);
    EXPECT_LE(model.maxSupportVectors(), train.size());
}

TEST(Svm, MultiClassOneVsRest)
{
    const Dataset train =
        makeSynthetic(DataShape::HarLike, 240, 17, 16.0);
    const SvmModel model = trainSvm(train);
    EXPECT_EQ(model.classifiers.size(), 6u);
    EXPECT_GT(svmAccuracy(model, train), 0.9);
}

TEST(Svm, BinarizedStillSeparable)
{
    const Dataset train = binarize(
        makeSynthetic(DataShape::MnistLike, 150, 3, 16.0));
    const SvmModel model = trainSvm(train);
    EXPECT_GT(svmAccuracy(model, train), 0.9);
}

TEST(Bnn, ShapesMatchPaperConfigs)
{
    const BnnShape finn = finnShape();
    EXPECT_EQ(finn.inputBits, 784u);
    EXPECT_EQ(finn.hiddenWidths,
              (std::vector<unsigned>{1024, 1024, 1024}));
    const BnnShape fp = fpBnnShape();
    EXPECT_EQ(fp.inputBits, 784u * 8);
    EXPECT_EQ(fp.hiddenWidths,
              (std::vector<unsigned>{2048, 2048, 2048}));
}

TEST(Bnn, BitPlanesRoundTrip)
{
    const Features f = {0x00, 0xFF, 0xA5};
    const auto bits = bitPlanes(f);
    ASSERT_EQ(bits.size(), 24u);
    for (int b = 0; b < 8; ++b) {
        EXPECT_EQ(bits[static_cast<std::size_t>(b)], 0);
        EXPECT_EQ(bits[static_cast<std::size_t>(8 + b)], 1);
        EXPECT_EQ(bits[static_cast<std::size_t>(16 + b)],
                  (0xA5 >> b) & 1);
    }
}

TEST(Bnn, TrainsAboveChanceOnSyntheticData)
{
    // A reduced FINN-like network (same structure, narrower layers)
    // keeps the test fast; the training pipeline is identical.
    Dataset train = binarize(
        makeSynthetic(DataShape::MnistLike, 240, 5, 16.0));
    BnnShape shape;
    shape.inputBits = 784;
    shape.hiddenWidths = {64, 64};
    shape.numClasses = 10;
    BnnTrainConfig cfg;
    cfg.epochs = 8;
    const BnnModel model = trainBnn(train, shape, cfg);
    const double acc = bnnAccuracy(model, train);
    EXPECT_GT(acc, 0.5) << "training accuracy " << acc;
    EXPECT_EQ(model.weightBits(),
              784u * 64 + 64u * 64 + 64u * 10);
}

TEST(Bnn, ForwardIsDeterministicInteger)
{
    Dataset train = binarize(
        makeSynthetic(DataShape::AdultLike, 60, 11, 16.0));
    BnnShape shape;
    shape.inputBits = 15;
    shape.hiddenWidths = {16};
    shape.numClasses = 2;
    const BnnModel model = trainBnn(train, shape);
    const auto s1 = model.scores(train.x[0]);
    const auto s2 = model.scores(train.x[0]);
    EXPECT_EQ(s1, s2);
    EXPECT_EQ(s1.size(), 2u);
}

// ---------------------------------------------------------------------
// Mapping / layout model
// ---------------------------------------------------------------------

class MappingTech : public ::testing::TestWithParam<TechConfig>
{
  protected:
    GateLibrary lib_{makeDeviceConfig(GetParam())};
};

TEST_P(MappingTech, SvmLayoutInvariants)
{
    SvmWorkload work;
    work.name = "mnist";
    work.numSupportVectors = 11813;
    work.dim = 784;
    work.inputBits = 8;
    work.numClasses = 10;
    MouseShape shape;
    shape.numDataTiles = 448;

    MappingInfo info;
    const Trace trace = buildSvmTrace(lib_, work, shape, &info);

    EXPECT_GE(info.elementsPerColumn, 1u);
    EXPECT_EQ(info.colsPerUnit,
              (work.dim + info.elementsPerColumn - 1) /
                  info.elementsPerColumn);
    EXPECT_EQ(info.batches, 1u);  // everything fits at once
    EXPECT_LE(info.peakActiveColumns, shape.totalColumns());
    EXPECT_GT(trace.totalInstructions(), 100000u);
    // The paper's SVM MNIST instruction memory is 4.5 MB; ours must
    // land in the same regime (straight-line program).
    EXPECT_GT(info.instrMB, 1.0);
    EXPECT_LT(info.instrMB, 16.0);
    EXPECT_GT(info.dataMB, 8.0);
    EXPECT_LT(info.dataMB, 40.0);
}

TEST_P(MappingTech, BinarizedSvmIsMuchCheaper)
{
    SvmWorkload full;
    full.name = "mnist";
    full.numSupportVectors = 11813;
    full.dim = 784;
    full.inputBits = 8;
    full.numClasses = 10;

    SvmWorkload bin = full;
    bin.inputBits = 1;
    bin.numSupportVectors = 12214;
    bin.accBits = 11;
    bin.squareBits = 22;
    bin.scoreBits = 30;

    MouseShape big;
    big.numDataTiles = 448;
    MouseShape small;
    small.numDataTiles = 56;
    const Trace t_full = buildSvmTrace(lib_, full, big);
    const Trace t_bin = buildSvmTrace(lib_, bin, small);
    // Section IX: binarization replaces multiplications with AND
    // gates, cutting computation by several-fold.
    EXPECT_LT(t_bin.totalInstructions() * 4,
              t_full.totalInstructions());
}

TEST_P(MappingTech, BnnSmallArrayBatchesSequentially)
{
    // A one-tile array cannot hold FP-BNN's 26k columns at once; the
    // Section IV-C batching splits the layer into sequential chunks,
    // costing instructions (distribution re-runs per chunk).
    MouseShape tiny;
    tiny.numDataTiles = 1;
    MouseShape big;
    big.numDataTiles = 120;
    MappingInfo tiny_info;
    const Trace t_tiny =
        buildBnnTrace(lib_, fpBnnShape(), tiny, &tiny_info);
    const Trace t_big = buildBnnTrace(lib_, fpBnnShape(), big);
    EXPECT_LE(tiny_info.peakActiveColumns, 1024u);
    EXPECT_GT(t_tiny.totalInstructions(),
              t_big.totalInstructions());
}

TEST_P(MappingTech, BnnCapBelowOneNeuronIsFatal)
{
    MouseShape shape;
    shape.numDataTiles = 64;
    shape.maxActiveColumns = 1;  // less than one neuron's columns
    EXPECT_DEATH(buildBnnTrace(lib_, fpBnnShape(), shape),
                 "exceeds");
}

TEST_P(MappingTech, ParallelismCapForcesSvmBatches)
{
    SvmWorkload work;
    work.name = "adult";
    work.numSupportVectors = 1909;
    work.dim = 15;
    work.inputBits = 8;
    work.numClasses = 2;
    MouseShape shape;
    shape.numDataTiles = 7;

    MappingInfo unlimited;
    const Trace t_free = buildSvmTrace(lib_, work, shape, &unlimited);
    shape.maxActiveColumns = 64;
    MappingInfo capped;
    const Trace t_cap = buildSvmTrace(lib_, work, shape, &capped);

    EXPECT_EQ(unlimited.batches, 1u);
    EXPECT_GT(capped.batches, 1u);
    EXPECT_LE(capped.peakActiveColumns, 64u);
    // Serial batching costs latency: more total instructions.
    EXPECT_GT(t_cap.totalInstructions(), t_free.totalInstructions());
}

TEST_P(MappingTech, BnnConfigsScaleWithNetwork)
{
    MouseShape shape;
    shape.numDataTiles = 120;
    MappingInfo finn_info;
    MappingInfo fp_info;
    const Trace t_finn =
        buildBnnTrace(lib_, finnShape(), shape, &finn_info);
    const Trace t_fp =
        buildBnnTrace(lib_, fpBnnShape(), shape, &fp_info);
    // FP-BNN is the bigger network: more columns, more energy.
    EXPECT_GT(fp_info.peakActiveColumns,
              finn_info.peakActiveColumns);
    EXPECT_GT(t_fp.totalInstructions(),
              t_finn.totalInstructions());
}

INSTANTIATE_TEST_SUITE_P(AllTechs, MappingTech,
                         ::testing::Values(TechConfig::ModernStt,
                                           TechConfig::ProjectedStt,
                                           TechConfig::ProjectedShe),
                         [](const auto &info) {
                             switch (info.param) {
                               case TechConfig::ModernStt:
                                 return "ModernStt";
                               case TechConfig::ProjectedStt:
                                 return "ProjectedStt";
                               default:
                                 return "ProjectedShe";
                             }
                         });

// ---------------------------------------------------------------------
// End-to-end: the compiled kernel equals software inference, bit for
// bit, on the functional array.
// ---------------------------------------------------------------------

TEST(SvmOnArray, SquaredDotMatchesSoftwareExactly)
{
    const GateLibrary lib(makeDeviceConfig(TechConfig::ProjectedStt));
    ArrayConfig cfg;
    cfg.tileRows = 512;
    cfg.tileCols = 4;
    cfg.numDataTiles = 1;
    cfg.numInstructionTiles = 4096;

    // 4 support vectors (one per column), 6 elements, 4-bit features.
    constexpr unsigned dim = 6;
    constexpr unsigned input_bits = 4;
    constexpr unsigned acc_bits = 12;
    const RowAddr sv_base = 0;
    const RowAddr x_base =
        static_cast<RowAddr>(dim * 2 * input_bits);
    const unsigned first_free = 2 * dim * 2 * input_bits + 8;

    KernelBuilder kb(lib, cfg, 0, first_free);
    kb.activate(0, 3);
    Word square;
    buildSmallSvmKernel(kb, sv_base, x_base, dim, input_bits,
                        acc_bits, square);
    const Program prog = kb.finish();

    // Random SVs and input.
    Rng rng(2020);
    Features x(dim);
    for (auto &v : x) {
        v = static_cast<std::uint8_t>(rng.below(16));
    }
    std::vector<Features> svs(4, Features(dim));
    for (auto &sv : svs) {
        for (auto &v : sv) {
            v = static_cast<std::uint8_t>(rng.below(16));
        }
    }

    TileGrid grid(cfg, lib);
    for (ColAddr c = 0; c < 4; ++c) {
        for (unsigned e = 0; e < dim; ++e) {
            for (unsigned b = 0; b < input_bits; ++b) {
                grid.tile(0).setBit(
                    static_cast<RowAddr>(sv_base +
                                         e * 2 * input_bits + 2 * b),
                    c, (svs[c][e] >> b) & 1);
                grid.tile(0).setBit(
                    static_cast<RowAddr>(x_base +
                                         e * 2 * input_bits + 2 * b),
                    c, (x[e] >> b) & 1);
            }
        }
    }

    InstructionMemory imem(cfg);
    imem.load(prog.encode());
    EnergyModel energy(lib);
    Controller ctrl(grid, imem, energy);
    while (!ctrl.halted()) {
        ctrl.step();
    }

    for (ColAddr c = 0; c < 4; ++c) {
        std::int64_t hw = 0;
        for (std::size_t i = 0; i < square.size(); ++i) {
            hw |= static_cast<std::int64_t>(
                      grid.tile(0).bit(square[i].row, c))
                  << i;
        }
        const std::int64_t d = dot(svs[c], x);
        const std::int64_t expect =
            (d * d) &
            ((1ll << static_cast<int>(square.size())) - 1);
        EXPECT_EQ(hw, expect) << "support vector " << c;
    }
}

} // namespace
} // namespace mouse
