/**
 * @file
 * Tests for cross-column transport (the barrel-shifted row write)
 * and the fully-on-array reductions it enables — culminating in a
 * complete binary SVM decision computed end to end in the array:
 * per-column squared dots, per-column coefficient multiplies, and a
 * cross-column tree sum, bit-exact against software.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "core/accelerator.hh"
#include "ml/mapping.hh"

namespace mouse
{
namespace
{

TEST(WriteRowShifted, IsaRoundTrip)
{
    const Instruction inst = Instruction::writeRowShifted(5, 700, 3);
    const Instruction back = Instruction::decode(inst.encode());
    EXPECT_EQ(back, inst);
    EXPECT_EQ(back.colLo, 3);
    EXPECT_EQ(back.disassemble(), "WRITES t5 r700 <<c3");
}

TEST(WriteRowShifted, RotatesBufferContents)
{
    const GateLibrary lib(makeDeviceConfig(TechConfig::ProjectedStt));
    ArrayConfig cfg;
    cfg.tileRows = 16;
    cfg.tileCols = 8;
    cfg.numDataTiles = 1;
    TileGrid grid(cfg, lib);
    // Seed row 0 with a pattern, read it, write shifted by 2.
    for (ColAddr c = 0; c < 8; ++c) {
        grid.tile(0).setBit(0, c, c == 1 || c == 6);
    }
    grid.execute(Instruction::readRow(0, 0));
    grid.execute(Instruction::writeRowShifted(0, 2, 2));
    // Destination column c holds source column (c + 2) mod 8.
    for (ColAddr c = 0; c < 8; ++c) {
        const ColAddr src = static_cast<ColAddr>((c + 2) % 8);
        EXPECT_EQ(grid.tile(0).bit(2, c),
                  grid.tile(0).bit(0, src))
            << "col " << c;
    }
}

class CrossColumn : public ::testing::Test
{
  protected:
    MouseConfig
    config()
    {
        MouseConfig cfg;
        cfg.tech = TechConfig::ProjectedStt;
        cfg.array.tileRows = 512;
        cfg.array.tileCols = 8;
        cfg.array.numDataTiles = 1;
        cfg.array.numInstructionTiles = 8192;
        return cfg;
    }
};

TEST_F(CrossColumn, TreeSumAcrossColumns)
{
    const MouseConfig cfg = config();
    Accelerator acc(cfg);
    KernelBuilder kb(acc.gateLibrary(), cfg.array, 0, 20);
    kb.activate(0, 7);
    Word value = kb.pinnedWord(0, 8);
    const Word total = kb.crossColumnSum(value, 8);
    acc.loadProgram(kb.finish());

    Rng rng(12);
    std::uint64_t expect = 0;
    for (ColAddr c = 0; c < 8; ++c) {
        const std::uint64_t v = rng.below(256);
        expect += v;
        for (unsigned i = 0; i < 8; ++i) {
            acc.grid().tile(0).setBit(static_cast<RowAddr>(2 * i), c,
                                      (v >> i) & 1);
        }
    }
    acc.execute(RunRequest{});

    std::uint64_t got = 0;
    for (std::size_t i = 0; i < total.size(); ++i) {
        got |= static_cast<std::uint64_t>(
                   acc.grid().tile(0).bit(total[i].row, 0))
               << i;
    }
    EXPECT_EQ(got, expect);
}

TEST_F(CrossColumn, SignedTreeSum)
{
    const MouseConfig cfg = config();
    Accelerator acc(cfg);
    KernelBuilder kb(acc.gateLibrary(), cfg.array, 0, 20);
    kb.activate(0, 7);
    Word value = kb.pinnedWord(0, 6);
    const Word total = kb.crossColumnSum(value, 8, /*signed=*/true);
    acc.loadProgram(kb.finish());

    const int vals[8] = {-31, 17, -2, 0, 25, -30, 9, -11};
    std::int64_t expect = 0;
    for (ColAddr c = 0; c < 8; ++c) {
        expect += vals[c];
        for (unsigned i = 0; i < 6; ++i) {
            acc.grid().tile(0).setBit(
                static_cast<RowAddr>(2 * i), c,
                (static_cast<std::uint64_t>(vals[c]) >> i) & 1);
        }
    }
    acc.execute(RunRequest{});

    std::int64_t got = 0;
    for (std::size_t i = 0; i < total.size(); ++i) {
        got |= static_cast<std::int64_t>(
                   acc.grid().tile(0).bit(total[i].row, 0))
               << i;
    }
    if ((got >> (total.size() - 1)) & 1) {
        got -= 1ll << total.size();
    }
    EXPECT_EQ(got, expect);
}

TEST_F(CrossColumn, FullBinarySvmDecisionOnArray)
{
    // The capstone: score = sum_i alpha_i * (sv_i . x)^2, computed
    // entirely in the array — kernels per column, coefficient
    // multiply per column, cross-column tree sum — and compared
    // bit-exactly against software.
    constexpr unsigned kDim = 4;
    constexpr unsigned kInputBits = 3;
    constexpr unsigned kAccBits = 10;
    constexpr unsigned kCoefBits = 4;
    constexpr unsigned kCols = 8;
    const RowAddr sv_base = 0;
    const RowAddr x_base = kDim * 2 * kInputBits;
    const RowAddr coef_base = 2 * kDim * 2 * kInputBits;
    const unsigned first_free = coef_base + 2 * kCoefBits + 4;

    const MouseConfig cfg = config();
    Accelerator acc(cfg);
    KernelBuilder kb(acc.gateLibrary(), cfg.array, 0, first_free);
    kb.activate(0, kCols - 1);
    Word square;
    buildSmallSvmKernel(kb, sv_base, x_base, kDim, kInputBits,
                        kAccBits, square);
    const Word alpha = kb.pinnedWord(coef_base, kCoefBits);
    Word term = kb.mulSigned(square, alpha);
    const Word score =
        kb.crossColumnSum(std::move(term), kCols, /*signed=*/true);
    acc.loadProgram(kb.finish());

    Rng rng(2468);
    Features x(kDim);
    for (auto &v : x) {
        v = static_cast<std::uint8_t>(rng.below(8));
    }
    std::vector<Features> svs(kCols, Features(kDim));
    std::vector<int> alphas(kCols);
    __int128 expect = 0;
    for (ColAddr c = 0; c < kCols; ++c) {
        for (unsigned e = 0; e < kDim; ++e) {
            svs[c][e] = static_cast<std::uint8_t>(rng.below(8));
            for (unsigned b = 0; b < kInputBits; ++b) {
                acc.grid().tile(0).setBit(
                    static_cast<RowAddr>(sv_base +
                                         e * 2 * kInputBits + 2 * b),
                    c, (svs[c][e] >> b) & 1);
                acc.grid().tile(0).setBit(
                    static_cast<RowAddr>(x_base +
                                         e * 2 * kInputBits + 2 * b),
                    c, (x[e] >> b) & 1);
            }
        }
        alphas[c] = static_cast<int>(rng.between(-8, 7));
        for (unsigned b = 0; b < kCoefBits; ++b) {
            acc.grid().tile(0).setBit(
                static_cast<RowAddr>(coef_base + 2 * b), c,
                (static_cast<std::uint64_t>(alphas[c]) >> b) & 1);
        }
        const std::int64_t d = dot(svs[c], x);
        expect += static_cast<__int128>(alphas[c]) * d * d;
    }

    const RunStats stats = acc.execute(RunRequest{}).stats;
    EXPECT_GT(stats.instructionsCommitted, 1000u);

    std::int64_t got = 0;
    for (std::size_t i = 0; i < score.size(); ++i) {
        got |= static_cast<std::int64_t>(
                   acc.grid().tile(0).bit(score[i].row, 0))
               << i;
    }
    if ((got >> (score.size() - 1)) & 1) {
        got -= 1ll << score.size();
    }
    EXPECT_EQ(got, static_cast<std::int64_t>(expect));
}

} // namespace
} // namespace mouse
