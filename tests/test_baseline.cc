/**
 * @file
 * Tests for the comparison baselines: the SONIC model behind its
 * scheme entry points (baseline/sonic_scheme.hh) and the CPU
 * reference rows, including the cross-system orderings the paper's
 * Table IV and Figure 9 report.  Direct SonicModel construction is
 * confined to the differential test that pins the entry points to the
 * model (the mouse_lint sonic-model rule bans it elsewhere).
 */

#include <gtest/gtest.h>

#include "baseline/cpu.hh"
#include "baseline/sonic_scheme.hh"
#include "ml/mapping.hh"
#include "sim/simulator.hh"

namespace mouse
{
namespace
{

TEST(Sonic, ContinuousMatchesTableFour)
{
    const RunStats run = sonicRunContinuous(sonicMnist());
    EXPECT_DOUBLE_EQ(run.totalTime(), 2.74);
    EXPECT_DOUBLE_EQ(run.totalEnergy(), 27000e-6);

    EXPECT_DOUBLE_EQ(sonicRunContinuous(sonicHar()).totalTime(),
                     1.10);
}

TEST(Sonic, HarvestedLatencyFallsWithPower)
{
    const SonicBenchmark mnist = sonicMnist();
    Seconds prev = 1e18;
    for (Watts p : {60e-6, 500e-6, 5e-3}) {
        const RunStats run = sonicRunHarvested(mnist, p);
        EXPECT_LT(run.totalTime(), prev);
        prev = run.totalTime();
    }
}

TEST(Sonic, StrongSourceSustainsContinuousOperation)
{
    // The MNIST active power is ~9.9 mW; a 20 mW source never cuts.
    const RunStats run = sonicRunHarvested(sonicMnist(), 20e-3);
    EXPECT_EQ(run.outages, 0u);
    EXPECT_DOUBLE_EQ(run.totalTime(), 2.74);
}

TEST(Sonic, WeakSourceIsChargingDominated)
{
    const RunStats run = sonicRunHarvested(sonicMnist(), 60e-6);
    EXPECT_GT(run.chargingTime, 100.0);  // ~27 mJ / 60 uW ~ 450 s
    EXPECT_GT(run.chargingTime, run.activeTime * 10);
    EXPECT_GT(run.outages, 0u);
    EXPECT_GT(run.deadEnergy, 0.0);
}

TEST(SonicScheme, BenchmarkLookupMatchesPaperSpellings)
{
    ASSERT_TRUE(sonicBenchmarkFor("SVM MNIST").has_value());
    EXPECT_EQ(sonicBenchmarkFor("SVM MNIST")->name,
              sonicMnist().name);
    ASSERT_TRUE(sonicBenchmarkFor("SVM HAR").has_value());
    EXPECT_EQ(sonicBenchmarkFor("SVM HAR")->name, sonicHar().name);
    EXPECT_FALSE(sonicBenchmarkFor("SVM ADULT").has_value());
    EXPECT_FALSE(sonicBenchmarkFor("no such benchmark").has_value());
}

TEST(SonicScheme, BitIdenticalToDirectModel)
{
    // The differential pin: the scheme entry points must reproduce
    // the direct model exactly, or retiring the free-floating call
    // sites silently changed published numbers.
    for (const auto &sb : {sonicMnist(), sonicHar()}) {
        // mouse-lint: allow(sonic-model) -- the differential test
        // needs the direct model as its reference.
        const SonicModel model(sb);
        const RunStats direct_c = model.runContinuous();
        const RunStats scheme_c = sonicRunContinuous(sb);
        EXPECT_DOUBLE_EQ(scheme_c.totalTime(), direct_c.totalTime());
        EXPECT_DOUBLE_EQ(scheme_c.totalEnergy(),
                         direct_c.totalEnergy());
        EXPECT_EQ(scheme_c.instructionsCommitted,
                  direct_c.instructionsCommitted);

        for (Watts p : {60e-6, 500e-6, 5e-3}) {
            const RunStats direct_h = model.runHarvested(p);
            const RunStats scheme_h = sonicRunHarvested(sb, p);
            EXPECT_DOUBLE_EQ(scheme_h.totalTime(),
                             direct_h.totalTime());
            EXPECT_DOUBLE_EQ(scheme_h.totalEnergy(),
                             direct_h.totalEnergy());
            EXPECT_EQ(scheme_h.outages, direct_h.outages);
            EXPECT_DOUBLE_EQ(scheme_h.chargingTime,
                             direct_h.chargingTime);
            EXPECT_DOUBLE_EQ(scheme_h.deadEnergy,
                             direct_h.deadEnergy);
        }
    }

    // The model's active power identity rides along (Table IV).
    // mouse-lint: allow(sonic-model) -- activePower() is a model
    // member the entry points deliberately do not re-export.
    const SonicModel mnist(sonicMnist());
    EXPECT_NEAR(mnist.activePower(), 27000e-6 / 2.74, 1e-9);
}

TEST(Cpu, PaperRowsPresent)
{
    const auto rows = cpuSvmRows();
    ASSERT_EQ(rows.size(), 4u);
    EXPECT_EQ(rows[0].name, "MNIST");
    EXPECT_NEAR(rows[0].latency, 169824e-6, 1e-9);
    EXPECT_NEAR(rows[0].energy, 5094702e-6, 1e-9);
    EXPECT_EQ(rows[0].supportVectors, 11813u);

    const auto lib_rows = libSvmRows();
    ASSERT_EQ(lib_rows.size(), 4u);
    EXPECT_EQ(lib_rows[3].name, "ADULT");
    EXPECT_EQ(lib_rows[3].supportVectors, 15792u);
}

TEST(Cpu, EstimateAnchorsToMnistRow)
{
    const CpuBenchmark est = estimateCpuSvm("MNIST", 11813, 784);
    EXPECT_NEAR(est.latency, 169824e-6, 1e-6);
    EXPECT_NEAR(est.energy, est.latency * kHaswellIdlePower, 1e-9);
    // Scaling: half the support vectors, half the time.
    const CpuBenchmark half = estimateCpuSvm("half", 5906, 784);
    EXPECT_NEAR(half.latency, est.latency / 2.0, est.latency * 0.01);
}

TEST(CrossSystem, MouseBeatsSonicOnEnergyAndLatency)
{
    // The paper's headline: orders-of-magnitude energy advantage and
    // lower latency even under much weaker power sources.
    const GateLibrary lib(makeDeviceConfig(TechConfig::ModernStt));
    const EnergyModel energy(lib);
    SvmWorkload work;
    work.name = "mnist";
    work.numSupportVectors = 11813;
    work.dim = 784;
    work.inputBits = 8;
    work.numClasses = 10;
    MouseShape shape;
    shape.numDataTiles = 448;
    const Trace trace = buildSvmTrace(lib, work, shape);
    const RunStats mouse_run = runContinuousTrace(trace, energy);

    const RunStats sonic_run = sonicRunContinuous(sonicMnist());

    EXPECT_LT(mouse_run.totalTime(), sonic_run.totalTime() / 10);
    EXPECT_LT(mouse_run.totalEnergy(), sonic_run.totalEnergy() / 5);

    // Under harvesting at 60 uW, MOUSE still finishes faster than
    // SONIC does at the same source (Figure 9).
    HarvestConfig harvest;
    harvest.source = SourceSpec::constant(60e-6);
    const RunStats mouse_h = runHarvestedTrace(trace, energy, harvest);
    const RunStats sonic_h = sonicRunHarvested(sonicMnist(), 60e-6);
    EXPECT_LT(mouse_h.totalTime(), sonic_h.totalTime());
}

TEST(CrossSystem, MouseBeatsCpuOnEnergy)
{
    const GateLibrary lib(makeDeviceConfig(TechConfig::ModernStt));
    const EnergyModel energy(lib);
    SvmWorkload work;
    work.name = "adult";
    work.numSupportVectors = 1909;
    work.dim = 15;
    work.inputBits = 8;
    work.numClasses = 2;
    MouseShape shape;
    shape.numDataTiles = 7;
    const Trace trace = buildSvmTrace(lib, work, shape);
    const RunStats mouse_run = runContinuousTrace(trace, energy);
    // Table IV ADULT: CPU burns 131 mJ; MOUSE about 7 uJ.
    EXPECT_LT(mouse_run.totalEnergy(), 131052e-6 / 100);
}

} // namespace
} // namespace mouse
