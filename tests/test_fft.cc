/**
 * @file
 * Tests for the FFT extension: the software fixed-point reference,
 * bit-exact array execution of the compiled butterfly, and the
 * FFT trace mapping.
 */

#include <cmath>
#include <numbers>

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "compile/fft.hh"
#include "controller/controller.hh"

namespace mouse
{
namespace
{

TEST(FixedFft, ImpulseGivesFlatSpectrum)
{
    constexpr unsigned bits = 16;
    std::vector<FixedComplex> x(8);
    x[0] = {1000, 0};
    const auto spectrum = fixedFft(x, bits);
    // Per-stage 1/2 scaling divides by N=8; twiddle quantization
    // costs a couple of LSBs.
    for (const FixedComplex &v : spectrum) {
        EXPECT_NEAR(static_cast<double>(v.re), 125.0, 3.0);
        EXPECT_NEAR(static_cast<double>(v.im), 0.0, 3.0);
    }
}

TEST(FixedFft, SingleToneLandsInOneBin)
{
    constexpr unsigned bits = 16;
    constexpr unsigned n = 64;
    std::vector<FixedComplex> x(n);
    const double amp = 4000.0;
    for (unsigned i = 0; i < n; ++i) {
        x[i].re = static_cast<std::int64_t>(std::lround(
            amp * std::cos(2.0 * std::numbers::pi * 5.0 * i / n)));
        x[i].im = 0;
    }
    const auto spectrum = fixedFft(x, bits);
    // Energy concentrates in bins 5 and n-5.
    double peak = 0.0;
    double rest = 0.0;
    for (unsigned k = 0; k < n; ++k) {
        const double mag =
            std::hypot(static_cast<double>(spectrum[k].re),
                       static_cast<double>(spectrum[k].im));
        if (k == 5 || k == n - 5) {
            peak += mag;
        } else {
            rest += mag;
        }
    }
    EXPECT_GT(peak, 10.0 * rest);
}

TEST(FixedButterfly, MatchesComplexArithmetic)
{
    constexpr unsigned bits = 16;
    // w = 1.0 (Q15: 32767) -> top = a + b, bottom = a - b (up to the
    // renormalization rounding of +-1 LSB per product).
    FixedComplex a{1000, -2000};
    FixedComplex b{300, 450};
    FixedComplex w{32767, 0};
    FixedComplex top;
    FixedComplex bottom;
    fixedButterfly(a, b, w, bits, top, bottom);
    // Halved by the per-stage scaling.
    EXPECT_NEAR(static_cast<double>(top.re), 650.0, 2.0);
    EXPECT_NEAR(static_cast<double>(top.im), -775.0, 2.0);
    EXPECT_NEAR(static_cast<double>(bottom.re), 350.0, 2.0);
    EXPECT_NEAR(static_cast<double>(bottom.im), -1225.0, 2.0);
}

TEST(ButterflyOnArray, BitExactAgainstSoftware)
{
    constexpr unsigned bits = 8;  // keep the functional run fast
    const GateLibrary lib(makeDeviceConfig(TechConfig::ProjectedStt));
    ArrayConfig cfg;
    cfg.tileRows = 512;
    cfg.tileCols = 4;
    cfg.numDataTiles = 1;
    cfg.numInstructionTiles = 8192;

    ButterflyLayout layout;
    layout.aRe = 0;
    layout.aIm = 2 * bits;
    layout.bRe = 4 * bits;
    layout.bIm = 6 * bits;
    layout.wRe = 8 * bits;
    layout.wIm = 10 * bits;

    KernelBuilder kb(lib, cfg, 0, 12 * 2 * bits);
    kb.activate(0, 3);
    const ButterflyResult out =
        buildButterflyKernel(kb, layout, bits);
    const Program prog = kb.finish();

    // Four random butterflies, one per column.
    Rng rng(606);
    struct Case
    {
        FixedComplex a, b, w;
    };
    std::vector<Case> cases(4);
    TileGrid grid(cfg, lib);
    auto seed_word = [&](RowAddr base, std::int64_t value,
                         ColAddr col) {
        for (unsigned i = 0; i < bits; ++i) {
            grid.tile(0).setBit(
                static_cast<RowAddr>(base + 2 * i), col,
                static_cast<Bit>((static_cast<std::uint64_t>(value) >>
                                  i) &
                                 1));
        }
    };
    for (ColAddr c = 0; c < 4; ++c) {
        auto val = [&] {
            return rng.between(-(1 << (bits - 1)),
                               (1 << (bits - 1)) - 1);
        };
        cases[c] = {{val(), val()}, {val(), val()}, {val(), val()}};
        seed_word(layout.aRe, cases[c].a.re, c);
        seed_word(layout.aIm, cases[c].a.im, c);
        seed_word(layout.bRe, cases[c].b.re, c);
        seed_word(layout.bIm, cases[c].b.im, c);
        seed_word(layout.wRe, cases[c].w.re, c);
        seed_word(layout.wIm, cases[c].w.im, c);
    }

    InstructionMemory imem(cfg);
    imem.load(prog.encode());
    EnergyModel energy(lib);
    Controller ctrl(grid, imem, energy);
    while (!ctrl.halted()) {
        ctrl.step();
    }

    auto read_word = [&](const Word &w, ColAddr col) {
        std::int64_t v = 0;
        for (std::size_t i = 0; i < w.size(); ++i) {
            v |= static_cast<std::int64_t>(
                     grid.tile(0).bit(w[i].row, col))
                 << i;
        }
        if ((v >> (w.size() - 1)) & 1) {
            v -= 1ll << w.size();
        }
        return v;
    };
    for (ColAddr c = 0; c < 4; ++c) {
        FixedComplex top;
        FixedComplex bottom;
        fixedButterfly(cases[c].a, cases[c].b, cases[c].w, bits, top,
                       bottom);
        EXPECT_EQ(read_word(out.topRe, c), top.re) << "col " << c;
        EXPECT_EQ(read_word(out.topIm, c), top.im) << "col " << c;
        EXPECT_EQ(read_word(out.botRe, c), bottom.re) << "col " << c;
        EXPECT_EQ(read_word(out.botIm, c), bottom.im) << "col " << c;
    }
}

TEST(FftTrace, ScalesWithPointsAndColumns)
{
    const GateLibrary lib(makeDeviceConfig(TechConfig::ModernStt));
    FftWorkload small{256, 16};
    FftWorkload big{1024, 16};
    FftMappingInfo info_small;
    FftMappingInfo info_big;
    const Trace t_small =
        buildFftTrace(lib, small, 1 << 16, 1024, &info_small);
    const Trace t_big =
        buildFftTrace(lib, big, 1 << 16, 1024, &info_big);
    EXPECT_EQ(info_small.stages, 8u);
    EXPECT_EQ(info_big.stages, 10u);
    EXPECT_EQ(info_big.butterfliesPerStage, 512u);
    EXPECT_GT(t_big.totalInstructions(),
              t_small.totalInstructions());

    // Column starvation forces sequential chunks.
    FftMappingInfo starved;
    const Trace t_starved =
        buildFftTrace(lib, big, 64, 64, &starved);
    EXPECT_EQ(starved.peakActiveColumns, 64u);
    EXPECT_GT(t_starved.totalInstructions(),
              t_big.totalInstructions());
}

} // namespace
} // namespace mouse
