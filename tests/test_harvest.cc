/**
 * @file
 * Tests for the energy-harvesting environment: capacitor physics,
 * power sources, and the switched-capacitor converter's rail
 * selection (paper Sections IV-C and VIII).
 */

#include <gtest/gtest.h>

#include "harvest/capacitor.hh"
#include "harvest/converter.hh"
#include "harvest/power_source.hh"
#include "logic/gate_library.hh"

namespace mouse
{
namespace
{

TEST(Capacitor, EnergyFollowsHalfCVSquared)
{
    Capacitor cap(100e-6, 0.34);
    EXPECT_NEAR(cap.energy(), 0.5 * 100e-6 * 0.34 * 0.34, 1e-12);
}

TEST(Capacitor, EnergyAboveFloor)
{
    Capacitor cap(100e-6, 0.34);
    const Joules usable = cap.energyAbove(0.32);
    EXPECT_NEAR(usable, 0.5 * 100e-6 * (0.34 * 0.34 - 0.32 * 0.32),
                1e-12);
    EXPECT_EQ(Capacitor(100e-6, 0.30).energyAbove(0.32), 0.0);
}

TEST(Capacitor, PaperBurstEnergies)
{
    // Modern window: 100 uF, 320..340 mV -> 0.66 uJ per burst.
    Capacitor modern(100e-6, 0.340);
    EXPECT_NEAR(modern.energyAbove(0.320), 0.66e-6, 0.01e-6);
    // Projected window: 10 uF, 100..120 mV -> 22 nJ per burst.
    Capacitor projected(10e-6, 0.120);
    EXPECT_NEAR(projected.energyAbove(0.100), 22e-9, 0.5e-9);
}

TEST(Capacitor, ChargeAndTimeToChargeAgree)
{
    Capacitor cap(10e-6, 0.0);
    const Seconds t = cap.timeToCharge(0.12, 60e-6);
    cap.charge(60e-6, t);
    EXPECT_NEAR(cap.voltage(), 0.12, 1e-9);
    EXPECT_EQ(cap.timeToCharge(0.10, 60e-6), 0.0);
}

TEST(Capacitor, DrawReducesVoltageAndClampsAtZero)
{
    Capacitor cap(10e-6, 0.12);
    cap.draw(cap.energy() / 2);
    EXPECT_NEAR(cap.voltage(), 0.12 / std::sqrt(2.0), 1e-9);
    cap.draw(1.0);  // far more than stored
    EXPECT_EQ(cap.voltage(), 0.0);
}

TEST(PowerSource, ConstantIsConstant)
{
    ConstantPowerSource src(5e-3);
    EXPECT_EQ(src.power(0.0), 5e-3);
    EXPECT_EQ(src.power(1e6), 5e-3);
}

TEST(PowerSource, TraceCyclesThroughSegments)
{
    TracePowerSource src({{1.0, 100e-6}, {2.0, 10e-6}});
    EXPECT_EQ(src.period(), 3.0);
    EXPECT_EQ(src.power(0.5), 100e-6);
    EXPECT_EQ(src.power(1.5), 10e-6);
    EXPECT_EQ(src.power(2.9), 10e-6);
    EXPECT_EQ(src.power(3.5), 100e-6);  // wraps around
}

TEST(Converter, PicksLowestSufficientRail)
{
    SwitchedCapConverter conv;
    // Buffer at 0.32 V: rails are 0.24, 0.32, 0.48, 0.56.
    auto rail = conv.railFor(0.30, 0.32);
    ASSERT_TRUE(rail.has_value());
    EXPECT_NEAR(*rail, 0.32, 1e-12);
    rail = conv.railFor(0.50, 0.32);
    ASSERT_TRUE(rail.has_value());
    EXPECT_NEAR(*rail, 0.56, 1e-12);
    EXPECT_FALSE(conv.railFor(0.60, 0.32).has_value());
}

TEST(Converter, CanSupplyChecksWindowBottom)
{
    SwitchedCapConverter conv;
    EXPECT_TRUE(conv.canSupply(0.5, 0.32));   // 1.75 * 0.32 = 0.56
    EXPECT_FALSE(conv.canSupply(0.57, 0.32));
}

TEST(Converter, EfficiencyScalesBufferDraw)
{
    SwitchedCapConverter lossy(0.5);
    EXPECT_DOUBLE_EQ(lossy.bufferEnergyFor(1e-6), 2e-6);
    SwitchedCapConverter ideal;
    EXPECT_DOUBLE_EQ(ideal.bufferEnergyFor(1e-6), 1e-6);
}

TEST(Converter, ExtendedRatiosReachHigherRails)
{
    const SwitchedCapConverter paper(1.0, paperConverterRatios());
    const SwitchedCapConverter ext(1.0, extendedConverterRatios());
    // 0.28 V from a 0.10 V buffer needs a 2.8x ratio.
    EXPECT_FALSE(paper.canSupply(0.28, 0.10));
    EXPECT_TRUE(ext.canSupply(0.28, 0.10));
    EXPECT_EQ(paper.ratios().size(), 4u);
    EXPECT_EQ(ext.ratios().size(), 6u);
}

TEST(Converter, RailCoverageOfSolvedOperatingPoints)
{
    // Section VIII claims the four ratios supply every required
    // voltage.  With our independently solved operating points this
    // holds for Modern STT and SHE; the projected-STT write (through
    // the 76 kOhm AP path) needs the extended ratio set — the
    // documented divergence of EXPERIMENTS.md.
    const SwitchedCapConverter paper(1.0, paperConverterRatios());
    const SwitchedCapConverter ext(1.0, extendedConverterRatios());

    auto all_covered = [](const GateLibrary &lib,
                          const SwitchedCapConverter &conv) {
        const Volts v_low = lib.config().capVoltageLow;
        for (GateType g : lib.feasibleGates()) {
            if (!conv.canSupply(lib.gate(g).voltage, v_low)) {
                return false;
            }
        }
        return conv.canSupply(lib.writeOp().voltage, v_low) &&
               conv.canSupply(lib.readOp().voltage, v_low);
    };

    const GateLibrary modern(makeDeviceConfig(TechConfig::ModernStt));
    const GateLibrary proj(makeDeviceConfig(TechConfig::ProjectedStt));
    const GateLibrary she(makeDeviceConfig(TechConfig::ProjectedShe));

    EXPECT_TRUE(all_covered(modern, paper));
    EXPECT_TRUE(all_covered(she, paper));
    EXPECT_FALSE(all_covered(proj, paper));  // the finding
    EXPECT_TRUE(all_covered(proj, ext));
    EXPECT_TRUE(all_covered(modern, ext));
}

} // namespace
} // namespace mouse
