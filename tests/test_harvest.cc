/**
 * @file
 * Tests for the energy-harvesting environment: capacitor physics,
 * power sources, the switched-capacitor converter's rail selection
 * (paper Sections IV-C and VIII), and the scenario library — trace
 * JSON round-trips, the embedded corpus, platform presets, and
 * SourceSpec validation (docs/HARVESTING.md).
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "harvest/capacitor.hh"
#include "harvest/converter.hh"
#include "harvest/platform.hh"
#include "harvest/power_source.hh"
#include "harvest/power_trace.hh"
#include "harvest/source_spec.hh"
#include "harvest/trace_corpus.hh"
#include "logic/gate_library.hh"

namespace mouse
{
namespace
{

TEST(Capacitor, EnergyFollowsHalfCVSquared)
{
    Capacitor cap(100e-6, 0.34);
    EXPECT_NEAR(cap.energy(), 0.5 * 100e-6 * 0.34 * 0.34, 1e-12);
}

TEST(Capacitor, EnergyAboveFloor)
{
    Capacitor cap(100e-6, 0.34);
    const Joules usable = cap.energyAbove(0.32);
    EXPECT_NEAR(usable, 0.5 * 100e-6 * (0.34 * 0.34 - 0.32 * 0.32),
                1e-12);
    EXPECT_EQ(Capacitor(100e-6, 0.30).energyAbove(0.32), 0.0);
}

TEST(Capacitor, PaperBurstEnergies)
{
    // Modern window: 100 uF, 320..340 mV -> 0.66 uJ per burst.
    Capacitor modern(100e-6, 0.340);
    EXPECT_NEAR(modern.energyAbove(0.320), 0.66e-6, 0.01e-6);
    // Projected window: 10 uF, 100..120 mV -> 22 nJ per burst.
    Capacitor projected(10e-6, 0.120);
    EXPECT_NEAR(projected.energyAbove(0.100), 22e-9, 0.5e-9);
}

TEST(Capacitor, ChargeAndTimeToChargeAgree)
{
    Capacitor cap(10e-6, 0.0);
    const Seconds t = cap.timeToCharge(0.12, 60e-6);
    cap.charge(60e-6, t);
    EXPECT_NEAR(cap.voltage(), 0.12, 1e-9);
    EXPECT_EQ(cap.timeToCharge(0.10, 60e-6), 0.0);
}

TEST(Capacitor, DrawReducesVoltageAndClampsAtZero)
{
    Capacitor cap(10e-6, 0.12);
    cap.draw(cap.energy() / 2);
    EXPECT_NEAR(cap.voltage(), 0.12 / std::sqrt(2.0), 1e-9);
    cap.draw(1.0);  // far more than stored
    EXPECT_EQ(cap.voltage(), 0.0);
}

TEST(PowerSource, ConstantIsConstant)
{
    ConstantPowerSource src(5e-3);
    EXPECT_EQ(src.power(0.0), 5e-3);
    EXPECT_EQ(src.power(1e6), 5e-3);
}

TEST(PowerSource, TraceCyclesThroughSegments)
{
    TracePowerSource src({{1.0, 100e-6}, {2.0, 10e-6}});
    EXPECT_EQ(src.period(), 3.0);
    EXPECT_EQ(src.power(0.5), 100e-6);
    EXPECT_EQ(src.power(1.5), 10e-6);
    EXPECT_EQ(src.power(2.9), 10e-6);
    EXPECT_EQ(src.power(3.5), 100e-6);  // wraps around
}

TEST(PowerSource, BinarySearchMatchesReferenceScanBitForBit)
{
    // The O(log n) threshold lookup must agree with the historical
    // subtract-and-compare scan for EVERY phase, including ones where
    // accumulated subtraction error makes the scan disagree with
    // exact cumulative sums.  Re-run the scan here as the oracle.
    Rng rng(12345);
    for (int round = 0; round < 20; ++round) {
        std::vector<TracePowerSource::Segment> segs;
        const std::size_t n = 1 + rng.below(7);
        for (std::size_t i = 0; i < n; ++i) {
            segs.push_back({1e-4 + rng.uniform() * 2.0,
                            rng.uniform() * 1e-3});
        }
        const TracePowerSource src(segs);

        auto scanPower = [&](Seconds t) {
            Seconds phase = std::fmod(t, src.period());
            for (const auto &s : segs) {
                if (phase < s.duration) {
                    return s.power;
                }
                phase -= s.duration;
            }
            return segs.back().power;
        };

        // Dense sweep plus adversarial phases hugging each boundary.
        std::vector<Seconds> probes;
        for (int i = 0; i < 400; ++i) {
            probes.push_back(rng.uniform() * 3.0 * src.period());
        }
        Seconds edge = 0.0;
        for (const auto &s : segs) {
            edge += s.duration;
            probes.push_back(std::nextafter(edge, 0.0));
            probes.push_back(edge);
            probes.push_back(std::nextafter(edge, 1e30));
        }
        for (Seconds t : probes) {
            ASSERT_EQ(src.power(t), scanPower(t)) << "t=" << t;
        }
    }
}

TEST(PowerTrace, JsonRoundTripPreservesEverySegmentBit)
{
    PowerTrace trace;
    trace.name = "unit \"probe\"";
    trace.segments = {{0.125, 3.0000000000000004e-05},
                      {2.5, 1e-12},
                      {0.7071067811865476, 5e-3}};
    PowerTraceError err;
    const auto back = parsePowerTrace(trace.toJson(), &err);
    ASSERT_TRUE(back.has_value()) << err.message;
    EXPECT_EQ(back->name, trace.name);
    ASSERT_EQ(back->segments.size(), trace.segments.size());
    for (std::size_t i = 0; i < trace.segments.size(); ++i) {
        EXPECT_EQ(back->segments[i], trace.segments[i]);
    }
    EXPECT_EQ(back->period(), trace.period());
    EXPECT_EQ(back->meanPower(), trace.meanPower());
}

TEST(PowerTrace, ParserRejectsWithLineNumbers)
{
    PowerTraceError err;
    EXPECT_FALSE(parsePowerTrace("{\"segments\":[]}", &err));
    EXPECT_EQ(err.line, 1u);

    // Wrong version, on line 2 of a pretty-printed document.
    EXPECT_FALSE(parsePowerTrace(
        // mouse-lint: allow(schema-constants) -- malformed-input
        // fixture: a wrong inline version is the point.
        "{\n\"trace_schema\": 99,\n\"segments\":[]}", &err));
    EXPECT_EQ(err.line, 2u);
    EXPECT_NE(err.message.find("99"), std::string::npos);

    // A segment missing its power, on its own line.
    const auto bad = parsePowerTrace(
        // mouse-lint: allow(schema-constants) -- malformed-input
        // fixture with a valid header and a broken segment.
        "{\"trace_schema\":1,\"segments\":[\n{\"duration_s\":1}\n]}",
        &err);
    EXPECT_FALSE(bad);
    EXPECT_EQ(err.line, 2u);

    EXPECT_FALSE(parsePowerTrace("not json at all", &err));
    EXPECT_FALSE(parsePowerTrace(
        // mouse-lint: allow(schema-constants) -- malformed-input
        // fixture: negative duration behind a valid header.
        "{\"trace_schema\":1,\"segments\":[{\"duration_s\":-1,"
        "\"power_w\":1e-6}]}",
        &err));
}

TEST(TraceCorpus, ShipsNamedValidatedTraces)
{
    const auto names = corpusTraceNames();
    ASSERT_EQ(names.size(), 3u);
    EXPECT_EQ(names[0], "solar-day-night");
    EXPECT_EQ(names[1], "rf-bursty");
    EXPECT_EQ(names[2], "piezo-impulse");
    for (const std::string &name : names) {
        const PowerTrace *t = corpusTrace(name);
        ASSERT_NE(t, nullptr);
        EXPECT_EQ(t->name, name);
        EXPECT_GT(t->period(), 0.0);
        EXPECT_GT(t->meanPower(), 0.0);
        // Round-trip: the shipped JSON parses back to itself.
        const auto back = parsePowerTrace(t->toJson());
        ASSERT_TRUE(back.has_value());
        EXPECT_EQ(back->segments, t->segments);
    }
    EXPECT_EQ(corpusTrace("fusion-reactor"), nullptr);
}

TEST(Platform, CatalogNamesDatasheetPresets)
{
    ASSERT_EQ(platformNames().size(), 3u);
    const Platform *mementos = platformByName("mementos");
    ASSERT_NE(mementos, nullptr);
    EXPECT_EQ(mementos->capacitance, 10e-6);
    const Platform *nvp = platformByName("nvp");
    ASSERT_NE(nvp, nullptr);
    EXPECT_GT(nvp->converterEfficiency,
              platformByName("batteryless")->converterEfficiency);
    EXPECT_EQ(platformByName("unknown-board"), nullptr);
}

TEST(SourceSpec, DefaultIsThePaperConstantModel)
{
    const SourceSpec def;
    EXPECT_TRUE(def.isConstant());
    EXPECT_TRUE(def.valid());
    EXPECT_EQ(def.constantPower, 60e-6);
    EXPECT_EQ(def.name(), "constant");
    EXPECT_EQ(def.meanPower(), 60e-6);
}

TEST(SourceSpec, ValidationNamesTheProblem)
{
    std::string why;
    EXPECT_FALSE(SourceSpec::constant(0.0).valid(&why));
    EXPECT_FALSE(why.empty());

    EXPECT_FALSE(
        SourceSpec::trace(std::vector<TracePowerSource::Segment>{})
            .valid(&why));

    // A trace that never delivers power can never charge.
    EXPECT_FALSE(SourceSpec::trace({{1.0, 0.0}, {2.0, 0.0}})
                     .valid(&why));
    EXPECT_NE(why.find("never delivers power"), std::string::npos);

    EXPECT_FALSE(SourceSpec::corpusTrace("marsdust").valid(&why));
    EXPECT_NE(why.find("solar-day-night"), std::string::npos);

    EXPECT_FALSE(SourceSpec::square(1.0, 1.5, 1e-3).valid(&why));
    EXPECT_FALSE(SourceSpec::square(0.0, 0.5, 1e-3).valid(&why));

    EXPECT_TRUE(SourceSpec::corpusTrace("rf-bursty").valid());
    EXPECT_TRUE(SourceSpec::square(0.01, 0.3, 200e-6).valid());
}

TEST(SourceSpec, MakeMaterializesTheDescribedSource)
{
    const auto constant = SourceSpec::constant(5e-3).make();
    EXPECT_EQ(constant->power(123.0), 5e-3);
    EXPECT_EQ(constant->period(), 0.0);

    const auto square = SourceSpec::square(0.01, 0.3, 200e-6).make();
    EXPECT_EQ(square->power(0.001), 200e-6);
    EXPECT_EQ(square->power(0.005), 0.0);
    // The period is the sum of the on and off segments, not the
    // requested value bit-for-bit.
    EXPECT_DOUBLE_EQ(square->period(), 0.01);

    const auto corpus = SourceSpec::corpusTrace("rf-bursty").make();
    EXPECT_EQ(corpus->period(),
              corpusTrace("rf-bursty")->period());
}

TEST(Converter, PicksLowestSufficientRail)
{
    SwitchedCapConverter conv;
    // Buffer at 0.32 V: rails are 0.24, 0.32, 0.48, 0.56.
    auto rail = conv.railFor(0.30, 0.32);
    ASSERT_TRUE(rail.has_value());
    EXPECT_NEAR(*rail, 0.32, 1e-12);
    rail = conv.railFor(0.50, 0.32);
    ASSERT_TRUE(rail.has_value());
    EXPECT_NEAR(*rail, 0.56, 1e-12);
    EXPECT_FALSE(conv.railFor(0.60, 0.32).has_value());
}

TEST(Converter, CanSupplyChecksWindowBottom)
{
    SwitchedCapConverter conv;
    EXPECT_TRUE(conv.canSupply(0.5, 0.32));   // 1.75 * 0.32 = 0.56
    EXPECT_FALSE(conv.canSupply(0.57, 0.32));
}

TEST(Converter, EfficiencyScalesBufferDraw)
{
    SwitchedCapConverter lossy(0.5);
    EXPECT_DOUBLE_EQ(lossy.bufferEnergyFor(1e-6), 2e-6);
    SwitchedCapConverter ideal;
    EXPECT_DOUBLE_EQ(ideal.bufferEnergyFor(1e-6), 1e-6);
}

TEST(Converter, ExtendedRatiosReachHigherRails)
{
    const SwitchedCapConverter paper(1.0, paperConverterRatios());
    const SwitchedCapConverter ext(1.0, extendedConverterRatios());
    // 0.28 V from a 0.10 V buffer needs a 2.8x ratio.
    EXPECT_FALSE(paper.canSupply(0.28, 0.10));
    EXPECT_TRUE(ext.canSupply(0.28, 0.10));
    EXPECT_EQ(paper.ratios().size(), 4u);
    EXPECT_EQ(ext.ratios().size(), 6u);
}

TEST(Converter, RailCoverageOfSolvedOperatingPoints)
{
    // Section VIII claims the four ratios supply every required
    // voltage.  With our independently solved operating points this
    // holds for Modern STT and SHE; the projected-STT write (through
    // the 76 kOhm AP path) needs the extended ratio set — the
    // documented divergence of EXPERIMENTS.md.
    const SwitchedCapConverter paper(1.0, paperConverterRatios());
    const SwitchedCapConverter ext(1.0, extendedConverterRatios());

    auto all_covered = [](const GateLibrary &lib,
                          const SwitchedCapConverter &conv) {
        const Volts v_low = lib.config().capVoltageLow;
        for (GateType g : lib.feasibleGates()) {
            if (!conv.canSupply(lib.gate(g).voltage, v_low)) {
                return false;
            }
        }
        return conv.canSupply(lib.writeOp().voltage, v_low) &&
               conv.canSupply(lib.readOp().voltage, v_low);
    };

    const GateLibrary modern(makeDeviceConfig(TechConfig::ModernStt));
    const GateLibrary proj(makeDeviceConfig(TechConfig::ProjectedStt));
    const GateLibrary she(makeDeviceConfig(TechConfig::ProjectedShe));

    EXPECT_TRUE(all_covered(modern, paper));
    EXPECT_TRUE(all_covered(she, paper));
    EXPECT_FALSE(all_covered(proj, paper));  // the finding
    EXPECT_TRUE(all_covered(proj, ext));
    EXPECT_TRUE(all_covered(modern, ext));
}

} // namespace
} // namespace mouse
