/**
 * @file
 * Tests for the Section IV-E system integration: the sensor ->
 * compute -> transmit pipeline, including sensor corruption on
 * outage and interrupt-anywhere correctness of the whole pipeline.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "core/pipeline.hh"

namespace mouse
{
namespace
{

class PipelineTest : public ::testing::Test
{
  protected:
    static constexpr unsigned kCols = 8;

    PipelineTest() : sensor_(kCols)
    {
        cfg_.tech = TechConfig::ProjectedStt;
        cfg_.array.tileRows = 64;
        cfg_.array.tileCols = kCols;
        cfg_.array.numDataTiles = 1;
        cfg_.array.numInstructionTiles = 256;
    }

    /** Program: out-row = NAND(in-row0, in-row2) over 8 columns. */
    Program
    nandProgram(const Accelerator &acc)
    {
        KernelBuilder kb(acc.gateLibrary(), cfg_.array, 0, 16);
        kb.activate(0, kCols - 1);
        const Val a = kb.pinned(0);
        const Val b = kb.pinned(2);
        const Val out = kb.nand(a, b);
        out_row_ = out.row;
        return kb.finish();
    }

    /** Stage a two-row sample (rows land at tile rows 0 and 2). */
    void
    stageSample(SensorBuffer &sensor, std::uint8_t a_bits,
                std::uint8_t b_bits)
    {
        sensor.beginStage();
        std::vector<Bit> row_a(kCols);
        std::vector<Bit> row_b(kCols);
        for (unsigned c = 0; c < kCols; ++c) {
            row_a[c] = (a_bits >> c) & 1;
            row_b[c] = (b_bits >> c) & 1;
        }
        sensor.stageRow(row_a);
        sensor.stageRow(row_b);
        sensor.commitStage();
    }

    PipelineLayout
    layout()
    {
        PipelineLayout l;
        l.dataTile = 0;
        l.inputBaseRow = 0;
        l.outputBaseRow = out_row_;
        l.outputRows = 1;
        return l;
    }

    MouseConfig cfg_;
    SensorBuffer sensor_;
    Transmitter tx_;
    RowAddr out_row_ = 0;
};

TEST_F(PipelineTest, SensorValidBitProtocol)
{
    SensorBuffer sensor(4);
    EXPECT_FALSE(sensor.valid());
    sensor.beginStage();
    sensor.stageRow({1, 0, 1, 0});
    EXPECT_FALSE(sensor.valid());  // not yet committed
    sensor.commitStage();
    EXPECT_TRUE(sensor.valid());
    sensor.consume();
    EXPECT_FALSE(sensor.valid());
}

TEST_F(PipelineTest, InterruptedStagingLeavesInvalid)
{
    SensorBuffer sensor(4);
    sensor.beginStage();
    sensor.stageRow({1, 1, 1, 1});
    sensor.powerLoss();  // cut before commitStage
    EXPECT_FALSE(sensor.valid());
    EXPECT_EQ(sensor.numRows(), 0u);
}

TEST_F(PipelineTest, EndToEndSingleSample)
{
    // NOTE: row0 bit c = a, row2 bit c = b; sensor rows 0,1 map to
    // tile rows inputBase+0, inputBase+1 — so stage a at row 0 and
    // b at row 1?  The kernel reads rows 0 and 2: lay input rows at
    // 0 and 2 by staging a dummy odd row between them.
    Accelerator acc(cfg_);
    const Program prog = nandProgram(acc);
    acc.loadProgram(prog);

    SensorBuffer sensor(kCols);
    sensor.beginStage();
    std::vector<Bit> row_a(kCols);
    std::vector<Bit> blank(kCols, 0);
    std::vector<Bit> row_b(kCols);
    for (unsigned c = 0; c < kCols; ++c) {
        row_a[c] = c & 1;
        row_b[c] = (c >> 1) & 1;
    }
    sensor.stageRow(row_a);
    sensor.stageRow(blank);
    sensor.stageRow(row_b);
    sensor.commitStage();

    Transmitter tx;
    InferencePipeline pipe(acc, sensor, tx, layout());
    int guard = 0;
    while (!pipe.done()) {
        const Joules e = pipe.tick();
        EXPECT_GE(e, 0.0);
        ASSERT_LT(++guard, 10000);
    }
    ASSERT_EQ(tx.rowsReceived(), 1u);
    for (unsigned c = 0; c < kCols; ++c) {
        const Bit a = c & 1;
        const Bit b = (c >> 1) & 1;
        EXPECT_EQ(tx.row(0)[c], static_cast<Bit>(!(a && b)))
            << "col " << c;
    }
    EXPECT_FALSE(sensor.valid());  // consumed
}

TEST_F(PipelineTest, WaitsForValidBit)
{
    Accelerator acc(cfg_);
    acc.loadProgram(nandProgram(acc));
    SensorBuffer sensor(kCols);
    Transmitter tx;
    InferencePipeline pipe(acc, sensor, tx, layout());
    for (int i = 0; i < 50; ++i) {
        pipe.tick();
        EXPECT_EQ(pipe.phase(), PipelinePhase::kWaitInput);
    }
    EXPECT_EQ(tx.rowsReceived(), 0u);
}

TEST_F(PipelineTest, InterruptAnywhereStillDeliversCorrectResult)
{
    // Random outages at arbitrary ticks, across all phases.
    Rng rng(31337);
    for (int trial = 0; trial < 30; ++trial) {
        Accelerator acc(cfg_);
        const Program prog = nandProgram(acc);
        acc.loadProgram(prog);

        SensorBuffer sensor(kCols);
        sensor.beginStage();
        std::vector<Bit> rows[3];
        for (auto &r : rows) {
            r.assign(kCols, 0);
        }
        std::uint8_t a_bits = static_cast<std::uint8_t>(rng.below(256));
        std::uint8_t b_bits = static_cast<std::uint8_t>(rng.below(256));
        for (unsigned c = 0; c < kCols; ++c) {
            rows[0][c] = (a_bits >> c) & 1;
            rows[2][c] = (b_bits >> c) & 1;
        }
        sensor.stageRow(rows[0]);
        sensor.stageRow(rows[1]);
        sensor.stageRow(rows[2]);
        sensor.commitStage();

        Transmitter tx;
        InferencePipeline pipe(acc, sensor, tx, layout());
        int guard = 0;
        while (!pipe.done()) {
            ASSERT_LT(++guard, 100000);
            if (rng.chance(0.15)) {
                pipe.powerLoss();
                pipe.restart();
                continue;
            }
            pipe.tick();
        }
        ASSERT_EQ(tx.rowsReceived(), 1u);
        for (unsigned c = 0; c < kCols; ++c) {
            const Bit a = (a_bits >> c) & 1;
            const Bit b = (b_bits >> c) & 1;
            ASSERT_EQ(tx.row(0)[c], static_cast<Bit>(!(a && b)))
                << "trial " << trial << " col " << c;
        }
    }
}

TEST_F(PipelineTest, RearmProcessesSecondSample)
{
    Accelerator acc(cfg_);
    const Program prog = nandProgram(acc);
    acc.loadProgram(prog);
    SensorBuffer sensor(kCols);
    Transmitter tx;
    InferencePipeline pipe(acc, sensor, tx, layout());

    auto run_sample = [&](std::uint8_t a_bits, std::uint8_t b_bits) {
        sensor.beginStage();
        std::vector<Bit> r0(kCols);
        std::vector<Bit> r1(kCols, 0);
        std::vector<Bit> r2(kCols);
        for (unsigned c = 0; c < kCols; ++c) {
            r0[c] = (a_bits >> c) & 1;
            r2[c] = (b_bits >> c) & 1;
        }
        sensor.stageRow(r0);
        sensor.stageRow(r1);
        sensor.stageRow(r2);
        sensor.commitStage();
        int guard = 0;
        while (!pipe.done()) {
            pipe.tick();
            ASSERT_LT(++guard, 10000);
        }
    };

    run_sample(0xFF, 0xFF);
    for (unsigned c = 0; c < kCols; ++c) {
        EXPECT_EQ(tx.row(0)[c], 0);  // NAND(1,1)
    }
    pipe.rearm();
    EXPECT_EQ(pipe.phase(), PipelinePhase::kWaitInput);
    run_sample(0x00, 0xFF);
    for (unsigned c = 0; c < kCols; ++c) {
        EXPECT_EQ(tx.row(0)[c], 1);  // NAND(0,1)
    }
}

} // namespace
} // namespace mouse
