/**
 * @file
 * End-to-end BNN-on-array tests: the compiled XNOR/popcount/threshold
 * neuron kernel is executed on the bit-exact functional simulator —
 * one neuron per column — and checked against the software BnnModel,
 * under continuous power and under harvesting with real outages.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "core/accelerator.hh"
#include "ml/mapping.hh"

namespace mouse
{
namespace
{

class BnnOnArray : public ::testing::Test
{
  protected:
    static constexpr unsigned kInputs = 12;
    static constexpr unsigned kNeurons = 8;
    static constexpr RowAddr kWBase = 0;
    static constexpr RowAddr kXBase = 2;   // interleaved even rows
    static constexpr RowAddr kThreshBase = 101;

    BnnOnArray()
    {
        cfg_.tech = TechConfig::ProjectedStt;
        cfg_.array.tileRows = 512;
        cfg_.array.tileCols = kNeurons;
        cfg_.array.numDataTiles = 1;
        cfg_.array.numInstructionTiles = 1024;
    }

    Program
    buildProgram(Accelerator &acc)
    {
        KernelBuilder kb(acc.gateLibrary(), cfg_.array, 0, 120);
        kb.activate(0, kNeurons - 1);
        buildSmallBnnNeuronKernel(kb, kWBase, kXBase, kThreshBase,
                                  kInputs, count_, fires_);
        return kb.finish();
    }

    /** Random layer + input; loads weights/thresholds into columns. */
    void
    seed(Accelerator &acc, Rng &rng)
    {
        layer_.inputs = kInputs;
        layer_.outputs = kNeurons;
        layer_.weights.assign(kNeurons, std::vector<Bit>(kInputs));
        layer_.thresholds.resize(kNeurons);
        input_.resize(kInputs);
        for (unsigned i = 0; i < kInputs; ++i) {
            input_[i] = static_cast<Bit>(rng.below(2));
        }
        for (unsigned n = 0; n < kNeurons; ++n) {
            for (unsigned i = 0; i < kInputs; ++i) {
                layer_.weights[n][i] = static_cast<Bit>(rng.below(2));
            }
            layer_.thresholds[n] =
                static_cast<std::int32_t>(rng.below(kInputs + 1));
            for (unsigned i = 0; i < kInputs; ++i) {
                acc.grid().tile(0).setBit(
                    static_cast<RowAddr>(kWBase + 4 * i),
                    static_cast<ColAddr>(n), layer_.weights[n][i]);
                acc.grid().tile(0).setBit(
                    static_cast<RowAddr>(kXBase + 4 * i),
                    static_cast<ColAddr>(n), input_[i]);
            }
            for (unsigned b = 0; b < 5; ++b) {
                acc.grid().tile(0).setBit(
                    static_cast<RowAddr>(kThreshBase + 2 * b),
                    static_cast<ColAddr>(n),
                    static_cast<Bit>(
                        (layer_.thresholds[n] >> b) & 1));
            }
        }
    }

    void
    check(Accelerator &acc)
    {
        for (unsigned n = 0; n < kNeurons; ++n) {
            // Software reference.
            std::int32_t pop = 0;
            for (unsigned i = 0; i < kInputs; ++i) {
                pop += layer_.weights[n][i] == input_[i];
            }
            // Array popcount word.
            std::int32_t hw_pop = 0;
            for (std::size_t b = 0; b < count_.size(); ++b) {
                hw_pop |= static_cast<std::int32_t>(acc.grid()
                                                        .tile(0)
                                                        .bit(count_[b].row,
                                                             static_cast<ColAddr>(n)))
                          << b;
            }
            EXPECT_EQ(hw_pop, pop) << "neuron " << n;
            const Bit fires =
                acc.grid().tile(0).bit(fires_.row,
                                       static_cast<ColAddr>(n));
            EXPECT_EQ(fires,
                      static_cast<Bit>(pop >= layer_.thresholds[n]))
                << "neuron " << n << " pop " << pop << " thresh "
                << layer_.thresholds[n];
        }
    }

    MouseConfig cfg_;
    Word count_;
    Val fires_{};
    BnnLayer layer_;
    std::vector<Bit> input_;
};

TEST_F(BnnOnArray, MatchesSoftwareContinuous)
{
    Rng rng(404);
    for (int trial = 0; trial < 5; ++trial) {
        Accelerator acc(cfg_);
        const Program prog = buildProgram(acc);
        acc.loadProgram(prog);
        seed(acc, rng);
        acc.execute(RunRequest{});
        check(acc);
    }
}

TEST_F(BnnOnArray, MatchesSoftwareUnderHarvesting)
{
    Rng rng(808);
    Accelerator acc(cfg_);
    const Program prog = buildProgram(acc);
    acc.loadProgram(prog);
    seed(acc, rng);
    RunRequest req;
    req.power = PowerMode::Harvested;
    req.harvest.source = SourceSpec::constant(1e-6);
    req.harvest.capacitanceOverride = 1e-9;  // force outages
    const RunStats stats = acc.execute(req).stats;
    EXPECT_GT(stats.outages, 0u);
    check(acc);
}

TEST_F(BnnOnArray, ThresholdEdgeCases)
{
    // threshold = 0 always fires; threshold = k+1 never does.
    Accelerator acc(cfg_);
    const Program prog = buildProgram(acc);
    acc.loadProgram(prog);
    Rng rng(9);
    seed(acc, rng);
    // Override thresholds: columns 0 -> 0, 1 -> kInputs + 1.
    for (unsigned b = 0; b < 5; ++b) {
        acc.grid().tile(0).setBit(
            static_cast<RowAddr>(kThreshBase + 2 * b), 0, 0);
        acc.grid().tile(0).setBit(
            static_cast<RowAddr>(kThreshBase + 2 * b), 1,
            static_cast<Bit>(((kInputs + 1) >> b) & 1));
    }
    acc.execute(RunRequest{});
    EXPECT_EQ(acc.grid().tile(0).bit(fires_.row, 0), 1);
    EXPECT_EQ(acc.grid().tile(0).bit(fires_.row, 1), 0);
}

} // namespace
} // namespace mouse
