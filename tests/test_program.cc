/**
 * @file
 * Tests for the program/trace containers: run-length merging,
 * opcode counting, trace concatenation, instruction-memory bounds,
 * and the RunStats arithmetic the breakdown figures depend on.
 */

#include <gtest/gtest.h>

#include "compile/program.hh"
#include "sim/stats.hh"

namespace mouse
{
namespace
{

TEST(TraceContainer, AppendMergesIdenticalBlocks)
{
    Trace trace;
    trace.append(Opcode::kGateNand2, 8, 8, 5);
    trace.append(Opcode::kGateNand2, 8, 8, 3);
    EXPECT_EQ(trace.blocks.size(), 1u);
    EXPECT_EQ(trace.blocks[0].count, 8u);

    // A different column count breaks the run.
    trace.append(Opcode::kGateNand2, 16, 16, 1);
    EXPECT_EQ(trace.blocks.size(), 2u);
    // So does a different opcode.
    trace.append(Opcode::kPreset0, 16, 16, 1);
    EXPECT_EQ(trace.blocks.size(), 3u);
    EXPECT_EQ(trace.totalInstructions(), 10u);
}

TEST(TraceContainer, AppendZeroCountIsNoop)
{
    Trace trace;
    trace.append(Opcode::kGateNot, 4, 4, 0);
    EXPECT_TRUE(trace.blocks.empty());
}

TEST(TraceContainer, AppendTraceRepeatsAndMergesAtSeams)
{
    Trace unit;
    unit.append(Opcode::kGateNand2, 8, 8, 2);

    Trace total;
    total.appendTrace(unit, 5);
    // Homogeneous repetition collapses into one block.
    EXPECT_EQ(total.blocks.size(), 1u);
    EXPECT_EQ(total.totalInstructions(), 10u);

    Trace mixed;
    mixed.append(Opcode::kPreset1, 8, 8, 1);
    mixed.append(Opcode::kGateNand2, 8, 8, 1);
    Trace seq;
    seq.appendTrace(mixed, 3);
    EXPECT_EQ(seq.totalInstructions(), 6u);
    // The seams cannot merge (preset follows nand).
    EXPECT_EQ(seq.blocks.size(), 6u);
}

TEST(ProgramContainer, CountOpcodeAndEncode)
{
    Program prog;
    prog.instructions.push_back(Instruction::activateRange(0, 3));
    prog.instructions.push_back(Instruction::preset(0, 0, 1));
    prog.instructions.push_back(
        Instruction::gate(GateType::kNand2, 0, 0, 2, 1));
    prog.instructions.push_back(Instruction::halt());
    EXPECT_EQ(prog.countOpcode(Opcode::kPreset0), 1u);
    EXPECT_EQ(prog.countOpcode(Opcode::kGateNand2), 1u);
    EXPECT_EQ(prog.countOpcode(Opcode::kHalt), 1u);
    EXPECT_EQ(prog.countOpcode(Opcode::kGateMaj3), 0u);

    const auto words = prog.encode();
    ASSERT_EQ(words.size(), 4u);
    EXPECT_EQ(Instruction::decode(words[2]).op, Opcode::kGateNand2);
}

TEST(TraceContainer, FromProgramTracksActivationState)
{
    ArrayConfig cfg;
    cfg.tileCols = 32;
    cfg.numDataTiles = 2;
    Program prog;
    prog.instructions.push_back(Instruction::activateRange(0, 7));
    prog.instructions.push_back(Instruction::preset(1, 0, 2));
    prog.instructions.push_back(
        Instruction::activateRange(0, 15, true));
    prog.instructions.push_back(Instruction::preset(1, 0, 4));
    // Broadcast gate across both data tiles.
    prog.instructions.push_back(Instruction::gate(
        GateType::kNand2, kBroadcastTile, 0, 2, 1));
    prog.instructions.push_back(Instruction::halt());

    const Trace trace = Trace::fromProgram(prog, cfg);
    EXPECT_EQ(trace.totalInstructions(), 5u);  // HALT excluded
    // First preset ran with 8 columns, second with 16.
    EXPECT_EQ(trace.blocks[1].touchedCols, 8u);
    EXPECT_EQ(trace.blocks[3].touchedCols, 16u);
    // The broadcast gate touches activeCols x numDataTiles.
    EXPECT_EQ(trace.blocks[4].touchedCols, 32u);
}

TEST(RunStatsMath, SharesAndTotals)
{
    RunStats s;
    s.computeEnergy = 80e-6;
    s.backupEnergy = 10e-6;
    s.deadEnergy = 6e-6;
    s.restoreEnergy = 4e-6;
    EXPECT_DOUBLE_EQ(s.totalEnergy(), 100e-6);
    EXPECT_DOUBLE_EQ(s.deadEnergyShare(), 0.06);
    EXPECT_DOUBLE_EQ(s.backupEnergyShare(), 0.10);
    EXPECT_DOUBLE_EQ(s.restoreEnergyShare(), 0.04);

    s.activeTime = 1.0;
    s.deadTime = 0.25;
    s.restoreTime = 0.25;
    s.chargingTime = 0.5;
    EXPECT_DOUBLE_EQ(s.totalTime(), 2.0);
    EXPECT_DOUBLE_EQ(s.deadTimeShare(), 0.125);
    EXPECT_DOUBLE_EQ(s.restoreTimeShare(), 0.125);

    const std::string text = s.summary();
    EXPECT_NE(text.find("energy"), std::string::npos);
    EXPECT_NE(text.find("latency"), std::string::npos);
}

TEST(RunStatsMath, EmptyRunHasZeroShares)
{
    const RunStats s;
    EXPECT_EQ(s.totalEnergy(), 0.0);
    EXPECT_EQ(s.deadEnergyShare(), 0.0);
    EXPECT_EQ(s.deadTimeShare(), 0.0);
}

} // namespace
} // namespace mouse
