/**
 * @file
 * Tests for the tile-level functional model: column-parallel gate
 * execution, presets, row transfers, the parity rule, and the
 * interrupted-execution semantics behind Table I of the paper.
 */

#include <gtest/gtest.h>

#include "arch/tile.hh"
#include "arch/tile_grid.hh"
#include "common/rng.hh"

namespace mouse
{
namespace
{

class TileTest : public ::testing::Test
{
  protected:
    TileTest()
        : lib_(makeDeviceConfig(TechConfig::ProjectedStt)),
          tile_(64, 32)
    {
        active_ = ColumnSet(32);
    }

    GateLibrary lib_;
    Tile tile_;
    ColumnSet active_;
};

TEST_F(TileTest, BitSetGet)
{
    EXPECT_EQ(tile_.bit(0, 0), 0);
    tile_.setBit(5, 7, 1);
    EXPECT_EQ(tile_.bit(5, 7), 1);
    tile_.setBit(5, 7, 0);
    EXPECT_EQ(tile_.bit(5, 7), 0);
}

TEST_F(TileTest, NandAcrossActiveColumnsOnly)
{
    // Inputs at even rows 0 and 2, output at odd row 1.
    active_.add(0);
    active_.add(3);
    // col0: inputs 1,1 -> NAND 0; col3: inputs 1,0 -> NAND 1.
    tile_.setBit(0, 0, 1);
    tile_.setBit(2, 0, 1);
    tile_.setBit(0, 3, 1);
    tile_.setBit(2, 3, 0);
    // Preset both outputs to 0 (NAND preset).
    tile_.presetRow(lib_, 1, 0, active_);
    // A non-active column with switch-worthy inputs must not change.
    tile_.setBit(0, 5, 0);
    tile_.setBit(2, 5, 0);
    tile_.setBit(1, 5, 0);

    const GateExecResult r = tile_.executeGate(
        lib_, GateType::kNand2, {0, 2, 0}, 1, active_);
    EXPECT_EQ(r.columns, 2u);
    EXPECT_EQ(tile_.bit(1, 0), 0);
    EXPECT_EQ(tile_.bit(1, 3), 1);
    EXPECT_EQ(tile_.bit(1, 5), 0);  // untouched
    EXPECT_EQ(r.switched, 1u);
    EXPECT_GT(r.deviceEnergy, 0.0);
}

TEST_F(TileTest, AllGateTruthTablesInArray)
{
    // For every feasible gate, run all input combinations, one per
    // column, and check the array computes the truth table.
    for (GateType g : lib_.feasibleGates()) {
        const int n = gateNumInputs(g);
        const unsigned combos = 1u << n;
        ColumnSet cols(32);
        for (unsigned c = 0; c < combos; ++c) {
            cols.add(static_cast<ColAddr>(c));
            for (int i = 0; i < n; ++i) {
                tile_.setBit(static_cast<RowAddr>(2 * i),
                             static_cast<ColAddr>(c),
                             static_cast<Bit>((c >> i) & 1));
            }
        }
        tile_.presetRow(lib_, 7, gatePreset(g), cols);
        tile_.executeGate(lib_, g, {0, 2, 4}, 7, cols);
        for (unsigned c = 0; c < combos; ++c) {
            EXPECT_EQ(tile_.bit(7, static_cast<ColAddr>(c)),
                      gateTruth(g, c))
                << gateName(g) << " combo " << c;
        }
    }
}

TEST_F(TileTest, ParityRuleEnforced)
{
    active_.add(0);
    // Inputs on rows 0 and 1 have mixed parity vs output row 3.
    EXPECT_DEATH(tile_.executeGate(lib_, GateType::kNand2, {0, 1, 0},
                                   3, active_),
                 "parity");
    // Input parity equal to output parity is also illegal.
    EXPECT_DEATH(tile_.executeGate(lib_, GateType::kNand2, {1, 3, 0},
                                   5, active_),
                 "parity");
}

TEST_F(TileTest, InterruptedGateLeavesOutputUnchanged)
{
    active_.add(0);
    tile_.setBit(0, 0, 0);
    tile_.setBit(2, 0, 0);
    tile_.presetRow(lib_, 1, 0, active_);
    // Pulse occupies the head of the cycle; cutting at a tiny
    // fraction interrupts the pulse itself.
    const GateExecResult r = tile_.executeGate(
        lib_, GateType::kNand2, {0, 2, 0}, 1, active_, 1e-3);
    EXPECT_FALSE(r.completed);
    EXPECT_EQ(r.switched, 0u);
    EXPECT_EQ(tile_.bit(1, 0), 0);
    // Re-performing the full operation completes the NAND.
    tile_.executeGate(lib_, GateType::kNand2, {0, 2, 0}, 1, active_);
    EXPECT_EQ(tile_.bit(1, 0), 1);
}

TEST_F(TileTest, TableOneAllCases)
{
    // Reproduce the paper's Table I for every feasible gate and every
    // input combination: interrupt the operation either before or
    // after the switching point, re-perform it, and require the final
    // output to match an uninterrupted run.
    for (GateType g : lib_.feasibleGates()) {
        const int n = gateNumInputs(g);
        for (unsigned combo = 0; combo < (1u << n); ++combo) {
            for (double cut : {1e-4, 0.02, 0.5, 0.99}) {
                Tile t(16, 4);
                ColumnSet cols(4);
                cols.add(0);
                for (int i = 0; i < n; ++i) {
                    t.setBit(static_cast<RowAddr>(2 * i), 0,
                             static_cast<Bit>((combo >> i) & 1));
                }
                t.presetRow(lib_, 7, gatePreset(g), cols);
                // Interrupted attempt...
                t.executeGate(lib_, g, {0, 2, 4}, 7, cols, cut);
                // ...then the re-performed full operation.
                t.executeGate(lib_, g, {0, 2, 4}, 7, cols);
                EXPECT_EQ(t.bit(7, 0), gateTruth(g, combo))
                    << gateName(g) << " combo " << combo << " cut "
                    << cut;
            }
        }
    }
}

TEST_F(TileTest, GateRepetitionIsIdempotent)
{
    // Repeating a completed gate any number of times never changes
    // the output (directionality of the current).
    Rng rng(99);
    for (GateType g : lib_.feasibleGates()) {
        const int n = gateNumInputs(g);
        const unsigned combo =
            static_cast<unsigned>(rng.below(1u << n));
        Tile t(16, 2);
        ColumnSet cols(2);
        cols.add(0);
        for (int i = 0; i < n; ++i) {
            t.setBit(static_cast<RowAddr>(2 * i), 0,
                     static_cast<Bit>((combo >> i) & 1));
        }
        t.presetRow(lib_, 7, gatePreset(g), cols);
        t.executeGate(lib_, g, {0, 2, 4}, 7, cols);
        const Bit first = t.bit(7, 0);
        for (int rep = 0; rep < 5; ++rep) {
            t.executeGate(lib_, g, {0, 2, 4}, 7, cols);
            EXPECT_EQ(t.bit(7, 0), first) << gateName(g);
        }
    }
}

TEST_F(TileTest, RowTransferRoundTrip)
{
    std::vector<Bit> pattern(32);
    for (unsigned i = 0; i < 32; ++i) {
        pattern[i] = static_cast<Bit>((i * 7 + 3) & 1);
    }
    tile_.writeRow(lib_, 9, pattern);
    std::vector<Bit> back;
    tile_.readRow(lib_, 9, back);
    EXPECT_EQ(back, pattern);
}

TEST_F(TileTest, InterruptedWriteLeavesOldContents)
{
    std::vector<Bit> ones(32, 1);
    tile_.writeRow(lib_, 4, ones);
    std::vector<Bit> zeros(32, 0);
    tile_.writeRow(lib_, 4, zeros, 1e-3);  // interrupted mid-pulse
    std::vector<Bit> back;
    tile_.readRow(lib_, 4, back);
    EXPECT_EQ(back, ones);
}

TEST_F(TileTest, SnapshotReflectsAllBits)
{
    tile_.setBit(0, 0, 1);
    tile_.setBit(63, 31, 1);
    const auto snap = tile_.snapshot();
    EXPECT_EQ(snap.size(), 64u * 32u);
    EXPECT_EQ(snap[0], 1);
    EXPECT_EQ(snap[63 * 32 + 31], 1);
    EXPECT_EQ(snap[1], 0);
}

TEST(ColumnSetTest, AddRangeCountAndEnumerate)
{
    ColumnSet cols(128);
    cols.addRange(10, 20);
    cols.add(100);
    cols.add(100);  // duplicate is a no-op
    EXPECT_EQ(cols.count(), 12u);
    const auto list = cols.columns();
    ASSERT_EQ(list.size(), 12u);
    EXPECT_EQ(list.front(), 10);
    EXPECT_EQ(list.back(), 100);
    cols.clear();
    EXPECT_EQ(cols.count(), 0u);
    EXPECT_FALSE(cols.test(15));
}

TEST(TileGridTest, ExecuteInstructionsEndToEnd)
{
    const GateLibrary lib(makeDeviceConfig(TechConfig::ProjectedStt));
    ArrayConfig cfg;
    cfg.tileRows = 32;
    cfg.tileCols = 16;
    cfg.numDataTiles = 2;
    TileGrid grid(cfg, lib);

    // Activate columns 0..3 and run a NAND in tile 1.
    grid.execute(Instruction::activateRange(0, 3));
    EXPECT_EQ(grid.activeColumns().count(), 4u);

    grid.tile(1).setBit(0, 2, 1);
    grid.tile(1).setBit(2, 2, 1);
    grid.execute(Instruction::preset(0, 1, 1));
    grid.execute(
        Instruction::gate(GateType::kNand2, 1, 0, 2, 1));
    EXPECT_EQ(grid.tile(1).bit(1, 2), 0);  // 1 NAND 1 = 0
    EXPECT_EQ(grid.tile(1).bit(1, 0), 1);  // 0 NAND 0 = 1

    // Row transfer between tiles through the buffer.
    grid.execute(Instruction::readRow(1, 1));
    grid.execute(Instruction::writeRow(0, 5));
    EXPECT_EQ(grid.tile(0).bit(5, 0), 1);
    EXPECT_EQ(grid.tile(0).bit(5, 2), 0);
}

TEST(TileGridTest, PowerLossClearsLatchOnly)
{
    const GateLibrary lib(makeDeviceConfig(TechConfig::ProjectedStt));
    ArrayConfig cfg;
    cfg.tileRows = 16;
    cfg.tileCols = 8;
    cfg.numDataTiles = 1;
    TileGrid grid(cfg, lib);
    grid.execute(Instruction::activateRange(0, 7));
    grid.tile(0).setBit(3, 3, 1);
    grid.powerLoss();
    EXPECT_EQ(grid.activeColumns().count(), 0u);
    EXPECT_EQ(grid.tile(0).bit(3, 3), 1);  // MTJs persist
}

TEST(InstructionMemoryTest, LoadFetchAndCapacity)
{
    ArrayConfig cfg;
    cfg.tileRows = 16;
    cfg.tileCols = 16;
    cfg.numInstructionTiles = 1;
    InstructionMemory imem(cfg);
    EXPECT_EQ(cfg.instructionCapacity(), 4u);  // 256 bits / 64

    imem.load({1, 2, 3});
    EXPECT_EQ(imem.size(), 3u);
    EXPECT_EQ(imem.fetch(2), 3u);
}

} // namespace
} // namespace mouse
