/**
 * @file
 * Tests for the public Accelerator facade: program loading, all four
 * execution modes, and cross-mode consistency.
 */

#include <gtest/gtest.h>

#include "core/accelerator.hh"
#include "ml/mapping.hh"

namespace mouse
{
namespace
{

MouseConfig
smallConfig(TechConfig tech = TechConfig::ProjectedStt)
{
    MouseConfig cfg;
    cfg.tech = tech;
    cfg.array.tileRows = 128;
    cfg.array.tileCols = 8;
    cfg.array.numDataTiles = 2;
    cfg.array.numInstructionTiles = 512;
    return cfg;
}

Program
adderProgram(const Accelerator &acc, Word &sum)
{
    KernelBuilder kb(acc.gateLibrary(), acc.config().array, 0, 16);
    kb.activate(0, 3);
    const Word a = kb.pinnedWord(0, 4);
    const Word b = kb.pinnedWord(8, 4);
    sum = kb.add(a, b);
    return kb.finish();
}

void
seedAdder(Accelerator &acc)
{
    for (ColAddr c = 0; c < 4; ++c) {
        // a = c + 3, b = 2c + 1
        for (unsigned i = 0; i < 4; ++i) {
            acc.grid().tile(0).setBit(
                static_cast<RowAddr>(2 * i), c,
                static_cast<Bit>(((c + 3u) >> i) & 1));
            acc.grid().tile(0).setBit(
                static_cast<RowAddr>(8 + 2 * i), c,
                static_cast<Bit>(((2u * c + 1u) >> i) & 1));
        }
    }
}

std::uint64_t
readSum(Accelerator &acc, const Word &sum, ColAddr c)
{
    std::uint64_t v = 0;
    for (std::size_t i = 0; i < sum.size(); ++i) {
        v |= static_cast<std::uint64_t>(
                 acc.grid().tile(0).bit(sum[i].row, c))
             << i;
    }
    return v;
}

TEST(Accelerator, RunContinuousEndToEnd)
{
    Accelerator acc(smallConfig());
    Word sum;
    const Program prog = adderProgram(acc, sum);
    acc.loadProgram(prog);
    seedAdder(acc);
    const RunStats stats = acc.execute(RunRequest{}).stats;
    for (ColAddr c = 0; c < 4; ++c) {
        EXPECT_EQ(readSum(acc, sum, c), (c + 3u) + (2u * c + 1u));
    }
    EXPECT_EQ(stats.instructionsCommitted, prog.size() - 1);
    EXPECT_GT(stats.totalEnergy(), 0.0);
}

TEST(Accelerator, RunHarvestedMatchesContinuous)
{
    Word sum;
    Accelerator cont(smallConfig());
    const Program prog = adderProgram(cont, sum);
    cont.loadProgram(prog);
    seedAdder(cont);
    cont.execute(RunRequest{});

    Accelerator harv(smallConfig());
    harv.loadProgram(prog);
    seedAdder(harv);
    RunRequest req;
    req.power = PowerMode::Harvested;
    req.harvest.source = SourceSpec::constant(2e-6);
    const RunStats stats = harv.execute(req).stats;

    for (ColAddr c = 0; c < 4; ++c) {
        EXPECT_EQ(readSum(harv, sum, c), readSum(cont, sum, c));
    }
    EXPECT_GT(stats.chargingTime, 0.0);
}

TEST(Accelerator, TraceModesAgreeOnCycles)
{
    Accelerator acc(smallConfig());
    Word sum;
    const Program prog = adderProgram(acc, sum);
    const Trace trace = Trace::fromProgram(prog, acc.config().array);

    RunRequest contReq;
    contReq.fidelity = Fidelity::Trace;
    contReq.trace = observe(trace);
    const RunStats cont = acc.execute(contReq).stats;
    RunRequest harvReq;
    harvReq.fidelity = Fidelity::Trace;
    harvReq.trace = observe(trace);
    harvReq.power = PowerMode::Harvested;
    harvReq.harvest.source = SourceSpec::constant(1e-3);
    const RunStats harv = acc.execute(harvReq).stats;
    EXPECT_EQ(cont.instructionsCommitted, harv.instructionsCommitted);
    // At 1 mW the whole program fits in one burst after the initial
    // charge, so active time matches continuous exactly.
    EXPECT_NEAR(harv.activeTime, cont.activeTime, 1e-12);
}

TEST(Accelerator, ReloadingProgramResetsController)
{
    Accelerator acc(smallConfig());
    Word sum;
    const Program prog = adderProgram(acc, sum);
    acc.loadProgram(prog);
    seedAdder(acc);
    acc.execute(RunRequest{});
    EXPECT_TRUE(acc.controller().halted());
    acc.loadProgram(prog);
    EXPECT_FALSE(acc.controller().halted());
    EXPECT_EQ(acc.controller().pc(), 0u);
    const RunStats again = acc.execute(RunRequest{}).stats;
    EXPECT_EQ(again.instructionsCommitted, prog.size() - 1);
}

TEST(Accelerator, AllTechConfigsConstruct)
{
    for (TechConfig tech :
         {TechConfig::ModernStt, TechConfig::ProjectedStt,
          TechConfig::ProjectedShe}) {
        Accelerator acc(smallConfig(tech));
        EXPECT_EQ(acc.device().tech, tech);
        EXPECT_GT(acc.energyModel().fetchEnergy(), 0.0);
    }
}

} // namespace
} // namespace mouse
