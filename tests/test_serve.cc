/**
 * @file
 * Serving-layer tests: the two load-bearing guarantees of
 * docs/SERVING.md.
 *
 *  1. Column-slot batching is invisible to results: a request packed
 *     into a full pass produces the bit-identical prediction it
 *     produces when it is the only occupant of a pass, and when its
 *     inputs are run one-at-a-time through the raw
 *     Accelerator::execute() path.
 *  2. Service statistics are deterministic: the folded registry is
 *     byte-identical for any worker count, and every deterministic
 *     per-request field (prediction, batch metadata, simulated
 *     latency and energy) is too.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "serve/service.hh"

namespace mouse::serve
{
namespace
{

constexpr unsigned kBnnInputs = 12;
constexpr unsigned kBnnClasses = 4;
constexpr unsigned kSvmDim = 6;
constexpr unsigned kSvmSvs = 4;
constexpr unsigned kSvmInputBits = 4;

ServiceConfig
smallConfig(unsigned workers, unsigned max_batch = 0)
{
    ServiceConfig cfg;
    cfg.engine.tech = TechConfig::ProjectedStt;
    cfg.engine.array.tileRows = 512;
    cfg.engine.array.tileCols = 16;  // 4 slots for both models
    cfg.engine.array.numDataTiles = 1;
    cfg.engine.array.numInstructionTiles = 4096;
    cfg.workers = workers;
    cfg.maxBatch = max_batch;
    return cfg;
}

BnnServeModel
randomBnn(Rng &rng)
{
    BnnServeModel m;
    m.name = "bnn4";
    m.layer.inputs = kBnnInputs;
    m.layer.outputs = kBnnClasses;
    m.layer.weights.assign(kBnnClasses,
                           std::vector<Bit>(kBnnInputs));
    m.layer.thresholds.resize(kBnnClasses);
    for (unsigned c = 0; c < kBnnClasses; ++c) {
        for (unsigned i = 0; i < kBnnInputs; ++i) {
            m.layer.weights[c][i] = static_cast<Bit>(rng.below(2));
        }
        m.layer.thresholds[c] =
            static_cast<std::int32_t>(rng.below(kBnnInputs + 1));
    }
    return m;
}

SvmServeModel
randomSvm(Rng &rng)
{
    SvmServeModel m;
    m.name = "svm2";
    m.dim = kSvmDim;
    m.inputBits = kSvmInputBits;
    m.accBits = 12;
    m.svm.supportVectors.assign(kSvmSvs, Features(kSvmDim));
    m.svm.coefficients.resize(kSvmSvs);
    for (unsigned s = 0; s < kSvmSvs; ++s) {
        for (unsigned e = 0; e < kSvmDim; ++e) {
            m.svm.supportVectors[s][e] =
                static_cast<std::uint8_t>(rng.below(16));
        }
        m.svm.coefficients[s] = static_cast<std::int32_t>(
                                    rng.below(9)) -
                                4;
    }
    m.svm.bias = static_cast<std::int64_t>(rng.below(64)) - 32;
    return m;
}

Input
randomInput(Rng &rng, const PackedModel &m, unsigned element_bits)
{
    Input in(m.inputSize());
    for (auto &v : in) {
        v = static_cast<std::uint8_t>(
            rng.below(1u << element_bits));
    }
    return in;
}

/** Mixed-model request sequence, reproducible from the seed. */
struct Workload
{
    std::vector<ModelId> models;
    std::vector<Input> inputs;
};

Workload
makeWorkload(const InferenceService &svc, ModelId bnn, ModelId svm,
             unsigned n, std::uint64_t seed)
{
    Rng rng(seed);
    Workload w;
    for (unsigned i = 0; i < n; ++i) {
        const bool useBnn = rng.below(2) == 0;
        const ModelId m = useBnn ? bnn : svm;
        w.models.push_back(m);
        w.inputs.push_back(randomInput(
            rng, svc.model(m), useBnn ? 1 : kSvmInputBits));
    }
    return w;
}

void
submitAll(InferenceService &svc, const Workload &w)
{
    for (std::size_t i = 0; i < w.models.size(); ++i) {
        const RequestId id = svc.submit(w.models[i], w.inputs[i]);
        EXPECT_EQ(id, i);
    }
}

TEST(Serve, PackedBatchMatchesSequentialExecute)
{
    Rng modelRng(71);
    const BnnServeModel bnnModel = randomBnn(modelRng);
    const SvmServeModel svmModel = randomSvm(modelRng);

    // Packed: full 4-slot passes.
    InferenceService packed(smallConfig(1, 0));
    const ModelId bnnP = packed.addModel(bnnModel);
    const ModelId svmP = packed.addModel(svmModel);
    // Sequential: same engine, one request per pass.
    InferenceService solo(smallConfig(1, 1));
    const ModelId bnnS = solo.addModel(bnnModel);
    const ModelId svmS = solo.addModel(svmModel);
    ASSERT_EQ(bnnP, bnnS);
    ASSERT_EQ(svmP, svmS);

    const Workload w = makeWorkload(packed, bnnP, svmP, 24, 2024);
    submitAll(packed, w);
    submitAll(solo, w);
    packed.drain();
    solo.drain();

    // Raw path: each input alone on a fresh accelerator, via the
    // synchronous execute() entry point.
    MouseConfig engineCfg = smallConfig(1).engine;
    for (std::size_t i = 0; i < w.models.size(); ++i) {
        const ClassifyResult &rp = packed.result(i);
        const ClassifyResult &rs = solo.result(i);
        EXPECT_EQ(rp.predicted, rs.predicted) << "request " << i;
        EXPECT_EQ(rs.batchSize, 1u);
        EXPECT_GT(rp.batchSize, 0u);

        const PackedModel &m = packed.model(w.models[i]);
        Accelerator acc(engineCfg);
        acc.loadProgram(m.program());
        m.deployWeights(acc.grid());
        for (unsigned s = 0; s < m.slots(); ++s) {
            m.clearInput(acc.grid(), s);
        }
        m.packInput(acc.grid(), 0, w.inputs[i]);
        const RunResult res = acc.execute(RunRequest{});
        ASSERT_TRUE(res.ok());
        EXPECT_EQ(m.readPrediction(acc.grid(), 0), rp.predicted)
            << "request " << i;
    }
}

TEST(Serve, BnnPredictionMatchesSoftwareArgmax)
{
    Rng modelRng(5);
    const BnnServeModel bnnModel = randomBnn(modelRng);
    InferenceService svc(smallConfig(1));
    const ModelId bnn = svc.addModel(bnnModel);

    Rng rng(99);
    std::vector<Input> inputs;
    for (unsigned i = 0; i < 8; ++i) {
        inputs.push_back(randomInput(rng, svc.model(bnn), 1));
        svc.submit(bnn, inputs.back());
    }
    svc.drain();
    for (unsigned i = 0; i < 8; ++i) {
        int best = 0;
        int bestPop = -1;
        for (unsigned c = 0; c < kBnnClasses; ++c) {
            int pop = 0;
            for (unsigned b = 0; b < kBnnInputs; ++b) {
                pop += bnnModel.layer.weights[c][b] ==
                       inputs[i][b];
            }
            if (pop > bestPop) {
                bestPop = pop;
                best = static_cast<int>(c);
            }
        }
        EXPECT_EQ(svc.result(i).predicted, best) << "request " << i;
    }
}

TEST(Serve, StatsFoldByteIdenticallyAcrossWorkerCounts)
{
    Rng modelRng(17);
    const BnnServeModel bnnModel = randomBnn(modelRng);
    const SvmServeModel svmModel = randomSvm(modelRng);

    auto run = [&](unsigned workers) {
        auto svc = std::make_unique<InferenceService>(
            smallConfig(workers));
        const ModelId bnn = svc->addModel(bnnModel);
        const ModelId svm = svc->addModel(svmModel);
        const Workload w = makeWorkload(*svc, bnn, svm, 30, 777);
        submitAll(*svc, w);
        svc->drain();
        return svc;
    };
    const auto one = run(1);
    const auto four = run(4);

    EXPECT_EQ(one->completed(), 30u);
    EXPECT_EQ(four->completed(), 30u);
    EXPECT_EQ(one->batchesRun(), four->batchesRun());
    // The folded registry must not depend on which engine ran which
    // batch: byte-identical JSON.
    EXPECT_EQ(one->stats()->toJson(), four->stats()->toJson());
    // And every deterministic per-request field must agree.
    for (RequestId id = 0; id < 30; ++id) {
        const ClassifyResult &a = one->result(id);
        const ClassifyResult &b = four->result(id);
        EXPECT_EQ(a.predicted, b.predicted) << "request " << id;
        EXPECT_EQ(a.batchId, b.batchId) << "request " << id;
        EXPECT_EQ(a.batchSize, b.batchSize) << "request " << id;
        EXPECT_EQ(a.slot, b.slot) << "request " << id;
        EXPECT_EQ(a.simSeconds, b.simSeconds) << "request " << id;
        EXPECT_EQ(a.energy, b.energy) << "request " << id;
    }
}

TEST(Serve, FlushCutsPartialBatchesAndCountsIdleSlots)
{
    Rng modelRng(23);
    InferenceService svc(smallConfig(1));
    const ModelId bnn = svc.addModel(randomBnn(modelRng));

    Rng rng(3);
    for (unsigned i = 0; i < 3; ++i) {  // 3 of 4 slots
        svc.submit(bnn, randomInput(rng, svc.model(bnn), 1));
    }
    EXPECT_EQ(svc.pendingRequests(), 3u);
    svc.drain();  // flushes the partial batch
    EXPECT_EQ(svc.pendingRequests(), 0u);
    EXPECT_EQ(svc.completed(), 3u);
    EXPECT_EQ(svc.batchesRun(), 1u);
    for (RequestId id = 0; id < 3; ++id) {
        EXPECT_EQ(svc.result(id).batchSize, 3u);
        EXPECT_EQ(svc.result(id).slot, id);
    }
    const auto reg = svc.stats();
    EXPECT_EQ(reg->counterValue("serve.slots_idle"), 1.0);
    EXPECT_EQ(reg->counterValue("serve.requests"), 3.0);
}

TEST(Serve, ReportJsonCarriesSchemaV6ServeBlock)
{
    Rng modelRng(31);
    InferenceService svc(smallConfig(2));
    const ModelId bnn = svc.addModel(randomBnn(modelRng));
    Rng rng(8);
    for (unsigned i = 0; i < 6; ++i) {
        svc.submit(bnn, randomInput(rng, svc.model(bnn), 1));
    }
    svc.drain();
    const std::string j = svc.reportJson();
    // mouse-lint: allow(schema-constants) -- golden pin: the test
    // hardcodes the published version on purpose, so an accidental
    // bump of the central constant fails here.
    EXPECT_NE(j.find("\"schema\":6"), std::string::npos);
    EXPECT_NE(j.find("\"serve_report\":"), std::string::npos);
    EXPECT_NE(j.find("\"requests\":6"), std::string::npos);
    EXPECT_NE(j.find("\"throughput_per_s\":"), std::string::npos);
    EXPECT_NE(j.find("\"p50\":"), std::string::npos);
    EXPECT_NE(j.find("\"p99\":"), std::string::npos);
    EXPECT_NE(j.find("\"stat_registry\":"), std::string::npos);
}

TEST(Serve, ObservabilityDoesNotPerturbDeterministicOutputs)
{
    Rng modelRng(41);
    const BnnServeModel bnnModel = randomBnn(modelRng);
    const SvmServeModel svmModel = randomSvm(modelRng);

    auto run = [&](unsigned workers, bool observed) {
        auto svc = std::make_unique<InferenceService>(
            smallConfig(workers));
        auto hub = std::make_unique<obs::MetricsHub>();
        if (observed) {
            svc->setMetrics(hub.get());
            svc->setTracing(true);
        }
        const ModelId bnn = svc->addModel(bnnModel);
        const ModelId svm = svc->addModel(svmModel);
        const Workload w = makeWorkload(*svc, bnn, svm, 30, 555);
        submitAll(*svc, w);
        svc->drain();
        svc->setMetrics(nullptr);
        return svc;
    };
    const auto plain = run(1, false);
    const auto observed1 = run(1, true);
    const auto observed4 = run(4, true);

    // Metrics publishing and span tracing are observational: the
    // folded registry stays byte-identical with them on or off, and
    // across worker counts with them on.
    EXPECT_EQ(plain->stats()->toJson(), observed1->stats()->toJson());
    EXPECT_EQ(plain->stats()->toJson(), observed4->stats()->toJson());
    for (RequestId id = 0; id < 30; ++id) {
        const ClassifyResult &a = plain->result(id);
        const ClassifyResult &b = observed4->result(id);
        EXPECT_EQ(a.predicted, b.predicted) << "request " << id;
        EXPECT_EQ(a.batchId, b.batchId) << "request " << id;
        EXPECT_EQ(a.slot, b.slot) << "request " << id;
        EXPECT_EQ(a.simSeconds, b.simSeconds) << "request " << id;
        EXPECT_EQ(a.energy, b.energy) << "request " << id;
    }
}

TEST(Serve, MetricsHubSeesTheWholeServingLifecycle)
{
    Rng modelRng(47);
    obs::MetricsHub hub;
    InferenceService svc(smallConfig(2));
    svc.setMetrics(&hub);
    const ModelId bnn = svc.addModel(randomBnn(modelRng));
    Rng rng(12);
    for (unsigned i = 0; i < 10; ++i) {
        svc.submit(bnn, randomInput(rng, svc.model(bnn), 1));
    }
    {
        const obs::MetricsSnapshot s = hub.snapshot();
        EXPECT_EQ(s.submitted, 10u);
        EXPECT_EQ(s.queueDepth, 10);
        EXPECT_EQ(s.completed, 0u);
    }
    svc.drain();
    svc.setMetrics(nullptr);
    const obs::MetricsSnapshot s = hub.snapshot();
    EXPECT_EQ(s.submitted, 10u);
    EXPECT_EQ(s.completed, 10u);
    EXPECT_EQ(s.queueDepth, 0);
    EXPECT_EQ(s.batches, svc.batchesRun());
    EXPECT_EQ(s.activeWorkers, 0u);
    EXPECT_GT(s.simSeconds, 0.0);
    EXPECT_GT(s.energyJoules, 0.0);
    EXPECT_EQ(s.hostLatency.count, 10u);
    EXPECT_GT(s.hostLatency.p50, 0.0);
}

TEST(Serve, RequestSpansCoverHostLatency)
{
    Rng modelRng(53);
    InferenceService svc(smallConfig(2));
    svc.setTracing(true);
    const ModelId bnn = svc.addModel(randomBnn(modelRng));
    const ModelId svm = svc.addModel(randomSvm(modelRng));
    const Workload w = makeWorkload(svc, bnn, svm, 16, 909);
    submitAll(svc, w);
    svc.drain();

    const obs::TraceSink trace = svc.requestTrace();
    ASSERT_FALSE(trace.events().empty());

    // Every batch phase appears, plus formation instants.
    for (const char *name :
         {"batch", "deploy", "pack", "sim", "readout", "batch_cut",
          "request", "queued"}) {
        bool found = false;
        for (const auto &e : trace.events()) {
            found |= e.name == name;
        }
        EXPECT_TRUE(found) << name;
    }

    // The acceptance bar: each request's span covers >= 99% of its
    // admission-to-completion host wall-clock.  (They are computed
    // from the same timestamps, so coverage is exact.)
    for (RequestId id = 0; id < 16; ++id) {
        const ClassifyResult &r = svc.result(id);
        const std::uint32_t pid =
            static_cast<std::uint32_t>(1 + r.batchId);
        bool found = false;
        for (const auto &e : trace.events()) {
            if (e.name != "request" || e.pid != pid ||
                e.tid != r.slot) {
                continue;
            }
            found = true;
            EXPECT_GE(e.durUs, 0.99 * r.hostSeconds * 1e6)
                << "request " << id;
            EXPECT_LE(e.durUs, 1.01 * r.hostSeconds * 1e6 + 1.0)
                << "request " << id;
        }
        EXPECT_TRUE(found) << "request " << id;
    }
}

TEST(Serve, HarvestedServingAttributesOutageStalls)
{
    Rng modelRng(61);
    const BnnServeModel bnnModel = randomBnn(modelRng);
    ServiceConfig cfg = smallConfig(1);
    cfg.harvested = true;
    // Weak harvester + tiny buffer capacitor: each pass browns out
    // repeatedly (the burst covers only a handful of instructions).
    cfg.harvest.source = SourceSpec::constant(1e-6);
    cfg.harvest.capacitanceOverride = 2e-10;
    obs::MetricsHub hub;
    InferenceService svc(cfg);
    svc.setMetrics(&hub);
    svc.setTracing(true);
    const ModelId bnn = svc.addModel(bnnModel);
    Rng rng(6);
    for (unsigned i = 0; i < 4; ++i) {
        svc.submit(bnn, randomInput(rng, svc.model(bnn), 1));
    }
    svc.drain();
    svc.setMetrics(nullptr);

    const obs::MetricsSnapshot s = hub.snapshot();
    EXPECT_EQ(s.completed, 4u);
    EXPECT_GT(s.outages, 0u);
    EXPECT_GT(s.outageStallSeconds, 0.0);
    EXPECT_GT(s.windowOutageStallSeconds, 0.0);

    // The span stream separates brownout time from compute time.
    const obs::TraceSink trace = svc.requestTrace();
    bool sawStall = false;
    for (const auto &e : trace.events()) {
        sawStall |= e.name == "outage_stall";
    }
    EXPECT_TRUE(sawStall);

    // Harvested passes are still deterministic: a second identical
    // service folds the identical registry.
    InferenceService again(cfg);
    const ModelId bnn2 = again.addModel(bnnModel);
    Rng rng2(6);
    for (unsigned i = 0; i < 4; ++i) {
        again.submit(bnn2, randomInput(rng2, again.model(bnn2), 1));
    }
    again.drain();
    EXPECT_EQ(svc.stats()->toJson(), again.stats()->toJson());
}

} // namespace
} // namespace mouse::serve
