/**
 * @file
 * Differential tests for the word-parallel gate execution fast path:
 * the word path and the retained per-column scalar oracle
 * (Tile::setScalarOracle) must produce bit-identical MTJ state for
 * every gate type, technology, margin, random column mask, un-preset
 * output, and cycle_fraction — including partial-pulse interrupts —
 * and matching switch/column counts.  Device energy is compared to a
 * tight relative tolerance (the word path folds per-bucket popcount
 * multiplies instead of a per-column sum, so the totals may differ
 * in ulps).
 */

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "arch/tile.hh"
#include "common/rng.hh"
#include "logic/gate_library.hh"

namespace mouse
{
namespace
{

/** Scoped switch into the scalar oracle, restored on exit. */
class ScalarOracleGuard
{
  public:
    ScalarOracleGuard() { Tile::setScalarOracle(true); }
    ~ScalarOracleGuard() { Tile::setScalarOracle(false); }
};

void
expectEnergyNear(Joules a, Joules b)
{
    const double tol =
        1e-9 * std::max({std::fabs(a), std::fabs(b), 1e-30});
    EXPECT_NEAR(a, b, tol);
}

/** Fill both tiles with identical random contents. */
void
randomFill(Tile &a, Tile &b, Rng &rng)
{
    for (RowAddr r = 0; r < a.numRows(); ++r) {
        for (ColAddr c = 0; c < a.numCols(); ++c) {
            const Bit v = static_cast<Bit>(rng.below(2));
            a.setBit(r, c, v);
            b.setBit(r, c, v);
        }
    }
}

ColumnSet
randomColumns(unsigned cols, Rng &rng)
{
    ColumnSet set(cols);
    // Mix densities so both sparse masks and full words occur.
    const double density = rng.uniform();
    for (ColAddr c = 0; c < cols; ++c) {
        if (rng.uniform() < density) {
            set.add(c);
        }
    }
    return set;
}

/**
 * Execute one gate on two identically-seeded tiles — word path vs
 * scalar oracle — and require bit-identical state and bookkeeping.
 */
void
diffExecute(const GateLibrary &lib, GateType g, unsigned rows,
            unsigned cols, double cycle_fraction, Rng &rng)
{
    const int n = gateNumInputs(g);
    Tile word(rows, cols);
    Tile scalar(rows, cols);
    randomFill(word, scalar, rng);
    const ColumnSet active = randomColumns(cols, rng);

    // Distinct even input rows, odd output row (parity rule).
    std::array<RowAddr, 3> in_rows{0, 0, 0};
    for (int i = 0; i < n; ++i) {
        RowAddr r;
        bool fresh;
        do {
            r = static_cast<RowAddr>(2 * rng.below(rows / 2));
            fresh = true;
            for (int j = 0; j < i; ++j) {
                fresh &= in_rows[static_cast<std::size_t>(j)] != r;
            }
        } while (!fresh);
        in_rows[static_cast<std::size_t>(i)] = r;
    }
    const RowAddr out_row =
        static_cast<RowAddr>(1 + 2 * rng.below(rows / 2));

    const GateExecResult rw = word.executeGate(
        lib, g, in_rows, out_row, active, cycle_fraction);
    GateExecResult rs;
    {
        ScalarOracleGuard oracle;
        rs = scalar.executeGate(lib, g, in_rows, out_row, active,
                                cycle_fraction);
    }

    EXPECT_EQ(word.snapshot(), scalar.snapshot())
        << "gate " << gateName(g) << " fraction " << cycle_fraction;
    EXPECT_EQ(rw.switched, rs.switched);
    EXPECT_EQ(rw.columns, rs.columns);
    EXPECT_EQ(rw.completed, rs.completed);
    expectEnergyNear(rw.deviceEnergy, rs.deviceEnergy);
}

/** Sweep every feasible gate of @p lib over interrupt fractions and
 *  random masks/contents; tile width crosses a word boundary. */
void
diffSweep(const GateLibrary &lib, std::uint64_t seed)
{
    // 96 columns = one full word plus a 32-bit tail; 64 rows.
    const unsigned rows = 64;
    const unsigned cols = 96;
    const DeviceConfig &cfg = lib.config();
    for (GateType g : lib.feasibleGates()) {
        const SolvedGate &solved = lib.gate(g);
        const double pf = solved.pulseTime / cfg.cycleTime;
        const double fractions[] = {
            1.0,                         // uninterrupted
            0.0,                         // cut at cycle start
            pf * 0.5,                    // mid-pulse
            std::nextafter(pf, 0.0),     // just inside the pulse
            pf,                          // exact pulse boundary
            (pf + 1.0) * 0.5,            // after the pulse
        };
        Rng rng(seed ^ static_cast<std::uint64_t>(g));
        for (double f : fractions) {
            for (int trial = 0; trial < 3; ++trial) {
                diffExecute(lib, g, rows, cols, f, rng);
            }
        }
    }
}

TEST(TileFastPath, MatchesScalarOracleAllTechsAndMargins)
{
    const TechConfig techs[] = {TechConfig::ModernStt,
                                TechConfig::ProjectedStt,
                                TechConfig::ProjectedShe};
    const double margins[] = {kDefaultGateMargin, 0.02};
    std::uint64_t seed = 1;
    for (TechConfig tech : techs) {
        for (double margin : margins) {
            const GateLibrary lib(makeDeviceConfig(tech), margin);
            diffSweep(lib, seed++);
        }
    }
}

TEST(TileFastPath, MatchesScalarOracleWithWireParasitics)
{
    // Non-zero per-cell wire resistance makes the operating table
    // span-dependent: the fast path must rebuild it per call from
    // the factored combo resistances, still bit-exactly.
    const TechConfig techs[] = {TechConfig::ProjectedStt,
                                TechConfig::ProjectedShe};
    std::uint64_t seed = 101;
    for (TechConfig tech : techs) {
        const DeviceConfig cfg =
            withParasitics(makeDeviceConfig(tech), 2.0);
        const GateLibrary lib(cfg);
        diffSweep(lib, seed++);
    }
}

TEST(TileFastPath, UnPresetOutputsMatchScalar)
{
    // Force the output row to the non-preset state everywhere: no
    // column may switch (directionality), and the energy must be the
    // honest already-switched current, identically in both paths.
    const GateLibrary lib(
        makeDeviceConfig(TechConfig::ProjectedStt));
    Rng rng(7);
    for (GateType g : lib.feasibleGates()) {
        Tile word(8, 96);
        Tile scalar(8, 96);
        randomFill(word, scalar, rng);
        const Bit anti = static_cast<Bit>(!gatePreset(g));
        for (ColAddr c = 0; c < 96; ++c) {
            word.setBit(1, c, anti);
            scalar.setBit(1, c, anti);
        }
        ColumnSet active(96);
        active.addRange(0, 95);
        const GateExecResult rw =
            word.executeGate(lib, g, {0, 2, 4}, 1, active);
        GateExecResult rs;
        {
            ScalarOracleGuard oracle;
            rs = scalar.executeGate(lib, g, {0, 2, 4}, 1, active);
        }
        EXPECT_EQ(rw.switched, 0u);
        EXPECT_EQ(rs.switched, 0u);
        EXPECT_EQ(word.snapshot(), scalar.snapshot());
        expectEnergyNear(rw.deviceEnergy, rs.deviceEnergy);
    }
}

TEST(TileFastPath, EmptyAndFullMasksMatchScalar)
{
    const GateLibrary lib(
        makeDeviceConfig(TechConfig::ProjectedShe));
    Tile word(8, 64);
    Tile scalar(8, 64);
    Rng rng(11);
    randomFill(word, scalar, rng);

    ColumnSet none(64);
    ColumnSet all(64);
    all.addRange(0, 63);
    for (const ColumnSet *active : {&none, &all}) {
        const GateExecResult rw = word.executeGate(
            lib, GateType::kNand2, {0, 2, 0}, 1, *active);
        GateExecResult rs;
        {
            ScalarOracleGuard oracle;
            rs = scalar.executeGate(lib, GateType::kNand2, {0, 2, 0},
                                    1, *active);
        }
        EXPECT_EQ(rw.columns, active->count());
        EXPECT_EQ(rw.switched, rs.switched);
        EXPECT_EQ(word.snapshot(), scalar.snapshot());
        expectEnergyNear(rw.deviceEnergy, rs.deviceEnergy);
    }
}

TEST(TileFastPath, PresetRowInterruptionAcrossWordBoundary)
{
    const GateLibrary lib(
        makeDeviceConfig(TechConfig::ProjectedStt));
    const double pf = lib.writeOp().pulseTime /
                      lib.config().cycleTime;
    Tile tile(4, 96);
    ColumnSet active(96);
    active.add(0);
    active.add(63);
    active.add(64);
    active.add(95);

    // Interrupt inside the write pulse: contents keep, energy scales.
    const Joules partial =
        tile.presetRow(lib, 1, 1, active, pf * 0.25);
    for (ColAddr c : active.columns()) {
        EXPECT_EQ(tile.bit(1, c), 0);
    }
    const Joules full = tile.presetRow(lib, 1, 1, active, 1.0);
    for (ColAddr c : active.columns()) {
        EXPECT_EQ(tile.bit(1, c), 1);
    }
    EXPECT_EQ(tile.bit(1, 1), 0);
    EXPECT_EQ(tile.bit(1, 65), 0);
    expectEnergyNear(partial, full * 0.25);

    // Preset back to 0 only where active.
    tile.presetRow(lib, 1, 0, active, 1.0);
    for (ColAddr c : active.columns()) {
        EXPECT_EQ(tile.bit(1, c), 0);
    }
}

TEST(TileFastPath, WriteReadRowRoundTripAcrossWordBoundary)
{
    const GateLibrary lib(
        makeDeviceConfig(TechConfig::ProjectedShe));
    Tile tile(4, 70);
    Rng rng(23);
    std::vector<Bit> data(70);
    for (Bit &b : data) {
        b = static_cast<Bit>(rng.below(2));
    }
    const double pf = lib.writeOp().pulseTime /
                      lib.config().cycleTime;
    // Interrupted write leaves the row untouched.
    tile.writeRow(lib, 2, data, pf * 0.5);
    std::vector<Bit> readback;
    tile.readRow(lib, 2, readback);
    EXPECT_EQ(readback, std::vector<Bit>(70, 0));
    // Complete write round-trips.
    tile.writeRow(lib, 2, data, 1.0);
    tile.readRow(lib, 2, readback);
    EXPECT_EQ(readback, data);
}

TEST(TileFastPath, ColumnSetWordsAgreeWithEnumeration)
{
    Rng rng(31);
    ColumnSet set(200);
    for (ColAddr c = 0; c < 200; ++c) {
        if (rng.below(3) == 0) {
            set.add(c);
        }
    }
    // word()/numWords() expose exactly the membership columns() and
    // forEachColumn() enumerate.
    std::vector<ColAddr> from_words;
    for (unsigned w = 0; w < set.numWords(); ++w) {
        std::uint64_t bits = set.word(w);
        while (bits) {
            const int b = __builtin_ctzll(bits);
            from_words.push_back(
                static_cast<ColAddr>(w * 64 + static_cast<unsigned>(b)));
            bits &= bits - 1;
        }
    }
    EXPECT_EQ(from_words, set.columns());
    std::vector<ColAddr> visited;
    set.forEachColumn([&](ColAddr c) { visited.push_back(c); });
    EXPECT_EQ(visited, set.columns());
    EXPECT_EQ(set.count(), visited.size());
}

} // namespace
} // namespace mouse
