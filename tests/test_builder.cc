/**
 * @file
 * Tests for the gate-level compiler: every generated arithmetic
 * kernel is executed on the bit-exact functional array (through the
 * memory controller) and checked against software arithmetic, for
 * sweeps of operand values and in multiple SIMD columns at once.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "compile/builder.hh"
#include "controller/controller.hh"

namespace mouse
{
namespace
{

/** Run @p prog on a fresh grid prepared by @p seed; return the grid. */
class BuilderHarness
{
  public:
    explicit BuilderHarness(TechConfig tech = TechConfig::ProjectedStt)
        : lib_(makeDeviceConfig(tech)), energy_(lib_)
    {
        cfg_.tileRows = 256;
        cfg_.tileCols = 8;
        cfg_.numDataTiles = 1;
        cfg_.numInstructionTiles = 512;
    }

    const ArrayConfig &config() const { return cfg_; }

    KernelBuilder
    makeBuilder(unsigned first_free_row)
    {
        return KernelBuilder(lib_, cfg_, 0, first_free_row);
    }

    /** Execute the program and return the final grid state. */
    TileGrid
    run(const Program &prog,
        const std::vector<std::tuple<RowAddr, ColAddr, Bit>> &seeds)
    {
        TileGrid grid(cfg_, lib_);
        for (const auto &[row, col, bit] : seeds) {
            grid.tile(0).setBit(row, col, bit);
        }
        InstructionMemory imem(cfg_);
        imem.load(prog.encode());
        Controller ctrl(grid, imem, energy_);
        int guard = 0;
        while (!ctrl.halted()) {
            ctrl.step();
            if (++guard > 2'000'000) {
                ADD_FAILURE() << "program did not halt";
                break;
            }
        }
        return grid;
    }

    /** Read a word laid out by pinnedWord() from one column. */
    static std::int64_t
    readWord(TileGrid &grid, const Word &w, ColAddr col,
             bool sign = false)
    {
        std::int64_t v = 0;
        for (std::size_t i = 0; i < w.size(); ++i) {
            v |= static_cast<std::int64_t>(grid.tile(0).bit(w[i].row,
                                                            col))
                 << i;
        }
        if (sign && grid.tile(0).bit(w.back().row, col)) {
            v -= static_cast<std::int64_t>(1) << w.size();
        }
        return v;
    }

    GateLibrary lib_;
    EnergyModel energy_;
    ArrayConfig cfg_;
};

/** Seed a word value into a column at pinned rows. */
void
seedWord(std::vector<std::tuple<RowAddr, ColAddr, Bit>> &seeds,
         const Word &w, ColAddr col, std::uint64_t value)
{
    for (std::size_t i = 0; i < w.size(); ++i) {
        seeds.emplace_back(w[i].row, col,
                           static_cast<Bit>((value >> i) & 1));
    }
}

TEST(Builder, LogicHelpersComputeCorrectly)
{
    BuilderHarness h;
    KernelBuilder kb = h.makeBuilder(8);
    kb.activate(0, 3);
    const Val a = kb.pinned(0);
    const Val b = kb.pinned(2);
    const Val x = kb.xorSame(a, b);
    const Val n = kb.nand(a, b);
    const Val an = kb.andSame(a, b);
    const Val o = kb.orFlip(a, b);
    const Val xn = kb.xnorFlip(a, b);
    const Val nt = kb.not_(a);
    const Program prog = kb.finish();

    std::vector<std::tuple<RowAddr, ColAddr, Bit>> seeds;
    for (ColAddr c = 0; c < 4; ++c) {
        seeds.emplace_back(0, c, static_cast<Bit>(c & 1));
        seeds.emplace_back(2, c, static_cast<Bit>((c >> 1) & 1));
    }
    TileGrid grid = h.run(prog, seeds);
    for (ColAddr c = 0; c < 4; ++c) {
        const Bit av = c & 1;
        const Bit bv = (c >> 1) & 1;
        EXPECT_EQ(grid.tile(0).bit(x.row, c), av ^ bv) << "col " << c;
        EXPECT_EQ(grid.tile(0).bit(n.row, c), !(av && bv));
        EXPECT_EQ(grid.tile(0).bit(an.row, c), av && bv);
        EXPECT_EQ(grid.tile(0).bit(o.row, c), av || bv);
        EXPECT_EQ(grid.tile(0).bit(xn.row, c), !(av ^ bv));
        EXPECT_EQ(grid.tile(0).bit(nt.row, c), !av);
    }
}

TEST(Builder, FullAdderExhaustive)
{
    BuilderHarness h;
    KernelBuilder kb = h.makeBuilder(8);
    kb.activate(0, 7);
    Val sum{};
    Val cout{};
    kb.fullAdder(kb.pinned(0), kb.pinned(2), kb.pinned(4), sum, cout);
    const Program prog = kb.finish();

    std::vector<std::tuple<RowAddr, ColAddr, Bit>> seeds;
    for (ColAddr c = 0; c < 8; ++c) {
        seeds.emplace_back(0, c, static_cast<Bit>(c & 1));
        seeds.emplace_back(2, c, static_cast<Bit>((c >> 1) & 1));
        seeds.emplace_back(4, c, static_cast<Bit>((c >> 2) & 1));
    }
    TileGrid grid = h.run(prog, seeds);
    for (ColAddr c = 0; c < 8; ++c) {
        const int total = (c & 1) + ((c >> 1) & 1) + ((c >> 2) & 1);
        EXPECT_EQ(grid.tile(0).bit(sum.row, c), total & 1)
            << "col " << c;
        EXPECT_EQ(grid.tile(0).bit(cout.row, c), total >> 1)
            << "col " << c;
    }
}

TEST(Builder, FullAdderUsesNineNands)
{
    BuilderHarness h;
    KernelBuilder kb = h.makeBuilder(8);
    kb.activate(0, 0);
    Val sum{};
    Val cout{};
    kb.fullAdder(kb.pinned(0), kb.pinned(2), kb.pinned(4), sum, cout);
    const Program prog = kb.finish();
    // Paper Section II-B: a full-add is 9 NAND gates; the bitline
    // parity structure adds 2 BUF copies, and every gate output is
    // preceded by an explicit preset write.
    EXPECT_EQ(prog.countOpcode(Opcode::kGateNand2), 9u);
    EXPECT_EQ(prog.countOpcode(Opcode::kGateBuf), 2u);
    EXPECT_EQ(prog.countOpcode(Opcode::kPreset0) +
                  prog.countOpcode(Opcode::kPreset1),
              11u);
}

class AdderWidth : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(AdderWidth, RippleAddSweep)
{
    const unsigned bits = GetParam();
    BuilderHarness h;
    KernelBuilder kb = h.makeBuilder(static_cast<unsigned>(4 * bits));
    kb.activate(0, 7);
    const Word a = kb.pinnedWord(0, bits);
    const Word b = kb.pinnedWord(static_cast<RowAddr>(2 * bits), bits);
    const Word s = kb.add(a, b);
    const Program prog = kb.finish();

    Rng rng(bits);
    std::vector<std::tuple<RowAddr, ColAddr, Bit>> seeds;
    std::vector<std::pair<std::uint64_t, std::uint64_t>> cases;
    for (ColAddr c = 0; c < 8; ++c) {
        const std::uint64_t av = rng.below(1u << bits);
        const std::uint64_t bv = rng.below(1u << bits);
        cases.emplace_back(av, bv);
        seedWord(seeds, a, c, av);
        seedWord(seeds, b, c, bv);
    }
    TileGrid grid = h.run(prog, seeds);
    for (ColAddr c = 0; c < 8; ++c) {
        EXPECT_EQ(BuilderHarness::readWord(grid, s, c),
                  static_cast<std::int64_t>(cases[c].first +
                                            cases[c].second))
            << "width " << bits << " col " << c;
    }
}

INSTANTIATE_TEST_SUITE_P(Widths, AdderWidth,
                         ::testing::Values(1u, 2u, 3u, 4u, 6u, 8u));

TEST(Builder, SubtractorSignedResults)
{
    constexpr unsigned bits = 5;
    BuilderHarness h;
    KernelBuilder kb = h.makeBuilder(4 * bits);
    kb.activate(0, 7);
    const Word a = kb.pinnedWord(0, bits);
    const Word b = kb.pinnedWord(2 * bits, bits);
    const Word d = kb.sub(a, b);
    const Program prog = kb.finish();

    std::vector<std::tuple<RowAddr, ColAddr, Bit>> seeds;
    // Operands are two's-complement 5-bit values: [-16, 15].
    const std::pair<int, int> cases[8] = {{0, 0},   {5, 3},   {3, 5},
                                          {15, -16}, {-16, 15}, {9, 9},
                                          {14, -13}, {1, -14}};
    for (ColAddr c = 0; c < 8; ++c) {
        seedWord(seeds, a, c,
                 static_cast<std::uint64_t>(cases[c].first) & 0x1F);
        seedWord(seeds, b, c,
                 static_cast<std::uint64_t>(cases[c].second) & 0x1F);
    }
    TileGrid grid = h.run(prog, seeds);
    for (ColAddr c = 0; c < 8; ++c) {
        EXPECT_EQ(BuilderHarness::readWord(grid, d, c, true),
                  cases[c].first - cases[c].second)
            << "col " << c;
    }
}

TEST(Builder, UnsignedMultiplySweep)
{
    constexpr unsigned bits = 4;
    BuilderHarness h;
    KernelBuilder kb = h.makeBuilder(4 * bits + 24);
    kb.activate(0, 7);
    const Word a = kb.pinnedWord(0, bits);
    const Word b = kb.pinnedWord(2 * bits, bits);
    const Word p = kb.mulUnsigned(a, b);
    const Program prog = kb.finish();
    ASSERT_EQ(p.size(), 2 * bits);

    Rng rng(77);
    std::vector<std::tuple<RowAddr, ColAddr, Bit>> seeds;
    std::vector<std::pair<std::uint64_t, std::uint64_t>> cases;
    for (ColAddr c = 0; c < 8; ++c) {
        const std::uint64_t av = rng.below(16);
        const std::uint64_t bv = rng.below(16);
        cases.emplace_back(av, bv);
        seedWord(seeds, a, c, av);
        seedWord(seeds, b, c, bv);
    }
    TileGrid grid = h.run(prog, seeds);
    for (ColAddr c = 0; c < 8; ++c) {
        EXPECT_EQ(BuilderHarness::readWord(grid, p, c),
                  static_cast<std::int64_t>(cases[c].first *
                                            cases[c].second))
            << cases[c].first << "*" << cases[c].second;
    }
}

TEST(Builder, SignedMultiplySweep)
{
    constexpr unsigned bits = 4;
    BuilderHarness h;
    KernelBuilder kb = h.makeBuilder(4 * bits + 24);
    kb.activate(0, 7);
    const Word a = kb.pinnedWord(0, bits);
    const Word b = kb.pinnedWord(2 * bits, bits);
    const Word p = kb.mulSigned(a, b);
    const Program prog = kb.finish();

    const std::pair<int, int> cases[8] = {{-8, 7}, {-1, -1}, {3, -5},
                                          {-7, -8}, {0, -3}, {7, 7},
                                          {-4, 4}, {1, -8}};
    std::vector<std::tuple<RowAddr, ColAddr, Bit>> seeds;
    for (ColAddr c = 0; c < 8; ++c) {
        seedWord(seeds, a, c,
                 static_cast<std::uint64_t>(cases[c].first) & 0xF);
        seedWord(seeds, b, c,
                 static_cast<std::uint64_t>(cases[c].second) & 0xF);
    }
    TileGrid grid = h.run(prog, seeds);
    for (ColAddr c = 0; c < 8; ++c) {
        EXPECT_EQ(BuilderHarness::readWord(grid, p, c, true),
                  cases[c].first * cases[c].second)
            << cases[c].first << "*" << cases[c].second;
    }
}

TEST(Builder, PopcountSweep)
{
    BuilderHarness h;
    KernelBuilder kb = h.makeBuilder(32);
    kb.activate(0, 7);
    std::vector<Val> bits;
    for (unsigned i = 0; i < 10; ++i) {
        bits.push_back(kb.pinned(static_cast<RowAddr>(2 * i)));
    }
    const Word count = kb.popcount(bits);
    const Program prog = kb.finish();

    Rng rng(5);
    std::vector<std::tuple<RowAddr, ColAddr, Bit>> seeds;
    std::vector<int> expected(8, 0);
    for (ColAddr c = 0; c < 8; ++c) {
        for (unsigned i = 0; i < 10; ++i) {
            const Bit bit = static_cast<Bit>(rng.below(2));
            expected[c] += bit;
            seeds.emplace_back(static_cast<RowAddr>(2 * i), c, bit);
        }
    }
    TileGrid grid = h.run(prog, seeds);
    for (ColAddr c = 0; c < 8; ++c) {
        EXPECT_EQ(BuilderHarness::readWord(grid, count, c),
                  expected[c]);
    }
}

TEST(Builder, ScratchRowsAreRecycled)
{
    BuilderHarness h;
    KernelBuilder kb = h.makeBuilder(32);
    kb.activate(0, 0);
    const Word a = kb.pinnedWord(0, 8);
    const Word b = kb.pinnedWord(16, 8);
    Word s = kb.add(a, b);
    kb.freeWord(s);
    // A full 8-bit ripple add must fit in far fewer live scratch rows
    // than gates executed (the paper's 7-temporaries-per-FA bound plus
    // the result bits).
    EXPECT_LE(kb.scratchHighWater(), 24u);
    Word s2 = kb.add(a, b);
    (void)s2;
    EXPECT_LE(kb.scratchHighWater(), 24u);
}

TEST(Builder, OutOfScratchRowsIsFatal)
{
    BuilderHarness h;
    EXPECT_EXIT(
        {
            KernelBuilder kb = h.makeBuilder(250);
            for (int i = 0; i < 10; ++i) {
                kb.constant(0, 0);
            }
        },
        ::testing::ExitedWithCode(1), "out of");
}

/**
 * Cross-technology sweep: the same kernels must compute correctly on
 * every device generation, even though the gate libraries differ
 * (modern STT loses OR2/MAJ3 and takes synthesis fallbacks).
 */
class BuilderTech : public ::testing::TestWithParam<TechConfig>
{
};

TEST_P(BuilderTech, LogicAndArithmeticAcrossTechnologies)
{
    BuilderHarness h(GetParam());
    KernelBuilder kb = h.makeBuilder(40);
    kb.activate(0, 7);
    // Logic helpers (orFlip takes the DeMorgan fallback on modern).
    const Val a = kb.pinned(0);
    const Val b = kb.pinned(2);
    const Val o = kb.orFlip(a, b);
    const Val x = kb.xorSame(a, b);
    // 4-bit multiply on top.
    const Word wa = kb.pinnedWord(8, 4);
    const Word wb = kb.pinnedWord(16, 4);
    const Word p = kb.mulUnsigned(wa, wb);
    const Program prog = kb.finish();

    Rng rng(static_cast<std::uint64_t>(GetParam()) + 40);
    std::vector<std::tuple<RowAddr, ColAddr, Bit>> seeds;
    std::vector<std::pair<std::uint64_t, std::uint64_t>> cases;
    for (ColAddr c = 0; c < 8; ++c) {
        seeds.emplace_back(0, c, static_cast<Bit>(c & 1));
        seeds.emplace_back(2, c, static_cast<Bit>((c >> 1) & 1));
        const std::uint64_t av = rng.below(16);
        const std::uint64_t bv = rng.below(16);
        cases.emplace_back(av, bv);
        seedWord(seeds, wa, c, av);
        seedWord(seeds, wb, c, bv);
    }
    TileGrid grid = h.run(prog, seeds);
    for (ColAddr c = 0; c < 8; ++c) {
        const Bit av = c & 1;
        const Bit bv = (c >> 1) & 1;
        EXPECT_EQ(grid.tile(0).bit(o.row, c), av || bv);
        EXPECT_EQ(grid.tile(0).bit(x.row, c), av ^ bv);
        EXPECT_EQ(BuilderHarness::readWord(grid, p, c),
                  static_cast<std::int64_t>(cases[c].first *
                                            cases[c].second));
    }
}

INSTANTIATE_TEST_SUITE_P(AllTechs, BuilderTech,
                         ::testing::Values(TechConfig::ModernStt,
                                           TechConfig::ProjectedStt,
                                           TechConfig::ProjectedShe));

TEST(Builder, PopcountTreeMatchesLinearPopcount)
{
    // Both popcount forms must compute the same value on the array;
    // the tree form exists for gate-count, not semantics.
    BuilderHarness h;
    KernelBuilder kb = h.makeBuilder(32);
    kb.activate(0, 7);
    std::vector<Val> bits_linear;
    std::vector<Val> bits_tree;
    for (unsigned i = 0; i < 9; ++i) {
        bits_linear.push_back(kb.pinned(static_cast<RowAddr>(2 * i)));
    }
    const Word linear = kb.popcount(bits_linear);
    // The tree consumes its inputs; feed it owned copies.
    for (unsigned i = 0; i < 9; ++i) {
        Val c = kb.copyFlip(kb.pinned(static_cast<RowAddr>(2 * i)));
        Val cc = kb.copyFlip(c);  // back to even parity
        kb.free(c);
        bits_tree.push_back(cc);
    }
    const Word tree = kb.popcountTree(std::move(bits_tree));
    const Program prog = kb.finish();

    Rng rng(14);
    std::vector<std::tuple<RowAddr, ColAddr, Bit>> seeds;
    std::vector<int> expected(8, 0);
    for (ColAddr c = 0; c < 8; ++c) {
        for (unsigned i = 0; i < 9; ++i) {
            const Bit b = static_cast<Bit>(rng.below(2));
            expected[c] += b;
            seeds.emplace_back(static_cast<RowAddr>(2 * i), c, b);
        }
    }
    TileGrid grid = h.run(prog, seeds);
    for (ColAddr c = 0; c < 8; ++c) {
        EXPECT_EQ(BuilderHarness::readWord(grid, linear, c),
                  expected[c]);
        EXPECT_EQ(BuilderHarness::readWord(grid, tree, c),
                  expected[c]);
    }
    // The tree form must not use more NANDs than the linear form.
    EXPECT_LT(prog.countOpcode(Opcode::kGateNand2), 2000u);
}

TEST(Builder, AsParityReturnsSameValOrFreshCopy)
{
    BuilderHarness h;
    KernelBuilder kb = h.makeBuilder(8);
    kb.activate(0, 0);
    const Val even = kb.pinned(0);
    const Val same = kb.asParity(even, 0);
    EXPECT_EQ(same.row, even.row);  // no copy made
    const Val flipped = kb.asParity(even, 1);
    EXPECT_NE(flipped.row, even.row);
    EXPECT_EQ(flipped.parity(), 1u);
}

TEST(RowAllocatorTest, AllocNearPicksClosestFreeRow)
{
    RowAllocator rows(64, 0);
    const RowAddr near40 = rows.allocNear(0, 40);
    EXPECT_EQ(near40, 40);
    // 40 is taken; next-closest even rows are 38/42.
    const RowAddr next = rows.allocNear(0, 40);
    EXPECT_TRUE(next == 38 || next == 42);
    const RowAddr odd = rows.allocNear(1, 0);
    EXPECT_EQ(odd, 1);
    rows.release(near40);
    EXPECT_EQ(rows.allocNear(0, 41), 40);
}

TEST(Builder, TraceFromProgramMatchesCycleCount)
{
    BuilderHarness h;
    KernelBuilder kb = h.makeBuilder(32);
    kb.activate(0, 3);
    const Word a = kb.pinnedWord(0, 4);
    const Word b = kb.pinnedWord(8, 4);
    Word s = kb.add(a, b);
    (void)s;
    const Program prog = kb.finish();
    const Trace trace = Trace::fromProgram(prog, h.config());
    // HALT is excluded from the trace; everything else is 1 cycle.
    EXPECT_EQ(trace.totalInstructions(), prog.size() - 1);
    // All gate/preset blocks ran with 4 active columns.
    for (const TraceBlock &blk : trace.blocks) {
        if (isGateOpcode(blk.op) || blk.op == Opcode::kPreset0 ||
            blk.op == Opcode::kPreset1) {
            EXPECT_EQ(blk.touchedCols, 4u);
        }
    }
}

} // namespace
} // namespace mouse
