/**
 * @file
 * Tests for the parallel experiment engine: grid decoding, SplitMix
 * seed derivation, the forEach/map pool primitives, and — the
 * load-bearing property — bit-identical RunStats per grid point
 * regardless of thread count.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <set>

#include "exp/names.hh"
#include "exp/runner.hh"

namespace mouse
{
namespace
{

exp::SweepGrid
smallGrid()
{
    exp::SweepGrid grid;
    grid.techs = {TechConfig::ProjectedStt, TechConfig::ModernStt};
    // SVM ADULT: the smallest paper workload, keeps the test fast.
    grid.benchmarks = {exp::paperBenchmarks()[3]};
    grid.powers = {exp::kContinuousPower, 60e-6, 500e-6};
    grid.checkpointPeriods = {1u, 8u};
    grid.seedsPerPoint = 2;
    grid.rootSeed = 42;
    return grid;
}

TEST(SweepGrid, SizeIsAxisProduct)
{
    const exp::SweepGrid grid = smallGrid();
    EXPECT_EQ(grid.size(), 2u * 1u * 3u * 2u * 1u * 2u);
}

TEST(SweepGrid, DecodeRoundTripsEveryIndex)
{
    const exp::SweepGrid grid = smallGrid();
    std::size_t seen_continuous = 0;
    for (std::size_t i = 0; i < grid.size(); ++i) {
        const exp::SweepPoint p = grid.at(i);
        EXPECT_EQ(p.index, i);
        EXPECT_LT(p.benchmark, grid.benchmarks.size());
        EXPECT_LT(p.seedSlot, grid.seedsPerPoint);
        seen_continuous += p.continuous();
        // Index encodes coordinates: rebuild it from the decoded
        // axis positions.
        std::size_t tech_idx = p.tech == grid.techs[0] ? 0u : 1u;
        std::size_t power_idx = 0;
        while (grid.powers[power_idx] != p.power) {
            ++power_idx;
        }
        std::size_t cp_idx =
            p.checkpointPeriod == grid.checkpointPeriods[0] ? 0u
                                                            : 1u;
        const std::size_t rebuilt =
            (((tech_idx * grid.benchmarks.size() + p.benchmark) *
                  grid.powers.size() +
              power_idx) *
                 grid.checkpointPeriods.size() +
             cp_idx) *
                grid.seedsPerPoint +
            p.seedSlot;
        EXPECT_EQ(rebuilt, i);
    }
    // One continuous power entry x the other axes.
    EXPECT_EQ(seen_continuous, grid.size() / grid.powers.size());
}

TEST(SweepGrid, DerivedSeedsAreStableAndDistinct)
{
    // Stability: the derivation is part of the reproducibility
    // contract, so pin exact values.
    EXPECT_EQ(exp::deriveSeed(42, 0), exp::deriveSeed(42, 0));
    EXPECT_NE(exp::deriveSeed(42, 0), exp::deriveSeed(42, 1));
    EXPECT_NE(exp::deriveSeed(42, 0), exp::deriveSeed(43, 0));
    std::set<std::uint64_t> seeds;
    for (std::uint64_t i = 0; i < 1000; ++i) {
        seeds.insert(exp::deriveSeed(7, i));
    }
    EXPECT_EQ(seeds.size(), 1000u);
}

TEST(SweepGrid, HarvestForAppliesPointAndBase)
{
    exp::SweepGrid grid = smallGrid();
    grid.harvestBase.converterEfficiency = 0.9;
    grid.harvestBase.nonTerminationLimit = 3;
    const exp::SweepPoint p = grid.at(grid.size() - 1);
    const HarvestConfig h = grid.harvestFor(p);
    EXPECT_EQ(h.source, p.source);
    EXPECT_EQ(h.checkpointPeriod, p.checkpointPeriod);
    EXPECT_EQ(h.seed, p.seed);
    EXPECT_EQ(h.converterEfficiency, 0.9);
    EXPECT_EQ(h.nonTerminationLimit, 3u);
}

// -- Scenario axes (docs/HARVESTING.md) -----------------------------

/** smallGrid with the powers axis replaced by scenario sources and a
 *  platform axis added. */
exp::SweepGrid
scenarioGrid()
{
    exp::SweepGrid grid = smallGrid();
    grid.powers.clear();
    grid.sources = {SourceSpec::constant(60e-6),
                    SourceSpec::corpusTrace("rf-bursty"),
                    SourceSpec::square(0.01, 0.3, 200e-6)};
    grid.platforms = {"mementos", "nvp"};
    return grid;
}

TEST(SweepGrid, SourcesAxisReplacesPowersInTheSizeProduct)
{
    const exp::SweepGrid grid = scenarioGrid();
    // techs x benchmarks x platforms x sources x periods x seeds.
    EXPECT_EQ(grid.size(), 2u * 1u * 2u * 3u * 2u * 1u * 2u);

    // An empty platforms axis contributes radix 1, so classic grids
    // keep their historical index -> point mapping (and seeds).
    exp::SweepGrid classic = smallGrid();
    const std::size_t before = classic.size();
    classic.platforms.clear();
    EXPECT_EQ(classic.size(), before);
}

TEST(SweepGrid, ScenarioDecodeCoversEveryCell)
{
    const exp::SweepGrid grid = scenarioGrid();
    std::set<std::string> cells;
    for (std::size_t i = 0; i < grid.size(); ++i) {
        const exp::SweepPoint p = grid.at(i);
        EXPECT_EQ(p.index, i);
        EXPECT_TRUE(p.scenario);
        EXPECT_FALSE(p.continuous());
        EXPECT_LT(p.sourceSlot, grid.sources.size());
        EXPECT_EQ(p.source, grid.sources[p.sourceSlot]);
        // The headline power is the source's duty-weighted mean.
        EXPECT_EQ(p.power, p.source.meanPower());
        cells.insert(p.source.name() + "/" + p.platform);
    }
    // Every (source, platform) pair appears.
    EXPECT_EQ(cells.size(),
              grid.sources.size() * grid.platforms.size());
}

TEST(SweepGrid, HarvestForCarriesSourceAndPlatform)
{
    const exp::SweepGrid grid = scenarioGrid();
    bool saw_platform = false;
    for (std::size_t i = 0; i < grid.size(); ++i) {
        const exp::SweepPoint p = grid.at(i);
        const HarvestConfig h = grid.harvestFor(p);
        EXPECT_EQ(h.source, p.source);
        EXPECT_EQ(h.platform, p.platform);
        saw_platform |= !h.platform.empty();
    }
    EXPECT_TRUE(saw_platform);
}

TEST(ExperimentRunner, ForEachVisitsEveryIndexOnce)
{
    const exp::ExperimentRunner runner(4);
    constexpr std::size_t kCount = 257;
    std::vector<std::atomic<int>> visits(kCount);
    runner.forEach(kCount, [&](std::size_t i) {
        visits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < kCount; ++i) {
        EXPECT_EQ(visits[i].load(), 1);
    }
}

TEST(ExperimentRunner, MapKeepsResultsIndexOrdered)
{
    const exp::ExperimentRunner runner(8);
    const auto out = runner.map(
        100, [](std::size_t i) { return 3 * i + 1; });
    ASSERT_EQ(out.size(), 100u);
    for (std::size_t i = 0; i < out.size(); ++i) {
        EXPECT_EQ(out[i], 3 * i + 1);
    }
}

TEST(ExperimentRunner, ZeroThreadsMeansHardwareConcurrency)
{
    const exp::ExperimentRunner runner(0);
    EXPECT_GE(runner.threads(), 1u);
}

TEST(ExperimentRunner, StatsAreIdenticalAcrossThreadCounts)
{
    const exp::SweepGrid grid = smallGrid();
    const exp::SweepResult serial =
        exp::ExperimentRunner(1).run(grid);
    const exp::SweepResult parallel =
        exp::ExperimentRunner(8).run(grid);
    ASSERT_EQ(serial.points.size(), grid.size());
    ASSERT_EQ(parallel.points.size(), grid.size());
    for (std::size_t i = 0; i < grid.size(); ++i) {
        const RunStats &a = serial.points[i].stats;
        const RunStats &b = parallel.points[i].stats;
        // Bit-identical, not approximately equal: the point's inputs
        // depend only on its grid index.
        EXPECT_EQ(a.instructionsCommitted, b.instructionsCommitted);
        EXPECT_EQ(a.instructionsDead, b.instructionsDead);
        EXPECT_EQ(a.outages, b.outages);
        EXPECT_EQ(a.activeTime, b.activeTime);
        EXPECT_EQ(a.deadTime, b.deadTime);
        EXPECT_EQ(a.restoreTime, b.restoreTime);
        EXPECT_EQ(a.chargingTime, b.chargingTime);
        EXPECT_EQ(a.computeEnergy, b.computeEnergy);
        EXPECT_EQ(a.backupEnergy, b.backupEnergy);
        EXPECT_EQ(a.deadEnergy, b.deadEnergy);
        EXPECT_EQ(a.restoreEnergy, b.restoreEnergy);
        EXPECT_EQ(a.idleEnergy, b.idleEnergy);
        // Metadata is schedule-independent too.
        EXPECT_EQ(serial.points[i].meta.tech,
                  parallel.points[i].meta.tech);
        EXPECT_EQ(serial.points[i].meta.seed,
                  parallel.points[i].meta.seed);
        EXPECT_EQ(serial.points[i].meta.index, i);
    }
    // And the JSON (minus wall clocks) diffs clean: spot-check one
    // point's stats serialization.
    EXPECT_EQ(toJson(serial.points[3].stats),
              toJson(parallel.points[3].stats));
}

TEST(ExperimentRunner, ScenarioSweepIsByteIdenticalAcrossThreads)
{
    // Corpus traces and platform presets must not break schedule
    // determinism: serialize every point of a scenario sweep (stats
    // and provenance, no wall clocks) and require identical bytes
    // from 1 and 4 worker threads — the same contract CI enforces
    // on bench_scenario_matrix.
    const exp::SweepGrid grid = scenarioGrid();
    const auto render = [&](const exp::SweepResult &res) {
        std::string doc;
        for (const RunResult &r : res.points) {
            doc += r.meta.source + "/" + r.meta.platform + "/" +
                   std::to_string(r.meta.seed) + ":" +
                   toJson(r.stats) + "\n";
        }
        return doc;
    };
    const std::string serial =
        render(exp::ExperimentRunner(1).run(grid));
    const std::string parallel =
        render(exp::ExperimentRunner(4).run(grid));
    EXPECT_EQ(serial, parallel);
    EXPECT_NE(serial.find("rf-bursty/nvp"), std::string::npos);
}

TEST(ExperimentRunner, CheckpointPeriodAxisChangesBackupEnergy)
{
    exp::SweepGrid grid;
    grid.techs = {TechConfig::ModernStt};
    grid.benchmarks = {exp::paperBenchmarks()[3]};
    grid.powers = {60e-6};
    grid.checkpointPeriods = {1u, 256u};
    const exp::SweepResult res = exp::ExperimentRunner(2).run(grid);
    ASSERT_EQ(res.points.size(), 2u);
    // Wider checkpoint period amortizes the per-cycle backup cost.
    EXPECT_GT(res.points[0].stats.backupEnergy,
              res.points[1].stats.backupEnergy);
}

TEST(Names, TechKeysRoundTrip)
{
    for (TechConfig tech : names::allTechs()) {
        const auto parsed = names::parseTech(names::techName(tech));
        ASSERT_TRUE(parsed.has_value());
        EXPECT_EQ(*parsed, tech);
    }
    EXPECT_FALSE(names::parseTech("not-a-tech").has_value());
}

TEST(Names, BenchmarkKeysAlignWithPaperBenchmarks)
{
    const auto &keys = names::listBenchmarks();
    ASSERT_EQ(keys.size(), exp::paperBenchmarks().size());
    for (std::size_t i = 0; i < keys.size(); ++i) {
        const auto idx = names::benchmarkIndex(keys[i]);
        ASSERT_TRUE(idx.has_value());
        EXPECT_EQ(*idx, i);
    }
    EXPECT_FALSE(names::benchmarkIndex("nope").has_value());
}

} // namespace
} // namespace mouse
