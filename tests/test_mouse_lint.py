#!/usr/bin/env python3
"""ctest driver for tools/mouse_lint.py.

Runs the lint over the fixture corpus in tests/lint_fixtures/ and
asserts, per rule, that the known-bad snippets produce exactly the
expected findings, that the known-good snippets stay silent, that
suppression comments behave (justified allows suppress, malformed
allows are findings), and that the JSON report schema holds.  Also
the clean-tree gate: the real src/ and tools/ must lint clean.
"""

import json
import os
import subprocess
import sys
import unittest

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
LINT = os.path.join(REPO, "tools", "mouse_lint.py")
FIXTURES = os.path.join(REPO, "tests", "lint_fixtures")


def run_lint(*args):
    proc = subprocess.run(
        [sys.executable, LINT, *args],
        capture_output=True, text=True)
    return proc


def lint_fixtures_json():
    proc = run_lint("--root", FIXTURES, "--json",
                    os.path.join(FIXTURES, "src"))
    report = json.loads(proc.stdout)
    return proc, report


class LintFixtureCorpus(unittest.TestCase):
    @classmethod
    def setUpClass(cls):
        cls.proc, cls.report = lint_fixtures_json()
        cls.findings = [(f["file"], f["line"], f["rule"])
                        for f in cls.report["findings"]]
        cls.by_file = {}
        for f in cls.report["findings"]:
            cls.by_file.setdefault(f["file"], []).append(f)

    def expect(self, path, line, rule):
        self.assertIn((path, line, rule), self.findings)

    def test_exit_2_on_findings(self):
        self.assertEqual(self.proc.returncode, 2, self.proc.stderr)

    def test_unordered_iteration_bad(self):
        self.expect("src/exp/bad_unordered_iteration.cc", 12,
                    "unordered-iteration")
        self.expect("src/exp/bad_unordered_iteration.cc", 22,
                    "unordered-iteration")

    def test_host_clock_bad(self):
        path = "src/sim/bad_host_clock.cc"
        rules = [f["line"] for f in self.by_file[path]]
        self.assertEqual(sorted(rules), [11, 12, 13, 14])
        self.assertTrue(all(f["rule"] == "host-clock"
                            for f in self.by_file[path]))

    def test_schema_constants_bad(self):
        path = "src/core/bad_schema_literal.cc"
        self.expect(path, 9, "schema-constants")
        self.expect(path, 18, "schema-constants")
        self.expect(path, 29, "schema-constants")

    def test_obs_hook_bad(self):
        self.expect("src/sim/bad_obs_hook.cc", 22, "obs-hook-args")
        self.expect("src/sim/bad_obs_hook.cc", 23, "obs-hook-args")

    def test_float_accumulate_bad(self):
        self.expect("src/obs/bad_float_accumulate.cc", 10,
                    "float-accumulate")
        self.expect("src/obs/bad_float_accumulate.cc", 16,
                    "float-accumulate")

    def test_source_power_bad(self):
        path = "src/sim/bad_source_power.cc"
        self.expect(path, 6, "source-power")
        self.expect(path, 12, "source-power")
        self.expect(path, 13, "source-power")
        # Only the three code mentions: the comment on line 3 is not
        # a finding.
        rules = [f["line"] for f in self.by_file[path]]
        self.assertEqual(sorted(rules), [6, 12, 13])

    def test_source_power_allowed_under_harvest(self):
        self.assertNotIn("src/harvest/allowed_source_power.cc",
                         self.by_file)

    def test_sonic_model_bad(self):
        path = "src/exp/bad_sonic_model.cc"
        # Only the code mention: the comment on line 3 is silent.
        rules = [(f["line"], f["rule"]) for f in self.by_file[path]]
        self.assertEqual(rules, [(11, "sonic-model")])

    def test_sonic_model_allowed_under_baseline(self):
        self.assertNotIn("src/baseline/allowed_sonic_model.cc",
                         self.by_file)

    def test_good_files_are_silent(self):
        good = [p for p in self.by_file
                if "/good_" in p or "/allowed_" in p
                or "/suppressed_" in p]
        self.assertEqual(good, [], self.by_file)

    def test_justified_suppressions_move_to_suppressed(self):
        suppressed = {(f["file"], f["rule"])
                      for f in self.report["suppressed"]}
        self.assertIn(("src/exp/suppressed_unordered.cc",
                       "unordered-iteration"), suppressed)
        self.assertIn(("src/serve/allowed_host_clock.cc",
                       "host-clock"), suppressed)

    def test_unjustified_allow_keeps_finding(self):
        self.expect("src/exp/bad_suppressions.cc", 12, "suppression")
        self.expect("src/exp/bad_suppressions.cc", 13,
                    "unordered-iteration")

    def test_unknown_rule_and_unused_allow_are_findings(self):
        self.expect("src/exp/bad_suppressions.cc", 19, "suppression")
        self.expect("src/exp/bad_suppressions.cc", 22, "suppression")

    def test_host_clock_allow_refused_outside_obs_serve(self):
        path = "src/sim/bad_host_clock_suppressed.cc"
        self.expect(path, 9, "suppression")
        self.expect(path, 10, "host-clock")


class LintReportSchema(unittest.TestCase):
    @classmethod
    def setUpClass(cls):
        cls.proc, cls.report = lint_fixtures_json()

    def test_document_shape(self):
        r = self.report
        self.assertEqual(r["lint_schema"], 1)
        self.assertIsInstance(r["files_scanned"], int)
        self.assertGreater(r["files_scanned"], 0)
        self.assertIsInstance(r["rules"], list)
        rule_ids = {x["id"] for x in r["rules"]}
        self.assertEqual(rule_ids, {
            "unordered-iteration", "host-clock", "schema-constants",
            "obs-hook-args", "float-accumulate", "source-power",
            "sonic-model"})
        for x in r["rules"]:
            self.assertTrue(x["description"])

    def test_finding_shape(self):
        for f in self.report["findings"] + self.report["suppressed"]:
            self.assertEqual(
                sorted(f), ["file", "line", "message", "rule",
                            "snippet"])
            self.assertIsInstance(f["line"], int)
            self.assertNotIn("\\", f["file"].replace("\\\"", ""))
            self.assertFalse(os.path.isabs(f["file"]))

    def test_findings_sorted(self):
        keys = [(f["file"], f["line"], f["rule"])
                for f in self.report["findings"]]
        self.assertEqual(keys, sorted(keys))


class LintInterface(unittest.TestCase):
    def test_good_only_run_exits_zero(self):
        proc = run_lint(
            "--root", FIXTURES,
            os.path.join(FIXTURES, "src/exp/good_unordered_lookup.cc"),
            os.path.join(FIXTURES, "src/sim/good_obs_hook.cc"),
            os.path.join(FIXTURES, "src/obs/good_fixed_fold.cc"),
            os.path.join(FIXTURES, "src/core/good_schema_constant.cc"))
        self.assertEqual(proc.returncode, 0,
                         proc.stdout + proc.stderr)

    def test_single_rule_scoping(self):
        proc = run_lint("--root", FIXTURES, "--json",
                        "--rule", "host-clock",
                        os.path.join(FIXTURES, "src"))
        report = json.loads(proc.stdout)
        self.assertTrue(report["findings"])
        self.assertTrue(all(f["rule"] in ("host-clock", "suppression")
                            for f in report["findings"]))

    def test_unknown_rule_flag_is_operational_error(self):
        proc = run_lint("--rule", "nope")
        self.assertEqual(proc.returncode, 1, proc.stderr)

    def test_missing_path_is_operational_error(self):
        proc = run_lint(os.path.join(FIXTURES, "does_not_exist"))
        self.assertEqual(proc.returncode, 1, proc.stderr)

    def test_explicit_missing_compile_db_is_operational_error(self):
        # The implicit build/compile_commands.json default may be
        # absent, but a path the user named must exist.
        proc = run_lint("--compile-commands", "/nowhere/cc.json")
        self.assertEqual(proc.returncode, 1, proc.stderr)
        self.assertIn("compile_commands", proc.stderr)

    def test_list_rules(self):
        proc = run_lint("--list-rules")
        self.assertEqual(proc.returncode, 0)
        self.assertIn("unordered-iteration:", proc.stdout)

    def test_real_tree_is_clean(self):
        proc = run_lint()
        self.assertEqual(
            proc.returncode, 0,
            "the real tree must lint clean:\n" + proc.stdout)


if __name__ == "__main__":
    unittest.main(verbosity=2)
