// Fixture: emitters and checks that reference the centralized
// constants lint clean.
#include <string>

namespace mouse::schema {
inline constexpr int kResultSchemaVersion = 4;
inline constexpr int kMetricsSchemaVersion = 1;
} // namespace mouse::schema

std::string
emit()
{
    std::string j = "{\"schema\":" +
                    std::to_string(mouse::schema::kResultSchemaVersion);
    j += "}";
    return j;
}

bool scanNumber(const std::string &text, const char *key, double *v);

bool
check(const std::string &text)
{
    double v = 0.0;
    return scanNumber(text, "metrics_schema", &v) &&
           v == mouse::schema::kMetricsSchemaVersion;
}
