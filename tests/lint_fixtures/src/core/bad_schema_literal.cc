// Fixture: schema versions inlined at the emitter — both the literal
// digit in the string and the emitter that versions through a plain
// variable must be flagged by schema-constants.
#include <string>

std::string
emitInlineDigit()
{
    std::string j = "{\"schema\":4"; // finding: inline number
    j += "}";
    return j;
}

std::string
emitThroughVariable(int version)
{
    std::string j =
        "{\"report_schema\":" + std::to_string(version); // finding
    j += "}";
    return j;
}

bool scanNumber(const std::string &text, const char *key, double *v);

bool
checkAgainstLiteral(const std::string &text)
{
    double v = 0.0;
    return scanNumber(text, "metrics_schema", &v) &&
           v == 1.0; // finding: compare against the constant instead
}
