// Fixture: direct SonicModel construction outside src/baseline must
// be flagged by sonic-model.  A mention in a comment is fine:
// SonicModel here is not a finding.
struct SonicBenchmark
{
};

double
runReference(const SonicBenchmark &bench)
{
    SonicModel sonic(bench);          // finding (construction)
    return sonic.runContinuous();     // ok (member call, no name)
}
