// Fixture: membership queries and point lookups on unordered
// containers are fine — only iteration leaks hash order.
#include <cstdint>
#include <unordered_set>

bool
hazard(const std::unordered_set<std::uint64_t> &windowReads,
       std::uint64_t row)
{
    return windowReads.count(row) != 0;
}

void
record(std::unordered_set<std::uint64_t> &windowReads,
       std::uint64_t row)
{
    windowReads.insert(row);
    if (windowReads.size() > 4096) {
        windowReads.clear();
    }
}
