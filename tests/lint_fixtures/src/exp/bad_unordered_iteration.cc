// Fixture: iteration over unordered containers in an order-sensitive
// subsystem.  Both the range-for and the explicit iterator must be
// flagged by unordered-iteration.
#include <string>
#include <unordered_map>
#include <unordered_set>

double
foldStats(const std::unordered_map<std::string, double> &byName)
{
    double sum = 0.0;
    for (const auto &kv : byName) { // finding: range-for
        sum += kv.second;
    }
    return sum;
}

std::size_t
walkSet(const std::unordered_set<int> &seen)
{
    std::size_t n = 0;
    for (auto it = seen.begin(); it != seen.end(); ++it) { // finding
        ++n;
    }
    return n;
}
