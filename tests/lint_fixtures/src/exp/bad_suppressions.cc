// Fixture: malformed suppressions.  An allow() without a
// justification keeps the original finding AND adds a
// [suppression] finding; an allow() naming an unknown rule and an
// allow() covering nothing are each their own finding.
#include <string>
#include <unordered_map>

double
foldNoReason(const std::unordered_map<std::string, double> &m)
{
    double sum = 0.0;
    // mouse-lint: allow(unordered-iteration)
    for (const auto &kv : m) { // finding survives: no justification
        sum += kv.second;
    }
    return sum;
}

// mouse-lint: allow(made-up-rule) -- not a rule          (finding)
int unknownRule = 0;

// mouse-lint: allow(host-clock) -- nothing to suppress   (finding)
int unusedAllow = 0;
