// Fixture: a justified allow() turns the finding into a suppression
// (reported in the JSON "suppressed" list, not "findings").
#include <string>
#include <unordered_map>

std::size_t
countLong(const std::unordered_map<std::string, int> &m)
{
    std::size_t n = 0;
    // mouse-lint: allow(unordered-iteration) -- order-independent
    // count; no value, stat or JSON document depends on visit order.
    for (const auto &kv : m) {
        n += kv.first.size() > 8 ? 1 : 0;
    }
    return n;
}
