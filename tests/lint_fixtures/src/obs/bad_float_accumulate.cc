// Fixture: floating-point folds through <numeric> algorithms in an
// order-sensitive subsystem — container-order association breaks
// cross-thread-count bit-identity.
#include <numeric>
#include <vector>

double
sumLatencies(const std::vector<double> &v)
{
    return std::accumulate(v.begin(), v.end(), 0.0); // finding
}

double
sumEnergies(const std::vector<float> &v)
{
    return std::reduce(v.begin(), v.end(), 0.0f); // finding
}
