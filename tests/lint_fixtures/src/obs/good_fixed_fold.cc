// Fixture: integer accumulation and explicit index-ordered FP folds
// are the sanctioned shapes.
#include <cstdint>
#include <numeric>
#include <vector>

std::int64_t
countEvents(const std::vector<std::int64_t> &v)
{
    return std::accumulate(v.begin(), v.end(), std::int64_t{0});
}

double
foldInIndexOrder(const std::vector<double> &perPoint)
{
    double sum = 0.0;
    for (std::size_t i = 0; i < perPoint.size(); ++i) {
        sum += perPoint[i];
    }
    return sum;
}
