// Fixture: the retired scalar harvest field must be flagged by
// source-power anywhere outside src/harvest.  A mention in a
// comment is fine: sourcePower here is not a finding.
struct HarvestConfig
{
    double sourcePower = 60e-6; // finding (declaration)
};

double
configureHarvest(HarvestConfig &cfg)
{
    cfg.sourcePower = 500e-6; // finding (assignment)
    return cfg.sourcePower;   // finding (read)
}
