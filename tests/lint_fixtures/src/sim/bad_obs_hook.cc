// Fixture: MOUSE_OBS_HOOK gates that run code even when telemetry is
// off — a call expression and an allocating expression — must be
// flagged by obs-hook-args.
struct Probe {
    void tick();
};
struct Telemetry {
    Probe *probe;
};
#define MOUSE_OBS_HOOK(telem, stmt) \
    do {                            \
        if (telem) {                \
            stmt;                   \
        }                           \
    } while (0)

Telemetry *lookupTelemetry();

void
step(Telemetry *telem)
{
    MOUSE_OBS_HOOK(lookupTelemetry(), telem->probe->tick()); // finding
    MOUSE_OBS_HOOK(telem && lookupTelemetry(),
                   telem->probe->tick()); // finding
}
