// Fixture: every ambient-nondeterminism source must be flagged by
// host-clock in simulated code paths.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

double
seedFromHost()
{
    auto wall = std::chrono::system_clock::now(); // finding
    int r = rand();                               // finding
    std::random_device rd;                        // finding
    long t = time(nullptr);                       // finding
    return static_cast<double>(r + t) + rd() +
           wall.time_since_epoch().count();
}
