// Fixture: allow(host-clock) is refused outside src/obs and
// src/serve — the original finding stays AND the misplaced allow is
// its own finding.
#include <ctime>

long
notATimingSpan()
{
    // mouse-lint: allow(host-clock) -- wall time for a log banner
    return time(nullptr);
}
