// Fixture: plain identifier / member-chain gates are the zero-cost
// discipline; the gated statement itself may do anything.
#include <memory>
#include <string>

struct Probe {
    void note(const std::string &s);
};
struct Telemetry {
    Probe *probe;
};
#define MOUSE_OBS_HOOK(telem, stmt) \
    do {                            \
        if (telem) {                \
            stmt;                   \
        }                           \
    } while (0)

struct Ctx {
    Telemetry *telem;
    std::shared_ptr<Telemetry> shared;
};

void
step(Ctx &ctx, int n)
{
    MOUSE_OBS_HOOK(ctx.telem,
                   ctx.telem->probe->note("step " + std::to_string(n)));
    MOUSE_OBS_HOOK(ctx.shared.get(),
                   ctx.shared->probe->note("shared"));
}
