// Fixture: src/harvest owns the migration shims, so the retired
// identifier is allowed there without a suppression.
struct LegacyView
{
    double sourcePower = 0.0; // allowed: under src/harvest
};

double
legacySourcePower(const LegacyView &v)
{
    return v.sourcePower;
}
