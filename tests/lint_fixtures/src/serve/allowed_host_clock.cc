// Fixture: host-timing spans in src/serve may read the host clock
// behind a justified allow(); the finding moves to "suppressed".
#include <chrono>

long
hostTimestampForSpan()
{
    // mouse-lint: allow(host-clock) -- host-timeline span timestamp;
    // never feeds simulated results or deterministic reports.
    const auto wall = std::chrono::system_clock::now();
    return wall.time_since_epoch().count();
}
