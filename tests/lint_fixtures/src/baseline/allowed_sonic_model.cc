// Fixture: src/baseline owns the SONIC model and its scheme entry
// points, so direct SonicModel use is allowed there without a
// suppression.
struct SonicBenchmark
{
};

struct SonicModel
{
    explicit SonicModel(const SonicBenchmark &) {}
    double runContinuous() const { return 0.0; }
};

double
sonicRunContinuous(const SonicBenchmark &bench)
{
    return SonicModel(bench).runContinuous();
}
