/**
 * @file
 * Tests for the CRAM gate layer: truth tables, operating-point
 * solving, physical evaluation, and the energy ordering between
 * technologies that drives the paper's headline results.
 */

#include <gtest/gtest.h>

#include "device/network.hh"
#include "logic/gate.hh"
#include "logic/gate_library.hh"
#include "logic/gate_solver.hh"

namespace mouse
{
namespace
{

std::vector<GateType>
allGates()
{
    std::vector<GateType> gates;
    for (int i = 0; i < kNumGateTypes; ++i) {
        gates.push_back(static_cast<GateType>(i));
    }
    return gates;
}

TEST(GateTruth, TwoInputTables)
{
    // inputs packed LSB-first: combo = a | (b << 1)
    const Bit and_expect[4] = {0, 0, 0, 1};
    const Bit or_expect[4] = {0, 1, 1, 1};
    for (unsigned c = 0; c < 4; ++c) {
        EXPECT_EQ(gateTruth(GateType::kAnd2, c), and_expect[c]);
        EXPECT_EQ(gateTruth(GateType::kNand2, c),
                  static_cast<Bit>(!and_expect[c]));
        EXPECT_EQ(gateTruth(GateType::kOr2, c), or_expect[c]);
        EXPECT_EQ(gateTruth(GateType::kNor2, c),
                  static_cast<Bit>(!or_expect[c]));
    }
}

TEST(GateTruth, MajorityAndComplements)
{
    for (unsigned c = 0; c < 8; ++c) {
        const int ones = static_cast<int>((c & 1) + ((c >> 1) & 1) +
                                          ((c >> 2) & 1));
        EXPECT_EQ(gateTruth(GateType::kMaj3, c), ones >= 2 ? 1 : 0);
        EXPECT_EQ(gateTruth(GateType::kMin3, c), ones >= 2 ? 0 : 1);
        EXPECT_EQ(gateTruth(GateType::kAnd3, c), ones == 3 ? 1 : 0);
        EXPECT_EQ(gateTruth(GateType::kNor3, c), ones == 0 ? 1 : 0);
    }
}

TEST(GateTruth, UnaryGates)
{
    EXPECT_EQ(gateTruth(GateType::kBuf, 0), 0);
    EXPECT_EQ(gateTruth(GateType::kBuf, 1), 1);
    EXPECT_EQ(gateTruth(GateType::kNot, 0), 1);
    EXPECT_EQ(gateTruth(GateType::kNot, 1), 0);
}

TEST(GateTruth, PresetIsTheNoSwitchValue)
{
    // By construction every CRAM gate's truth table must equal its
    // preset on at least one combo (hold) and differ on at least one
    // (switch); otherwise it would not be a threshold gate.
    for (GateType g : allGates()) {
        const int n = gateNumInputs(g);
        bool any_hold = false;
        bool any_switch = false;
        for (unsigned c = 0; c < (1u << n); ++c) {
            if (gateShouldSwitch(g, c)) {
                any_switch = true;
            } else {
                any_hold = true;
            }
        }
        EXPECT_TRUE(any_switch) << gateName(g);
        EXPECT_TRUE(any_hold) << gateName(g);
    }
}

class GateSolverTech : public ::testing::TestWithParam<TechConfig>
{
  protected:
    DeviceConfig cfg_ = makeDeviceConfig(GetParam());
};

TEST_P(GateSolverTech, UniversalGatesAreFeasible)
{
    for (GateType g : {GateType::kNand2, GateType::kNot, GateType::kBuf,
                       GateType::kAnd2}) {
        const SolvedGate s = solveGate(cfg_, g);
        EXPECT_TRUE(s.feasible) << gateName(g);
        EXPECT_GT(s.voltage, 0.0);
        EXPECT_LT(s.vMin, s.vMax);
    }
}

TEST_P(GateSolverTech, PhysicalEvaluationMatchesTruthWhenFeasible)
{
    for (GateType g : allGates()) {
        const SolvedGate s = solveGate(cfg_, g);
        if (!s.feasible) {
            continue;
        }
        const int n = gateNumInputs(g);
        for (unsigned c = 0; c < (1u << n); ++c) {
            EXPECT_EQ(gatePhysicalOutput(cfg_, g, s.voltage, c),
                      gateTruth(g, c))
                << gateName(g) << " combo " << c << " on "
                << cfg_.name();
        }
    }
}

TEST_P(GateSolverTech, EnergiesArePositiveAndBounded)
{
    for (GateType g : allGates()) {
        const SolvedGate s = solveGate(cfg_, g);
        if (!s.feasible) {
            continue;
        }
        const int n = gateNumInputs(g);
        for (unsigned c = 0; c < (1u << n); ++c) {
            EXPECT_GT(s.energyByCombo[c], 0.0);
            EXPECT_LE(s.energyByCombo[c], s.worstEnergy);
        }
        EXPECT_LE(s.avgEnergy, s.worstEnergy);
        // Single-gate pulses are deep sub-picojoule for projected
        // devices and sub-pJ for modern: sanity-bound at 1 pJ.
        EXPECT_LT(s.worstEnergy, 1e-12) << gateName(g);
    }
}

TEST_P(GateSolverTech, MarginSweepMonotone)
{
    // Widening the required margin can only remove feasibility.
    for (GateType g : allGates()) {
        bool was_feasible = true;
        for (double margin : {0.01, 0.05, 0.10, 0.20, 0.40}) {
            const bool feasible = solveGate(cfg_, g, margin).feasible;
            if (!was_feasible) {
                EXPECT_FALSE(feasible) << gateName(g);
            }
            was_feasible = feasible;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(AllTechs, GateSolverTech,
                         ::testing::Values(TechConfig::ModernStt,
                                           TechConfig::ProjectedStt,
                                           TechConfig::ProjectedShe),
                         [](const auto &info) {
                             switch (info.param) {
                               case TechConfig::ModernStt:
                                 return "ModernStt";
                               case TechConfig::ProjectedStt:
                                 return "ProjectedStt";
                               default:
                                 return "ProjectedShe";
                             }
                         });

TEST(GateLibrary, ProjectedBeatsModernOnEnergy)
{
    const GateLibrary modern(makeDeviceConfig(TechConfig::ModernStt));
    const GateLibrary projected(
        makeDeviceConfig(TechConfig::ProjectedStt));
    EXPECT_LT(projected.gateAvgEnergy(GateType::kNand2),
              modern.gateAvgEnergy(GateType::kNand2) / 10.0);
    EXPECT_LT(projected.writeOp().energy, modern.writeOp().energy);
}

TEST(GateLibrary, SheBeatsProjectedSttOnEnergy)
{
    // Section II-D: the SHE channel separates the write path, cutting
    // gate and write energy further.
    const GateLibrary stt(makeDeviceConfig(TechConfig::ProjectedStt));
    const GateLibrary she(makeDeviceConfig(TechConfig::ProjectedShe));
    EXPECT_LT(she.gateAvgEnergy(GateType::kNand2),
              stt.gateAvgEnergy(GateType::kNand2));
    EXPECT_LT(she.writeOp().energy, stt.writeOp().energy);
}

TEST(GateLibrary, SheImprovesGateFeasibility)
{
    // The state-independent output branch widens margins, so SHE
    // supports at least the STT gate set.
    const GateLibrary stt(makeDeviceConfig(TechConfig::ProjectedStt));
    const GateLibrary she(makeDeviceConfig(TechConfig::ProjectedShe));
    for (GateType g : allGates()) {
        if (stt.feasible(g)) {
            EXPECT_TRUE(she.feasible(g)) << gateName(g);
        }
    }
}

TEST(GateLibrary, ReadsAreNonDestructive)
{
    for (auto tech : {TechConfig::ModernStt, TechConfig::ProjectedStt,
                      TechConfig::ProjectedShe}) {
        const GateLibrary lib(makeDeviceConfig(tech));
        const DeviceConfig &cfg = lib.config();
        // The read voltage across the worst-case (lowest resistance)
        // path must stay below the switching current.
        const Amperes i =
            lib.readOp().voltage / readPathResistance(cfg, MtjState::P);
        EXPECT_LT(i, cfg.mtj.switchingCurrent);
    }
}

TEST(GateLibrary, FeasibleGateListNonEmptyAndConsistent)
{
    const GateLibrary lib(makeDeviceConfig(TechConfig::ModernStt));
    const auto gates = lib.feasibleGates();
    EXPECT_FALSE(gates.empty());
    for (GateType g : gates) {
        EXPECT_TRUE(lib.feasible(g));
    }
}

} // namespace
} // namespace mouse
