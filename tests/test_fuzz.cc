/**
 * @file
 * Property fuzzing: randomly generated gate programs executed under
 * continuous power and under harvesting with randomly placed outages
 * must leave identical array contents.  This is the repository's
 * broadest statement of the paper's correctness guarantee — it
 * quantifies over programs, not just hand-written kernels.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "core/accelerator.hh"

namespace mouse
{
namespace
{

MouseConfig
fuzzConfig()
{
    MouseConfig cfg;
    cfg.tech = TechConfig::ProjectedStt;
    cfg.array.tileRows = 96;
    cfg.array.tileCols = 8;
    cfg.array.numDataTiles = 2;
    cfg.array.numInstructionTiles = 256;
    return cfg;
}

/**
 * Generate a random but *well-formed* program: every gate output is
 * preset first, parities respected, occasional re-activation and
 * cross-tile row transfers.
 */
Program
randomProgram(const GateLibrary &lib, Rng &rng, unsigned length)
{
    const std::vector<GateType> usable = [&] {
        std::vector<GateType> v;
        for (GateType g : lib.feasibleGates()) {
            switch (g) {
              case GateType::kBuf:
              case GateType::kNot:
              case GateType::kAnd2:
              case GateType::kNand2:
              case GateType::kOr2:
              case GateType::kNor2:
              case GateType::kMaj3:
              case GateType::kMin3:
                v.push_back(g);
                break;
              default:
                break;  // not ISA-encodable
            }
        }
        return v;
    }();

    Program prog;
    prog.instructions.push_back(Instruction::activateRange(
        0, static_cast<ColAddr>(rng.between(1, 7))));
    for (unsigned i = 0; i < length; ++i) {
        const auto tile = static_cast<TileAddr>(rng.below(2));
        switch (rng.below(10)) {
          case 0:
            prog.instructions.push_back(Instruction::activateRange(
                static_cast<ColAddr>(rng.below(4)),
                static_cast<ColAddr>(4 + rng.below(4))));
            break;
          case 1: {
            // Row transfer between tiles, sometimes with a barrel
            // shift (cross-column transport).
            prog.instructions.push_back(Instruction::readRow(
                tile, static_cast<RowAddr>(rng.below(96))));
            if (rng.chance(0.5)) {
                prog.instructions.push_back(
                    Instruction::writeRowShifted(
                        static_cast<TileAddr>(1 - tile),
                        static_cast<RowAddr>(rng.below(96)),
                        static_cast<ColAddr>(rng.below(8))));
            } else {
                prog.instructions.push_back(Instruction::writeRow(
                    static_cast<TileAddr>(1 - tile),
                    static_cast<RowAddr>(rng.below(96))));
            }
            break;
          }
          default: {
            const GateType g = usable[rng.below(usable.size())];
            const int n = gateNumInputs(g);
            // Inputs on one parity, output on the other.
            const unsigned in_parity = rng.below(2);
            auto row_of = [&](unsigned parity) {
                return static_cast<RowAddr>(
                    2 * rng.below(48) + parity);
            };
            const RowAddr out = row_of(1 - in_parity);
            prog.instructions.push_back(
                Instruction::preset(gatePreset(g), tile, out));
            switch (n) {
              case 1:
                prog.instructions.push_back(Instruction::gate(
                    g, tile, row_of(in_parity), out));
                break;
              case 2:
                prog.instructions.push_back(Instruction::gate(
                    g, tile, row_of(in_parity), row_of(in_parity),
                    out));
                break;
              default:
                prog.instructions.push_back(Instruction::gate(
                    g, tile, row_of(in_parity), row_of(in_parity),
                    row_of(in_parity), out));
                break;
            }
            break;
          }
        }
    }
    prog.instructions.push_back(Instruction::halt());
    return prog;
}

void
randomizeTiles(Accelerator &acc, Rng &rng)
{
    for (TileAddr t = 0; t < 2; ++t) {
        for (RowAddr r = 0; r < 96; ++r) {
            for (ColAddr c = 0; c < 8; ++c) {
                acc.grid().tile(t).setBit(
                    r, c, static_cast<Bit>(rng.below(2)));
            }
        }
    }
}

TEST(Fuzz, HarvestedEqualsContinuousOverRandomPrograms)
{
    const MouseConfig cfg = fuzzConfig();
    for (std::uint64_t trial = 0; trial < 25; ++trial) {
        Rng rng(9000 + trial);
        Accelerator cont(cfg);
        const Program prog = randomProgram(
            cont.gateLibrary(), rng,
            static_cast<unsigned>(20 + rng.below(60)));

        Rng data_rng(500 + trial);
        cont.loadProgram(prog);
        randomizeTiles(cont, data_rng);
        cont.execute(RunRequest{});

        Accelerator harv(cfg);
        Rng data_rng2(500 + trial);
        harv.loadProgram(prog);
        randomizeTiles(harv, data_rng2);
        HarvestConfig harvest;
        harvest.source = SourceSpec::constant(10e-6);
        harvest.capacitanceOverride = 2e-9;  // frequent outages
        harvest.seed = 777 + trial;
        RunRequest req;
        req.power = PowerMode::Harvested;
        req.harvest = harvest;
        const RunStats stats = harv.execute(req).stats;

        ASSERT_EQ(cont.grid().tile(0).snapshot(),
                  harv.grid().tile(0).snapshot())
            << "trial " << trial << " (outages " << stats.outages
            << ")";
        ASSERT_EQ(cont.grid().tile(1).snapshot(),
                  harv.grid().tile(1).snapshot())
            << "trial " << trial;
    }
}

TEST(Fuzz, ReplayingAnyPrefixTwiceIsIdempotent)
{
    // Stronger than single-instruction idempotency: stop after k
    // instructions, re-execute instruction k many times, continue —
    // the final state must match the straight run.  (This is what
    // the PC protocol's at-most-one-repeat guarantees reduce to.)
    const MouseConfig cfg = fuzzConfig();
    for (std::uint64_t trial = 0; trial < 10; ++trial) {
        Rng rng(4242 + trial);
        Accelerator straight(cfg);
        const Program prog =
            randomProgram(straight.gateLibrary(), rng, 30);

        Rng data_rng(100 + trial);
        straight.loadProgram(prog);
        randomizeTiles(straight, data_rng);
        straight.execute(RunRequest{});

        Accelerator replayed(cfg);
        Rng data_rng2(100 + trial);
        replayed.loadProgram(prog);
        randomizeTiles(replayed, data_rng2);
        Rng replay_rng(55 + trial);
        while (!replayed.controller().halted()) {
            if (replay_rng.chance(0.3)) {
                // Force a worst-case commit failure: the instruction
                // fully executes but the PC never advances, then the
                // controller restarts and repeats it.
                replayed.controller().stepInterrupted(
                    MicroStep::kCommit, 1.0);
                replayed.controller().powerLoss();
                replayed.controller().restart();
            } else {
                replayed.controller().step();
            }
        }
        ASSERT_EQ(straight.grid().tile(0).snapshot(),
                  replayed.grid().tile(0).snapshot())
            << "trial " << trial;
        ASSERT_EQ(straight.grid().tile(1).snapshot(),
                  replayed.grid().tile(1).snapshot())
            << "trial " << trial;
    }
}

} // namespace
} // namespace mouse
