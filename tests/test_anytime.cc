/**
 * @file
 * Tests for the anytime-inference extension.
 */

#include <gtest/gtest.h>

#include "ml/anytime.hh"

namespace mouse
{
namespace
{

SvmModel
trainedModel()
{
    const Dataset train =
        makeSynthetic(DataShape::AdultLike, 200, 7, 90.0);
    return trainSvm(train);
}

TEST(Anytime, RankingSortsByCoefficientMagnitude)
{
    const SvmModel ranked = rankByCoefficient(trainedModel());
    for (const BinarySvm &clf : ranked.classifiers) {
        for (std::size_t i = 1; i < clf.coefficients.size(); ++i) {
            EXPECT_GE(std::abs(clf.coefficients[i - 1]),
                      std::abs(clf.coefficients[i]));
        }
    }
}

TEST(Anytime, RankingPreservesPredictions)
{
    const SvmModel model = trainedModel();
    const SvmModel ranked = rankByCoefficient(model);
    const Dataset test =
        makeSynthetic(DataShape::AdultLike, 60, 8, 90.0);
    for (std::size_t i = 0; i < test.size(); ++i) {
        EXPECT_EQ(ranked.predict(test.x[i]), model.predict(test.x[i]));
    }
}

TEST(Anytime, FullFractionIsIdentity)
{
    const SvmModel ranked = rankByCoefficient(trainedModel());
    const SvmModel full = truncateModel(ranked, 1.0);
    EXPECT_EQ(full.totalSupportVectors(),
              ranked.totalSupportVectors());
    const Dataset test =
        makeSynthetic(DataShape::AdultLike, 40, 9, 90.0);
    EXPECT_DOUBLE_EQ(anytimeAccuracy(ranked, 1.0, test),
                     svmAccuracy(ranked, test));
}

TEST(Anytime, TruncationShrinksMonotonically)
{
    const SvmModel ranked = rankByCoefficient(trainedModel());
    std::size_t prev = ranked.totalSupportVectors() + 1;
    for (double f : {1.0, 0.5, 0.25, 0.1}) {
        const SvmModel t = truncateModel(ranked, f);
        EXPECT_LT(t.totalSupportVectors(), prev);
        EXPECT_GE(t.totalSupportVectors(),
                  ranked.classifiers.size());  // ceil keeps >= 1 each
        prev = t.totalSupportVectors();
    }
}

TEST(Anytime, TinyFractionKeepsOnePerClassifier)
{
    const SvmModel ranked = rankByCoefficient(trainedModel());
    const SvmModel t = truncateModel(ranked, 1e-6);
    for (const BinarySvm &clf : t.classifiers) {
        EXPECT_EQ(clf.supportVectors.size(), 1u);
    }
}

} // namespace
} // namespace mouse
