/**
 * @file
 * Tests for the interconnect-parasitics extension (the paper's [95]
 * companion study): wire resistance along the logic line penalizes
 * far-apart operands, shrinking gate windows and eventually killing
 * feasibility — and the solver/array honor the span contract.
 */

#include <gtest/gtest.h>

#include "arch/tile.hh"
#include "device/network.hh"
#include "compile/builder.hh"
#include "logic/gate_library.hh"

namespace mouse
{
namespace
{

TEST(Parasitics, ZeroWireResistanceIsIdentical)
{
    const DeviceConfig ideal = makeDeviceConfig(TechConfig::ModernStt);
    const DeviceConfig parasitic = withParasitics(ideal, 0.0);
    const SolvedGate a = solveGate(ideal, GateType::kNand2);
    const SolvedGate b = solveGate(parasitic, GateType::kNand2,
                                   kDefaultGateMargin, 1023);
    EXPECT_DOUBLE_EQ(a.voltage, b.voltage);
    EXPECT_DOUBLE_EQ(a.vMin, b.vMin);
}

TEST(Parasitics, LogicLineResistanceScalesWithSpan)
{
    const DeviceConfig cfg =
        withParasitics(makeDeviceConfig(TechConfig::ModernStt), 2.0);
    EXPECT_DOUBLE_EQ(logicLineResistance(cfg, 0), 0.0);
    EXPECT_DOUBLE_EQ(logicLineResistance(cfg, 100), 200.0);
    const Ohms near = gateLoopResistance(
        cfg, {MtjState::P, MtjState::P}, MtjState::P, 2);
    const Ohms far = gateLoopResistance(
        cfg, {MtjState::P, MtjState::P}, MtjState::P, 1000);
    EXPECT_NEAR(far - near, 2.0 * 998, 1e-9);
}

TEST(Parasitics, WindowShrinksWithSpan)
{
    const DeviceConfig cfg =
        withParasitics(makeDeviceConfig(TechConfig::ModernStt), 2.0);
    const SolvedGate near = solveGate(cfg, GateType::kNand2,
                                      kDefaultGateMargin, 0);
    const SolvedGate far = solveGate(cfg, GateType::kNand2,
                                     kDefaultGateMargin, 1023);
    ASSERT_TRUE(near.feasible);
    // The switch edge rises with wire in the loop; the hold edge
    // stays (worst hold case is span 0), so the window narrows.
    EXPECT_GT(far.vMin, near.vMin);
    EXPECT_DOUBLE_EQ(far.vMax, near.vMax);
    EXPECT_LT(far.vMax - far.vMin, near.vMax - near.vMin);
}

TEST(Parasitics, EnoughWireKillsFeasibility)
{
    // At some per-cell resistance even NAND2 across a full tile
    // cannot work — the compiler must then place operands close.
    const DeviceConfig cfg = withParasitics(
        makeDeviceConfig(TechConfig::ModernStt), 50.0);
    const SolvedGate near = solveGate(cfg, GateType::kNand2,
                                      kDefaultGateMargin, 8);
    const SolvedGate far = solveGate(cfg, GateType::kNand2,
                                     kDefaultGateMargin, 1023);
    EXPECT_TRUE(near.feasible);
    EXPECT_FALSE(far.feasible);
}

TEST(Parasitics, ArrayExecutionStaysTruthfulWithWires)
{
    // With a realistic 2 Ohm/cell line, gates still compute correct
    // truth tables at any span up to the solved contract.
    const DeviceConfig cfg = withParasitics(
        makeDeviceConfig(TechConfig::ProjectedStt), 2.0);
    const GateLibrary lib(cfg);
    Tile tile(1024, 2);
    ColumnSet cols(2);
    cols.add(0);
    // Far-apart operands: rows 0, 2 -> output row 1001.
    for (unsigned combo = 0; combo < 4; ++combo) {
        tile.setBit(0, 0, combo & 1);
        tile.setBit(2, 0, (combo >> 1) & 1);
        tile.presetRow(lib, 1001, gatePreset(GateType::kNand2), cols);
        tile.executeGate(lib, GateType::kNand2, {0, 2, 0}, 1001,
                         cols);
        EXPECT_EQ(tile.bit(1001, 0),
                  gateTruth(GateType::kNand2, combo))
            << "combo " << combo;
    }
}

TEST(Parasitics, SheToleratesMoreWireThanStt)
{
    // The SHE output path already removed the biggest series
    // resistance, so its windows absorb more wire.
    auto max_span = [](TechConfig tech, Ohms per_cell) {
        const DeviceConfig cfg =
            withParasitics(makeDeviceConfig(tech), per_cell);
        unsigned lo = 0;
        unsigned hi = 4096;
        while (lo < hi) {
            const unsigned mid = lo + (hi - lo + 1) / 2;
            if (solveGate(cfg, GateType::kNand2, kDefaultGateMargin,
                          mid)
                    .feasible) {
                lo = mid;
            } else {
                hi = mid - 1;
            }
        }
        return lo;
    };
    const unsigned stt = max_span(TechConfig::ProjectedStt, 20.0);
    const unsigned she = max_span(TechConfig::ProjectedShe, 20.0);
    EXPECT_GT(she, stt);
}

namespace
{

/** Largest operand row span over a program's gate instructions. */
unsigned
maxGateSpan(const Program &prog)
{
    unsigned worst = 0;
    for (const Instruction &inst : prog.instructions) {
        if (!isGateOpcode(inst.op)) {
            continue;
        }
        const int n = gateNumInputs(gateFromOpcode(inst.op));
        RowAddr lo = inst.outRow;
        RowAddr hi = inst.outRow;
        for (int i = 0; i < n; ++i) {
            lo = std::min(lo, inst.rows[static_cast<std::size_t>(i)]);
            hi = std::max(hi, inst.rows[static_cast<std::size_t>(i)]);
        }
        worst = std::max(worst, static_cast<unsigned>(hi - lo));
    }
    return worst;
}

Program
multiplyAtHighRows(const GateLibrary &lib, bool locality)
{
    ArrayConfig cfg;
    cfg.tileRows = 1024;
    cfg.tileCols = 4;
    cfg.numDataTiles = 1;
    KernelBuilder kb(lib, cfg, 0, 0);
    kb.setPlacementLocality(locality);
    kb.activate(0, 3);
    // Operands pinned high in the tile; a naive allocator pulls
    // scratch from the bottom, stretching every gate's span.
    const Word a = kb.pinnedWord(900, 4);
    const Word b = kb.pinnedWord(950, 4);
    Word p = kb.mulUnsigned(a, b);
    (void)p;
    return kb.finish();
}

} // namespace

TEST(Parasitics, PlacementLocalityShrinksSpans)
{
    const GateLibrary lib(makeDeviceConfig(TechConfig::ProjectedStt));
    const Program naive = multiplyAtHighRows(lib, false);
    const Program local = multiplyAtHighRows(lib, true);
    const unsigned span_naive = maxGateSpan(naive);
    const unsigned span_local = maxGateSpan(local);
    // Naive allocation spans most of the tile; locality keeps gates
    // within the operand neighbourhood.
    EXPECT_GT(span_naive, 500u);
    EXPECT_LT(span_local, 150u);
    // Same gate count either way — locality is free.
    EXPECT_EQ(naive.countOpcode(Opcode::kGateNand2),
              local.countOpcode(Opcode::kGateNand2));
}

TEST(Parasitics, LocalityDefaultsOnWithWires)
{
    ArrayConfig cfg;
    cfg.tileRows = 64;
    cfg.tileCols = 4;
    cfg.numDataTiles = 1;
    const GateLibrary ideal(makeDeviceConfig(TechConfig::ProjectedStt));
    const GateLibrary wired(withParasitics(
        makeDeviceConfig(TechConfig::ProjectedStt), 2.0));
    KernelBuilder kb_ideal(ideal, cfg, 0, 0);
    KernelBuilder kb_wired(wired, cfg, 0, 0);
    EXPECT_FALSE(kb_ideal.placementLocality());
    EXPECT_TRUE(kb_wired.placementLocality());
}

TEST(Parasitics, UnusableWireConfigurationPanics)
{
    // At 50 Ohm/cell the full-tile NAND2 contract collapses; the
    // library refuses to build rather than hand out a gate set the
    // compiler cannot rely on.
    const DeviceConfig cfg = withParasitics(
        makeDeviceConfig(TechConfig::ModernStt), 50.0);
    EXPECT_DEATH({ GateLibrary lib(cfg); }, "unusable");
}

} // namespace
} // namespace mouse
