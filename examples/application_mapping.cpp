/**
 * @file
 * The paper's Figure 8 walk-through: mapping parallel 2-bit integer
 * addition onto MOUSE.
 *
 * Two additions run simultaneously: x = a + b in column 0 and
 * y = c + d in column 1.  The example prints every stage the figure
 * shows — variable-to-row assignment, the generated gate sequence
 * (as MOUSE instructions, disassembled), and the per-instruction
 * execution — then verifies the sums.
 */

#include <cstdio>

#include "core/accelerator.hh"

using namespace mouse;

int
main()
{
    MouseConfig cfg;
    cfg.tech = TechConfig::ProjectedStt;
    cfg.array.tileRows = 64;
    cfg.array.tileCols = 4;
    cfg.array.numDataTiles = 2;
    cfg.array.numInstructionTiles = 64;
    Accelerator acc(cfg);

    // Stage 1 (Figure 8 left): variable assignment.  First addends
    // at rows 0/2, second addends at rows 4/6, sums at rows 8/10/12;
    // scratch comes from the odd rows and higher even rows.
    std::printf("stage 1: variable assignment (tile 1)\n");
    std::printf("  a,c -> rows 0,2   b,d -> rows 4,6   "
                "x,y -> rows of the sum word\n\n");

    KernelBuilder kb(acc.gateLibrary(), cfg.array, /*tile=*/1,
                     /*first_free_row=*/8);
    kb.activate(0, 1);  // columns 0 and 1 compute in parallel
    const Word first = kb.pinnedWord(0, 2);   // rows 0, 2
    const Word second = kb.pinnedWord(4, 2);  // rows 4, 6
    const Word sum = kb.add(first, second);   // 3-bit result
    const Program prog = kb.finish();

    // Stage 2 (Figure 8 middle/right): the gate sequence as MOUSE
    // instructions.
    std::printf("stage 2: generated MOUSE instructions (%zu)\n",
                prog.size());
    for (std::size_t i = 0; i < prog.size(); ++i) {
        std::printf("  %2zu: %s\n", i,
                    prog.instructions[i].disassemble().c_str());
    }

    // Stage 3: execution.  a=2, b=3 in column 0; c=1, d=3 in col 1.
    acc.loadProgram(prog);
    const unsigned a = 2;
    const unsigned b = 3;
    const unsigned c = 1;
    const unsigned d = 3;
    for (unsigned i = 0; i < 2; ++i) {
        acc.grid().tile(1).setBit(static_cast<RowAddr>(2 * i), 0,
                                  (a >> i) & 1);
        acc.grid().tile(1).setBit(static_cast<RowAddr>(4 + 2 * i), 0,
                                  (b >> i) & 1);
        acc.grid().tile(1).setBit(static_cast<RowAddr>(2 * i), 1,
                                  (c >> i) & 1);
        acc.grid().tile(1).setBit(static_cast<RowAddr>(4 + 2 * i), 1,
                                  (d >> i) & 1);
    }
    const RunStats stats = acc.execute(RunRequest{}).stats;

    auto read_sum = [&](ColAddr col) {
        unsigned v = 0;
        for (std::size_t i = 0; i < sum.size(); ++i) {
            v |= static_cast<unsigned>(
                     acc.grid().tile(1).bit(sum[i].row, col))
                 << i;
        }
        return v;
    };
    std::printf("\nstage 3: execution (%llu cycles, %.3f pJ)\n",
                static_cast<unsigned long long>(
                    stats.instructionsCommitted),
                stats.totalEnergy() * 1e12);
    std::printf("  column 0: %u + %u = %u (sum word rows %u/%u/%u)\n",
                a, b, read_sum(0), sum[0].row, sum[1].row,
                sum[2].row);
    std::printf("  column 1: %u + %u = %u\n", c, d, read_sum(1));

    const bool ok = read_sum(0) == a + b && read_sum(1) == c + d;
    std::printf(ok ? "\nOK: both additions correct, computed in the "
                     "same cycles via column parallelism.\n"
                   : "\nFAILURE\n");
    return ok ? 0 : 1;
}
