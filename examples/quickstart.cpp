/**
 * @file
 * Quickstart: build a tiny MOUSE accelerator, compile a multiply
 * kernel with the gate-level builder, run it under continuous power
 * AND under a 60 uW energy harvester with real power outages, and
 * show that both runs produce identical results — the paper's
 * instant-restartability property, in ~80 lines of user code.
 */

#include <cstdio>

#include "core/accelerator.hh"

using namespace mouse;

int
main()
{
    // A small accelerator: 1 data tile of 128x8, projected STT MTJs.
    MouseConfig cfg;
    cfg.tech = TechConfig::ProjectedStt;
    cfg.array.tileRows = 128;
    cfg.array.tileCols = 8;
    cfg.array.numDataTiles = 1;
    cfg.array.numInstructionTiles = 512;
    Accelerator acc(cfg);

    // Compile "product = a * b" for 6-bit operands, executed
    // simultaneously in 4 SIMD columns.
    KernelBuilder kb(acc.gateLibrary(), cfg.array, /*tile=*/0,
                     /*first_free_row=*/24);
    kb.activate(0, 3);
    const Word a = kb.pinnedWord(/*start=*/0, /*bits=*/6);
    const Word b = kb.pinnedWord(/*start=*/12, /*bits=*/6);
    const Word product = kb.mulUnsigned(a, b);
    const Program prog = kb.finish();
    std::printf("compiled multiply kernel: %zu instructions\n",
                prog.size());

    // Seed operands: column c computes (7 + 9c) * (3 + 5c).
    auto seed = [&](Accelerator &m) {
        for (ColAddr c = 0; c < 4; ++c) {
            const unsigned av = 7 + 9u * c;
            const unsigned bv = 3 + 5u * c;
            for (unsigned i = 0; i < 6; ++i) {
                m.grid().tile(0).setBit(
                    static_cast<RowAddr>(2 * i), c, (av >> i) & 1);
                m.grid().tile(0).setBit(
                    static_cast<RowAddr>(12 + 2 * i), c,
                    (bv >> i) & 1);
            }
        }
    };
    auto read_product = [&](Accelerator &m, ColAddr c) {
        unsigned v = 0;
        for (std::size_t i = 0; i < product.size(); ++i) {
            v |= static_cast<unsigned>(
                     m.grid().tile(0).bit(product[i].row, c))
                 << i;
        }
        return v;
    };

    // Run 1: continuous power.
    acc.loadProgram(prog);
    seed(acc);
    RunRequest contReq;
    contReq.power = PowerMode::Continuous;
    const RunStats cont = acc.execute(contReq).stats;
    std::printf("\ncontinuous power:\n%s\n", cont.summary().c_str());

    // Run 2: a 60 uW harvester with a deliberately tiny buffer
    // capacitor, so this small program is interrupted by real
    // outages at arbitrary micro-steps.
    Accelerator harvested(cfg);
    harvested.loadProgram(prog);
    seed(harvested);
    HarvestConfig harvest;
    harvest.source = SourceSpec::constant(60e-6);
    harvest.capacitanceOverride = 200e-12;  // 200 pF demo buffer
    RunRequest harvReq;
    harvReq.power = PowerMode::Harvested;
    harvReq.harvest = harvest;
    const RunStats harv = harvested.execute(harvReq).stats;
    std::printf("\n60 uW harvesting (%llu outages):\n%s\n",
                static_cast<unsigned long long>(harv.outages),
                harv.summary().c_str());

    // Same answers, power failures notwithstanding.
    std::printf("\nresults (continuous vs harvested):\n");
    bool all_match = true;
    for (ColAddr c = 0; c < 4; ++c) {
        const unsigned expect = (7 + 9u * c) * (3 + 5u * c);
        const unsigned v1 = read_product(acc, c);
        const unsigned v2 = read_product(harvested, c);
        std::printf("  col %u: %u vs %u (expected %u)%s\n", c, v1,
                    v2, expect,
                    v1 == expect && v2 == expect ? "" : "  MISMATCH");
        all_match &= v1 == expect && v2 == expect;
    }
    std::printf(all_match ? "\nOK: intermittent execution matched "
                            "continuous execution exactly.\n"
                          : "\nFAILURE: results diverged!\n");
    return all_match ? 0 : 1;
}
