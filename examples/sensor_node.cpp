/**
 * @file
 * A complete batteryless sensor node (paper Section IV-E): sensor ->
 * MOUSE -> transmitter, with the non-volatile valid-bit handshake
 * and power failures striking every phase — including while the
 * sensor itself is staging a sample.
 *
 * The node processes a stream of samples.  For each one it waits for
 * the sensor's valid bit, transfers the sample into the array, runs
 * an in-memory kernel, and transmits the result rows; outages are
 * injected at random ticks and the output is checked against a
 * fault-free software run.
 */

#include <cstdio>

#include "common/rng.hh"
#include "core/pipeline.hh"

using namespace mouse;

namespace
{

constexpr unsigned kCols = 16;

} // namespace

int
main()
{
    MouseConfig cfg;
    cfg.tech = TechConfig::ProjectedShe;
    cfg.array.tileRows = 128;
    cfg.array.tileCols = kCols;
    cfg.array.numDataTiles = 1;
    cfg.array.numInstructionTiles = 512;
    Accelerator acc(cfg);

    // Kernel: out = MAJ3(r0, r2, r4) — a denoising vote over three
    // sensor rows, per column.  (MAJ3 is feasible on SHE cells; the
    // gate table in bench_table2_devices shows modern STT loses it.)
    KernelBuilder kb(acc.gateLibrary(), cfg.array, 0, 16);
    kb.activate(0, kCols - 1);
    const Val vote = kb.gate3(GateType::kMaj3, kb.pinned(0),
                              kb.pinned(2), kb.pinned(4));
    const Program prog = kb.finish();
    acc.loadProgram(prog);
    std::printf("denoising-vote kernel: %zu instructions, output "
                "row %u\n\n",
                prog.size(), vote.row);

    SensorBuffer sensor(kCols);
    Transmitter tx;
    PipelineLayout layout;
    layout.dataTile = 0;
    layout.inputBaseRow = 0;
    layout.outputBaseRow = vote.row;
    layout.outputRows = 1;
    InferencePipeline pipe(acc, sensor, tx, layout);

    Rng rng(2077);
    unsigned correct = 0;
    std::uint64_t outages = 0;
    constexpr unsigned kSamples = 6;
    for (unsigned sample = 0; sample < kSamples; ++sample) {
        // The sensor stages three noisy readings of one bit pattern;
        // with some probability the staging itself is cut short and
        // must be retried (valid bit never set).
        std::vector<Bit> truth(kCols);
        for (unsigned c = 0; c < kCols; ++c) {
            truth[c] = static_cast<Bit>(rng.below(2));
        }
        auto stage = [&]() {
            sensor.beginStage();
            for (int reading = 0; reading < 6; ++reading) {
                if (reading % 2 == 1) {
                    // Odd rows are don't-care spacing (parity rule).
                    sensor.stageRow(std::vector<Bit>(kCols, 0));
                    continue;
                }
                std::vector<Bit> row(kCols);
                for (unsigned c = 0; c < kCols; ++c) {
                    // 10 % per-reading noise; the MAJ3 vote fixes it.
                    row[c] = rng.chance(0.10)
                                 ? static_cast<Bit>(!truth[c])
                                 : truth[c];
                }
                sensor.stageRow(row);
            }
            sensor.commitStage();
        };
        stage();
        if (rng.chance(0.3)) {
            // Outage during staging: the sample is lost, the valid
            // bit stays 0, and the sensor retries.
            sensor.beginStage();
            sensor.stageRow(std::vector<Bit>(kCols, 1));
            pipe.powerLoss();
            pipe.restart();
            std::printf("sample %u: staging interrupted — sensor "
                        "retries\n",
                        sample);
            stage();
        }

        int guard = 0;
        while (!pipe.done()) {
            if (rng.chance(0.05)) {
                pipe.powerLoss();
                pipe.restart();
                ++outages;
                continue;
            }
            pipe.tick();
            if (++guard > 200000) {
                std::printf("stuck!\n");
                return 1;
            }
        }

        // Check the transmitted vote against truth (noise is below
        // the majority threshold in expectation; count matches).
        unsigned match = 0;
        for (unsigned c = 0; c < kCols; ++c) {
            match += tx.row(0)[c] == truth[c];
        }
        std::printf("sample %u: %2u/%u columns denoised correctly\n",
                    sample, match, kCols);
        correct += match == kCols;
        pipe.rearm();
    }
    std::printf("\n%u/%u samples perfectly denoised across %llu "
                "injected outages — the pipeline\nnever delivered a "
                "corrupted or stale result.\n",
                correct, kSamples,
                static_cast<unsigned long long>(outages));
    return 0;
}
