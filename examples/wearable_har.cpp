/**
 * @file
 * Wearable-tech scenario (the paper's HAR motivation): a body-worn
 * activity recognizer powered by a ~60 uW thermal harvester.
 *
 * This example exercises the full-scale performance path: train a
 * HAR-shaped SVM on synthetic data, derive the MOUSE workload from
 * the *trained model's* shape, map it onto a 16 MB accelerator, and
 * sweep harvested power from body heat (60 uW) to an RF harvester
 * (5 mW), reporting classification throughput per configuration.
 */

#include <cstdio>

#include "energy/area_model.hh"
#include "ml/mapping.hh"
#include "sim/simulator.hh"

using namespace mouse;

int
main()
{
    // Offline training on HAR-shaped synthetic data.
    const Dataset train =
        makeSynthetic(DataShape::HarLike, 400, 9, 20.0);
    const Dataset test =
        makeSynthetic(DataShape::HarLike, 160, 10, 20.0);
    const SvmModel model = trainSvm(train);
    std::printf("trained HAR SVM: %zu support vectors across %u "
                "classes, accuracy %.1f%% (synthetic)\n",
                model.totalSupportVectors(), model.numClasses,
                100.0 * svmAccuracy(model, test));

    // Derive the accelerator workload from the trained model.
    const SvmWorkload work = SvmWorkload::fromModel(
        "HAR (wearable)", model, shapeFeatures(DataShape::HarLike),
        8);
    MouseShape shape;
    shape.numDataTiles = 112;  // 16 MB provisioning (Table III)

    std::printf("\n%-14s %12s %14s %16s %12s\n", "config",
                "area(mm2)", "latency@60uW", "inferences/hour",
                "energy(uJ)");
    for (TechConfig tech :
         {TechConfig::ModernStt, TechConfig::ProjectedStt,
          TechConfig::ProjectedShe}) {
        const GateLibrary lib(makeDeviceConfig(tech));
        const EnergyModel energy(lib);
        MappingInfo info;
        const Trace trace = buildSvmTrace(lib, work, shape, &info);
        HarvestConfig harvest;
        harvest.source = SourceSpec::constant(60e-6);
        const RunStats s = runHarvestedTrace(trace, energy, harvest);
        std::printf("%-14s %12.2f %13.1fms %16.0f %12.2f\n",
                    lib.config().name().c_str(),
                    mouseAreaForFootprint(tech, info.totalMB()),
                    s.totalTime() * 1e3, 3600.0 / s.totalTime(),
                    s.totalEnergy() * 1e6);
    }

    // Power sweep on the projected STT configuration.
    const GateLibrary lib(makeDeviceConfig(TechConfig::ProjectedStt));
    const EnergyModel energy(lib);
    const Trace trace = buildSvmTrace(lib, work, shape);
    std::printf("\nProjected STT power sweep:\n%-12s %14s %12s\n",
                "source", "latency (ms)", "outages");
    for (Watts p : {60e-6, 200e-6, 1e-3, 5e-3}) {
        HarvestConfig harvest;
        harvest.source = SourceSpec::constant(p);
        const RunStats s = runHarvestedTrace(trace, energy, harvest);
        std::printf("%9.0f uW %14.2f %12llu\n", p * 1e6,
                    s.totalTime() * 1e3,
                    static_cast<unsigned long long>(s.outages));
    }
    std::printf("\nEven on body heat alone, every configuration "
                "classifies activity many times per\nhour with "
                "microjoule-scale energy per inference.\n");
    return 0;
}
