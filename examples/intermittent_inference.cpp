/**
 * @file
 * End-to-end intermittent inference, the paper's motivating use
 * case: a batteryless sensor node classifies readings with an SVM
 * whose kernel evaluations run *inside* the non-volatile memory,
 * surviving dozens of power outages mid-inference.
 *
 * Pipeline demonstrated:
 *   1. train a polynomial-kernel SVM offline (synthetic 15-feature
 *      census-style data, as in the paper's ADULT benchmark);
 *   2. quantize and load the support vectors into MOUSE columns
 *      (one support vector per column);
 *   3. compile the (sv . x)^2 kernel with the gate-level builder;
 *   4. for each sensor sample: write the input, run under a 60 uW
 *      harvester with real outages, read the per-SV kernels back
 *      and finish the (tiny) weighted sum on the host controller;
 *   5. check every prediction against pure software inference.
 */

#include <cstdio>

#include "core/accelerator.hh"
#include "ml/mapping.hh"

using namespace mouse;

namespace
{

constexpr unsigned kDim = 15;
constexpr unsigned kInputBits = 4;  // demo quantization
constexpr unsigned kAccBits = 14;

/** Quantize 8-bit synthetic features to the demo's 4-bit range. */
Features
quantize(const Features &f)
{
    Features q(f.size());
    for (std::size_t i = 0; i < f.size(); ++i) {
        q[i] = static_cast<std::uint8_t>(f[i] >> 4);
    }
    return q;
}

} // namespace

int
main()
{
    // -- 1. Offline training (the paper trains in R; we train in-repo).
    const Dataset train = makeSynthetic(DataShape::AdultLike, 160, 3);
    const Dataset test = makeSynthetic(DataShape::AdultLike, 24, 4);
    const SvmModel model = trainSvm(train);
    const BinarySvm &clf = model.classifiers[1];  // class-1 detector
    const unsigned num_sv = static_cast<unsigned>(
        std::min<std::size_t>(clf.supportVectors.size(), 32));
    std::printf("trained SVM: %zu support vectors, using %u\n",
                clf.supportVectors.size(), num_sv);

    // -- 2. Accelerator with one SV per column.
    MouseConfig cfg;
    cfg.tech = TechConfig::ProjectedStt;
    cfg.array.tileRows = 512;
    cfg.array.tileCols = 32;
    cfg.array.numDataTiles = 1;
    cfg.array.numInstructionTiles = 4096;
    Accelerator acc(cfg);

    const RowAddr sv_base = 0;
    const RowAddr x_base =
        static_cast<RowAddr>(kDim * 2 * kInputBits);
    const unsigned first_free = 2 * kDim * 2 * kInputBits + 8;

    // -- 3. Compile the kernel program once (it is input-independent).
    KernelBuilder kb(acc.gateLibrary(), cfg.array, 0, first_free);
    kb.activate(0, static_cast<ColAddr>(num_sv - 1));
    Word square;
    buildSmallSvmKernel(kb, sv_base, x_base, kDim, kInputBits,
                        kAccBits, square);
    const Program prog = kb.finish();
    std::printf("compiled kernel program: %zu instructions\n",
                prog.size());

    // Load the support vectors (deployment-time writes).
    std::vector<Features> svq(num_sv);
    for (unsigned s = 0; s < num_sv; ++s) {
        svq[s] = quantize(clf.supportVectors[s]);
        for (unsigned e = 0; e < kDim; ++e) {
            for (unsigned bit = 0; bit < kInputBits; ++bit) {
                acc.grid().tile(0).setBit(
                    static_cast<RowAddr>(sv_base +
                                         e * 2 * kInputBits +
                                         2 * bit),
                    static_cast<ColAddr>(s),
                    (svq[s][e] >> bit) & 1);
            }
        }
    }

    // -- 4./5. Classify test samples under harvested power.
    HarvestConfig harvest;
    harvest.source = SourceSpec::constant(60e-6);
    // A deliberately small buffer so this demo-sized program rides
    // through real outages (the full-size benchmarks use the
    // paper's 10/100 uF buffers).
    harvest.capacitanceOverride = 100e-12;
    unsigned matches = 0;
    std::uint64_t total_outages = 0;
    for (unsigned t = 0; t < 8; ++t) {
        const Features xq = quantize(test.x[t]);
        // Sensor transfer: the input vector lands in every column.
        for (unsigned s = 0; s < num_sv; ++s) {
            for (unsigned e = 0; e < kDim; ++e) {
                for (unsigned bit = 0; bit < kInputBits; ++bit) {
                    acc.grid().tile(0).setBit(
                        static_cast<RowAddr>(x_base +
                                             e * 2 * kInputBits +
                                             2 * bit),
                        static_cast<ColAddr>(s),
                        (xq[e] >> bit) & 1);
                }
            }
        }
        acc.loadProgram(prog);
        harvest.seed = 1000 + t;
        RunRequest req;
        req.power = PowerMode::Harvested;
        req.harvest = harvest;
        const RunStats stats = acc.execute(req).stats;
        total_outages += stats.outages;

        // Read the per-SV squared dots; finish the weighted sum.
        __int128 mouse_score = 0;
        bool exact = true;
        for (unsigned s = 0; s < num_sv; ++s) {
            std::int64_t sq = 0;
            for (std::size_t i = 0; i < square.size(); ++i) {
                sq |= static_cast<std::int64_t>(acc.grid().tile(0).bit(
                          square[i].row, static_cast<ColAddr>(s)))
                      << i;
            }
            const std::int64_t d = dot(svq[s], xq);
            exact &= sq == (d * d);
            mouse_score +=
                static_cast<__int128>(clf.coefficients[s]) * sq;
        }

        // Software reference over the same quantized SV subset.
        __int128 sw_score = 0;
        for (unsigned s = 0; s < num_sv; ++s) {
            sw_score += static_cast<__int128>(clf.coefficients[s]) *
                        polyKernel2(svq[s], xq);
        }
        matches += mouse_score == sw_score && exact;
        std::printf(
            "sample %u: score %lld | outages %4llu | kernels %s\n",
            t, static_cast<long long>(mouse_score),
            static_cast<unsigned long long>(stats.outages),
            exact ? "bit-exact" : "MISMATCH");
    }
    std::printf("\n%u/8 samples bit-exact across %llu total power "
                "outages.\n",
                matches,
                static_cast<unsigned long long>(total_outages));
    return matches == 8 ? 0 : 1;
}
