#include "outage_schedule.hh"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace mouse
{

const char *
microStepName(MicroStep step)
{
    switch (step) {
      case MicroStep::kFetch:
        return "fetch";
      case MicroStep::kExecute:
        return "execute";
      case MicroStep::kWritePc:
        return "write-pc";
      case MicroStep::kCommit:
        return "commit";
    }
    return "?";
}

std::optional<MicroStep>
parseMicroStep(const std::string &name)
{
    if (name == "fetch") {
        return MicroStep::kFetch;
    }
    if (name == "execute") {
        return MicroStep::kExecute;
    }
    if (name == "write-pc") {
        return MicroStep::kWritePc;
    }
    if (name == "commit") {
        return MicroStep::kCommit;
    }
    return std::nullopt;
}

void
OutageSchedule::normalize()
{
    std::sort(points.begin(), points.end(),
              [](const OutagePoint &a, const OutagePoint &b) {
                  if (a.attempt != b.attempt) {
                      return a.attempt < b.attempt;
                  }
                  if (a.step != b.step) {
                      return a.step < b.step;
                  }
                  return a.fraction < b.fraction;
              });
    points.erase(std::unique(points.begin(), points.end()),
                 points.end());
    std::sort(checkpoints.begin(), checkpoints.end());
    checkpoints.erase(
        std::unique(checkpoints.begin(), checkpoints.end()),
        checkpoints.end());
}

std::string
OutageSchedule::toJson() const
{
    std::string j = "{\"checkpoint_period\":" +
                    std::to_string(checkpointPeriod);
    j += ",\"restore_journal\":";
    j += restoreJournal ? "true" : "false";
    if (!checkpoints.empty()) {
        j += ",\"checkpoints\":[";
        for (std::size_t i = 0; i < checkpoints.size(); ++i) {
            if (i > 0) {
                j += ",";
            }
            j += std::to_string(checkpoints[i]);
        }
        j += "]";
    }
    j += ",\"outages\":[";
    for (std::size_t i = 0; i < points.size(); ++i) {
        if (i > 0) {
            j += ",";
        }
        char buf[96];
        std::snprintf(buf, sizeof(buf),
                      "{\"attempt\":%llu,\"step\":\"%s\","
                      "\"fraction\":%.17g}",
                      static_cast<unsigned long long>(
                          points[i].attempt),
                      microStepName(points[i].step),
                      points[i].fraction);
        j += buf;
    }
    j += "]}";
    return j;
}

namespace
{

/**
 * Minimal scanner for the schedule's own JSON dialect: flat keys,
 * numbers, booleans, one array of flat objects.  Not a general JSON
 * parser — it only needs to read back what toJson() writes (plus
 * whitespace and unknown scalar keys).
 */
class JsonScanner
{
  public:
    explicit JsonScanner(const std::string &text)
        : text_(text), pos_(0)
    {
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_]))) {
            ++pos_;
        }
    }

    bool
    consume(char c)
    {
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    bool
    peek(char c)
    {
        skipWs();
        return pos_ < text_.size() && text_[pos_] == c;
    }

    bool
    readString(std::string &out)
    {
        if (!consume('"')) {
            return false;
        }
        out.clear();
        while (pos_ < text_.size() && text_[pos_] != '"') {
            if (text_[pos_] == '\\' && pos_ + 1 < text_.size()) {
                ++pos_;
            }
            out += text_[pos_++];
        }
        return consume('"');
    }

    bool
    readNumber(double &out)
    {
        skipWs();
        const char *start = text_.c_str() + pos_;
        char *end = nullptr;
        out = std::strtod(start, &end);
        if (end == start) {
            return false;
        }
        pos_ += static_cast<std::size_t>(end - start);
        return true;
    }

    bool
    readBool(bool &out)
    {
        skipWs();
        if (text_.compare(pos_, 4, "true") == 0) {
            out = true;
            pos_ += 4;
            return true;
        }
        if (text_.compare(pos_, 5, "false") == 0) {
            out = false;
            pos_ += 5;
            return true;
        }
        return false;
    }

    /** Skip one scalar value (string, number, or boolean). */
    bool
    skipScalar()
    {
        skipWs();
        std::string s;
        double d;
        bool b;
        if (peek('"')) {
            return readString(s);
        }
        if (readBool(b)) {
            return true;
        }
        return readNumber(d);
    }

  private:
    const std::string &text_;
    std::size_t pos_;
};

bool
parseOutage(JsonScanner &sc, OutagePoint &p)
{
    if (!sc.consume('{')) {
        return false;
    }
    bool first = true;
    while (!sc.peek('}')) {
        if (!first && !sc.consume(',')) {
            return false;
        }
        first = false;
        std::string key;
        if (!sc.readString(key) || !sc.consume(':')) {
            return false;
        }
        if (key == "attempt") {
            double v;
            if (!sc.readNumber(v) || v < 0.0) {
                return false;
            }
            p.attempt = static_cast<std::uint64_t>(v);
        } else if (key == "step") {
            std::string name;
            if (!sc.readString(name)) {
                return false;
            }
            const auto step = parseMicroStep(name);
            if (!step) {
                return false;
            }
            p.step = *step;
        } else if (key == "fraction") {
            double v;
            if (!sc.readNumber(v) || v < 0.0 || v > 1.0) {
                return false;
            }
            p.fraction = v;
        } else if (!sc.skipScalar()) {
            return false;
        }
    }
    return sc.consume('}');
}

} // namespace

std::optional<OutageSchedule>
OutageSchedule::fromJson(const std::string &text)
{
    JsonScanner sc(text);
    OutageSchedule sched;
    if (!sc.consume('{')) {
        return std::nullopt;
    }
    bool first = true;
    while (!sc.peek('}')) {
        if (!first && !sc.consume(',')) {
            return std::nullopt;
        }
        first = false;
        std::string key;
        if (!sc.readString(key) || !sc.consume(':')) {
            return std::nullopt;
        }
        if (key == "checkpoint_period") {
            double v;
            if (!sc.readNumber(v) || v < 1.0) {
                return std::nullopt;
            }
            sched.checkpointPeriod = static_cast<unsigned>(v);
        } else if (key == "restore_journal") {
            if (!sc.readBool(sched.restoreJournal)) {
                return std::nullopt;
            }
        } else if (key == "checkpoints") {
            if (!sc.consume('[')) {
                return std::nullopt;
            }
            while (!sc.peek(']')) {
                if (!sched.checkpoints.empty() &&
                    !sc.consume(',')) {
                    return std::nullopt;
                }
                double v;
                if (!sc.readNumber(v) || v < 0.0) {
                    return std::nullopt;
                }
                sched.checkpoints.push_back(
                    static_cast<std::uint32_t>(v));
            }
            if (!sc.consume(']')) {
                return std::nullopt;
            }
        } else if (key == "outages") {
            if (!sc.consume('[')) {
                return std::nullopt;
            }
            while (!sc.peek(']')) {
                if (!sched.points.empty() && !sc.consume(',')) {
                    return std::nullopt;
                }
                OutagePoint p;
                if (!parseOutage(sc, p)) {
                    return std::nullopt;
                }
                sched.points.push_back(p);
            }
            if (!sc.consume(']')) {
                return std::nullopt;
            }
        } else if (!sc.skipScalar()) {
            return std::nullopt;
        }
    }
    if (!sc.consume('}')) {
        return std::nullopt;
    }
    sched.normalize();
    return sched;
}

} // namespace mouse
