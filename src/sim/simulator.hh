/**
 * @file
 * The MOUSE execution simulators (paper Section VIII).
 *
 * Two fidelity levels share one energy model:
 *
 *  - Functional: drives the Controller/TileGrid bit-exact machine,
 *    including real micro-step power cuts and the full restart
 *    protocol.  Used to *prove* intermittent correctness and to run
 *    the small end-to-end examples.
 *
 *  - Trace: consumes a compressed instruction trace; each
 *    instruction's cost comes from EnergyModel::estimate*.  Used for
 *    the paper's large benchmarks where simulating 10^10 MTJ bit
 *    updates would be pointless — the instruction stream is data-
 *    independent, so cycle counts are exact and energy differs only
 *    by the data-dependence of gate pulse currents.
 *
 * Both can run under continuous power or against a harvesting
 * environment (capacitor + power source + voltage window).
 */

#ifndef MOUSE_SIM_SIMULATOR_HH
#define MOUSE_SIM_SIMULATOR_HH

#include <functional>

#include "common/rng.hh"
#include "compile/program.hh"
#include "controller/controller.hh"
#include "harvest/capacitor.hh"
#include "harvest/converter.hh"
#include "harvest/platform.hh"
#include "harvest/power_source.hh"
#include "harvest/source_spec.hh"
#include "obs/telemetry.hh"
#include "sim/outage_schedule.hh"
#include "sim/stats.hh"

namespace mouse
{

/** Harvesting environment description. */
struct HarvestConfig
{
    /**
     * Power environment: constant (the paper's model, default
     * 60 uW) | embedded trace | named corpus trace | square wave.
     * Constant sources recharge analytically; everything else is
     * integrated numerically over the run's absolute time.  See
     * docs/HARVESTING.md.
     */
    SourceSpec source;
    /**
     * Named capacitor/converter platform preset
     * (harvest/platform.hh); empty keeps the technology's buffer
     * sizing and the configured converter efficiency.  A platform
     * replaces the default buffer capacitance (capacitanceOverride
     * still wins) and derates converterEfficiency by its front-end
     * efficiency.
     */
    std::string platform;
    /** Converter efficiency; 1.0 reproduces the paper's accounting
     *  (regulator overhead excluded). */
    double converterEfficiency = 1.0;
    /** Non-zero: replace the configuration's buffer capacitor (the
     *  Capybara-style tuning knob; also lets small demo programs
     *  experience real outages). */
    Farads capacitanceOverride = 0.0;
    /** Start from an empty buffer (the paper's initial condition);
     *  when false the buffer starts at the shutdown voltage. */
    bool startEmpty = true;
    /** Consecutive failed attempts at one instruction before the run
     *  is declared non-terminating. */
    unsigned nonTerminationLimit = 8;
    /**
     * Checkpoint period in instructions (Section IV-D study knob).
     * MOUSE's design point is 1 (checkpoint every cycle); larger
     * periods divide the backup cost by N but replay up to N
     * instructions per outage as Dead work.  Trace mode only — the
     * functional controller implements the paper's per-cycle
     * protocol.
     */
    unsigned checkpointPeriod = 1;
    /** Seed for the micro-step outage positions (functional mode). */
    std::uint64_t seed = 1;
};

/**
 * Effective buffer capacitance of @p harvest on a technology whose
 * default buffer is @p techBuffer.  Precedence: explicit
 * capacitanceOverride > named platform datasheet > tech default.
 * Fatal on an unknown platform name — API paths validate through
 * RunError (kHarvestPlatformUnknown) before reaching here.
 */
Farads effectiveCapacitance(const HarvestConfig &harvest,
                            Farads techBuffer);

/** Effective converter efficiency of @p harvest: the configured
 *  efficiency, derated by the named platform's front-end efficiency
 *  when one is set.  Fatal on an unknown platform name. */
double effectiveConverterEfficiency(const HarvestConfig &harvest);

/**
 * Continuous-power functional run of a full program.
 *
 * All runners take an optional telemetry bundle (see
 * obs/telemetry.hh); when null — the default — no stats, events or
 * waveform samples are recorded and the hot loops pay only a
 * never-taken branch.  Telemetry observes: it never changes the
 * RunStats a run produces.
 */
RunStats runContinuousFunctional(Controller &ctrl,
                                 obs::Telemetry *telem = nullptr);

/** Continuous-power analytical run of a compressed trace. */
RunStats runContinuousTrace(const Trace &trace,
                            const EnergyModel &energy,
                            obs::Telemetry *telem = nullptr);

/**
 * Harvested functional run: executes the program against the
 * capacitor model, cutting power mid-instruction (at a micro-step
 * chosen by where the energy actually ran out) whenever the buffer
 * hits the shutdown voltage, then performing the paper's restart
 * protocol.
 *
 * @throws via mouse_fatal on detected non-termination (the buffer
 *         cannot cover even one instruction plus restore).
 */
RunStats runHarvestedFunctional(Controller &ctrl,
                                const HarvestConfig &harvest,
                                obs::Telemetry *telem = nullptr);

/** Harvested trace run: same environment model over a compressed
 *  trace. */
RunStats runHarvestedTrace(const Trace &trace,
                           const EnergyModel &energy,
                           const HarvestConfig &harvest,
                           obs::Telemetry *telem = nullptr);

/**
 * Scripted-outage functional run: executes the loaded program on the
 * bit-exact machine, cutting power exactly where @p schedule says —
 * attempt index, micro-step, intra-phase fraction — instead of where
 * a capacitor model happens to run dry.  Charging time is not
 * modelled (the schedule abstracts the environment away); energy and
 * work accounting follow the harvested runner's taxonomy.
 *
 * With schedule.checkpointPeriod > 1 the restart path additionally
 * rolls the PC back to the last window boundary (SONIC-style
 * checkpointing); with schedule.restoreJournal == false the Activate
 * Columns journal replay is skipped (a deliberately broken restart
 * for checker validation).
 *
 * @param maxAttempts Abort guard: the run is declared non-terminating
 *        after this many attempts (0 = no limit) and `halted()` stays
 *        false.  Fault campaigns size it from the golden run.
 */
RunStats runScheduledFunctional(Controller &ctrl,
                                const OutageSchedule &schedule,
                                std::uint64_t maxAttempts = 0,
                                obs::Telemetry *telem = nullptr);

} // namespace mouse

#endif // MOUSE_SIM_SIMULATOR_HH
