#include "simulator.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace mouse
{

namespace
{

/** Per-instruction cost split used by both runners. */
struct InstrCost
{
    Joules exec = 0.0;    ///< fetch + array + peripherals
    Joules backup = 0.0;  ///< NV checkpoint writes

    Joules
    total() const
    {
        return exec + backup;
    }
};

InstrCost
traceInstrCost(const EnergyModel &energy, const TraceBlock &blk)
{
    InstrCost cost;
    cost.exec = energy.fetchEnergy() +
                energy.estimateInstructionEnergy(blk.op,
                                                 blk.touchedCols);
    cost.backup = energy.backupEnergyPerCycle();
    if (blk.op == Opcode::kActivateList ||
        blk.op == Opcode::kActivateRange) {
        cost.backup += energy.actRegisterBackupEnergy();
    }
    return cost;
}

/**
 * Telemetry probe shared by the four runners.  Holds raw pointers
 * into the run's Telemetry bundle; every method self-gates, and the
 * hot-loop call sites are additionally wrapped in MOUSE_OBS_HOOK so
 * a null telemetry costs one predictable branch (or nothing at all
 * under MOUSE_OBS_DISABLE_HOOKS).
 */
class SimProbe
{
  public:
    explicit SimProbe(obs::Telemetry *telem)
    {
        if (telem == nullptr) {
            return;
        }
        cfg_ = telem->config;
        sink_ = telem->sink.get();
        reg_ = telem->stats.get();
        if (reg_ != nullptr) {
            committed_ = &reg_->counter(
                "sim.instr.committed",
                "instructions that committed");
            dead_ = &reg_->counter(
                "sim.instr.dead",
                "instruction attempts killed by outages (incl. "
                "replays)");
            outages_ = &reg_->counter("sim.outage.count",
                                      "power outages (= restarts)");
            outageDur_ = &reg_->histogram(
                "sim.outage.duration_s",
                "seconds powered off per outage");
            burstInstr_ = &reg_->histogram(
                "sim.burst.instructions",
                "instructions committed per powered-on burst");
            restores_ =
                &reg_->counter("sim.restore.count",
                               "restart-protocol executions");
            recharges_ = &reg_->counter(
                "harvest.cap.recharges",
                "full recharges of the buffer capacitor");
            vMin_ = &reg_->scalar("harvest.cap.voltage_min_v",
                                  obs::MergePolicy::kMin,
                                  "lowest sampled buffer voltage");
            vMax_ = &reg_->scalar("harvest.cap.voltage_max_v",
                                  obs::MergePolicy::kMax,
                                  "highest sampled buffer voltage");
        }
    }

    bool wantsEvents() const { return sink_ && cfg_.events; }
    bool wantsWaveform() const { return sink_ && cfg_.waveform; }

    /** A chunk of @p n identical instructions committed (trace). */
    void
    commitChunk(std::uint64_t n, Seconds t0, Seconds dur,
                unsigned checkpointPeriod)
    {
        if (committed_ != nullptr) {
            *committed_ += n;
        }
        burst_ += n;
        if (wantsEvents()) {
            sink_->complete(
                "burst", "exec", t0, dur,
                "{\"instructions\":" + std::to_string(n) + "}");
            sink_->instant(
                "checkpoint", "backup", t0 + dur,
                "{\"instructions\":" + std::to_string(n) +
                    ",\"period\":" +
                    std::to_string(checkpointPeriod) + "}");
        }
    }

    /** One instruction committed (functional). */
    void
    commitInstr(Seconds t0, Seconds dur, std::size_t pc, int op)
    {
        if (committed_ != nullptr) {
            committed_->increment();
        }
        ++burst_;
        if (wantsEvents()) {
            sink_->complete("instr", "exec", t0, dur,
                            "{\"pc\":" + std::to_string(pc) +
                                ",\"op\":" + std::to_string(op) +
                                "}");
            sink_->instant("checkpoint", "backup", t0 + dur);
        }
    }

    /** An attempt died mid-instruction; the outage window opens. */
    void
    outageBegin(Seconds t, Seconds attemptDur, Joules wasted)
    {
        if (dead_ != nullptr) {
            dead_->increment();
            outages_->increment();
            burstInstr_->sample(static_cast<double>(burst_));
        }
        burst_ = 0;
        offSince_ = t + attemptDur;
        if (wantsEvents()) {
            sink_->complete("dead_attempt", "exec", t, attemptDur,
                            "{\"wasted_j\":" + jnum(wasted) + "}");
            sink_->instant("power_off", "power", offSince_);
            sink_->counter("power_state", "power", offSince_, 0.0);
        }
    }

    /** Replayed instructions after a restart are Dead work too. */
    void
    deadReplay(std::uint64_t n, Seconds t0, Seconds dur)
    {
        if (dead_ != nullptr) {
            dead_->increment();
        }
        if (wantsEvents()) {
            sink_->complete(
                "replay", "exec", t0, dur,
                "{\"instructions\":" + std::to_string(n) + "}");
        }
    }

    /** The capacitor refilled; power is back at @p t. */
    void
    rechargeDone(Seconds t)
    {
        if (recharges_ != nullptr) {
            recharges_->increment();
            if (offSince_ >= 0.0) {
                outageDur_->sample(t - offSince_);
            }
        }
        if (wantsEvents() && offSince_ >= 0.0) {
            sink_->complete("outage", "power", offSince_,
                            t - offSince_);
            // Same interval under the "stall" category: live-metrics
            // consumers attribute brownout time separately from
            // compute and queueing without re-deriving it from the
            // power track (docs/OBSERVABILITY.md span taxonomy).
            sink_->complete("outage_stall", "stall", offSince_,
                            t - offSince_);
            sink_->instant("power_on", "power", t);
            sink_->counter("power_state", "power", t, 1.0);
        }
        offSince_ = -1.0;
    }

    /** Restart protocol re-issued the activation journal. */
    void
    restore(Seconds t0, Seconds dur, Joules energy)
    {
        if (restores_ != nullptr) {
            restores_->increment();
        }
        if (wantsEvents()) {
            sink_->complete("restore", "power", t0, dur,
                            "{\"energy_j\":" + jnum(energy) + "}");
        }
    }

    /** Waveform sample, rate-limited to the configured period. */
    void
    maybeSample(Seconds t, Volts v, Watts p)
    {
        if (vMin_ != nullptr) {
            vMin_->observe(v);
            vMax_->observe(v);
        }
        if (!wantsWaveform() ||
            (lastSample_ >= 0.0 &&
             t - lastSample_ < cfg_.waveformPeriod)) {
            return;
        }
        lastSample_ = t;
        sink_->sample(t, v, p);
    }

    /**
     * Synthesize waveform samples for an analytic constant-power
     * recharge from @p v0 to @p v1: v(t) = sqrt(v0^2 + 2 P t / C).
     */
    void
    sampleRecharge(Seconds t0, Seconds dt, Volts v0, Volts v1,
                   Farads c, Watts p)
    {
        if (!wantsWaveform() || dt <= 0.0) {
            maybeSample(t0 + dt, v1, p);
            return;
        }
        const double steps = std::clamp(
            std::floor(dt / cfg_.waveformPeriod), 1.0, 256.0);
        const Seconds step = dt / steps;
        for (double k = 1.0; k <= steps; k += 1.0) {
            const Seconds at = step * k;
            const Volts v = std::sqrt(v0 * v0 + 2.0 * p * at / c);
            maybeSample(t0 + at, std::min(v, v1), p);
        }
    }

    /** Close out the run: totals, shares, and overflow counters. */
    void
    finalize(const RunStats &stats)
    {
        if (reg_ != nullptr) {
            if (burst_ > 0 && outages_->value() > 0) {
                burstInstr_->sample(static_cast<double>(burst_));
            }
            auto set = [&](const char *name, double v,
                           const char *desc) {
                reg_->scalar(name, obs::MergePolicy::kSum, desc)
                    .observe(v);
            };
            set("sim.energy.compute_j", stats.computeEnergy,
                "energy of committed instructions");
            set("sim.energy.backup_j", stats.backupEnergy,
                "checkpoint-write energy");
            set("sim.energy.dead_j", stats.deadEnergy,
                "energy of attempts an outage killed");
            set("sim.energy.restore_j", stats.restoreEnergy,
                "restart-protocol energy");
            set("sim.energy.idle_j", stats.idleEnergy,
                "standby leakage while energized");
            set("sim.energy.total_j", stats.totalEnergy(),
                "total load-side energy");
            set("sim.time.active_s", stats.activeTime,
                "time executing committed instructions");
            set("sim.time.dead_s", stats.deadTime,
                "time lost to killed attempts");
            set("sim.time.restore_s", stats.restoreTime,
                "time re-issuing activations");
            set("sim.time.charging_s", stats.chargingTime,
                "time powered off, recharging");
            set("sim.time.total_s", stats.totalTime(),
                "end-to-end simulated time");
            reg_->formula(
                "sim.energy.dead_share",
                [](const obs::StatRegistry &r) {
                    const double total =
                        r.scalarValue("sim.energy.total_j");
                    return total > 0.0
                               ? r.scalarValue(
                                     "sim.energy.dead_j") /
                                     total
                               : 0.0;
                },
                "dead / total energy (Fig. 10-12 commentary)");
            reg_->formula(
                "sim.energy.backup_share",
                [](const obs::StatRegistry &r) {
                    const double total =
                        r.scalarValue("sim.energy.total_j");
                    return total > 0.0
                               ? r.scalarValue(
                                     "sim.energy.backup_j") /
                                     total
                               : 0.0;
                },
                "backup / total energy");
            reg_->formula(
                "sim.time.charging_share",
                [](const obs::StatRegistry &r) {
                    const double total =
                        r.scalarValue("sim.time.total_s");
                    return total > 0.0
                               ? r.scalarValue(
                                     "sim.time.charging_s") /
                                     total
                               : 0.0;
                },
                "charging / total time");
            if (sink_ != nullptr) {
                reg_->counter("obs.trace.dropped_events",
                              "events lost to the buffer cap") +=
                    sink_->droppedEvents();
                reg_->counter("obs.trace.dropped_samples",
                              "waveform samples lost to the cap") +=
                    sink_->droppedSamples();
            }
        }
        if (sink_ != nullptr && sink_->droppedEvents() > 0) {
            mouse_warn("trace sink dropped %llu events (raise "
                       "TraceConfig.maxEvents)",
                       static_cast<unsigned long long>(
                           sink_->droppedEvents()));
        }
    }

  private:
    static std::string
    jnum(double v)
    {
        char buf[40];
        std::snprintf(buf, sizeof(buf), "%.17g", v);
        return buf;
    }

    obs::TraceConfig cfg_{};
    obs::StatRegistry *reg_ = nullptr;
    obs::TraceSink *sink_ = nullptr;
    obs::Counter *committed_ = nullptr;
    obs::Counter *dead_ = nullptr;
    obs::Counter *outages_ = nullptr;
    obs::Counter *restores_ = nullptr;
    obs::Counter *recharges_ = nullptr;
    obs::Histogram *outageDur_ = nullptr;
    obs::Histogram *burstInstr_ = nullptr;
    obs::Scalar *vMin_ = nullptr;
    obs::Scalar *vMax_ = nullptr;
    /** Instructions committed since the last outage. */
    std::uint64_t burst_ = 0;
    /** Start of the current off period; -1 while powered. */
    Seconds offSince_ = -1.0;
    Seconds lastSample_ = -1.0;
};

/** Shared harvesting-loop state. */
struct HarvestEnv
{
    HarvestEnv(const EnergyModel &energy, const HarvestConfig &cfg,
               SimProbe *probe)
        : cap(effectiveCapacitance(cfg,
                                   energy.config().bufferCapacitance),
              cfg.startEmpty ? 0.0 : energy.config().capVoltageLow),
          converter(effectiveConverterEfficiency(cfg)),
          sourceOwner(cfg.source.make()),
          source(*sourceOwner),
          varying(!cfg.source.isConstant()),
          maxStep(source.period() > 0.0
                      ? std::clamp(source.period() / 16.0, 1e-5,
                                   0.25)
                      : 0.25),
          vLow(energy.config().capVoltageLow),
          vHigh(energy.config().capVoltageHigh),
          probe(probe)
    {
    }

    /** Advance the wall clock (active/dead/restore time). */
    void
    advance(Seconds dt)
    {
        now += dt;
    }

    /** Charge to the restart voltage, logging the off time. */
    void
    rechargeTo(Volts v, RunStats &stats)
    {
        if (!varying) {
            const Watts p = source.power(now);
            const Seconds dt = cap.timeToCharge(v, p);
            MOUSE_OBS_HOOK(probe,
                           probe->sampleRecharge(now, dt,
                                                 cap.voltage(), v,
                                                 cap.capacitance(),
                                                 p));
            stats.chargingTime += dt;
            now += dt;
            cap.setVoltage(v);
            MOUSE_OBS_HOOK(probe, probe->rechargeDone(now));
            return;
        }
        // Time-varying source: integrate numerically.  Step size is
        // a fraction of the remaining charge estimate, bounded below
        // so fast transients are still resolved and above by a
        // fraction of the source period — a drought-phase estimate
        // is near-infinite, and an unbounded step would alias right
        // over the charging phases of a short-period source.
        Seconds charged = 0.0;
        while (cap.voltage() < v) {
            const Watts p = std::max(source.power(now), 1e-12);
            const Seconds estimate = cap.timeToCharge(v, p);
            const Seconds dt =
                std::clamp(estimate / 64.0, 1e-5, maxStep);
            cap.charge(p, std::min(dt, estimate));
            now += std::min(dt, estimate);
            charged += std::min(dt, estimate);
            MOUSE_OBS_HOOK(probe,
                           probe->maybeSample(now, cap.voltage(),
                                              p));
            if (charged > 1e7) {
                mouse_fatal("source never refills the buffer "
                            "(charged for >115 days of sim time)");
            }
        }
        stats.chargingTime += charged;
        MOUSE_OBS_HOOK(probe, probe->rechargeDone(now));
    }

    Joules
    available() const
    {
        return cap.energyAbove(vLow);
    }

    /** Draw @p load joules of *load-side* energy from the buffer. */
    void
    drawLoad(Joules load)
    {
        cap.draw(converter.bufferEnergyFor(load));
    }

    Capacitor cap;
    SwitchedCapConverter converter;
    std::unique_ptr<PowerSource> sourceOwner;
    const PowerSource &source;
    bool varying;
    /** Integration step cap (period-resolving for trace sources). */
    Seconds maxStep;
    Volts vLow;
    Volts vHigh;
    SimProbe *probe;
    /** Absolute simulation time (for time-varying sources). */
    Seconds now = 0.0;
};

} // namespace

Farads
effectiveCapacitance(const HarvestConfig &harvest, Farads techBuffer)
{
    if (harvest.capacitanceOverride > 0.0) {
        return harvest.capacitanceOverride;
    }
    if (!harvest.platform.empty()) {
        const Platform *p = platformByName(harvest.platform);
        if (p == nullptr) {
            mouse_fatal("unknown platform '%s'",
                        harvest.platform.c_str());
        }
        return p->capacitance;
    }
    return techBuffer;
}

double
effectiveConverterEfficiency(const HarvestConfig &harvest)
{
    if (harvest.platform.empty()) {
        return harvest.converterEfficiency;
    }
    const Platform *p = platformByName(harvest.platform);
    if (p == nullptr) {
        mouse_fatal("unknown platform '%s'",
                    harvest.platform.c_str());
    }
    return harvest.converterEfficiency * p->converterEfficiency;
}

RunStats
runContinuousFunctional(Controller &ctrl, obs::Telemetry *telem)
{
    RunStats stats;
    SimProbe probe(telem);
    const Seconds cycle = ctrl.energyModel().cycleTime();
    while (!ctrl.halted()) {
        const std::size_t pc = ctrl.pc();
        const StepResult r = ctrl.step();
        stats.computeEnergy += r.energy - r.backupEnergy;
        stats.backupEnergy += r.backupEnergy;
        stats.activeTime += cycle;
        if (!r.halted) {
            ++stats.instructionsCommitted;
            MOUSE_OBS_HOOK(telem,
                           probe.commitInstr(
                               stats.activeTime - cycle, cycle, pc,
                               static_cast<int>(r.inst.op)));
        }
    }
    stats.idleEnergy +=
        ctrl.energyModel().idlePower() * stats.activeTime;
    MOUSE_OBS_HOOK(telem, probe.finalize(stats));
    return stats;
}

RunStats
runContinuousTrace(const Trace &trace, const EnergyModel &energy,
                   obs::Telemetry *telem)
{
    RunStats stats;
    SimProbe probe(telem);
    const Seconds cycle = energy.cycleTime();
    for (const TraceBlock &blk : trace.blocks) {
        const InstrCost cost = traceInstrCost(energy, blk);
        const double n = static_cast<double>(blk.count);
        MOUSE_OBS_HOOK(telem,
                       probe.commitChunk(blk.count,
                                         stats.activeTime,
                                         cycle * n, 1));
        stats.computeEnergy += cost.exec * n;
        stats.backupEnergy += cost.backup * n;
        stats.activeTime += cycle * n;
        stats.instructionsCommitted += blk.count;
    }
    stats.idleEnergy +=
        energy.idlePower() * stats.activeTime;
    MOUSE_OBS_HOOK(telem, probe.finalize(stats));
    return stats;
}

RunStats
runHarvestedTrace(const Trace &trace, const EnergyModel &energy,
                  const HarvestConfig &harvest,
                  obs::Telemetry *telem)
{
    RunStats stats;
    SimProbe probe(telem);
    const Seconds cycle = energy.cycleTime();
    HarvestEnv env(energy, harvest, telem ? &probe : nullptr);
    env.rechargeTo(env.vHigh, stats);

    const unsigned period = std::max(1u, harvest.checkpointPeriod);
    // Instructions committed since the last checkpoint; they would
    // be replayed by an outage (Section IV-D trade-off).
    std::uint64_t uncheckpointed = 0;

    for (const TraceBlock &blk : trace.blocks) {
        InstrCost cost = traceInstrCost(energy, blk);
        // A wider checkpoint period amortizes the per-cycle backup.
        cost.backup /= period;
        const Joules buffer_cost =
            env.converter.bufferEnergyFor(cost.total());
        std::uint64_t remaining = blk.count;
        unsigned consecutive_failures = 0;
        while (remaining > 0) {
            const Joules avail = env.available();
            // The source keeps trickling into the buffer while MOUSE
            // executes; the net drain per instruction is what
            // determines how many fit in the burst.  With a source
            // stronger than the draw, execution is continuous.
            const Joules credit =
                env.source.power(env.now) * cycle;
            const Joules net = buffer_cost > credit
                                   ? buffer_cost - credit
                                   : 0.0;
            const std::uint64_t fit =
                net > 0.0
                    ? static_cast<std::uint64_t>(avail / net)
                    : remaining;
            const std::uint64_t n = std::min(remaining, fit);
            if (n > 0) {
                consecutive_failures = 0;
                const double nd = static_cast<double>(n);
                const Seconds t0 = env.now;
                env.cap.draw(net * nd);
                env.advance(cycle * nd);
                stats.computeEnergy += cost.exec * nd;
                stats.backupEnergy += cost.backup * nd;
                stats.activeTime += cycle * nd;
                stats.instructionsCommitted += n;
                uncheckpointed = (uncheckpointed + n) % period;
                remaining -= n;
                MOUSE_OBS_HOOK(telem, {
                    probe.commitChunk(n, t0, env.now - t0, period);
                    probe.maybeSample(
                        env.now, env.cap.voltage(),
                        env.source.power(env.now));
                });
                continue;
            }
            // Outage mid-instruction: the attempt drains the buffer
            // to the shutdown voltage and all of it is Dead.
            const double fraction =
                buffer_cost > 0.0 ? avail / buffer_cost : 0.0;
            const Joules wasted =
                avail * env.converter.efficiency();
            stats.deadEnergy += wasted;
            stats.deadTime += cycle * std::min(1.0, fraction);
            MOUSE_OBS_HOOK(
                telem,
                probe.outageBegin(env.now,
                                  cycle * std::min(1.0, fraction),
                                  wasted));
            env.advance(cycle * std::min(1.0, fraction));
            ++stats.instructionsDead;
            ++stats.outages;
            env.cap.draw(avail);

            env.rechargeTo(env.vHigh, stats);
            // Restart: re-issue the (single, in compiled kernels)
            // Activate Columns checkpoint.
            const Joules restore =
                energy.restoreEnergy(1, blk.activeColsAfter);
            stats.restoreEnergy += restore;
            stats.restoreTime += cycle;
            MOUSE_OBS_HOOK(telem,
                           probe.restore(env.now, cycle, restore));
            env.advance(cycle);
            env.drawLoad(restore);

            if (uncheckpointed > 0) {
                // Replay the instructions committed since the last
                // checkpoint: their re-execution is Dead work and
                // drains the fresh burst.  (Re-running them is
                // idempotent, so only cost — not state — matters.)
                const double replay =
                    static_cast<double>(uncheckpointed);
                const Joules replay_cost = cost.total() * replay;
                stats.deadEnergy += replay_cost;
                stats.deadTime += cycle * replay;
                ++stats.instructionsDead;
                MOUSE_OBS_HOOK(telem,
                               probe.deadReplay(uncheckpointed,
                                                env.now,
                                                cycle * replay));
                env.advance(cycle * replay);
                env.drawLoad(replay_cost);
                uncheckpointed = 0;
            }

            if (++consecutive_failures > harvest.nonTerminationLimit) {
                mouse_fatal(
                    "non-termination: buffer of %.3g J per burst "
                    "cannot cover one %.3g J instruction plus "
                    "restore; reduce parallelism or enlarge the "
                    "capacitor",
                    env.cap.energyAbove(env.vLow), buffer_cost);
            }
        }
    }
    stats.idleEnergy += energy.idlePower() * stats.activeTime;
    MOUSE_OBS_HOOK(telem, probe.finalize(stats));
    return stats;
}

namespace
{

/** Map the failing load fraction onto a Figure-7 micro-step. */
MicroStep
microStepFor(double fraction, Rng &rng)
{
    // The fetch and commit machinery occupy small windows at the
    // cycle's ends; most of the cycle is the array operation.  Add
    // jitter so repeated outages do not always land identically.
    const double f =
        std::clamp(fraction + rng.uniform(-0.05, 0.05), 0.0, 1.0);
    if (f < 0.08) {
        return MicroStep::kFetch;
    }
    if (f < 0.80) {
        return MicroStep::kExecute;
    }
    if (f < 0.94) {
        return MicroStep::kWritePc;
    }
    return MicroStep::kCommit;
}

} // namespace

RunStats
runScheduledFunctional(Controller &ctrl,
                       const OutageSchedule &schedule,
                       std::uint64_t maxAttempts,
                       obs::Telemetry *telem)
{
    RunStats stats;
    SimProbe probe(telem);
    const EnergyModel &energy = ctrl.energyModel();
    const Seconds cycle = energy.cycleTime();
    const unsigned period = std::max(1u, schedule.checkpointPeriod);

    std::size_t next = 0;
    std::uint64_t attempt = 0;
    // Window-checkpoint emulation: the PC a SONIC-style restart
    // rolls back to, advanced every `period` committed instructions.
    std::size_t windowStart = ctrl.pc();
    std::uint64_t sinceCheckpoint = 0;
    Seconds now = 0.0;

    while (!ctrl.halted()) {
        if (maxAttempts > 0 && attempt >= maxAttempts) {
            // Non-terminating under this schedule; the caller sees
            // halted() == false.
            break;
        }
        if (next < schedule.points.size() &&
            attempt >= schedule.points[next].attempt) {
            const OutagePoint &p = schedule.points[next++];
            const double f = std::clamp(p.fraction, 0.0, 1.0);
            const Joules wasted = ctrl.stepInterrupted(p.step, f);
            ++attempt;
            stats.deadEnergy += wasted;
            stats.deadTime += cycle * f;
            ++stats.instructionsDead;
            ++stats.outages;
            MOUSE_OBS_HOOK(telem, {
                probe.outageBegin(now, cycle * f, wasted);
                // The schedule abstracts the environment away: power
                // is back as soon as the restart protocol can run.
                probe.rechargeDone(now + cycle * f);
            });
            now += cycle * f;
            ctrl.powerLoss();
            if (schedule.restoreJournal) {
                const RestartResult rr = ctrl.restart();
                const Seconds dt =
                    cycle * static_cast<double>(rr.restoreCycles);
                stats.restoreEnergy += rr.restoreEnergy;
                stats.restoreTime += dt;
                MOUSE_OBS_HOOK(telem,
                               probe.restore(now, dt,
                                             rr.restoreEnergy));
                now += dt;
            }
            if (period > 1) {
                if (!schedule.checkpoints.empty()) {
                    // Roll back to the last checkpoint the run
                    // crossed (largest checkpoint PC <= current PC).
                    const auto it = std::upper_bound(
                        schedule.checkpoints.begin(),
                        schedule.checkpoints.end(),
                        static_cast<std::uint32_t>(ctrl.pc()));
                    if (it != schedule.checkpoints.begin()) {
                        ctrl.rollbackPc(*(it - 1));
                    }
                } else {
                    ctrl.rollbackPc(windowStart);
                }
                sinceCheckpoint = 0;
            }
            continue;
        }
        const std::size_t pc = ctrl.pc();
        const StepResult r = ctrl.step();
        ++attempt;
        stats.computeEnergy += r.energy - r.backupEnergy;
        stats.backupEnergy += r.backupEnergy;
        stats.activeTime += cycle;
        if (!r.halted) {
            ++stats.instructionsCommitted;
            MOUSE_OBS_HOOK(telem,
                           probe.commitInstr(
                               now, cycle, pc,
                               static_cast<int>(r.inst.op)));
            if (period > 1 && ++sinceCheckpoint >= period) {
                windowStart = ctrl.pc();
                sinceCheckpoint = 0;
            }
        }
        now += cycle;
    }
    stats.idleEnergy += energy.idlePower() * stats.activeTime;
    MOUSE_OBS_HOOK(telem, probe.finalize(stats));
    return stats;
}

RunStats
runHarvestedFunctional(Controller &ctrl, const HarvestConfig &harvest,
                       obs::Telemetry *telem)
{
    RunStats stats;
    SimProbe probe(telem);
    const EnergyModel &energy = ctrl.energyModel();
    const Seconds cycle = energy.cycleTime();
    HarvestEnv env(energy, harvest, telem ? &probe : nullptr);
    Rng rng(harvest.seed);
    env.rechargeTo(env.vHigh, stats);

    unsigned consecutive_failures = 0;
    while (!ctrl.halted()) {
        const Instruction inst = ctrl.peekInstruction();
        InstrCost cost;
        cost.exec =
            energy.fetchEnergy() +
            energy.estimateInstructionEnergy(
                inst.op, ctrl.touchedColumns(inst));
        if (inst.op != Opcode::kHalt) {
            cost.backup = energy.backupEnergyPerCycle();
            if (inst.op == Opcode::kActivateList ||
                inst.op == Opcode::kActivateRange) {
                cost.backup += energy.actRegisterBackupEnergy();
            }
        }
        const Joules buffer_cost =
            env.converter.bufferEnergyFor(cost.total());
        const Joules avail = env.available();

        if (avail >= buffer_cost) {
            consecutive_failures = 0;
            const std::size_t pc = ctrl.pc();
            const StepResult r = ctrl.step();
            env.drawLoad(r.energy);
            // Source credit for the cycle, capped at the window top.
            env.cap.charge(env.source.power(env.now), cycle);
            if (env.cap.voltage() > env.vHigh) {
                env.cap.setVoltage(env.vHigh);
            }
            env.advance(cycle);
            stats.computeEnergy += r.energy - r.backupEnergy;
            stats.backupEnergy += r.backupEnergy;
            stats.activeTime += cycle;
            if (!r.halted) {
                ++stats.instructionsCommitted;
                MOUSE_OBS_HOOK(telem, {
                    probe.commitInstr(env.now - cycle, cycle, pc,
                                      static_cast<int>(r.inst.op));
                    probe.maybeSample(env.now, env.cap.voltage(),
                                      env.source.power(env.now));
                });
            }
            continue;
        }

        // The buffer cannot cover this instruction: it dies at the
        // micro-step where the energy runs out.
        const double fraction =
            buffer_cost > 0.0 ? avail / buffer_cost : 0.0;
        const MicroStep at = microStepFor(fraction, rng);
        const double exec_fraction = std::clamp(
            (fraction - 0.08) / 0.72, 0.0, 1.0);
        const Joules wasted = ctrl.stepInterrupted(at, exec_fraction);
        env.cap.draw(env.available());  // drained to the threshold
        stats.deadEnergy += wasted;
        stats.deadTime += cycle * std::min(1.0, fraction);
        MOUSE_OBS_HOOK(
            telem,
            probe.outageBegin(env.now,
                              cycle * std::min(1.0, fraction),
                              wasted));
        env.advance(cycle * std::min(1.0, fraction));
        ++stats.instructionsDead;
        ++stats.outages;
        ctrl.powerLoss();

        env.rechargeTo(env.vHigh, stats);
        const RestartResult rr = ctrl.restart();
        stats.restoreEnergy += rr.restoreEnergy;
        stats.restoreTime +=
            cycle * static_cast<double>(rr.restoreCycles);
        MOUSE_OBS_HOOK(
            telem,
            probe.restore(env.now,
                          cycle *
                              static_cast<double>(rr.restoreCycles),
                          rr.restoreEnergy));
        env.advance(cycle * static_cast<double>(rr.restoreCycles));
        env.drawLoad(rr.restoreEnergy);

        if (++consecutive_failures > harvest.nonTerminationLimit) {
            mouse_fatal("non-termination at PC %zu: instruction "
                        "needs %.3g J but a full burst provides "
                        "%.3g J",
                        ctrl.pc(), buffer_cost, env.available());
        }
    }
    stats.idleEnergy += energy.idlePower() * stats.activeTime;
    MOUSE_OBS_HOOK(telem, probe.finalize(stats));
    return stats;
}

} // namespace mouse
