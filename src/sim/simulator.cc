#include "simulator.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace mouse
{

namespace
{

/** Per-instruction cost split used by both runners. */
struct InstrCost
{
    Joules exec = 0.0;    ///< fetch + array + peripherals
    Joules backup = 0.0;  ///< NV checkpoint writes

    Joules
    total() const
    {
        return exec + backup;
    }
};

InstrCost
traceInstrCost(const EnergyModel &energy, const TraceBlock &blk)
{
    InstrCost cost;
    cost.exec = energy.fetchEnergy() +
                energy.estimateInstructionEnergy(blk.op,
                                                 blk.touchedCols);
    cost.backup = energy.backupEnergyPerCycle();
    if (blk.op == Opcode::kActivateList ||
        blk.op == Opcode::kActivateRange) {
        cost.backup += energy.actRegisterBackupEnergy();
    }
    return cost;
}

/** Shared harvesting-loop state. */
struct HarvestEnv
{
    HarvestEnv(const EnergyModel &energy, const HarvestConfig &cfg)
        : cap(cfg.capacitanceOverride > 0.0
                  ? cfg.capacitanceOverride
                  : energy.config().bufferCapacitance,
              cfg.startEmpty ? 0.0 : energy.config().capVoltageLow),
          converter(cfg.converterEfficiency),
          constantSource(cfg.sourcePower),
          source(cfg.source ? *cfg.source : constantSource),
          varying(cfg.source != nullptr),
          vLow(energy.config().capVoltageLow),
          vHigh(energy.config().capVoltageHigh)
    {
    }

    /** Advance the wall clock (active/dead/restore time). */
    void
    advance(Seconds dt)
    {
        now += dt;
    }

    /** Charge to the restart voltage, logging the off time. */
    void
    rechargeTo(Volts v, RunStats &stats)
    {
        if (!varying) {
            const Seconds dt =
                cap.timeToCharge(v, source.power(now));
            stats.chargingTime += dt;
            now += dt;
            cap.setVoltage(v);
            return;
        }
        // Time-varying source: integrate numerically.  Step size is
        // a fraction of the remaining charge estimate, bounded so
        // fast transients are still resolved.
        Seconds charged = 0.0;
        while (cap.voltage() < v) {
            const Watts p = std::max(source.power(now), 1e-12);
            const Seconds estimate = cap.timeToCharge(v, p);
            const Seconds dt =
                std::clamp(estimate / 64.0, 1e-5, 0.25);
            cap.charge(p, std::min(dt, estimate));
            now += std::min(dt, estimate);
            charged += std::min(dt, estimate);
            if (charged > 1e7) {
                mouse_fatal("source never refills the buffer "
                            "(charged for >115 days of sim time)");
            }
        }
        stats.chargingTime += charged;
    }

    Joules
    available() const
    {
        return cap.energyAbove(vLow);
    }

    /** Draw @p load joules of *load-side* energy from the buffer. */
    void
    drawLoad(Joules load)
    {
        cap.draw(converter.bufferEnergyFor(load));
    }

    Capacitor cap;
    SwitchedCapConverter converter;
    ConstantPowerSource constantSource;
    const PowerSource &source;
    bool varying;
    Volts vLow;
    Volts vHigh;
    /** Absolute simulation time (for time-varying sources). */
    Seconds now = 0.0;
};

} // namespace

RunStats
runContinuousFunctional(Controller &ctrl)
{
    RunStats stats;
    const Seconds cycle = ctrl.energyModel().cycleTime();
    while (!ctrl.halted()) {
        const StepResult r = ctrl.step();
        stats.computeEnergy += r.energy - r.backupEnergy;
        stats.backupEnergy += r.backupEnergy;
        stats.activeTime += cycle;
        if (!r.halted) {
            ++stats.instructionsCommitted;
        }
    }
    stats.idleEnergy +=
        ctrl.energyModel().idlePower() * stats.activeTime;
    return stats;
}

RunStats
runContinuousTrace(const Trace &trace, const EnergyModel &energy)
{
    RunStats stats;
    const Seconds cycle = energy.cycleTime();
    for (const TraceBlock &blk : trace.blocks) {
        const InstrCost cost = traceInstrCost(energy, blk);
        const double n = static_cast<double>(blk.count);
        stats.computeEnergy += cost.exec * n;
        stats.backupEnergy += cost.backup * n;
        stats.activeTime += cycle * n;
        stats.instructionsCommitted += blk.count;
    }
    stats.idleEnergy +=
        energy.idlePower() * stats.activeTime;
    return stats;
}

RunStats
runHarvestedTrace(const Trace &trace, const EnergyModel &energy,
                  const HarvestConfig &harvest)
{
    RunStats stats;
    const Seconds cycle = energy.cycleTime();
    HarvestEnv env(energy, harvest);
    env.rechargeTo(env.vHigh, stats);

    const unsigned period = std::max(1u, harvest.checkpointPeriod);
    // Instructions committed since the last checkpoint; they would
    // be replayed by an outage (Section IV-D trade-off).
    std::uint64_t uncheckpointed = 0;

    for (const TraceBlock &blk : trace.blocks) {
        InstrCost cost = traceInstrCost(energy, blk);
        // A wider checkpoint period amortizes the per-cycle backup.
        cost.backup /= period;
        const Joules buffer_cost =
            env.converter.bufferEnergyFor(cost.total());
        std::uint64_t remaining = blk.count;
        unsigned consecutive_failures = 0;
        while (remaining > 0) {
            const Joules avail = env.available();
            // The source keeps trickling into the buffer while MOUSE
            // executes; the net drain per instruction is what
            // determines how many fit in the burst.  With a source
            // stronger than the draw, execution is continuous.
            const Joules credit =
                env.source.power(env.now) * cycle;
            const Joules net = buffer_cost > credit
                                   ? buffer_cost - credit
                                   : 0.0;
            const std::uint64_t fit =
                net > 0.0
                    ? static_cast<std::uint64_t>(avail / net)
                    : remaining;
            const std::uint64_t n = std::min(remaining, fit);
            if (n > 0) {
                consecutive_failures = 0;
                const double nd = static_cast<double>(n);
                env.cap.draw(net * nd);
                env.advance(cycle * nd);
                stats.computeEnergy += cost.exec * nd;
                stats.backupEnergy += cost.backup * nd;
                stats.activeTime += cycle * nd;
                stats.instructionsCommitted += n;
                uncheckpointed = (uncheckpointed + n) % period;
                remaining -= n;
                continue;
            }
            // Outage mid-instruction: the attempt drains the buffer
            // to the shutdown voltage and all of it is Dead.
            const double fraction =
                buffer_cost > 0.0 ? avail / buffer_cost : 0.0;
            stats.deadEnergy +=
                avail * env.converter.efficiency();
            stats.deadTime += cycle * std::min(1.0, fraction);
            env.advance(cycle * std::min(1.0, fraction));
            ++stats.instructionsDead;
            ++stats.outages;
            env.cap.draw(avail);

            env.rechargeTo(env.vHigh, stats);
            // Restart: re-issue the (single, in compiled kernels)
            // Activate Columns checkpoint.
            const Joules restore =
                energy.restoreEnergy(1, blk.activeColsAfter);
            stats.restoreEnergy += restore;
            stats.restoreTime += cycle;
            env.advance(cycle);
            env.drawLoad(restore);

            if (uncheckpointed > 0) {
                // Replay the instructions committed since the last
                // checkpoint: their re-execution is Dead work and
                // drains the fresh burst.  (Re-running them is
                // idempotent, so only cost — not state — matters.)
                const double replay =
                    static_cast<double>(uncheckpointed);
                const Joules replay_cost = cost.total() * replay;
                stats.deadEnergy += replay_cost;
                stats.deadTime += cycle * replay;
                ++stats.instructionsDead;
                env.advance(cycle * replay);
                env.drawLoad(replay_cost);
                uncheckpointed = 0;
            }

            if (++consecutive_failures > harvest.nonTerminationLimit) {
                mouse_fatal(
                    "non-termination: buffer of %.3g J per burst "
                    "cannot cover one %.3g J instruction plus "
                    "restore; reduce parallelism or enlarge the "
                    "capacitor",
                    env.cap.energyAbove(env.vLow), buffer_cost);
            }
        }
    }
    stats.idleEnergy += energy.idlePower() * stats.activeTime;
    return stats;
}

namespace
{

/** Map the failing load fraction onto a Figure-7 micro-step. */
MicroStep
microStepFor(double fraction, Rng &rng)
{
    // The fetch and commit machinery occupy small windows at the
    // cycle's ends; most of the cycle is the array operation.  Add
    // jitter so repeated outages do not always land identically.
    const double f =
        std::clamp(fraction + rng.uniform(-0.05, 0.05), 0.0, 1.0);
    if (f < 0.08) {
        return MicroStep::kFetch;
    }
    if (f < 0.80) {
        return MicroStep::kExecute;
    }
    if (f < 0.94) {
        return MicroStep::kWritePc;
    }
    return MicroStep::kCommit;
}

} // namespace

RunStats
runHarvestedFunctional(Controller &ctrl, const HarvestConfig &harvest)
{
    RunStats stats;
    const EnergyModel &energy = ctrl.energyModel();
    const Seconds cycle = energy.cycleTime();
    HarvestEnv env(energy, harvest);
    Rng rng(harvest.seed);
    env.rechargeTo(env.vHigh, stats);

    unsigned consecutive_failures = 0;
    while (!ctrl.halted()) {
        const Instruction inst = ctrl.peekInstruction();
        InstrCost cost;
        cost.exec =
            energy.fetchEnergy() +
            energy.estimateInstructionEnergy(
                inst.op, ctrl.touchedColumns(inst));
        if (inst.op != Opcode::kHalt) {
            cost.backup = energy.backupEnergyPerCycle();
            if (inst.op == Opcode::kActivateList ||
                inst.op == Opcode::kActivateRange) {
                cost.backup += energy.actRegisterBackupEnergy();
            }
        }
        const Joules buffer_cost =
            env.converter.bufferEnergyFor(cost.total());
        const Joules avail = env.available();

        if (avail >= buffer_cost) {
            consecutive_failures = 0;
            const StepResult r = ctrl.step();
            env.drawLoad(r.energy);
            // Source credit for the cycle, capped at the window top.
            env.cap.charge(env.source.power(env.now), cycle);
            if (env.cap.voltage() > env.vHigh) {
                env.cap.setVoltage(env.vHigh);
            }
            env.advance(cycle);
            stats.computeEnergy += r.energy - r.backupEnergy;
            stats.backupEnergy += r.backupEnergy;
            stats.activeTime += cycle;
            if (!r.halted) {
                ++stats.instructionsCommitted;
            }
            continue;
        }

        // The buffer cannot cover this instruction: it dies at the
        // micro-step where the energy runs out.
        const double fraction =
            buffer_cost > 0.0 ? avail / buffer_cost : 0.0;
        const MicroStep at = microStepFor(fraction, rng);
        const double exec_fraction = std::clamp(
            (fraction - 0.08) / 0.72, 0.0, 1.0);
        const Joules wasted = ctrl.stepInterrupted(at, exec_fraction);
        env.cap.draw(env.available());  // drained to the threshold
        stats.deadEnergy += wasted;
        stats.deadTime += cycle * std::min(1.0, fraction);
        env.advance(cycle * std::min(1.0, fraction));
        ++stats.instructionsDead;
        ++stats.outages;
        ctrl.powerLoss();

        env.rechargeTo(env.vHigh, stats);
        const RestartResult rr = ctrl.restart();
        stats.restoreEnergy += rr.restoreEnergy;
        stats.restoreTime +=
            cycle * static_cast<double>(rr.restoreCycles);
        env.advance(cycle * static_cast<double>(rr.restoreCycles));
        env.drawLoad(rr.restoreEnergy);

        if (++consecutive_failures > harvest.nonTerminationLimit) {
            mouse_fatal("non-termination at PC %zu: instruction "
                        "needs %.3g J but a full burst provides "
                        "%.3g J",
                        ctrl.pc(), buffer_cost, env.available());
        }
    }
    stats.idleEnergy += energy.idlePower() * stats.activeTime;
    return stats;
}

} // namespace mouse
