/**
 * @file
 * Run statistics following the EH-model metric taxonomy the paper
 * reports (Section VIII, Figures 10-12):
 *
 *  - Compute: fetch + array + peripheral energy of instructions that
 *    committed;
 *  - Backup: the continuous PC/parity checkpoint writes and the
 *    Activate Columns shadow-register writes;
 *  - Dead: energy spent on instruction attempts that an outage
 *    prevented from committing (re-performed work);
 *  - Restore: re-issuing the Activate Columns journal on restart;
 *  - Idle: standby leakage while energized.
 *
 * Latency splits likewise into active execution, dead (failed
 * attempts), restore cycles, and time spent powered off waiting for
 * the capacitor to recharge.  Backup has no latency: it happens
 * within each instruction cycle (Section VIII).
 */

#ifndef MOUSE_SIM_STATS_HH
#define MOUSE_SIM_STATS_HH

#include <cstdint>
#include <string>

#include "common/types.hh"

namespace mouse
{

/** Full accounting of one simulated inference run. */
struct RunStats
{
    // -- Work -----------------------------------------------------------
    /** Instructions that committed (program progress). */
    std::uint64_t instructionsCommitted = 0;
    /** Instruction attempts killed by outages. */
    std::uint64_t instructionsDead = 0;
    /** Number of power outages (= number of restarts). */
    std::uint64_t outages = 0;

    // -- Latency --------------------------------------------------------
    /** Time executing committed instructions. */
    Seconds activeTime = 0.0;
    /** Time lost to attempts that did not commit. */
    Seconds deadTime = 0.0;
    /** Time re-issuing activations on restart. */
    Seconds restoreTime = 0.0;
    /** Time powered off, waiting for the capacitor. */
    Seconds chargingTime = 0.0;

    Seconds
    totalTime() const
    {
        return activeTime + deadTime + restoreTime + chargingTime;
    }

    // -- Energy -----------------------------------------------------------
    Joules computeEnergy = 0.0;
    Joules backupEnergy = 0.0;
    Joules deadEnergy = 0.0;
    Joules restoreEnergy = 0.0;
    Joules idleEnergy = 0.0;

    Joules
    totalEnergy() const
    {
        return computeEnergy + backupEnergy + deadEnergy +
               restoreEnergy + idleEnergy;
    }

    // -- Derived shares (Figures 10-12 commentary) -----------------------
    double
    deadEnergyShare() const
    {
        return totalEnergy() > 0.0 ? deadEnergy / totalEnergy() : 0.0;
    }

    double
    backupEnergyShare() const
    {
        return totalEnergy() > 0.0 ? backupEnergy / totalEnergy() : 0.0;
    }

    double
    restoreEnergyShare() const
    {
        return totalEnergy() > 0.0 ? restoreEnergy / totalEnergy()
                                   : 0.0;
    }

    double
    deadTimeShare() const
    {
        return totalTime() > 0.0 ? deadTime / totalTime() : 0.0;
    }

    double
    restoreTimeShare() const
    {
        return totalTime() > 0.0 ? restoreTime / totalTime() : 0.0;
    }

    /** Multi-line human-readable summary. */
    std::string summary() const;
};

} // namespace mouse

#endif // MOUSE_SIM_STATS_HH
