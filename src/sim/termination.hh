/**
 * @file
 * Static forward-progress (non-termination) analysis.
 *
 * The paper (Sections I, IV-C) identifies non-termination as a core
 * intermittent-computing hazard: if the energy needed between two
 * checkpoints exceeds what one full buffer charge can deliver, the
 * device re-executes the same instruction forever.  MOUSE
 * checkpoints every instruction, so the per-checkpoint quantum is a
 * single instruction plus the restart restore — which this analyzer
 * bounds *statically* over a compiled trace, in the spirit of
 * CleanCut's compile-time energy checking but exact rather than
 * statistical (MOUSE programs are straight-line).
 *
 * The analysis answers, without simulation:
 *  - does every instruction fit in one buffer burst (with restore)?
 *  - which trace block is the binding constraint?
 *  - the minimum buffer capacitance and the maximum usable
 *    column-parallelism for a given environment.
 */

#ifndef MOUSE_SIM_TERMINATION_HH
#define MOUSE_SIM_TERMINATION_HH

#include "compile/program.hh"
#include "energy/energy_model.hh"
#include "sim/simulator.hh"

namespace mouse
{

/** Result of the static forward-progress analysis. */
struct TerminationReport
{
    /** Whether every instruction can complete within one burst. */
    bool terminates = false;
    /** Usable energy of one full buffer burst (load side). */
    Joules burstEnergy = 0.0;
    /** Cost of the most expensive single instruction (fetch + op +
     *  backup), load side. */
    Joules worstInstructionEnergy = 0.0;
    /** Restore cost charged after each restart for the binding
     *  block. */
    Joules worstRestoreEnergy = 0.0;
    /** Index of the binding block in the trace. */
    std::size_t bindingBlock = 0;
    /** Safety margin: burst / (worst instruction + restore).  > 1
     *  means forward progress is guaranteed; well above 1 means many
     *  instructions per burst. */
    double margin = 0.0;
    /** Smallest buffer capacitance (at the configured voltage
     *  window) that still guarantees progress. */
    Farads minCapacitance = 0.0;
};

/** Analyze a compressed trace against a harvesting environment. */
TerminationReport analyzeTermination(const Trace &trace,
                                     const EnergyModel &energy,
                                     const HarvestConfig &harvest);

/**
 * Largest column-parallelism for which a gate instruction still fits
 * in one burst of the configuration's buffer, i.e. the hard cap the
 * paper's Section VIII warning about "high levels of parallelism can
 * increase the restart cost" implies.
 */
unsigned maxSafeParallelism(const EnergyModel &energy,
                            const HarvestConfig &harvest);

} // namespace mouse

#endif // MOUSE_SIM_TERMINATION_HH
