#include "stats.hh"

#include <sstream>

namespace mouse
{

std::string
RunStats::summary() const
{
    std::ostringstream os;
    os << "instructions: " << instructionsCommitted << " committed, "
       << instructionsDead << " dead, " << outages << " outages\n";
    os << "latency [us]: total " << totalTime() * 1e6 << " (active "
       << activeTime * 1e6 << ", dead " << deadTime * 1e6
       << ", restore " << restoreTime * 1e6 << ", charging "
       << chargingTime * 1e6 << ")\n";
    os << "energy [uJ]: total " << totalEnergy() * 1e6 << " (compute "
       << computeEnergy * 1e6 << ", backup " << backupEnergy * 1e6
       << ", dead " << deadEnergy * 1e6 << ", restore "
       << restoreEnergy * 1e6 << ", idle " << idleEnergy * 1e6
       << ")";
    return os.str();
}

} // namespace mouse
