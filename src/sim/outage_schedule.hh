/**
 * @file
 * Scripted power-loss schedules for adversarial fault injection.
 *
 * The harvested simulators lose power wherever the capacitor model
 * happens to run dry; an OutageSchedule instead *names* the cut
 * points exactly — the index of the instruction attempt, the
 * micro-step of Figure 7 within it, and the intra-phase fraction —
 * so a campaign can enumerate every interruptible position of a run
 * (src/inject) and a failing schedule can be replayed bit-exactly.
 *
 * The schedule also carries the checkpoint discipline of the machine
 * under test: MOUSE commits its PC every cycle (checkpointPeriod 1);
 * SONIC-style baselines checkpoint a window of N instructions, so an
 * outage is *expected* to re-execute up to N committed instructions
 * (idempotently — the differential checker tells re-execution apart
 * from corruption).  restoreJournal=false models a broken restart
 * path that skips the Activate Columns journal replay, which the
 * checker must flag as corruption.
 */

#ifndef MOUSE_SIM_OUTAGE_SCHEDULE_HH
#define MOUSE_SIM_OUTAGE_SCHEDULE_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "controller/controller.hh"

namespace mouse
{

/** One scripted power cut. */
struct OutagePoint
{
    /**
     * Index of the instruction *attempt* at which the supply dies.
     * Every controller step — committed, interrupted, or replayed —
     * consumes one attempt index, so the position is deterministic
     * even in multi-outage schedules.
     */
    std::uint64_t attempt = 0;
    /** Micro-step at which the cut lands (Figure 7). */
    MicroStep step = MicroStep::kExecute;
    /** Fraction of the phase elapsed before the cut, in [0, 1]. */
    double fraction = 0.5;

    bool operator==(const OutagePoint &other) const = default;
};

/** A scripted outage run: cut points plus checkpoint discipline. */
struct OutageSchedule
{
    /** Cut points, sorted by attempt index (normalize() enforces). */
    std::vector<OutagePoint> points;
    /**
     * Checkpoint period of the machine under test.  1 is MOUSE's
     * per-cycle protocol; N > 1 emulates a SONIC-style window whose
     * restart rolls the PC back to the last checkpoint and
     * re-executes the window.
     */
    unsigned checkpointPeriod = 1;
    /**
     * Explicit checkpoint PCs for checkpointPeriod > 1 (sorted; must
     * start at the program's entry PC).  Restart rolls back to the
     * largest checkpoint <= the interrupted PC.  Re-executing an
     * arbitrary instruction window is only sound when the window is
     * free of write-after-read hazards, so checkpoint placement is
     * program-dependent — inject::idempotentCheckpoints() computes a
     * safe placement, the way SONIC's compiler restricts checkpoints
     * to idempotent section boundaries.  When empty, the runner falls
     * back to a boundary every checkpointPeriod committed
     * instructions (hazard-blind; fine for straight replay studies,
     * unsound as a correctness claim).
     */
    std::vector<std::uint32_t> checkpoints;
    /** Replay the Activate Columns journal on restart (the paper's
     *  protocol).  false models a defective restart path. */
    bool restoreJournal = true;

    /** Sort points by attempt and drop exact duplicates. */
    void normalize();

    /** Single-line JSON object (the replay-artifact payload). */
    std::string toJson() const;

    /**
     * Parse a toJson() document (tolerates surrounding whitespace
     * and unknown keys).  Returns nullopt on malformed input.
     */
    static std::optional<OutageSchedule>
    fromJson(const std::string &text);
};

/** Stable wire name of a micro-step ("fetch", "execute", ...). */
const char *microStepName(MicroStep step);

/** Parse microStepName() output back into a MicroStep. */
std::optional<MicroStep> parseMicroStep(const std::string &name);

} // namespace mouse

#endif // MOUSE_SIM_OUTAGE_SCHEDULE_HH
