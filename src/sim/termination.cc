#include "termination.hh"

#include "common/logging.hh"

namespace mouse
{

namespace
{

/** Load-side cost of one instruction of a block. */
Joules
blockInstructionEnergy(const EnergyModel &energy,
                       const TraceBlock &blk)
{
    Joules e = energy.fetchEnergy() +
               energy.estimateInstructionEnergy(blk.op,
                                                blk.touchedCols);
    e += energy.backupEnergyPerCycle();
    if (blk.op == Opcode::kActivateList ||
        blk.op == Opcode::kActivateRange) {
        e += energy.actRegisterBackupEnergy();
    }
    return e;
}

Joules
burstEnergyFor(const DeviceConfig &cfg, Farads capacitance)
{
    return 0.5 * capacitance *
           (cfg.capVoltageHigh * cfg.capVoltageHigh -
            cfg.capVoltageLow * cfg.capVoltageLow);
}

} // namespace

TerminationReport
analyzeTermination(const Trace &trace, const EnergyModel &energy,
                   const HarvestConfig &harvest)
{
    const DeviceConfig &cfg = energy.config();
    const Farads cap =
        effectiveCapacitance(harvest, cfg.bufferCapacitance);

    TerminationReport report;
    report.burstEnergy = burstEnergyFor(cfg, cap) *
                         effectiveConverterEfficiency(harvest);

    // The binding constraint is the block maximizing instruction +
    // restore cost (the restore after an outage inside that block
    // must fit in the same burst as the re-executed instruction).
    Joules worst_total = 0.0;
    for (std::size_t i = 0; i < trace.blocks.size(); ++i) {
        const TraceBlock &blk = trace.blocks[i];
        const Joules instr = blockInstructionEnergy(energy, blk);
        const Joules restore =
            energy.restoreEnergy(1, blk.activeColsAfter);
        if (instr + restore > worst_total) {
            worst_total = instr + restore;
            report.worstInstructionEnergy = instr;
            report.worstRestoreEnergy = restore;
            report.bindingBlock = i;
        }
    }
    mouse_assert(worst_total > 0.0, "empty trace");

    report.margin = report.burstEnergy / worst_total;
    report.terminates = report.margin > 1.0;
    report.minCapacitance =
        cap / report.margin;
    return report;
}

unsigned
maxSafeParallelism(const EnergyModel &energy,
                   const HarvestConfig &harvest)
{
    const DeviceConfig &cfg = energy.config();
    const Farads cap =
        effectiveCapacitance(harvest, cfg.bufferCapacitance);
    const Joules burst = burstEnergyFor(cfg, cap) *
                         effectiveConverterEfficiency(harvest);

    // Binary-search the widest gate instruction that still leaves
    // room for its own restore.  The ceiling is far above any
    // physical column count (a what-if analysis, not a layout).
    unsigned lo = 0;
    unsigned hi = 1u << 28;
    while (lo < hi) {
        const unsigned mid = lo + (hi - lo + 1) / 2;
        const Joules instr =
            energy.fetchEnergy() +
            energy.estimateInstructionEnergy(Opcode::kGateNand2,
                                             mid) +
            energy.backupEnergyPerCycle();
        const Joules restore = energy.restoreEnergy(1, mid);
        if (instr + restore < burst) {
            lo = mid;
        } else {
            hi = mid - 1;
        }
    }
    return lo;
}

} // namespace mouse
