#include "gate.hh"

#include "common/logging.hh"

namespace mouse
{

namespace
{

int
popcount3(unsigned inputs)
{
    return static_cast<int>((inputs & 1) + ((inputs >> 1) & 1) +
                            ((inputs >> 2) & 1));
}

} // namespace

int
gateNumInputs(GateType g)
{
    switch (g) {
      case GateType::kBuf:
      case GateType::kNot:
        return 1;
      case GateType::kAnd2:
      case GateType::kNand2:
      case GateType::kOr2:
      case GateType::kNor2:
        return 2;
      case GateType::kAnd3:
      case GateType::kNand3:
      case GateType::kOr3:
      case GateType::kNor3:
      case GateType::kMaj3:
      case GateType::kMin3:
        return 3;
      default:
        mouse_panic("bad gate type %d", static_cast<int>(g));
    }
}

Bit
gatePreset(GateType g)
{
    switch (g) {
      // Inverting gates preset to 0 and switch toward 1.
      case GateType::kNot:
      case GateType::kNand2:
      case GateType::kNor2:
      case GateType::kNand3:
      case GateType::kNor3:
      case GateType::kMin3:
        return 0;
      // Non-inverting gates preset to 1 and switch toward 0.
      case GateType::kBuf:
      case GateType::kAnd2:
      case GateType::kOr2:
      case GateType::kAnd3:
      case GateType::kOr3:
      case GateType::kMaj3:
        return 1;
      default:
        mouse_panic("bad gate type %d", static_cast<int>(g));
    }
}

Bit
gateTruth(GateType g, unsigned inputs)
{
    const unsigned a = inputs & 1;
    const unsigned b = (inputs >> 1) & 1;
    const unsigned c = (inputs >> 2) & 1;
    switch (g) {
      case GateType::kBuf:
        return static_cast<Bit>(a);
      case GateType::kNot:
        return static_cast<Bit>(!a);
      case GateType::kAnd2:
        return static_cast<Bit>(a & b);
      case GateType::kNand2:
        return static_cast<Bit>(!(a & b));
      case GateType::kOr2:
        return static_cast<Bit>(a | b);
      case GateType::kNor2:
        return static_cast<Bit>(!(a | b));
      case GateType::kAnd3:
        return static_cast<Bit>(a & b & c);
      case GateType::kNand3:
        return static_cast<Bit>(!(a & b & c));
      case GateType::kOr3:
        return static_cast<Bit>(a | b | c);
      case GateType::kNor3:
        return static_cast<Bit>(!(a | b | c));
      case GateType::kMaj3:
        return static_cast<Bit>(popcount3(inputs) >= 2);
      case GateType::kMin3:
        return static_cast<Bit>(popcount3(inputs) < 2);
      default:
        mouse_panic("bad gate type %d", static_cast<int>(g));
    }
}

std::string
gateName(GateType g)
{
    switch (g) {
      case GateType::kBuf: return "BUF";
      case GateType::kNot: return "NOT";
      case GateType::kAnd2: return "AND2";
      case GateType::kNand2: return "NAND2";
      case GateType::kOr2: return "OR2";
      case GateType::kNor2: return "NOR2";
      case GateType::kAnd3: return "AND3";
      case GateType::kNand3: return "NAND3";
      case GateType::kOr3: return "OR3";
      case GateType::kNor3: return "NOR3";
      case GateType::kMaj3: return "MAJ3";
      case GateType::kMin3: return "MIN3";
      default: return "???";
    }
}

} // namespace mouse
