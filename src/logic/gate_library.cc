#include "gate_library.hh"

#include <algorithm>

#include "common/logging.hh"
#include "device/network.hh"

namespace mouse
{

GateLibrary::GateLibrary(const DeviceConfig &cfg, double margin)
    : cfg_(cfg)
{
    // With parasitic wires the operating points must cover the worst
    // operand placement: a full-tile row span.
    const unsigned max_span =
        cfg.wireResistancePerCell > 0.0 ? 1023 : 0;
    for (int i = 0; i < kNumGateTypes; ++i) {
        gates_[static_cast<std::size_t>(i)] =
            solveGate(cfg_, static_cast<GateType>(i), margin,
                      max_span);
        opTables_[static_cast<std::size_t>(i)] =
            opTableAtSpan(static_cast<GateType>(i), 0);
    }

    // Write pulse: drive overdrive * I_c through the worst-case
    // (anti-parallel) write path.  For SHE cells the write path is
    // state-independent and cheap — the key SHE efficiency win.
    const Ohms worst_write_r = std::max(
        writePathResistance(cfg_, MtjState::P),
        writePathResistance(cfg_, MtjState::AP));
    const Amperes i_write =
        kWriteOverdrive * cfg_.mtj.switchingCurrent;
    write_.voltage = i_write * worst_write_r;
    write_.pulseTime = cfg_.mtj.switchingTime;
    write_.energy = write_.voltage * i_write * write_.pulseTime;

    // Read pulse: sense with a sub-critical current through the
    // low-resistance (parallel) path so the worst case stays safely
    // below threshold, for one switching time.
    const Amperes i_read =
        kReadCurrentFraction * cfg_.mtj.switchingCurrent;
    const Ohms read_r_low = readPathResistance(cfg_, MtjState::P);
    read_.voltage = i_read * read_r_low;
    read_.pulseTime = cfg_.mtj.switchingTime;
    read_.energy = read_.voltage * i_read * read_.pulseTime;

    // A universal gate set must exist for every supported
    // configuration, otherwise the compiler cannot target it.
    mouse_assert(feasible(GateType::kNand2) && feasible(GateType::kNot),
                 "NAND2/NOT infeasible: configuration unusable");
}

GateOpTable
GateLibrary::opTableAtSpan(GateType g, unsigned row_span) const
{
    const SolvedGate &solved = gate(g);
    GateOpTable t;
    t.numCombos = 1u << gateNumInputs(g);
    if (!solved.feasible) {
        return t;
    }
    for (unsigned combo = 0; combo < t.numCombos; ++combo) {
        for (unsigned out = 0; out < 2; ++out) {
            const Amperes i = gateOutputCurrentFactored(
                cfg_, solved.voltage, solved.inputParallelR[combo],
                stateFromBit(static_cast<Bit>(out)), row_span);
            t.current[combo][out] = i;
            t.pulseEnergy[combo][out] =
                solved.voltage * i * solved.pulseTime;
            t.switches[combo][out] = i >= cfg_.mtj.switchingCurrent;
        }
    }
    return t;
}

std::vector<GateType>
GateLibrary::feasibleGates() const
{
    std::vector<GateType> out;
    for (int i = 0; i < kNumGateTypes; ++i) {
        const auto g = static_cast<GateType>(i);
        if (feasible(g)) {
            out.push_back(g);
        }
    }
    return out;
}

} // namespace mouse
