/**
 * @file
 * Operating-point solver for CRAM threshold gates.
 *
 * For a gate to work, the applied voltage V must satisfy, for every
 * input combination:
 *
 *   should-switch:   V / R_loop(combo) >= I_c   (output must flip)
 *   must-not-switch: V / R_loop(combo) <  I_c   (output must hold)
 *
 * which defines a feasible window [vMin, vMax):
 *
 *   vMin = I_c * max{R_loop : combo should switch}
 *   vMax = I_c * min{R_loop : combo must not switch}
 *
 * Real devices need noise margin: we require
 * vMin * (1 + margin) <= vMax * (1 - margin) and operate at the
 * geometric centre of the margined window.  Gates whose window
 * collapses for a given technology (e.g. MAJ3 on low-TMR modern
 * MTJs) are reported infeasible and the compiler avoids them.
 */

#ifndef MOUSE_LOGIC_GATE_SOLVER_HH
#define MOUSE_LOGIC_GATE_SOLVER_HH

#include <array>

#include "common/types.hh"
#include "device/mtj_params.hh"
#include "logic/gate.hh"

namespace mouse
{

/** Default relative noise margin on both window edges. */
constexpr double kDefaultGateMargin = 0.05;

/** Result of solving one gate type for one device configuration. */
struct SolvedGate
{
    GateType type = GateType::kNand2;
    bool feasible = false;
    /** Largest input-to-output row distance the operating point is
     *  guaranteed for (only meaningful with wire parasitics). */
    unsigned maxRowSpan = 0;
    /** Raw feasible window (margin not yet applied). */
    Volts vMin = 0.0;
    Volts vMax = 0.0;
    /** Chosen operating voltage; 0 when infeasible. */
    Volts voltage = 0.0;
    /** Margin requirement the solution satisfies. */
    double margin = kDefaultGateMargin;
    /** Pulse duration (the device switching time). */
    Seconds pulseTime = 0.0;
    /**
     * Supply energy of one pulse for each input combination
     * (index = packed input bits).  Only the first 2^numInputs
     * entries are meaningful.
     */
    std::array<Joules, 8> energyByCombo{};
    /**
     * Parallel resistance of the input branch group per packed input
     * combination — the factored term of the loop resistance that the
     * word-parallel execution path re-derives span-dependent currents
     * from without re-solving the network.
     */
    std::array<Ohms, 8> inputParallelR{};
    /** Max and mean of energyByCombo over valid combos. */
    Joules worstEnergy = 0.0;
    Joules avgEnergy = 0.0;
};

/**
 * Solve the operating point of @p gate under @p cfg.
 *
 * With wire parasitics, the window is solved for the worst case on
 * both edges: must-switch combinations at the largest row span
 * (most series wire, least current) and must-hold combinations at
 * span zero (least wire, most current) — so one voltage serves any
 * operand placement up to @p max_row_span.
 *
 * @param cfg Device configuration.
 * @param gate Gate type to solve.
 * @param margin Relative noise margin (both edges).
 * @param max_row_span Largest input-to-output row distance the
 *        operating point must support (ignored with ideal wires).
 */
SolvedGate solveGate(const DeviceConfig &cfg, GateType gate,
                     double margin = kDefaultGateMargin,
                     unsigned max_row_span = 0);

/**
 * Physically evaluate a gate at a given voltage: compute the output
 * current for the input combination and apply the threshold.
 *
 * @param row_span Actual logic-line distance of this execution.
 * @return Final output bit (preset if the current is sub-critical,
 *         !preset otherwise).
 */
Bit gatePhysicalOutput(const DeviceConfig &cfg, GateType gate,
                       Volts voltage, unsigned inputs,
                       unsigned row_span = 0);

} // namespace mouse

#endif // MOUSE_LOGIC_GATE_SOLVER_HH
