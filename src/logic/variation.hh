/**
 * @file
 * Device-variation robustness analysis (Monte Carlo).
 *
 * The paper's correctness story assumes nominal device parameters;
 * real MTJ arrays show die-to-die and cell-to-cell spread in
 * resistance and critical current.  This module quantifies how much
 * spread each gate tolerates: every trial perturbs the input/output
 * MTJ resistances and the switching threshold by log-normal factors,
 * recomputes the gate current at the solved operating voltage, and
 * checks the threshold decision against the ideal truth table.
 *
 * The result backs two design knobs with numbers:
 *  - the noise margin passed to the gate solver (wider margins buy
 *    variation tolerance at the cost of the feasible gate set);
 *  - the STT-vs-SHE choice (the SHE output path removes the output
 *    MTJ resistance from the divider, widening effective margins).
 */

#ifndef MOUSE_LOGIC_VARIATION_HH
#define MOUSE_LOGIC_VARIATION_HH

#include "common/rng.hh"
#include "logic/gate_library.hh"

namespace mouse
{

/** Variation magnitudes (relative sigmas of log-normal factors). */
struct VariationModel
{
    /** MTJ resistance spread (both states, independent per cell). */
    double resistanceSigma = 0.05;
    /** Critical switching current spread of the output cell. */
    double switchingCurrentSigma = 0.05;
};

/** Monte Carlo outcome for one gate. */
struct VariationResult
{
    GateType gate = GateType::kNand2;
    std::uint64_t trials = 0;
    std::uint64_t failures = 0;

    double
    errorRate() const
    {
        return trials ? static_cast<double>(failures) /
                            static_cast<double>(trials)
                      : 0.0;
    }
};

/**
 * Estimate the per-operation error rate of @p gate under variation.
 *
 * @param lib Solved library (provides the operating voltage).
 * @param gate Gate to stress; must be feasible in @p lib.
 * @param model Variation magnitudes.
 * @param trials Monte Carlo sample count (spread across all input
 *        combinations uniformly).
 * @param rng Deterministic sample stream.
 */
VariationResult gateErrorRate(const GateLibrary &lib, GateType gate,
                              const VariationModel &model,
                              std::uint64_t trials, Rng &rng);

} // namespace mouse

#endif // MOUSE_LOGIC_VARIATION_HH
