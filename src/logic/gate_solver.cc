#include "gate_solver.hh"

#include <cmath>
#include <limits>
#include <vector>

#include "common/logging.hh"
#include "device/network.hh"

namespace mouse
{

namespace
{

std::vector<MtjState>
unpackInputs(unsigned inputs, int n)
{
    std::vector<MtjState> states;
    states.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
        states.push_back(stateFromBit((inputs >> i) & 1));
    }
    return states;
}

} // namespace

SolvedGate
solveGate(const DeviceConfig &cfg, GateType gate, double margin,
          unsigned max_row_span)
{
    SolvedGate solved;
    solved.type = gate;
    solved.margin = margin;
    solved.maxRowSpan = max_row_span;
    solved.pulseTime = cfg.mtj.switchingTime;

    const int n = gateNumInputs(gate);
    const unsigned num_combos = 1u << n;
    const MtjState preset = stateFromBit(gatePreset(gate));
    const Amperes ic = cfg.mtj.switchingCurrent;

    solved.inputParallelR = comboParallelResistances(cfg, n);

    // Find the feasible window over all input combinations: switch
    // cases see the most wire (max span), hold cases the least.
    Ohms max_switch_r = 0.0;
    Ohms min_hold_r = std::numeric_limits<Ohms>::infinity();
    for (unsigned combo = 0; combo < num_combos; ++combo) {
        if (gateShouldSwitch(gate, combo)) {
            const Ohms r = gateLoopResistance(
                cfg, unpackInputs(combo, n), preset, max_row_span);
            max_switch_r = std::max(max_switch_r, r);
        } else {
            const Ohms r = gateLoopResistance(
                cfg, unpackInputs(combo, n), preset, 0);
            min_hold_r = std::min(min_hold_r, r);
        }
    }
    mouse_assert(max_switch_r > 0.0,
                 "gate with no switching combo is a constant");

    solved.vMin = ic * max_switch_r;
    solved.vMax = std::isinf(min_hold_r)
                      ? solved.vMin * 10.0  // no hold combo: wide open
                      : ic * min_hold_r;

    const Volts lo = solved.vMin * (1.0 + margin);
    const Volts hi = solved.vMax * (1.0 - margin);
    if (lo > hi) {
        solved.feasible = false;
        return solved;
    }
    solved.feasible = true;
    // Geometric centre keeps relative margin symmetric on both edges.
    solved.voltage = std::sqrt(lo * hi);
    // Rail awareness: prefer a voltage the switched-capacitor
    // converter can actually produce from the bottom of the buffer
    // window.  When even the highest rail misses the window the gate
    // stays feasible — deployment then needs the extended ratio set
    // (see harvest/converter.hh and bench_converter_rails).
    const Volts max_rail = kMaxConverterRatio * cfg.capVoltageLow;
    if (solved.voltage > max_rail && max_rail >= lo) {
        solved.voltage = max_rail;
    }

    Joules sum = 0.0;
    for (unsigned combo = 0; combo < num_combos; ++combo) {
        const Amperes i = gateOutputCurrent(
            cfg, solved.voltage, unpackInputs(combo, n), preset);
        const Joules e = solved.voltage * i * solved.pulseTime;
        solved.energyByCombo[combo] = e;
        solved.worstEnergy = std::max(solved.worstEnergy, e);
        sum += e;
    }
    solved.avgEnergy = sum / num_combos;
    return solved;
}

Bit
gatePhysicalOutput(const DeviceConfig &cfg, GateType gate, Volts voltage,
                   unsigned inputs, unsigned row_span)
{
    const int n = gateNumInputs(gate);
    const Bit preset = gatePreset(gate);
    const Amperes i = gateOutputCurrent(cfg, voltage,
                                        unpackInputs(inputs, n),
                                        stateFromBit(preset),
                                        row_span);
    const bool switches = i >= cfg.mtj.switchingCurrent;
    return switches ? static_cast<Bit>(!preset) : preset;
}

} // namespace mouse
