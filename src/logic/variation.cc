#include "variation.hh"

#include <cmath>

#include "common/logging.hh"
#include "device/network.hh"

namespace mouse
{

namespace
{

/** Log-normal factor with median 1 and log-sigma @p sigma. */
double
lognormal(Rng &rng, double sigma)
{
    return std::exp(sigma * rng.normal());
}

} // namespace

VariationResult
gateErrorRate(const GateLibrary &lib, GateType gate,
              const VariationModel &model, std::uint64_t trials,
              Rng &rng)
{
    const SolvedGate &solved = lib.gate(gate);
    mouse_assert(solved.feasible, "stressing an infeasible gate");
    const DeviceConfig &cfg = lib.config();
    const int n = gateNumInputs(gate);
    const Bit preset = gatePreset(gate);
    const MtjState preset_state = stateFromBit(preset);

    VariationResult result;
    result.gate = gate;
    result.trials = trials;

    for (std::uint64_t t = 0; t < trials; ++t) {
        const unsigned combo =
            static_cast<unsigned>(t % (1ull << n));
        // Perturbed input branches.
        std::vector<Ohms> branches;
        branches.reserve(static_cast<std::size_t>(n));
        for (int i = 0; i < n; ++i) {
            const MtjState s = stateFromBit((combo >> i) & 1);
            const Ohms nominal = s == MtjState::AP
                                     ? cfg.mtj.rAntiParallel
                                     : cfg.mtj.rParallel;
            Ohms branch = nominal *
                          lognormal(rng, model.resistanceSigma);
            branch += cfg.accessTransistorR;
            if (cfg.cell == CellKind::She2T1M) {
                branch += cfg.sheChannelR;
            }
            branches.push_back(branch);
        }
        // Perturbed output branch.
        Ohms out_branch;
        if (cfg.cell == CellKind::She2T1M) {
            out_branch = cfg.sheChannelR + cfg.accessTransistorR;
        } else {
            const Ohms nominal = preset_state == MtjState::AP
                                     ? cfg.mtj.rAntiParallel
                                     : cfg.mtj.rParallel;
            out_branch = nominal *
                             lognormal(rng, model.resistanceSigma) +
                         cfg.accessTransistorR;
        }
        const Amperes current =
            solved.voltage /
            (parallelResistance(branches) + out_branch);
        const Amperes threshold =
            cfg.mtj.switchingCurrent *
            lognormal(rng, model.switchingCurrentSigma);

        const bool switches = current >= threshold;
        const Bit out = switches ? static_cast<Bit>(!preset) : preset;
        result.failures += out != gateTruth(gate, combo);
    }
    return result;
}

} // namespace mouse
