/**
 * @file
 * Per-technology library of solved gates plus memory-operation
 * operating points (write and read pulses).
 *
 * The library is the single source of truth for "what does one
 * in-array operation cost" — both the tile-level functional
 * simulator and the trace-level performance model draw from it, so
 * the two fidelity levels can never disagree on device energy.
 */

#ifndef MOUSE_LOGIC_GATE_LIBRARY_HH
#define MOUSE_LOGIC_GATE_LIBRARY_HH

#include <array>
#include <vector>

#include "common/types.hh"
#include "device/mtj_params.hh"
#include "logic/gate.hh"
#include "logic/gate_solver.hh"

namespace mouse
{

/** Operating point of a memory write pulse. */
struct WriteOp
{
    /** Voltage chosen to push overdrive * I_c through the worst-case
     *  (highest resistance) write path. */
    Volts voltage = 0.0;
    /** Supply energy of a single-cell write pulse. */
    Joules energy = 0.0;
    Seconds pulseTime = 0.0;
};

/** Operating point of a memory read (sense) pulse. */
struct ReadOp
{
    Volts voltage = 0.0;
    /** Supply energy of sensing a single cell. */
    Joules energy = 0.0;
    Seconds pulseTime = 0.0;
};

/** Solved gates and memory operations for one device configuration. */
class GateLibrary
{
  public:
    /** Current overdrive factor applied to write pulses. */
    static constexpr double kWriteOverdrive = 1.2;
    /** Read current as a fraction of the switching current, keeping
     *  reads non-destructive. */
    static constexpr double kReadCurrentFraction = 0.3;

    explicit GateLibrary(const DeviceConfig &cfg,
                         double margin = kDefaultGateMargin);

    const DeviceConfig &config() const { return cfg_; }

    const SolvedGate &
    gate(GateType g) const
    {
        return gates_[static_cast<std::size_t>(g)];
    }

    bool feasible(GateType g) const { return gate(g).feasible; }

    /** Energy of one gate pulse for a specific input combination. */
    Joules
    gateEnergy(GateType g, unsigned inputs) const
    {
        return gate(g).energyByCombo[inputs];
    }

    /** Worst-case (max over combos) energy of one gate pulse. */
    Joules gateWorstEnergy(GateType g) const { return gate(g).worstEnergy; }

    /** Mean-over-combos energy of one gate pulse; used by the trace
     *  model when the data values are not simulated. */
    Joules gateAvgEnergy(GateType g) const { return gate(g).avgEnergy; }

    /** Physically evaluate a gate (threshold model) at its solved
     *  operating voltage. */
    Bit
    evaluate(GateType g, unsigned inputs) const
    {
        return gatePhysicalOutput(cfg_, g, gate(g).voltage, inputs);
    }

    const WriteOp &writeOp() const { return write_; }
    const ReadOp &readOp() const { return read_; }

    /** All gate types feasible under this technology. */
    std::vector<GateType> feasibleGates() const;

  private:
    DeviceConfig cfg_;
    std::array<SolvedGate, kNumGateTypes> gates_;
    WriteOp write_;
    ReadOp read_;
};

} // namespace mouse

#endif // MOUSE_LOGIC_GATE_LIBRARY_HH
