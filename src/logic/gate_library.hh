/**
 * @file
 * Per-technology library of solved gates plus memory-operation
 * operating points (write and read pulses).
 *
 * The library is the single source of truth for "what does one
 * in-array operation cost" — both the tile-level functional
 * simulator and the trace-level performance model draw from it, so
 * the two fidelity levels can never disagree on device energy.
 */

#ifndef MOUSE_LOGIC_GATE_LIBRARY_HH
#define MOUSE_LOGIC_GATE_LIBRARY_HH

#include <array>
#include <vector>

#include "common/types.hh"
#include "device/mtj_params.hh"
#include "logic/gate.hh"
#include "logic/gate_solver.hh"

namespace mouse
{

/** Operating point of a memory write pulse. */
struct WriteOp
{
    /** Voltage chosen to push overdrive * I_c through the worst-case
     *  (highest resistance) write path. */
    Volts voltage = 0.0;
    /** Supply energy of a single-cell write pulse. */
    Joules energy = 0.0;
    Seconds pulseTime = 0.0;
};

/** Operating point of a memory read (sense) pulse. */
struct ReadOp
{
    Volts voltage = 0.0;
    /** Supply energy of sensing a single cell. */
    Joules energy = 0.0;
    Seconds pulseTime = 0.0;
};

/**
 * Operating table of one gate execution at one operand row span:
 * for every (packed input combination × actual output state), the
 * output-device current, the supply energy of one full pulse, and
 * whether that current exceeds the critical current.  This is the
 * lookup table the word-parallel Tile path folds popcounts against —
 * at most 2^n × 2 entries replace one network solve per column.
 */
struct GateOpTable
{
    unsigned numCombos = 0;
    /** [packed combo][actual output state (P=0, AP=1)]. */
    std::array<std::array<Amperes, 2>, 8> current{};
    /** Supply energy of one complete pulse, (V·I)·t. */
    std::array<std::array<Joules, 2>, 8> pulseEnergy{};
    /** current >= switchingCurrent (threshold decision). */
    std::array<std::array<bool, 2>, 8> switches{};
};

/** Solved gates and memory operations for one device configuration. */
class GateLibrary
{
  public:
    /** Current overdrive factor applied to write pulses. */
    static constexpr double kWriteOverdrive = 1.2;
    /** Read current as a fraction of the switching current, keeping
     *  reads non-destructive. */
    static constexpr double kReadCurrentFraction = 0.3;

    explicit GateLibrary(const DeviceConfig &cfg,
                         double margin = kDefaultGateMargin);

    const DeviceConfig &config() const { return cfg_; }

    const SolvedGate &
    gate(GateType g) const
    {
        return gates_[static_cast<std::size_t>(g)];
    }

    bool feasible(GateType g) const { return gate(g).feasible; }

    /** Energy of one gate pulse for a specific input combination. */
    Joules
    gateEnergy(GateType g, unsigned inputs) const
    {
        return gate(g).energyByCombo[inputs];
    }

    /** Worst-case (max over combos) energy of one gate pulse. */
    Joules gateWorstEnergy(GateType g) const { return gate(g).worstEnergy; }

    /** Mean-over-combos energy of one gate pulse; used by the trace
     *  model when the data values are not simulated. */
    Joules gateAvgEnergy(GateType g) const { return gate(g).avgEnergy; }

    /** Physically evaluate a gate (threshold model) at its solved
     *  operating voltage. */
    Bit
    evaluate(GateType g, unsigned inputs) const
    {
        return gatePhysicalOutput(cfg_, g, gate(g).voltage, inputs);
    }

    const WriteOp &writeOp() const { return write_; }
    const ReadOp &readOp() const { return read_; }

    /**
     * Span-0 operating table of @p g, cached at construction.  For
     * the standard technologies (wireResistancePerCell == 0) the
     * logic-line term is identically zero, so this one table is
     * bit-exact at *any* operand row span.
     */
    const GateOpTable &
    opTable(GateType g) const
    {
        return opTables_[static_cast<std::size_t>(g)];
    }

    /**
     * Span-dependent operating table for parasitic-wire
     * configurations: re-derives the ≤16 currents from the factored
     * combo resistances (SolvedGate::inputParallelR) at @p row_span,
     * matching the per-column solver bit for bit.
     */
    GateOpTable opTableAtSpan(GateType g, unsigned row_span) const;

    /** All gate types feasible under this technology. */
    std::vector<GateType> feasibleGates() const;

  private:
    DeviceConfig cfg_;
    std::array<SolvedGate, kNumGateTypes> gates_;
    std::array<GateOpTable, kNumGateTypes> opTables_;
    WriteOp write_;
    ReadOp read_;
};

} // namespace mouse

#endif // MOUSE_LOGIC_GATE_LIBRARY_HH
