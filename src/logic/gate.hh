/**
 * @file
 * CRAM threshold-logic gate definitions.
 *
 * Every MOUSE gate follows the same template (Section II-B):
 * the output MTJ is preset to a known value, a voltage pulse drives a
 * current whose magnitude depends on the input MTJ resistances, and
 * the output switches away from its preset iff the current exceeds
 * the critical switching current.  The gate *type* is fully
 * determined by the number of inputs, the preset value, and the
 * applied voltage level; the current direction is always the one
 * that drives the output from preset toward !preset.
 */

#ifndef MOUSE_LOGIC_GATE_HH
#define MOUSE_LOGIC_GATE_HH

#include <cstdint>
#include <string>

#include "common/types.hh"

namespace mouse
{

/** Gate types implementable as single-threshold CRAM operations. */
enum class GateType : std::uint8_t
{
    kBuf,    ///< out = a          (1 input, preset 1, switch on a=0)
    kNot,    ///< out = !a         (1 input, preset 0, switch on a=0)
    kAnd2,   ///< out = a & b      (preset 1)
    kNand2,  ///< out = !(a & b)   (preset 0)
    kOr2,    ///< out = a | b      (preset 1)
    kNor2,   ///< out = !(a | b)   (preset 0)
    kAnd3,   ///< out = a & b & c  (preset 1)
    kNand3,  ///< out = !(a&b&c)   (preset 0)
    kOr3,    ///< out = a | b | c  (preset 1)
    kNor3,   ///< out = !(a|b|c)   (preset 0)
    kMaj3,   ///< out = majority   (preset 1)
    kMin3,   ///< out = !majority  (preset 0)

    kNumGateTypes,
};

constexpr int kNumGateTypes =
    static_cast<int>(GateType::kNumGateTypes);

/** Number of input rows the gate consumes (1, 2, or 3). */
int gateNumInputs(GateType g);

/** Logic value the output MTJ must be preset to before the pulse. */
Bit gatePreset(GateType g);

/**
 * Ideal truth function of the gate.
 *
 * @param g Gate type.
 * @param inputs Input bits packed LSB-first (bit i = input i).
 * @return The boolean output.
 */
Bit gateTruth(GateType g, unsigned inputs);

/**
 * Whether the output MTJ should switch away from its preset for the
 * given input combination (i.e. truth != preset).
 */
inline bool
gateShouldSwitch(GateType g, unsigned inputs)
{
    return gateTruth(g, inputs) != gatePreset(g);
}

/** Short mnemonic, e.g. "NAND2". */
std::string gateName(GateType g);

} // namespace mouse

#endif // MOUSE_LOGIC_GATE_HH
