/**
 * @file
 * Instruction-level energy model (paper Section VIII).
 *
 * Per-instruction energy has two parts:
 *
 *  - device energy: the gate/write/read pulses in the array, computed
 *    exactly by the GateLibrary / Tile in functional mode, or from
 *    mean-over-combos gate energy in trace mode;
 *  - peripheral energy: decoders, drivers, latches and control.  The
 *    paper calibrates this so peripherals consume the same share of
 *    total energy/latency as NVSim reports for modern MRAM arrays;
 *    we expose the share as a parameter (default 70 % on a full-row
 *    operation) and derive a fixed per-instruction term plus a
 *    per-active-column term from it.
 *
 * Latency is trivial by design (Section IV-B): the controller waits
 * out the worst-case instruction every time, so every instruction
 * costs exactly one cycle (33 ns modern / 11 ns projected).
 *
 * The model also prices the intermittency machinery with the EH-model
 * metric names the paper adopts:
 *  - Backup: per-cycle non-volatile PC + parity-bit writes, plus the
 *    Activate Columns shadow-register write when one is issued;
 *  - Restore: re-issuing the activation journal on restart;
 *  - Dead: re-execution of the interrupted instruction (charged by
 *    the simulator using the normal instruction energy).
 */

#ifndef MOUSE_ENERGY_ENERGY_MODEL_HH
#define MOUSE_ENERGY_ENERGY_MODEL_HH

#include "common/types.hh"
#include "isa/instruction.hh"
#include "logic/gate_library.hh"

namespace mouse
{

/** Tunable peripheral-circuitry calibration. */
struct PeripheralParams
{
    /**
     * Target peripheral share of total energy for a full-row
     * (all-columns) array write, after NVSim's reported MRAM
     * subarray breakdowns.  The anchor is the *generation's STT
     * write pulse* (same MTJ parameters, 1T1M path) regardless of
     * cell kind: peripheral decoders and drivers are CMOS shared by
     * the STT and SHE designs (the paper notes SHE has no peripheral
     * advantage on restore), so a SHE array does not get cheaper
     * peripherals just because its write pulse is cheaper.
     *
     * The default is calibrated so the paper's Section IV-C power
     * example holds: a 60 uW budget supports only a handful of
     * parallel columns on the least efficient (Modern STT)
     * configuration.
     */
    double energyShare = 0.57;
    /** Portion of peripheral energy that is per-instruction fixed
     *  (decode, wordline select) vs per-active-column (bitline
     *  drivers).  NVSim attributes almost everything to the
     *  column/bitline path at these array sizes. */
    double fixedFraction = 0.005;
    /** NV register bit write costs this multiple of an array cell
     *  write (the register has private write drivers). */
    double nvRegisterOverhead = 1.5;
    /**
     * Average register bits that actually flip per PC increment.
     * Writing an MTJ register only pulses cells whose value changes;
     * a binary increment flips ~2 bits on average, which is how the
     * paper's "writing only a few bits on every cycle" backup cost
     * arises.
     */
    double avgPcBitsFlipped = 2.0;
    /** Standby power while the accelerator is energized but idle.
     *  MRAM retains for free; only the controller leaks. */
    Watts idlePower = 0.0;
};

/** Width of the program counter checkpoint written every cycle. */
constexpr unsigned kPcBits = 24;
/** Parity bit selecting the valid PC register. */
constexpr unsigned kParityBits = 1;
/** Width of the Activate Columns shadow register. */
constexpr unsigned kActRegisterBits = 64;

/** Energy/latency oracle for one device configuration. */
class EnergyModel
{
  public:
    EnergyModel(const GateLibrary &lib,
                const PeripheralParams &params = PeripheralParams{});

    const GateLibrary &library() const { return lib_; }
    const DeviceConfig &config() const { return lib_.config(); }

    /** Peripheral energy of one instruction touching @p cols columns. */
    Joules peripheralEnergy(unsigned cols) const;

    /**
     * Total energy of one executed instruction in functional mode,
     * where the array already measured its exact device energy.
     *
     * @param touched_cols Columns the instruction drove: the active
     *        set for gates/presets, the full row width for row
     *        transfers.
     */
    Joules instructionEnergy(const Instruction &inst,
                             Joules device_energy,
                             unsigned touched_cols) const;

    /**
     * Expected energy of one instruction in trace mode (data values
     * unknown): gate pulses use mean-over-combos device energy.
     * @param touched_cols See instructionEnergy().
     */
    Joules estimateInstructionEnergy(Opcode op,
                                     unsigned touched_cols) const;

    /** Reading one 64-bit instruction word from the instruction
     *  tiles, including its peripheral cost. */
    Joules fetchEnergy() const;

    /** Per-cycle checkpoint: PC + parity bit into NV registers. */
    Joules backupEnergyPerCycle() const;

    /** Extra backup when an Activate Columns instruction is issued:
     *  the 64-bit shadow register write. */
    Joules actRegisterBackupEnergy() const;

    /**
     * Restore cost of a restart: re-issuing @p journal_entries
     * Activate Columns instructions that re-latch @p active_cols
     * columns in total.
     */
    Joules restoreEnergy(unsigned journal_entries,
                         unsigned active_cols) const;

    /** Restore latency in cycles (one per re-issued instruction). */
    Cycle
    restoreCycles(unsigned journal_entries) const
    {
        return journal_entries;
    }

    Watts idlePower() const { return params_.idlePower; }

    Seconds cycleTime() const { return lib_.config().cycleTime; }

  private:
    const GateLibrary &lib_;
    PeripheralParams params_;
    /** Derived fixed peripheral energy per instruction. */
    Joules periphFixed_;
    /** Derived peripheral energy per active column. */
    Joules periphPerCol_;
    /** One NV register bit write. */
    Joules nvRegBitWrite_;
};

} // namespace mouse

#endif // MOUSE_ENERGY_ENERGY_MODEL_HH
