/**
 * @file
 * Area model reproducing the paper's Table III.
 *
 * The paper estimates cell area by sizing access transistors for
 * < 1 kOhm on-resistance (transistors dominate; MTJs and SHE
 * channels sit on a separate layer) and scales peripheral overhead
 * by NVSim's area-efficiency ratios for same-sized arrays.  NVSim
 * only handles power-of-two capacities, so benchmarks are assigned
 * the smallest power-of-two array that fits.
 *
 * We encode the resulting calibration directly: mm^2-per-MB for the
 * Modern STT configuration at the capacities NVSim was run for, a
 * technology scale factor for Projected STT (smaller cells), and the
 * roughly 2x factor for SHE (second access transistor per cell).
 */

#ifndef MOUSE_ENERGY_AREA_MODEL_HH
#define MOUSE_ENERGY_AREA_MODEL_HH

#include "common/types.hh"
#include "device/mtj_params.hh"

namespace mouse
{

/** Smallest power-of-two capacity (in MB) that fits @p required_mb. */
double roundUpPow2Mb(double required_mb);

/**
 * Die area of a MOUSE accelerator with @p capacity_mb of memory in
 * configuration @p tech.  @p capacity_mb must be a power of two (use
 * roundUpPow2Mb); values between calibration points interpolate the
 * per-MB density in log2(capacity).
 */
SquareMm mouseArea(TechConfig tech, double capacity_mb);

/** Area for a benchmark needing @p required_mb, after rounding the
 *  capacity up to a power of two. */
SquareMm mouseAreaForFootprint(TechConfig tech, double required_mb);

} // namespace mouse

#endif // MOUSE_ENERGY_AREA_MODEL_HH
