#include "area_model.hh"

#include <cmath>

#include "common/logging.hh"

namespace mouse
{

namespace
{

/**
 * NVSim-calibrated density for the Modern STT configuration,
 * mm^2 per MB, indexed by log2(capacity in MB).  The non-monotone
 * shape is NVSim's: very small arrays pay peripheral overhead per
 * bit, mid-size arrays amortize it best, and very large arrays give
 * back some density to routing.
 */
struct DensityPoint
{
    double log2Mb;
    double mm2PerMb;
};

constexpr DensityPoint kModernSttDensity[] = {
    {0.0, 0.7100},  // 1 MB  -> 0.71 mm^2
    {3.0, 0.6788},  // 8 MB  -> 5.43 mm^2
    {4.0, 0.6788},  // 16 MB -> 10.86 mm^2
    {6.0, 0.7966},  // 64 MB -> 50.98 mm^2
};

/** Projected MTJ cells are smaller: Table III column ratio. */
constexpr double kProjectedSttScale = 38.67 / 50.98;
/** SHE cells carry a second access transistor: ~2x projected. */
constexpr double kSheScale = 77.35 / 50.98;

double
modernDensity(double log2_mb)
{
    const auto *pts = kModernSttDensity;
    constexpr int n = static_cast<int>(std::size(kModernSttDensity));
    if (log2_mb <= pts[0].log2Mb) {
        return pts[0].mm2PerMb;
    }
    if (log2_mb >= pts[n - 1].log2Mb) {
        return pts[n - 1].mm2PerMb;
    }
    for (int i = 1; i < n; ++i) {
        if (log2_mb <= pts[i].log2Mb) {
            const double t = (log2_mb - pts[i - 1].log2Mb) /
                             (pts[i].log2Mb - pts[i - 1].log2Mb);
            return pts[i - 1].mm2PerMb +
                   t * (pts[i].mm2PerMb - pts[i - 1].mm2PerMb);
        }
    }
    mouse_panic("unreachable");
}

} // namespace

double
roundUpPow2Mb(double required_mb)
{
    mouse_assert(required_mb > 0.0, "non-positive footprint");
    double mb = 1.0;
    while (mb < required_mb) {
        mb *= 2.0;
    }
    return mb;
}

SquareMm
mouseArea(TechConfig tech, double capacity_mb)
{
    const double density = modernDensity(std::log2(capacity_mb));
    const SquareMm modern = density * capacity_mb;
    switch (tech) {
      case TechConfig::ModernStt:
        return modern;
      case TechConfig::ProjectedStt:
        return modern * kProjectedSttScale;
      case TechConfig::ProjectedShe:
        return modern * kSheScale;
    }
    mouse_panic("unknown tech");
}

SquareMm
mouseAreaForFootprint(TechConfig tech, double required_mb)
{
    return mouseArea(tech, roundUpPow2Mb(required_mb));
}

} // namespace mouse
