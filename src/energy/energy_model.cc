#include "energy_model.hh"

#include "common/logging.hh"

namespace mouse
{

EnergyModel::EnergyModel(const GateLibrary &lib,
                         const PeripheralParams &params)
    : lib_(lib), params_(params)
{
    mouse_assert(params_.energyShare > 0.0 && params_.energyShare < 1.0,
                 "peripheral share must be in (0,1)");
    mouse_assert(params_.fixedFraction >= 0.0 &&
                     params_.fixedFraction <= 1.0,
                 "fixed fraction must be in [0,1]");

    // Calibration anchor: a full-row (1024-column) write through the
    // *generation's STT path* — peripheral CMOS is common to the STT
    // and SHE cell designs, so the anchor deliberately ignores the
    // SHE channel.  NVSim reports peripheral : total = energyShare
    // for such accesses, so peripheral = device * share/(1 - share).
    constexpr double kCalibrationCols = 1024.0;
    const DeviceConfig &cfg = lib_.config();
    const Ohms stt_write_r =
        cfg.mtj.rAntiParallel + cfg.accessTransistorR;
    const Amperes i_write =
        GateLibrary::kWriteOverdrive * cfg.mtj.switchingCurrent;
    const Joules stt_cell_write =
        i_write * i_write * stt_write_r * cfg.mtj.switchingTime;
    const Joules device_row_write = stt_cell_write * kCalibrationCols;
    const Joules periph_row =
        device_row_write * params_.energyShare /
        (1.0 - params_.energyShare);
    periphFixed_ = periph_row * params_.fixedFraction;
    periphPerCol_ = periph_row * (1.0 - params_.fixedFraction) /
                    kCalibrationCols;

    // NV register bits are cells of the configuration's own kind:
    // SHE registers write through their cheap SHE channel, which is
    // why the paper's SHE backup share collapses to 0.007 %.
    nvRegBitWrite_ =
        lib_.writeOp().energy * params_.nvRegisterOverhead;
}

Joules
EnergyModel::peripheralEnergy(unsigned cols) const
{
    return periphFixed_ + periphPerCol_ * cols;
}

Joules
EnergyModel::instructionEnergy(const Instruction &inst,
                               Joules device_energy,
                               unsigned touched_cols) const
{
    (void)inst;
    return device_energy + peripheralEnergy(touched_cols);
}

Joules
EnergyModel::estimateInstructionEnergy(Opcode op,
                                       unsigned touched_cols) const
{
    Joules device = 0.0;
    switch (op) {
      case Opcode::kHalt:
        return 0.0;
      case Opcode::kActivateList:
      case Opcode::kActivateRange:
        // Latch update only; charge the fixed peripheral term plus
        // the latches being set.
        return peripheralEnergy(touched_cols);
      case Opcode::kReadRow:
        device = lib_.readOp().energy * touched_cols;
        break;
      case Opcode::kWriteRow:
      case Opcode::kWriteRowShifted:
      case Opcode::kPreset0:
      case Opcode::kPreset1:
        device = lib_.writeOp().energy * touched_cols;
        break;
      default: {
        mouse_assert(isGateOpcode(op), "unhandled opcode");
        device =
            lib_.gateAvgEnergy(gateFromOpcode(op)) * touched_cols;
        break;
      }
    }
    return device + peripheralEnergy(touched_cols);
}

Joules
EnergyModel::fetchEnergy() const
{
    // 64 sense operations in the instruction tile plus the fixed
    // decode cost; the read path is narrow, so no per-column driver
    // energy is charged.
    return lib_.readOp().energy * 64 + periphFixed_;
}

Joules
EnergyModel::backupEnergyPerCycle() const
{
    // Only the PC bits that change are pulsed (writes to an MTJ
    // already in the target state drive no switching), plus the
    // parity-bit flip.
    return nvRegBitWrite_ *
           (params_.avgPcBitsFlipped + kParityBits);
}

Joules
EnergyModel::actRegisterBackupEnergy() const
{
    return nvRegBitWrite_ * kActRegisterBits;
}

Joules
EnergyModel::restoreEnergy(unsigned journal_entries,
                           unsigned active_cols) const
{
    // Each re-issued Activate Columns instruction costs a fetch from
    // the NV shadow register (reads are cheap; charge the register
    // read as kActRegisterBits sense ops) plus the peripheral cost of
    // re-latching the columns.
    const Joules register_read =
        lib_.readOp().energy * kActRegisterBits;
    return journal_entries * (register_read + periphFixed_) +
           periphPerCol_ * active_cols;
}

} // namespace mouse
