#include "instruction.hh"

#include <sstream>

#include "common/logging.hh"

namespace mouse
{

namespace
{

// Bit-field layout helpers.  All fields are packed MSB-first:
// [63:60] opcode, then class-specific payload.
constexpr int kOpcodeShift = 60;
constexpr std::uint64_t kOpcodeMask = 0xF;
constexpr int kTileShift = 51;
constexpr std::uint64_t kTileMask = 0x1FF;

constexpr std::uint64_t kRowMask = 0x3FF;
constexpr std::uint64_t kColMask = 0x3FF;

// Logic/memory: rows at [50:41] [40:31] [30:21], outRow at [20:11].
constexpr int kRowShift0 = 41;
constexpr int kRowShift1 = 31;
constexpr int kRowShift2 = 21;
constexpr int kOutRowShift = 11;

// Activation: clear flag [59], count [58:56], cols / range below.
constexpr int kClearShift = 59;
constexpr int kCountShift = 56;
constexpr std::uint64_t kCountMask = 0x7;
constexpr int kColShiftBase = 46;  // cols at [55:46],[45:36],...
constexpr int kColShiftStep = 10;
constexpr int kRangeLoShift = 46;
constexpr int kRangeHiShift = 36;

std::uint64_t
field(std::uint64_t value, int shift, std::uint64_t mask)
{
    return (value & mask) << shift;
}

std::uint64_t
extract(std::uint64_t word, int shift, std::uint64_t mask)
{
    return (word >> shift) & mask;
}

} // namespace

bool
isGateOpcode(Opcode op)
{
    const auto v = static_cast<std::uint8_t>(op);
    return v >= static_cast<std::uint8_t>(Opcode::kGateBuf) &&
           v <= static_cast<std::uint8_t>(Opcode::kGateMin3);
}

GateType
gateFromOpcode(Opcode op)
{
    switch (op) {
      case Opcode::kGateBuf: return GateType::kBuf;
      case Opcode::kGateNot: return GateType::kNot;
      case Opcode::kGateAnd2: return GateType::kAnd2;
      case Opcode::kGateNand2: return GateType::kNand2;
      case Opcode::kGateOr2: return GateType::kOr2;
      case Opcode::kGateNor2: return GateType::kNor2;
      case Opcode::kGateMaj3: return GateType::kMaj3;
      case Opcode::kGateMin3: return GateType::kMin3;
      default:
        mouse_panic("opcode %d is not a gate",
                    static_cast<int>(op));
    }
}

Opcode
opcodeFromGate(GateType g)
{
    switch (g) {
      case GateType::kBuf: return Opcode::kGateBuf;
      case GateType::kNot: return Opcode::kGateNot;
      case GateType::kAnd2: return Opcode::kGateAnd2;
      case GateType::kNand2: return Opcode::kGateNand2;
      case GateType::kOr2: return Opcode::kGateOr2;
      case GateType::kNor2: return Opcode::kGateNor2;
      case GateType::kMaj3: return Opcode::kGateMaj3;
      case GateType::kMin3: return Opcode::kGateMin3;
      default:
        mouse_panic("gate %s is not ISA-encodable",
                    gateName(g).c_str());
    }
}

std::uint64_t
Instruction::encode() const
{
    std::uint64_t word =
        field(static_cast<std::uint64_t>(op), kOpcodeShift, kOpcodeMask);
    switch (op) {
      case Opcode::kHalt:
        break;
      case Opcode::kActivateList:
        word |= field(clearActivation ? 1 : 0, kClearShift, 0x1);
        word |= field(numCols, kCountShift, kCountMask);
        for (int i = 0; i < numCols; ++i) {
            word |= field(cols[static_cast<std::size_t>(i)],
                          kColShiftBase - i * kColShiftStep, kColMask);
        }
        break;
      case Opcode::kActivateRange:
        word |= field(clearActivation ? 1 : 0, kClearShift, 0x1);
        word |= field(colLo, kRangeLoShift, kColMask);
        word |= field(colHi, kRangeHiShift, kColMask);
        break;
      case Opcode::kWriteRowShifted:
        // The shift rides the (otherwise unused) second row field;
        // the range field would collide with the tile address.
        word |= field(colLo, kRowShift1, kColMask);
        [[fallthrough]];
      case Opcode::kReadRow:
      case Opcode::kWriteRow:
      case Opcode::kPreset0:
      case Opcode::kPreset1:
        word |= field(tile, kTileShift, kTileMask);
        word |= field(outRow, kOutRowShift, kRowMask);
        break;
      default: {
        mouse_assert(isGateOpcode(op), "unencodable opcode");
        word |= field(tile, kTileShift, kTileMask);
        const int n = gateNumInputs(gateFromOpcode(op));
        word |= field(rows[0], kRowShift0, kRowMask);
        if (n > 1) {
            word |= field(rows[1], kRowShift1, kRowMask);
        }
        if (n > 2) {
            word |= field(rows[2], kRowShift2, kRowMask);
        }
        word |= field(outRow, kOutRowShift, kRowMask);
        break;
      }
    }
    return word;
}

Instruction
Instruction::decode(std::uint64_t word)
{
    Instruction inst;
    const auto op_bits = extract(word, kOpcodeShift, kOpcodeMask);
    if (op_bits >= static_cast<std::uint64_t>(Opcode::kNumOpcodes)) {
        mouse_panic("undefined opcode %llu",
                    static_cast<unsigned long long>(op_bits));
    }
    inst.op = static_cast<Opcode>(op_bits);
    switch (inst.op) {
      case Opcode::kHalt:
        break;
      case Opcode::kActivateList:
        inst.clearActivation = extract(word, kClearShift, 0x1) != 0;
        inst.numCols = static_cast<std::uint8_t>(
            extract(word, kCountShift, kCountMask));
        mouse_assert(inst.numCols <= kMaxActivateList,
                     "activate list count out of range");
        for (int i = 0; i < inst.numCols; ++i) {
            inst.cols[static_cast<std::size_t>(i)] =
                static_cast<ColAddr>(extract(
                    word, kColShiftBase - i * kColShiftStep, kColMask));
        }
        break;
      case Opcode::kActivateRange:
        inst.clearActivation = extract(word, kClearShift, 0x1) != 0;
        inst.colLo =
            static_cast<ColAddr>(extract(word, kRangeLoShift, kColMask));
        inst.colHi =
            static_cast<ColAddr>(extract(word, kRangeHiShift, kColMask));
        break;
      case Opcode::kWriteRowShifted:
        inst.colLo =
            static_cast<ColAddr>(extract(word, kRowShift1, kColMask));
        [[fallthrough]];
      case Opcode::kReadRow:
      case Opcode::kWriteRow:
      case Opcode::kPreset0:
      case Opcode::kPreset1:
        inst.tile =
            static_cast<TileAddr>(extract(word, kTileShift, kTileMask));
        inst.outRow =
            static_cast<RowAddr>(extract(word, kOutRowShift, kRowMask));
        break;
      default: {
        inst.tile =
            static_cast<TileAddr>(extract(word, kTileShift, kTileMask));
        const int n = gateNumInputs(gateFromOpcode(inst.op));
        inst.rows[0] =
            static_cast<RowAddr>(extract(word, kRowShift0, kRowMask));
        if (n > 1) {
            inst.rows[1] =
                static_cast<RowAddr>(extract(word, kRowShift1, kRowMask));
        }
        if (n > 2) {
            inst.rows[2] =
                static_cast<RowAddr>(extract(word, kRowShift2, kRowMask));
        }
        inst.outRow =
            static_cast<RowAddr>(extract(word, kOutRowShift, kRowMask));
        break;
      }
    }
    return inst;
}

std::string
Instruction::disassemble() const
{
    std::ostringstream os;
    switch (op) {
      case Opcode::kHalt:
        os << "HALT";
        break;
      case Opcode::kActivateList:
        os << "ACT" << (clearActivation ? " clr" : " add");
        for (int i = 0; i < numCols; ++i) {
            os << (i ? "," : " ") << "c"
               << cols[static_cast<std::size_t>(i)];
        }
        break;
      case Opcode::kActivateRange:
        os << "ACTR" << (clearActivation ? " clr" : " add") << " c"
           << colLo << "..c" << colHi;
        break;
      case Opcode::kReadRow:
        os << "READ t" << tile << " r" << outRow;
        break;
      case Opcode::kWriteRow:
        os << "WRITE t" << tile << " r" << outRow;
        break;
      case Opcode::kWriteRowShifted:
        os << "WRITES t" << tile << " r" << outRow << " <<c"
           << colLo;
        break;
      case Opcode::kPreset0:
        os << "PRE0 t" << tile << " r" << outRow;
        break;
      case Opcode::kPreset1:
        os << "PRE1 t" << tile << " r" << outRow;
        break;
      default: {
        const GateType g = gateFromOpcode(op);
        os << gateName(g) << " t" << tile << " r" << rows[0];
        const int n = gateNumInputs(g);
        for (int i = 1; i < n; ++i) {
            os << ",r" << rows[static_cast<std::size_t>(i)];
        }
        os << " -> r" << outRow;
        break;
      }
    }
    return os.str();
}

Instruction
Instruction::halt()
{
    return Instruction{};
}

Instruction
Instruction::gate(GateType g, TileAddr tile, RowAddr in0, RowAddr out)
{
    mouse_assert(gateNumInputs(g) == 1, "gate arity mismatch");
    Instruction inst;
    inst.op = opcodeFromGate(g);
    inst.tile = tile;
    inst.rows[0] = in0;
    inst.outRow = out;
    return inst;
}

Instruction
Instruction::gate(GateType g, TileAddr tile, RowAddr in0, RowAddr in1,
                  RowAddr out)
{
    mouse_assert(gateNumInputs(g) == 2, "gate arity mismatch");
    Instruction inst;
    inst.op = opcodeFromGate(g);
    inst.tile = tile;
    inst.rows[0] = in0;
    inst.rows[1] = in1;
    inst.outRow = out;
    return inst;
}

Instruction
Instruction::gate(GateType g, TileAddr tile, RowAddr in0, RowAddr in1,
                  RowAddr in2, RowAddr out)
{
    mouse_assert(gateNumInputs(g) == 3, "gate arity mismatch");
    Instruction inst;
    inst.op = opcodeFromGate(g);
    inst.tile = tile;
    inst.rows[0] = in0;
    inst.rows[1] = in1;
    inst.rows[2] = in2;
    inst.outRow = out;
    return inst;
}

Instruction
Instruction::preset(Bit value, TileAddr tile, RowAddr row)
{
    Instruction inst;
    inst.op = value ? Opcode::kPreset1 : Opcode::kPreset0;
    inst.tile = tile;
    inst.outRow = row;
    return inst;
}

Instruction
Instruction::readRow(TileAddr tile, RowAddr row)
{
    Instruction inst;
    inst.op = Opcode::kReadRow;
    inst.tile = tile;
    inst.outRow = row;
    return inst;
}

Instruction
Instruction::writeRow(TileAddr tile, RowAddr row)
{
    Instruction inst;
    inst.op = Opcode::kWriteRow;
    inst.tile = tile;
    inst.outRow = row;
    return inst;
}

Instruction
Instruction::writeRowShifted(TileAddr tile, RowAddr row, ColAddr shift)
{
    Instruction inst;
    inst.op = Opcode::kWriteRowShifted;
    inst.tile = tile;
    inst.outRow = row;
    inst.colLo = shift;
    return inst;
}

Instruction
Instruction::activateList(
    const std::array<ColAddr, kMaxActivateList> &cols, std::uint8_t count,
    bool clear)
{
    mouse_assert(count <= kMaxActivateList, "too many columns");
    Instruction inst;
    inst.op = Opcode::kActivateList;
    inst.cols = cols;
    inst.numCols = count;
    inst.clearActivation = clear;
    return inst;
}

Instruction
Instruction::activateRange(ColAddr lo, ColAddr hi, bool clear)
{
    mouse_assert(lo <= hi, "bad activation range");
    Instruction inst;
    inst.op = Opcode::kActivateRange;
    inst.colLo = lo;
    inst.colHi = hi;
    inst.clearActivation = clear;
    return inst;
}

} // namespace mouse
