/**
 * @file
 * The MOUSE instruction set (paper Figure 6).
 *
 * Instructions are 64 bits with a 4-bit opcode, 9-bit tile address
 * and 10-bit row/column addresses.  There are three classes:
 *
 *  - Logic: one gate applied at the given input/output rows of one
 *    tile, executed simultaneously in every *active* column.
 *  - Memory: row-buffer reads/writes and column-parallel presets.
 *  - Activate Columns: (re)configure the latched set of active
 *    columns; list form carries up to five column addresses, range
 *    form provides the paper's bulk addressing.
 *
 * Column activation is broadcast and latched in every data tile, so
 * the instruction carries no tile field; that is what makes the
 * restart procedure a single re-issued instruction.
 */

#ifndef MOUSE_ISA_INSTRUCTION_HH
#define MOUSE_ISA_INSTRUCTION_HH

#include <array>
#include <cstdint>
#include <string>

#include "common/types.hh"
#include "logic/gate.hh"

namespace mouse
{

/** 4-bit opcode space. */
enum class Opcode : std::uint8_t
{
    kHalt = 0,           ///< End of program.
    kActivateList = 1,   ///< Activate <=5 listed columns.
    kActivateRange = 2,  ///< Activate a contiguous column range.
    kReadRow = 3,        ///< Tile row -> controller row buffer.
    kWriteRow = 4,       ///< Controller row buffer -> tile row.
    kPreset0 = 5,        ///< Write 0 at (row, active columns).
    kPreset1 = 6,        ///< Write 1 at (row, active columns).
    kGateBuf = 7,
    kGateNot = 8,
    kGateAnd2 = 9,
    kGateNand2 = 10,
    kGateOr2 = 11,
    kGateNor2 = 12,
    kGateMaj3 = 13,
    kGateMin3 = 14,
    /**
     * Row buffer -> tile row, cyclically rotated left by `colLo`
     * columns.  The barrel shifter on the 128 B buffer is the
     * cross-column transport behind the mapping's gather/reduction
     * phases (Ambit-style row-copy extensions); costs one cycle
     * like every memory instruction.
     */
    kWriteRowShifted = 15,

    kNumOpcodes,
};

/** Whether the opcode is an in-array logic gate. */
bool isGateOpcode(Opcode op);

/** Map a gate opcode to the gate it performs. @pre isGateOpcode. */
GateType gateFromOpcode(Opcode op);

/** Map an ISA-encodable gate to its opcode.  Only the eight gates in
 *  the opcode table are encodable; others panic. */
Opcode opcodeFromGate(GateType g);

/** Maximum columns one kActivateList instruction can carry. */
constexpr int kMaxActivateList = 5;

/**
 * Reserved tile address meaning "every data tile": the broadcast
 * form of the paper's tile-parallelism, where one logic instruction
 * executes in all tiles simultaneously at the same rows/columns.
 */
constexpr TileAddr kBroadcastTile = 0x1FF;

/** Decoded MOUSE instruction. */
struct Instruction
{
    Opcode op = Opcode::kHalt;
    /** Target tile for logic/memory instructions. */
    TileAddr tile = 0;
    /** Input rows of a logic gate (rows[0..numInputs-1]). */
    std::array<RowAddr, 3> rows{};
    /** Output row of a logic gate, or the row of a memory op. */
    RowAddr outRow = 0;
    /** kActivateList payload. */
    std::array<ColAddr, kMaxActivateList> cols{};
    std::uint8_t numCols = 0;
    /** kActivateRange payload: [colLo, colHi] inclusive. */
    ColAddr colLo = 0;
    ColAddr colHi = 0;
    /** Activation clears the previous set (true) or adds (false). */
    bool clearActivation = true;

    bool operator==(const Instruction &other) const = default;

    /** Pack into the 64-bit wire format. */
    std::uint64_t encode() const;

    /** Unpack from the 64-bit wire format. */
    static Instruction decode(std::uint64_t word);

    /** Human-readable disassembly, e.g. "NAND2 t3 r0,r4 -> r9". */
    std::string disassemble() const;

    // -- Convenience constructors -------------------------------------

    static Instruction halt();

    static Instruction
    gate(GateType g, TileAddr tile, RowAddr in0, RowAddr out);

    static Instruction
    gate(GateType g, TileAddr tile, RowAddr in0, RowAddr in1, RowAddr out);

    static Instruction
    gate(GateType g, TileAddr tile, RowAddr in0, RowAddr in1, RowAddr in2,
         RowAddr out);

    static Instruction preset(Bit value, TileAddr tile, RowAddr row);

    static Instruction readRow(TileAddr tile, RowAddr row);

    static Instruction writeRow(TileAddr tile, RowAddr row);

    /** Buffer -> row with a cyclic left rotation by @p shift. */
    static Instruction writeRowShifted(TileAddr tile, RowAddr row,
                                       ColAddr shift);

    static Instruction
    activateList(const std::array<ColAddr, kMaxActivateList> &cols,
                 std::uint8_t count, bool clear = true);

    static Instruction
    activateRange(ColAddr lo, ColAddr hi, bool clear = true);
};

} // namespace mouse

#endif // MOUSE_ISA_INSTRUCTION_HH
