/**
 * @file
 * Structured event tracing in the Chrome trace_event format.
 *
 * A TraceSink buffers timeline events — instruction attempts,
 * checkpoint commits, outages, restores, power-state transitions —
 * plus a sampled capacitor-voltage / harvested-power waveform, and
 * serializes them as a Chrome "traceEvents" JSON document that loads
 * directly in Perfetto (ui.perfetto.dev) or chrome://tracing.
 *
 * Timestamps are *simulated* time (microseconds, the trace_event
 * unit), so traces are bit-identical across hosts and thread counts.
 * Sinks are single-threaded by design: each run (sweep point) fills
 * its own sink and the ExperimentRunner folds them together with
 * mergeFrom() at the join, tagging each point's events with its grid
 * index as the trace "pid" so Perfetto groups them per point.
 *
 * The sink caps its buffers (defaults: 1M events, 1M waveform
 * samples); overflow is counted, never silent — droppedEvents() and
 * the obs.trace.dropped stat report it.
 */

#ifndef MOUSE_OBS_TRACE_SINK_HH
#define MOUSE_OBS_TRACE_SINK_HH

#include <cstdint>
#include <string>
#include <vector>

namespace mouse::obs
{

/** One Chrome trace_event entry. */
struct TraceEvent
{
    /** Event name ("outage", "burst", "checkpoint", ...). */
    std::string name;
    /** Category ("power", "exec", "backup", "ckpt"). */
    std::string cat;
    /** Phase: 'X' complete, 'i' instant, 'C' counter. */
    char phase = 'i';
    /** Timestamp in simulated microseconds. */
    double tsUs = 0.0;
    /** Duration in microseconds ('X' events only). */
    double durUs = 0.0;
    /** Process id: the sweep-point index after a merge. */
    std::uint32_t pid = 0;
    std::uint32_t tid = 0;
    /** Pre-rendered JSON object body for "args" (may be empty). */
    std::string args;
};

/** One sample of the harvesting waveform. */
struct WaveformSample
{
    /** Absolute simulated time, seconds. */
    double timeS = 0.0;
    /** Buffer capacitor voltage. */
    double capVoltage = 0.0;
    /** Instantaneous harvester output power. */
    double harvestPower = 0.0;
    /** Sweep-point index after a merge (0 for one-off runs). */
    std::uint32_t pid = 0;
};

/** Buffering event-trace / waveform sink. */
class TraceSink
{
  public:
    /** @param maxEvents Cap on buffered events (0 = default). */
    explicit TraceSink(std::size_t maxEvents = 0,
                       std::size_t maxSamples = 0);

    /**
     * Record a complete ('X') event spanning [tsS, tsS + durS].
     * @p pid / @p tid pick the Perfetto track (the serving layer
     * uses pid = batch row, tid = slot lane; one-off runs leave 0).
     */
    void complete(const char *name, const char *cat, double tsS,
                  double durS, std::string args = "",
                  std::uint32_t pid = 0, std::uint32_t tid = 0);

    /** Record an instant ('i') event at @p tsS. */
    void instant(const char *name, const char *cat, double tsS,
                 std::string args = "", std::uint32_t pid = 0,
                 std::uint32_t tid = 0);

    /** Record a counter ('C') series value at @p tsS. */
    void counter(const char *name, const char *cat, double tsS,
                 double value);

    /** Record one waveform sample. */
    void sample(double timeS, double capVoltage,
                double harvestPower);

    const std::vector<TraceEvent> &events() const { return events_; }
    const std::vector<WaveformSample> &
    waveform() const
    {
        return samples_;
    }

    /** Events/samples discarded because a buffer cap was hit. */
    std::uint64_t droppedEvents() const { return droppedEvents_; }
    std::uint64_t droppedSamples() const { return droppedSamples_; }

    bool
    empty() const
    {
        return events_.empty() && samples_.empty();
    }

    /**
     * Append @p other's events and samples, re-tagging the events
     * with @p pid.  Call in grid-index order so merged output is
     * deterministic regardless of worker-thread count.
     */
    void mergeFrom(const TraceSink &other, std::uint32_t pid);

    /**
     * Append @p other's events and samples with their pid/tid tags
     * preserved — for sinks that already laid out their own tracks
     * (per-request serving spans), where mergeFrom()'s re-tagging
     * would collapse them onto one row.
     */
    void appendFrom(const TraceSink &other);

    /**
     * Chrome trace JSON: {"traceEvents":[...]}.  The waveform is
     * included as two counter series ("cap_voltage_v" and
     * "harvest_power_w") so Perfetto plots it on the timeline.
     */
    std::string toChromeJson() const;

    /** Waveform as CSV: point,t_s,cap_voltage_v,harvest_power_w. */
    std::string waveformCsv() const;

  private:
    void push(TraceEvent e);

    std::vector<TraceEvent> events_;
    std::vector<WaveformSample> samples_;
    std::size_t maxEvents_;
    std::size_t maxSamples_;
    std::uint64_t droppedEvents_ = 0;
    std::uint64_t droppedSamples_ = 0;
};

} // namespace mouse::obs

#endif // MOUSE_OBS_TRACE_SINK_HH
