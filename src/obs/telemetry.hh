/**
 * @file
 * Telemetry configuration and the per-run sink bundle.
 *
 * A TraceConfig on a RunRequest (or SweepGrid) selects which of the
 * three observability channels a run produces:
 *
 *  - stats: the hierarchical StatRegistry tree;
 *  - events: Chrome trace_event timeline entries;
 *  - waveform: the sampled capacitor-voltage / harvested-power
 *    series during harvested runs.
 *
 * Telemetry bundles the owning pointers the simulators write into.
 * Passing nullptr (the default everywhere) keeps the hot paths on a
 * single predictable branch; defining MOUSE_OBS_DISABLE_HOOKS (CMake
 * option MOUSE_DISABLE_TRACE_HOOKS) compiles the per-instruction
 * hooks out entirely for zero-cost builds.  Telemetry only observes:
 * enabling it never changes simulation results.
 */

#ifndef MOUSE_OBS_TELEMETRY_HH
#define MOUSE_OBS_TELEMETRY_HH

#include <memory>

#include "common/types.hh"
#include "obs/stat_registry.hh"
#include "obs/trace_sink.hh"

namespace mouse::obs
{

/** Which telemetry channels a run records. */
struct TraceConfig
{
    /** Collect the hierarchical stats tree. */
    bool stats = false;
    /** Emit timeline events (outages, restores, checkpoints, ...). */
    bool events = false;
    /** Sample the harvesting waveform. */
    bool waveform = false;
    /** Minimum simulated time between waveform samples. */
    Seconds waveformPeriod = 1e-3;
    /** Event-buffer cap per run; 0 = TraceSink default (1M). */
    std::size_t maxEvents = 0;
    /** Waveform-sample cap per run; 0 = default (1M). */
    std::size_t maxSamples = 0;

    bool
    anyEnabled() const
    {
        return stats || events || waveform;
    }
};

/** The sinks one run writes into (shared so results can keep them
 *  alive cheaply after the run returns). */
struct Telemetry
{
    TraceConfig config{};
    /** Non-null iff config.stats. */
    std::shared_ptr<StatRegistry> stats;
    /** Non-null iff config.events or config.waveform. */
    std::shared_ptr<TraceSink> sink;

    /** Allocate the sinks a config asks for. */
    static Telemetry
    make(const TraceConfig &cfg)
    {
        Telemetry t;
        t.config = cfg;
        if (cfg.stats) {
            t.stats = std::make_shared<StatRegistry>();
        }
        if (cfg.events || cfg.waveform) {
            t.sink = std::make_shared<TraceSink>(cfg.maxEvents,
                                                 cfg.maxSamples);
        }
        return t;
    }

    bool
    enabled() const
    {
        return stats != nullptr || sink != nullptr;
    }
};

/**
 * Per-instruction hot-loop hook: runtime-gated on the telemetry
 * pointer, compiled out entirely under MOUSE_OBS_DISABLE_HOOKS.
 */
#ifdef MOUSE_OBS_DISABLE_HOOKS
#define MOUSE_OBS_HOOK(telem, stmt) \
    do {                            \
    } while (0)
#else
#define MOUSE_OBS_HOOK(telem, stmt) \
    do {                            \
        if (telem) {                \
            stmt;                   \
        }                           \
    } while (0)
#endif

} // namespace mouse::obs

#endif // MOUSE_OBS_TELEMETRY_HH
