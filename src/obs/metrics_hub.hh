/**
 * @file
 * Live serving metrics: a lock-free rolling-window aggregation hub.
 *
 * The StatRegistry/TraceSink pair answers "what happened" after a run
 * completes; a MetricsHub answers "what is happening" while a
 * long-lived process (`mouse_cli serve`, an Accelerator request
 * queue, a sweep) is still running.  Publishers — the serving drain
 * workers, Accelerator::submit()/poll(), the ExperimentRunner — write
 * through relaxed atomics only, so publishing never blocks and never
 * takes a lock; any thread may call snapshot() concurrently and gets
 * a coherent-enough view for monitoring (counters may be mid-update;
 * no torn doubles, no data races).
 *
 * Aggregation is two-level:
 *  - lifetime totals (monotonic counters and sums since construction);
 *  - a rolling window (default 10 s) implemented as a ring of time
 *    slots.  Each slot holds its own atomic counters and geometric-
 *    bucket latency histograms (same bucketing as obs::Histogram, so
 *    percentile math matches the post-mortem registry); a slot is
 *    reclaimed by the first writer to land in its time range.  The
 *    window therefore decays in slot-sized steps, and a reclaim
 *    racing a concurrent writer may drop that writer's single sample
 *    — monitoring-grade accuracy, never a race.
 *
 * The hub deliberately stays out of every deterministic artifact:
 * serving stats, reports and traces are byte-identical with a hub
 * attached or not (publishing is observational, keyed off host time).
 *
 * MetricsSnapshot serializes as JSON ("metrics_schema":1) or
 * Prometheus text exposition; see docs/OBSERVABILITY.md for the
 * field-by-field format.  StallWatchdog turns hub progress counters
 * into no-progress warnings (queue non-empty but nothing completing).
 */

#ifndef MOUSE_OBS_METRICS_HUB_HH
#define MOUSE_OBS_METRICS_HUB_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <thread>

#include "obs/stat_registry.hh"

namespace mouse::obs
{

/** Shape of the rolling window. */
struct MetricsConfig
{
    /** Span of host time the windowed figures cover. */
    double windowSeconds = 10.0;
    /** Ring granularity; the window decays in window/slots steps. */
    unsigned windowSlots = 16;
};

/** Windowed latency distribution summary. */
struct LatencyQuantiles
{
    std::uint64_t count = 0;
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
};

/** One coherent read of a MetricsHub (see snapshot()). */
struct MetricsSnapshot
{
    /** Host seconds since the hub was constructed. */
    double uptimeSeconds = 0.0;
    /** Host seconds the windowed figures cover (<= configured). */
    double windowSeconds = 0.0;

    // -- Lifetime totals ------------------------------------------------
    std::uint64_t submitted = 0;
    std::uint64_t completed = 0;
    std::uint64_t batches = 0;
    /** Column slots offered / actually used by executed batches. */
    std::uint64_t slotsTotal = 0;
    std::uint64_t slotsUsed = 0;
    std::uint64_t outages = 0;
    std::uint64_t stallWarnings = 0;
    /** Admitted but not yet completed (may be mid-update). */
    std::int64_t queueDepth = 0;
    /** Workers currently inside a drain. */
    std::uint32_t activeWorkers = 0;
    /** Simulated array seconds / joules across executed batches. */
    double simSeconds = 0.0;
    double energyJoules = 0.0;
    /** Simulated seconds lost to harvested-power brownouts. */
    double outageStallSeconds = 0.0;
    /** completed / uptime. */
    double throughputPerS = 0.0;

    // -- Rolling window -------------------------------------------------
    std::uint64_t windowCompleted = 0;
    std::uint64_t windowBatches = 0;
    double windowThroughputPerS = 0.0;
    /** slotsUsed / slotsTotal of the window's batches (0..1). */
    double windowOccupancy = 0.0;
    double windowEnergyPerRequestJ = 0.0;
    double windowOutageStallSeconds = 0.0;
    /** Admission-to-completion host latency of windowed requests. */
    LatencyQuantiles hostLatency;
    /** Simulated pass latency of the same requests. */
    LatencyQuantiles simLatency;

    /** One-line JSON document ("metrics_schema":1). */
    std::string toJson() const;
    /** Prometheus text exposition (mouse_serve_* families). */
    std::string toPrometheus() const;
    /** Parse a toJson() document; nullopt on malformed input. */
    static std::optional<MetricsSnapshot>
    fromJson(const std::string &text);
};

/** Lock-free live-metrics aggregation point. */
class MetricsHub
{
  public:
    explicit MetricsHub(const MetricsConfig &cfg = {});
    MetricsHub(const MetricsHub &) = delete;
    MetricsHub &operator=(const MetricsHub &) = delete;
    ~MetricsHub();

    const MetricsConfig &config() const { return cfg_; }

    /** Host seconds since construction (the hub's timeline). */
    double now() const;

    // -- Publishers (any thread, lock-free) -----------------------------

    /** @p n requests admitted; raises the queue-depth gauge. */
    void recordSubmit(std::uint64_t n = 1);

    /**
     * One executed batch (or one async run, as a batch of one):
     * @p size requests over @p slots offered column slots, taking
     * @p simSeconds of simulated array time and @p energyJ, of which
     * @p outageStallS were spent powered off across @p outages
     * brownouts.
     */
    void recordBatch(unsigned size, unsigned slots, double simSeconds,
                     double energyJ, double outageStallS,
                     std::uint64_t outages);

    /** One request completed; lowers the queue-depth gauge and
     *  samples both latency distributions. */
    void recordDone(double hostLatencyS, double simLatencyS);

    /** A watchdog fired (see StallWatchdog). */
    void recordStallWarning();

    /** A drain worker became active (+1) or idle (-1). */
    void workerActive(int delta);

    // -- Readers --------------------------------------------------------

    /** Aggregate everything into one snapshot (any thread). */
    MetricsSnapshot snapshot() const;

  private:
    struct Slot;

    Slot &slotFor(double nowS, std::uint64_t &epochOut);

    MetricsConfig cfg_;
    double slotSeconds_ = 0.0;
    std::chrono::steady_clock::time_point epoch_;

    // Lifetime totals.
    std::atomic<std::uint64_t> submitted_{0};
    std::atomic<std::uint64_t> completed_{0};
    std::atomic<std::uint64_t> batches_{0};
    std::atomic<std::uint64_t> slotsTotal_{0};
    std::atomic<std::uint64_t> slotsUsed_{0};
    std::atomic<std::uint64_t> outages_{0};
    std::atomic<std::uint64_t> stallWarnings_{0};
    std::atomic<std::int64_t> queueDepth_{0};
    std::atomic<std::int32_t> activeWorkers_{0};
    std::atomic<double> simSeconds_{0.0};
    std::atomic<double> energyJoules_{0.0};
    std::atomic<double> outageStallSeconds_{0.0};

    std::unique_ptr<Slot[]> slots_;
};

/** What a watchdog saw when it declared a stall. */
struct StallReport
{
    enum class Kind
    {
        /** Queue non-empty, no workers active: nothing will drain. */
        kIdleQueue,
        /** Workers active but the drain cursor is not advancing. */
        kStuckDrain,
    };

    Kind kind = Kind::kIdleQueue;
    /** Host seconds without progress when the report fired. */
    double stalledSeconds = 0.0;
    /** Queue snapshot at detection time. */
    std::int64_t queueDepth = 0;
    std::uint64_t completed = 0;
    std::uint64_t batches = 0;
    std::uint32_t activeWorkers = 0;

    const char *kindName() const;
    /** Structured queue snapshot for the warning log line. */
    std::string toJson() const;
};

/**
 * No-progress detector over a MetricsHub.
 *
 * Progress is `completed + batches`; a stall is a window of at least
 * @p noProgressSeconds during which the queue stayed non-empty and
 * progress did not advance.  check() is the pure detector — feed it
 * a monotonic clock and it reports at most once per stall episode
 * (re-arming as soon as progress resumes) — so tests drive it
 * deterministically without threads.  start() wraps it in a polling
 * thread that records hub stall warnings and invokes the callback.
 */
class StallWatchdog
{
  public:
    StallWatchdog(MetricsHub &hub, double noProgressSeconds);
    ~StallWatchdog();

    StallWatchdog(const StallWatchdog &) = delete;
    StallWatchdog &operator=(const StallWatchdog &) = delete;

    /** Evaluate at time @p nowSeconds (hub timeline); a report the
     *  first time a no-progress window exceeds the threshold. */
    std::optional<StallReport> check(double nowSeconds);

    /** Poll check() every @p pollSeconds on a background thread;
     *  each report bumps hub.stall_warnings and calls @p onStall. */
    void start(double pollSeconds,
               std::function<void(const StallReport &)> onStall);

    /** Stop and join the polling thread (idempotent). */
    void stop();

    double threshold() const { return threshold_; }

  private:
    MetricsHub &hub_;
    double threshold_;
    std::uint64_t lastProgress_ = 0;
    double lastProgressAt_ = 0.0;
    bool seeded_ = false;
    bool reported_ = false;

    std::thread poller_;
    std::atomic<bool> running_{false};
};

} // namespace mouse::obs

#endif // MOUSE_OBS_METRICS_HUB_HH
