#include "trace_sink.hh"

#include <cmath>
#include <cstdio>

namespace mouse::obs
{

namespace
{

constexpr std::size_t kDefaultMaxEvents = 1u << 20;
constexpr std::size_t kDefaultMaxSamples = 1u << 20;

std::string
num(double v)
{
    if (!std::isfinite(v)) {
        return v > 0 ? "1e308" : (v < 0 ? "-1e308" : "0");
    }
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

} // namespace

TraceSink::TraceSink(std::size_t maxEvents, std::size_t maxSamples)
    : maxEvents_(maxEvents > 0 ? maxEvents : kDefaultMaxEvents),
      maxSamples_(maxSamples > 0 ? maxSamples : kDefaultMaxSamples)
{
}

void
TraceSink::push(TraceEvent e)
{
    if (events_.size() >= maxEvents_) {
        ++droppedEvents_;
        return;
    }
    events_.push_back(std::move(e));
}

void
TraceSink::complete(const char *name, const char *cat, double tsS,
                    double durS, std::string args,
                    std::uint32_t pid, std::uint32_t tid)
{
    TraceEvent e;
    e.name = name;
    e.cat = cat;
    e.phase = 'X';
    e.tsUs = tsS * 1e6;
    e.durUs = durS * 1e6;
    e.pid = pid;
    e.tid = tid;
    e.args = std::move(args);
    push(std::move(e));
}

void
TraceSink::instant(const char *name, const char *cat, double tsS,
                   std::string args, std::uint32_t pid,
                   std::uint32_t tid)
{
    TraceEvent e;
    e.name = name;
    e.cat = cat;
    e.phase = 'i';
    e.tsUs = tsS * 1e6;
    e.pid = pid;
    e.tid = tid;
    e.args = std::move(args);
    push(std::move(e));
}

void
TraceSink::counter(const char *name, const char *cat, double tsS,
                   double value)
{
    TraceEvent e;
    e.name = name;
    e.cat = cat;
    e.phase = 'C';
    e.tsUs = tsS * 1e6;
    e.args = "{\"value\":" + num(value) + "}";
    push(std::move(e));
}

void
TraceSink::sample(double timeS, double capVoltage,
                  double harvestPower)
{
    if (samples_.size() >= maxSamples_) {
        ++droppedSamples_;
        return;
    }
    samples_.push_back({timeS, capVoltage, harvestPower, 0});
}

void
TraceSink::mergeFrom(const TraceSink &other, std::uint32_t pid)
{
    events_.reserve(events_.size() + other.events_.size());
    for (const TraceEvent &e : other.events_) {
        if (events_.size() >= maxEvents_) {
            ++droppedEvents_;
            continue;
        }
        events_.push_back(e);
        events_.back().pid = pid;
    }
    samples_.reserve(samples_.size() + other.samples_.size());
    for (const WaveformSample &s : other.samples_) {
        if (samples_.size() >= maxSamples_) {
            ++droppedSamples_;
            continue;
        }
        samples_.push_back(s);
        samples_.back().pid = pid;
    }
    droppedEvents_ += other.droppedEvents_;
    droppedSamples_ += other.droppedSamples_;
}

void
TraceSink::appendFrom(const TraceSink &other)
{
    events_.reserve(events_.size() + other.events_.size());
    for (const TraceEvent &e : other.events_) {
        if (events_.size() >= maxEvents_) {
            ++droppedEvents_;
            continue;
        }
        events_.push_back(e);
    }
    samples_.reserve(samples_.size() + other.samples_.size());
    for (const WaveformSample &s : other.samples_) {
        if (samples_.size() >= maxSamples_) {
            ++droppedSamples_;
            continue;
        }
        samples_.push_back(s);
    }
    droppedEvents_ += other.droppedEvents_;
    droppedSamples_ += other.droppedSamples_;
}

std::string
TraceSink::toChromeJson() const
{
    std::string j = "{\"traceEvents\":[";
    bool first = true;
    auto emit = [&](const std::string &body) {
        if (!first) {
            j += ",";
        }
        first = false;
        j += body;
    };
    for (const TraceEvent &e : events_) {
        std::string b = "{\"name\":\"" + e.name + "\",\"cat\":\"" +
                        e.cat + "\",\"ph\":\"" + e.phase + "\"";
        b += ",\"ts\":" + num(e.tsUs);
        if (e.phase == 'X') {
            b += ",\"dur\":" + num(e.durUs);
        }
        b += ",\"pid\":" + std::to_string(e.pid);
        b += ",\"tid\":" + std::to_string(e.tid);
        if (!e.args.empty()) {
            b += ",\"args\":" + e.args;
        } else if (e.phase == 'i') {
            b += ",\"s\":\"t\"";
        }
        b += "}";
        emit(b);
    }
    // The waveform rides along as counter series so Perfetto plots
    // the capacitor charge/discharge dynamics on the same timeline.
    for (const WaveformSample &s : samples_) {
        const std::string ts = num(s.timeS * 1e6);
        const std::string pid = std::to_string(s.pid);
        emit("{\"name\":\"cap_voltage_v\",\"cat\":\"waveform\","
             "\"ph\":\"C\",\"ts\":" +
             ts + ",\"pid\":" + pid +
             ",\"tid\":0,\"args\":{\"value\":" + num(s.capVoltage) +
             "}}");
        emit("{\"name\":\"harvest_power_w\",\"cat\":\"waveform\","
             "\"ph\":\"C\",\"ts\":" +
             ts + ",\"pid\":" + pid +
             ",\"tid\":0,\"args\":{\"value\":" +
             num(s.harvestPower) + "}}");
    }
    j += "],\"displayTimeUnit\":\"ms\"";
    j += ",\"otherData\":{\"dropped_events\":" +
         std::to_string(droppedEvents_) +
         ",\"dropped_samples\":" + std::to_string(droppedSamples_) +
         "}}";
    return j;
}

std::string
TraceSink::waveformCsv() const
{
    std::string csv = "point,t_s,cap_voltage_v,harvest_power_w\n";
    for (const WaveformSample &s : samples_) {
        csv += std::to_string(s.pid) + "," + num(s.timeS) + "," +
               num(s.capVoltage) + "," + num(s.harvestPower) + "\n";
    }
    return csv;
}

} // namespace mouse::obs
