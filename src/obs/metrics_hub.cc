#include "metrics_hub.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/logging.hh"
#include "common/schema_versions.hh"

namespace mouse::obs
{

namespace
{

std::string
num(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

/** Same geometric bucketing as obs::Histogram, over atomics. */
int
bucketIndex(double v)
{
    if (!(v > 0.0)) {
        return 0;
    }
    const double d = std::log10(v) - Histogram::kLoExponent;
    const int idx = 1 + static_cast<int>(std::floor(
                            d * Histogram::kBucketsPerDecade));
    return std::clamp(idx, 0, Histogram::kBuckets - 1);
}

double
bucketLo(int idx)
{
    return std::pow(10.0, Histogram::kLoExponent +
                              static_cast<double>(idx - 1) /
                                  Histogram::kBucketsPerDecade);
}

void
atomicAdd(std::atomic<double> &a, double v)
{
    a.fetch_add(v, std::memory_order_relaxed);
}

void
atomicMin(std::atomic<double> &a, double v)
{
    double cur = a.load(std::memory_order_relaxed);
    while (v < cur &&
           !a.compare_exchange_weak(cur, v,
                                    std::memory_order_relaxed)) {
    }
}

void
atomicMax(std::atomic<double> &a, double v)
{
    double cur = a.load(std::memory_order_relaxed);
    while (v > cur &&
           !a.compare_exchange_weak(cur, v,
                                    std::memory_order_relaxed)) {
    }
}

/** Plain (non-atomic) merged view of the window's latency buckets. */
struct MergedHist
{
    std::uint64_t buckets[Histogram::kBuckets] = {};
    std::uint64_t count = 0;
    double min = std::numeric_limits<double>::infinity();
    double max = -std::numeric_limits<double>::infinity();

    double
    percentile(double q) const
    {
        if (count == 0) {
            return 0.0;
        }
        q = std::clamp(q, 0.0, 1.0);
        const double target = q * static_cast<double>(count);
        std::uint64_t seen = 0;
        for (int i = 0; i < Histogram::kBuckets; ++i) {
            if (buckets[i] == 0) {
                continue;
            }
            const double next =
                static_cast<double>(seen + buckets[i]);
            if (next >= target) {
                double v;
                if (i == 0) {
                    v = min;
                } else {
                    const double lo = bucketLo(i);
                    const double hi =
                        lo * std::pow(
                                 10.0,
                                 1.0 / Histogram::kBucketsPerDecade);
                    const double frac =
                        (target - static_cast<double>(seen)) /
                        static_cast<double>(buckets[i]);
                    v = lo +
                        (hi - lo) * std::clamp(frac, 0.0, 1.0);
                }
                return std::clamp(v, min, max);
            }
            seen += buckets[i];
        }
        return max;
    }

    LatencyQuantiles
    quantiles() const
    {
        LatencyQuantiles q;
        q.count = count;
        q.p50 = percentile(0.50);
        q.p95 = percentile(0.95);
        q.p99 = percentile(0.99);
        return q;
    }
};

} // namespace

/** One ring slot: the window's state for one slice of host time. */
struct MetricsHub::Slot
{
    static constexpr std::uint64_t kNoEpoch = ~std::uint64_t{0};

    std::atomic<std::uint64_t> epoch{kNoEpoch};
    std::atomic<std::uint64_t> completed{0};
    std::atomic<std::uint64_t> batches{0};
    std::atomic<std::uint64_t> slotsTotal{0};
    std::atomic<std::uint64_t> slotsUsed{0};
    std::atomic<double> energyJoules{0.0};
    std::atomic<double> outageStallSeconds{0.0};
    std::atomic<std::uint64_t> hostBuckets[Histogram::kBuckets];
    std::atomic<std::uint64_t> simBuckets[Histogram::kBuckets];
    std::atomic<double> hostMin{
        std::numeric_limits<double>::infinity()};
    std::atomic<double> hostMax{
        -std::numeric_limits<double>::infinity()};
    std::atomic<double> simMin{
        std::numeric_limits<double>::infinity()};
    std::atomic<double> simMax{
        -std::numeric_limits<double>::infinity()};

    Slot()
    {
        for (int i = 0; i < Histogram::kBuckets; ++i) {
            hostBuckets[i].store(0, std::memory_order_relaxed);
            simBuckets[i].store(0, std::memory_order_relaxed);
        }
    }

    /** Zero everything but the epoch (the reclaimer just set it). */
    void
    reset()
    {
        completed.store(0, std::memory_order_relaxed);
        batches.store(0, std::memory_order_relaxed);
        slotsTotal.store(0, std::memory_order_relaxed);
        slotsUsed.store(0, std::memory_order_relaxed);
        energyJoules.store(0.0, std::memory_order_relaxed);
        outageStallSeconds.store(0.0, std::memory_order_relaxed);
        for (int i = 0; i < Histogram::kBuckets; ++i) {
            hostBuckets[i].store(0, std::memory_order_relaxed);
            simBuckets[i].store(0, std::memory_order_relaxed);
        }
        hostMin.store(std::numeric_limits<double>::infinity(),
                      std::memory_order_relaxed);
        hostMax.store(-std::numeric_limits<double>::infinity(),
                      std::memory_order_relaxed);
        simMin.store(std::numeric_limits<double>::infinity(),
                     std::memory_order_relaxed);
        simMax.store(-std::numeric_limits<double>::infinity(),
                     std::memory_order_relaxed);
    }
};

MetricsHub::MetricsHub(const MetricsConfig &cfg)
    : cfg_(cfg), epoch_(std::chrono::steady_clock::now())
{
    mouse_assert(cfg_.windowSeconds > 0.0,
                 "metrics window must be positive");
    mouse_assert(cfg_.windowSlots >= 2,
                 "metrics window needs >= 2 slots");
    slotSeconds_ = cfg_.windowSeconds /
                   static_cast<double>(cfg_.windowSlots);
    slots_ = std::make_unique<Slot[]>(cfg_.windowSlots);
}

MetricsHub::~MetricsHub() = default;

double
MetricsHub::now() const
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
}

MetricsHub::Slot &
MetricsHub::slotFor(double nowS, std::uint64_t &epochOut)
{
    const std::uint64_t e =
        static_cast<std::uint64_t>(nowS / slotSeconds_);
    epochOut = e;
    Slot &s = slots_[e % cfg_.windowSlots];
    std::uint64_t seen = s.epoch.load(std::memory_order_relaxed);
    while (seen != e) {
        // First writer to land in a recycled time range claims the
        // slot and zeroes it.  A sample racing the reset may be lost
        // from the *window* view (never the lifetime totals) —
        // monitoring-grade accuracy, by design.
        if (s.epoch.compare_exchange_weak(
                seen, e, std::memory_order_relaxed)) {
            s.reset();
            break;
        }
    }
    return s;
}

void
MetricsHub::recordSubmit(std::uint64_t n)
{
    submitted_.fetch_add(n, std::memory_order_relaxed);
    queueDepth_.fetch_add(static_cast<std::int64_t>(n),
                          std::memory_order_relaxed);
}

void
MetricsHub::recordBatch(unsigned size, unsigned slots,
                        double simSeconds, double energyJ,
                        double outageStallS, std::uint64_t outages)
{
    batches_.fetch_add(1, std::memory_order_relaxed);
    slotsTotal_.fetch_add(slots, std::memory_order_relaxed);
    slotsUsed_.fetch_add(size, std::memory_order_relaxed);
    outages_.fetch_add(outages, std::memory_order_relaxed);
    atomicAdd(simSeconds_, simSeconds);
    atomicAdd(energyJoules_, energyJ);
    atomicAdd(outageStallSeconds_, outageStallS);

    std::uint64_t e = 0;
    Slot &s = slotFor(now(), e);
    s.batches.fetch_add(1, std::memory_order_relaxed);
    s.slotsTotal.fetch_add(slots, std::memory_order_relaxed);
    s.slotsUsed.fetch_add(size, std::memory_order_relaxed);
    atomicAdd(s.energyJoules, energyJ);
    atomicAdd(s.outageStallSeconds, outageStallS);
}

void
MetricsHub::recordDone(double hostLatencyS, double simLatencyS)
{
    completed_.fetch_add(1, std::memory_order_relaxed);
    queueDepth_.fetch_sub(1, std::memory_order_relaxed);

    std::uint64_t e = 0;
    Slot &s = slotFor(now(), e);
    s.completed.fetch_add(1, std::memory_order_relaxed);
    s.hostBuckets[bucketIndex(hostLatencyS)].fetch_add(
        1, std::memory_order_relaxed);
    s.simBuckets[bucketIndex(simLatencyS)].fetch_add(
        1, std::memory_order_relaxed);
    atomicMin(s.hostMin, hostLatencyS);
    atomicMax(s.hostMax, hostLatencyS);
    atomicMin(s.simMin, simLatencyS);
    atomicMax(s.simMax, simLatencyS);
}

void
MetricsHub::recordStallWarning()
{
    stallWarnings_.fetch_add(1, std::memory_order_relaxed);
}

void
MetricsHub::workerActive(int delta)
{
    activeWorkers_.fetch_add(delta, std::memory_order_relaxed);
}

MetricsSnapshot
MetricsHub::snapshot() const
{
    MetricsSnapshot snap;
    snap.uptimeSeconds = now();
    snap.submitted = submitted_.load(std::memory_order_relaxed);
    snap.completed = completed_.load(std::memory_order_relaxed);
    snap.batches = batches_.load(std::memory_order_relaxed);
    snap.slotsTotal = slotsTotal_.load(std::memory_order_relaxed);
    snap.slotsUsed = slotsUsed_.load(std::memory_order_relaxed);
    snap.outages = outages_.load(std::memory_order_relaxed);
    snap.stallWarnings =
        stallWarnings_.load(std::memory_order_relaxed);
    snap.queueDepth = queueDepth_.load(std::memory_order_relaxed);
    const std::int32_t active =
        activeWorkers_.load(std::memory_order_relaxed);
    snap.activeWorkers =
        active > 0 ? static_cast<std::uint32_t>(active) : 0;
    snap.simSeconds = simSeconds_.load(std::memory_order_relaxed);
    snap.energyJoules =
        energyJoules_.load(std::memory_order_relaxed);
    snap.outageStallSeconds =
        outageStallSeconds_.load(std::memory_order_relaxed);
    snap.throughputPerS =
        snap.uptimeSeconds > 0.0
            ? static_cast<double>(snap.completed) /
                  snap.uptimeSeconds
            : 0.0;

    // Fold the live window slots.
    const std::uint64_t cur = static_cast<std::uint64_t>(
        snap.uptimeSeconds / slotSeconds_);
    const std::uint64_t oldest =
        cur >= cfg_.windowSlots ? cur - cfg_.windowSlots + 1 : 0;
    MergedHist host;
    MergedHist sim;
    std::uint64_t wSlotsTotal = 0;
    std::uint64_t wSlotsUsed = 0;
    double wEnergy = 0.0;
    for (unsigned i = 0; i < cfg_.windowSlots; ++i) {
        const Slot &s = slots_[i];
        const std::uint64_t e =
            s.epoch.load(std::memory_order_relaxed);
        if (e == Slot::kNoEpoch || e < oldest || e > cur) {
            continue;
        }
        snap.windowCompleted +=
            s.completed.load(std::memory_order_relaxed);
        snap.windowBatches +=
            s.batches.load(std::memory_order_relaxed);
        wSlotsTotal += s.slotsTotal.load(std::memory_order_relaxed);
        wSlotsUsed += s.slotsUsed.load(std::memory_order_relaxed);
        wEnergy += s.energyJoules.load(std::memory_order_relaxed);
        snap.windowOutageStallSeconds +=
            s.outageStallSeconds.load(std::memory_order_relaxed);
        for (int b = 0; b < Histogram::kBuckets; ++b) {
            const std::uint64_t hb =
                s.hostBuckets[b].load(std::memory_order_relaxed);
            const std::uint64_t sb =
                s.simBuckets[b].load(std::memory_order_relaxed);
            host.buckets[b] += hb;
            host.count += hb;
            sim.buckets[b] += sb;
            sim.count += sb;
        }
        host.min = std::min(
            host.min, s.hostMin.load(std::memory_order_relaxed));
        host.max = std::max(
            host.max, s.hostMax.load(std::memory_order_relaxed));
        sim.min = std::min(
            sim.min, s.simMin.load(std::memory_order_relaxed));
        sim.max = std::max(
            sim.max, s.simMax.load(std::memory_order_relaxed));
    }
    snap.windowSeconds =
        std::min(snap.uptimeSeconds, cfg_.windowSeconds);
    snap.windowThroughputPerS =
        snap.windowSeconds > 0.0
            ? static_cast<double>(snap.windowCompleted) /
                  snap.windowSeconds
            : 0.0;
    snap.windowOccupancy =
        wSlotsTotal > 0
            ? static_cast<double>(wSlotsUsed) /
                  static_cast<double>(wSlotsTotal)
            : 0.0;
    snap.windowEnergyPerRequestJ =
        snap.windowCompleted > 0
            ? wEnergy / static_cast<double>(snap.windowCompleted)
            : 0.0;
    snap.hostLatency = host.quantiles();
    snap.simLatency = sim.quantiles();
    return snap;
}

// -- Serialization ----------------------------------------------------
//
// fromJson() scans for the keys in the exact order toJson() emits
// them, so the two stay a strict round-trip pair; extend both
// together (and docs/OBSERVABILITY.md's format table).

std::string
MetricsSnapshot::toJson() const
{
    std::string j = "{\"metrics_schema\":" +
                    std::to_string(schema::kMetricsSchemaVersion);
    j += ",\"uptime_s\":" + num(uptimeSeconds);
    j += ",\"window_s\":" + num(windowSeconds);
    j += ",\"lifetime\":{";
    j += "\"submitted\":" + std::to_string(submitted);
    j += ",\"completed\":" + std::to_string(completed);
    j += ",\"batches\":" + std::to_string(batches);
    j += ",\"queue_depth\":" + std::to_string(queueDepth);
    j += ",\"active_workers\":" + std::to_string(activeWorkers);
    j += ",\"slots_total\":" + std::to_string(slotsTotal);
    j += ",\"slots_used\":" + std::to_string(slotsUsed);
    j += ",\"outages\":" + std::to_string(outages);
    j += ",\"stall_warnings\":" + std::to_string(stallWarnings);
    j += ",\"sim_seconds\":" + num(simSeconds);
    j += ",\"energy_j\":" + num(energyJoules);
    j += ",\"outage_stall_s\":" + num(outageStallSeconds);
    j += ",\"throughput_per_s\":" + num(throughputPerS);
    j += "},\"window\":{";
    j += "\"completed\":" + std::to_string(windowCompleted);
    j += ",\"batches\":" + std::to_string(windowBatches);
    j += ",\"throughput_per_s\":" + num(windowThroughputPerS);
    j += ",\"batch_occupancy\":" + num(windowOccupancy);
    j += ",\"energy_per_request_j\":" + num(windowEnergyPerRequestJ);
    j += ",\"outage_stall_s\":" + num(windowOutageStallSeconds);
    j += ",\"host_latency_s\":{";
    j += "\"count\":" + std::to_string(hostLatency.count);
    j += ",\"p50\":" + num(hostLatency.p50);
    j += ",\"p95\":" + num(hostLatency.p95);
    j += ",\"p99\":" + num(hostLatency.p99);
    j += "},\"sim_latency_s\":{";
    j += "\"count\":" + std::to_string(simLatency.count);
    j += ",\"p50\":" + num(simLatency.p50);
    j += ",\"p95\":" + num(simLatency.p95);
    j += ",\"p99\":" + num(simLatency.p99);
    j += "}}}";
    return j;
}

std::string
MetricsSnapshot::toPrometheus() const
{
    std::string p;
    auto counter = [&p](const char *name, const char *help,
                        double v) {
        p += "# HELP ";
        p += name;
        p += " ";
        p += help;
        p += "\n# TYPE ";
        p += name;
        p += " counter\n";
        p += name;
        p += " " + num(v) + "\n";
    };
    auto gauge = [&p](const char *name, const char *help, double v) {
        p += "# HELP ";
        p += name;
        p += " ";
        p += help;
        p += "\n# TYPE ";
        p += name;
        p += " gauge\n";
        p += name;
        p += " " + num(v) + "\n";
    };
    counter("mouse_serve_requests_submitted_total",
            "requests admitted", static_cast<double>(submitted));
    counter("mouse_serve_requests_completed_total",
            "requests completed", static_cast<double>(completed));
    counter("mouse_serve_batches_total", "gate passes executed",
            static_cast<double>(batches));
    counter("mouse_serve_outages_total",
            "harvested-power brownouts across passes",
            static_cast<double>(outages));
    counter("mouse_serve_stall_warnings_total",
            "queue-stall watchdog firings",
            static_cast<double>(stallWarnings));
    counter("mouse_serve_sim_seconds_total",
            "simulated array seconds", simSeconds);
    counter("mouse_serve_energy_joules_total",
            "simulated array energy", energyJoules);
    counter("mouse_serve_outage_stall_seconds_total",
            "simulated seconds lost to brownouts",
            outageStallSeconds);
    gauge("mouse_serve_queue_depth",
          "requests admitted but not completed",
          static_cast<double>(queueDepth));
    gauge("mouse_serve_active_workers", "workers inside a drain",
          static_cast<double>(activeWorkers));
    gauge("mouse_serve_uptime_seconds",
          "seconds since the hub was created", uptimeSeconds);
    gauge("mouse_serve_window_throughput_per_second",
          "rolling-window completion rate", windowThroughputPerS);
    gauge("mouse_serve_window_batch_occupancy",
          "rolling-window used/offered column-slot ratio",
          windowOccupancy);
    gauge("mouse_serve_window_energy_per_request_joules",
          "rolling-window energy per completed request",
          windowEnergyPerRequestJ);
    auto quantiles = [&p](const char *name, const char *help,
                          const LatencyQuantiles &q) {
        p += "# HELP ";
        p += name;
        p += " ";
        p += help;
        p += "\n# TYPE ";
        p += name;
        p += " summary\n";
        p += std::string(name) + "{quantile=\"0.5\"} " +
             num(q.p50) + "\n";
        p += std::string(name) + "{quantile=\"0.95\"} " +
             num(q.p95) + "\n";
        p += std::string(name) + "{quantile=\"0.99\"} " +
             num(q.p99) + "\n";
        p += std::string(name) + "_count " +
             std::to_string(q.count) + "\n";
    };
    quantiles("mouse_serve_host_latency_seconds",
              "rolling-window admission-to-completion latency",
              hostLatency);
    quantiles("mouse_serve_sim_latency_seconds",
              "rolling-window simulated pass latency", simLatency);
    return p;
}

namespace
{

/** Find '"key":' at/after @p pos and parse the number behind it. */
bool
scanNumber(const std::string &text, const char *key,
           std::size_t &pos, double &out)
{
    const std::string needle = std::string("\"") + key + "\":";
    const std::size_t at = text.find(needle, pos);
    if (at == std::string::npos) {
        return false;
    }
    const char *start = text.c_str() + at + needle.size();
    char *end = nullptr;
    out = std::strtod(start, &end);
    if (end == start) {
        return false;
    }
    pos = static_cast<std::size_t>(end - text.c_str());
    return true;
}

} // namespace

std::optional<MetricsSnapshot>
MetricsSnapshot::fromJson(const std::string &text)
{
    std::size_t pos = 0;
    double v = 0.0;
    if (!scanNumber(text, "metrics_schema", pos, v) ||
        v != schema::kMetricsSchemaVersion) {
        return std::nullopt;
    }
    MetricsSnapshot s;
    auto u64 = [](double d) {
        return d > 0.0 ? static_cast<std::uint64_t>(d + 0.5) : 0;
    };
    // Keys scanned in toJson() emission order; "lifetime" keys come
    // before the same-named "window" keys.
    if (!scanNumber(text, "uptime_s", pos, s.uptimeSeconds) ||
        !scanNumber(text, "window_s", pos, s.windowSeconds) ||
        !scanNumber(text, "submitted", pos, v)) {
        return std::nullopt;
    }
    s.submitted = u64(v);
    if (!scanNumber(text, "completed", pos, v)) {
        return std::nullopt;
    }
    s.completed = u64(v);
    if (!scanNumber(text, "batches", pos, v)) {
        return std::nullopt;
    }
    s.batches = u64(v);
    if (!scanNumber(text, "queue_depth", pos, v)) {
        return std::nullopt;
    }
    s.queueDepth = static_cast<std::int64_t>(v);
    if (!scanNumber(text, "active_workers", pos, v)) {
        return std::nullopt;
    }
    s.activeWorkers = static_cast<std::uint32_t>(u64(v));
    if (!scanNumber(text, "slots_total", pos, v)) {
        return std::nullopt;
    }
    s.slotsTotal = u64(v);
    if (!scanNumber(text, "slots_used", pos, v)) {
        return std::nullopt;
    }
    s.slotsUsed = u64(v);
    if (!scanNumber(text, "outages", pos, v)) {
        return std::nullopt;
    }
    s.outages = u64(v);
    if (!scanNumber(text, "stall_warnings", pos, v)) {
        return std::nullopt;
    }
    s.stallWarnings = u64(v);
    if (!scanNumber(text, "sim_seconds", pos, s.simSeconds) ||
        !scanNumber(text, "energy_j", pos, s.energyJoules) ||
        !scanNumber(text, "outage_stall_s", pos,
                    s.outageStallSeconds) ||
        !scanNumber(text, "throughput_per_s", pos,
                    s.throughputPerS) ||
        !scanNumber(text, "completed", pos, v)) {
        return std::nullopt;
    }
    s.windowCompleted = u64(v);
    if (!scanNumber(text, "batches", pos, v)) {
        return std::nullopt;
    }
    s.windowBatches = u64(v);
    if (!scanNumber(text, "throughput_per_s", pos,
                    s.windowThroughputPerS) ||
        !scanNumber(text, "batch_occupancy", pos,
                    s.windowOccupancy) ||
        !scanNumber(text, "energy_per_request_j", pos,
                    s.windowEnergyPerRequestJ) ||
        !scanNumber(text, "outage_stall_s", pos,
                    s.windowOutageStallSeconds)) {
        return std::nullopt;
    }
    auto latency = [&](LatencyQuantiles &q) {
        double c = 0.0;
        if (!scanNumber(text, "count", pos, c) ||
            !scanNumber(text, "p50", pos, q.p50) ||
            !scanNumber(text, "p95", pos, q.p95) ||
            !scanNumber(text, "p99", pos, q.p99)) {
            return false;
        }
        q.count = u64(c);
        return true;
    };
    if (!latency(s.hostLatency) || !latency(s.simLatency)) {
        return std::nullopt;
    }
    return s;
}

// -- StallWatchdog ----------------------------------------------------

const char *
StallReport::kindName() const
{
    switch (kind) {
      case Kind::kIdleQueue:
        return "idle_queue";
      case Kind::kStuckDrain:
        return "stuck_drain";
    }
    return "?";
}

std::string
StallReport::toJson() const
{
    std::string j = "{\"stall\":\"";
    j += kindName();
    j += "\",\"stalled_s\":" + num(stalledSeconds);
    j += ",\"queue_depth\":" + std::to_string(queueDepth);
    j += ",\"completed\":" + std::to_string(completed);
    j += ",\"batches\":" + std::to_string(batches);
    j += ",\"active_workers\":" + std::to_string(activeWorkers);
    j += "}";
    return j;
}

StallWatchdog::StallWatchdog(MetricsHub &hub,
                             double noProgressSeconds)
    : hub_(hub), threshold_(noProgressSeconds)
{
    mouse_assert(threshold_ > 0.0,
                 "watchdog threshold must be positive");
}

StallWatchdog::~StallWatchdog()
{
    stop();
}

std::optional<StallReport>
StallWatchdog::check(double nowSeconds)
{
    const MetricsSnapshot s = hub_.snapshot();
    const std::uint64_t progress = s.completed + s.batches;
    if (!seeded_ || progress != lastProgress_) {
        seeded_ = true;
        lastProgress_ = progress;
        lastProgressAt_ = nowSeconds;
        reported_ = false;
        return std::nullopt;
    }
    if (s.queueDepth <= 0) {
        // Nothing owed: an idle service is not a stalled one.
        lastProgressAt_ = nowSeconds;
        reported_ = false;
        return std::nullopt;
    }
    if (reported_ || nowSeconds - lastProgressAt_ < threshold_) {
        return std::nullopt;
    }
    reported_ = true;
    StallReport r;
    r.kind = s.activeWorkers > 0 ? StallReport::Kind::kStuckDrain
                                 : StallReport::Kind::kIdleQueue;
    r.stalledSeconds = nowSeconds - lastProgressAt_;
    r.queueDepth = s.queueDepth;
    r.completed = s.completed;
    r.batches = s.batches;
    r.activeWorkers = s.activeWorkers;
    return r;
}

void
StallWatchdog::start(double pollSeconds,
                     std::function<void(const StallReport &)> onStall)
{
    mouse_assert(!running_.load(), "watchdog already started");
    running_.store(true);
    poller_ = std::thread([this, pollSeconds,
                           cb = std::move(onStall)]() {
        while (running_.load(std::memory_order_relaxed)) {
            if (const auto r = check(hub_.now())) {
                hub_.recordStallWarning();
                if (cb) {
                    cb(*r);
                }
            }
            std::this_thread::sleep_for(
                std::chrono::duration<double>(pollSeconds));
        }
    });
}

void
StallWatchdog::stop()
{
    if (running_.exchange(false) && poller_.joinable()) {
        poller_.join();
    }
}

} // namespace mouse::obs
