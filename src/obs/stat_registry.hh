/**
 * @file
 * Hierarchical named-statistics registry (gem5-style).
 *
 * Every subsystem registers leaf statistics under dotted names
 * ("sim.outage.count", "tile.0.ops", "harvest.cap.recharges"); the
 * registry renders them as a nested JSON tree or a flat CSV table,
 * and merges name-wise so per-thread / per-point registries can be
 * folded deterministically at a sweep join.
 *
 * Four kinds:
 *  - Counter: monotonically increasing uint64 (merge: sum);
 *  - Scalar: a double with an explicit merge policy (sum/min/max);
 *  - Histogram: geometric-bucket distribution with exact count /
 *    sum / min / max and interpolated percentiles (merge: bucket-wise
 *    sum);
 *  - Formula: a derived value computed over the registry *by name*
 *    at dump time, so it stays correct after merges.
 *
 * Registration is idempotent: asking for an existing name of the
 * same kind returns the existing stat, so hot paths can cache the
 * reference once.  The registry is not internally synchronized —
 * use one registry per thread of execution and merge at the join,
 * which is also what keeps parallel sweeps bit-identical.
 */

#ifndef MOUSE_OBS_STAT_REGISTRY_HH
#define MOUSE_OBS_STAT_REGISTRY_HH

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>

namespace mouse::obs
{

class StatRegistry;

/** Monotonic event count. */
class Counter
{
  public:
    void operator+=(std::uint64_t n) { value_ += n; }
    void increment() { ++value_; }
    std::uint64_t value() const { return value_; }

  private:
    std::uint64_t value_ = 0;
};

/** How two same-named scalars combine when registries merge. */
enum class MergePolicy
{
    kSum,
    kMin,
    kMax,
};

/** A double-valued statistic with an explicit merge policy. */
class Scalar
{
  public:
    explicit Scalar(MergePolicy policy = MergePolicy::kSum)
        : policy_(policy)
    {
    }

    /** Overwrite the value. */
    void
    set(double v)
    {
        value_ = v;
        touched_ = true;
    }

    /** Fold @p v in according to the merge policy (min keeps the
     *  smaller, max the larger, sum accumulates). */
    void observe(double v);

    /** Current value; 0 when never set/observed. */
    double value() const { return touched_ ? value_ : 0.0; }
    bool touched() const { return touched_; }
    MergePolicy policy() const { return policy_; }

    void merge(const Scalar &other);

  private:
    double value_ = 0.0;
    bool touched_ = false;
    MergePolicy policy_;
};

/**
 * Distribution over positive values with geometric buckets (8 per
 * decade from 1e-12 to 1e14; non-positive samples land in a
 * dedicated underflow bucket).  Percentiles interpolate inside the
 * selected bucket and are clamped to the exact observed [min, max].
 */
class Histogram
{
  public:
    static constexpr int kBucketsPerDecade = 8;
    static constexpr int kLoExponent = -12;
    static constexpr int kHiExponent = 14;
    static constexpr int kBuckets =
        (kHiExponent - kLoExponent) * kBucketsPerDecade + 2;

    void sample(double v, std::uint64_t weight = 1);

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double min() const { return count_ > 0 ? min_ : 0.0; }
    double max() const { return count_ > 0 ? max_ : 0.0; }
    double mean() const;

    /** Value at quantile @p q in [0, 1] (bucket-interpolated). */
    double percentile(double q) const;

    void merge(const Histogram &other);

  private:
    std::uint64_t buckets_[kBuckets] = {};
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/** Derived value evaluated against the owning registry at dump
 *  time.  The callback must only look stats up *by name* (no
 *  captured stat pointers) so it survives registry merges. */
using FormulaFn = std::function<double(const StatRegistry &)>;

/** Hierarchical registry of named statistics. */
class StatRegistry
{
  public:
    /** Register (or fetch) a counter under @p name. */
    Counter &counter(const std::string &name,
                     const std::string &desc = "");

    /** Register (or fetch) a scalar under @p name. */
    Scalar &scalar(const std::string &name,
                   MergePolicy policy = MergePolicy::kSum,
                   const std::string &desc = "");

    /** Register (or fetch) a histogram under @p name. */
    Histogram &histogram(const std::string &name,
                         const std::string &desc = "");

    /** Register a formula; replaces an existing one of that name. */
    void formula(const std::string &name, FormulaFn fn,
                 const std::string &desc = "");

    // -- Lookup (null when absent or of a different kind) -----------
    const Counter *findCounter(const std::string &name) const;
    const Scalar *findScalar(const std::string &name) const;
    const Histogram *findHistogram(const std::string &name) const;

    /** Counter value by name, 0 when absent (formula convenience). */
    double counterValue(const std::string &name) const;
    /** Scalar value by name, 0 when absent. */
    double scalarValue(const std::string &name) const;

    bool empty() const { return stats_.empty(); }
    std::size_t size() const { return stats_.size(); }

    /**
     * Fold @p other into this registry name-wise: counters and
     * histogram buckets add, scalars apply their merge policy, and
     * formulas absent here are adopted (they re-evaluate against the
     * merged stats).  Stats only present in @p other are copied.
     */
    void merge(const StatRegistry &other);

    /** Nested JSON object keyed by the dotted-name hierarchy. */
    std::string toJson() const;

    /** Flat CSV: name,kind,value,count,sum,min,max,mean,p50,p90,p99. */
    std::string toCsv() const;

  private:
    struct Entry
    {
        enum class Kind
        {
            kCounter,
            kScalar,
            kHistogram,
            kFormula,
        };
        Kind kind;
        std::string desc;
        std::unique_ptr<Counter> counter;
        std::unique_ptr<Scalar> scalar;
        std::unique_ptr<Histogram> histogram;
        FormulaFn formula;
    };

    Entry &require(const std::string &name, Entry::Kind kind);

    /** Name-sorted so every dump and merge is deterministic. */
    std::map<std::string, Entry> stats_;
};

} // namespace mouse::obs

#endif // MOUSE_OBS_STAT_REGISTRY_HH
