#include "stat_registry.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "common/logging.hh"

namespace mouse::obs
{

namespace
{

/** Shortest-round-trip formatting; JSON has no NaN/Inf literals. */
std::string
num(double v)
{
    if (!std::isfinite(v)) {
        return v > 0 ? "1e308" : (v < 0 ? "-1e308" : "0");
    }
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

std::string
num(std::uint64_t v)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(v));
    return buf;
}

} // namespace

void
Scalar::observe(double v)
{
    if (!touched_) {
        value_ = v;
        touched_ = true;
        return;
    }
    switch (policy_) {
      case MergePolicy::kSum:
        value_ += v;
        break;
      case MergePolicy::kMin:
        value_ = std::min(value_, v);
        break;
      case MergePolicy::kMax:
        value_ = std::max(value_, v);
        break;
    }
}

void
Scalar::merge(const Scalar &other)
{
    if (other.touched_) {
        observe(other.value_);
    }
}

namespace
{

/** Bucket index for a sample (0 = underflow / non-positive). */
int
bucketIndex(double v)
{
    if (!(v > 0.0)) {
        return 0;
    }
    const double d = std::log10(v) - Histogram::kLoExponent;
    const int idx = 1 + static_cast<int>(std::floor(
                            d * Histogram::kBucketsPerDecade));
    return std::clamp(idx, 0, Histogram::kBuckets - 1);
}

/** Lower bound of bucket @p idx (idx >= 1). */
double
bucketLo(int idx)
{
    return std::pow(10.0, Histogram::kLoExponent +
                              static_cast<double>(idx - 1) /
                                  Histogram::kBucketsPerDecade);
}

} // namespace

void
Histogram::sample(double v, std::uint64_t weight)
{
    if (weight == 0) {
        return;
    }
    if (count_ == 0) {
        min_ = max_ = v;
    } else {
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }
    buckets_[bucketIndex(v)] += weight;
    count_ += weight;
    sum_ += v * static_cast<double>(weight);
}

double
Histogram::mean() const
{
    return count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0;
}

double
Histogram::percentile(double q) const
{
    if (count_ == 0) {
        return 0.0;
    }
    q = std::clamp(q, 0.0, 1.0);
    const double target = q * static_cast<double>(count_);
    std::uint64_t seen = 0;
    for (int i = 0; i < kBuckets; ++i) {
        if (buckets_[i] == 0) {
            continue;
        }
        const double next =
            static_cast<double>(seen + buckets_[i]);
        if (next >= target) {
            double v;
            if (i == 0) {
                v = min_;
            } else {
                // Interpolate inside the geometric bucket.
                const double lo = bucketLo(i);
                const double hi =
                    lo * std::pow(10.0, 1.0 / kBucketsPerDecade);
                const double frac =
                    buckets_[i] > 0
                        ? (target - static_cast<double>(seen)) /
                              static_cast<double>(buckets_[i])
                        : 0.0;
                v = lo + (hi - lo) * std::clamp(frac, 0.0, 1.0);
            }
            return std::clamp(v, min_, max_);
        }
        seen += buckets_[i];
    }
    return max_;
}

void
Histogram::merge(const Histogram &other)
{
    if (other.count_ == 0) {
        return;
    }
    if (count_ == 0) {
        min_ = other.min_;
        max_ = other.max_;
    } else {
        min_ = std::min(min_, other.min_);
        max_ = std::max(max_, other.max_);
    }
    for (int i = 0; i < kBuckets; ++i) {
        buckets_[i] += other.buckets_[i];
    }
    count_ += other.count_;
    sum_ += other.sum_;
}

StatRegistry::Entry &
StatRegistry::require(const std::string &name, Entry::Kind kind)
{
    auto it = stats_.find(name);
    if (it != stats_.end()) {
        if (it->second.kind != kind) {
            mouse_panic("stat '%s' re-registered as a different kind",
                        name.c_str());
        }
        return it->second;
    }
    Entry e;
    e.kind = kind;
    return stats_.emplace(name, std::move(e)).first->second;
}

Counter &
StatRegistry::counter(const std::string &name, const std::string &desc)
{
    Entry &e = require(name, Entry::Kind::kCounter);
    if (!e.counter) {
        e.counter = std::make_unique<Counter>();
        e.desc = desc;
    }
    return *e.counter;
}

Scalar &
StatRegistry::scalar(const std::string &name, MergePolicy policy,
                     const std::string &desc)
{
    Entry &e = require(name, Entry::Kind::kScalar);
    if (!e.scalar) {
        e.scalar = std::make_unique<Scalar>(policy);
        e.desc = desc;
    }
    return *e.scalar;
}

Histogram &
StatRegistry::histogram(const std::string &name,
                        const std::string &desc)
{
    Entry &e = require(name, Entry::Kind::kHistogram);
    if (!e.histogram) {
        e.histogram = std::make_unique<Histogram>();
        e.desc = desc;
    }
    return *e.histogram;
}

void
StatRegistry::formula(const std::string &name, FormulaFn fn,
                      const std::string &desc)
{
    Entry &e = require(name, Entry::Kind::kFormula);
    e.formula = std::move(fn);
    e.desc = desc;
}

const Counter *
StatRegistry::findCounter(const std::string &name) const
{
    auto it = stats_.find(name);
    return it != stats_.end() ? it->second.counter.get() : nullptr;
}

const Scalar *
StatRegistry::findScalar(const std::string &name) const
{
    auto it = stats_.find(name);
    return it != stats_.end() ? it->second.scalar.get() : nullptr;
}

const Histogram *
StatRegistry::findHistogram(const std::string &name) const
{
    auto it = stats_.find(name);
    return it != stats_.end() ? it->second.histogram.get() : nullptr;
}

double
StatRegistry::counterValue(const std::string &name) const
{
    const Counter *c = findCounter(name);
    return c ? static_cast<double>(c->value()) : 0.0;
}

double
StatRegistry::scalarValue(const std::string &name) const
{
    const Scalar *s = findScalar(name);
    return s ? s->value() : 0.0;
}

void
StatRegistry::merge(const StatRegistry &other)
{
    for (const auto &[name, src] : other.stats_) {
        switch (src.kind) {
          case Entry::Kind::kCounter:
            counter(name, src.desc) += src.counter->value();
            break;
          case Entry::Kind::kScalar:
            scalar(name, src.scalar->policy(), src.desc)
                .merge(*src.scalar);
            break;
          case Entry::Kind::kHistogram:
            histogram(name, src.desc).merge(*src.histogram);
            break;
          case Entry::Kind::kFormula:
            // Adopt if absent; formulas look stats up by name, so
            // the copy re-evaluates against the merged registry.
            if (stats_.find(name) == stats_.end()) {
                formula(name, src.formula, src.desc);
            }
            break;
        }
    }
}

namespace
{

std::string
histogramJson(const Histogram &h)
{
    std::string j = "{\"count\":" + num(h.count());
    j += ",\"sum\":" + num(h.sum());
    j += ",\"min\":" + num(h.min());
    j += ",\"max\":" + num(h.max());
    j += ",\"mean\":" + num(h.mean());
    j += ",\"p50\":" + num(h.percentile(0.50));
    j += ",\"p90\":" + num(h.percentile(0.90));
    j += ",\"p99\":" + num(h.percentile(0.99));
    j += "}";
    return j;
}

} // namespace

std::string
StatRegistry::toJson() const
{
    // The map is name-sorted, so dotted names sharing a prefix are
    // adjacent; walk them while tracking the open component path.
    std::string j = "{";
    std::vector<std::string> open;
    bool first = true;
    for (const auto &[name, e] : stats_) {
        std::vector<std::string> parts;
        std::size_t pos = 0;
        while (true) {
            const std::size_t dot = name.find('.', pos);
            if (dot == std::string::npos) {
                parts.push_back(name.substr(pos));
                break;
            }
            parts.push_back(name.substr(pos, dot - pos));
            pos = dot + 1;
        }
        // Close groups that this name is no longer inside.
        std::size_t common = 0;
        while (common < open.size() && common + 1 < parts.size() &&
               open[common] == parts[common]) {
            ++common;
        }
        for (std::size_t k = open.size(); k > common; --k) {
            j += "}";
        }
        open.resize(common);
        if (!first) {
            j += ",";
        }
        first = false;
        // Open the new groups down to the leaf.
        for (std::size_t k = common; k + 1 < parts.size(); ++k) {
            j += "\"" + parts[k] + "\":{";
            open.push_back(parts[k]);
        }
        j += "\"" + parts.back() + "\":";
        switch (e.kind) {
          case Entry::Kind::kCounter:
            j += num(e.counter->value());
            break;
          case Entry::Kind::kScalar:
            j += num(e.scalar->value());
            break;
          case Entry::Kind::kHistogram:
            j += histogramJson(*e.histogram);
            break;
          case Entry::Kind::kFormula:
            j += num(e.formula ? e.formula(*this) : 0.0);
            break;
        }
    }
    for (std::size_t k = open.size(); k > 0; --k) {
        j += "}";
    }
    j += "}";
    return j;
}

std::string
StatRegistry::toCsv() const
{
    std::string csv =
        "name,kind,value,count,sum,min,max,mean,p50,p90,p99\n";
    for (const auto &[name, e] : stats_) {
        csv += name;
        switch (e.kind) {
          case Entry::Kind::kCounter:
            csv += ",counter," + num(e.counter->value()) +
                   ",,,,,,,,";
            break;
          case Entry::Kind::kScalar:
            csv += ",scalar," + num(e.scalar->value()) + ",,,,,,,,";
            break;
          case Entry::Kind::kFormula:
            csv += ",formula," +
                   num(e.formula ? e.formula(*this) : 0.0) +
                   ",,,,,,,,";
            break;
          case Entry::Kind::kHistogram: {
            const Histogram &h = *e.histogram;
            csv += ",histogram,," + num(h.count()) + "," +
                   num(h.sum()) + "," + num(h.min()) + "," +
                   num(h.max()) + "," + num(h.mean()) + "," +
                   num(h.percentile(0.5)) + "," +
                   num(h.percentile(0.9)) + "," +
                   num(h.percentile(0.99));
            break;
          }
        }
        csv += "\n";
    }
    return csv;
}

} // namespace mouse::obs
