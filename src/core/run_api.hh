/**
 * @file
 * The unified execution API.
 *
 * The paper's evaluation exercises four run modes — functional or
 * trace fidelity, continuous or harvested power — which historically
 * had four differently-shaped entry points.  A RunRequest names one
 * of those modes declaratively; Accelerator::execute() accepts it and
 * returns a RunResult that wraps the RunStats together with the host
 * wall-clock cost and the metadata of the grid point that produced it
 * (filled in by the ExperimentRunner for sweeps, or minimally by
 * execute() itself for one-off runs).
 *
 * RunResult serializes to JSON so benches, the CLI (`--json`) and CI
 * can diff results without scraping printf tables.
 */

#ifndef MOUSE_CORE_RUN_API_HH
#define MOUSE_CORE_RUN_API_HH

#include <cstdint>
#include <string>

#include <memory>

#include "compile/program.hh"
#include "obs/telemetry.hh"
#include "sim/simulator.hh"

namespace mouse
{

/** Simulation fidelity (see sim/simulator.hh). */
enum class Fidelity
{
    /** Bit-exact machine, real restart protocol. */
    Functional,
    /** Compressed-trace performance model. */
    Trace,
};

/** Power environment of a run. */
enum class PowerMode
{
    /** Wall power: the run never sees an outage. */
    Continuous,
    /** Energy-harvesting environment (capacitor + source). */
    Harvested,
    /**
     * Scripted outages: power dies exactly at the attempts named by
     * RunRequest::schedule (fault injection; Functional fidelity
     * only).  See sim/outage_schedule.hh and docs/FAULT_INJECTION.md.
     */
    Scheduled,
};

/** Declarative description of one simulation run. */
struct RunRequest
{
    Fidelity fidelity = Fidelity::Functional;
    PowerMode power = PowerMode::Continuous;
    /** Harvesting environment; only read under Harvested. */
    HarvestConfig harvest{};
    /**
     * Outage script; required for Scheduled power, ignored
     * otherwise.  Non-owning: must outlive the execute() call.
     */
    const OutageSchedule *schedule = nullptr;
    /** Attempt guard for Scheduled runs (0 = unlimited): a run that
     *  has not halted after this many attempts stops early. */
    std::uint64_t maxAttempts = 0;
    /**
     * Trace to simulate; required for Trace fidelity, ignored for
     * Functional (which runs the loaded program).  Non-owning: the
     * trace must outlive the execute() call.
     */
    const Trace *trace = nullptr;
    /** Free-form tag echoed into the result's metadata. */
    std::string label;
    /**
     * Telemetry channels to record (all off by default).  When any
     * are enabled, the result carries the filled StatRegistry /
     * TraceSink; see docs/OBSERVABILITY.md.
     */
    obs::TraceConfig telemetry{};
};

/**
 * Typed rejection of a malformed RunRequest.  execute() validates
 * the request up front and carries one of these in the RunResult
 * instead of dying mid-run, so callers (the CLI, sweep drivers) can
 * report a usage error and exit cleanly.
 */
enum class RunError
{
    kNone = 0,
    /** Trace fidelity but req.trace == nullptr. */
    kTraceMissing,
    /** Scheduled power but req.schedule == nullptr. */
    kScheduleMissing,
    /** req.schedule set but power is not Scheduled. */
    kScheduleWithoutScheduledPower,
    /** req.maxAttempts set but power is not Scheduled. */
    kMaxAttemptsWithoutScheduledPower,
    /** Scheduled power with Trace fidelity (outages land at
     *  bit-exact micro-steps, which only Functional has). */
    kScheduledTraceFidelity,
};

/** Stable machine-readable name of a RunError ("trace_missing"). */
const char *runErrorName(RunError e);

/** Human-oriented one-line description with the fix spelled out. */
const char *runErrorMessage(RunError e);

/** Check @p req for the invalid combinations above; kNone if OK. */
RunError validateRunRequest(const RunRequest &req);

/** Identity of the sweep-grid point a result belongs to. */
struct PointMeta
{
    /** Position in the grid's canonical order (0 for one-off runs). */
    std::size_t index = 0;
    std::string tech;
    std::string benchmark;
    /** Harvester power; 0 means continuous power. */
    Watts sourcePower = 0.0;
    /** Outage-schedule seed the run actually used. */
    std::uint64_t seed = 0;
    unsigned checkpointPeriod = 1;
    /** Gate noise margin of the library the run used. */
    double margin = 0.0;
    std::string label;
};

/** Outcome of one run: simulation stats plus provenance. */
struct RunResult
{
    RunStats stats;
    /** kNone on success; otherwise the request was rejected before
     *  simulating and stats are all-zero. */
    RunError error = RunError::kNone;
    /** Host wall-clock time spent simulating, in seconds. */
    double wallSeconds = 0.0;
    PointMeta meta;

    bool ok() const { return error == RunError::kNone; }
    /** Hierarchical stats tree; null unless telemetry.stats. */
    std::shared_ptr<obs::StatRegistry> statsTree;
    /** Event trace / waveform; null unless telemetry asked. */
    std::shared_ptr<obs::TraceSink> traceSink;

    /** Single-line JSON object (stats + meta + wall clock; the
     *  stat_registry tree rides along when collected).  The leading
     *  "schema" field versions the document — see
     *  docs/EXPERIMENTS_API.md for the field order and meaning. */
    std::string toJson() const;
};

/** Version of every JSON document this API emits (RunResult,
 *  SweepResult, and the injection reports of src/inject).
 *  Schema 3 added the "error" field rejected requests carry. */
constexpr int kResultSchemaVersion = 3;

/** JSON object for a RunStats (used by RunResult::toJson). */
std::string toJson(const RunStats &stats);

/** Minimal JSON string escaping (quotes, backslashes, control). */
std::string jsonEscape(const std::string &s);

} // namespace mouse

#endif // MOUSE_CORE_RUN_API_HH
