/**
 * @file
 * The unified execution API.
 *
 * The paper's evaluation exercises four run modes — functional or
 * trace fidelity, continuous or harvested power — which historically
 * had four differently-shaped entry points.  A RunRequest names one
 * of those modes declaratively; Accelerator::execute() accepts it and
 * returns a RunResult that wraps the RunStats together with the host
 * wall-clock cost and the metadata of the grid point that produced it
 * (filled in by the ExperimentRunner for sweeps, or minimally by
 * execute() itself for one-off runs).
 *
 * RunResult serializes to JSON so benches, the CLI (`--json`) and CI
 * can diff results without scraping printf tables.
 */

#ifndef MOUSE_CORE_RUN_API_HH
#define MOUSE_CORE_RUN_API_HH

#include <cstdint>
#include <string>

#include <memory>

#include "common/schema_versions.hh"
#include "compile/program.hh"
#include "obs/telemetry.hh"
#include "sim/simulator.hh"

namespace mouse
{

/** Simulation fidelity (see sim/simulator.hh). */
enum class Fidelity
{
    /** Bit-exact machine, real restart protocol. */
    Functional,
    /** Compressed-trace performance model. */
    Trace,
};

/** Power environment of a run. */
enum class PowerMode
{
    /** Wall power: the run never sees an outage. */
    Continuous,
    /** Energy-harvesting environment (capacitor + source). */
    Harvested,
    /**
     * Scripted outages: power dies exactly at the attempts named by
     * RunRequest::schedule (fault injection; Functional fidelity
     * only).  See sim/outage_schedule.hh and docs/FAULT_INJECTION.md.
     */
    Scheduled,
};

/** Declarative description of one simulation run. */
struct RunRequest
{
    Fidelity fidelity = Fidelity::Functional;
    PowerMode power = PowerMode::Continuous;
    /** Harvesting environment; only read under Harvested. */
    HarvestConfig harvest{};
    /**
     * Outage script; required for Scheduled power, ignored
     * otherwise.  An explicit observer (common/types.hh): create it
     * with observe(schedule), and keep the schedule alive until the
     * run's result exists (for submit(), until poll()/wait()
     * returns it).
     */
    ObserverPtr<const OutageSchedule> schedule;
    /** Attempt guard for Scheduled runs (0 = unlimited): a run that
     *  has not halted after this many attempts stops early. */
    std::uint64_t maxAttempts = 0;
    /**
     * Trace to simulate; required for Trace fidelity, ignored for
     * Functional (which runs the loaded program).  An explicit
     * observer with the same lifetime contract as `schedule`.
     */
    ObserverPtr<const Trace> trace;
    /**
     * Baseline system/scheme selector (baseline/selector.hh):
     * "mouse" (or empty) runs the MOUSE accelerator; "mcu:<scheme>"
     * replays the same workload on the instruction-trace MCU
     * baseline under the named EhScheme (bec, odab, clank, oracle).
     * "sonic" is a sweep-level scheme only — a RunRequest carries no
     * benchmark identity to look its calibration up by — and is
     * rejected here with kBaselineSchemeUnknown, as are Scheduled
     * runs of non-mouse systems (MCU fault injection goes through
     * inject/mcu_campaign.hh).  See docs/BASELINES.md.
     */
    std::string baseline = "mouse";
    /** Free-form tag echoed into the result's metadata. */
    std::string label;
    /**
     * Telemetry channels to record (all off by default).  When any
     * are enabled, the result carries the filled StatRegistry /
     * TraceSink; see docs/OBSERVABILITY.md.
     */
    obs::TraceConfig telemetry{};
};

/**
 * Typed rejection of a malformed RunRequest.  execute() validates
 * the request up front and carries one of these in the RunResult
 * instead of dying mid-run, so callers (the CLI, sweep drivers) can
 * report a usage error and exit cleanly.
 */
enum class RunError
{
    kNone = 0,
    /** Trace fidelity but no req.trace observer set. */
    kTraceMissing,
    /** Scheduled power but no req.schedule observer set. */
    kScheduleMissing,
    /** req.schedule set but power is not Scheduled. */
    kScheduleWithoutScheduledPower,
    /** req.maxAttempts set but power is not Scheduled. */
    kMaxAttemptsWithoutScheduledPower,
    /** Scheduled power with Trace fidelity (outages land at
     *  bit-exact micro-steps, which only Functional has). */
    kScheduledTraceFidelity,
    /** Harvested power with a SourceSpec that valid() rejects
     *  (non-positive constant power, empty or powerless trace,
     *  unknown corpus name, malformed square wave). */
    kHarvestSourceInvalid,
    /** Harvested power naming a platform preset that is not in
     *  harvest/platform.hh's catalog. */
    kHarvestPlatformUnknown,
    /** req.baseline names no system/scheme this request can execute:
     *  an unparseable selector, an unknown MCU scheme, "sonic" (which
     *  only sweeps can calibrate), or a non-mouse system under
     *  Scheduled power. */
    kBaselineSchemeUnknown,
};

/** Stable machine-readable name of a RunError ("trace_missing"). */
const char *runErrorName(RunError e);

/** Human-oriented one-line description with the fix spelled out. */
const char *runErrorMessage(RunError e);

/** Check @p req for the invalid combinations above; kNone if OK. */
RunError validateRunRequest(const RunRequest &req);

/**
 * Step-by-step RunRequest construction that cannot produce a
 * half-initialized request.
 *
 * Every mode is set by one call that provides everything the mode
 * needs — trace() installs the trace *and* flips the fidelity,
 * scheduled() installs the schedule, the power mode and the attempt
 * guard together — and switching modes clears the fields the new
 * mode does not read.  build() therefore always returns a request
 * that passes validateRunRequest(); serve-path code constructs its
 * requests exclusively through this builder.
 */
class RunRequestBuilder
{
  public:
    /** Functional fidelity (the default); drops any trace. */
    RunRequestBuilder &functional();

    /** Trace fidelity over @p t (borrowed; see ObserverPtr). */
    RunRequestBuilder &trace(const Trace &t);

    /** Continuous power (the default); drops schedule/attempts. */
    RunRequestBuilder &continuous();

    /** Harvested power under @p h; drops schedule/attempts. */
    RunRequestBuilder &harvested(const HarvestConfig &h);

    /** Harvested power from @p s (keeping the rest of the current
     *  harvest config); drops schedule/attempts like harvested(). */
    RunRequestBuilder &tracedSource(const SourceSpec &s);

    /** Harvested power on the named platform preset (keeping the
     *  rest of the current harvest config); drops schedule/attempts
     *  like harvested().  The name is checked by build(). */
    RunRequestBuilder &platform(std::string name);

    /**
     * Scripted outages from @p s (borrowed) with an optional attempt
     * guard; implies Functional fidelity requirements checked by
     * build().
     */
    RunRequestBuilder &scheduled(const OutageSchedule &s,
                                 std::uint64_t max_attempts = 0);

    /** Baseline selector ("mouse", "mcu:<scheme>"); build() asserts
     *  it names something executable, so unvalidated user input goes
     *  through validateRunRequest() on a plain request instead. */
    RunRequestBuilder &baselineScheme(std::string selector);

    RunRequestBuilder &label(std::string l);
    RunRequestBuilder &telemetry(const obs::TraceConfig &cfg);

    /** The finished request; guaranteed validateRunRequest-clean. */
    RunRequest build() const;

  private:
    RunRequest req_;
};

/** Identity of the sweep-grid point a result belongs to. */
struct PointMeta
{
    /** Position in the grid's canonical order (0 for one-off runs). */
    std::size_t index = 0;
    std::string tech;
    std::string benchmark;
    /** Executing system ("mouse", "mcu", "sonic"); schema v6. */
    std::string system = "mouse";
    /** Backup scheme within the system ("bec", "odab", "clank",
     *  "oracle"); empty for mouse and sonic. */
    std::string scheme;
    /** Headline harvester power (constant power, or the mean over
     *  one period of a trace source); 0 means continuous power. */
    Watts power = 0.0;
    /** Source provenance: "constant", a trace/corpus name, or
     *  "square"; empty for continuous runs. */
    std::string source;
    /** Platform preset the run used; empty = tech defaults. */
    std::string platform;
    /** Outage-schedule seed the run actually used. */
    std::uint64_t seed = 0;
    unsigned checkpointPeriod = 1;
    /** Gate noise margin of the library the run used. */
    double margin = 0.0;
    std::string label;
};

/**
 * Queue/batch provenance of a run that went through the asynchronous
 * path — Accelerator::submit() or the src/serve batching layer.
 * Absent (present == false, no JSON emitted) for plain execute()
 * calls, so schema-3 consumers that never submit see unchanged
 * documents.
 */
struct ServeMeta
{
    /** True once the async path filled this block. */
    bool present = false;
    /** Handle / service-assigned id of the request. */
    std::uint64_t requestId = 0;
    /** Batch the request was packed into (0-based, per service). */
    std::uint64_t batchId = 0;
    /** Requests packed into the same word-parallel pass. */
    unsigned batchSize = 1;
    /** Column slot the request occupied within the pass. */
    unsigned slot = 0;
    /** Requests already queued when this one was admitted. */
    unsigned queueDepth = 0;
    /** Host seconds between admission and the start of its run. */
    double queueSeconds = 0.0;
};

/** Outcome of one run: simulation stats plus provenance. */
struct RunResult
{
    RunStats stats;
    /** kNone on success; otherwise the request was rejected before
     *  simulating and stats are all-zero. */
    RunError error = RunError::kNone;
    /** Host wall-clock time spent simulating, in seconds. */
    double wallSeconds = 0.0;
    PointMeta meta;
    /** Batch/queue provenance; only filled by the async path. */
    ServeMeta serve;

    bool ok() const { return error == RunError::kNone; }
    /** Hierarchical stats tree; null unless telemetry.stats. */
    std::shared_ptr<obs::StatRegistry> statsTree;
    /** Event trace / waveform; null unless telemetry asked. */
    std::shared_ptr<obs::TraceSink> traceSink;

    /** Single-line JSON object (stats + meta + wall clock; the
     *  stat_registry tree rides along when collected).  The leading
     *  "schema" field versions the document — see
     *  docs/EXPERIMENTS_API.md for the field order and meaning. */
    std::string toJson() const;
};

/** Version of every JSON document this API emits (RunResult,
 *  SweepResult, the injection reports of src/inject, and the serve
 *  reports of src/serve).  The canonical definition — and the bump
 *  history — lives in common/schema_versions.hh alongside every
 *  other document version; this alias keeps the existing spelling
 *  working for the emitters. */
using schema::kResultSchemaVersion;

/** JSON object for a RunStats (used by RunResult::toJson). */
std::string toJson(const RunStats &stats);

/** Minimal JSON string escaping (quotes, backslashes, control). */
std::string jsonEscape(const std::string &s);

} // namespace mouse

#endif // MOUSE_CORE_RUN_API_HH
