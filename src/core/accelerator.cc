#include "accelerator.hh"

namespace mouse
{

Accelerator::Accelerator(const MouseConfig &cfg) : cfg_(cfg)
{
    lib_ = std::make_unique<GateLibrary>(makeDeviceConfig(cfg.tech),
                                         cfg.gateMargin);
    energy_ = std::make_unique<EnergyModel>(*lib_, cfg.peripheral);
    grid_ = std::make_unique<TileGrid>(cfg.array, *lib_);
    imem_ = std::make_unique<InstructionMemory>(cfg.array);
    controller_ =
        std::make_unique<Controller>(*grid_, *imem_, *energy_);
}

void
Accelerator::loadProgram(const Program &prog)
{
    imem_->load(prog.encode());
    controller_->reset();
}

RunStats
Accelerator::runContinuous()
{
    return runContinuousFunctional(*controller_);
}

RunStats
Accelerator::runHarvested(const HarvestConfig &harvest)
{
    return runHarvestedFunctional(*controller_, harvest);
}

RunStats
Accelerator::simulateContinuous(const Trace &trace) const
{
    return runContinuousTrace(trace, *energy_);
}

RunStats
Accelerator::simulateHarvested(const Trace &trace,
                               const HarvestConfig &harvest) const
{
    return runHarvestedTrace(trace, *energy_, harvest);
}

} // namespace mouse
