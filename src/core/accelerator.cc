#include "accelerator.hh"

#include <chrono>

#include "baseline/mcu/mcu_model.hh"
#include "baseline/selector.hh"
#include "common/logging.hh"
#include "obs/metrics_hub.hh"

namespace mouse
{

Accelerator::Accelerator(const MouseConfig &cfg) : cfg_(cfg)
{
    lib_ = std::make_unique<GateLibrary>(makeDeviceConfig(cfg.tech),
                                         cfg.gateMargin);
    energy_ = std::make_unique<EnergyModel>(*lib_, cfg.peripheral);
    grid_ = std::make_unique<TileGrid>(cfg.array, *lib_);
    imem_ = std::make_unique<InstructionMemory>(cfg.array);
    controller_ =
        std::make_unique<Controller>(*grid_, *imem_, *energy_);
}

void
Accelerator::loadProgram(const Program &prog)
{
    program_ = prog;
    imem_->load(prog.encode());
    controller_->reset();
}

RunResult
Accelerator::execute(const RunRequest &req)
{
    const auto t0 = std::chrono::steady_clock::now();
    RunResult res;
    const bool harvested = req.power == PowerMode::Harvested;
    const bool scheduled = req.power == PowerMode::Scheduled;
    res.error = validateRunRequest(req);
    if (res.error != RunError::kNone) {
        // Rejected before simulating: all-zero stats, but metadata
        // filled so the caller can still report provenance.
        res.meta.tech = lib_->config().name();
        res.meta.margin = cfg_.gateMargin;
        res.meta.label = req.label;
        return res;
    }
    BaselineSelector sel;
    parseBaselineSelector(req.baseline, &sel);
    if (sel.system == BaselineSystem::kMcu) {
        // The MCU baseline replays the workload as an op stream: the
        // request's trace under Trace fidelity, the retained loaded
        // program otherwise.  Same harvesting environment, same
        // RunStats taxonomy — only the machine differs.
        const std::unique_ptr<mcu::EhScheme> scheme =
            mcu::makeEhScheme(sel.scheme);
        mcu::McuProgram mp;
        if (req.fidelity == Fidelity::Trace) {
            mp = mcu::mcuProgramFromTrace(
                *req.trace, req.harvest.checkpointPeriod > 1
                                ? req.harvest.checkpointPeriod
                                : 0);
        } else {
            mouse_assert(program_.has_value(),
                         "MCU baseline needs a loaded program "
                         "(loadProgram) under Functional fidelity");
            mp = mcu::mcuProgramFromProgram(
                *program_, req.harvest.checkpointPeriod > 1
                               ? req.harvest.checkpointPeriod
                               : 0);
        }
        res.stats = harvested
                        ? mcu::mcuRunHarvested(mp, *scheme,
                                               req.harvest)
                        : mcu::mcuRunContinuous(mp, *scheme);
        res.wallSeconds =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - t0)
                .count();
        res.meta.tech = lib_->config().name();
        res.meta.margin = cfg_.gateMargin;
        res.meta.label = req.label;
        res.meta.system = baselineSystemName(sel.system);
        res.meta.scheme = sel.scheme;
        if (harvested) {
            res.meta.power = req.harvest.source.meanPower();
            res.meta.source = req.harvest.source.name();
            res.meta.platform = req.harvest.platform;
            res.meta.seed = req.harvest.seed;
            res.meta.checkpointPeriod =
                req.harvest.checkpointPeriod;
        }
        return res;
    }
    obs::Telemetry telem = obs::Telemetry::make(req.telemetry);
    obs::Telemetry *tp = telem.enabled() ? &telem : nullptr;
    if (telem.stats && req.fidelity == Fidelity::Functional) {
        controller_->attachStats(telem.stats.get());
        grid_->attachStats(telem.stats.get());
    }
    switch (req.fidelity) {
      case Fidelity::Functional:
        if (scheduled) {
            res.stats = runScheduledFunctional(*controller_,
                                               *req.schedule,
                                               req.maxAttempts, tp);
        } else if (harvested) {
            res.stats = runHarvestedFunctional(*controller_,
                                               req.harvest, tp);
        } else {
            res.stats = runContinuousFunctional(*controller_, tp);
        }
        break;
      case Fidelity::Trace:
        res.stats = harvested
                        ? runHarvestedTrace(*req.trace, *energy_,
                                            req.harvest, tp)
                        : runContinuousTrace(*req.trace, *energy_,
                                             tp);
        break;
    }
    if (telem.stats && req.fidelity == Fidelity::Functional) {
        // The registry is owned by the result; drop the raw
        // attachments before it can outlive them.
        controller_->attachStats(nullptr);
        grid_->attachStats(nullptr);
    }
    res.statsTree = telem.stats;
    res.traceSink = telem.sink;
    res.wallSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t0)
            .count();
    res.meta.tech = lib_->config().name();
    res.meta.margin = cfg_.gateMargin;
    res.meta.label = req.label;
    if (harvested) {
        res.meta.power = req.harvest.source.meanPower();
        res.meta.source = req.harvest.source.name();
        res.meta.platform = req.harvest.platform;
        res.meta.seed = req.harvest.seed;
        res.meta.checkpointPeriod = req.harvest.checkpointPeriod;
    }
    return res;
}

RequestHandle
Accelerator::submit(RunRequest req)
{
    PendingRun run;
    run.id = nextHandle_++;
    run.req = std::move(req);
    run.queueDepth = static_cast<unsigned>(pending_.size());
    run.submitted = std::chrono::steady_clock::now();
    pending_.push_back(std::move(run));
    if (metrics_ != nullptr) {
        metrics_->recordSubmit();
    }
    return RequestHandle{pending_.back().id};
}

void
Accelerator::runOnePending()
{
    PendingRun run = std::move(pending_.front());
    pending_.pop_front();
    const double queued =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - run.submitted)
            .count();
    RunResult res = execute(run.req);
    res.serve.present = true;
    res.serve.requestId = run.id;
    res.serve.queueDepth = run.queueDepth;
    res.serve.queueSeconds = queued;
    if (metrics_ != nullptr) {
        // An async run is a batch of one; rejected requests still
        // complete (lowering the queue gauge) but execute nothing.
        if (res.ok()) {
            metrics_->recordBatch(1, 1, res.stats.totalTime(),
                                  res.stats.totalEnergy(),
                                  res.stats.chargingTime,
                                  res.stats.outages);
        }
        metrics_->recordDone(queued + res.wallSeconds,
                             res.stats.totalTime());
    }
    completed_.emplace(run.id, std::move(res));
}

std::optional<RunResult>
Accelerator::poll(RequestHandle h)
{
    if (auto it = completed_.find(h.id); it != completed_.end()) {
        RunResult res = std::move(it->second);
        completed_.erase(it);
        return res;
    }
    if (pending_.empty()) {
        return std::nullopt;
    }
    runOnePending();
    if (auto it = completed_.find(h.id); it != completed_.end()) {
        RunResult res = std::move(it->second);
        completed_.erase(it);
        return res;
    }
    return std::nullopt;
}

RunResult
Accelerator::wait(RequestHandle h)
{
    for (;;) {
        if (auto res = poll(h)) {
            return std::move(*res);
        }
        mouse_assert(!pending_.empty() ||
                         completed_.count(h.id) != 0,
                     "wait() on an unknown or already-redeemed "
                     "request handle");
    }
}

} // namespace mouse
