/**
 * @file
 * Public facade of the MOUSE library.
 *
 * An Accelerator bundles one device configuration (Modern STT /
 * Projected STT / Projected SHE) with a tile grid, instruction
 * memory, controller, and energy model.  The execution modes the
 * paper evaluates — {functional, trace} x {continuous, harvested},
 * plus scripted-outage fault injection — are selected declaratively
 * by a RunRequest given to execute(), the single entry point.
 *
 * A typical downstream user writes a kernel with KernelBuilder (or
 * maps an SVM/BNN with ml/mapping.hh), loads it, and reads stats and
 * tile contents back.  See examples/quickstart.cpp and
 * docs/EXPERIMENTS_API.md.
 */

#ifndef MOUSE_CORE_ACCELERATOR_HH
#define MOUSE_CORE_ACCELERATOR_HH

#include <memory>

#include "compile/builder.hh"
#include "controller/controller.hh"
#include "core/run_api.hh"
#include "sim/simulator.hh"

namespace mouse
{

/** Top-level configuration of a MOUSE accelerator instance. */
struct MouseConfig
{
    TechConfig tech = TechConfig::ModernStt;
    ArrayConfig array{};
    PeripheralParams peripheral{};
    /** Gate noise margin (Section V robustness knob). */
    double gateMargin = kDefaultGateMargin;
};

/** One configured MOUSE accelerator. */
class Accelerator
{
  public:
    explicit Accelerator(const MouseConfig &cfg);

    const MouseConfig &config() const { return cfg_; }
    const DeviceConfig &device() const { return lib_->config(); }
    const GateLibrary &gateLibrary() const { return *lib_; }
    const EnergyModel &energyModel() const { return *energy_; }

    TileGrid &grid() { return *grid_; }
    const TileGrid &grid() const { return *grid_; }
    Controller &controller() { return *controller_; }
    const Controller &controller() const { return *controller_; }

    /** Write a program into the instruction tiles and reset the PC
     *  (the pre-deployment step of Section IV-B). */
    void loadProgram(const Program &prog);

    /**
     * Run one simulation described by @p req.
     *
     * Functional fidelity executes the loaded program on the
     * bit-exact machine; Trace fidelity requires req.trace.  The
     * result carries the RunStats plus wall-clock and metadata.
     *
     * Malformed requests (validateRunRequest) are rejected up
     * front: the result carries the RunError and all-zero stats,
     * and nothing is simulated.
     */
    RunResult execute(const RunRequest &req);

  private:
    MouseConfig cfg_;
    std::unique_ptr<GateLibrary> lib_;
    std::unique_ptr<EnergyModel> energy_;
    std::unique_ptr<TileGrid> grid_;
    std::unique_ptr<InstructionMemory> imem_;
    std::unique_ptr<Controller> controller_;
};

} // namespace mouse

#endif // MOUSE_CORE_ACCELERATOR_HH
