/**
 * @file
 * Public facade of the MOUSE library.
 *
 * An Accelerator bundles one device configuration (Modern STT /
 * Projected STT / Projected SHE) with a tile grid, instruction
 * memory, controller, and energy model.  The execution modes the
 * paper evaluates — {functional, trace} x {continuous, harvested},
 * plus scripted-outage fault injection — are selected declaratively
 * by a RunRequest given to execute(), the single entry point.
 *
 * A typical downstream user writes a kernel with KernelBuilder (or
 * maps an SVM/BNN with ml/mapping.hh), loads it, and reads stats and
 * tile contents back.  See examples/quickstart.cpp and
 * docs/EXPERIMENTS_API.md.
 */

#ifndef MOUSE_CORE_ACCELERATOR_HH
#define MOUSE_CORE_ACCELERATOR_HH

#include <chrono>
#include <deque>
#include <map>
#include <memory>
#include <optional>

#include "compile/builder.hh"
#include "controller/controller.hh"
#include "core/run_api.hh"
#include "sim/simulator.hh"

namespace mouse
{

namespace obs
{
class MetricsHub;
} // namespace obs

/**
 * Ticket identifying a request given to Accelerator::submit().
 * Redeem it with poll() (non-blocking) or wait() (runs the queue
 * until the request completes).
 */
struct RequestHandle
{
    std::uint64_t id = 0;
};

/** Top-level configuration of a MOUSE accelerator instance. */
struct MouseConfig
{
    TechConfig tech = TechConfig::ModernStt;
    ArrayConfig array{};
    PeripheralParams peripheral{};
    /** Gate noise margin (Section V robustness knob). */
    double gateMargin = kDefaultGateMargin;
};

/** One configured MOUSE accelerator. */
class Accelerator
{
  public:
    explicit Accelerator(const MouseConfig &cfg);

    const MouseConfig &config() const { return cfg_; }
    const DeviceConfig &device() const { return lib_->config(); }
    const GateLibrary &gateLibrary() const { return *lib_; }
    const EnergyModel &energyModel() const { return *energy_; }

    TileGrid &grid() { return *grid_; }
    const TileGrid &grid() const { return *grid_; }
    Controller &controller() { return *controller_; }
    const Controller &controller() const { return *controller_; }

    /** Write a program into the instruction tiles and reset the PC
     *  (the pre-deployment step of Section IV-B). */
    void loadProgram(const Program &prog);

    /**
     * Run one simulation described by @p req.
     *
     * Functional fidelity executes the loaded program on the
     * bit-exact machine; Trace fidelity requires req.trace.  The
     * result carries the RunStats plus wall-clock and metadata.
     *
     * Malformed requests (validateRunRequest) are rejected up
     * front: the result carries the RunError and all-zero stats,
     * and nothing is simulated.
     */
    RunResult execute(const RunRequest &req);

    // -- Asynchronous request API (result schema v4) ----------------
    //
    // submit() admits a request into a FIFO queue and returns a
    // ticket; the run happens later, on whichever thread redeems
    // tickets.  The Accelerator stays single-threaded — poll() and
    // wait() *drive* the queue cooperatively (each poll() advances
    // it by at most one run; wait() advances it until the named
    // request is done), so async semantics cost no locks and stay
    // deterministic: requests run exactly in submission order.
    // For real concurrency across a pool of accelerators, use
    // serve::InferenceService (docs/SERVING.md).

    /**
     * Queue @p req for execution; returns immediately.
     *
     * The request is copied, but its trace/schedule observers are
     * borrowed: their referents must stay alive until the result
     * has been returned by poll()/wait().  Malformed requests are
     * accepted here and rejected with their typed RunError when
     * they run, exactly like execute().
     */
    RequestHandle submit(RunRequest req);

    /**
     * Advance the queue by at most one run, then return @p h's
     * result if it is now complete (at most once; the result moves
     * out).  nullopt while the request is still queued.
     */
    std::optional<RunResult> poll(RequestHandle h);

    /**
     * Run queued requests (in order) until @p h completes; returns
     * its result.  @p h must name an outstanding submit() ticket.
     */
    RunResult wait(RequestHandle h);

    /** Requests admitted but not yet run. */
    std::size_t pendingRequests() const { return pending_.size(); }

    /**
     * Attach a live-metrics hub (docs/OBSERVABILITY.md): submit()
     * and the queue driver publish admission/completion/latency into
     * it.  Observational only — results, stats and traces are
     * byte-identical with or without a hub.  Null detaches.  The hub
     * must outlive the accelerator (or be detached first).
     */
    void setMetrics(obs::MetricsHub *hub) { metrics_ = hub; }

  private:
    /** One admitted-but-not-run request. */
    struct PendingRun
    {
        std::uint64_t id = 0;
        RunRequest req;
        /** Queue length at admission (serve metadata). */
        unsigned queueDepth = 0;
        std::chrono::steady_clock::time_point submitted;
    };

    /** Run the front of the queue and file its result. */
    void runOnePending();

    MouseConfig cfg_;
    /** Retained copy of the last loadProgram() argument: the MCU
     *  baseline replays it as an op stream (Functional fidelity has
     *  no trace to derive one from). */
    std::optional<Program> program_;
    std::unique_ptr<GateLibrary> lib_;
    std::unique_ptr<EnergyModel> energy_;
    std::unique_ptr<TileGrid> grid_;
    std::unique_ptr<InstructionMemory> imem_;
    std::unique_ptr<Controller> controller_;
    std::deque<PendingRun> pending_;
    std::map<std::uint64_t, RunResult> completed_;
    std::uint64_t nextHandle_ = 1;
    obs::MetricsHub *metrics_ = nullptr;
};

} // namespace mouse

#endif // MOUSE_CORE_ACCELERATOR_HH
