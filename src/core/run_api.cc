#include "run_api.hh"

#include <cstdio>

#include "baseline/selector.hh"
#include "common/logging.hh"

namespace mouse
{

namespace
{

/** Shortest-round-trip double formatting for machine consumers. */
std::string
num(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

std::string
num(std::uint64_t v)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(v));
    return buf;
}

} // namespace

const char *
runErrorName(RunError e)
{
    switch (e) {
      case RunError::kNone:
        return "none";
      case RunError::kTraceMissing:
        return "trace_missing";
      case RunError::kScheduleMissing:
        return "schedule_missing";
      case RunError::kScheduleWithoutScheduledPower:
        return "schedule_without_scheduled_power";
      case RunError::kMaxAttemptsWithoutScheduledPower:
        return "max_attempts_without_scheduled_power";
      case RunError::kScheduledTraceFidelity:
        return "scheduled_trace_fidelity";
      case RunError::kHarvestSourceInvalid:
        return "harvest_source_invalid";
      case RunError::kHarvestPlatformUnknown:
        return "harvest_platform_unknown";
      case RunError::kBaselineSchemeUnknown:
        return "baseline_scheme_unknown";
    }
    return "unknown";
}

const char *
runErrorMessage(RunError e)
{
    switch (e) {
      case RunError::kNone:
        return "ok";
      case RunError::kTraceMissing:
        return "Trace fidelity needs a trace: set req.trace = "
               "observe(trace)";
      case RunError::kScheduleMissing:
        return "Scheduled power needs an outage script: set "
               "req.schedule = observe(schedule)";
      case RunError::kScheduleWithoutScheduledPower:
        return "req.schedule is only read under Scheduled power: "
               "set req.power = PowerMode::Scheduled or drop the "
               "schedule";
      case RunError::kMaxAttemptsWithoutScheduledPower:
        return "req.maxAttempts is only read under Scheduled power: "
               "set req.power = PowerMode::Scheduled or leave it 0";
      case RunError::kScheduledTraceFidelity:
        return "Scheduled power requires Functional fidelity "
               "(outages land at bit-exact micro-steps)";
      case RunError::kHarvestSourceInvalid:
        return "req.harvest.source does not describe a usable "
               "environment; ask SourceSpec::valid(&why) for the "
               "specific reason";
      case RunError::kHarvestPlatformUnknown:
        return "req.harvest.platform names no preset; see "
               "platformNames() (harvest/platform.hh) for the "
               "catalog";
      case RunError::kBaselineSchemeUnknown:
        return "req.baseline names no executable system/scheme for "
               "this request: use \"mouse\" or \"mcu:<scheme>\" "
               "(baselineSelectorNames(), baseline/selector.hh); "
               "\"sonic\" and Scheduled-power MCU runs live at the "
               "sweep/campaign layer";
    }
    return "unknown run error";
}

RunError
validateRunRequest(const RunRequest &req)
{
    const bool scheduled = req.power == PowerMode::Scheduled;
    if (req.fidelity == Fidelity::Trace && !req.trace) {
        return RunError::kTraceMissing;
    }
    if (scheduled && req.fidelity != Fidelity::Functional) {
        return RunError::kScheduledTraceFidelity;
    }
    if (scheduled && !req.schedule) {
        return RunError::kScheduleMissing;
    }
    if (!scheduled && req.schedule) {
        return RunError::kScheduleWithoutScheduledPower;
    }
    if (!scheduled && req.maxAttempts != 0) {
        return RunError::kMaxAttemptsWithoutScheduledPower;
    }
    if (req.power == PowerMode::Harvested) {
        if (!req.harvest.source.valid()) {
            return RunError::kHarvestSourceInvalid;
        }
        if (!req.harvest.platform.empty() &&
            platformByName(req.harvest.platform) == nullptr) {
            return RunError::kHarvestPlatformUnknown;
        }
    }
    BaselineSelector sel;
    if (!parseBaselineSelector(req.baseline, &sel)) {
        return RunError::kBaselineSchemeUnknown;
    }
    if (sel.system == BaselineSystem::kSonic) {
        // A RunRequest has no benchmark identity to look the SONIC
        // calibration up by; sweeps dispatch "sonic" themselves.
        return RunError::kBaselineSchemeUnknown;
    }
    if (sel.system != BaselineSystem::kMouse && scheduled) {
        // Scripted micro-step cuts are a bit-exact-machine concept;
        // MCU fault injection goes through inject/mcu_campaign.hh.
        return RunError::kBaselineSchemeUnknown;
    }
    return RunError::kNone;
}

RunRequestBuilder &
RunRequestBuilder::functional()
{
    req_.fidelity = Fidelity::Functional;
    req_.trace = nullptr;
    return *this;
}

RunRequestBuilder &
RunRequestBuilder::trace(const Trace &t)
{
    req_.fidelity = Fidelity::Trace;
    req_.trace = observe(t);
    return *this;
}

RunRequestBuilder &
RunRequestBuilder::continuous()
{
    req_.power = PowerMode::Continuous;
    req_.schedule = nullptr;
    req_.maxAttempts = 0;
    return *this;
}

RunRequestBuilder &
RunRequestBuilder::harvested(const HarvestConfig &h)
{
    req_.power = PowerMode::Harvested;
    req_.harvest = h;
    req_.schedule = nullptr;
    req_.maxAttempts = 0;
    return *this;
}

RunRequestBuilder &
RunRequestBuilder::tracedSource(const SourceSpec &s)
{
    req_.power = PowerMode::Harvested;
    req_.harvest.source = s;
    req_.schedule = nullptr;
    req_.maxAttempts = 0;
    return *this;
}

RunRequestBuilder &
RunRequestBuilder::platform(std::string name)
{
    req_.power = PowerMode::Harvested;
    req_.harvest.platform = std::move(name);
    req_.schedule = nullptr;
    req_.maxAttempts = 0;
    return *this;
}

RunRequestBuilder &
RunRequestBuilder::scheduled(const OutageSchedule &s,
                             std::uint64_t max_attempts)
{
    req_.power = PowerMode::Scheduled;
    req_.fidelity = Fidelity::Functional;
    req_.trace = nullptr;
    req_.schedule = observe(s);
    req_.maxAttempts = max_attempts;
    return *this;
}

RunRequestBuilder &
RunRequestBuilder::baselineScheme(std::string selector)
{
    req_.baseline = std::move(selector);
    return *this;
}

RunRequestBuilder &
RunRequestBuilder::label(std::string l)
{
    req_.label = std::move(l);
    return *this;
}

RunRequestBuilder &
RunRequestBuilder::telemetry(const obs::TraceConfig &cfg)
{
    req_.telemetry = cfg;
    return *this;
}

RunRequest
RunRequestBuilder::build() const
{
    // The setters make invalid combinations unrepresentable; this
    // assert is the safety net that keeps it that way.
    mouse_assert(validateRunRequest(req_) == RunError::kNone,
                 "RunRequestBuilder produced an invalid request");
    return req_;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
toJson(const RunStats &stats)
{
    std::string j = "{";
    j += "\"instructions_committed\":" +
         num(stats.instructionsCommitted);
    j += ",\"instructions_dead\":" + num(stats.instructionsDead);
    j += ",\"outages\":" + num(stats.outages);
    j += ",\"active_time_s\":" + num(stats.activeTime);
    j += ",\"dead_time_s\":" + num(stats.deadTime);
    j += ",\"restore_time_s\":" + num(stats.restoreTime);
    j += ",\"charging_time_s\":" + num(stats.chargingTime);
    j += ",\"total_time_s\":" + num(stats.totalTime());
    j += ",\"compute_energy_j\":" + num(stats.computeEnergy);
    j += ",\"backup_energy_j\":" + num(stats.backupEnergy);
    j += ",\"dead_energy_j\":" + num(stats.deadEnergy);
    j += ",\"restore_energy_j\":" + num(stats.restoreEnergy);
    j += ",\"idle_energy_j\":" + num(stats.idleEnergy);
    j += ",\"total_energy_j\":" + num(stats.totalEnergy());
    j += "}";
    return j;
}

std::string
RunResult::toJson() const
{
    std::string j = "{";
    j += "\"schema\":" + std::to_string(kResultSchemaVersion) + ",";
    if (error != RunError::kNone) {
        j += "\"error\":\"";
        j += runErrorName(error);
        j += "\",";
    }
    j += "\"point\":{";
    j += "\"index\":" + num(static_cast<std::uint64_t>(meta.index));
    j += ",\"tech\":\"" + jsonEscape(meta.tech) + "\"";
    j += ",\"benchmark\":\"" + jsonEscape(meta.benchmark) + "\"";
    j += ",\"system\":\"" + jsonEscape(meta.system) + "\"";
    j += ",\"scheme\":\"" + jsonEscape(meta.scheme) + "\"";
    j += ",\"power_w\":" + num(meta.power);
    j += ",\"source\":\"" + jsonEscape(meta.source) + "\"";
    j += ",\"platform\":\"" + jsonEscape(meta.platform) + "\"";
    j += ",\"seed\":" + num(meta.seed);
    j += ",\"checkpoint_period\":" +
         num(static_cast<std::uint64_t>(meta.checkpointPeriod));
    j += ",\"margin\":" + num(meta.margin);
    j += ",\"label\":\"" + jsonEscape(meta.label) + "\"";
    j += "},";
    j += "\"wall_seconds\":" + num(wallSeconds);
    if (serve.present) {
        j += ",\"serve\":{";
        j += "\"request_id\":" + num(serve.requestId);
        j += ",\"batch_id\":" + num(serve.batchId);
        j += ",\"batch_size\":" +
             num(static_cast<std::uint64_t>(serve.batchSize));
        j += ",\"slot\":" +
             num(static_cast<std::uint64_t>(serve.slot));
        j += ",\"queue_depth\":" +
             num(static_cast<std::uint64_t>(serve.queueDepth));
        j += ",\"queue_seconds\":" + num(serve.queueSeconds);
        j += "}";
    }
    j += ",\"stats\":" + mouse::toJson(stats);
    if (statsTree && !statsTree->empty()) {
        j += ",\"stat_registry\":" + statsTree->toJson();
    }
    j += "}";
    return j;
}

} // namespace mouse
