/**
 * @file
 * System integration (paper Section IV-E): the sensor -> MOUSE ->
 * transmitter inference pipeline, intermittent-safe end to end.
 *
 * The sensor stages a sample into a non-volatile buffer (assigned a
 * tile address and treated as a tile) and raises a non-volatile
 * valid bit.  The memory controller polls the valid bit, transfers
 * the sample into the data tiles row by row, runs inference, then
 * streams the result rows to the transmitter and clears the valid
 * bit so the sensor can stage the next sample.
 *
 * Every phase survives power loss:
 *  - staging interrupted -> valid stays 0, the pipeline keeps
 *    waiting (the paper's sensor-corruption handling);
 *  - transfer interrupted -> the dedicated NV register holds the
 *    phase and row progress; row copies are idempotent;
 *  - compute interrupted -> the controller's own PC protocol;
 *  - transmit interrupted -> result rows are indexed, so re-sending
 *    a row overwrites the same slot.
 */

#ifndef MOUSE_CORE_PIPELINE_HH
#define MOUSE_CORE_PIPELINE_HH

#include <vector>

#include "core/accelerator.hh"

namespace mouse
{

/** Non-volatile sensor staging buffer with a valid bit. */
class SensorBuffer
{
  public:
    explicit SensorBuffer(unsigned row_bits) : rowBits_(row_bits) {}

    unsigned rowBits() const { return rowBits_; }

    /** Begin staging a sample (sensor-side).  Clears the valid bit
     *  first — a power cut mid-staging leaves the buffer invalid. */
    void beginStage();

    /** Append one staged row. */
    void stageRow(const std::vector<Bit> &row);

    /** Mark the sample complete (the last sensor-side write). */
    void commitStage();

    bool valid() const { return valid_; }

    /** MOUSE-side: consume the valid bit after a full transfer. */
    void consume();

    std::size_t numRows() const { return rows_.size(); }
    const std::vector<Bit> &row(std::size_t i) const;

    /** Power loss while staging leaves valid = 0; committed samples
     *  persist (the buffer is NV). */
    void powerLoss();

  private:
    unsigned rowBits_;
    std::vector<std::vector<Bit>> rows_;
    bool valid_ = false;
    bool staging_ = false;
};

/** Mock transmitter: result rows land in indexed slots. */
class Transmitter
{
  public:
    /** Deliver row @p index (idempotent: re-sends overwrite). */
    void send(std::size_t index, const std::vector<Bit> &row);

    std::size_t rowsReceived() const { return received_.size(); }
    const std::vector<Bit> &row(std::size_t i) const;

  private:
    std::vector<std::vector<Bit>> received_;
};

/** Pipeline phase, checkpointed in an NV register. */
enum class PipelinePhase : std::uint8_t
{
    kWaitInput = 0,
    kTransferIn,
    kCompute,
    kTransferOut,
    kDone,
};

/** Data placement of one inference. */
struct PipelineLayout
{
    TileAddr dataTile = 0;
    /** First row receiving sensor data (consecutive rows). */
    RowAddr inputBaseRow = 0;
    /** First row of the result, and how many rows to transmit. */
    RowAddr outputBaseRow = 0;
    unsigned outputRows = 0;
};

/** Intermittent-safe sensor -> compute -> transmit pipeline. */
class InferencePipeline
{
  public:
    InferencePipeline(Accelerator &acc, SensorBuffer &sensor,
                      Transmitter &tx, const PipelineLayout &layout);

    PipelinePhase phase() const { return state_.read().phase; }

    /**
     * Perform one atomic unit of work: poll the valid bit, copy one
     * row, execute one instruction, or transmit one row.
     *
     * @return Energy consumed by this tick.
     */
    Joules tick();

    /** Power outage: volatile state lost; NV state persists. */
    void powerLoss();

    /** Restart: controller restore + phase register re-read. */
    RestartResult restart();

    bool done() const { return phase() == PipelinePhase::kDone; }

    /** Rearm for the next sample after kDone. */
    void rearm();

  private:
    struct State
    {
        PipelinePhase phase = PipelinePhase::kWaitInput;
        /** Row progress within a transfer phase. */
        std::uint16_t step = 0;
    };

    /** Commit a state update through the duplex register. */
    void commitState(State next);

    Accelerator &acc_;
    SensorBuffer &sensor_;
    Transmitter &tx_;
    PipelineLayout layout_;
    DuplexNvRegister<State> state_;
};

} // namespace mouse

#endif // MOUSE_CORE_PIPELINE_HH
