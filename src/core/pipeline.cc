#include "pipeline.hh"

#include "common/logging.hh"

namespace mouse
{

void
SensorBuffer::beginStage()
{
    valid_ = false;
    staging_ = true;
    rows_.clear();
}

void
SensorBuffer::stageRow(const std::vector<Bit> &row)
{
    mouse_assert(staging_, "stageRow outside a staging window");
    mouse_assert(row.size() == rowBits_, "sensor row width mismatch");
    rows_.push_back(row);
}

void
SensorBuffer::commitStage()
{
    mouse_assert(staging_, "commit without staging");
    staging_ = false;
    // The valid bit is the last write, so a cut anywhere before this
    // line leaves the sample invisible.
    valid_ = true;
}

void
SensorBuffer::consume()
{
    valid_ = false;
}

const std::vector<Bit> &
SensorBuffer::row(std::size_t i) const
{
    mouse_assert(i < rows_.size(), "sensor row OOB");
    return rows_[i];
}

void
SensorBuffer::powerLoss()
{
    if (staging_) {
        // The sample was mid-write: its rows are garbage and the
        // valid bit was never raised.
        staging_ = false;
        rows_.clear();
        valid_ = false;
    }
}

void
Transmitter::send(std::size_t index, const std::vector<Bit> &row)
{
    if (index >= received_.size()) {
        received_.resize(index + 1);
    }
    received_[index] = row;
}

const std::vector<Bit> &
Transmitter::row(std::size_t i) const
{
    mouse_assert(i < received_.size(), "transmitter row OOB");
    return received_[i];
}

InferencePipeline::InferencePipeline(Accelerator &acc,
                                     SensorBuffer &sensor,
                                     Transmitter &tx,
                                     const PipelineLayout &layout)
    : acc_(acc), sensor_(sensor), tx_(tx), layout_(layout)
{
}

void
InferencePipeline::commitState(State next)
{
    state_.writeInvalid(next);
    state_.commit();
}

Joules
InferencePipeline::tick()
{
    const EnergyModel &energy = acc_.energyModel();
    const State s = state_.read();
    switch (s.phase) {
      case PipelinePhase::kWaitInput: {
        // Polling the NV valid bit costs one register-bit sense.
        const Joules e = energy.library().readOp().energy;
        if (sensor_.valid()) {
            commitState(State{PipelinePhase::kTransferIn, 0});
        }
        return e;
      }
      case PipelinePhase::kTransferIn: {
        // Copy sensor row `step` into the data tile.  The copy is
        // idempotent: re-running it after an outage rewrites the
        // same values.
        const Joules e =
            acc_.gateLibrary().writeOp().energy *
                acc_.config().array.tileCols +
            energy.peripheralEnergy(acc_.config().array.tileCols);
        Tile &tile = acc_.grid().tile(layout_.dataTile);
        const std::vector<Bit> &row = sensor_.row(s.step);
        const unsigned cols = std::min<std::size_t>(
            acc_.config().array.tileCols, row.size());
        for (unsigned c = 0; c < cols; ++c) {
            tile.setBit(
                static_cast<RowAddr>(layout_.inputBaseRow + s.step),
                static_cast<ColAddr>(c), row[c]);
        }
        State next = s;
        ++next.step;
        if (next.step >= sensor_.numRows()) {
            // Consuming the valid bit strictly after the last row
            // copy: a cut in between re-copies the last row, which
            // is harmless.  The controller PC is rewound *before*
            // the phase commit so a cut between the two re-runs
            // this (idempotent) tick.
            sensor_.consume();
            acc_.controller().reset();
            next = State{PipelinePhase::kCompute, 0};
        }
        commitState(next);
        return e;
      }
      case PipelinePhase::kCompute: {
        if (acc_.controller().halted()) {
            commitState(State{PipelinePhase::kTransferOut, 0});
            return 0.0;
        }
        const StepResult r = acc_.controller().step();
        return r.energy;
      }
      case PipelinePhase::kTransferOut: {
        const Joules e =
            acc_.gateLibrary().readOp().energy *
                acc_.config().array.tileCols +
            energy.peripheralEnergy(acc_.config().array.tileCols);
        Tile &tile = acc_.grid().tile(layout_.dataTile);
        std::vector<Bit> row(acc_.config().array.tileCols);
        for (unsigned c = 0; c < row.size(); ++c) {
            row[c] = tile.bit(
                static_cast<RowAddr>(layout_.outputBaseRow + s.step),
                static_cast<ColAddr>(c));
        }
        tx_.send(s.step, row);
        State next = s;
        ++next.step;
        if (next.step >= layout_.outputRows) {
            next = State{PipelinePhase::kDone, 0};
        }
        commitState(next);
        return e;
      }
      case PipelinePhase::kDone:
        return 0.0;
    }
    mouse_panic("bad pipeline phase");
}

void
InferencePipeline::powerLoss()
{
    acc_.controller().powerLoss();
    sensor_.powerLoss();
}

RestartResult
InferencePipeline::restart()
{
    // The phase register is NV; only the controller's peripheral
    // state needs rebuilding (and only matters in kCompute).
    return acc_.controller().restart();
}

void
InferencePipeline::rearm()
{
    mouse_assert(done(), "rearm before completion");
    commitState(State{PipelinePhase::kWaitInput, 0});
}

} // namespace mouse
