#include "network.hh"

#include "common/logging.hh"

namespace mouse
{

Ohms
parallelResistance(const std::vector<Ohms> &branches)
{
    mouse_assert(!branches.empty(), "no branches");
    double conductance = 0.0;
    for (Ohms r : branches) {
        mouse_assert(r > 0.0, "non-positive branch resistance");
        conductance += 1.0 / r;
    }
    return 1.0 / conductance;
}

Ohms
inputBranchResistance(const DeviceConfig &cfg, MtjState input_state)
{
    const Ohms r_mtj = input_state == MtjState::AP
                           ? cfg.mtj.rAntiParallel
                           : cfg.mtj.rParallel;
    switch (cfg.cell) {
      case CellKind::Stt1T1M:
        return r_mtj + cfg.accessTransistorR;
      case CellKind::She2T1M:
        // Read path: through the SHE channel *and* the MTJ stack.
        return r_mtj + cfg.sheChannelR + cfg.accessTransistorR;
    }
    mouse_panic("unknown cell kind");
}

Ohms
outputBranchResistance(const DeviceConfig &cfg, MtjState preset_state)
{
    switch (cfg.cell) {
      case CellKind::Stt1T1M: {
        const Ohms r_mtj = preset_state == MtjState::AP
                               ? cfg.mtj.rAntiParallel
                               : cfg.mtj.rParallel;
        return r_mtj + cfg.accessTransistorR;
      }
      case CellKind::She2T1M:
        // Write path: current flows only through the SHE channel,
        // independent of the output MTJ state (Section II-D).
        return cfg.sheChannelR + cfg.accessTransistorR;
    }
    mouse_panic("unknown cell kind");
}

Ohms
logicLineResistance(const DeviceConfig &cfg, unsigned row_span)
{
    return cfg.wireResistancePerCell * row_span;
}

Ohms
gateLoopResistance(const DeviceConfig &cfg,
                   const std::vector<MtjState> &input_states,
                   MtjState preset_state, unsigned row_span)
{
    std::vector<Ohms> branches;
    branches.reserve(input_states.size());
    for (MtjState s : input_states) {
        branches.push_back(inputBranchResistance(cfg, s));
    }
    return parallelResistance(branches) +
           logicLineResistance(cfg, row_span) +
           outputBranchResistance(cfg, preset_state);
}

Amperes
gateOutputCurrent(const DeviceConfig &cfg, Volts voltage,
                  const std::vector<MtjState> &input_states,
                  MtjState preset_state, unsigned row_span)
{
    return voltage / gateLoopResistance(cfg, input_states,
                                        preset_state, row_span);
}

std::array<Ohms, 8>
comboParallelResistances(const DeviceConfig &cfg, int num_inputs)
{
    mouse_assert(num_inputs >= 1 && num_inputs <= 3,
                 "unsupported gate fan-in");
    std::array<Ohms, 8> out{};
    const unsigned num_combos = 1u << num_inputs;
    std::vector<Ohms> branches;
    for (unsigned combo = 0; combo < num_combos; ++combo) {
        branches.clear();
        for (int i = 0; i < num_inputs; ++i) {
            branches.push_back(inputBranchResistance(
                cfg, stateFromBit((combo >> i) & 1)));
        }
        out[combo] = parallelResistance(branches);
    }
    return out;
}

Ohms
writePathResistance(const DeviceConfig &cfg, MtjState state)
{
    switch (cfg.cell) {
      case CellKind::Stt1T1M: {
        const Ohms r_mtj = state == MtjState::AP ? cfg.mtj.rAntiParallel
                                                 : cfg.mtj.rParallel;
        return r_mtj + cfg.accessTransistorR;
      }
      case CellKind::She2T1M:
        return cfg.sheChannelR + cfg.accessTransistorR;
    }
    mouse_panic("unknown cell kind");
}

Ohms
readPathResistance(const DeviceConfig &cfg, MtjState state)
{
    const Ohms r_mtj = state == MtjState::AP ? cfg.mtj.rAntiParallel
                                             : cfg.mtj.rParallel;
    switch (cfg.cell) {
      case CellKind::Stt1T1M:
        return r_mtj + cfg.accessTransistorR;
      case CellKind::She2T1M:
        return r_mtj + cfg.sheChannelR + cfg.accessTransistorR;
    }
    mouse_panic("unknown cell kind");
}

} // namespace mouse
