/**
 * @file
 * Resistive-network solver for CRAM-style in-array logic gates.
 *
 * A MOUSE gate (Figure 1 of the paper) is a voltage applied across:
 *
 *   bitline -> [input branches in parallel] -> logic line
 *           -> [output branch] -> other bitline
 *
 * Each input branch is the input MTJ resistance plus its series
 * access path; the output branch depends on the cell architecture:
 * for STT cells the current flows through the output MTJ itself,
 * for SHE cells the write current flows through the low-resistance
 * SHE channel instead (Section II-D).
 *
 * The solver answers the only two questions the rest of the system
 * needs: what current flows through the output device for a given
 * input state, and therefore (a) does the output switch and (b) how
 * much energy does the pulse draw.
 */

#ifndef MOUSE_DEVICE_NETWORK_HH
#define MOUSE_DEVICE_NETWORK_HH

#include <array>
#include <vector>

#include "common/types.hh"
#include "device/mtj.hh"
#include "device/mtj_params.hh"

namespace mouse
{

/** Combine branch resistances in parallel. @pre branches non-empty. */
Ohms parallelResistance(const std::vector<Ohms> &branches);

/**
 * Series resistance of one *input* branch of a logic gate: the input
 * MTJ in its given state plus the access path for reads.
 */
Ohms inputBranchResistance(const DeviceConfig &cfg, MtjState input_state);

/**
 * Series resistance of the *output* branch of a logic gate.  For STT
 * cells this includes the output MTJ (in its preset state); for SHE
 * cells the write path bypasses the MTJ through the SHE channel.
 */
Ohms outputBranchResistance(const DeviceConfig &cfg, MtjState preset_state);

/**
 * Series resistance of the logic line between the input group and
 * the output cell: @p row_span crossed cells at the configuration's
 * per-cell wire resistance (0 with ideal wires).
 */
Ohms logicLineResistance(const DeviceConfig &cfg, unsigned row_span);

/**
 * Total loop resistance of a gate for a specific input combination.
 *
 * @param cfg Device configuration.
 * @param input_states State of each input MTJ.
 * @param preset_state Preset state of the output MTJ.
 * @param row_span Cells the logic line crosses between the inputs
 *        and the output (0 = adjacent / ideal wires).
 */
Ohms gateLoopResistance(const DeviceConfig &cfg,
                        const std::vector<MtjState> &input_states,
                        MtjState preset_state,
                        unsigned row_span = 0);

/**
 * Current through the output device when @p voltage is applied across
 * the gate loop.
 */
Amperes gateOutputCurrent(const DeviceConfig &cfg, Volts voltage,
                          const std::vector<MtjState> &input_states,
                          MtjState preset_state,
                          unsigned row_span = 0);

/**
 * Factored form of the gate loop: the parallel resistance of the
 * input branch group for every packed input combination (bit i of
 * the index = state of input i, LSB-first, AP = 1).  Only the first
 * 2^num_inputs entries are meaningful.
 *
 * Each entry is computed by the same parallelResistance() fold the
 * per-column solver uses, so currents re-derived from it match
 * gateOutputCurrent() bit for bit.
 */
std::array<Ohms, 8> comboParallelResistances(const DeviceConfig &cfg,
                                             int num_inputs);

/**
 * LUT-backed twin of gateOutputCurrent(): the output-device current
 * for a precomputed input parallel resistance.  Evaluates the loop
 * in the exact association the full solver uses —
 * (parallel + wire) + output — so the result is bit-identical.
 */
inline Amperes
gateOutputCurrentFactored(const DeviceConfig &cfg, Volts voltage,
                          Ohms input_parallel_r, MtjState out_state,
                          unsigned row_span)
{
    return voltage /
           ((input_parallel_r + logicLineResistance(cfg, row_span)) +
            outputBranchResistance(cfg, out_state));
}

/** Series resistance of the memory *write* path of a single cell. */
Ohms writePathResistance(const DeviceConfig &cfg, MtjState state);

/** Series resistance of the memory *read* path of a single cell. */
Ohms readPathResistance(const DeviceConfig &cfg, MtjState state);

} // namespace mouse

#endif // MOUSE_DEVICE_NETWORK_HH
