#include "mtj_params.hh"

#include "common/logging.hh"

namespace mouse
{

std::string
DeviceConfig::name() const
{
    switch (tech) {
      case TechConfig::ModernStt:
        return "Modern STT";
      case TechConfig::ProjectedStt:
        return "Projected STT";
      case TechConfig::ProjectedShe:
        return "SHE";
    }
    return "unknown";
}

DeviceConfig
withParasitics(DeviceConfig cfg, Ohms ohms_per_cell)
{
    cfg.wireResistancePerCell = ohms_per_cell;
    return cfg;
}

DeviceConfig
makeDeviceConfig(TechConfig tech)
{
    DeviceConfig cfg{};
    cfg.tech = tech;
    cfg.accessTransistorR = 1.0e3;
    cfg.sheChannelR = 1.0e3;
    cfg.wireResistancePerCell = 0.0;
    switch (tech) {
      case TechConfig::ModernStt:
        cfg.mtj = modernMtj();
        cfg.cell = CellKind::Stt1T1M;
        cfg.cycleTime = 33e-9;      // 30.3 MHz
        cfg.capVoltageLow = 0.320;
        cfg.capVoltageHigh = 0.340;
        cfg.bufferCapacitance = 100e-6;
        break;
      case TechConfig::ProjectedStt:
        cfg.mtj = projectedMtj();
        cfg.cell = CellKind::Stt1T1M;
        cfg.cycleTime = 11e-9;      // 90.9 MHz
        cfg.capVoltageLow = 0.100;
        cfg.capVoltageHigh = 0.120;
        cfg.bufferCapacitance = 10e-6;
        break;
      case TechConfig::ProjectedShe:
        cfg.mtj = projectedMtj();
        cfg.cell = CellKind::She2T1M;
        cfg.cycleTime = 11e-9;      // 90.9 MHz
        cfg.capVoltageLow = 0.100;
        cfg.capVoltageHigh = 0.120;
        cfg.bufferCapacitance = 10e-6;
        break;
      default:
        mouse_panic("unknown TechConfig %d", static_cast<int>(tech));
    }
    return cfg;
}

} // namespace mouse
