/**
 * @file
 * Behavioural model of a single magnetic tunnel junction.
 *
 * The model captures exactly the physics the paper's correctness
 * argument rests on (Section II-A, Section V-A):
 *
 *  - the MTJ is a two-state resistor: P (logic 0, low R) and
 *    AP (logic 1, high R);
 *  - a current of at least the critical switching current, applied
 *    for at least the switching time, switches the state;
 *  - the *direction* of the current determines the target state:
 *    by convention here, positive current (free -> fixed layer)
 *    drives the device toward AP, negative toward P.  A current can
 *    therefore never undo a switch it caused — the physical root of
 *    gate idempotency (Table I of the paper).
 *
 * Partial pulses (interrupted by a power outage) are modelled: a
 * super-critical pulse shorter than the switching time leaves the
 * state unchanged; the magnetization precession below full reversal
 * relaxes back, which is the conservative assumption for STT devices
 * at these pulse widths.
 */

#ifndef MOUSE_DEVICE_MTJ_HH
#define MOUSE_DEVICE_MTJ_HH

#include "common/types.hh"
#include "device/mtj_params.hh"

namespace mouse
{

/** Magnetization state of an MTJ free layer relative to fixed. */
enum class MtjState : Bit
{
    P = 0,   ///< Parallel: low resistance, logic 0.
    AP = 1,  ///< Anti-parallel: high resistance, logic 1.
};

/** Convert a stored logic bit to the corresponding MTJ state. */
inline MtjState
stateFromBit(Bit b)
{
    return b ? MtjState::AP : MtjState::P;
}

/** Convert an MTJ state to the logic bit it encodes. */
inline Bit
bitFromState(MtjState s)
{
    return s == MtjState::AP ? 1 : 0;
}

/** A single magnetic tunnel junction. */
class Mtj
{
  public:
    explicit Mtj(MtjState initial = MtjState::P) : state_(initial) {}

    MtjState state() const { return state_; }

    Bit bit() const { return bitFromState(state_); }

    void set(MtjState s) { state_ = s; }

    void setBit(Bit b) { state_ = stateFromBit(b); }

    /** Resistance in the current state for the given device. */
    Ohms
    resistance(const MtjParams &params) const
    {
        return state_ == MtjState::AP ? params.rAntiParallel
                                      : params.rParallel;
    }

    /**
     * Apply a current pulse.
     *
     * @param current Signed current; positive drives toward AP,
     *                negative toward P.
     * @param duration Pulse length in seconds.
     * @param params Device parameters supplying the switching
     *               threshold and time.
     * @return true iff the state changed.
     */
    bool
    applyPulse(Amperes current, Seconds duration, const MtjParams &params)
    {
        const Amperes magnitude = current < 0 ? -current : current;
        if (magnitude < params.switchingCurrent) {
            return false;
        }
        if (duration < params.switchingTime) {
            // Interrupted pulse: magnetization relaxes back.
            return false;
        }
        const MtjState target =
            current > 0 ? MtjState::AP : MtjState::P;
        if (target == state_) {
            // Already in the target state; current direction cannot
            // revert it (directionality => idempotency).
            return false;
        }
        state_ = target;
        return true;
    }

  private:
    MtjState state_;
};

} // namespace mouse

#endif // MOUSE_DEVICE_MTJ_HH
