/**
 * @file
 * MTJ device parameters (paper Table II) and technology presets.
 *
 * The paper evaluates three MOUSE configurations:
 *   - Modern STT:     measured MTJ devices, 1T1M cells, 30.3 MHz
 *   - Projected STT:  projected MTJ devices, 1T1M cells, 90.9 MHz
 *   - Projected SHE:  projected MTJs + spin-hall-effect write channel,
 *                     2T1M cells, 90.9 MHz
 *
 * Everything downstream (gate voltages, energies, harvesting
 * behaviour) is derived from these few scalars, exactly as the
 * paper's analytical model does.
 */

#ifndef MOUSE_DEVICE_MTJ_PARAMS_HH
#define MOUSE_DEVICE_MTJ_PARAMS_HH

#include <string>

#include "common/types.hh"

namespace mouse
{

/** Raw MTJ device parameters, one column of the paper's Table II. */
struct MtjParams
{
    /** Parallel (logic 0) state resistance. */
    Ohms rParallel;
    /** Anti-parallel (logic 1) state resistance. */
    Ohms rAntiParallel;
    /** Time a super-critical current must be applied to switch. */
    Seconds switchingTime;
    /** Critical switching current. */
    Amperes switchingCurrent;

    /** Tunnel magnetoresistance ratio, (Rap - Rp) / Rp. */
    double
    tmr() const
    {
        return (rAntiParallel - rParallel) / rParallel;
    }
};

/** Table II, "Modern" column: Saida et al. style devices. */
constexpr MtjParams
modernMtj()
{
    return MtjParams{3.15e3, 7.34e3, 3e-9, 40e-6};
}

/** Table II, "Projected" column: next-generation devices. */
constexpr MtjParams
projectedMtj()
{
    return MtjParams{7.34e3, 76.39e3, 1e-9, 3e-6};
}

/** Cell architecture: 1T1M STT or 2T1M SHE-augmented (Section II-D). */
enum class CellKind
{
    /** One access transistor, read and write both through the MTJ. */
    Stt1T1M,
    /** Two access transistors; writes bypass the MTJ via the SHE
     *  channel, reads pass through channel and MTJ in series. */
    She2T1M,
};

/** Named MOUSE configuration evaluated in the paper. */
enum class TechConfig
{
    ModernStt,
    ProjectedStt,
    ProjectedShe,
};

/** Full device-level description of one MOUSE configuration. */
struct DeviceConfig
{
    TechConfig tech;
    MtjParams mtj;
    CellKind cell;
    /** Access transistor on-resistance (paper keeps it < 1 kOhm). */
    Ohms accessTransistorR;
    /** SHE channel resistance (Section VIII assumes 1 kOhm). */
    Ohms sheChannelR;
    /**
     * Logic-line interconnect resistance per crossed cell (the
     * parasitics study of Zabihi et al., JxCDC'20, which the paper
     * cites as [95]).  The default 0 reproduces the paper's ideal
     * wires; withParasitics() enables the effect, which penalizes
     * gates whose operands sit far apart along the logic line.
     */
    Ohms wireResistancePerCell;
    /** Instruction cycle time: 33 ns (30.3 MHz) modern,
     *  11 ns (90.9 MHz) projected. */
    Seconds cycleTime;
    /** Capacitor voltage window for the harvesting model (Sec. IX). */
    Volts capVoltageLow;
    Volts capVoltageHigh;
    /** Energy-buffer capacitor size (100 uF modern, 10 uF projected). */
    Farads bufferCapacitance;

    /** Short human-readable name, e.g. "Modern STT". */
    std::string name() const;

    /** Clock frequency implied by the cycle time. */
    double
    frequency() const
    {
        return 1.0 / cycleTime;
    }
};

/** Build the standard configuration for a given technology. */
DeviceConfig makeDeviceConfig(TechConfig tech);

/** Copy of @p cfg with logic-line parasitics enabled. */
DeviceConfig withParasitics(DeviceConfig cfg, Ohms ohms_per_cell);

/**
 * Highest conversion ratio of the paper's switched-capacitor
 * converter (Section VIII: {0.75, 1, 1.5, 1.75}).  The gate solver
 * clamps operating voltages to kMaxConverterRatio x capVoltageLow
 * when the feasible window allows it, so gates stay reachable from
 * the buffer across the whole voltage window.
 */
constexpr double kMaxConverterRatio = 1.75;

} // namespace mouse

#endif // MOUSE_DEVICE_MTJ_PARAMS_HH
