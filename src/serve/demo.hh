/**
 * @file
 * Deterministic demo models and load for the serving driver
 * (`mouse_cli serve`), bench_serve_saturation, and the CI smoke
 * test.  Everything derives from an explicit seed so two invocations
 * with the same seed serve byte-identical workloads.
 *
 * Shapes are picked so a 1024-column engine packs hundreds of
 * requests per gate pass: the BNN spans 4 columns per request (4
 * classes), the SVM 8 (8 support vectors).
 */

#ifndef MOUSE_SERVE_DEMO_HH
#define MOUSE_SERVE_DEMO_HH

#include "common/rng.hh"
#include "serve/models.hh"

namespace mouse::serve
{

/** 4-class, 16-input BNN with random weights/thresholds. */
BnnServeModel demoBnn(std::uint64_t seed);

/** Binary SVM: 8 support vectors of 8 4-bit elements. */
SvmServeModel demoSvm(std::uint64_t seed);

/** A random payload valid for @p m (respects element width). */
Input randomInput(Rng &rng, const PackedModel &m);

} // namespace mouse::serve

#endif // MOUSE_SERVE_DEMO_HH
