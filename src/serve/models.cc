#include "models.hh"

#include "common/logging.hh"
#include "compile/builder.hh"
#include "ml/mapping.hh"

namespace mouse::serve
{

namespace
{

std::vector<RowAddr>
rowsOf(const Word &w)
{
    std::vector<RowAddr> rows;
    rows.reserve(w.size());
    for (const Val &v : w) {
        rows.push_back(v.row);
    }
    return rows;
}

} // namespace

PackedModel
PackedModel::compileBnn(const GateLibrary &lib, const ArrayConfig &cfg,
                        ModelId id, BnnServeModel m)
{
    const unsigned k = m.layer.inputs;
    const unsigned classes = m.layer.outputs;
    mouse_assert(k > 0 && classes > 0, "empty BNN serve model");
    mouse_assert(m.layer.weights.size() == classes &&
                     m.layer.thresholds.size() == classes,
                 "BNN serve model weights/thresholds mismatch shape");

    PackedModel pm;
    pm.id_ = id;
    pm.name_ = std::move(m.name);
    pm.kind_ = Kind::kBnn;
    pm.layer_ = std::move(m.layer);
    pm.colsPerRequest_ = classes;
    pm.slots_ = cfg.tileCols / classes;
    pm.inputSize_ = k;
    mouse_assert(pm.slots_ > 0,
                 "engine narrower than one BNN request");

    // Interleaved even-row layout (see buildSmallBnnNeuronKernel):
    // weight bit i at 4i, input bit i at 4i+2; thresholds on the odd
    // bitline above the data.
    pm.threshBits_ = 1;
    while ((1u << pm.threshBits_) <= k) {
        ++pm.threshBits_;
    }
    const RowAddr threshBase = static_cast<RowAddr>(4 * k + 1);
    const unsigned firstFree = 4 * k + 2 * pm.threshBits_ + 4;

    KernelBuilder kb(lib, cfg, 0, firstFree);
    kb.activate(0,
                static_cast<ColAddr>(pm.slots_ * classes - 1));
    Word count;
    Val fires{};
    buildSmallBnnNeuronKernel(kb, /*w_base=*/0, /*x_base=*/2,
                              threshBase, k, count, fires);
    pm.program_ = kb.finish();
    pm.countRows_ = rowsOf(count);
    return pm;
}

PackedModel
PackedModel::compileSvm(const GateLibrary &lib, const ArrayConfig &cfg,
                        ModelId id, SvmServeModel m)
{
    const unsigned svs =
        static_cast<unsigned>(m.svm.supportVectors.size());
    mouse_assert(svs > 0 && m.dim > 0, "empty SVM serve model");
    mouse_assert(m.svm.coefficients.size() == svs,
                 "SVM serve model coefficients mismatch SV count");
    mouse_assert(m.inputBits >= 1 && m.inputBits <= 8,
                 "SVM serve model feature precision out of range");
    for (const Features &sv : m.svm.supportVectors) {
        mouse_assert(sv.size() == m.dim,
                     "SVM support vector dimension mismatch");
    }

    PackedModel pm;
    pm.id_ = id;
    pm.name_ = std::move(m.name);
    pm.kind_ = Kind::kSvm;
    pm.svm_ = std::move(m.svm);
    pm.inputBits_ = m.inputBits;
    pm.colsPerRequest_ = svs;
    pm.slots_ = cfg.tileCols / svs;
    pm.inputSize_ = m.dim;
    mouse_assert(pm.slots_ > 0,
                 "engine narrower than one SVM request");

    // buildSmallSvmKernel layout: element e bit b of the support
    // vector at sv_base + e*2*inputBits + 2b, of the input likewise
    // above the support vectors.
    pm.xBase_ =
        static_cast<RowAddr>(m.dim * 2 * m.inputBits);
    const unsigned firstFree = 2 * m.dim * 2 * m.inputBits + 8;

    KernelBuilder kb(lib, cfg, 0, firstFree);
    kb.activate(0, static_cast<ColAddr>(pm.slots_ * svs - 1));
    Word square;
    buildSmallSvmKernel(kb, /*sv_rows=*/0, pm.xBase_, m.dim,
                        m.inputBits, m.accBits, square);
    pm.program_ = kb.finish();
    pm.squareRows_ = rowsOf(square);
    mouse_assert(pm.squareRows_.size() <= 64,
                 "SVM square word exceeds host readback width");
    return pm;
}

void
PackedModel::deployWeights(TileGrid &grid) const
{
    Tile &tile = grid.tile(0);
    for (unsigned s = 0; s < slots_; ++s) {
        for (unsigned u = 0; u < colsPerRequest_; ++u) {
            const ColAddr col =
                static_cast<ColAddr>(s * colsPerRequest_ + u);
            if (kind_ == Kind::kBnn) {
                for (unsigned i = 0; i < layer_.inputs; ++i) {
                    tile.setBit(static_cast<RowAddr>(4 * i), col,
                                layer_.weights[u][i]);
                }
                const RowAddr threshBase =
                    static_cast<RowAddr>(4 * layer_.inputs + 1);
                for (unsigned b = 0; b < threshBits_; ++b) {
                    tile.setBit(
                        static_cast<RowAddr>(threshBase + 2 * b),
                        col,
                        static_cast<Bit>(
                            (layer_.thresholds[u] >> b) & 1));
                }
            } else {
                const Features &sv = svm_.supportVectors[u];
                for (std::size_t e = 0; e < sv.size(); ++e) {
                    for (unsigned b = 0; b < inputBits_; ++b) {
                        tile.setBit(
                            static_cast<RowAddr>(e * 2 * inputBits_ +
                                                 2 * b),
                            col,
                            static_cast<Bit>((sv[e] >> b) & 1));
                    }
                }
            }
        }
    }
}

void
PackedModel::packInput(TileGrid &grid, unsigned slot,
                       const Input &in) const
{
    mouse_assert(slot < slots_, "packInput slot out of range");
    mouse_assert(validInput(in), "malformed request payload");
    Tile &tile = grid.tile(0);
    for (unsigned u = 0; u < colsPerRequest_; ++u) {
        const ColAddr col =
            static_cast<ColAddr>(slot * colsPerRequest_ + u);
        if (kind_ == Kind::kBnn) {
            for (std::size_t i = 0; i < in.size(); ++i) {
                tile.setBit(static_cast<RowAddr>(4 * i + 2), col,
                            static_cast<Bit>(in[i] & 1));
            }
        } else {
            for (std::size_t e = 0; e < in.size(); ++e) {
                for (unsigned b = 0; b < inputBits_; ++b) {
                    tile.setBit(
                        static_cast<RowAddr>(xBase_ +
                                             e * 2 * inputBits_ +
                                             2 * b),
                        col, static_cast<Bit>((in[e] >> b) & 1));
                }
            }
        }
    }
}

void
PackedModel::clearInput(TileGrid &grid, unsigned slot) const
{
    // Reuse the packing path with an all-zero payload.
    const Input zeros(inputSize_, 0);
    packInput(grid, slot, zeros);
}

int
PackedModel::readPrediction(const TileGrid &grid, unsigned slot) const
{
    mouse_assert(slot < slots_, "readPrediction slot out of range");
    const Tile &tile = grid.tile(0);
    if (kind_ == Kind::kBnn) {
        int best = 0;
        std::uint64_t bestPop = 0;
        for (unsigned c = 0; c < colsPerRequest_; ++c) {
            const ColAddr col =
                static_cast<ColAddr>(slot * colsPerRequest_ + c);
            const std::uint64_t pop =
                tile.columnWord(countRows_, col);
            if (pop > bestPop) {
                bestPop = pop;
                best = static_cast<int>(c);
            }
        }
        return best;
    }
    // SVM: the array leaves (sv_s . x)^2 truncated to the square
    // word's width; the host finishes the coefficient sum.  The
    // decision is defined on the truncated fixed-point squares —
    // identical arithmetic whether the request ran packed or alone.
    __int128 decision = svm_.bias;
    for (unsigned s = 0; s < colsPerRequest_; ++s) {
        const ColAddr col =
            static_cast<ColAddr>(slot * colsPerRequest_ + s);
        const std::uint64_t sq = tile.columnWord(squareRows_, col);
        decision += static_cast<__int128>(svm_.coefficients[s]) *
                    static_cast<__int128>(sq);
    }
    return decision > 0 ? 1 : 0;
}

bool
PackedModel::validInput(const Input &in) const
{
    if (in.size() != inputSize_) {
        return false;
    }
    const unsigned bits = kind_ == Kind::kBnn ? 1 : inputBits_;
    if (bits >= 8) {
        return true;
    }
    for (std::uint8_t v : in) {
        if (v >> bits) {
            return false;
        }
    }
    return true;
}

} // namespace mouse::serve
