#include "demo.hh"

namespace mouse::serve
{

BnnServeModel
demoBnn(std::uint64_t seed)
{
    constexpr unsigned kInputs = 16;
    constexpr unsigned kClasses = 4;
    Rng rng(seed);
    BnnServeModel m;
    m.name = "demo-bnn";
    m.layer.inputs = kInputs;
    m.layer.outputs = kClasses;
    m.layer.weights.assign(kClasses, std::vector<Bit>(kInputs));
    m.layer.thresholds.resize(kClasses);
    for (unsigned c = 0; c < kClasses; ++c) {
        for (unsigned i = 0; i < kInputs; ++i) {
            m.layer.weights[c][i] = static_cast<Bit>(rng.below(2));
        }
        m.layer.thresholds[c] =
            static_cast<std::int32_t>(rng.below(kInputs + 1));
    }
    return m;
}

SvmServeModel
demoSvm(std::uint64_t seed)
{
    constexpr unsigned kSvs = 8;
    constexpr unsigned kDim = 8;
    Rng rng(seed);
    SvmServeModel m;
    m.name = "demo-svm";
    m.dim = kDim;
    m.inputBits = 4;
    m.accBits = 12;
    m.svm.supportVectors.assign(kSvs, Features(kDim));
    m.svm.coefficients.resize(kSvs);
    for (unsigned s = 0; s < kSvs; ++s) {
        for (unsigned e = 0; e < kDim; ++e) {
            m.svm.supportVectors[s][e] =
                static_cast<std::uint8_t>(rng.below(16));
        }
        m.svm.coefficients[s] =
            static_cast<std::int32_t>(rng.below(9)) - 4;
    }
    m.svm.bias = static_cast<std::int64_t>(rng.below(64)) - 32;
    return m;
}

Input
randomInput(Rng &rng, const PackedModel &m)
{
    Input in(m.inputSize());
    for (auto &v : in) {
        v = static_cast<std::uint8_t>(
            rng.below(1ull << m.elementBits()));
    }
    return in;
}

} // namespace mouse::serve
