/**
 * @file
 * InferenceService: a long-lived serving front end over a pool of
 * accelerator engines (docs/SERVING.md).
 *
 * Lifecycle: construct -> addModel() (compiles a PackedModel per
 * registered classifier) -> any number of {submit()* -> drain()}
 * cycles.  submit() admits a classification request and *forms
 * batches at admission time*: requests for the same model are packed
 * into one gate pass's column slots, and a batch is cut the moment
 * it fills (flush() cuts partials, drain() flushes first).  drain()
 * then executes every ready batch across the engine pool and
 * completes the corresponding results.
 *
 * Determinism by construction:
 *  - Batch composition depends only on the submission sequence
 *    (batches are cut in submission order at slot capacity), never
 *    on worker count or timing.
 *  - A batch's simulated stats are a pure function of (program,
 *    weights, batch contents): weights are redeployed on model
 *    switch, unused slots are zero-filled every batch, and preset/
 *    write energies are state-independent — so any engine computes
 *    the identical RunStats for the same batch.
 *  - The service registry is rebuilt by folding per-batch records in
 *    batch-id order *after* the join, so stats() is byte-identical
 *    for any worker count (no FP-order dependence on scheduling).
 *
 * Host wall-clock quantities (queueing delay, drain throughput) are
 * inherently nondeterministic; they are reported in ClassifyResult
 * and reportJson() but deliberately kept out of stats().
 *
 * Threading contract: submit/flush/drain/stats are called from one
 * thread; drain() parallelizes internally over cfg.workers engines.
 */

#ifndef MOUSE_SERVE_SERVICE_HH
#define MOUSE_SERVE_SERVICE_HH

#include <chrono>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "core/accelerator.hh"
#include "obs/metrics_hub.hh"
#include "obs/stat_registry.hh"
#include "obs/trace_sink.hh"
#include "serve/models.hh"

namespace mouse::serve
{

/** Identifier of an admitted request (dense, submission order). */
using RequestId = std::uint64_t;

/** Static configuration of a service instance. */
struct ServiceConfig
{
    /** Per-engine accelerator configuration (geometry + tech).
     *  Every engine in the pool is identical. */
    MouseConfig engine;
    /** Engines run in parallel by drain(). */
    unsigned workers = 1;
    /** Cap on requests per batch; 0 means one full pass (all
     *  column slots). */
    unsigned maxBatch = 0;
    /**
     * Run every pass under the energy-harvesting simulator instead
     * of wall power (the ROADMAP's harvested-power serving mode).
     * Determinism is preserved: a harvested pass is still a pure
     * function of (program, weights, batch contents, harvest), so
     * stats() stays byte-identical across worker counts.
     */
    bool harvested = false;
    /** Harvesting environment; only read when harvested. */
    HarvestConfig harvest{};
};

/** Completed classification (schema v4 serve fields). */
struct ClassifyResult
{
    RequestId id = 0;
    ModelId model = 0;
    int predicted = -1;
    std::uint64_t batchId = 0;
    unsigned batchSize = 0;
    unsigned slot = 0;
    /** Simulated array latency of the carrying pass (deterministic). */
    double simSeconds = 0.0;
    /** Pass energy amortized over the batch (deterministic). */
    Joules energy = 0.0;
    /** Admission -> completion on the host clock (nondeterministic,
     *  excluded from stats()). */
    double hostSeconds = 0.0;
};

/** A long-lived batched-inference front end. */
class InferenceService
{
  public:
    explicit InferenceService(const ServiceConfig &cfg);
    ~InferenceService();

    InferenceService(const InferenceService &) = delete;
    InferenceService &operator=(const InferenceService &) = delete;

    /** Compile and register a model; returns its id. */
    ModelId addModel(const BnnServeModel &m);
    ModelId addModel(const SvmServeModel &m);

    const PackedModel &model(ModelId id) const;
    std::size_t numModels() const { return models_.size(); }

    /**
     * Admit one classification request.  The payload is validated
     * against the model (size and element range) and moved in; a
     * full batch is cut immediately.  Returns the dense RequestId
     * under which result() will file the outcome.
     */
    RequestId submit(ModelId model, Input in);

    /** Cut every non-empty partial batch (they run at next drain). */
    void flush();

    /**
     * Flush, then execute every ready batch across the engine pool
     * (cfg.workers threads, engines created on first use).  Returns
     * the host wall seconds the drain took.
     */
    double drain();

    /** Requests admitted but not yet completed. */
    std::size_t pendingRequests() const;
    /** Requests completed over the service lifetime. */
    std::size_t completed() const { return completedRequests_; }
    /** Batches executed over the service lifetime. */
    std::size_t batchesRun() const { return runCursor_; }

    /** Result of a completed request.  @p id must be completed. */
    const ClassifyResult &result(RequestId id) const;

    /**
     * Service statistics, rebuilt by folding per-batch records in
     * batch-id order: byte-identical toJson() for any worker count.
     */
    std::shared_ptr<obs::StatRegistry> stats() const;

    /** Schema-v4 serve report: totals, per-model counts, latency
     *  percentiles, plus the deterministic stat registry. */
    std::string reportJson() const;

    // -- Live observability (docs/OBSERVABILITY.md) -----------------
    //
    // All of it is observational: metrics publishing, span tracing
    // and progress reporting never feed back into batch composition,
    // results, stats() or reportJson(), so those stay byte-identical
    // with observability on or off.

    /**
     * Attach a live-metrics hub: submit/drain publish admission,
     * batch, completion-latency and worker-activity samples into it.
     * Null detaches.  The hub must outlive the service (or be
     * detached first).
     */
    void setMetrics(obs::MetricsHub *hub) { metrics_ = hub; }

    /**
     * Record per-request lifecycle spans (host timeline, anchored at
     * service construction).  Toggle before submitting; see
     * requestTrace() for the span taxonomy.
     */
    void setTracing(bool on) { tracing_ = on; }
    bool tracing() const { return tracing_; }

    /**
     * The collected request spans as one Chrome-trace sink, composed
     * in batch-id order.  Tracks: pid 0 is the engine pool (one tid
     * per worker, "batch"/"deploy"/"pack"/"sim"/"readout" phases and
     * the host-attributed "outage_stall" span); pid 1+batchId is the
     * batch's request row (one tid per slot, a "request" span
     * covering admission -> completion with a nested "queued" span);
     * "batch_cut" instants mark batch formation.
     */
    obs::TraceSink requestTrace() const;

    /**
     * Progress callback, fired after every batch a drain() retires
     * as (batches done, batches total) for that drain.  Invoked from
     * worker threads under an internal mutex; keep it cheap.
     */
    void
    setProgress(
        std::function<void(std::size_t, std::size_t)> cb)
    {
        progress_ = std::move(cb);
    }

  private:
    struct PendingReq
    {
        RequestId id = 0;
        Input in;
        std::chrono::steady_clock::time_point submitted;
    };

    /** One cut batch, ready to run. */
    struct Batch
    {
        std::uint64_t id = 0;
        ModelId model = 0;
        std::vector<PendingReq> reqs;
    };

    /** Deterministic per-batch accounting, folded by stats(). */
    struct BatchRecord
    {
        ModelId model = 0;
        unsigned size = 0;
        unsigned slots = 0;
        double simSeconds = 0.0;
        Joules energy = 0.0;
    };

    /** One pooled engine: an accelerator plus its deployed model. */
    struct Engine
    {
        explicit Engine(const MouseConfig &cfg) : acc(cfg) {}
        Accelerator acc;
        /** Model whose program/weights are deployed; -1 = none. */
        std::int64_t loaded = -1;
    };

    void cutBatch(ModelId model);
    void runBatch(Engine &eng, unsigned engineIdx,
                  const Batch &batch);
    unsigned batchCapacity(const PackedModel &m) const;

    /** Host seconds since construction (the span timeline). */
    double
    hostSince(std::chrono::steady_clock::time_point tp) const
    {
        return std::chrono::duration<double>(tp - epoch_).count();
    }

    ServiceConfig cfg_;
    /** Library used to compile models (engines solve their own,
     *  identical, libraries). */
    GateLibrary lib_;
    std::vector<PackedModel> models_;
    /** Per-model open (not yet cut) batch. */
    std::vector<std::vector<PendingReq>> open_;
    /** Cut batches in cut order; [runCursor_, end) are unrun. */
    std::vector<Batch> ready_;
    std::size_t runCursor_ = 0;
    std::vector<BatchRecord> records_;
    std::vector<ClassifyResult> results_;
    std::vector<std::unique_ptr<Engine>> engines_;
    RequestId nextRequest_ = 0;
    std::size_t completedRequests_ = 0;
    double drainSeconds_ = 0.0;

    // Observability (never read by the deterministic paths).
    std::chrono::steady_clock::time_point epoch_;
    obs::MetricsHub *metrics_ = nullptr;
    bool tracing_ = false;
    /** Per-batch span sinks, indexed by batch id like records_:
     *  each worker writes only its claimed batches' cells. */
    std::vector<std::unique_ptr<obs::TraceSink>> traces_;
    /** Main-thread-only sink for batch-formation instants. */
    obs::TraceSink formationTrace_;
    std::function<void(std::size_t, std::size_t)> progress_;
    std::mutex progressMutex_;
};

} // namespace mouse::serve

#endif // MOUSE_SERVE_SERVICE_HH
