#include "service.hh"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <thread>

#include "common/logging.hh"

namespace mouse::serve
{

namespace
{

std::string
num(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

/** Exact percentile over a copy (nearest-rank interpolation). */
double
percentileOf(std::vector<double> v, double q)
{
    if (v.empty()) {
        return 0.0;
    }
    std::sort(v.begin(), v.end());
    const double pos = q * static_cast<double>(v.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, v.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return v[lo] + (v[hi] - v[lo]) * frac;
}

} // namespace

InferenceService::InferenceService(const ServiceConfig &cfg)
    : cfg_(cfg),
      lib_(makeDeviceConfig(cfg.engine.tech), cfg.engine.gateMargin),
      epoch_(std::chrono::steady_clock::now())
{
    mouse_assert(cfg_.workers >= 1, "service needs >= 1 worker");
}

InferenceService::~InferenceService() = default;

ModelId
InferenceService::addModel(const BnnServeModel &m)
{
    const ModelId id = static_cast<ModelId>(models_.size());
    models_.push_back(
        PackedModel::compileBnn(lib_, cfg_.engine.array, id, m));
    open_.emplace_back();
    return id;
}

ModelId
InferenceService::addModel(const SvmServeModel &m)
{
    const ModelId id = static_cast<ModelId>(models_.size());
    models_.push_back(
        PackedModel::compileSvm(lib_, cfg_.engine.array, id, m));
    open_.emplace_back();
    return id;
}

const PackedModel &
InferenceService::model(ModelId id) const
{
    mouse_assert(id < models_.size(), "unknown model id");
    return models_[id];
}

unsigned
InferenceService::batchCapacity(const PackedModel &m) const
{
    return cfg_.maxBatch > 0 ? std::min(cfg_.maxBatch, m.slots())
                             : m.slots();
}

RequestId
InferenceService::submit(ModelId model, Input in)
{
    mouse_assert(model < models_.size(), "unknown model id");
    const PackedModel &m = models_[model];
    mouse_assert(m.validInput(in),
                 "request payload rejected at admission");
    PendingReq req;
    req.id = nextRequest_++;
    req.in = std::move(in);
    req.submitted = std::chrono::steady_clock::now();
    results_.emplace_back();
    open_[model].push_back(std::move(req));
    if (metrics_ != nullptr) {
        metrics_->recordSubmit();
    }
    if (open_[model].size() >= batchCapacity(m)) {
        cutBatch(model);
    }
    return nextRequest_ - 1;
}

void
InferenceService::cutBatch(ModelId model)
{
    if (open_[model].empty()) {
        return;
    }
    Batch b;
    b.id = static_cast<std::uint64_t>(ready_.size());
    b.model = model;
    b.reqs = std::move(open_[model]);
    open_[model].clear();
    ready_.push_back(std::move(b));
    records_.emplace_back();
    traces_.emplace_back(
        tracing_ ? std::make_unique<obs::TraceSink>() : nullptr);
    if (tracing_) {
        const Batch &cut = ready_.back();
        formationTrace_.instant(
            "batch_cut", "serve",
            hostSince(std::chrono::steady_clock::now()),
            "{\"batch\":" + std::to_string(cut.id) +
                ",\"model\":\"" +
                jsonEscape(models_[model].name()) +
                "\",\"size\":" + std::to_string(cut.reqs.size()) +
                "}");
    }
}

void
InferenceService::flush()
{
    // Partial batches cut in model-id order: deterministic given
    // the submission sequence.
    for (ModelId m = 0; m < models_.size(); ++m) {
        cutBatch(m);
    }
}

std::size_t
InferenceService::pendingRequests() const
{
    std::size_t n = 0;
    for (const auto &q : open_) {
        n += q.size();
    }
    for (std::size_t i = runCursor_; i < ready_.size(); ++i) {
        n += ready_[i].reqs.size();
    }
    return n;
}

void
InferenceService::runBatch(Engine &eng, unsigned engineIdx,
                           const Batch &batch)
{
    const PackedModel &m = models_[batch.model];
    // Span sink for this batch (null when tracing is off); only the
    // worker that claimed the batch writes it, like records_.
    obs::TraceSink *ts = traces_[batch.id].get();
    const double t0 =
        ts != nullptr
            ? hostSince(std::chrono::steady_clock::now())
            : 0.0;
    if (eng.loaded != static_cast<std::int64_t>(batch.model)) {
        eng.acc.loadProgram(m.program());
        m.deployWeights(eng.acc.grid());
        eng.loaded = static_cast<std::int64_t>(batch.model);
    } else {
        // Same deployed program: just rewind the PC protocol.
        eng.acc.controller().reset();
    }
    const double tDeploy =
        ts != nullptr
            ? hostSince(std::chrono::steady_clock::now())
            : 0.0;
    const unsigned size = static_cast<unsigned>(batch.reqs.size());
    for (unsigned s = 0; s < size; ++s) {
        m.packInput(eng.acc.grid(), s, batch.reqs[s].in);
    }
    for (unsigned s = size; s < m.slots(); ++s) {
        m.clearInput(eng.acc.grid(), s);
    }
    const double tPack =
        ts != nullptr
            ? hostSince(std::chrono::steady_clock::now())
            : 0.0;

    RunRequestBuilder rb;
    rb.label(m.name());
    if (cfg_.harvested) {
        rb.harvested(cfg_.harvest);
    }
    const RequestHandle h = eng.acc.submit(rb.build());
    RunResult res = eng.acc.wait(h);
    mouse_assert(res.ok(), "serve batch run rejected");
    const double tSim =
        ts != nullptr
            ? hostSince(std::chrono::steady_clock::now())
            : 0.0;

    BatchRecord rec;
    rec.model = batch.model;
    rec.size = size;
    rec.slots = m.slots();
    rec.simSeconds = res.stats.totalTime();
    rec.energy = res.stats.totalEnergy();
    records_[batch.id] = rec;

    const auto now = std::chrono::steady_clock::now();
    for (unsigned s = 0; s < size; ++s) {
        const PendingReq &req = batch.reqs[s];
        ClassifyResult r;
        r.id = req.id;
        r.model = batch.model;
        r.predicted = m.readPrediction(eng.acc.grid(), s);
        r.batchId = batch.id;
        r.batchSize = size;
        r.slot = s;
        r.simSeconds = rec.simSeconds;
        r.energy = rec.energy / size;
        r.hostSeconds =
            std::chrono::duration<double>(now - req.submitted)
                .count();
        results_[req.id] = std::move(r);
    }

    if (metrics_ != nullptr) {
        metrics_->recordBatch(size, m.slots(), rec.simSeconds,
                              rec.energy, res.stats.chargingTime,
                              res.stats.outages);
        for (unsigned s = 0; s < size; ++s) {
            metrics_->recordDone(
                results_[batch.reqs[s].id].hostSeconds,
                rec.simSeconds);
        }
    }
    if (ts != nullptr) {
        const double tEnd =
            hostSince(std::chrono::steady_clock::now());
        const std::uint32_t pool = 0;
        const std::string bArgs =
            "{\"batch\":" + std::to_string(batch.id) +
            ",\"model\":\"" + jsonEscape(m.name()) +
            "\",\"size\":" + std::to_string(size) + "}";
        ts->complete("batch", "serve", t0, tEnd - t0, bArgs, pool,
                     engineIdx);
        ts->complete("deploy", "serve", t0, tDeploy - t0, "", pool,
                     engineIdx);
        ts->complete("pack", "serve", tDeploy, tPack - tDeploy, "",
                     pool, engineIdx);
        ts->complete("sim", "serve", tPack, tSim - tPack,
                     "{\"sim_s\":" + num(rec.simSeconds) + "}",
                     pool, engineIdx);
        ts->complete("readout", "serve", tSim, tEnd - tSim, "",
                     pool, engineIdx);
        // Brownout attribution: the share of the pass's simulated
        // time spent powered off, projected onto the host-time sim
        // span so Perfetto shows queueing, compute and outage loss
        // side by side on one timeline.
        if (res.stats.chargingTime > 0.0 &&
            res.stats.totalTime() > 0.0) {
            const double frac =
                res.stats.chargingTime / res.stats.totalTime();
            ts->complete(
                "outage_stall", "stall", tPack,
                (tSim - tPack) * frac,
                "{\"outages\":" +
                    std::to_string(res.stats.outages) +
                    ",\"charging_s\":" +
                    num(res.stats.chargingTime) + "}",
                pool, engineIdx);
        }
        // Per-request rows: pid = 1 + batch id, tid = slot.
        const std::uint32_t row =
            1 + static_cast<std::uint32_t>(batch.id);
        for (unsigned s = 0; s < size; ++s) {
            const PendingReq &req = batch.reqs[s];
            const ClassifyResult &r = results_[req.id];
            const double tSubmit = hostSince(req.submitted);
            ts->complete(
                "request", "serve", tSubmit, r.hostSeconds,
                "{\"req\":" + std::to_string(req.id) +
                    ",\"batch\":" + std::to_string(batch.id) +
                    ",\"slot\":" + std::to_string(s) +
                    ",\"predicted\":" +
                    std::to_string(r.predicted) + "}",
                row, s);
            ts->complete("queued", "serve", tSubmit, t0 - tSubmit,
                         "", row, s);
        }
    }
}

double
InferenceService::drain()
{
    flush();
    const auto t0 = std::chrono::steady_clock::now();
    const std::size_t first = runCursor_;
    const std::size_t count = ready_.size() - first;
    if (count == 0) {
        return 0.0;
    }
    while (engines_.size() < cfg_.workers) {
        engines_.push_back(std::make_unique<Engine>(cfg_.engine));
    }
    const unsigned nThreads = static_cast<unsigned>(
        std::min<std::size_t>(cfg_.workers, count));
    // Engines claim batches from a shared cursor; every written cell
    // (records_[batch.id], results_[req.id]) is distinct per batch,
    // so the fan-out needs no locks, and determinism is untouched
    // because identical engines compute identical records for a
    // batch regardless of which one claims it.
    std::atomic<std::size_t> next{first};
    std::atomic<std::size_t> done{0};
    auto work = [&](unsigned engineIdx) {
        if (metrics_ != nullptr) {
            metrics_->workerActive(+1);
        }
        for (;;) {
            const std::size_t i =
                next.fetch_add(1, std::memory_order_relaxed);
            if (i >= ready_.size()) {
                break;
            }
            runBatch(*engines_[engineIdx], engineIdx, ready_[i]);
            const std::size_t n =
                done.fetch_add(1, std::memory_order_relaxed) + 1;
            if (progress_) {
                const std::lock_guard<std::mutex> lock(
                    progressMutex_);
                progress_(n, count);
            }
        }
        if (metrics_ != nullptr) {
            metrics_->workerActive(-1);
        }
    };
    if (nThreads == 1) {
        work(0);
    } else {
        std::vector<std::thread> pool;
        pool.reserve(nThreads);
        for (unsigned t = 0; t < nThreads; ++t) {
            pool.emplace_back(work, t);
        }
        for (auto &th : pool) {
            th.join();
        }
    }
    for (std::size_t i = first; i < ready_.size(); ++i) {
        completedRequests_ += ready_[i].reqs.size();
    }
    runCursor_ = ready_.size();
    const double secs =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - t0)
            .count();
    drainSeconds_ += secs;
    return secs;
}

obs::TraceSink
InferenceService::requestTrace() const
{
    obs::TraceSink out;
    out.appendFrom(formationTrace_);
    // Batch-id order, matching the stats() fold discipline; sinks
    // already carry their own pid/tid track layout, so appendFrom()
    // (not mergeFrom()) keeps the rows apart.
    for (const auto &t : traces_) {
        if (t != nullptr) {
            out.appendFrom(*t);
        }
    }
    return out;
}

const ClassifyResult &
InferenceService::result(RequestId id) const
{
    mouse_assert(id < results_.size(), "unknown request id");
    const ClassifyResult &r = results_[id];
    mouse_assert(r.batchSize > 0,
                 "request not completed yet (drain() first)");
    return r;
}

std::shared_ptr<obs::StatRegistry>
InferenceService::stats() const
{
    auto reg = std::make_shared<obs::StatRegistry>();
    obs::Counter &batches = reg->counter(
        "serve.batches", "gate passes executed");
    obs::Counter &requests = reg->counter(
        "serve.requests", "classification requests completed");
    obs::Counter &idle = reg->counter(
        "serve.slots_idle", "column slots zero-filled (unused)");
    obs::Scalar &simTime = reg->scalar(
        "serve.sim_time_s", obs::MergePolicy::kSum,
        "simulated array time across passes");
    obs::Scalar &energy = reg->scalar(
        "serve.energy_j", obs::MergePolicy::kSum,
        "array energy across passes");
    obs::Histogram &batchSize = reg->histogram(
        "serve.batch_size", "requests packed per pass");
    obs::Histogram &simLatency = reg->histogram(
        "serve.request.sim_latency_s",
        "per-request simulated pass latency");
    // Fold strictly in batch-id order: the registry is then a pure
    // function of the submission sequence, whatever worker count
    // executed the batches.
    for (std::size_t i = 0; i < runCursor_; ++i) {
        const BatchRecord &rec = records_[i];
        batches.increment();
        requests += rec.size;
        idle += rec.slots - rec.size;
        simTime.observe(rec.simSeconds);
        energy.observe(rec.energy);
        batchSize.sample(static_cast<double>(rec.size));
        simLatency.sample(rec.simSeconds, rec.size);
        reg->counter("serve.model." + models_[rec.model].name() +
                         ".requests",
                     "requests served by this model") += rec.size;
    }
    reg->formula(
        "serve.sim_throughput_per_s",
        [](const obs::StatRegistry &r) {
            const double t = r.scalarValue("serve.sim_time_s");
            return t > 0.0 ? r.counterValue("serve.requests") / t
                           : 0.0;
        },
        "classifications per simulated array second");
    return reg;
}

std::string
InferenceService::reportJson() const
{
    std::vector<double> host;
    std::vector<double> sim;
    host.reserve(completedRequests_);
    sim.reserve(completedRequests_);
    double simTime = 0.0;
    double energy = 0.0;
    std::uint64_t requests = 0;
    std::vector<std::uint64_t> perModel(models_.size(), 0);
    for (std::size_t i = 0; i < runCursor_; ++i) {
        const BatchRecord &rec = records_[i];
        requests += rec.size;
        simTime += rec.simSeconds;
        energy += rec.energy;
        perModel[rec.model] += rec.size;
        for (const PendingReq &req : ready_[i].reqs) {
            host.push_back(results_[req.id].hostSeconds);
            sim.push_back(results_[req.id].simSeconds);
        }
    }
    const double throughput =
        drainSeconds_ > 0.0
            ? static_cast<double>(requests) / drainSeconds_
            : 0.0;

    std::string j = "{";
    j += "\"schema\":" + std::to_string(kResultSchemaVersion);
    j += ",\"serve_report\":{";
    j += "\"requests\":" + std::to_string(requests);
    j += ",\"batches\":" + std::to_string(runCursor_);
    j += ",\"workers\":" + std::to_string(cfg_.workers);
    j += ",\"drain_seconds\":" + num(drainSeconds_);
    j += ",\"throughput_per_s\":" + num(throughput);
    j += ",\"host_latency_s\":{";
    j += "\"p50\":" + num(percentileOf(host, 0.50));
    j += ",\"p99\":" + num(percentileOf(host, 0.99));
    j += "},\"sim\":{";
    j += "\"time_s\":" + num(simTime);
    j += ",\"energy_j\":" + num(energy);
    j += ",\"latency_s\":{";
    j += "\"p50\":" + num(percentileOf(sim, 0.50));
    j += ",\"p99\":" + num(percentileOf(sim, 0.99));
    j += "}},\"models\":[";
    for (std::size_t m = 0; m < models_.size(); ++m) {
        if (m > 0) {
            j += ",";
        }
        j += "{\"name\":\"" + jsonEscape(models_[m].name()) + "\"";
        j += ",\"slots\":" + std::to_string(models_[m].slots());
        j += ",\"cols_per_request\":" +
             std::to_string(models_[m].colsPerRequest());
        j += ",\"requests\":" + std::to_string(perModel[m]);
        j += "}";
    }
    j += "]}";
    const auto reg = stats();
    if (!reg->empty()) {
        j += ",\"stat_registry\":" + reg->toJson();
    }
    j += "}";
    return j;
}

} // namespace mouse::serve
