/**
 * @file
 * Servable models: classifiers compiled for column-slot batching.
 *
 * The serving layer exploits the word-parallel execution model's
 * per-column independence (docs/ARCHITECTURE.md): every column of a
 * gate pass computes the same kernel on its own data, so one pass
 * over W columns can carry W/colsPerRequest *independent* inference
 * requests.  A PackedModel is a classifier compiled once against an
 * engine geometry with its per-request column block replicated into
 * every slot; the service packs one admitted request per slot,
 * zero-fills the rest, runs a single pass, and reads each slot's
 * prediction back.
 *
 * Two classifier families are servable:
 *  - BNN argmax: one BnnLayer whose outputs are the classes.  Each
 *    slot spans numClasses columns; every column XNOR-popcounts the
 *    slot's input against one class's weights
 *    (buildSmallBnnNeuronKernel) and the host takes the argmax of
 *    the per-class popcounts.
 *  - Binary SVM: one support vector per column
 *    (buildSmallSvmKernel); each slot spans numSupportVectors
 *    columns and the host finishes sign(sum coef_s * (sv_s . x)^2 +
 *    bias) from the truncated squares the array leaves behind.
 */

#ifndef MOUSE_SERVE_MODELS_HH
#define MOUSE_SERVE_MODELS_HH

#include <string>
#include <vector>

#include "arch/tile_grid.hh"
#include "compile/program.hh"
#include "logic/gate_library.hh"
#include "ml/bnn.hh"
#include "ml/svm.hh"

namespace mouse::serve
{

/** Index of a registered model within its InferenceService. */
using ModelId = std::uint32_t;

/**
 * One request's payload.  BNN models expect layer.inputs bits (each
 * element 0/1); SVM models expect dim features of inputBits bits.
 */
using Input = std::vector<std::uint8_t>;

/** A BNN argmax classifier offered for serving. */
struct BnnServeModel
{
    std::string name;
    /** Single layer; outputs = classes, fired by popcount argmax. */
    BnnLayer layer;
};

/** A binary (two-class) polynomial-kernel SVM offered for serving. */
struct SvmServeModel
{
    std::string name;
    BinarySvm svm;
    /** Elements per feature vector. */
    unsigned dim = 0;
    /** Feature precision in bits (<= 8). */
    unsigned inputBits = 4;
    /** Dot-product accumulator width; squares carry 2x this. */
    unsigned accBits = 12;
};

/**
 * A classifier compiled against one engine geometry, with weights
 * replicated across all column slots.  Immutable after compile, so
 * one PackedModel is safely shared by every engine of a service.
 */
class PackedModel
{
  public:
    static PackedModel compileBnn(const GateLibrary &lib,
                                  const ArrayConfig &cfg, ModelId id,
                                  BnnServeModel m);
    static PackedModel compileSvm(const GateLibrary &lib,
                                  const ArrayConfig &cfg, ModelId id,
                                  SvmServeModel m);

    ModelId id() const { return id_; }
    const std::string &name() const { return name_; }
    const Program &program() const { return program_; }

    /** Columns one request occupies (classes / support vectors). */
    unsigned colsPerRequest() const { return colsPerRequest_; }
    /** Independent requests one gate pass carries. */
    unsigned slots() const { return slots_; }
    /** Elements a request payload must have. */
    std::size_t inputSize() const { return inputSize_; }
    /** Width of one payload element (1 for BNN bits). */
    unsigned
    elementBits() const
    {
        return kind_ == Kind::kBnn ? 1 : inputBits_;
    }

    /** Write the replicated weights/thresholds into every slot.
     *  Once per engine (per model switch); inputs are packed per
     *  batch. */
    void deployWeights(TileGrid &grid) const;

    /** Pack one request's payload into slot @p slot. */
    void packInput(TileGrid &grid, unsigned slot,
                   const Input &in) const;

    /** Zero-fill slot @p slot's input rows.  Every unused slot is
     *  cleared each batch so a pass's gate energies are a pure
     *  function of the batch contents — engine history cannot leak
     *  into the accounting. */
    void clearInput(TileGrid &grid, unsigned slot) const;

    /** Read slot @p slot's class prediction after a pass. */
    int readPrediction(const TileGrid &grid, unsigned slot) const;

    /** Validate a payload (size and element range). */
    bool validInput(const Input &in) const;

  private:
    enum class Kind
    {
        kBnn,
        kSvm,
    };

    PackedModel() = default;

    ModelId id_ = 0;
    std::string name_;
    Kind kind_ = Kind::kBnn;
    Program program_;
    unsigned colsPerRequest_ = 0;
    unsigned slots_ = 0;
    std::size_t inputSize_ = 0;

    // BNN layout/readback.
    BnnLayer layer_;
    unsigned threshBits_ = 0;
    std::vector<RowAddr> countRows_;

    // SVM layout/readback.
    BinarySvm svm_;
    unsigned inputBits_ = 0;
    RowAddr xBase_ = 0;
    std::vector<RowAddr> squareRows_;
};

} // namespace mouse::serve

#endif // MOUSE_SERVE_MODELS_HH
