/**
 * @file
 * One MOUSE tile: a 1024x1024 STT/SHE MRAM array with in-array logic
 * (paper Section II-C, Figure 5).
 *
 * The tile is the bit-exact functional model.  Every stored bit is an
 * MTJ state; logic instructions are executed *physically*: the gate
 * current depends on the actual input MTJ resistances through the
 * solved operating voltage, and the output MTJ switches iff that
 * current exceeds the critical current — with the direction
 * constraint that makes every operation idempotent.
 *
 * Execution is word-parallel: the current depends only on (packed
 * input combo, actual output state, operand row span), so each
 * 64-column word is evaluated by deriving per-combo membership masks
 * from the input row planes with bitwise ops and folding popcounts
 * against a ≤16-entry operating table (GateOpTable).  The original
 * per-column scalar model is retained behind setScalarOracle() as
 * the differential-testing oracle; see docs/ARCHITECTURE.md
 * ("Functional fast path").
 *
 * Interrupted execution is modelled explicitly: an instruction cycle
 * of length cycleTime carries its current pulse in the first
 * pulseTime seconds; an interrupt before the pulse completes leaves
 * all output MTJs unswitched, an interrupt after it behaves like a
 * completed operation whose bookkeeping was lost.  Tests use this to
 * prove the paper's Table I for every gate and input combination.
 */

#ifndef MOUSE_ARCH_TILE_HH
#define MOUSE_ARCH_TILE_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "logic/gate_library.hh"

namespace mouse
{

/** Set of active (latched) columns of the array. */
class ColumnSet
{
  public:
    explicit ColumnSet(unsigned num_cols = 1024)
        : words_((num_cols + 63) / 64, 0), numCols_(num_cols)
    {}

    unsigned size() const { return numCols_; }

    void
    clear()
    {
        for (auto &w : words_) {
            w = 0;
        }
        count_ = 0;
    }

    void
    add(ColAddr col)
    {
        if (!test(col)) {
            words_[col >> 6] |= (1ULL << (col & 63));
            ++count_;
        }
    }

    void
    addRange(ColAddr lo, ColAddr hi)
    {
        for (ColAddr c = lo; c <= hi; ++c) {
            add(c);
        }
    }

    bool
    test(ColAddr col) const
    {
        return (words_[col >> 6] >> (col & 63)) & 1;
    }

    /** Number of currently active columns. */
    unsigned count() const { return count_; }

    /** Number of 64-column machine words backing the set. */
    unsigned
    numWords() const
    {
        return static_cast<unsigned>(words_.size());
    }

    /** Raw 64-column membership word @p w (bit c = column 64w+c). */
    std::uint64_t word(unsigned w) const { return words_[w]; }

    /**
     * Visit active columns in ascending order without materializing
     * a vector — the hot-path replacement for columns().
     */
    template <typename Fn>
    void
    forEachColumn(Fn &&fn) const
    {
        for (unsigned w = 0; w < words_.size(); ++w) {
            std::uint64_t bits = words_[w];
            while (bits) {
                const int b = __builtin_ctzll(bits);
                fn(static_cast<ColAddr>(w * 64 +
                                        static_cast<unsigned>(b)));
                bits &= bits - 1;
            }
        }
    }

    /** Enumerate active columns in ascending order.  Allocates; kept
     *  for tests and debug dumps only — hot paths use word()/
     *  forEachColumn(). */
    std::vector<ColAddr> columns() const;

  private:
    std::vector<std::uint64_t> words_;
    unsigned numCols_;
    unsigned count_ = 0;
};

/** Outcome summary of a column-parallel gate execution. */
struct GateExecResult
{
    /** Number of active columns the gate ran in. */
    unsigned columns = 0;
    /** How many output MTJs actually switched. */
    unsigned switched = 0;
    /** Device (array) energy summed over columns. */
    Joules deviceEnergy = 0.0;
    /** True iff the pulse completed (not interrupted early). */
    bool completed = true;
};

/** A single MOUSE memory/compute tile. */
class Tile
{
  public:
    /**
     * @param rows Number of word lines (default 1024).
     * @param cols Number of bit-line pairs (default 1024).
     */
    explicit Tile(unsigned rows = 1024, unsigned cols = 1024);

    unsigned numRows() const { return rows_; }
    unsigned numCols() const { return cols_; }

    Bit bit(RowAddr row, ColAddr col) const;
    void setBit(RowAddr row, ColAddr col, Bit value);

    /**
     * Execute one gate in every active column.
     *
     * @param lib Solved gate library (device physics + voltages).
     * @param g Gate type; must be feasible in @p lib.
     * @param in_rows Input row addresses (first numInputs used);
     *        all inputs must share a parity opposite to @p out_row.
     * @param out_row Output row address.
     * @param active Columns to operate in.
     * @param cycle_fraction How much of the instruction cycle elapsed
     *        before an interrupt; 1.0 means uninterrupted.  The
     *        current pulse occupies the first pulseTime/cycleTime of
     *        the cycle.
     */
    GateExecResult executeGate(const GateLibrary &lib, GateType g,
                               const std::array<RowAddr, 3> &in_rows,
                               RowAddr out_row, const ColumnSet &active,
                               double cycle_fraction = 1.0);

    /**
     * Preset (write) @p value into @p row at every active column.
     * Interruption semantics mirror executeGate: a write pulse that
     * does not complete leaves the previous contents.
     *
     * @return Device energy consumed.
     */
    Joules presetRow(const GateLibrary &lib, RowAddr row, Bit value,
                     const ColumnSet &active,
                     double cycle_fraction = 1.0);

    /** Read a full row into @p out (all columns). */
    Joules readRow(const GateLibrary &lib, RowAddr row,
                   std::vector<Bit> &out) const;

    /**
     * Write a full row from @p data (all columns).  A write that is
     * interrupted mid-pulse leaves the row unchanged; as the paper
     * notes, repeating a write is simply writing the value twice.
     */
    Joules writeRow(const GateLibrary &lib, RowAddr row,
                    const std::vector<Bit> &data,
                    double cycle_fraction = 1.0);

    // -- Column packing (host-side deployment/readback) -------------
    //
    // The serving layer packs one independent inference per column
    // slot (docs/SERVING.md); these are its entry points.  Like
    // setBit()/bit() they model the pre-deployment host interface,
    // not priced array instructions.

    /**
     * Write @p bits down one column: bit j lands at row
     * base + j*stride, column @p col.
     */
    void setColumnBits(RowAddr base, unsigned stride, ColAddr col,
                       const std::vector<Bit> &bits);

    /**
     * Gather the bits of one column at the given rows into a word
     * (rows[j] supplies bit j).  @pre rows.size() <= 64.
     */
    std::uint64_t columnWord(const std::vector<RowAddr> &rows,
                             ColAddr col) const;

    /** Snapshot all bits (row-major) for equality checks in tests. */
    std::vector<Bit> snapshot() const;

    /**
     * Route executeGate() through the retained per-column scalar
     * model instead of the word-parallel fast path.  The scalar path
     * is the differential-testing oracle; both must produce
     * bit-identical MTJ state.  Global and sticky — flip it only
     * around whole runs, never concurrently with execution that
     * expects the other mode.
     */
    static void setScalarOracle(bool enabled);
    static bool scalarOracle();

  private:
    /** Word index of the first word of @p row (rows are word-aligned
     *  so row planes can be combined with bitwise ops). */
    std::size_t
    rowBase(RowAddr row) const
    {
        return static_cast<std::size_t>(row) * wordsPerRow_;
    }

    GateExecResult executeGateScalar(const GateLibrary &lib,
                                     const SolvedGate &solved,
                                     GateType g,
                                     const std::array<RowAddr, 3> &in_rows,
                                     RowAddr out_row,
                                     const ColumnSet &active,
                                     unsigned span, bool pulse_completed,
                                     double energy_fraction);

    /** Active-column word @p w clipped to this tile's width, with an
     *  out-of-bounds assert matching the scalar path's. */
    std::uint64_t activeWord(const ColumnSet &active, unsigned w) const;

    unsigned rows_;
    unsigned cols_;
    /** 64-bit words per row (rows padded to a word boundary). */
    unsigned wordsPerRow_;
    /** Bit-packed MTJ states, row-major, each row word-aligned. */
    std::vector<std::uint64_t> bits_;
};

} // namespace mouse

#endif // MOUSE_ARCH_TILE_HH
