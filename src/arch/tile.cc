#include "tile.hh"

#include "common/logging.hh"
#include "device/network.hh"

namespace mouse
{

std::vector<ColAddr>
ColumnSet::columns() const
{
    std::vector<ColAddr> out;
    out.reserve(count_);
    for (unsigned w = 0; w < words_.size(); ++w) {
        std::uint64_t bits = words_[w];
        while (bits) {
            const int b = __builtin_ctzll(bits);
            out.push_back(static_cast<ColAddr>(w * 64 + b));
            bits &= bits - 1;
        }
    }
    return out;
}

Tile::Tile(unsigned rows, unsigned cols)
    : rows_(rows), cols_(cols),
      bits_((static_cast<std::size_t>(rows) * cols + 63) / 64, 0)
{
    mouse_assert(rows_ > 0 && cols_ > 0, "empty tile");
    mouse_assert(rows_ <= 1024 && cols_ <= 1024,
                 "tile exceeds 10-bit address space");
}

Bit
Tile::bit(RowAddr row, ColAddr col) const
{
    mouse_assert(row < rows_ && col < cols_, "tile address OOB");
    const std::size_t i = index(row, col);
    return static_cast<Bit>((bits_[i >> 6] >> (i & 63)) & 1);
}

void
Tile::setBit(RowAddr row, ColAddr col, Bit value)
{
    mouse_assert(row < rows_ && col < cols_, "tile address OOB");
    const std::size_t i = index(row, col);
    if (value) {
        bits_[i >> 6] |= (1ULL << (i & 63));
    } else {
        bits_[i >> 6] &= ~(1ULL << (i & 63));
    }
}

GateExecResult
Tile::executeGate(const GateLibrary &lib, GateType g,
                  const std::array<RowAddr, 3> &in_rows, RowAddr out_row,
                  const ColumnSet &active, double cycle_fraction)
{
    const SolvedGate &solved = lib.gate(g);
    mouse_assert(solved.feasible, "gate not feasible for this tech");
    const int n = gateNumInputs(g);
    const DeviceConfig &cfg = lib.config();

    // Parity rule (Section II-C): all inputs connect to one bitline
    // (same row parity) and the output to the other.
    const unsigned out_parity = out_row & 1;
    for (int i = 0; i < n; ++i) {
        mouse_assert(in_rows[static_cast<std::size_t>(i)] < rows_,
                     "input row OOB");
        mouse_assert((in_rows[static_cast<std::size_t>(i)] & 1) !=
                         out_parity,
                     "logic inputs must have opposite parity to output");
    }
    mouse_assert(out_row < rows_, "output row OOB");

    // The current pulse occupies the head of the cycle; an interrupt
    // that lands inside the pulse prevents every switch.
    const double pulse_fraction = solved.pulseTime / cfg.cycleTime;
    const bool pulse_completed = cycle_fraction >= pulse_fraction;
    const double energy_fraction =
        pulse_completed ? 1.0 : cycle_fraction / pulse_fraction;

    GateExecResult result;
    result.columns = active.count();
    result.completed = pulse_completed;

    const Bit target = static_cast<Bit>(!gatePreset(g));
    // Logic-line span of this execution (parasitic wire length).
    RowAddr row_lo = out_row;
    RowAddr row_hi = out_row;
    for (int i = 0; i < n; ++i) {
        row_lo = std::min(row_lo,
                          in_rows[static_cast<std::size_t>(i)]);
        row_hi = std::max(row_hi,
                          in_rows[static_cast<std::size_t>(i)]);
    }
    const unsigned span = static_cast<unsigned>(row_hi - row_lo);
    mouse_assert(span <= solved.maxRowSpan ||
                     cfg.wireResistancePerCell == 0.0,
                 "operand span exceeds the solved operating point");
    std::vector<MtjState> in_states(static_cast<std::size_t>(n));
    for (ColAddr col : active.columns()) {
        unsigned combo = 0;
        for (int i = 0; i < n; ++i) {
            const Bit b = bit(in_rows[static_cast<std::size_t>(i)], col);
            in_states[static_cast<std::size_t>(i)] = stateFromBit(b);
            combo |= static_cast<unsigned>(b) << i;
        }
        // Physical model: the current depends on the *actual* output
        // state (not the nominal preset) so un-preset outputs behave
        // honestly.
        const Bit out_actual = bit(out_row, col);
        const Amperes current = gateOutputCurrent(
            cfg, solved.voltage, in_states,
            stateFromBit(out_actual), span);
        result.deviceEnergy +=
            solved.voltage * current * solved.pulseTime * energy_fraction;
        if (pulse_completed && current >= cfg.mtj.switchingCurrent) {
            // Directionality: the pulse can only drive the output
            // toward the gate's target value; if it is already there
            // the state cannot revert (idempotency).
            if (out_actual != target) {
                setBit(out_row, col, target);
                ++result.switched;
            }
        }
    }
    return result;
}

Joules
Tile::presetRow(const GateLibrary &lib, RowAddr row, Bit value,
                const ColumnSet &active, double cycle_fraction)
{
    mouse_assert(row < rows_, "preset row OOB");
    const WriteOp &w = lib.writeOp();
    const double pulse_fraction =
        w.pulseTime / lib.config().cycleTime;
    const bool completed = cycle_fraction >= pulse_fraction;
    const double energy_fraction =
        completed ? 1.0 : cycle_fraction / pulse_fraction;

    Joules energy = 0.0;
    for (ColAddr col : active.columns()) {
        energy += w.energy * energy_fraction;
        if (completed) {
            setBit(row, col, value);
        }
    }
    return energy;
}

Joules
Tile::readRow(const GateLibrary &lib, RowAddr row,
              std::vector<Bit> &out) const
{
    mouse_assert(row < rows_, "read row OOB");
    out.resize(cols_);
    for (ColAddr col = 0; col < cols_; ++col) {
        out[col] = bit(row, col);
    }
    return lib.readOp().energy * cols_;
}

Joules
Tile::writeRow(const GateLibrary &lib, RowAddr row,
               const std::vector<Bit> &data, double cycle_fraction)
{
    mouse_assert(row < rows_, "write row OOB");
    mouse_assert(data.size() >= cols_, "row data too small");
    const WriteOp &w = lib.writeOp();
    const double pulse_fraction =
        w.pulseTime / lib.config().cycleTime;
    const bool completed = cycle_fraction >= pulse_fraction;
    const double energy_fraction =
        completed ? 1.0 : cycle_fraction / pulse_fraction;

    if (completed) {
        for (ColAddr col = 0; col < cols_; ++col) {
            setBit(row, col, data[col]);
        }
    }
    return w.energy * cols_ * energy_fraction;
}

std::vector<Bit>
Tile::snapshot() const
{
    std::vector<Bit> out;
    out.reserve(static_cast<std::size_t>(rows_) * cols_);
    for (RowAddr r = 0; r < rows_; ++r) {
        for (ColAddr c = 0; c < cols_; ++c) {
            out.push_back(bit(r, c));
        }
    }
    return out;
}

} // namespace mouse
