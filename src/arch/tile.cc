#include "tile.hh"

#include <algorithm>
#include <atomic>
#include <bit>

#include "common/logging.hh"
#include "device/network.hh"

namespace mouse
{

namespace
{

std::atomic<bool> g_scalar_oracle{false};

} // namespace

void
Tile::setScalarOracle(bool enabled)
{
    g_scalar_oracle.store(enabled, std::memory_order_relaxed);
}

bool
Tile::scalarOracle()
{
    return g_scalar_oracle.load(std::memory_order_relaxed);
}

std::vector<ColAddr>
ColumnSet::columns() const
{
    std::vector<ColAddr> out;
    out.reserve(count_);
    forEachColumn([&out](ColAddr col) { out.push_back(col); });
    return out;
}

Tile::Tile(unsigned rows, unsigned cols)
    : rows_(rows), cols_(cols), wordsPerRow_((cols + 63) / 64),
      bits_(static_cast<std::size_t>(rows) * ((cols + 63) / 64), 0)
{
    mouse_assert(rows_ > 0 && cols_ > 0, "empty tile");
    mouse_assert(rows_ <= 1024 && cols_ <= 1024,
                 "tile exceeds 10-bit address space");
}

Bit
Tile::bit(RowAddr row, ColAddr col) const
{
    mouse_assert(row < rows_ && col < cols_, "tile address OOB");
    return static_cast<Bit>(
        (bits_[rowBase(row) + (col >> 6)] >> (col & 63)) & 1);
}

void
Tile::setBit(RowAddr row, ColAddr col, Bit value)
{
    mouse_assert(row < rows_ && col < cols_, "tile address OOB");
    const std::size_t i = rowBase(row) + (col >> 6);
    if (value) {
        bits_[i] |= (1ULL << (col & 63));
    } else {
        bits_[i] &= ~(1ULL << (col & 63));
    }
}

void
Tile::setColumnBits(RowAddr base, unsigned stride, ColAddr col,
                    const std::vector<Bit> &bits)
{
    for (std::size_t j = 0; j < bits.size(); ++j) {
        setBit(base + static_cast<RowAddr>(j * stride), col,
               bits[j]);
    }
}

std::uint64_t
Tile::columnWord(const std::vector<RowAddr> &rows, ColAddr col) const
{
    mouse_assert(rows.size() <= 64, "columnWord wider than 64 bits");
    std::uint64_t w = 0;
    for (std::size_t j = 0; j < rows.size(); ++j) {
        w |= static_cast<std::uint64_t>(bit(rows[j], col)) << j;
    }
    return w;
}

std::uint64_t
Tile::activeWord(const ColumnSet &active, unsigned w) const
{
    const std::uint64_t raw =
        w < active.numWords() ? active.word(w) : 0;
    const unsigned base = w * 64;
    const std::uint64_t valid = cols_ - base >= 64
                                    ? ~0ULL
                                    : (1ULL << (cols_ - base)) - 1;
    mouse_assert((raw & ~valid) == 0, "tile address OOB");
    return raw & valid;
}

GateExecResult
Tile::executeGate(const GateLibrary &lib, GateType g,
                  const std::array<RowAddr, 3> &in_rows, RowAddr out_row,
                  const ColumnSet &active, double cycle_fraction)
{
    const SolvedGate &solved = lib.gate(g);
    mouse_assert(solved.feasible, "gate not feasible for this tech");
    const int n = gateNumInputs(g);
    const DeviceConfig &cfg = lib.config();

    // Parity rule (Section II-C): all inputs connect to one bitline
    // (same row parity) and the output to the other.
    const unsigned out_parity = out_row & 1;
    for (int i = 0; i < n; ++i) {
        mouse_assert(in_rows[static_cast<std::size_t>(i)] < rows_,
                     "input row OOB");
        mouse_assert((in_rows[static_cast<std::size_t>(i)] & 1) !=
                         out_parity,
                     "logic inputs must have opposite parity to output");
    }
    mouse_assert(out_row < rows_, "output row OOB");

    // The current pulse occupies the head of the cycle; an interrupt
    // that lands inside the pulse prevents every switch.
    const double pulse_fraction = solved.pulseTime / cfg.cycleTime;
    const bool pulse_completed = cycle_fraction >= pulse_fraction;
    const double energy_fraction =
        pulse_completed ? 1.0 : cycle_fraction / pulse_fraction;

    // Logic-line span of this execution (parasitic wire length).
    RowAddr row_lo = out_row;
    RowAddr row_hi = out_row;
    for (int i = 0; i < n; ++i) {
        row_lo = std::min(row_lo,
                          in_rows[static_cast<std::size_t>(i)]);
        row_hi = std::max(row_hi,
                          in_rows[static_cast<std::size_t>(i)]);
    }
    const unsigned span = static_cast<unsigned>(row_hi - row_lo);
    mouse_assert(span <= solved.maxRowSpan ||
                     cfg.wireResistancePerCell == 0.0,
                 "operand span exceeds the solved operating point");

    if (scalarOracle()) {
        return executeGateScalar(lib, solved, g, in_rows, out_row,
                                 active, span, pulse_completed,
                                 energy_fraction);
    }

    // Word-parallel fast path: the current depends only on (packed
    // input combo, actual output state, span), so fold 64 columns at
    // a time against the precomputed operating table.  With ideal
    // wires the logic-line term is identically zero and the cached
    // span-0 table is bit-exact at any span.
    const bool span_dependent =
        cfg.wireResistancePerCell > 0.0 && span > 0;
    GateOpTable local;
    const GateOpTable *tbl;
    if (span_dependent) {
        local = lib.opTableAtSpan(g, span);
        tbl = &local;
    } else {
        tbl = &lib.opTable(g);
    }

    GateExecResult result;
    result.columns = active.count();
    result.completed = pulse_completed;

    const Bit preset = gatePreset(g);
    const bool target = !preset;
    const unsigned num_combos = tbl->numCombos;
    // Column populations per (combo, actual output state).
    std::array<std::array<std::uint64_t, 2>, 8> counts{};
    unsigned switched = 0;

    for (unsigned w = 0; w < wordsPerRow_; ++w) {
        const std::uint64_t act = activeWord(active, w);
        if (act == 0) {
            continue;
        }
        // Input row planes: bit c of plane[i] is input i of column c.
        std::array<std::uint64_t, 3> plane{};
        for (int i = 0; i < n; ++i) {
            plane[static_cast<std::size_t>(i)] =
                bits_[rowBase(in_rows[static_cast<std::size_t>(i)]) +
                      w];
        }
        const std::size_t out_idx = rowBase(out_row) + w;
        const std::uint64_t out_w = bits_[out_idx];
        std::uint64_t flip = 0;
        for (unsigned combo = 0; combo < num_combos; ++combo) {
            // Membership mask: active columns whose inputs read
            // exactly this combination.
            std::uint64_t m = act;
            for (int i = 0; i < n; ++i) {
                const std::uint64_t p =
                    plane[static_cast<std::size_t>(i)];
                m &= ((combo >> i) & 1) ? p : ~p;
            }
            if (m == 0) {
                continue;
            }
            // Split by the *actual* output state (bit set = AP) so
            // un-preset outputs draw their honest current.
            const std::uint64_t m_ap = m & out_w;
            const std::uint64_t m_p = m & ~out_w;
            counts[combo][0] +=
                static_cast<std::uint64_t>(std::popcount(m_p));
            counts[combo][1] +=
                static_cast<std::uint64_t>(std::popcount(m_ap));
            // Directionality: only outputs still at the preset state
            // can flip; a switching-level current through an
            // already-switched output cannot revert it (idempotency).
            if (tbl->switches[combo][preset]) {
                flip |= preset ? m_ap : m_p;
            }
        }
        if (pulse_completed && flip != 0) {
            bits_[out_idx] = target ? (out_w | flip) : (out_w & ~flip);
            switched += static_cast<unsigned>(std::popcount(flip));
        }
    }
    // Columns past the tile edge would have tripped the scalar
    // path's bounds assert; keep that contract for oversized sets.
    for (unsigned w = wordsPerRow_; w < active.numWords(); ++w) {
        mouse_assert(active.word(w) == 0, "tile address OOB");
    }

    // Deterministic fixed-order energy fold: one multiply per
    // (combo, out-state) bucket, always in index order, so the total
    // is independent of thread count and schedule.
    for (unsigned combo = 0; combo < num_combos; ++combo) {
        for (unsigned out = 0; out < 2; ++out) {
            if (counts[combo][out] != 0) {
                result.deviceEnergy +=
                    static_cast<double>(counts[combo][out]) *
                    (tbl->pulseEnergy[combo][out] * energy_fraction);
            }
        }
    }
    result.switched = switched;
    return result;
}

GateExecResult
Tile::executeGateScalar(const GateLibrary &lib, const SolvedGate &solved,
                        GateType g,
                        const std::array<RowAddr, 3> &in_rows,
                        RowAddr out_row, const ColumnSet &active,
                        unsigned span, bool pulse_completed,
                        double energy_fraction)
{
    const DeviceConfig &cfg = lib.config();
    const int n = gateNumInputs(g);
    const Bit target = static_cast<Bit>(!gatePreset(g));

    GateExecResult result;
    result.columns = active.count();
    result.completed = pulse_completed;

    std::vector<MtjState> in_states(static_cast<std::size_t>(n));
    active.forEachColumn([&](ColAddr col) {
        unsigned combo = 0;
        for (int i = 0; i < n; ++i) {
            const Bit b = bit(in_rows[static_cast<std::size_t>(i)], col);
            in_states[static_cast<std::size_t>(i)] = stateFromBit(b);
            combo |= static_cast<unsigned>(b) << i;
        }
        // Physical model: the current depends on the *actual* output
        // state (not the nominal preset) so un-preset outputs behave
        // honestly.
        const Bit out_actual = bit(out_row, col);
        const Amperes current = gateOutputCurrent(
            cfg, solved.voltage, in_states,
            stateFromBit(out_actual), span);
        result.deviceEnergy +=
            solved.voltage * current * solved.pulseTime * energy_fraction;
        if (pulse_completed && current >= cfg.mtj.switchingCurrent) {
            // Directionality: the pulse can only drive the output
            // toward the gate's target value; if it is already there
            // the state cannot revert (idempotency).
            if (out_actual != target) {
                setBit(out_row, col, target);
                ++result.switched;
            }
        }
    });
    return result;
}

Joules
Tile::presetRow(const GateLibrary &lib, RowAddr row, Bit value,
                const ColumnSet &active, double cycle_fraction)
{
    mouse_assert(row < rows_, "preset row OOB");
    const WriteOp &w = lib.writeOp();
    const double pulse_fraction =
        w.pulseTime / lib.config().cycleTime;
    const bool completed = cycle_fraction >= pulse_fraction;
    const double energy_fraction =
        completed ? 1.0 : cycle_fraction / pulse_fraction;

    std::uint64_t pulses = 0;
    for (unsigned wi = 0; wi < wordsPerRow_; ++wi) {
        const std::uint64_t act = activeWord(active, wi);
        pulses += static_cast<std::uint64_t>(std::popcount(act));
        if (completed && act != 0) {
            const std::size_t i = rowBase(row) + wi;
            bits_[i] = value ? (bits_[i] | act) : (bits_[i] & ~act);
        }
    }
    for (unsigned wi = wordsPerRow_; wi < active.numWords(); ++wi) {
        mouse_assert(active.word(wi) == 0, "tile address OOB");
    }
    return static_cast<double>(pulses) *
           (w.energy * energy_fraction);
}

Joules
Tile::readRow(const GateLibrary &lib, RowAddr row,
              std::vector<Bit> &out) const
{
    mouse_assert(row < rows_, "read row OOB");
    out.resize(cols_);
    ColAddr col = 0;
    for (unsigned w = 0; w < wordsPerRow_; ++w) {
        std::uint64_t word = bits_[rowBase(row) + w];
        const unsigned limit = std::min(64u, cols_ - col);
        for (unsigned b = 0; b < limit; ++b, ++col) {
            out[col] = static_cast<Bit>(word & 1);
            word >>= 1;
        }
    }
    return lib.readOp().energy * cols_;
}

Joules
Tile::writeRow(const GateLibrary &lib, RowAddr row,
               const std::vector<Bit> &data, double cycle_fraction)
{
    mouse_assert(row < rows_, "write row OOB");
    mouse_assert(data.size() >= cols_, "row data too small");
    const WriteOp &w = lib.writeOp();
    const double pulse_fraction =
        w.pulseTime / lib.config().cycleTime;
    const bool completed = cycle_fraction >= pulse_fraction;
    const double energy_fraction =
        completed ? 1.0 : cycle_fraction / pulse_fraction;

    if (completed) {
        ColAddr col = 0;
        for (unsigned wi = 0; wi < wordsPerRow_; ++wi) {
            std::uint64_t word = 0;
            const unsigned limit = std::min(64u, cols_ - col);
            for (unsigned b = 0; b < limit; ++b, ++col) {
                word |= static_cast<std::uint64_t>(data[col] & 1) << b;
            }
            bits_[rowBase(row) + wi] = word;
        }
    }
    return w.energy * cols_ * energy_fraction;
}

std::vector<Bit>
Tile::snapshot() const
{
    std::vector<Bit> out;
    out.reserve(static_cast<std::size_t>(rows_) * cols_);
    for (RowAddr r = 0; r < rows_; ++r) {
        for (ColAddr c = 0; c < cols_; ++c) {
            out.push_back(bit(r, c));
        }
    }
    return out;
}

} // namespace mouse
