/**
 * @file
 * The MOUSE tile grid: data tiles, the broadcast column-activation
 * latch, the 128 B transfer buffer, and the instruction store.
 *
 * Volatility model (paper Section IV-A):
 *  - Tile contents are MTJs: non-volatile, survive power loss.
 *  - The column-activation latches are peripheral CMOS: *volatile*,
 *    cleared by an outage; the controller re-issues the last
 *    Activate Columns instruction(s) on restart.
 *  - The 128 B row buffer is itself a small MRAM row (the paper
 *    allots it alongside the non-volatile PC registers); modelling
 *    it volatile would break the idempotent-replay argument for
 *    READ/WRITE pairs, so it persists.
 */

#ifndef MOUSE_ARCH_TILE_GRID_HH
#define MOUSE_ARCH_TILE_GRID_HH

#include <memory>
#include <vector>

#include "arch/tile.hh"
#include "isa/instruction.hh"
#include "obs/stat_registry.hh"

namespace mouse
{

/** Geometry of the accelerator's memory arrays. */
struct ArrayConfig
{
    unsigned tileRows = 1024;
    unsigned tileCols = 1024;
    unsigned numDataTiles = 4;
    unsigned numInstructionTiles = 1;

    /** Bits stored by one tile. */
    std::size_t
    tileBits() const
    {
        return static_cast<std::size_t>(tileRows) * tileCols;
    }

    /** Instruction capacity of the instruction tiles (64 b each). */
    std::size_t
    instructionCapacity() const
    {
        return numInstructionTiles * tileBits() / 64;
    }
};

/**
 * Encoded-instruction store mapped onto the instruction tiles.  The
 * bits live in MRAM exactly like data, but are written once before
 * deployment, so we store the packed words directly.
 */
class InstructionMemory
{
  public:
    explicit InstructionMemory(const ArrayConfig &cfg) : cfg_(cfg) {}

    /** Load a program image. @pre fits in the instruction tiles. */
    void load(const std::vector<std::uint64_t> &words);

    std::size_t size() const { return words_.size(); }

    /** Fetch one 64-bit instruction word. */
    std::uint64_t fetch(std::size_t addr) const;

  private:
    ArrayConfig cfg_;
    std::vector<std::uint64_t> words_;
};

/** Result of executing one instruction on the grid. */
struct ExecOutcome
{
    /** Device (array) energy: gate pulses, presets, row transfers. */
    Joules deviceEnergy = 0.0;
    /** Active columns the instruction operated across. */
    unsigned activeColumns = 0;
    /** Output MTJs that switched (gate ops only). */
    unsigned switched = 0;
};

/** The full set of data tiles plus shared peripherals. */
class TileGrid
{
  public:
    TileGrid(const ArrayConfig &cfg, const GateLibrary &lib);

    const ArrayConfig &config() const { return cfg_; }

    /** Access a data tile, allocating it on first touch. */
    Tile &tile(TileAddr addr);
    const Tile &tile(TileAddr addr) const;

    /** True once @p addr has been touched (const tile() requires
     *  it; state-capture code checks before snapshotting). */
    bool
    tileAllocated(TileAddr addr) const
    {
        return addr < tiles_.size() && tiles_[addr] != nullptr;
    }

    const ColumnSet &activeColumns() const { return active_; }

    /**
     * Execute one non-HALT instruction.
     *
     * @param inst Decoded instruction.
     * @param cycle_fraction Fraction of the cycle that elapses before
     *        an interrupt; 1.0 for uninterrupted execution.
     */
    ExecOutcome execute(const Instruction &inst,
                        double cycle_fraction = 1.0);

    /**
     * Model a power outage: peripheral state (the column latches) is
     * lost; MTJ contents and the MRAM row buffer persist.  The
     * controller's non-volatile Activate Columns journal is what
     * rebuilds the latch on restart.
     */
    void powerLoss();

    /** Direct row-buffer access (sensor/transmitter interface). */
    std::vector<Bit> &rowBuffer() { return buffer_; }
    const std::vector<Bit> &rowBuffer() const { return buffer_; }

    /**
     * Register per-tile telemetry counters ("tile.<id>.ops" — array
     * operations issued, including interrupted attempts and restart
     * replays — and "tile.<id>.switched" — output MTJs that flipped)
     * with @p reg, which must outlive the attachment.  Pass nullptr
     * to detach.
     */
    void attachStats(obs::StatRegistry *reg);

  private:
    void applyActivation(const Instruction &inst);

    /** Count one op (and @p switched MTJ flips) against a tile. */
    void
    countOp(TileAddr t, unsigned switched)
    {
        if (!stOps_.empty()) {
            stOps_[t]->increment();
            *stSwitched_[t] += switched;
        }
    }

    ArrayConfig cfg_;
    const GateLibrary &lib_;
    std::vector<std::unique_ptr<Tile>> tiles_;
    ColumnSet active_;
    std::vector<Bit> buffer_;
    /** Telemetry counters, indexed by tile (empty when detached). */
    std::vector<obs::Counter *> stOps_;
    std::vector<obs::Counter *> stSwitched_;
};

} // namespace mouse

#endif // MOUSE_ARCH_TILE_GRID_HH
