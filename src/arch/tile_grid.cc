#include "tile_grid.hh"

#include "common/logging.hh"
#include "obs/stat_registry.hh"

namespace mouse
{

void
InstructionMemory::load(const std::vector<std::uint64_t> &words)
{
    if (words.size() > cfg_.instructionCapacity()) {
        mouse_fatal("program of %zu instructions exceeds the %zu-entry "
                    "instruction tile capacity",
                    words.size(), cfg_.instructionCapacity());
    }
    words_ = words;
}

std::uint64_t
InstructionMemory::fetch(std::size_t addr) const
{
    mouse_assert(addr < words_.size(), "instruction fetch OOB");
    return words_[addr];
}

TileGrid::TileGrid(const ArrayConfig &cfg, const GateLibrary &lib)
    : cfg_(cfg), lib_(lib), tiles_(cfg.numDataTiles),
      active_(cfg.tileCols), buffer_(cfg.tileCols, 0)
{
}

void
TileGrid::attachStats(obs::StatRegistry *reg)
{
    stOps_.clear();
    stSwitched_.clear();
    if (reg == nullptr) {
        return;
    }
    stOps_.reserve(cfg_.numDataTiles);
    stSwitched_.reserve(cfg_.numDataTiles);
    for (TileAddr t = 0; t < cfg_.numDataTiles; ++t) {
        const std::string id = std::to_string(t);
        stOps_.push_back(&reg->counter(
            "tile." + id + ".ops",
            "array operations issued (incl. attempts/replays)"));
        stSwitched_.push_back(&reg->counter(
            "tile." + id + ".switched",
            "output MTJs that flipped"));
    }
}

Tile &
TileGrid::tile(TileAddr addr)
{
    mouse_assert(addr < tiles_.size(), "tile address OOB");
    if (!tiles_[addr]) {
        tiles_[addr] =
            std::make_unique<Tile>(cfg_.tileRows, cfg_.tileCols);
    }
    return *tiles_[addr];
}

const Tile &
TileGrid::tile(TileAddr addr) const
{
    mouse_assert(addr < tiles_.size(), "tile address OOB");
    mouse_assert(tiles_[addr] != nullptr, "tile never touched");
    return *tiles_[addr];
}

void
TileGrid::applyActivation(const Instruction &inst)
{
    if (inst.clearActivation) {
        active_.clear();
    }
    if (inst.op == Opcode::kActivateList) {
        for (int i = 0; i < inst.numCols; ++i) {
            const ColAddr c = inst.cols[static_cast<std::size_t>(i)];
            mouse_assert(c < cfg_.tileCols, "activated column OOB");
            active_.add(c);
        }
    } else {
        mouse_assert(inst.colHi < cfg_.tileCols,
                     "activated column OOB");
        active_.addRange(inst.colLo, inst.colHi);
    }
}

ExecOutcome
TileGrid::execute(const Instruction &inst, double cycle_fraction)
{
    ExecOutcome out;
    out.activeColumns = active_.count();
    switch (inst.op) {
      case Opcode::kHalt:
        mouse_panic("HALT reached TileGrid::execute");
      case Opcode::kActivateList:
      case Opcode::kActivateRange:
        // The latch update is peripheral-only.  An activation
        // interrupted mid-flight leaves an arbitrary partial latch
        // state, but the latch is volatile and rebuilt on restart, so
        // no persistent state is touched; model it as applying only
        // when the cycle completes.
        if (cycle_fraction >= 1.0) {
            applyActivation(inst);
        }
        out.activeColumns = active_.count();
        break;
      case Opcode::kReadRow: {
        countOp(inst.tile, 0);
        if (cycle_fraction >= 1.0) {
            out.deviceEnergy +=
                tile(inst.tile).readRow(lib_, inst.outRow, buffer_);
        } else {
            // Sense current was flowing but the latched result is
            // lost; charge a proportional fraction of the energy.
            out.deviceEnergy += lib_.readOp().energy * cfg_.tileCols *
                                cycle_fraction;
        }
        break;
      }
      case Opcode::kWriteRow:
        countOp(inst.tile, 0);
        out.deviceEnergy += tile(inst.tile).writeRow(
            lib_, inst.outRow, buffer_, cycle_fraction);
        break;
      case Opcode::kWriteRowShifted: {
        // Barrel-shifted write: destination column c receives buffer
        // column (c + shift) mod width — the cross-column transport
        // behind gather/reduction phases.
        const unsigned width = cfg_.tileCols;
        std::vector<Bit> rotated(width);
        for (unsigned c = 0; c < width; ++c) {
            rotated[c] = buffer_[(c + inst.colLo) % width];
        }
        countOp(inst.tile, 0);
        out.deviceEnergy += tile(inst.tile).writeRow(
            lib_, inst.outRow, rotated, cycle_fraction);
        break;
      }
      case Opcode::kPreset0:
      case Opcode::kPreset1: {
        const Bit value = inst.op == Opcode::kPreset1 ? 1 : 0;
        if (inst.tile == kBroadcastTile) {
            for (TileAddr t = 0; t < cfg_.numDataTiles; ++t) {
                countOp(t, 0);
                out.deviceEnergy += tile(t).presetRow(
                    lib_, inst.outRow, value, active_,
                    cycle_fraction);
            }
        } else {
            countOp(inst.tile, 0);
            out.deviceEnergy += tile(inst.tile).presetRow(
                lib_, inst.outRow, value, active_, cycle_fraction);
        }
        break;
      }
      default: {
        mouse_assert(isGateOpcode(inst.op), "unhandled opcode");
        const GateType g = gateFromOpcode(inst.op);
        if (inst.tile == kBroadcastTile) {
            for (TileAddr t = 0; t < cfg_.numDataTiles; ++t) {
                const GateExecResult r = tile(t).executeGate(
                    lib_, g, inst.rows, inst.outRow, active_,
                    cycle_fraction);
                out.deviceEnergy += r.deviceEnergy;
                out.switched += r.switched;
                countOp(t, r.switched);
            }
        } else {
            const GateExecResult r = tile(inst.tile).executeGate(
                lib_, g, inst.rows, inst.outRow, active_,
                cycle_fraction);
            out.deviceEnergy += r.deviceEnergy;
            out.switched = r.switched;
            countOp(inst.tile, r.switched);
        }
        break;
      }
    }
    return out;
}

void
TileGrid::powerLoss()
{
    // Column latches are volatile peripheral circuitry.
    active_.clear();
}

} // namespace mouse
