#include "logging.hh"

#include <cstdarg>

namespace mouse
{

namespace
{

void
vlogMessage(const char *prefix, const char *fmt, va_list args)
{
    std::fprintf(stderr, "%s: ", prefix);
    std::vfprintf(stderr, fmt, args);
    std::fprintf(stderr, "\n");
}

} // namespace

void
logMessage(const char *prefix, const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vlogMessage(prefix, fmt, args);
    va_end(args);
}

void
panicImpl(const char *file, int line, const char *fmt, ...)
{
    std::fprintf(stderr, "panic: %s:%d: ", file, line);
    va_list args;
    va_start(args, fmt);
    std::vfprintf(stderr, fmt, args);
    va_end(args);
    std::fprintf(stderr, "\n");
    std::abort();
}

void
fatalImpl(const char *file, int line, const char *fmt, ...)
{
    std::fprintf(stderr, "fatal: %s:%d: ", file, line);
    va_list args;
    va_start(args, fmt);
    std::vfprintf(stderr, fmt, args);
    va_end(args);
    std::fprintf(stderr, "\n");
    std::exit(1);
}

} // namespace mouse
