#include "logging.hh"

#include <cstdarg>
#include <cstring>
#include <string>

namespace mouse
{

namespace
{

/**
 * Threshold parsed once from MOUSE_LOG_LEVEL.  Accepts the level
 * names (debug/info/warn/error/none, case as-is) or 0-4.  Unset or
 * unparsable keeps the default: everything prints, matching the
 * historical behavior.  panic/fatal/assert ignore the threshold —
 * suppressing the reason for an abort helps nobody.
 */
LogLevel
parseLevelEnv()
{
    const char *env = std::getenv("MOUSE_LOG_LEVEL");
    if (!env || !*env) {
        return LogLevel::Debug;
    }
    if (!std::strcmp(env, "debug") || !std::strcmp(env, "0")) {
        return LogLevel::Debug;
    }
    if (!std::strcmp(env, "info") || !std::strcmp(env, "1")) {
        return LogLevel::Info;
    }
    if (!std::strcmp(env, "warn") || !std::strcmp(env, "2")) {
        return LogLevel::Warn;
    }
    if (!std::strcmp(env, "error") || !std::strcmp(env, "3")) {
        return LogLevel::Error;
    }
    if (!std::strcmp(env, "none") || !std::strcmp(env, "4")) {
        return LogLevel::None;
    }
    return LogLevel::Debug;
}

/**
 * Render "prefix: body\n" into one buffer and hand it to stderr with
 * a single fwrite, so concurrent workers' messages interleave at line
 * granularity instead of mid-line.
 */
void
emitLine(const char *head, const char *fmt, va_list args)
{
    char stack[512];
    va_list copy;
    va_copy(copy, args);
    const int need = std::vsnprintf(stack, sizeof(stack), fmt, copy);
    va_end(copy);
    if (need < 0) {
        return;
    }
    std::string line = head;
    if (static_cast<size_t>(need) < sizeof(stack)) {
        line += stack;
    } else {
        std::string body(static_cast<size_t>(need) + 1, '\0');
        std::vsnprintf(body.data(), body.size(), fmt, args);
        body.resize(static_cast<size_t>(need));
        line += body;
    }
    line += '\n';
    std::fwrite(line.data(), 1, line.size(), stderr);
    std::fflush(stderr);
}

LogLevel
severityOf(const char *prefix)
{
    if (!std::strcmp(prefix, "info")) {
        return LogLevel::Info;
    }
    if (!std::strcmp(prefix, "warn")) {
        return LogLevel::Warn;
    }
    if (!std::strcmp(prefix, "debug")) {
        return LogLevel::Debug;
    }
    // panic/fatal/assert and anything unrecognized.
    return LogLevel::Error;
}

} // namespace

LogLevel
logThreshold()
{
    static const LogLevel level = parseLevelEnv();
    return level;
}

void
logMessage(const char *prefix, const char *fmt, ...)
{
    if (severityOf(prefix) < logThreshold()) {
        return;
    }
    const std::string head = std::string(prefix) + ": ";
    va_list args;
    va_start(args, fmt);
    emitLine(head.c_str(), fmt, args);
    va_end(args);
}

void
panicImpl(const char *file, int line, const char *fmt, ...)
{
    char head[256];
    std::snprintf(head, sizeof(head), "panic: %s:%d: ", file, line);
    va_list args;
    va_start(args, fmt);
    emitLine(head, fmt, args);
    va_end(args);
    std::abort();
}

void
fatalImpl(const char *file, int line, const char *fmt, ...)
{
    char head[256];
    std::snprintf(head, sizeof(head), "fatal: %s:%d: ", file, line);
    va_list args;
    va_start(args, fmt);
    emitLine(head, fmt, args);
    va_end(args);
    std::exit(1);
}

} // namespace mouse
