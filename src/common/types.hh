/**
 * @file
 * Fundamental scalar types shared by every MOUSE subsystem.
 *
 * All physical quantities use SI base units (seconds, joules, watts,
 * volts, amperes, ohms, farads) carried in doubles.  Strong typedefs
 * are intentionally avoided for these since the simulator performs
 * heavy mixed arithmetic on them; the suffix on each alias documents
 * the unit instead.
 */

#ifndef MOUSE_COMMON_TYPES_HH
#define MOUSE_COMMON_TYPES_HH

#include <cstddef>
#include <cstdint>
#include <type_traits>

namespace mouse
{

/** Simulation cycle count (one MOUSE instruction slot per cycle). */
using Cycle = std::uint64_t;

/** Time in seconds. */
using Seconds = double;

/** Energy in joules. */
using Joules = double;

/** Power in watts. */
using Watts = double;

/** Electric potential in volts. */
using Volts = double;

/** Current in amperes. */
using Amperes = double;

/** Resistance in ohms. */
using Ohms = double;

/** Capacitance in farads. */
using Farads = double;

/** Area in square millimeters (matches the paper's Table III units). */
using SquareMm = double;

/** Row index within a tile (10-bit address space, 0..1023). */
using RowAddr = std::uint16_t;

/** Column index within a tile (10-bit address space, 0..1023). */
using ColAddr = std::uint16_t;

/** Tile index within the accelerator (9-bit address space, 0..511). */
using TileAddr = std::uint16_t;

/** A single stored bit; MTJ state maps P->0, AP->1. */
using Bit = std::uint8_t;

/**
 * Explicit non-owning observer of an object the caller keeps alive.
 *
 * Replaces documented-but-fragile raw pointers in request structs
 * (RunRequest historically carried `const Trace *trace` with a
 * "must outlive the call" comment).  The type states the contract in
 * the signature: construction is explicit — from a reference via
 * observe(), never implicitly from a pointer — so a reader can grep
 * every place a lifetime dependency is created, and a default-
 * constructed observer is unambiguously "not provided".
 *
 * It remains non-owning: the referent must outlive every use of the
 * observer (for Accelerator::submit(), until the request's result
 * has been produced).  See docs/EXPERIMENTS_API.md.
 */
template <typename T>
class ObserverPtr
{
  public:
    constexpr ObserverPtr() = default;
    constexpr ObserverPtr(std::nullptr_t) {}
    explicit constexpr ObserverPtr(T &ref) : ptr_(&ref) {}

    /** Qualification conversion (ObserverPtr<T> -> <const T>). */
    template <typename U,
              typename = std::enable_if_t<
                  std::is_convertible_v<U *, T *>>>
    constexpr ObserverPtr(ObserverPtr<U> other) : ptr_(other.get())
    {
    }

    constexpr T *get() const { return ptr_; }
    constexpr T &operator*() const { return *ptr_; }
    constexpr T *operator->() const { return ptr_; }
    explicit constexpr operator bool() const
    {
        return ptr_ != nullptr;
    }

    friend constexpr bool
    operator==(ObserverPtr a, ObserverPtr b)
    {
        return a.ptr_ == b.ptr_;
    }
    friend constexpr bool
    operator!=(ObserverPtr a, ObserverPtr b)
    {
        return a.ptr_ != b.ptr_;
    }

  private:
    T *ptr_ = nullptr;
};

/** The one way to create an ObserverPtr: observe(x) reads as "x is
 *  borrowed here; keep it alive". */
template <typename T>
constexpr ObserverPtr<T>
observe(T &ref)
{
    return ObserverPtr<T>(ref);
}

namespace units
{

constexpr double kilo = 1e3;
constexpr double mega = 1e6;
constexpr double giga = 1e9;
constexpr double milli = 1e-3;
constexpr double micro = 1e-6;
constexpr double nano = 1e-9;
constexpr double pico = 1e-12;
constexpr double femto = 1e-15;

} // namespace units

} // namespace mouse

#endif // MOUSE_COMMON_TYPES_HH
