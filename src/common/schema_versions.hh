#ifndef MOUSE_COMMON_SCHEMA_VERSIONS_HH
#define MOUSE_COMMON_SCHEMA_VERSIONS_HH

/**
 * Central registry of every JSON document schema version this repo
 * emits.  Each constant below versions one document family; bumping
 * one is a contract change that must be reflected in the docs named
 * next to it and in the consumers listed there.
 *
 * The determinism lint (tools/mouse_lint.py, rule schema-constants)
 * rejects JSON emitters that inline a schema number instead of
 * referencing these constants, so every version literal in the tree
 * lives on this page and nowhere else.
 */

namespace mouse::schema {

/** "schema" field of every RunResult/SweepResult document, the
 *  injection campaign + replay reports of src/inject, and the
 *  serve_report documents of src/serve.  History: 2 = injection
 *  reports landed; 3 = "error" field on rejected requests; 4 = the
 *  optional "serve" batch/queue block and the serve_report document;
 *  5 = "source"/"platform" scenario provenance in the point block;
 *  6 = "system"/"scheme" baseline provenance in the point block
 *  (docs/EXPERIMENTS_API.md, docs/FAULT_INJECTION.md,
 *  docs/SERVING.md, docs/HARVESTING.md, docs/BASELINES.md). */
inline constexpr int kResultSchemaVersion = 6;

/** "metrics_schema" field of MetricsSnapshot documents emitted by
 *  src/obs/metrics_hub (docs/OBSERVABILITY.md "Live metrics
 *  format"). */
inline constexpr int kMetricsSchemaVersion = 1;

/** "trace_schema" field of power-trace documents parsed and emitted
 *  by src/harvest/power_trace (docs/HARVESTING.md "Trace format").
 *  Version 1: {"trace_schema", "name", "segments":[{"duration_s",
 *  "power_w"}...]}. */
inline constexpr int kPowerTraceSchemaVersion = 1;

} // namespace mouse::schema

#endif // MOUSE_COMMON_SCHEMA_VERSIONS_HH
