#include "rng.hh"

#include <cmath>

namespace mouse
{

double
Rng::sqrtLog(double s)
{
    return std::sqrt(-2.0 * std::log(s) / s);
}

} // namespace mouse
