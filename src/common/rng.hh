/**
 * @file
 * Deterministic pseudo-random number generator used across the
 * simulator (fault injection, synthetic datasets, property tests).
 *
 * A simulator must be reproducible: the same seed always yields the
 * same outage schedule, the same synthetic dataset, and therefore the
 * same reported numbers.  We use xoshiro256** which is small, fast,
 * and has no global state.
 */

#ifndef MOUSE_COMMON_RNG_HH
#define MOUSE_COMMON_RNG_HH

#include <cstdint>

namespace mouse
{

/** Deterministic xoshiro256** PRNG. */
class Rng
{
  public:
    /** Seed via splitmix64 so that nearby seeds diverge immediately. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL)
    {
        std::uint64_t x = seed;
        for (auto &word : state_) {
            x += 0x9e3779b97f4a7c15ULL;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Uniform double in [lo, hi). */
    double
    uniform(double lo, double hi)
    {
        return lo + (hi - lo) * uniform();
    }

    /** Uniform integer in [0, bound). @pre bound > 0. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        // Rejection-free Lemire reduction; bias is negligible for the
        // bounds used in this simulator (<< 2^64).
        return static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>(next()) * bound) >> 64);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t
    between(std::int64_t lo, std::int64_t hi)
    {
        return lo + static_cast<std::int64_t>(
                        below(static_cast<std::uint64_t>(hi - lo + 1)));
    }

    /** Bernoulli draw with probability p of true. */
    bool
    chance(double p)
    {
        return uniform() < p;
    }

    /**
     * Standard normal via Marsaglia polar method (no cached spare to
     * keep the generator stateless between calls beyond the stream).
     */
    double
    normal()
    {
        while (true) {
            double u = uniform(-1.0, 1.0);
            double v = uniform(-1.0, 1.0);
            double s = u * u + v * v;
            if (s > 0.0 && s < 1.0) {
                return u * sqrtLog(s);
            }
        }
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    static double sqrtLog(double s);

    std::uint64_t state_[4];
};

} // namespace mouse

#endif // MOUSE_COMMON_RNG_HH
