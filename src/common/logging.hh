/**
 * @file
 * Error-reporting helpers in the spirit of gem5's logging.hh.
 *
 * panic() is for internal invariant violations (simulator bugs) and
 * aborts; fatal() is for user/configuration errors and exits cleanly;
 * warn()/inform() print status without stopping the run.
 *
 * Messages are rendered into one buffer and written with a single
 * fwrite, so lines from parallel sweep workers never interleave
 * mid-line.  The MOUSE_LOG_LEVEL environment variable
 * (debug|info|warn|error|none, or 0-4) raises the stderr threshold;
 * panic/fatal/assert always print.
 */

#ifndef MOUSE_COMMON_LOGGING_HH
#define MOUSE_COMMON_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <string>

namespace mouse
{

/** Severity order for the MOUSE_LOG_LEVEL threshold. */
enum class LogLevel
{
    Debug = 0,
    Info = 1,
    Warn = 2,
    Error = 3,
    None = 4,
};

/** Threshold from MOUSE_LOG_LEVEL (parsed once; default Debug). */
LogLevel logThreshold();

/**
 * Print a formatted message with a severity prefix to stderr.
 * Messages whose prefix maps below logThreshold() are dropped
 * ("info" < "warn" < everything else).
 *
 * @param prefix Severity tag, e.g. "panic".
 * @param fmt printf-style format string.
 */
void logMessage(const char *prefix, const char *fmt, ...)
    __attribute__((format(printf, 2, 3)));

/** Abort the process after reporting an internal simulator bug. */
[[noreturn]] void panicImpl(const char *file, int line, const char *fmt,
                            ...) __attribute__((format(printf, 3, 4)));

/** Exit the process after reporting an unrecoverable user error. */
[[noreturn]] void fatalImpl(const char *file, int line, const char *fmt,
                            ...) __attribute__((format(printf, 3, 4)));

#define mouse_panic(...) \
    ::mouse::panicImpl(__FILE__, __LINE__, __VA_ARGS__)

#define mouse_fatal(...) \
    ::mouse::fatalImpl(__FILE__, __LINE__, __VA_ARGS__)

#define mouse_warn(...) ::mouse::logMessage("warn", __VA_ARGS__)

#define mouse_inform(...) ::mouse::logMessage("info", __VA_ARGS__)

/**
 * Internal assertion that survives NDEBUG builds.  Use for simulator
 * invariants that are cheap relative to the surrounding work.
 */
#define mouse_assert(cond, ...)                                          \
    do {                                                                 \
        if (!(cond)) {                                                   \
            ::mouse::logMessage("assert", __VA_ARGS__);                  \
            ::mouse::panicImpl(__FILE__, __LINE__,                       \
                               "assertion failed: %s", #cond);           \
        }                                                                \
    } while (0)

} // namespace mouse

#endif // MOUSE_COMMON_LOGGING_HH
