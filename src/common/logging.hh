/**
 * @file
 * Error-reporting helpers in the spirit of gem5's logging.hh.
 *
 * panic() is for internal invariant violations (simulator bugs) and
 * aborts; fatal() is for user/configuration errors and exits cleanly;
 * warn()/inform() print status without stopping the run.
 */

#ifndef MOUSE_COMMON_LOGGING_HH
#define MOUSE_COMMON_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <string>

namespace mouse
{

/**
 * Print a formatted message with a severity prefix to stderr.
 *
 * @param prefix Severity tag, e.g. "panic".
 * @param fmt printf-style format string.
 */
void logMessage(const char *prefix, const char *fmt, ...)
    __attribute__((format(printf, 2, 3)));

/** Abort the process after reporting an internal simulator bug. */
[[noreturn]] void panicImpl(const char *file, int line, const char *fmt,
                            ...) __attribute__((format(printf, 3, 4)));

/** Exit the process after reporting an unrecoverable user error. */
[[noreturn]] void fatalImpl(const char *file, int line, const char *fmt,
                            ...) __attribute__((format(printf, 3, 4)));

#define mouse_panic(...) \
    ::mouse::panicImpl(__FILE__, __LINE__, __VA_ARGS__)

#define mouse_fatal(...) \
    ::mouse::fatalImpl(__FILE__, __LINE__, __VA_ARGS__)

#define mouse_warn(...) ::mouse::logMessage("warn", __VA_ARGS__)

#define mouse_inform(...) ::mouse::logMessage("info", __VA_ARGS__)

/**
 * Internal assertion that survives NDEBUG builds.  Use for simulator
 * invariants that are cheap relative to the surrounding work.
 */
#define mouse_assert(cond, ...)                                          \
    do {                                                                 \
        if (!(cond)) {                                                   \
            ::mouse::logMessage("assert", __VA_ARGS__);                  \
            ::mouse::panicImpl(__FILE__, __LINE__,                       \
                               "assertion failed: %s", #cond);           \
        }                                                                \
    } while (0)

} // namespace mouse

#endif // MOUSE_COMMON_LOGGING_HH
