/**
 * @file
 * Fixed-point FFT on MOUSE — the paper's related-work comparison
 * made concrete (Section X).
 *
 * The paper contrasts a non-volatile processor completing MiBench
 * FFT in 4.2 ms with CRAFFT's 1.63 ms on the same CRAM substrate
 * MOUSE uses, noting that making the FFT intermittent-safe "in the
 * same manner [as] MOUSE would introduce a latency penalty".  This
 * module maps an iterative radix-2 decimation-in-time FFT onto the
 * MOUSE array so that penalty can actually be measured:
 *
 *  - one butterfly per column (real/imag operands, twiddle factors
 *    pre-placed per column like SVM support vectors);
 *  - per stage: a column-parallel butterfly kernel (four fixed-point
 *    multiplies + six adds/subs), then buffer row moves for the
 *    inter-stage data shuffle;
 *  - log2(N) sequential stages.
 *
 * A software fixed-point reference (identical arithmetic) validates
 * the compiled butterfly bit-for-bit on the functional simulator.
 */

#ifndef MOUSE_COMPILE_FFT_HH
#define MOUSE_COMPILE_FFT_HH

#include <complex>
#include <cstdint>
#include <vector>

#include "compile/builder.hh"
#include "compile/program.hh"

namespace mouse
{

/** Fixed-point complex sample (Q(bits-1) twiddles). */
struct FixedComplex
{
    std::int64_t re = 0;
    std::int64_t im = 0;

    bool operator==(const FixedComplex &) const = default;
};

/**
 * Software butterfly with the exact arithmetic the array kernel
 * implements: products keep 2*bits, then are truncated back to
 * @p bits by an arithmetic right shift of (bits - 1) — the Q-format
 * renormalization.
 */
void fixedButterfly(FixedComplex a, FixedComplex b, FixedComplex w,
                    unsigned bits, FixedComplex &out_top,
                    FixedComplex &out_bottom);

/** Software fixed-point radix-2 DIT FFT (reference model). */
std::vector<FixedComplex> fixedFft(std::vector<FixedComplex> input,
                                   unsigned bits);

/** Rows used by one compiled butterfly (for layout planning). */
struct ButterflyLayout
{
    /** Even base rows of the six operands (each @p bits wide,
     *  stride 2): a.re, a.im, b.re, b.im, w.re, w.im. */
    RowAddr aRe = 0;
    RowAddr aIm = 0;
    RowAddr bRe = 0;
    RowAddr bIm = 0;
    RowAddr wRe = 0;
    RowAddr wIm = 0;
};

/** Result rows of a compiled butterfly. */
struct ButterflyResult
{
    Word topRe;
    Word topIm;
    Word botRe;
    Word botIm;
};

/**
 * Compile one radix-2 butterfly:
 *   top = a + w*b,  bottom = a - w*b
 * in Q(bits-1) fixed point, executed in every active column.
 */
ButterflyResult buildButterflyKernel(KernelBuilder &kb,
                                     const ButterflyLayout &layout,
                                     unsigned bits);

/** FFT workload shape. */
struct FftWorkload
{
    unsigned points = 1024;
    unsigned bits = 16;
};

/** Layout facts of an FFT mapping. */
struct FftMappingInfo
{
    unsigned stages = 0;
    std::uint64_t butterfliesPerStage = 0;
    std::uint64_t peakActiveColumns = 0;
    /** Instructions of the complete transform. */
    std::uint64_t totalInstructions = 0;
};

/**
 * Compressed execution trace of one N-point FFT (one butterfly per
 * column, log2(N) stages with inter-stage shuffles).
 *
 * @param lib Target gate library.
 * @param work FFT shape.
 * @param total_columns Columns available (tile x column product,
 *        possibly capped for a power budget).
 * @param tile_cols Columns per tile (row-move granularity).
 */
Trace buildFftTrace(const GateLibrary &lib, const FftWorkload &work,
                    std::uint64_t total_columns, unsigned tile_cols,
                    FftMappingInfo *info = nullptr);

} // namespace mouse

#endif // MOUSE_COMPILE_FFT_HH
