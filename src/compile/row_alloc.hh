/**
 * @file
 * Parity-aware row allocator for gate-level compilation.
 *
 * CRAM logic constrains every gate's inputs to rows of one parity
 * and its output to the other (Section II-C), so scratch allocation
 * is two free lists, one per parity.  Rows are a scarce resource
 * (1024 per tile shared between operands, accumulators and scratch);
 * the builder frees temporaries aggressively and the allocator
 * reports the high-water mark so layout models can derive how many
 * values fit in one column.
 */

#ifndef MOUSE_COMPILE_ROW_ALLOC_HH
#define MOUSE_COMPILE_ROW_ALLOC_HH

#include <vector>

#include "common/logging.hh"
#include "common/types.hh"

namespace mouse
{

/** Two-parity row free-list allocator. */
class RowAllocator
{
  public:
    /**
     * @param num_rows Rows in the tile.
     * @param first_free First row available for allocation (rows
     *        below it are reserved for program inputs/outputs).
     */
    explicit RowAllocator(unsigned num_rows, unsigned first_free = 0)
        : numRows_(num_rows)
    {
        for (unsigned r = num_rows; r-- > first_free;) {
            freeOf(r & 1).push_back(static_cast<RowAddr>(r));
        }
    }

    /** Allocate a row with the given parity (0 even, 1 odd). */
    RowAddr
    alloc(unsigned parity)
    {
        auto &list = freeOf(parity);
        if (list.empty()) {
            mouse_fatal("out of %s scratch rows (tile has %u rows)",
                        parity ? "odd" : "even", numRows_);
        }
        const RowAddr r = list.back();
        list.pop_back();
        ++inUse_;
        highWater_ = std::max(highWater_, inUse_);
        return r;
    }

    /**
     * Allocate the free row of the given parity closest to
     * @p anchor.  Placement-aware compilation uses this to keep
     * gate operand spans short when logic-line parasitics are
     * enabled (see the [95] ablation); with ideal wires it is
     * merely harmless.
     */
    RowAddr
    allocNear(unsigned parity, RowAddr anchor)
    {
        auto &list = freeOf(parity);
        if (list.empty()) {
            mouse_fatal("out of %s scratch rows (tile has %u rows)",
                        parity ? "odd" : "even", numRows_);
        }
        std::size_t best = 0;
        unsigned best_dist = ~0u;
        for (std::size_t i = 0; i < list.size(); ++i) {
            const unsigned dist =
                list[i] > anchor
                    ? static_cast<unsigned>(list[i] - anchor)
                    : static_cast<unsigned>(anchor - list[i]);
            if (dist < best_dist) {
                best_dist = dist;
                best = i;
            }
        }
        const RowAddr r = list[best];
        list[best] = list.back();
        list.pop_back();
        ++inUse_;
        highWater_ = std::max(highWater_, inUse_);
        return r;
    }

    /** Return a row to its parity free list. */
    void
    release(RowAddr row)
    {
        mouse_assert(row < numRows_, "releasing OOB row");
        freeOf(row & 1).push_back(row);
        mouse_assert(inUse_ > 0, "release without alloc");
        --inUse_;
    }

    unsigned available(unsigned parity) const
    {
        return static_cast<unsigned>(
            (parity & 1) ? freeOdd_.size() : freeEven_.size());
    }

    /** Peak simultaneous allocation count. */
    unsigned highWater() const { return highWater_; }

  private:
    std::vector<RowAddr> &
    freeOf(unsigned parity)
    {
        return (parity & 1) ? freeOdd_ : freeEven_;
    }

    unsigned numRows_;
    std::vector<RowAddr> freeEven_;
    std::vector<RowAddr> freeOdd_;
    unsigned inUse_ = 0;
    unsigned highWater_ = 0;
};

} // namespace mouse

#endif // MOUSE_COMPILE_ROW_ALLOC_HH
