#include "program.hh"

#include "common/logging.hh"

namespace mouse
{

std::vector<std::uint64_t>
Program::encode() const
{
    std::vector<std::uint64_t> words;
    words.reserve(instructions.size());
    for (const Instruction &inst : instructions) {
        words.push_back(inst.encode());
    }
    return words;
}

std::size_t
Program::countOpcode(Opcode op) const
{
    std::size_t n = 0;
    for (const Instruction &inst : instructions) {
        n += inst.op == op;
    }
    return n;
}

std::uint64_t
Trace::totalInstructions() const
{
    std::uint64_t total = 0;
    for (const TraceBlock &b : blocks) {
        total += b.count;
    }
    return total;
}

void
Trace::append(Opcode op, unsigned touched_cols, unsigned active_after,
              std::uint64_t count)
{
    if (count == 0) {
        return;
    }
    if (!blocks.empty()) {
        TraceBlock &tail = blocks.back();
        if (tail.op == op && tail.touchedCols == touched_cols &&
            tail.activeColsAfter == active_after) {
            tail.count += count;
            return;
        }
    }
    blocks.push_back(TraceBlock{op, touched_cols, active_after, count});
}

void
Trace::appendTrace(const Trace &other, std::uint64_t times)
{
    // Appending block-by-block keeps the run-length merge working
    // across the seam; repeated appends of a cyclic trace compress
    // when the trace is homogeneous.
    for (std::uint64_t t = 0; t < times; ++t) {
        for (const TraceBlock &b : other.blocks) {
            append(b.op, b.touchedCols, b.activeColsAfter, b.count);
        }
    }
}

Trace
Trace::fromProgram(const Program &prog, const ArrayConfig &cfg)
{
    Trace trace;
    // Replay the activation state machine to learn how many columns
    // each instruction drives.
    ColumnSet active(cfg.tileCols);
    for (const Instruction &inst : prog.instructions) {
        unsigned touched = 0;
        switch (inst.op) {
          case Opcode::kHalt:
            continue;  // HALT costs nothing in the trace
          case Opcode::kActivateList:
            if (inst.clearActivation) {
                active.clear();
            }
            for (int i = 0; i < inst.numCols; ++i) {
                active.add(inst.cols[static_cast<std::size_t>(i)]);
            }
            touched = inst.numCols;
            break;
          case Opcode::kActivateRange:
            if (inst.clearActivation) {
                active.clear();
            }
            active.addRange(inst.colLo, inst.colHi);
            touched =
                static_cast<unsigned>(inst.colHi - inst.colLo + 1);
            break;
          case Opcode::kReadRow:
          case Opcode::kWriteRow:
          case Opcode::kWriteRowShifted:
            touched = cfg.tileCols;
            break;
          default:
            touched = active.count() *
                      (inst.tile == kBroadcastTile ? cfg.numDataTiles
                                                   : 1);
            break;
        }
        trace.append(inst.op, touched, active.count());
    }
    return trace;
}

} // namespace mouse
