#include "fft.hh"

#include <numbers>

#include "common/logging.hh"

namespace mouse
{

namespace
{

/** Wrap a signed value to @p bits (two's complement). */
std::int64_t
wrapTo(std::int64_t v, unsigned bits)
{
    const std::uint64_t mask = (bits >= 64)
                                   ? ~0ull
                                   : ((1ull << bits) - 1);
    std::uint64_t u = static_cast<std::uint64_t>(v) & mask;
    if (bits < 64 && (u >> (bits - 1)) & 1) {
        u |= ~mask;
    }
    return static_cast<std::int64_t>(u);
}

} // namespace

void
fixedButterfly(FixedComplex a, FixedComplex b, FixedComplex w,
               unsigned bits, FixedComplex &out_top,
               FixedComplex &out_bottom)
{
    const unsigned s = bits - 1;
    // Q-format complex multiply with per-product renormalization
    // (matching the array kernel's product-slice truncation).
    const std::int64_t wb_re =
        wrapTo((b.re * w.re >> s) - (b.im * w.im >> s), bits);
    const std::int64_t wb_im =
        wrapTo((b.re * w.im >> s) + (b.im * w.re >> s), bits);
    // Per-stage scaling by 1/2 keeps every intermediate inside the
    // fixed-point range for any input amplitude (the usual guarded
    // fixed-point FFT discipline; the array kernel drops the sum's
    // LSB the same way).
    out_top.re = wrapTo((a.re + wb_re) >> 1, bits);
    out_top.im = wrapTo((a.im + wb_im) >> 1, bits);
    out_bottom.re = wrapTo((a.re - wb_re) >> 1, bits);
    out_bottom.im = wrapTo((a.im - wb_im) >> 1, bits);
}

std::vector<FixedComplex>
fixedFft(std::vector<FixedComplex> x, unsigned bits)
{
    const std::size_t n = x.size();
    mouse_assert(n > 0 && (n & (n - 1)) == 0,
                 "FFT size must be a power of two");
    // Bit-reversal permutation.
    for (std::size_t i = 1, j = 0; i < n; ++i) {
        std::size_t bit = n >> 1;
        for (; j & bit; bit >>= 1) {
            j ^= bit;
        }
        j ^= bit;
        if (i < j) {
            std::swap(x[i], x[j]);
        }
    }
    const std::int64_t one = 1ll << (bits - 1);
    for (std::size_t len = 2; len <= n; len <<= 1) {
        const double angle =
            -2.0 * std::numbers::pi / static_cast<double>(len);
        for (std::size_t blk = 0; blk < n; blk += len) {
            for (std::size_t k = 0; k < len / 2; ++k) {
                const double phi = angle * static_cast<double>(k);
                FixedComplex w;
                w.re = wrapTo(
                    static_cast<std::int64_t>(std::lround(
                        std::cos(phi) * (one - 1))),
                    bits);
                w.im = wrapTo(
                    static_cast<std::int64_t>(std::lround(
                        std::sin(phi) * (one - 1))),
                    bits);
                FixedComplex top;
                FixedComplex bottom;
                fixedButterfly(x[blk + k], x[blk + k + len / 2], w,
                               bits, top, bottom);
                x[blk + k] = top;
                x[blk + k + len / 2] = bottom;
            }
        }
    }
    return x;
}

namespace
{

/** Keep rows [from, from+len) of @p prod, freeing the rest. */
Word
sliceWord(KernelBuilder &kb, Word &prod, unsigned from, unsigned len)
{
    mouse_assert(from + len <= prod.size(), "slice OOB");
    Word out(prod.begin() + from, prod.begin() + from + len);
    for (unsigned i = 0; i < from; ++i) {
        kb.free(prod[i]);
    }
    for (std::size_t i = from + len; i < prod.size(); ++i) {
        kb.free(prod[i]);
    }
    prod.clear();
    return out;
}

/** Drop (and free) bits above @p bits. */
Word
truncWord(KernelBuilder &kb, Word w, unsigned bits)
{
    while (w.size() > bits) {
        kb.free(w.back());
        w.pop_back();
    }
    return w;
}

} // namespace

ButterflyResult
buildButterflyKernel(KernelBuilder &kb, const ButterflyLayout &layout,
                     unsigned bits)
{
    const unsigned s = bits - 1;
    const Word a_re = kb.pinnedWord(layout.aRe, bits);
    const Word a_im = kb.pinnedWord(layout.aIm, bits);
    const Word b_re = kb.pinnedWord(layout.bRe, bits);
    const Word b_im = kb.pinnedWord(layout.bIm, bits);
    const Word w_re = kb.pinnedWord(layout.wRe, bits);
    const Word w_im = kb.pinnedWord(layout.wIm, bits);

    // w * b, with each 2*bits product renormalized by slicing out
    // bits [s, s + bits).
    Word p1 = kb.mulSigned(b_re, w_re);
    Word p1s = sliceWord(kb, p1, s, bits);
    Word p2 = kb.mulSigned(b_im, w_im);
    Word p2s = sliceWord(kb, p2, s, bits);
    Word wb_re = truncWord(kb, kb.sub(p1s, p2s), bits);
    kb.freeWord(p1s);
    kb.freeWord(p2s);

    Word p3 = kb.mulSigned(b_re, w_im);
    Word p3s = sliceWord(kb, p3, s, bits);
    Word p4 = kb.mulSigned(b_im, w_re);
    Word p4s = sliceWord(kb, p4, s, bits);
    Word wb_im = truncWord(kb, kb.add(p3s, p4s, /*grow=*/false),
                           bits);
    kb.freeWord(p3s);
    kb.freeWord(p4s);

    // Per-stage 1/2 scaling: compute the exact (bits+1)-wide signed
    // sum/difference, then drop its LSB — an arithmetic right shift
    // in row terms.  The widening is a free sign-bit alias (reads
    // cost nothing); a raw ripple carry-out would be wrong for
    // signed operands.
    const auto extend1 = [](const Word &w) {
        Word e = w;
        e.push_back(w.back());
        return e;
    };
    const auto halve = [&](Word w) {
        kb.free(w.front());
        w.erase(w.begin());
        return w;
    };
    ButterflyResult out;
    out.topRe = halve(
        kb.add(extend1(a_re), extend1(wb_re), /*grow=*/false));
    out.topIm = halve(
        kb.add(extend1(a_im), extend1(wb_im), /*grow=*/false));
    out.botRe = halve(kb.sub(a_re, wb_re));
    out.botIm = halve(kb.sub(a_im, wb_im));
    kb.freeWord(wb_re);
    kb.freeWord(wb_im);
    return out;
}

Trace
buildFftTrace(const GateLibrary &lib, const FftWorkload &work,
              std::uint64_t total_columns, unsigned tile_cols,
              FftMappingInfo *info)
{
    mouse_assert(work.points >= 2 &&
                     (work.points & (work.points - 1)) == 0,
                 "FFT size must be a power of two");
    mouse_assert(total_columns > 0, "no columns");

    // Measure the butterfly instruction mix once by compiling it.
    ArrayConfig meas;
    meas.tileRows = 1024;
    meas.tileCols = 1024;
    meas.numDataTiles = 1;
    KernelBuilder kb(lib, meas, 0, 12 * 2 * work.bits);
    ButterflyLayout layout;
    layout.aRe = 0;
    layout.aIm = static_cast<RowAddr>(2 * work.bits);
    layout.bRe = static_cast<RowAddr>(4 * work.bits);
    layout.bIm = static_cast<RowAddr>(6 * work.bits);
    layout.wRe = static_cast<RowAddr>(8 * work.bits);
    layout.wIm = static_cast<RowAddr>(10 * work.bits);
    ButterflyResult r = buildButterflyKernel(kb, layout, work.bits);
    (void)r;
    const Program butterfly = kb.finish();

    std::array<std::uint64_t,
               static_cast<std::size_t>(Opcode::kNumOpcodes)>
        mix{};
    for (const Instruction &inst : butterfly.instructions) {
        if (inst.op == Opcode::kHalt ||
            inst.op == Opcode::kActivateList ||
            inst.op == Opcode::kActivateRange) {
            continue;
        }
        ++mix[static_cast<std::size_t>(inst.op)];
    }

    const unsigned stages = [&] {
        unsigned s = 0;
        for (unsigned n = work.points; n > 1; n >>= 1) {
            ++s;
        }
        return s;
    }();
    const std::uint64_t butterflies = work.points / 2;
    const std::uint64_t per_chunk =
        std::min<std::uint64_t>(butterflies, total_columns);
    const unsigned chunks = static_cast<unsigned>(
        (butterflies + per_chunk - 1) / per_chunk);
    const unsigned tiles = static_cast<unsigned>(
        (per_chunk + tile_cols - 1) / tile_cols);

    Trace trace;
    const auto active = static_cast<unsigned>(per_chunk);
    for (unsigned stage = 0; stage < stages; ++stage) {
        for (unsigned chunk = 0; chunk < chunks; ++chunk) {
            trace.append(Opcode::kActivateRange, active, active, 1);
            for (std::size_t op = 0; op < mix.size(); ++op) {
                if (mix[op] > 0) {
                    trace.append(static_cast<Opcode>(op), active,
                                 active, mix[op]);
                }
            }
            // Inter-stage shuffle: each butterfly emits two complex
            // samples (4 * bits rows) that move to their next-stage
            // columns through the row buffer.
            trace.append(Opcode::kReadRow, tile_cols, active,
                         static_cast<std::uint64_t>(4) * work.bits *
                             tiles);
            trace.append(Opcode::kWriteRow, tile_cols, active,
                         static_cast<std::uint64_t>(4) * work.bits *
                             tiles);
        }
    }

    if (info) {
        info->stages = stages;
        info->butterfliesPerStage = butterflies;
        info->peakActiveColumns = per_chunk;
        info->totalInstructions = trace.totalInstructions();
    }
    return trace;
}

} // namespace mouse
