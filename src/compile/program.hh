/**
 * @file
 * Program containers for the two simulation fidelities.
 *
 * A Program is the literal instruction sequence stored in the
 * instruction tiles — what the functional simulator runs.
 *
 * A Trace is the compressed form used for the paper's large
 * benchmarks: a run-length-encoded stream of (opcode, touched
 * columns) pairs.  Energy and latency of a trace are computed with
 * the exact same EnergyModel as the functional path; a Trace built
 * from a Program is cycle- and energy-equivalent by construction
 * (tested), which is what licenses using traces for the big
 * workloads.
 */

#ifndef MOUSE_COMPILE_PROGRAM_HH
#define MOUSE_COMPILE_PROGRAM_HH

#include <cstdint>
#include <vector>

#include "arch/tile_grid.hh"
#include "isa/instruction.hh"

namespace mouse
{

/** A complete MOUSE program (must end with HALT). */
struct Program
{
    std::vector<Instruction> instructions;

    /** Encode to the 64-bit words stored in instruction tiles. */
    std::vector<std::uint64_t> encode() const;

    std::size_t size() const { return instructions.size(); }

    /** Count instructions with a given opcode. */
    std::size_t countOpcode(Opcode op) const;
};

/** One run of identical-cost instructions in a compressed trace. */
struct TraceBlock
{
    Opcode op = Opcode::kHalt;
    /** Columns the instruction drives (active set, row width, or
     *  activation size — see EnergyModel::instructionEnergy). */
    unsigned touchedCols = 0;
    /** Active-column count *after* the instruction, needed to price
     *  a restart that interrupts this block. */
    unsigned activeColsAfter = 0;
    /** Number of identical repetitions. */
    std::uint64_t count = 1;
};

/** Compressed instruction trace for the performance simulator. */
struct Trace
{
    std::vector<TraceBlock> blocks;

    std::uint64_t totalInstructions() const;

    /** Append one block, merging with the tail when possible. */
    void append(Opcode op, unsigned touched_cols,
                unsigned active_after, std::uint64_t count = 1);

    /** Append another trace @p times times. */
    void appendTrace(const Trace &other, std::uint64_t times = 1);

    /**
     * Derive the trace of a concrete program by replaying its
     * activation state (to learn the active-column count at each
     * instruction).
     */
    static Trace fromProgram(const Program &prog,
                             const ArrayConfig &cfg);
};

} // namespace mouse

#endif // MOUSE_COMPILE_PROGRAM_HH
