/**
 * @file
 * Gate-level kernel builder: compiles bit- and word-level operations
 * into MOUSE instruction sequences (paper Sections VI, VII).
 *
 * The builder works in the SIMD model of the array: one instruction
 * sequence is generated against row addresses of a single tile, and
 * executes simultaneously in every active column (each column holds
 * its own data at the same rows).
 *
 * Parity discipline: every gate's inputs must share a row parity and
 * its output must take the other (Section II-C).  Values track their
 * parity through their row address; the builder inserts BUF copies
 * where a dataflow needs a value on the other bitline.  The paper's
 * "9 NAND gates + 7 temporaries" full adder becomes 9 NANDs plus 2
 * parity copies here, with every gate's output preset emitted as an
 * explicit write instruction (the paper prices these too, it merely
 * elides them from Figure 8).
 *
 * All generated code is data-oblivious — the instruction sequence
 * never depends on runtime values (Section IV-B: "the sequence of
 * instructions performed doesn't change as a function of inputs") —
 * so arithmetic is two's-complement with sign-extension multiplies.
 */

#ifndef MOUSE_COMPILE_BUILDER_HH
#define MOUSE_COMPILE_BUILDER_HH

#include <optional>
#include <vector>

#include "compile/program.hh"
#include "compile/row_alloc.hh"
#include "logic/gate_library.hh"

namespace mouse
{

/** A single-bit value: the row that holds it (in every active
 *  column).  Parity is implied by the row address. */
struct Val
{
    RowAddr row = 0;

    unsigned
    parity() const
    {
        return row & 1;
    }
};

/** A multi-bit two's-complement value, LSB first. */
using Word = std::vector<Val>;

/** Gate-level program builder for one tile. */
class KernelBuilder
{
  public:
    /**
     * @param lib Gate library (feasibility + device parameters).
     * @param cfg Array geometry.
     * @param tile Tile the kernel executes in.
     * @param first_free_row First row the allocator may hand out;
     *        rows below it are owned by the caller's data layout.
     */
    KernelBuilder(const GateLibrary &lib, const ArrayConfig &cfg,
                  TileAddr tile, unsigned first_free_row);

    // -- Program assembly ---------------------------------------------

    /** Activate a contiguous column range (clears previous set). */
    void activate(ColAddr lo, ColAddr hi);

    /** Finish: append HALT and return the program. */
    Program finish();

    /** Instructions emitted so far. */
    std::size_t emitted() const { return program_.size(); }

    /** Peak scratch rows in simultaneous use. */
    unsigned scratchHighWater() const { return rows_.highWater(); }

    /**
     * Placement locality: allocate every gate's output row as close
     * as possible to its inputs, keeping operand spans short.
     * Defaults to on when the device has logic-line parasitics
     * (where span costs voltage — see the [95] ablation), off for
     * ideal wires.
     */
    void setPlacementLocality(bool on) { locality_ = on; }
    bool placementLocality() const { return locality_; }

    // -- Values ---------------------------------------------------------

    /** Wrap a caller-owned row as a value (not allocator-managed). */
    Val
    pinned(RowAddr row) const
    {
        return Val{row};
    }

    /** Caller-owned word at rows start, start+stride, ... (all the
     *  same parity; stride must be even). */
    Word pinnedWord(RowAddr start, unsigned bits,
                    unsigned stride = 2) const;

    /** Fresh scratch bit of the given parity, preset to @p value. */
    Val constant(Bit value, unsigned parity = 0);

    /** Fresh scratch bit with *no* preset emitted — for rows about
     *  to be overwritten by a row transfer. */
    Val
    scratch(unsigned parity)
    {
        return Val{allocOut(parity, anchor_)};
    }

    // -- Row transfers (cross-column transport) -------------------------

    /** Tile row -> controller row buffer. */
    void readRow(RowAddr row);

    /** Row buffer -> tile row. */
    void writeRow(RowAddr row);

    /** Row buffer -> tile row, rotated left by @p shift columns
     *  (column c receives buffer column c + shift). */
    void writeRowShifted(RowAddr row, ColAddr shift);

    /**
     * Copy the word at @p src into freshly allocated rows of the
     * same parity, with every bit shifted left by @p shift columns:
     * column c of the result holds column c + shift of the source.
     * Costs 2 row transfers per bit.
     */
    Word shiftedCopy(const Word &src, ColAddr shift);

    /**
     * Tree-sum a word across @p columns consecutive columns (power
     * of two): after log2(columns) rounds of shifted copies and
     * SIMD adds, column c holds the sum over columns [c, c+columns)
     * (wrapping); column 0 holds the full total.  The result grows
     * by log2(columns) bits.
     *
     * @param signed_values Treat the word as two's complement (sign
     *        extension instead of carry growth per round).
     */
    Word crossColumnSum(Word value, unsigned columns,
                        bool signed_values = false);

    /** Release a scratch bit. */
    void free(Val v);
    void freeWord(Word &w);

    // -- Single gates -----------------------------------------------------

    /** Preset + gate; output allocated at the opposite parity of the
     *  inputs.  Inputs must share parity; the gate must be feasible. */
    Val gate1(GateType g, Val a);
    Val gate2(GateType g, Val a, Val b);
    Val gate3(GateType g, Val a, Val b, Val c);

    /** BUF-copy @p v to the opposite parity. */
    Val copyFlip(Val v);

    /** Ensure a value sits at @p parity, copying if needed.  The
     *  original is *not* freed when a copy is made. */
    Val asParity(Val v, unsigned parity);

    // -- Logic helpers (results at the stated parity) ---------------------

    /** NOT; result parity = !a.parity(). */
    Val not_(Val a);
    /** NAND; result parity flips. */
    Val nand(Val a, Val b);
    /** AND via direct gate when feasible (parity flips). */
    Val andFlip(Val a, Val b);
    /** AND with result at the inputs' parity (NAND + NOT). */
    Val andSame(Val a, Val b);
    /** OR with parity flip (direct gate or DeMorgan fallback). */
    Val orFlip(Val a, Val b);
    /** XOR at the inputs' parity (4 NAND + 1 copy). */
    Val xorSame(Val a, Val b);
    /** XNOR at the flipped parity (XOR + NOT). */
    Val xnorFlip(Val a, Val b);

    // -- Arithmetic (words are even-parity, LSB first) ---------------------

    /**
     * Full adder (paper Section II-B): 9 NANDs + 2 parity copies,
     * 7 live temporaries.  a, b, cin share a parity; sum and cout
     * come back at that same parity.
     */
    void fullAdder(Val a, Val b, Val cin, Val &sum, Val &cout);

    /** Half adder: XOR + AND (sum/carry at the inputs' parity). */
    void halfAdder(Val a, Val b, Val &sum, Val &carry);

    /**
     * Ripple-carry add.  Operands may differ in width (the shorter
     * is implicitly sign- or zero-extended per @p signed_ext).
     * Result width = max width (+1 when @p grow).
     */
    Word add(const Word &a, const Word &b, bool grow = true,
             bool signed_ext = false);

    /** a - b in two's complement; result width = max width + 1 with
     *  sign extension semantics. */
    Word sub(const Word &a, const Word &b);

    /** Unsigned shift-add multiply; result width = |a| + |b|. */
    Word mulUnsigned(const Word &a, const Word &b);

    /**
     * Signed (two's complement) multiply: operands are sign-extended
     * to the result width and multiplied modulo 2^w.
     */
    Word mulSigned(const Word &a, const Word &b);

    /** Population count of @p bits (even parity), as a word.
     *  Linear counter-increment form: minimal scratch, O(n log n)
     *  gates. */
    Word popcount(const std::vector<Val> &bits);

    /**
     * Population count via carry-save (Wallace) reduction: ~n full
     * adders total, the form a latency-conscious mapping uses for
     * the BNN popcounts.  Consumes (frees) the input bits.
     */
    Word popcountTree(std::vector<Val> bits);

    /** Zero-valued word of @p bits. */
    Word zeroWord(unsigned bits, unsigned parity = 0);

  private:
    /** Emit a preset of @p row to the gate's required value. */
    void emitPreset(Bit value, RowAddr row);

    void emitGate(GateType g, const std::array<RowAddr, 3> &in, int n,
                  RowAddr out);

    /** Pick an implementable variant: asserts feasibility. */
    void requireFeasible(GateType g) const;

    /** Output-row allocation honoring the locality policy. */
    RowAddr allocOut(unsigned parity, RowAddr anchor);

    const GateLibrary &lib_;
    ArrayConfig cfg_;
    TileAddr tile_;
    RowAllocator rows_;
    Program program_;
    bool locality_ = false;
    bool finished_ = false;
    /** Row neighbourhood of recent activity: pinned operands and
     *  gate outputs update it; locality allocation gravitates to
     *  it.  Mutable because pinnedWord() is logically const. */
    mutable RowAddr anchor_ = 0;
};

} // namespace mouse

#endif // MOUSE_COMPILE_BUILDER_HH
