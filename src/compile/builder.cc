#include "builder.hh"

#include "common/logging.hh"

namespace mouse
{

KernelBuilder::KernelBuilder(const GateLibrary &lib,
                             const ArrayConfig &cfg, TileAddr tile,
                             unsigned first_free_row)
    : lib_(lib), cfg_(cfg), tile_(tile),
      rows_(cfg.tileRows, first_free_row),
      locality_(lib.config().wireResistancePerCell > 0.0)
{
    mouse_assert(tile < cfg.numDataTiles || tile == kBroadcastTile,
                 "tile OOB");
}

RowAddr
KernelBuilder::allocOut(unsigned parity, RowAddr anchor)
{
    return locality_ ? rows_.allocNear(parity, anchor)
                     : rows_.alloc(parity);
}

void
KernelBuilder::activate(ColAddr lo, ColAddr hi)
{
    program_.instructions.push_back(
        Instruction::activateRange(lo, hi, true));
}

Program
KernelBuilder::finish()
{
    mouse_assert(!finished_, "finish() called twice");
    finished_ = true;
    program_.instructions.push_back(Instruction::halt());
    return std::move(program_);
}

Word
KernelBuilder::pinnedWord(RowAddr start, unsigned bits,
                          unsigned stride) const
{
    mouse_assert(stride % 2 == 0, "stride must preserve parity");
    Word w;
    w.reserve(bits);
    for (unsigned i = 0; i < bits; ++i) {
        w.push_back(Val{static_cast<RowAddr>(start + i * stride)});
    }
    anchor_ = start;
    return w;
}

void
KernelBuilder::readRow(RowAddr row)
{
    program_.instructions.push_back(
        Instruction::readRow(tile_, row));
}

void
KernelBuilder::writeRow(RowAddr row)
{
    program_.instructions.push_back(
        Instruction::writeRow(tile_, row));
}

void
KernelBuilder::writeRowShifted(RowAddr row, ColAddr shift)
{
    program_.instructions.push_back(
        Instruction::writeRowShifted(tile_, row, shift));
}

Word
KernelBuilder::shiftedCopy(const Word &src, ColAddr shift)
{
    Word dst;
    dst.reserve(src.size());
    for (Val v : src) {
        const Val d = scratch(v.parity());
        readRow(v.row);
        writeRowShifted(d.row, shift);
        dst.push_back(d);
    }
    return dst;
}

Word
KernelBuilder::crossColumnSum(Word value, unsigned columns,
                              bool signed_values)
{
    mouse_assert(columns >= 2 && (columns & (columns - 1)) == 0,
                 "column count must be a power of two");
    for (unsigned stride = 1; stride < columns; stride <<= 1) {
        Word shifted =
            shiftedCopy(value, static_cast<ColAddr>(stride));
        Word next;
        if (signed_values) {
            // Exact signed sum: widen both addends by an aliased
            // sign bit (free) and add without carry growth.
            Word ve = value;
            ve.push_back(value.back());
            Word se = shifted;
            se.push_back(shifted.back());
            next = add(ve, se, /*grow=*/false);
        } else {
            next = add(value, shifted, /*grow=*/true);
        }
        freeWord(value);
        freeWord(shifted);
        value = std::move(next);
    }
    return value;
}

Val
KernelBuilder::constant(Bit value, unsigned parity)
{
    const Val v{allocOut(parity, anchor_)};
    emitPreset(value, v.row);
    return v;
}

void
KernelBuilder::free(Val v)
{
    rows_.release(v.row);
}

void
KernelBuilder::freeWord(Word &w)
{
    for (Val v : w) {
        rows_.release(v.row);
    }
    w.clear();
}

void
KernelBuilder::emitPreset(Bit value, RowAddr row)
{
    program_.instructions.push_back(
        Instruction::preset(value, tile_, row));
}

void
KernelBuilder::emitGate(GateType g, const std::array<RowAddr, 3> &in,
                        int n, RowAddr out)
{
    switch (n) {
      case 1:
        program_.instructions.push_back(
            Instruction::gate(g, tile_, in[0], out));
        break;
      case 2:
        program_.instructions.push_back(
            Instruction::gate(g, tile_, in[0], in[1], out));
        break;
      default:
        program_.instructions.push_back(
            Instruction::gate(g, tile_, in[0], in[1], in[2], out));
        break;
    }
}

void
KernelBuilder::requireFeasible(GateType g) const
{
    if (!lib_.feasible(g)) {
        mouse_fatal("gate %s not feasible on %s", gateName(g).c_str(),
                    lib_.config().name().c_str());
    }
}

Val
KernelBuilder::gate1(GateType g, Val a)
{
    requireFeasible(g);
    mouse_assert(gateNumInputs(g) == 1, "arity");
    const Val out{allocOut(!a.parity(), a.row)};
    anchor_ = out.row;
    emitPreset(gatePreset(g), out.row);
    emitGate(g, {a.row, 0, 0}, 1, out.row);
    return out;
}

Val
KernelBuilder::gate2(GateType g, Val a, Val b)
{
    requireFeasible(g);
    mouse_assert(gateNumInputs(g) == 2, "arity");
    mouse_assert(a.parity() == b.parity(),
                 "gate2 inputs must share parity");
    const Val out{allocOut(!a.parity(), a.row)};
    anchor_ = out.row;
    emitPreset(gatePreset(g), out.row);
    emitGate(g, {a.row, b.row, 0}, 2, out.row);
    return out;
}

Val
KernelBuilder::gate3(GateType g, Val a, Val b, Val c)
{
    requireFeasible(g);
    mouse_assert(gateNumInputs(g) == 3, "arity");
    mouse_assert(a.parity() == b.parity() && b.parity() == c.parity(),
                 "gate3 inputs must share parity");
    const Val out{allocOut(!a.parity(), b.row)};
    anchor_ = out.row;
    emitPreset(gatePreset(g), out.row);
    emitGate(g, {a.row, b.row, c.row}, 3, out.row);
    return out;
}

Val
KernelBuilder::copyFlip(Val v)
{
    return gate1(GateType::kBuf, v);
}

Val
KernelBuilder::asParity(Val v, unsigned parity)
{
    // NOTE: when a copy is made the caller still owns the original;
    // compare rows to know whether a fresh scratch bit came back.
    if (v.parity() == parity) {
        return v;
    }
    return copyFlip(v);
}

Val
KernelBuilder::not_(Val a)
{
    return gate1(GateType::kNot, a);
}

Val
KernelBuilder::nand(Val a, Val b)
{
    return gate2(GateType::kNand2, a, b);
}

Val
KernelBuilder::andFlip(Val a, Val b)
{
    if (lib_.feasible(GateType::kAnd2)) {
        return gate2(GateType::kAnd2, a, b);
    }
    Val same = andSame(a, b);
    Val out = copyFlip(same);
    free(same);
    return out;
}

Val
KernelBuilder::andSame(Val a, Val b)
{
    Val n = nand(a, b);
    Val out = not_(n);
    free(n);
    return out;
}

Val
KernelBuilder::orFlip(Val a, Val b)
{
    if (lib_.feasible(GateType::kOr2)) {
        return gate2(GateType::kOr2, a, b);
    }
    // DeMorgan fallback: OR(a,b) = NAND(!a,!b); the NOTs flip parity
    // so the NAND lands back at the inputs' parity — copy to flip.
    Val na = not_(a);
    Val nb = not_(b);
    Val same = nand(na, nb);
    free(na);
    free(nb);
    Val out = copyFlip(same);
    free(same);
    return out;
}

Val
KernelBuilder::xorSame(Val a, Val b)
{
    mouse_assert(a.parity() == b.parity(), "xor inputs parity");
    Val t1 = nand(a, b);
    Val t1c = copyFlip(t1);
    free(t1);
    Val t2 = nand(a, t1c);
    Val t3 = nand(b, t1c);
    free(t1c);
    Val out = nand(t2, t3);
    free(t2);
    free(t3);
    return out;
}

Val
KernelBuilder::xnorFlip(Val a, Val b)
{
    Val x = xorSame(a, b);
    Val out = not_(x);
    free(x);
    return out;
}

void
KernelBuilder::fullAdder(Val a, Val b, Val cin, Val &sum, Val &cout)
{
    mouse_assert(a.parity() == b.parity() && b.parity() == cin.parity(),
                 "full adder inputs parity");
    // The paper's 9-NAND full add, plus the two parity copies the
    // bitline structure requires.
    Val t1 = nand(a, b);
    Val t1c = copyFlip(t1);
    Val t2 = nand(a, t1c);
    Val t3 = nand(b, t1c);
    free(t1c);
    Val t4 = nand(t2, t3);  // a xor b
    free(t2);
    free(t3);
    Val t5 = nand(t4, cin);
    Val t5c = copyFlip(t5);
    Val t6 = nand(t4, t5c);
    free(t4);
    Val t7 = nand(cin, t5c);
    free(t5c);
    sum = nand(t6, t7);
    free(t6);
    free(t7);
    cout = nand(t1, t5);
    free(t1);
    free(t5);
}

void
KernelBuilder::halfAdder(Val a, Val b, Val &sum, Val &carry)
{
    sum = xorSame(a, b);
    carry = andSame(a, b);
}

namespace
{

/** Bit i of @p w, falling back to sign/zero extension. */
Val
bitOrExtend(const Word &w, unsigned i, bool signed_ext,
            std::optional<Val> zero)
{
    if (i < w.size()) {
        return w[i];
    }
    if (signed_ext) {
        return w.back();
    }
    mouse_assert(zero.has_value(), "zero extension bit missing");
    return *zero;
}

} // namespace

Word
KernelBuilder::add(const Word &a, const Word &b, bool grow,
                   bool signed_ext)
{
    mouse_assert(!a.empty() && !b.empty(), "empty operands");
    const unsigned n =
        static_cast<unsigned>(std::max(a.size(), b.size()));
    std::optional<Val> zero;
    if (!signed_ext && a.size() != b.size()) {
        zero = constant(0, a[0].parity());
    }

    Word result;
    result.reserve(n + 1);
    Val carry{};
    for (unsigned i = 0; i < n; ++i) {
        const Val ai = bitOrExtend(a, i, signed_ext, zero);
        const Val bi = bitOrExtend(b, i, signed_ext, zero);
        Val sum{};
        if (i == 0) {
            halfAdder(ai, bi, sum, carry);
        } else {
            Val next{};
            fullAdder(ai, bi, carry, sum, next);
            free(carry);
            carry = next;
        }
        result.push_back(sum);
    }
    if (grow) {
        result.push_back(carry);
    } else {
        free(carry);
    }
    if (zero) {
        free(*zero);
    }
    return result;
}

Word
KernelBuilder::sub(const Word &a, const Word &b)
{
    mouse_assert(!a.empty() && !b.empty(), "empty operands");
    // a - b = a + ~b + 1, computed over max width + 1 with sign
    // extension so the result is exact in two's complement.
    const unsigned n =
        static_cast<unsigned>(std::max(a.size(), b.size())) + 1;
    Word result;
    result.reserve(n);
    Val carry = constant(1, a[0].parity());
    for (unsigned i = 0; i < n; ++i) {
        const Val ai = bitOrExtend(a, i, true, std::nullopt);
        const Val bi = bitOrExtend(b, i, true, std::nullopt);
        // Complement of b_i at the operand parity: NOT then copy.
        Val nb = not_(bi);
        Val nbc = copyFlip(nb);
        free(nb);
        Val sum{};
        Val next{};
        fullAdder(ai, nbc, carry, sum, next);
        free(nbc);
        free(carry);
        carry = next;
        result.push_back(sum);
    }
    free(carry);
    return result;
}

Word
KernelBuilder::mulUnsigned(const Word &a, const Word &b)
{
    mouse_assert(!a.empty() && !b.empty(), "empty operands");
    const unsigned m = static_cast<unsigned>(a.size());
    const unsigned n = static_cast<unsigned>(b.size());
    const unsigned w = m + n;

    Word acc = zeroWord(w, a[0].parity());
    for (unsigned j = 0; j < n; ++j) {
        // Partial product a * b_j added into acc at offset j, with
        // the carry rippled to the top of the accumulator.
        Val carry{};
        bool have_carry = false;
        for (unsigned i = 0; i < m && j + i < w; ++i) {
            Val pij = andSame(a[i], b[j]);
            Val sum{};
            if (!have_carry) {
                Val c{};
                halfAdder(acc[j + i], pij, sum, c);
                carry = c;
                have_carry = true;
            } else {
                Val next{};
                fullAdder(acc[j + i], pij, carry, sum, next);
                free(carry);
                carry = next;
            }
            free(pij);
            free(acc[j + i]);
            acc[j + i] = sum;
        }
        for (unsigned k = j + m; k < w && have_carry; ++k) {
            Val sum{};
            Val next{};
            halfAdder(acc[k], carry, sum, next);
            free(carry);
            carry = next;
            free(acc[k]);
            acc[k] = sum;
        }
        if (have_carry) {
            free(carry);
        }
    }
    return acc;
}

Word
KernelBuilder::mulSigned(const Word &a, const Word &b)
{
    mouse_assert(!a.empty() && !b.empty(), "empty operands");
    const unsigned w = static_cast<unsigned>(a.size() + b.size());
    // Sign-extend both operands to the product width (the extension
    // entries alias the sign-bit row: reads are free) and multiply
    // modulo 2^w.
    Word ae = a;
    while (ae.size() < w) {
        ae.push_back(a.back());
    }
    Word be = b;
    while (be.size() < w) {
        be.push_back(b.back());
    }

    Word acc = zeroWord(w, a[0].parity());
    for (unsigned j = 0; j < w; ++j) {
        Val carry{};
        bool have_carry = false;
        for (unsigned i = 0; i + j < w; ++i) {
            Val pij = andSame(ae[i], be[j]);
            Val sum{};
            if (!have_carry) {
                Val c{};
                halfAdder(acc[j + i], pij, sum, c);
                carry = c;
                have_carry = true;
            } else {
                Val next{};
                fullAdder(acc[j + i], pij, carry, sum, next);
                free(carry);
                carry = next;
            }
            free(pij);
            free(acc[j + i]);
            acc[j + i] = sum;
        }
        if (have_carry) {
            free(carry);
        }
    }
    return acc;
}

Word
KernelBuilder::popcount(const std::vector<Val> &bits)
{
    mouse_assert(!bits.empty(), "empty popcount");
    unsigned width = 1;
    while ((1u << width) <= bits.size()) {
        ++width;
    }
    Word acc = zeroWord(width, bits[0].parity());
    for (Val bit : bits) {
        // Increment-by-bit: ripple half adders up the counter.
        Val carry = bit;
        bool carry_owned = false;
        for (unsigned i = 0; i < width; ++i) {
            Val sum{};
            Val next{};
            halfAdder(acc[i], carry, sum, next);
            if (carry_owned) {
                free(carry);
            }
            carry = next;
            carry_owned = true;
            free(acc[i]);
            acc[i] = sum;
        }
        free(carry);
    }
    return acc;
}

Word
KernelBuilder::popcountTree(std::vector<Val> bits)
{
    mouse_assert(!bits.empty(), "empty popcount");
    // Carry-save reduction: bucket bits by binary weight; each full
    // adder turns three same-weight bits into one sum bit (same
    // weight) and one carry bit (next weight).
    std::vector<std::vector<Val>> buckets;
    buckets.push_back(std::move(bits));
    // NOTE: index, don't hold references — pushing a new weight level
    // reallocates the outer vector.
    for (std::size_t weight = 0; weight < buckets.size(); ++weight) {
        while (buckets[weight].size() >= 2) {
            if (weight + 1 >= buckets.size()) {
                buckets.emplace_back();
            }
            const bool pair = buckets[weight].size() == 2;
            const Val a = buckets[weight].back();
            buckets[weight].pop_back();
            const Val b = buckets[weight].back();
            buckets[weight].pop_back();
            Val sum{};
            Val carry{};
            if (pair) {
                halfAdder(a, b, sum, carry);
            } else {
                const Val c = buckets[weight].back();
                buckets[weight].pop_back();
                fullAdder(a, b, c, sum, carry);
                free(c);
            }
            free(a);
            free(b);
            buckets[weight].push_back(sum);
            buckets[weight + 1].push_back(carry);
            if (pair) {
                break;  // one sum bit remains at this weight
            }
        }
    }
    Word result;
    result.reserve(buckets.size());
    for (auto &bucket : buckets) {
        mouse_assert(bucket.size() == 1, "reduction incomplete");
        result.push_back(bucket.front());
    }
    return result;
}

Word
KernelBuilder::zeroWord(unsigned bits, unsigned parity)
{
    Word w;
    w.reserve(bits);
    for (unsigned i = 0; i < bits; ++i) {
        w.push_back(constant(0, parity));
    }
    return w;
}

} // namespace mouse
