#include "workloads.hh"

namespace mouse::exp
{

namespace
{

std::vector<Benchmark>
buildBenchmarks()
{
    std::vector<Benchmark> list;

    Benchmark mnist;
    mnist.name = "SVM MNIST";
    mnist.kind = WorkloadKind::Svm;
    mnist.capacityMB = 64;
    mnist.dataTiles = 448;  // 64 MB minus instruction tiles
    mnist.svm = SvmWorkload{"SVM MNIST", 11813, 784, 8, 10,
                            24, 32, 8, 40};
    list.push_back(mnist);

    Benchmark mnist_bin;
    mnist_bin.name = "SVM MNIST (Bin)";
    mnist_bin.kind = WorkloadKind::Svm;
    mnist_bin.capacityMB = 8;
    mnist_bin.dataTiles = 56;
    mnist_bin.svm = SvmWorkload{"SVM MNIST (Bin)", 12214, 784, 1, 10,
                                11, 22, 8, 30};
    list.push_back(mnist_bin);

    Benchmark har;
    har.name = "SVM HAR";
    har.kind = WorkloadKind::Svm;
    har.capacityMB = 16;
    har.dataTiles = 112;
    har.svm = SvmWorkload{"SVM HAR", 2809, 561, 8, 6, 24, 32, 8, 40};
    list.push_back(har);

    Benchmark adult;
    adult.name = "SVM ADULT";
    adult.kind = WorkloadKind::Svm;
    adult.capacityMB = 1;
    adult.dataTiles = 7;
    adult.svm = SvmWorkload{"SVM ADULT", 1909, 15, 8, 2, 20, 28, 8,
                            36};
    list.push_back(adult);

    Benchmark finn;
    finn.name = "BNN FINN MNIST";
    finn.kind = WorkloadKind::Bnn;
    finn.capacityMB = 8;
    finn.dataTiles = 56;
    finn.bnn = finnShape();
    list.push_back(finn);

    Benchmark fpbnn;
    fpbnn.name = "BNN FP-BNN MNIST";
    fpbnn.kind = WorkloadKind::Bnn;
    fpbnn.capacityMB = 16;
    fpbnn.dataTiles = 112;
    fpbnn.bnn = fpBnnShape();
    list.push_back(fpbnn);

    return list;
}

} // namespace

const std::vector<Benchmark> &
paperBenchmarks()
{
    static const std::vector<Benchmark> list = buildBenchmarks();
    return list;
}

Trace
traceFor(const GateLibrary &lib, const Benchmark &bench,
         MappingInfo *info)
{
    MouseShape shape;
    shape.numDataTiles = bench.dataTiles;
    if (bench.kind == WorkloadKind::Svm) {
        return buildSvmTrace(lib, bench.svm, shape, info);
    }
    return buildBnnTrace(lib, bench.bnn, shape, info);
}

const std::vector<Watts> &
powerSweep()
{
    static const std::vector<Watts> powers = {
        60e-6, 100e-6, 200e-6, 500e-6, 1e-3, 2e-3, 5e-3};
    return powers;
}

} // namespace mouse::exp
