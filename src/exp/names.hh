/**
 * @file
 * Canonical short names for techs and benchmarks.
 *
 * The CLI, the benches, and the experiment runner all need the same
 * stable keys ("modern-stt", "mnist-bin", ...) for parsing flags and
 * labelling machine-readable output.  This is the one place they are
 * defined; display names stay with DeviceConfig::name() and
 * exp::Benchmark::name.
 */

#ifndef MOUSE_EXP_NAMES_HH
#define MOUSE_EXP_NAMES_HH

#include <optional>
#include <string>
#include <vector>

#include "device/mtj_params.hh"

namespace mouse::names
{

/** Short key ("modern-stt" | "projected-stt" | "she") -> tech. */
std::optional<TechConfig> parseTech(const std::string &key);

/** Short CLI key of @p tech. */
const char *techName(TechConfig tech);

/** The three technology configurations, in paper order. */
const std::vector<TechConfig> &allTechs();

/** Benchmark keys, index-aligned with exp::paperBenchmarks(). */
const std::vector<std::string> &listBenchmarks();

/** Key -> index into exp::paperBenchmarks(). */
std::optional<std::size_t> benchmarkIndex(const std::string &key);

} // namespace mouse::names

#endif // MOUSE_EXP_NAMES_HH
