#include "names.hh"

namespace mouse::names
{

std::optional<TechConfig>
parseTech(const std::string &key)
{
    if (key == "modern-stt") {
        return TechConfig::ModernStt;
    }
    if (key == "projected-stt") {
        return TechConfig::ProjectedStt;
    }
    if (key == "she") {
        return TechConfig::ProjectedShe;
    }
    return std::nullopt;
}

const char *
techName(TechConfig tech)
{
    switch (tech) {
      case TechConfig::ModernStt:
        return "modern-stt";
      case TechConfig::ProjectedStt:
        return "projected-stt";
      case TechConfig::ProjectedShe:
        return "she";
    }
    return "unknown";
}

const std::vector<TechConfig> &
allTechs()
{
    static const std::vector<TechConfig> techs = {
        TechConfig::ModernStt, TechConfig::ProjectedStt,
        TechConfig::ProjectedShe};
    return techs;
}

const std::vector<std::string> &
listBenchmarks()
{
    static const std::vector<std::string> keys = {
        "mnist", "mnist-bin", "har", "adult", "finn", "fpbnn"};
    return keys;
}

std::optional<std::size_t>
benchmarkIndex(const std::string &key)
{
    const auto &keys = listBenchmarks();
    for (std::size_t i = 0; i < keys.size(); ++i) {
        if (keys[i] == key) {
            return i;
        }
    }
    return std::nullopt;
}

} // namespace mouse::names
