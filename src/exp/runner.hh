/**
 * @file
 * The parallel experiment engine.
 *
 * ExperimentRunner fans the points of a SweepGrid out across a fixed
 * pool of worker threads (work is stolen from a shared atomic
 * cursor) and aggregates the RunResults into an index-keyed
 * SweepResult table.  Determinism is by construction: a point's
 * inputs — shared immutable GateLibrary/EnergyModel/Trace contexts
 * plus a seed derived from (rootSeed, index) — depend only on its
 * grid index, never on the thread or schedule, so an N-thread run is
 * bit-identical to a serial one.
 *
 * The generic forEach()/map() primitives are public so benches can
 * parallelize sweeps whose per-point work is not a plain trace
 * simulation (Monte-Carlo variation trials, capacitor sweeps, ...).
 */

#ifndef MOUSE_EXP_RUNNER_HH
#define MOUSE_EXP_RUNNER_HH

#include <functional>
#include <type_traits>
#include <vector>

#include "core/accelerator.hh"
#include "exp/sweep.hh"

namespace mouse::exp
{

/** Index-keyed table of sweep results. */
struct SweepResult
{
    /** The grid that produced the results (axis labels). */
    SweepGrid grid;
    /** One result per grid point, in canonical grid order. */
    std::vector<RunResult> points;
    /** Wall-clock of the whole sweep, including context building. */
    double wallSeconds = 0.0;
    /** Worker threads the sweep ran on. */
    unsigned threads = 1;
    /** Point stats folded name-wise; null unless grid.telemetry
     *  asked for stats. */
    std::shared_ptr<obs::StatRegistry> stats;
    /** All points' events/waveform, each tagged with its grid index
     *  as the trace pid; null unless telemetry asked. */
    std::shared_ptr<obs::TraceSink> trace;

    /** Points per second of wall-clock. */
    double
    pointsPerSecond() const
    {
        return wallSeconds > 0.0
                   ? static_cast<double>(points.size()) / wallSeconds
                   : 0.0;
    }

    /** JSON document: {"threads":..,"wall_seconds":..,"points":[..]}. */
    std::string toJson() const;
};

/** Fixed-pool parallel runner with deterministic aggregation. */
class ExperimentRunner
{
  public:
    /** @param threads Worker count; 0 means hardware_concurrency. */
    explicit ExperimentRunner(unsigned threads = 0);

    unsigned
    threads() const
    {
        return threads_;
    }

    /**
     * Install a progress observer for run(): called as points
     * complete with (done, total).  Invoked from worker threads but
     * serialized by the runner, so the callback itself needs no
     * locking; keep it fast (it holds up result reporting, never
     * the simulations).
     */
    void
    setProgress(std::function<void(std::size_t, std::size_t)> fn)
    {
        progress_ = std::move(fn);
    }

    /**
     * Attach a live-metrics hub: run() publishes admission (all
     * points up front), per-point batch/latency samples and worker
     * activity into it, so a long sweep is observable while it runs.
     * Observational only — SweepResult and its folded telemetry are
     * byte-identical with or without a hub.  Null detaches.
     */
    void setMetrics(obs::MetricsHub *hub) { metrics_ = hub; }

    /**
     * Invoke fn(i) for every i in [0, count), distributing indices
     * across the pool; blocks until all complete.  fn must not
     * mutate shared state without its own synchronization.
     */
    void forEach(std::size_t count,
                 const std::function<void(std::size_t)> &fn) const;

    /** Ordered parallel map: out[i] = fn(i). */
    template <typename F>
    auto
    map(std::size_t count, F &&fn) const
        -> std::vector<std::invoke_result_t<F &, std::size_t>>
    {
        std::vector<std::invoke_result_t<F &, std::size_t>> out(
            count);
        forEach(count,
                [&](std::size_t i) { out[i] = fn(i); });
        return out;
    }

    /**
     * Run every point of @p grid and collect the index-keyed result
     * table.  Shared per-(tech, margin) gate libraries and
     * per-(tech, margin, benchmark) traces are built once (also in
     * parallel) and read concurrently by the point runs.
     */
    SweepResult run(const SweepGrid &grid) const;

  private:
    unsigned threads_;
    std::function<void(std::size_t, std::size_t)> progress_;
    obs::MetricsHub *metrics_ = nullptr;
};

} // namespace mouse::exp

#endif // MOUSE_EXP_RUNNER_HH
