#include "runner.hh"

#include <atomic>
#include <chrono>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>

#include "baseline/mcu/mcu_model.hh"
#include "baseline/selector.hh"
#include "baseline/sonic_scheme.hh"
#include "common/logging.hh"
#include "exp/names.hh"
#include "obs/metrics_hub.hh"

namespace mouse::exp
{

namespace
{

double
elapsed(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

} // namespace

ExperimentRunner::ExperimentRunner(unsigned threads)
    : threads_(threads)
{
    if (threads_ == 0) {
        threads_ = std::thread::hardware_concurrency();
    }
    if (threads_ == 0) {
        threads_ = 1;
    }
}

void
ExperimentRunner::forEach(
    std::size_t count,
    const std::function<void(std::size_t)> &fn) const
{
    if (count == 0) {
        return;
    }
    const unsigned workers = static_cast<unsigned>(
        std::min<std::size_t>(threads_, count));
    if (workers <= 1) {
        for (std::size_t i = 0; i < count; ++i) {
            fn(i);
        }
        return;
    }

    std::atomic<std::size_t> cursor{0};
    std::exception_ptr first_error;
    std::mutex error_mutex;
    auto worker = [&]() {
        while (true) {
            const std::size_t i =
                cursor.fetch_add(1, std::memory_order_relaxed);
            if (i >= count) {
                return;
            }
            try {
                fn(i);
            } catch (...) {
                std::lock_guard<std::mutex> lock(error_mutex);
                if (!first_error) {
                    first_error = std::current_exception();
                }
            }
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned t = 0; t < workers; ++t) {
        pool.emplace_back(worker);
    }
    for (auto &t : pool) {
        t.join();
    }
    if (first_error) {
        std::rethrow_exception(first_error);
    }
}

SweepResult
ExperimentRunner::run(const SweepGrid &grid) const
{
    const auto t0 = std::chrono::steady_clock::now();
    if (grid.benchmarks.empty()) {
        mouse_fatal("sweep grid has no benchmarks");
    }
    const std::size_t total = grid.size();

    // Shared immutable contexts: one gate library + energy model per
    // (tech, margin), one trace per (tech, margin, benchmark).  Both
    // levels are themselves built in parallel, then only read during
    // the point runs.
    struct Context
    {
        std::unique_ptr<GateLibrary> lib;
        std::unique_ptr<EnergyModel> energy;
    };
    const std::size_t nctx = grid.techs.size() * grid.margins.size();
    std::vector<Context> contexts(nctx);
    forEach(nctx, [&](std::size_t i) {
        const TechConfig tech = grid.techs[i / grid.margins.size()];
        const double margin = grid.margins[i % grid.margins.size()];
        contexts[i].lib = std::make_unique<GateLibrary>(
            makeDeviceConfig(tech), margin);
        contexts[i].energy =
            std::make_unique<EnergyModel>(*contexts[i].lib);
    });

    const std::size_t nbench = grid.benchmarks.size();
    std::vector<Trace> traces(nctx * nbench);
    forEach(traces.size(), [&](std::size_t i) {
        traces[i] = traceFor(*contexts[i / nbench].lib,
                             grid.benchmarks[i % nbench]);
    });

    SweepResult result;
    result.grid = grid;
    result.threads = threads_;
    if (metrics_ != nullptr) {
        // The whole grid is known up front: admit it all, so the
        // queue-depth gauge shows remaining points as the sweep runs.
        metrics_->recordSubmit(total);
    }
    std::atomic<std::size_t> done{0};
    std::mutex progress_mutex;
    result.points = map(total, [&](std::size_t i) {
        const SweepPoint point = grid.at(i);
        // Locate the shared context by re-doing the mixed-radix
        // decode on the axis indices (at() returns values, and
        // margins may repeat a value).
        std::size_t rest = i / grid.seedsPerPoint;
        const std::size_t margin_index = rest % grid.margins.size();
        rest /= grid.margins.size();
        rest /= grid.checkpointPeriods.size();
        rest /= grid.sources.empty() ? grid.powers.size()
                                     : grid.sources.size();
        if (!grid.platforms.empty()) {
            rest /= grid.platforms.size();
        }
        if (!grid.schemes.empty()) {
            rest /= grid.schemes.size();
        }
        const std::size_t tech_index = rest / grid.benchmarks.size();
        const std::size_t ctx =
            tech_index * grid.margins.size() + margin_index;
        const Trace &trace = traces[ctx * nbench + point.benchmark];
        const EnergyModel &energy = *contexts[ctx].energy;

        const auto p0 = std::chrono::steady_clock::now();
        RunResult r;
        // Each point records into its own sinks; they are folded in
        // grid-index order below, so any thread count produces the
        // same aggregate bit for bit.
        obs::Telemetry telem = obs::Telemetry::make(grid.telemetry);
        obs::Telemetry *tp = telem.enabled() ? &telem : nullptr;
        // Scheme dispatch: the schemes axis selects which system
        // simulates this point.  Telemetry channels are MOUSE
        // concepts; baseline points leave their sinks empty.
        BaselineSelector sel;
        if (!parseBaselineSelector(point.scheme, &sel)) {
            r.error = RunError::kBaselineSchemeUnknown;
        } else if (sel.system == BaselineSystem::kMcu) {
            const auto scheme = mcu::makeEhScheme(sel.scheme);
            const mcu::McuProgram mp = mcu::mcuProgramFromTrace(
                trace, point.checkpointPeriod > 1
                           ? point.checkpointPeriod
                           : 0);
            r.stats =
                point.continuous()
                    ? mcu::mcuRunContinuous(mp, *scheme)
                    : mcu::mcuRunHarvested(mp, *scheme,
                                           grid.harvestFor(point));
        } else if (sel.system == BaselineSystem::kSonic) {
            const auto sb = sonicBenchmarkFor(
                grid.benchmarks[point.benchmark].name);
            if (!sb) {
                // No SONIC calibration for this benchmark: a typed
                // per-point rejection, exactly like the run API.
                r.error = RunError::kBaselineSchemeUnknown;
            } else {
                r.stats = point.continuous()
                              ? sonicRunContinuous(*sb)
                              : sonicRunHarvested(*sb, point.power);
            }
        } else if (point.continuous()) {
            r.stats = runContinuousTrace(trace, energy, tp);
        } else {
            r.stats = runHarvestedTrace(trace, energy,
                                        grid.harvestFor(point), tp);
        }
        r.wallSeconds = elapsed(p0);
        r.meta.index = point.index;
        r.meta.tech = names::techName(point.tech);
        r.meta.benchmark = grid.benchmarks[point.benchmark].name;
        r.meta.system = baselineSystemName(sel.system);
        r.meta.scheme = sel.scheme;
        r.meta.power = point.continuous() ? 0.0 : point.power;
        if (!point.continuous()) {
            r.meta.source = point.source.name();
        }
        r.meta.platform = point.platform;
        r.meta.seed = point.seed;
        r.meta.checkpointPeriod = point.checkpointPeriod;
        r.meta.margin = point.margin;
        r.statsTree = telem.stats;
        r.traceSink = telem.sink;
        if (metrics_ != nullptr) {
            metrics_->recordBatch(1, 1, r.stats.totalTime(),
                                  r.stats.totalEnergy(),
                                  r.stats.chargingTime,
                                  r.stats.outages);
            metrics_->recordDone(r.wallSeconds,
                                 r.stats.totalTime());
        }
        if (progress_) {
            const std::size_t d =
                done.fetch_add(1, std::memory_order_relaxed) + 1;
            std::lock_guard<std::mutex> lock(progress_mutex);
            progress_(d, total);
        }
        return r;
    });
    // Fold per-point telemetry at the join, in index order.
    if (grid.telemetry.stats) {
        result.stats = std::make_shared<obs::StatRegistry>();
        for (const RunResult &r : result.points) {
            if (r.statsTree) {
                result.stats->merge(*r.statsTree);
            }
        }
    }
    if (grid.telemetry.events || grid.telemetry.waveform) {
        // The merged sink holds every point's buffers; scale the cap
        // with the grid (bounded) so per-point caps stay the limit.
        const std::size_t per =
            grid.telemetry.maxEvents > 0 ? grid.telemetry.maxEvents
                                         : (std::size_t{1} << 20);
        const std::size_t cap = std::min<std::size_t>(
            per * std::max<std::size_t>(total, 1),
            std::size_t{1} << 24);
        result.trace =
            std::make_shared<obs::TraceSink>(cap, cap);
        for (std::size_t i = 0; i < result.points.size(); ++i) {
            if (result.points[i].traceSink) {
                result.trace->mergeFrom(
                    *result.points[i].traceSink,
                    static_cast<std::uint32_t>(i));
            }
        }
    }
    result.wallSeconds = elapsed(t0);
    return result;
}

std::string
SweepResult::toJson() const
{
    std::string j = "{";
    j += "\"schema\":" + std::to_string(kResultSchemaVersion);
    j += ",\"threads\":" + std::to_string(threads);
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", wallSeconds);
    j += ",\"wall_seconds\":";
    j += buf;
    j += ",\"points\":[";
    for (std::size_t i = 0; i < points.size(); ++i) {
        if (i > 0) {
            j += ",";
        }
        j += points[i].toJson();
    }
    j += "]}";
    return j;
}

} // namespace mouse::exp
