/**
 * @file
 * The six evaluation workloads of the paper (Section VIII) with
 * their Table III/IV memory provisioning, plus trace builders and
 * the Figure-9 power sweep.  Moved out of bench/ so the experiment
 * runner, the CLI, and the benches all share one definition
 * (bench/workloads.hh re-exports these under mouse::bench for the
 * existing bench sources).
 */

#ifndef MOUSE_EXP_WORKLOADS_HH
#define MOUSE_EXP_WORKLOADS_HH

#include <string>
#include <vector>

#include "ml/mapping.hh"
#include "sim/simulator.hh"

namespace mouse::exp
{

/** Kind discriminator for the evaluation workloads. */
enum class WorkloadKind
{
    Svm,
    Bnn,
};

/** One benchmark row of the evaluation. */
struct Benchmark
{
    std::string name;
    WorkloadKind kind = WorkloadKind::Svm;
    /** Array capacity provisioned (Table III), in MB. */
    double capacityMB = 0.0;
    /** Data tiles (128 KB each) granted to the mapping. */
    unsigned dataTiles = 0;
    SvmWorkload svm{};
    BnnShape bnn{};
};

/** The paper's six benchmarks, index-aligned with
 *  names::listBenchmarks(). */
const std::vector<Benchmark> &paperBenchmarks();

/** Compressed trace of one inference of @p bench on @p lib. */
Trace traceFor(const GateLibrary &lib, const Benchmark &bench,
               MappingInfo *info = nullptr);

/** The paper's power sweep: 60 uW (body heat) to 5 mW (Powercast). */
const std::vector<Watts> &powerSweep();

} // namespace mouse::exp

#endif // MOUSE_EXP_WORKLOADS_HH
