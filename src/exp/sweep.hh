/**
 * @file
 * Declarative sweep grids.
 *
 * Every headline result in the paper is a grid of independent
 * simulations (Figure 9 alone is 3 techs x 6 benchmarks x a power
 * sweep; the ablations add checkpoint periods, gate margins, and
 * Monte-Carlo seeds).  A SweepGrid names those axes declaratively;
 * the cartesian product is enumerated in a canonical mixed-radix
 * order (tech slowest, seed slot fastest) so a point's index — not
 * the thread that happens to run it — identifies it.
 *
 * Per-point RNG seeds are derived with a SplitMix64 step from the
 * grid's root seed and the point index, so results are bit-identical
 * regardless of thread count or schedule.
 */

#ifndef MOUSE_EXP_SWEEP_HH
#define MOUSE_EXP_SWEEP_HH

#include <cstdint>

#include "exp/workloads.hh"
#include "logic/gate_solver.hh"
#include "obs/telemetry.hh"

namespace mouse::exp
{

/** Deterministic per-point seed: SplitMix64(root, index). */
std::uint64_t deriveSeed(std::uint64_t rootSeed, std::uint64_t index);

/** Coordinates of one grid point (decoded from its index). */
struct SweepPoint
{
    std::size_t index = 0;
    TechConfig tech = TechConfig::ModernStt;
    /** Index into the grid's benchmarks vector. */
    std::size_t benchmark = 0;
    /** Headline harvester power (constant power, or the mean of a
     *  scenario source); <= 0 means continuous power. */
    Watts power = 0.0;
    /** True when the point came from the grid's sources axis; such
     *  points are always harvested, whatever their mean power. */
    bool scenario = false;
    /** Position along the sources axis (0 for power sweeps). */
    std::size_t sourceSlot = 0;
    /** The environment this point runs under: the sources-axis
     *  entry, or constant(power) for classic power sweeps. */
    SourceSpec source;
    /** Platform preset name; empty = tech defaults. */
    std::string platform;
    /** Baseline selector from the grid's schemes axis ("mouse",
     *  "mcu:<scheme>", "sonic"); empty when the grid has no schemes
     *  axis, which runs MOUSE as always. */
    std::string scheme;
    unsigned checkpointPeriod = 1;
    double margin = kDefaultGateMargin;
    /** Position along the Monte-Carlo seed axis. */
    std::size_t seedSlot = 0;
    /** Derived outage-schedule seed for this point. */
    std::uint64_t seed = 0;

    bool
    continuous() const
    {
        return !scenario && power <= 0.0;
    }
};

/** Continuous-power marker for SweepGrid::powers. */
constexpr Watts kContinuousPower = 0.0;

/** A cartesian sweep over the experiment axes. */
struct SweepGrid
{
    std::vector<TechConfig> techs{TechConfig::ModernStt};
    std::vector<Benchmark> benchmarks;
    /** Harvester powers; kContinuousPower entries run on wall
     *  power.  Ignored when `sources` is non-empty. */
    std::vector<Watts> powers{kContinuousPower};
    /**
     * Scenario-source axis: when non-empty it *replaces* the powers
     * axis in the mixed-radix decode (same slot, so grids that never
     * set it keep their historical index -> point mapping and
     * derived seeds), and every point is harvested under its
     * SourceSpec.  See docs/HARVESTING.md.
     */
    std::vector<SourceSpec> sources;
    /**
     * Platform axis: capacitor/converter presets by name
     * (harvest/platform.hh), decoded between the power/source slot
     * and the benchmark slot.  Empty (the default) contributes
     * radix 1 — i.e. nothing — keeping old grids bit-identical.
     */
    std::vector<std::string> platforms;
    /**
     * System/scheme axis: baseline selectors by name
     * (baseline/selector.hh — "mouse", "mcu:bec", "mcu:odab",
     * "mcu:clank", "mcu:oracle", "sonic"), decoded between the
     * platform slot and the benchmark slot.  Empty (the default)
     * contributes radix 1 and every point runs MOUSE, keeping old
     * grids bit-identical.  See docs/BASELINES.md.
     */
    std::vector<std::string> schemes;
    std::vector<unsigned> checkpointPeriods{1};
    std::vector<double> margins{kDefaultGateMargin};
    /** Monte-Carlo axis: independent derived seeds per point. */
    std::size_t seedsPerPoint = 1;
    /** Root of the per-point seed derivation. */
    std::uint64_t rootSeed = 1;
    /** Template for harvested points; power, checkpoint period and
     *  seed are overridden per point. */
    HarvestConfig harvestBase{};
    /**
     * Telemetry channels every point records (all off by default).
     * Each point fills its own sinks; the runner folds them — in
     * grid-index order, so bit-identically for any thread count —
     * into the SweepResult aggregates.
     */
    obs::TraceConfig telemetry{};

    /** Number of grid points (product of the axis lengths). */
    std::size_t size() const;

    /** Decode @p index into its coordinates.
     *  @pre index < size() and no axis is empty. */
    SweepPoint at(std::size_t index) const;

    /** Harvesting environment for @p point (harvested points). */
    HarvestConfig harvestFor(const SweepPoint &point) const;
};

} // namespace mouse::exp

#endif // MOUSE_EXP_SWEEP_HH
