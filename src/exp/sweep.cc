#include "sweep.hh"

#include "common/logging.hh"

namespace mouse::exp
{

std::uint64_t
deriveSeed(std::uint64_t rootSeed, std::uint64_t index)
{
    // One SplitMix64 step at stream position `index + 1`; matches the
    // seeding idiom of common/rng.hh so nearby indices diverge
    // immediately.
    std::uint64_t z =
        rootSeed + (index + 1) * 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::size_t
SweepGrid::size() const
{
    const std::size_t powerAxis =
        sources.empty() ? powers.size() : sources.size();
    const std::size_t platformAxis =
        platforms.empty() ? 1 : platforms.size();
    const std::size_t schemeAxis =
        schemes.empty() ? 1 : schemes.size();
    return techs.size() * benchmarks.size() * powerAxis *
           platformAxis * schemeAxis * checkpointPeriods.size() *
           margins.size() * seedsPerPoint;
}

SweepPoint
SweepGrid::at(std::size_t index) const
{
    if (techs.empty() || benchmarks.empty() ||
        (powers.empty() && sources.empty()) ||
        checkpointPeriods.empty() || margins.empty() ||
        seedsPerPoint == 0) {
        mouse_fatal("sweep grid has an empty axis");
    }
    if (index >= size()) {
        mouse_fatal("sweep point %zu out of range (grid has %zu)",
                    index, size());
    }
    SweepPoint p;
    p.index = index;
    p.seed = deriveSeed(rootSeed, index);

    // Mixed-radix decode, fastest axis last in the declaration
    // order: tech, benchmark, [scheme,] [platform,] power|source,
    // checkpointPeriod, margin, seed.  The sources axis occupies the
    // powers slot and the platform/scheme axes contribute radix 1
    // when empty, so grids predating them decode exactly as they
    // always have (same index -> point mapping, same derived seeds).
    std::size_t rest = index;
    p.seedSlot = rest % seedsPerPoint;
    rest /= seedsPerPoint;
    p.margin = margins[rest % margins.size()];
    rest /= margins.size();
    p.checkpointPeriod =
        checkpointPeriods[rest % checkpointPeriods.size()];
    rest /= checkpointPeriods.size();
    if (sources.empty()) {
        p.power = powers[rest % powers.size()];
        p.source = SourceSpec::constant(p.power);
        rest /= powers.size();
    } else {
        p.scenario = true;
        p.sourceSlot = rest % sources.size();
        p.source = sources[p.sourceSlot];
        p.power = p.source.meanPower();
        rest /= sources.size();
    }
    if (!platforms.empty()) {
        p.platform = platforms[rest % platforms.size()];
        rest /= platforms.size();
    }
    if (!schemes.empty()) {
        p.scheme = schemes[rest % schemes.size()];
        rest /= schemes.size();
    }
    p.benchmark = rest % benchmarks.size();
    rest /= benchmarks.size();
    p.tech = techs[rest];
    return p;
}

HarvestConfig
SweepGrid::harvestFor(const SweepPoint &point) const
{
    HarvestConfig harvest = harvestBase;
    harvest.source = point.source;
    if (!point.platform.empty()) {
        harvest.platform = point.platform;
    }
    harvest.checkpointPeriod = point.checkpointPeriod;
    harvest.seed = point.seed;
    return harvest;
}

} // namespace mouse::exp
