/**
 * @file
 * Embedded corpus trace: compressed solar day/night ramp.
 *
 * A diurnal cycle of a small indoor/outdoor photovoltaic cell,
 * time-compressed to a 12 s period so second-scale simulations see
 * full day boundaries: 2 uW night leakage, dawn/dusk shoulders, and
 * a 500 uW noon plateau (the upper end of a cm^2 cell in shade;
 * see docs/HARVESTING.md).  The document is plain trace_schema-1
 * JSON and round-trips through parsePowerTrace() at corpus load.
 */

#ifndef MOUSE_HARVEST_TRACES_SOLAR_DAY_NIGHT_HH
#define MOUSE_HARVEST_TRACES_SOLAR_DAY_NIGHT_HH

namespace mouse::traces
{

inline constexpr const char kSolarDayNightJson[] = R"trace({
  "trace_schema": 1,
  "name": "solar-day-night",
  "segments": [
    {"duration_s": 1.0, "power_w": 2e-6},
    {"duration_s": 1.0, "power_w": 5e-5},
    {"duration_s": 1.5, "power_w": 2e-4},
    {"duration_s": 2.0, "power_w": 5e-4},
    {"duration_s": 1.5, "power_w": 2e-4},
    {"duration_s": 1.0, "power_w": 5e-5},
    {"duration_s": 4.0, "power_w": 2e-6}
  ]
})trace";

} // namespace mouse::traces

#endif // MOUSE_HARVEST_TRACES_SOLAR_DAY_NIGHT_HH
