/**
 * @file
 * Embedded corpus trace: piezoelectric impulse train.
 *
 * A wearable piezo harvester driven by footfalls: a few-millisecond
 * multi-milliwatt impulse per heel strike at roughly 1 Hz, with only
 * microwatts of vibration scatter between strikes.  The two strikes
 * differ in amplitude and width (gait asymmetry) so the trace is not
 * a plain square wave.  Plain trace_schema-1 JSON; round-trips
 * through parsePowerTrace() at corpus load.
 */

#ifndef MOUSE_HARVEST_TRACES_PIEZO_IMPULSE_HH
#define MOUSE_HARVEST_TRACES_PIEZO_IMPULSE_HH

namespace mouse::traces
{

inline constexpr const char kPiezoImpulseJson[] = R"trace({
  "trace_schema": 1,
  "name": "piezo-impulse",
  "segments": [
    {"duration_s": 0.004, "power_w": 3e-3},
    {"duration_s": 0.496, "power_w": 4e-6},
    {"duration_s": 0.006, "power_w": 1.5e-3},
    {"duration_s": 0.494, "power_w": 4e-6}
  ]
})trace";

} // namespace mouse::traces

#endif // MOUSE_HARVEST_TRACES_PIEZO_IMPULSE_HH
