/**
 * @file
 * Embedded corpus trace: bursty Powercast-style RF harvesting.
 *
 * Models a 915 MHz RF harvester (the Powercast receiver SONIC's
 * evaluation uses) near the edge of its range: short multi-milliwatt
 * bursts when the transmitter beam sweeps past, tens-of-microwatt
 * scatter between them.  Burst spacing is irregular on purpose so
 * runs de-phase from the instruction cadence.  Plain trace_schema-1
 * JSON; round-trips through parsePowerTrace() at corpus load.
 */

#ifndef MOUSE_HARVEST_TRACES_RF_BURSTY_HH
#define MOUSE_HARVEST_TRACES_RF_BURSTY_HH

namespace mouse::traces
{

inline constexpr const char kRfBurstyJson[] = R"trace({
  "trace_schema": 1,
  "name": "rf-bursty",
  "segments": [
    {"duration_s": 0.02, "power_w": 5e-3},
    {"duration_s": 0.08, "power_w": 5e-5},
    {"duration_s": 0.01, "power_w": 5e-3},
    {"duration_s": 0.19, "power_w": 2e-5},
    {"duration_s": 0.05, "power_w": 5e-3},
    {"duration_s": 0.15, "power_w": 1e-5}
  ]
})trace";

} // namespace mouse::traces

#endif // MOUSE_HARVEST_TRACES_RF_BURSTY_HH
