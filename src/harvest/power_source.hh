/**
 * @file
 * Energy-harvesting power sources.
 *
 * The paper's evaluation models the harvester as a constant power
 * source filling the buffer capacitor, swept from 60 uW (a 1 cm^2
 * body-heat thermal harvester) to 5 mW (the Powercast RF harvester
 * SONIC uses).  A piecewise trace source is provided for
 * fluctuating-environment experiments beyond the paper.
 */

#ifndef MOUSE_HARVEST_POWER_SOURCE_HH
#define MOUSE_HARVEST_POWER_SOURCE_HH

#include <vector>

#include "common/logging.hh"
#include "common/types.hh"

namespace mouse
{

/** Abstract harvester output-power model. */
class PowerSource
{
  public:
    virtual ~PowerSource() = default;

    /** Instantaneous harvested power at absolute time @p t. */
    virtual Watts power(Seconds t) const = 0;
};

/** Constant output (the paper's model). */
class ConstantPowerSource : public PowerSource
{
  public:
    explicit ConstantPowerSource(Watts p) : p_(p)
    {
        mouse_assert(p > 0.0, "non-positive source power");
    }

    Watts power(Seconds) const override { return p_; }

  private:
    Watts p_;
};

/** Piecewise-constant trace, cycling through (duration, power)
 *  segments; models clouds over a solar cell etc. */
class TracePowerSource : public PowerSource
{
  public:
    struct Segment
    {
        Seconds duration;
        Watts power;
    };

    explicit TracePowerSource(std::vector<Segment> segments)
        : segments_(std::move(segments))
    {
        mouse_assert(!segments_.empty(), "empty power trace");
        for (const Segment &s : segments_) {
            mouse_assert(s.duration > 0.0, "non-positive segment");
            period_ += s.duration;
        }
    }

    Watts
    power(Seconds t) const override
    {
        Seconds phase = std::fmod(t, period_);
        for (const Segment &s : segments_) {
            if (phase < s.duration) {
                return s.power;
            }
            phase -= s.duration;
        }
        return segments_.back().power;
    }

    Seconds period() const { return period_; }

    /**
     * Square wave: @p peak watts for @p duty of each @p period, then
     * zero.  The canonical outage-heavy source for brownout-
     * attribution experiments — every off phase starves the buffer,
     * so runs longer than duty*period are guaranteed outages.
     */
    static TracePowerSource
    square(Seconds period, double duty, Watts peak)
    {
        mouse_assert(period > 0.0, "non-positive square period");
        mouse_assert(duty > 0.0 && duty < 1.0,
                     "square duty must be in (0, 1)");
        return TracePowerSource(
            {{period * duty, peak}, {period * (1.0 - duty), 0.0}});
    }

  private:
    std::vector<Segment> segments_;
    Seconds period_ = 0.0;
};

} // namespace mouse

#endif // MOUSE_HARVEST_POWER_SOURCE_HH
