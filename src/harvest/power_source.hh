/**
 * @file
 * Energy-harvesting power sources.
 *
 * The paper's evaluation models the harvester as a constant power
 * source filling the buffer capacitor, swept from 60 uW (a 1 cm^2
 * body-heat thermal harvester) to 5 mW (the Powercast RF harvester
 * SONIC uses).  A piecewise trace source is provided for
 * fluctuating-environment experiments beyond the paper.
 */

#ifndef MOUSE_HARVEST_POWER_SOURCE_HH
#define MOUSE_HARVEST_POWER_SOURCE_HH

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"

namespace mouse
{

/** Abstract harvester output-power model. */
class PowerSource
{
  public:
    virtual ~PowerSource() = default;

    /** Instantaneous harvested power at absolute time @p t. */
    virtual Watts power(Seconds t) const = 0;

    /** Repetition period of the output, or 0 when the output never
     *  varies.  Numeric integrators bound their step to a fraction
     *  of this so a long drought cannot alias over the charging
     *  phases of a short-period source. */
    virtual Seconds period() const { return 0.0; }
};

/** Constant output (the paper's model). */
class ConstantPowerSource : public PowerSource
{
  public:
    explicit ConstantPowerSource(Watts p) : p_(p)
    {
        mouse_assert(p > 0.0, "non-positive source power");
    }

    Watts power(Seconds) const override { return p_; }

  private:
    Watts p_;
};

/** Piecewise-constant trace, cycling through (duration, power)
 *  segments; models clouds over a solar cell etc.
 *
 *  Queries are O(log n): construction precomputes, per segment
 *  boundary, the smallest representable phase that lands past the
 *  boundary under the reference subtract-and-compare scan, and
 *  power() binary-searches those thresholds.  Because each threshold
 *  is found by bisecting the scan itself over the ordered bit
 *  patterns of the phase doubles, the selected segment — and thus
 *  the returned power — is bit-identical to the former linear scan
 *  for every input, including phases where accumulated floating-
 *  point subtraction error made the scan disagree with exact
 *  cumulative sums. */
class TracePowerSource : public PowerSource
{
  public:
    struct Segment
    {
        Seconds duration;
        Watts power;

        bool operator==(const Segment &other) const = default;
    };

    explicit TracePowerSource(std::vector<Segment> segments)
        : segments_(std::move(segments))
    {
        mouse_assert(!segments_.empty(), "empty power trace");
        for (const Segment &s : segments_) {
            mouse_assert(s.duration > 0.0, "non-positive segment");
            period_ += s.duration;
        }
        buildThresholds();
    }

    Watts
    power(Seconds t) const override
    {
        const Seconds phase = std::fmod(t, period_);
        const std::size_t idx = static_cast<std::size_t>(
            std::upper_bound(thresholds_.begin(), thresholds_.end(),
                             phase) -
            thresholds_.begin());
        return segments_[idx].power;
    }

    Seconds period() const override { return period_; }

    const std::vector<Segment> &segments() const { return segments_; }

    /**
     * Square wave: @p peak watts for @p duty of each @p period, then
     * zero.  The canonical outage-heavy source for brownout-
     * attribution experiments — every off phase starves the buffer,
     * so runs longer than duty*period are guaranteed outages.
     */
    static TracePowerSource
    square(Seconds period, double duty, Watts peak)
    {
        mouse_assert(period > 0.0, "non-positive square period");
        mouse_assert(duty > 0.0 && duty < 1.0,
                     "square duty must be in (0, 1)");
        return TracePowerSource(
            {{period * duty, peak}, {period * (1.0 - duty), 0.0}});
    }

  private:
    /** The pre-threshold reference: subtract each duration in turn
     *  and select the first segment the remaining phase fits in,
     *  falling through to the last segment. */
    std::size_t
    scanIndex(Seconds phase) const
    {
        for (std::size_t i = 0; i < segments_.size(); ++i) {
            if (phase < segments_[i].duration) {
                return i;
            }
            phase -= segments_[i].duration;
        }
        return segments_.size() - 1;
    }

    static std::uint64_t
    phaseBits(Seconds v)
    {
        std::uint64_t b = 0;
        std::memcpy(&b, &v, sizeof(b));
        return b;
    }

    static Seconds
    phaseFromBits(std::uint64_t b)
    {
        Seconds v = 0.0;
        std::memcpy(&v, &b, sizeof(v));
        return v;
    }

    /** thresholds_[b-1] = smallest phase the scan maps to segment
     *  >= b.  scanIndex is monotone in the phase, and non-negative
     *  doubles order the same as their bit patterns, so each
     *  boundary is an integer bisection over phase bits with the
     *  scan as the oracle. */
    void
    buildThresholds()
    {
        thresholds_.reserve(segments_.size() - 1);
        for (std::size_t b = 1; b < segments_.size(); ++b) {
            std::uint64_t lo = phaseBits(0.0);
            std::uint64_t hi = phaseBits(period_);
            // scanIndex(0) == 0 < b (durations are positive) and
            // scanIndex(period_) falls through to the last segment.
            while (hi - lo > 1) {
                const std::uint64_t mid = lo + (hi - lo) / 2;
                if (scanIndex(phaseFromBits(mid)) >= b) {
                    hi = mid;
                } else {
                    lo = mid;
                }
            }
            thresholds_.push_back(phaseFromBits(hi));
        }
    }

    std::vector<Segment> segments_;
    std::vector<Seconds> thresholds_;
    Seconds period_ = 0.0;
};

} // namespace mouse

#endif // MOUSE_HARVEST_POWER_SOURCE_HH
