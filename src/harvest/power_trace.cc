#include "harvest/power_trace.hh"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/schema_versions.hh"

namespace mouse
{

namespace
{

/** Shortest %.17g rendering — strtod() round-trips it exactly, so
 *  toJson()/parsePowerTrace() compose to the identity. */
std::string
num(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return buf;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default: out += c; break;
        }
    }
    return out;
}

/** Hand-rolled cursor over the document text, tracking the 1-based
 *  line of every token so failures anchor to where they happened. */
struct Cursor
{
    const std::string &text;
    std::size_t pos = 0;
    std::size_t line = 1;
    PowerTraceError err{};
    bool failed = false;

    bool
    fail(const std::string &message)
    {
        if (!failed) {
            failed = true;
            err = {line, message};
        }
        return false;
    }

    void
    skipWs()
    {
        while (pos < text.size()) {
            const char c = text[pos];
            if (c == '\n') {
                ++line;
            } else if (c != ' ' && c != '\t' && c != '\r') {
                break;
            }
            ++pos;
        }
    }

    char
    peek()
    {
        skipWs();
        return pos < text.size() ? text[pos] : '\0';
    }

    bool
    consume(char want, const char *what)
    {
        skipWs();
        if (pos >= text.size() || text[pos] != want) {
            return fail(std::string("expected ") + what);
        }
        ++pos;
        return true;
    }
};

bool
parseString(Cursor &c, std::string *out)
{
    if (!c.consume('"', "a string")) {
        return false;
    }
    std::string s;
    while (c.pos < c.text.size()) {
        const char ch = c.text[c.pos++];
        if (ch == '"') {
            if (out != nullptr) {
                *out = s;
            }
            return true;
        }
        if (ch == '\n') {
            return c.fail("unterminated string");
        }
        if (ch == '\\') {
            if (c.pos >= c.text.size()) {
                return c.fail("unterminated string escape");
            }
            const char e = c.text[c.pos++];
            switch (e) {
            case '"': s += '"'; break;
            case '\\': s += '\\'; break;
            case '/': s += '/'; break;
            case 'n': s += '\n'; break;
            case 't': s += '\t'; break;
            default: return c.fail("unsupported string escape");
            }
        } else {
            s += ch;
        }
    }
    return c.fail("unterminated string");
}

bool
parseNumber(Cursor &c, double *out)
{
    c.skipWs();
    const char *start = c.text.c_str() + c.pos;
    char *end = nullptr;
    const double v = std::strtod(start, &end);
    if (end == start) {
        return c.fail("expected a number");
    }
    c.pos += static_cast<std::size_t>(end - start);
    if (!std::isfinite(v)) {
        return c.fail("non-finite number");
    }
    *out = v;
    return true;
}

bool skipValue(Cursor &c);

bool
skipCompound(Cursor &c, char open, char close)
{
    if (!c.consume(open, "a value")) {
        return false;
    }
    if (c.peek() == close) {
        ++c.pos;
        return true;
    }
    while (true) {
        if (open == '{') {
            if (!parseString(c, nullptr) ||
                !c.consume(':', "':' after key")) {
                return false;
            }
        }
        if (!skipValue(c)) {
            return false;
        }
        if (c.peek() == ',') {
            ++c.pos;
            continue;
        }
        return c.consume(close, open == '{' ? "'}'" : "']'");
    }
}

bool
skipValue(Cursor &c)
{
    const char head = c.peek();
    if (head == '"') {
        return parseString(c, nullptr);
    }
    if (head == '{') {
        return skipCompound(c, '{', '}');
    }
    if (head == '[') {
        return skipCompound(c, '[', ']');
    }
    if (c.text.compare(c.pos, 4, "true") == 0) {
        c.pos += 4;
        return true;
    }
    if (c.text.compare(c.pos, 5, "false") == 0) {
        c.pos += 5;
        return true;
    }
    if (c.text.compare(c.pos, 4, "null") == 0) {
        c.pos += 4;
        return true;
    }
    double ignored = 0.0;
    return parseNumber(c, &ignored);
}

bool
parseSegments(Cursor &c, PowerTrace *trace)
{
    if (!c.consume('[', "'[' (\"segments\" is an array)")) {
        return false;
    }
    if (c.peek() == ']') {
        ++c.pos;
        return true; // emptiness rejected after the full parse
    }
    while (true) {
        c.skipWs();
        const std::size_t segLine = c.line;
        if (!c.consume('{', "'{' (a segment is an object)")) {
            return false;
        }
        bool sawDuration = false;
        bool sawPower = false;
        TracePowerSource::Segment seg{};
        if (c.peek() != '}') {
            while (true) {
                std::string key;
                if (!parseString(c, &key) ||
                    !c.consume(':', "':' after key")) {
                    return false;
                }
                if (key == "duration_s") {
                    if (!parseNumber(c, &seg.duration)) {
                        return false;
                    }
                    sawDuration = true;
                } else if (key == "power_w") {
                    if (!parseNumber(c, &seg.power)) {
                        return false;
                    }
                    sawPower = true;
                } else if (!skipValue(c)) {
                    return false;
                }
                if (c.peek() == ',') {
                    ++c.pos;
                    continue;
                }
                break;
            }
        }
        if (!c.consume('}', "'}'")) {
            return false;
        }
        const std::size_t index = trace->segments.size();
        const std::string where =
            "segments[" + std::to_string(index) + "]";
        if (!sawDuration || !sawPower) {
            c.line = segLine;
            return c.fail(where + " needs \"duration_s\" and "
                                  "\"power_w\"");
        }
        if (seg.duration <= 0.0) {
            c.line = segLine;
            return c.fail(where + " has non-positive duration_s");
        }
        if (seg.power < 0.0) {
            c.line = segLine;
            return c.fail(where + " has negative power_w");
        }
        trace->segments.push_back(seg);
        if (c.peek() == ',') {
            ++c.pos;
            continue;
        }
        return c.consume(']', "']'");
    }
}

} // namespace

Seconds
PowerTrace::period() const
{
    Seconds total = 0.0;
    for (const TracePowerSource::Segment &s : segments) {
        total += s.duration;
    }
    return total;
}

Watts
PowerTrace::meanPower() const
{
    const Seconds total = period();
    if (total <= 0.0) {
        return 0.0;
    }
    Joules energy = 0.0;
    for (const TracePowerSource::Segment &s : segments) {
        energy += s.duration * s.power;
    }
    return energy / total;
}

std::string
PowerTrace::toJson() const
{
    std::string j = "{\"trace_schema\":" +
                    std::to_string(schema::kPowerTraceSchemaVersion);
    j += ",\"name\":\"" + jsonEscape(name) + "\"";
    j += ",\"segments\":[";
    for (std::size_t i = 0; i < segments.size(); ++i) {
        if (i > 0) {
            j += ",";
        }
        j += "{\"duration_s\":" + num(segments[i].duration);
        j += ",\"power_w\":" + num(segments[i].power) + "}";
    }
    j += "]}";
    return j;
}

std::optional<PowerTrace>
parsePowerTrace(const std::string &text, PowerTraceError *err)
{
    Cursor c{text};
    PowerTrace trace;
    bool sawSchema = false;
    bool sawSegments = false;
    double schemaVersion = 0.0;
    std::size_t schemaLine = 1;
    std::size_t segmentsLine = 1;

    const auto failed = [&]() -> std::optional<PowerTrace> {
        if (err != nullptr) {
            *err = c.failed ? c.err
                            : PowerTraceError{c.line,
                                              "malformed document"};
        }
        return std::nullopt;
    };

    if (!c.consume('{', "'{' (a trace document is a JSON object)")) {
        return failed();
    }
    if (c.peek() != '}') {
        while (true) {
            c.skipWs();
            const std::size_t keyLine = c.line;
            std::string key;
            if (!parseString(c, &key) ||
                !c.consume(':', "':' after key")) {
                return failed();
            }
            if (key == "trace_schema") {
                if (!parseNumber(c, &schemaVersion)) {
                    return failed();
                }
                sawSchema = true;
                schemaLine = keyLine;
            } else if (key == "name") {
                if (!parseString(c, &trace.name)) {
                    return failed();
                }
            } else if (key == "segments") {
                sawSegments = true;
                segmentsLine = keyLine;
                if (!parseSegments(c, &trace)) {
                    return failed();
                }
            } else if (!skipValue(c)) {
                return failed();
            }
            if (c.peek() == ',') {
                ++c.pos;
                continue;
            }
            break;
        }
    }
    if (!c.consume('}', "'}'")) {
        return failed();
    }
    c.skipWs();
    if (c.pos < text.size()) {
        c.fail("trailing content after the document");
        return failed();
    }

    if (!sawSchema) {
        c.line = 1;
        c.fail("missing \"trace_schema\" field");
        return failed();
    }
    if (schemaVersion !=
        static_cast<double>(schema::kPowerTraceSchemaVersion)) {
        c.line = schemaLine;
        c.fail("unsupported trace_schema " + num(schemaVersion) +
               " (this build reads version " +
               std::to_string(schema::kPowerTraceSchemaVersion) +
               ")");
        return failed();
    }
    if (!sawSegments) {
        c.line = 1;
        c.fail("missing \"segments\" field");
        return failed();
    }
    if (trace.segments.empty()) {
        c.line = segmentsLine;
        c.fail("\"segments\" must not be empty");
        return failed();
    }
    return trace;
}

} // namespace mouse
