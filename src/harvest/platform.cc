#include "harvest/platform.hh"

#include "harvest/platforms/batteryless.hh"
#include "harvest/platforms/mementos.hh"
#include "harvest/platforms/nvp.hh"

namespace mouse
{

const std::vector<Platform> &
platformCatalog()
{
    static const std::vector<Platform> catalog = {
        {"mementos",
         "Mementos-style MSP430 node: 10 uF / 4.5 V electrolytic, "
         "80% regulator",
         platforms::kMementosCapacitance,
         platforms::kMementosMaxCapacitorVoltage,
         platforms::kMementosConverterEfficiency},
        {"nvp",
         "NVP-style nonvolatile processor: 470 nF / 3.3 V ceramic, "
         "90% on-chip boost",
         platforms::kNvpCapacitance,
         platforms::kNvpMaxCapacitorVoltage,
         platforms::kNvpConverterEfficiency},
        {"batteryless",
         "generic batteryless sensing node: 10 uF / 7.5 V buffer, "
         "70% discrete buck",
         platforms::kBatterylessCapacitance,
         platforms::kBatterylessMaxCapacitorVoltage,
         platforms::kBatterylessConverterEfficiency},
    };
    return catalog;
}

const Platform *
platformByName(const std::string &name)
{
    for (const Platform &p : platformCatalog()) {
        if (p.name == name) {
            return &p;
        }
    }
    return nullptr;
}

std::vector<std::string>
platformNames()
{
    std::vector<std::string> names;
    for (const Platform &p : platformCatalog()) {
        names.push_back(p.name);
    }
    return names;
}

} // namespace mouse
