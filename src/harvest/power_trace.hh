/**
 * @file
 * Versioned JSON power-trace documents (docs/HARVESTING.md).
 *
 * A power trace is the wire form of a TracePowerSource: a named list
 * of (duration_s, power_w) segments, versioned by "trace_schema" so
 * old files fail loudly instead of silently misparsing.  The same
 * parser backs `mouse_cli --power-trace FILE` (with line-numbered
 * errors for up-front validation) and the embedded corpus under
 * src/harvest/traces/, which round-trips through it at load time.
 *
 * Format (trace_schema 1, unknown keys tolerated):
 *
 *   {"trace_schema":1,
 *    "name":"solar-day-night",
 *    "segments":[{"duration_s":2.0,"power_w":5e-4}, ...]}
 */

#ifndef MOUSE_HARVEST_POWER_TRACE_HH
#define MOUSE_HARVEST_POWER_TRACE_HH

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "common/types.hh"
#include "harvest/power_source.hh"

namespace mouse
{

/** One parsed power-trace document. */
struct PowerTrace
{
    std::string name;
    std::vector<TracePowerSource::Segment> segments;

    /** Sum of segment durations (the cycle length). */
    Seconds period() const;

    /** Duration-weighted mean power over one period. */
    Watts meanPower() const;

    /** Single-line schema-versioned document; parsePowerTrace()
     *  round-trips it exactly. */
    std::string toJson() const;
};

/** Why a document failed to parse, anchored to a 1-based line. */
struct PowerTraceError
{
    std::size_t line = 1;
    std::string message;
};

/**
 * Parse a trace document.  Tolerates whitespace and unknown keys;
 * rejects structural errors, a missing or unsupported
 * "trace_schema", empty segment lists, non-positive durations and
 * negative powers.  On failure returns nullopt and fills @p err
 * (when given) with the offending line.
 */
std::optional<PowerTrace>
parsePowerTrace(const std::string &text,
                PowerTraceError *err = nullptr);

} // namespace mouse

#endif // MOUSE_HARVEST_POWER_TRACE_HH
