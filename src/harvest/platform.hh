/**
 * @file
 * Named capacitor/converter platform presets (docs/HARVESTING.md).
 *
 * The paper sizes the MOUSE buffer per technology; real energy-
 * harvesting deployments are built around a concrete storage +
 * converter front end.  Each preset bundles one platform's datasheet
 * constants (src/harvest/platforms/) behind a stable name that
 * HarvestConfig::platform, `mouse_cli --platform` and the
 * SweepGrid::platforms axis select:
 *
 *   mementos     10 uF / 4.5 V electrolytic, 80% regulator
 *   nvp          4.7 uF / 3.3 V ceramic, 90% on-chip boost
 *   batteryless  10 uF / 7.5 V sensing node, 70% discrete buck
 *
 * A named platform replaces the technology's default buffer
 * capacitance (HarvestConfig::capacitanceOverride still wins) and
 * derates the configured converter efficiency by the platform's
 * front-end efficiency.
 */

#ifndef MOUSE_HARVEST_PLATFORM_HH
#define MOUSE_HARVEST_PLATFORM_HH

#include <string>
#include <vector>

#include "common/types.hh"

namespace mouse
{

/** One selectable capacitor + converter parameter set. */
struct Platform
{
    /** Stable lookup key ("mementos", "nvp", "batteryless"). */
    std::string name;
    /** One-line datasheet summary for CLI help and docs. */
    std::string description;
    /** Storage capacitance of the platform's buffer. */
    Farads capacitance;
    /** Rated maximum buffer voltage. */
    Volts maxCapacitorVoltage;
    /** Front-end (harvester -> buffer) conversion efficiency. */
    double converterEfficiency;
};

/** All presets, in stable listing order. */
const std::vector<Platform> &platformCatalog();

/** Look up a preset by exact name; nullptr when unknown. */
const Platform *platformByName(const std::string &name);

/** Preset names in listing order (CLI help / error messages). */
std::vector<std::string> platformNames();

} // namespace mouse

#endif // MOUSE_HARVEST_PLATFORM_HH
