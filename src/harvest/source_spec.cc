#include "harvest/source_spec.hh"

#include "common/logging.hh"
#include "harvest/trace_corpus.hh"

namespace mouse
{

namespace
{

/** Duration-weighted mean of a segment list (0 when empty). */
Watts
segmentsMean(const std::vector<TracePowerSource::Segment> &segments)
{
    Seconds total = 0.0;
    Joules energy = 0.0;
    for (const TracePowerSource::Segment &s : segments) {
        total += s.duration;
        energy += s.duration * s.power;
    }
    return total > 0.0 ? energy / total : 0.0;
}

bool
segmentsValid(
    const std::vector<TracePowerSource::Segment> &segments,
    std::string *why)
{
    if (segments.empty()) {
        if (why != nullptr) {
            *why = "trace has no segments";
        }
        return false;
    }
    bool anyPower = false;
    for (std::size_t i = 0; i < segments.size(); ++i) {
        if (segments[i].duration <= 0.0) {
            if (why != nullptr) {
                *why = "segment " + std::to_string(i) +
                       " has non-positive duration";
            }
            return false;
        }
        if (segments[i].power < 0.0) {
            if (why != nullptr) {
                *why = "segment " + std::to_string(i) +
                       " has negative power";
            }
            return false;
        }
        anyPower = anyPower || segments[i].power > 0.0;
    }
    if (!anyPower) {
        if (why != nullptr) {
            *why = "trace never delivers power, so the buffer "
                   "cannot charge";
        }
        return false;
    }
    return true;
}

} // namespace

SourceSpec
SourceSpec::constant(Watts power)
{
    SourceSpec s;
    s.kind = SourceKind::kConstant;
    s.constantPower = power;
    return s;
}

SourceSpec
SourceSpec::trace(std::vector<TracePowerSource::Segment> segments,
                  std::string name)
{
    SourceSpec s;
    s.kind = SourceKind::kTrace;
    s.segments = std::move(segments);
    s.traceName = std::move(name);
    return s;
}

SourceSpec
SourceSpec::trace(const PowerTrace &doc)
{
    return trace(doc.segments, doc.name);
}

SourceSpec
SourceSpec::corpusTrace(std::string name)
{
    SourceSpec s;
    s.kind = SourceKind::kCorpus;
    s.corpus = std::move(name);
    return s;
}

SourceSpec
SourceSpec::square(Seconds period, double duty, Watts peak)
{
    SourceSpec s;
    s.kind = SourceKind::kSquare;
    s.squarePeriod = period;
    s.squareDuty = duty;
    s.squarePeak = peak;
    return s;
}

std::string
SourceSpec::name() const
{
    switch (kind) {
    case SourceKind::kConstant:
        return "constant";
    case SourceKind::kTrace:
        return traceName.empty() ? "trace" : traceName;
    case SourceKind::kCorpus:
        return corpus;
    case SourceKind::kSquare:
        return "square";
    }
    return "unknown";
}

Watts
SourceSpec::meanPower() const
{
    switch (kind) {
    case SourceKind::kConstant:
        return constantPower;
    case SourceKind::kTrace:
        return segmentsMean(segments);
    case SourceKind::kCorpus: {
        const PowerTrace *doc = ::mouse::corpusTrace(corpus);
        return doc != nullptr ? doc->meanPower() : 0.0;
    }
    case SourceKind::kSquare:
        return squarePeak * squareDuty;
    }
    return 0.0;
}

bool
SourceSpec::valid(std::string *why) const
{
    switch (kind) {
    case SourceKind::kConstant:
        if (constantPower <= 0.0) {
            if (why != nullptr) {
                *why = "constant source power must be positive";
            }
            return false;
        }
        return true;
    case SourceKind::kTrace:
        return segmentsValid(segments, why);
    case SourceKind::kCorpus:
        if (::mouse::corpusTrace(corpus) == nullptr) {
            if (why != nullptr) {
                std::string names;
                for (const std::string &n : corpusTraceNames()) {
                    names += (names.empty() ? "" : ", ") + n;
                }
                *why = "unknown corpus trace '" + corpus +
                       "' (known: " + names + ")";
            }
            return false;
        }
        return true;
    case SourceKind::kSquare:
        if (squarePeriod <= 0.0) {
            if (why != nullptr) {
                *why = "square period must be positive";
            }
            return false;
        }
        if (squareDuty <= 0.0 || squareDuty >= 1.0) {
            if (why != nullptr) {
                *why = "square duty must be in (0, 1)";
            }
            return false;
        }
        if (squarePeak <= 0.0) {
            if (why != nullptr) {
                *why = "square peak power must be positive";
            }
            return false;
        }
        return true;
    }
    if (why != nullptr) {
        *why = "unknown source kind";
    }
    return false;
}

std::unique_ptr<PowerSource>
SourceSpec::make() const
{
    std::string why;
    if (!valid(&why)) {
        mouse_fatal("cannot materialize power source: %s",
                    why.c_str());
    }
    switch (kind) {
    case SourceKind::kConstant:
        return std::make_unique<ConstantPowerSource>(constantPower);
    case SourceKind::kTrace:
        return std::make_unique<TracePowerSource>(segments);
    case SourceKind::kCorpus:
        return std::make_unique<TracePowerSource>(
            ::mouse::corpusTrace(corpus)->segments);
    case SourceKind::kSquare:
        return std::make_unique<TracePowerSource>(
            TracePowerSource::square(squarePeriod, squareDuty,
                                     squarePeak));
    }
    mouse_fatal("unknown source kind");
}

} // namespace mouse
