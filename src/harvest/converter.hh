/**
 * @file
 * Switched-capacitor voltage converter (paper Sections IV-C, VIII).
 *
 * A switched-capacitor DC-DC converter with conversion ratios
 * {0.75, 1, 1.5, 1.75} supplies every voltage the gates require
 * from the buffer capacitor.  Following the paper, the evaluation
 * itself runs on the power *supplied by* the converter (regulator
 * efficiency is outside the reported numbers), but the efficiency
 * is modelled so a deployment study can fold it in: the harvester
 * must then provide 1.25x-2.85x the consumed energy.
 */

#ifndef MOUSE_HARVEST_CONVERTER_HH
#define MOUSE_HARVEST_CONVERTER_HH

#include <optional>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"

namespace mouse
{

/** The paper's conversion ratios (Section VIII). */
inline std::vector<double>
paperConverterRatios()
{
    return {0.75, 1.0, 1.5, 1.75};
}

/**
 * Extended ratio set.  Our independently solved gate operating
 * points show some pulses (notably the projected-STT write through
 * the 76 kOhm AP path) exceed 1.75x the 100 mV window bottom; real
 * series-parallel switched-capacitor designs provide higher ratios,
 * so the extended set documents that substitution (EXPERIMENTS.md).
 */
inline std::vector<double>
extendedConverterRatios()
{
    return {0.75, 1.0, 1.5, 1.75, 2.5, 3.5};
}

/** Switched-capacitor converter with configurable ratios. */
class SwitchedCapConverter
{
  public:
    /**
     * @param efficiency Conversion efficiency in (0, 1]; the paper
     *        quotes 35-80 % for real converters and excludes it from
     *        the headline numbers (default 1.0).
     * @param ratios Available conversion ratios, ascending.
     */
    explicit SwitchedCapConverter(
        double efficiency = 1.0,
        std::vector<double> ratios = paperConverterRatios())
        : efficiency_(efficiency), ratios_(std::move(ratios))
    {
        mouse_assert(efficiency > 0.0 && efficiency <= 1.0,
                     "efficiency out of range");
        mouse_assert(!ratios_.empty(), "no conversion ratios");
    }

    const std::vector<double> &ratios() const { return ratios_; }

    double efficiency() const { return efficiency_; }

    /**
     * Lowest output rail >= @p required reachable from a buffer at
     * @p v_buffer, or nullopt when even the highest ratio falls
     * short.
     */
    std::optional<Volts>
    railFor(Volts required, Volts v_buffer) const
    {
        for (double ratio : ratios_) {
            const Volts rail = ratio * v_buffer;
            if (rail >= required) {
                return rail;
            }
        }
        return std::nullopt;
    }

    /**
     * Whether every voltage in @p required can be supplied across
     * the whole buffer window [v_low, v_high].  The binding case is
     * the window bottom.
     */
    bool
    canSupply(Volts required, Volts v_low) const
    {
        return railFor(required, v_low).has_value();
    }

    /** Buffer energy drawn to deliver @p load_energy at the output. */
    Joules
    bufferEnergyFor(Joules load_energy) const
    {
        return load_energy / efficiency_;
    }

  private:
    double efficiency_;
    std::vector<double> ratios_;
};

} // namespace mouse

#endif // MOUSE_HARVEST_CONVERTER_HH
