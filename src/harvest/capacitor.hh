/**
 * @file
 * Energy-buffer capacitor model (paper Sections IV-C, VIII).
 *
 * Energy-harvesting systems decouple the power source from the load
 * with a capacitor: the source trickle-charges it, the accelerator
 * drains it in bursts.  MOUSE executes while the capacitor voltage
 * sits inside [vLow, vHigh]; crossing vLow shuts the system down
 * until the source refills it to vHigh.
 */

#ifndef MOUSE_HARVEST_CAPACITOR_HH
#define MOUSE_HARVEST_CAPACITOR_HH

#include <cmath>

#include "common/logging.hh"
#include "common/types.hh"

namespace mouse
{

/** Ideal capacitor used as the harvesting energy buffer. */
class Capacitor
{
  public:
    Capacitor(Farads capacitance, Volts initial = 0.0)
        : c_(capacitance), v_(initial)
    {
        mouse_assert(capacitance > 0.0, "non-positive capacitance");
    }

    Farads capacitance() const { return c_; }
    Volts voltage() const { return v_; }

    /** Stored energy, E = C V^2 / 2. */
    Joules
    energy() const
    {
        return 0.5 * c_ * v_ * v_;
    }

    /** Energy available before the voltage falls to @p v_floor. */
    Joules
    energyAbove(Volts v_floor) const
    {
        if (v_ <= v_floor) {
            return 0.0;
        }
        return 0.5 * c_ * (v_ * v_ - v_floor * v_floor);
    }

    /** Charging time from the current voltage to @p v_target at
     *  constant power @p p. */
    Seconds
    timeToCharge(Volts v_target, Watts p) const
    {
        mouse_assert(p > 0.0, "charging needs positive power");
        if (v_ >= v_target) {
            return 0.0;
        }
        return 0.5 * c_ * (v_target * v_target - v_ * v_) / p;
    }

    /** Apply constant charging power for @p dt. */
    void
    charge(Watts p, Seconds dt)
    {
        const Joules e = energy() + p * dt;
        v_ = std::sqrt(2.0 * e / c_);
    }

    /** Instantly set the voltage (e.g. after a computed charge). */
    void setVoltage(Volts v) { v_ = v; }

    /**
     * Draw @p e joules from the buffer.  Draining below zero clamps
     * at zero volts (the physical system browns out slightly below
     * the sensed threshold before the monitor reacts).
     */
    void
    draw(Joules e)
    {
        const Joules left = energy() - e;
        v_ = left > 0.0 ? std::sqrt(2.0 * left / c_) : 0.0;
    }

  private:
    Farads c_;
    Volts v_;
};

} // namespace mouse

#endif // MOUSE_HARVEST_CAPACITOR_HH
