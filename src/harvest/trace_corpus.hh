/**
 * @file
 * The embedded power-trace corpus (docs/HARVESTING.md).
 *
 * Three canonical ambient-energy environments ship inside the
 * binary as trace_schema-1 JSON documents (src/harvest/traces/):
 *
 *   solar-day-night  compressed diurnal photovoltaic ramp
 *   rf-bursty        Powercast-style RF bursts with quiet gaps
 *   piezo-impulse    footfall piezo impulse train
 *
 * Corpus entries are parsed through parsePowerTrace() on first use —
 * the same code path as user-supplied --power-trace files — so the
 * shipped documents are themselves round-trip-validated, and
 * lookups never depend on the filesystem.
 */

#ifndef MOUSE_HARVEST_TRACE_CORPUS_HH
#define MOUSE_HARVEST_TRACE_CORPUS_HH

#include <string>
#include <vector>

#include "harvest/power_trace.hh"

namespace mouse
{

/** All corpus traces, in stable listing order. */
const std::vector<PowerTrace> &powerTraceCorpus();

/** Look up a corpus trace by exact name; nullptr when unknown. */
const PowerTrace *corpusTrace(const std::string &name);

/** Corpus names in listing order (CLI help / error messages). */
std::vector<std::string> corpusTraceNames();

} // namespace mouse

#endif // MOUSE_HARVEST_TRACE_CORPUS_HH
