/**
 * @file
 * SourceSpec: the value-type description of a power environment.
 *
 * HarvestConfig used to carry a scalar `sourcePower` plus an escape-
 * hatch raw pointer to a caller-owned PowerSource; every consumer
 * special-cased the two.  A SourceSpec instead *describes* the
 * environment — constant | embedded trace | named corpus trace |
 * square wave — as plain copyable data that can ride inside
 * HarvestConfig, SweepGrid axes and RunRequests, cross threads, and
 * be recorded in result JSON, while make() materializes the
 * polymorphic PowerSource the simulator integrates against.
 *
 * Factories are permissive so specs can be built field-by-field
 * (e.g. while parsing CLI flags); valid() is the single gate, and
 * the typed RunError path (run_api.hh, kHarvestSourceInvalid)
 * reports its verdict for API users.  make() requires a valid spec.
 */

#ifndef MOUSE_HARVEST_SOURCE_SPEC_HH
#define MOUSE_HARVEST_SOURCE_SPEC_HH

#include <memory>
#include <string>
#include <vector>

#include "common/types.hh"
#include "harvest/power_source.hh"
#include "harvest/power_trace.hh"

namespace mouse
{

/** Which environment a SourceSpec describes. */
enum class SourceKind
{
    /** Fixed harvester output (the paper's model). */
    kConstant = 0,
    /** Piecewise-constant segments embedded in the spec. */
    kTrace,
    /** A named trace from the embedded corpus (trace_corpus.hh). */
    kCorpus,
    /** peak W for duty of each period, then zero. */
    kSquare,
};

/** Copyable description of a power environment; see file comment. */
struct SourceSpec
{
    SourceKind kind = SourceKind::kConstant;

    /** kConstant: harvester output (defaults to the paper's 60 uW
     *  body-heat point). */
    Watts constantPower = 60e-6;

    /** kTrace: embedded (duration, power) segments. */
    std::vector<TracePowerSource::Segment> segments;
    /** kTrace: optional label recorded in result JSON ("trace" when
     *  empty). */
    std::string traceName;

    /** kCorpus: corpus trace name. */
    std::string corpus;

    /** kSquare: wave shape. */
    Seconds squarePeriod = 0.0;
    double squareDuty = 0.0;
    Watts squarePeak = 0.0;

    static SourceSpec constant(Watts power);
    static SourceSpec
    trace(std::vector<TracePowerSource::Segment> segments,
          std::string name = "");
    /** Wrap a parsed document (keeps its name). */
    static SourceSpec trace(const PowerTrace &doc);
    static SourceSpec corpusTrace(std::string name);
    static SourceSpec square(Seconds period, double duty, Watts peak);

    bool isConstant() const { return kind == SourceKind::kConstant; }

    /** Stable provenance label for result JSON and sweep tables:
     *  "constant", the trace/corpus name, or "square". */
    std::string name() const;

    /** Headline power for tables and the JSON "power_w" field: the
     *  constant power, or the duty-weighted mean over one period of
     *  the trace/square.  0 for an empty/unknown spec. */
    Watts meanPower() const;

    /**
     * Whether make() can materialize this spec: positive constant
     * power; non-empty segments with positive durations,
     * non-negative powers and at least one positive power; a known
     * corpus name; square period > 0, duty in (0,1), peak > 0.
     * On failure fills @p why (when given) with one sentence.
     */
    bool valid(std::string *why = nullptr) const;

    /** Materialize the PowerSource; fatal on an invalid spec (API
     *  paths validate through RunError first). */
    std::unique_ptr<PowerSource> make() const;

    bool operator==(const SourceSpec &other) const = default;
};

} // namespace mouse

#endif // MOUSE_HARVEST_SOURCE_SPEC_HH
