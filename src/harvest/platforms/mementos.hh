/**
 * @file
 * Datasheet constants: the Mementos reference platform.
 *
 * Ransford et al.'s Mementos (ASPLOS'11) checkpointing platform: an
 * MSP430-class node buffered by a 10 uF electrolytic capacitor rated
 * to 4.5 V, charged through a diode + regulator front end whose
 * conversion losses we fold into one efficiency factor.  Values
 * follow the eh-sim data-sheet convention of one constexpr constant
 * per datasheet line item (docs/HARVESTING.md).
 */

#ifndef MOUSE_HARVEST_PLATFORMS_MEMENTOS_HH
#define MOUSE_HARVEST_PLATFORMS_MEMENTOS_HH

#include "common/types.hh"

namespace mouse::platforms
{

inline constexpr Farads kMementosCapacitance = 10e-6;
inline constexpr Volts kMementosMaxCapacitorVoltage = 4.5;
inline constexpr double kMementosConverterEfficiency = 0.80;

} // namespace mouse::platforms

#endif // MOUSE_HARVEST_PLATFORMS_MEMENTOS_HH
