/**
 * @file
 * Datasheet constants: a generic batteryless sensing platform.
 *
 * A Flicker/Capybara-style batteryless sensor node: a 10 uF buffer
 * sized for sensing bursts, a 7.5 V rated input stage so it can sit
 * directly behind a rectified piezo or RF front end, and a mediocre
 * discrete buck regulator.  One constexpr constant per datasheet
 * line item (docs/HARVESTING.md).
 */

#ifndef MOUSE_HARVEST_PLATFORMS_BATTERYLESS_HH
#define MOUSE_HARVEST_PLATFORMS_BATTERYLESS_HH

#include "common/types.hh"

namespace mouse::platforms
{

inline constexpr Farads kBatterylessCapacitance = 10e-6;
inline constexpr Volts kBatterylessMaxCapacitorVoltage = 7.5;
inline constexpr double kBatterylessConverterEfficiency = 0.70;

} // namespace mouse::platforms

#endif // MOUSE_HARVEST_PLATFORMS_BATTERYLESS_HH
