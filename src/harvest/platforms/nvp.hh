/**
 * @file
 * Datasheet constants: an NVP-style nonvolatile-processor platform.
 *
 * Ma et al.'s NVP line (HPCA'15 and successors): a ferroelectric
 * nonvolatile processor whose near-free backup/restore lets it ride
 * a small ceramic buffer — here the 4.7 uF board variant, half an
 * order of magnitude under Mementos' electrolytic — paired with an
 * efficient on-chip boost converter.  One constexpr constant per
 * datasheet line item (docs/HARVESTING.md).
 */

#ifndef MOUSE_HARVEST_PLATFORMS_NVP_HH
#define MOUSE_HARVEST_PLATFORMS_NVP_HH

#include "common/types.hh"

namespace mouse::platforms
{

inline constexpr Farads kNvpCapacitance = 4.7e-6;
inline constexpr Volts kNvpMaxCapacitorVoltage = 3.3;
inline constexpr double kNvpConverterEfficiency = 0.90;

} // namespace mouse::platforms

#endif // MOUSE_HARVEST_PLATFORMS_NVP_HH
