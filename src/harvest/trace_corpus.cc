#include "harvest/trace_corpus.hh"

#include "common/logging.hh"
#include "harvest/traces/piezo_impulse.hh"
#include "harvest/traces/rf_bursty.hh"
#include "harvest/traces/solar_day_night.hh"

namespace mouse
{

namespace
{

PowerTrace
mustParse(const char *json)
{
    PowerTraceError err;
    const std::optional<PowerTrace> trace =
        parsePowerTrace(json, &err);
    if (!trace) {
        mouse_fatal("embedded corpus trace failed to parse (line %zu: %s)",
                    err.line, err.message.c_str());
    }
    return *trace;
}

} // namespace

const std::vector<PowerTrace> &
powerTraceCorpus()
{
    static const std::vector<PowerTrace> corpus = {
        mustParse(traces::kSolarDayNightJson),
        mustParse(traces::kRfBurstyJson),
        mustParse(traces::kPiezoImpulseJson),
    };
    return corpus;
}

const PowerTrace *
corpusTrace(const std::string &name)
{
    for (const PowerTrace &t : powerTraceCorpus()) {
        if (t.name == name) {
            return &t;
        }
    }
    return nullptr;
}

std::vector<std::string>
corpusTraceNames()
{
    std::vector<std::string> names;
    for (const PowerTrace &t : powerTraceCorpus()) {
        names.push_back(t.name);
    }
    return names;
}

} // namespace mouse
