/**
 * @file
 * Benchmark datasets (paper Section VIII).
 *
 * The paper evaluates on MNIST, Human Activity Recognition (HAR)
 * and ADULT.  Those datasets are not available in this offline
 * environment, so we generate *synthetic equivalents with identical
 * shapes* — same feature counts, class counts and 8-bit fixed-point
 * precision — from per-class Gaussian prototypes.  Inference *cost*
 * (the paper's subject) depends only on these shapes plus model
 * sizes; accuracy columns are reported for the synthetic data and
 * flagged as not comparable to the paper (see DESIGN.md).
 */

#ifndef MOUSE_ML_DATASET_HH
#define MOUSE_ML_DATASET_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "common/types.hh"

namespace mouse
{

/** Feature vectors are 8-bit fixed point, as mapped onto MOUSE. */
using Features = std::vector<std::uint8_t>;

/** A labelled dataset. */
struct Dataset
{
    unsigned numFeatures = 0;
    unsigned numClasses = 0;
    std::vector<Features> x;
    std::vector<int> y;

    std::size_t size() const { return x.size(); }
};

/** Shapes matching the paper's benchmarks. */
enum class DataShape
{
    MnistLike,  ///< 784 features (28x28 pixels), 10 classes
    HarLike,    ///< 561 features, 6 activities
    AdultLike,  ///< 15 features, 2 classes
};

/** Feature/class counts for a shape. */
unsigned shapeFeatures(DataShape shape);
unsigned shapeClasses(DataShape shape);
std::string shapeName(DataShape shape);

/**
 * Generate a synthetic dataset: per-class prototype vectors with
 * additive Gaussian noise, quantized to 8 bits.
 *
 * @param shape Benchmark shape.
 * @param samples Number of samples.
 * @param seed RNG seed for the *samples* (deterministic).
 * @param noise Noise standard deviation in 8-bit LSBs; larger means
 *        harder classification.
 * @param proto_seed Seed for the per-class prototypes.  Train and
 *        test sets must share it (the default) to describe the same
 *        classification problem; vary only @p seed between them.
 */
Dataset makeSynthetic(DataShape shape, std::size_t samples,
                      std::uint64_t seed, double noise = 32.0,
                      std::uint64_t proto_seed = 0xC0FFEE);

/** Binarize features at a threshold (paper's MNIST (Binarized)). */
Dataset binarize(const Dataset &data, std::uint8_t threshold = 128);

/**
 * Load a dataset from CSV: one sample per line, features first
 * (integers 0..255), label last.  Lines starting with '#' and blank
 * lines are skipped.  This is the adoption path for users who *do*
 * have the real MNIST/HAR/ADULT files: export them to CSV and every
 * benchmark runs on real data.
 *
 * @param path File to read.
 * @param num_classes Number of label classes (labels must lie in
 *        [0, num_classes)).
 */
Dataset loadCsv(const std::string &path, unsigned num_classes);

/** Write a dataset in the same CSV format (round-trips loadCsv). */
void saveCsv(const Dataset &data, const std::string &path);

} // namespace mouse

#endif // MOUSE_ML_DATASET_HH
