/**
 * @file
 * Support vector machines with a degree-2 polynomial kernel
 * (paper Section III).
 *
 * Inference is the computation MOUSE accelerates: for each class's
 * binary classifier, dot the input against every support vector,
 * square, scale by the (integer) dual coefficient, and sum; the
 * arg-max classifier wins.  All inference arithmetic is integer —
 * the same fixed-point operations the gate-level compiler emits —
 * so a software prediction can be checked bit-for-bit against the
 * in-array program.
 *
 * Training happens "offline" (paper: in R) — here with a dual
 * kernel perceptron, which like SMO yields integer dual
 * coefficients over a support-vector subset, and is robust on the
 * synthetic datasets.
 */

#ifndef MOUSE_ML_SVM_HH
#define MOUSE_ML_SVM_HH

#include <cstdint>

#include "ml/dataset.hh"

namespace mouse
{

/** One binary (one-vs-rest) polynomial-kernel classifier. */
struct BinarySvm
{
    /** Support vectors (8-bit features, or bits when binarized). */
    std::vector<Features> supportVectors;
    /** Integer dual coefficients (alpha_i * y_i). */
    std::vector<std::int32_t> coefficients;
    /** Integer bias. */
    std::int64_t bias = 0;

    /** Decision value using pure integer arithmetic. */
    __int128 decision(const Features &x) const;
};

/** One-vs-rest multi-class SVM (paper Section III). */
struct SvmModel
{
    unsigned numClasses = 0;
    std::vector<BinarySvm> classifiers;

    /** Arg-max class prediction. */
    int predict(const Features &x) const;

    /** Total support vectors across all binary classifiers. */
    std::size_t totalSupportVectors() const;

    /** Largest per-classifier support-vector count. */
    std::size_t maxSupportVectors() const;
};

/** Integer dot product (u . v). */
std::int64_t dot(const Features &u, const Features &v);

/** Degree-2 polynomial kernel K(u, v) = (u . v)^2. */
__int128 polyKernel2(const Features &u, const Features &v);

/** Training hyper-parameters. */
struct SvmTrainConfig
{
    unsigned epochs = 3;
    /** Kernel values are rescaled by 2^-shift during training to
     *  keep the perceptron margin arithmetic in range. */
    unsigned kernelShift = 0;
};

/** Train a one-vs-rest kernel-perceptron SVM. */
SvmModel trainSvm(const Dataset &train,
                  const SvmTrainConfig &cfg = SvmTrainConfig{});

/** Classification accuracy in [0, 1]. */
double svmAccuracy(const SvmModel &model, const Dataset &test);

} // namespace mouse

#endif // MOUSE_ML_SVM_HH
