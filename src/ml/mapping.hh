/**
 * @file
 * Application mapping: SVM and BNN inference compiled onto the MOUSE
 * tile grid (paper Sections VI, VII, VIII).
 *
 * The mapping follows the paper's greedy scheme: pack as many
 * element pairs of the two vectors as fit into a single column (with
 * rows to spare for scratch bits), spill the rest to neighbouring
 * columns, run the element-wise multiply-accumulate serially per
 * column with full column- and tile-parallelism, then gather partial
 * sums with buffer-assisted row moves and finish with reduction
 * adds.
 *
 * Per-block instruction costs are not hand-estimated: each phase's
 * instruction mix is *measured* by running the real KernelBuilder on
 * a representative column and counting the instructions it emits.
 * The workload trace is those measured mixes replicated by the
 * layout's phase counts — so the performance model and the bit-exact
 * functional compiler can never drift apart.
 *
 * Fixed-point truncation: accumulators use the bit widths below
 * rather than full-precision growth (dot products truncate to
 * accBits, squares to squareBits, coefficient products to
 * scoreBits), matching the paper's fixed-point integer arithmetic.
 */

#ifndef MOUSE_ML_MAPPING_HH
#define MOUSE_ML_MAPPING_HH

#include <string>

#include "compile/builder.hh"
#include "ml/bnn.hh"
#include "ml/svm.hh"

namespace mouse
{

/** Accelerator geometry available to a workload. */
struct MouseShape
{
    unsigned numDataTiles = 64;
    unsigned tileRows = 1024;
    unsigned tileCols = 1024;
    /**
     * Power-budget knob (paper Section IV-C): cap on simultaneously
     * active columns.  0 means unlimited.  Lower caps trade latency
     * for peak power draw — "by adjusting the amount of parallelism
     * in the computation, the power consumption of MOUSE can be
     * finely tuned".
     */
    std::uint64_t maxActiveColumns = 0;

    std::uint64_t
    totalColumns() const
    {
        const std::uint64_t physical =
            static_cast<std::uint64_t>(numDataTiles) * tileCols;
        return maxActiveColumns > 0
                   ? std::min(maxActiveColumns, physical)
                   : physical;
    }
};

/** Shape of an SVM inference workload. */
struct SvmWorkload
{
    std::string name;
    unsigned numSupportVectors = 0;
    unsigned dim = 0;
    /** Feature precision: 8, or 1 for binarized inputs. */
    unsigned inputBits = 8;
    unsigned numClasses = 2;
    /** Dot-product accumulator width (truncated fixed point). */
    unsigned accBits = 24;
    /** Width kept after squaring the dot product. */
    unsigned squareBits = 32;
    /** Dual-coefficient precision. */
    unsigned coefBits = 8;
    /** Class-score accumulator width. */
    unsigned scoreBits = 40;

    /** Workload derived from a trained model's shape. */
    static SvmWorkload fromModel(const std::string &name,
                                 const SvmModel &model, unsigned dim,
                                 unsigned input_bits);
};

/** Derived layout facts, reported for documentation and tests. */
struct MappingInfo
{
    /** Element pairs packed per column (the paper's "as many as
     *  possible bits ... into a single column"). */
    unsigned elementsPerColumn = 0;
    /** Columns one dot product spans. */
    unsigned colsPerUnit = 0;
    /** Units (support vectors / neurons) processed per batch. */
    std::uint64_t unitsPerBatch = 0;
    /** Sequential batches needed. */
    unsigned batches = 0;
    /** Peak simultaneously active columns. */
    std::uint64_t peakActiveColumns = 0;
    /** Data footprint in MB (columns used x rows). */
    double dataMB = 0.0;
    /** Instruction footprint in MB (straight-line program). */
    double instrMB = 0.0;

    double
    totalMB() const
    {
        return dataMB + instrMB;
    }
};

/**
 * Build the compressed execution trace of one SVM inference.
 *
 * @param lib Gate library of the target technology.
 * @param work Workload shape.
 * @param shape Accelerator geometry.
 * @param info Optional out-parameter for layout facts.
 */
Trace buildSvmTrace(const GateLibrary &lib, const SvmWorkload &work,
                    const MouseShape &shape,
                    MappingInfo *info = nullptr);

/**
 * Build the compressed execution trace of one BNN inference for a
 * FINN / FP-BNN style MLP.
 */
Trace buildBnnTrace(const GateLibrary &lib, const BnnShape &net,
                    const MouseShape &shape,
                    MappingInfo *info = nullptr);

/**
 * Compile a *small* SVM binary classifier into a real runnable
 * program for the functional simulator: one support vector per
 * column block, used by the end-to-end examples and the
 * software-vs-array equivalence tests.
 *
 * The generated program leaves, for each support vector s (column
 * block s), the truncated value (sv_s . x)^2 at the rows returned in
 * @p square_out.
 *
 * @param kb Builder targeting the tile holding the data.
 * @param sv_rows Row of the first support-vector element bit.
 * @param x_rows Row of the first input element bit.
 * @param dim Elements per vector.
 * @param input_bits Feature precision.
 * @param acc_bits Dot accumulator width.
 * @param square_out Receives the rows of the squared dot product.
 */
void buildSmallSvmKernel(KernelBuilder &kb, RowAddr sv_rows,
                         RowAddr x_rows, unsigned dim,
                         unsigned input_bits, unsigned acc_bits,
                         Word &square_out);

/**
 * Compile one BNN neuron (paper Section III) for the functional
 * simulator: XNOR the weight bits against the activation bits,
 * popcount with a carry-save tree, and threshold — one neuron per
 * column, the exact computation buildBnnTrace prices at scale.
 *
 * Row layout (all even rows): weight bit i at w_base + 4*i,
 * activation bit i at x_base + 4*i.  The threshold is stored
 * per-column at *odd* rows thresh_base + 2*i (it meets the popcount
 * word on the odd bitline).
 *
 * @param kb Builder.
 * @param w_base First weight row.
 * @param x_base First activation row.
 * @param thresh_base First threshold row (odd).
 * @param k Number of weight/activation pairs.
 * @param count_out Receives the popcount word rows.
 * @param fires_out Receives the activation bit row (1 iff
 *        popcount >= threshold).
 */
void buildSmallBnnNeuronKernel(KernelBuilder &kb, RowAddr w_base,
                               RowAddr x_base, RowAddr thresh_base,
                               unsigned k, Word &count_out,
                               Val &fires_out);

} // namespace mouse

#endif // MOUSE_ML_MAPPING_HH
