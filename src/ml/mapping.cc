#include "mapping.hh"

#include <cmath>
#include <functional>

#include "common/logging.hh"

namespace mouse
{

namespace
{

/** Opcode histogram of a builder-generated kernel. */
struct InstrMix
{
    std::array<std::uint64_t,
               static_cast<std::size_t>(Opcode::kNumOpcodes)>
        counts{};
    unsigned scratchPeak = 0;

    std::uint64_t
    total() const
    {
        std::uint64_t t = 0;
        for (std::uint64_t c : counts) {
            t += c;
        }
        return t;
    }
};

/**
 * Measure the instruction mix of a kernel by actually compiling it.
 * The builder targets a scratch-only configuration; the measured
 * counts are exact because generated code is data-independent.
 */
InstrMix
measureMix(const GateLibrary &lib,
           const std::function<void(KernelBuilder &)> &body)
{
    ArrayConfig cfg;
    cfg.tileRows = 1024;
    cfg.tileCols = 1024;
    cfg.numDataTiles = 1;
    KernelBuilder kb(lib, cfg, 0, 0);
    body(kb);
    const Program prog = kb.finish();

    InstrMix mix;
    mix.scratchPeak = kb.scratchHighWater();
    for (const Instruction &inst : prog.instructions) {
        if (inst.op == Opcode::kHalt ||
            inst.op == Opcode::kActivateList ||
            inst.op == Opcode::kActivateRange) {
            continue;
        }
        ++mix.counts[static_cast<std::size_t>(inst.op)];
    }
    return mix;
}

/** Append @p repeats executions of a measured mix to the trace. */
void
emitMix(Trace &trace, const InstrMix &mix, unsigned touched_cols,
        unsigned active_after, std::uint64_t repeats)
{
    if (repeats == 0) {
        return;
    }
    for (std::size_t op = 0; op < mix.counts.size(); ++op) {
        if (mix.counts[op] > 0) {
            trace.append(static_cast<Opcode>(op), touched_cols,
                         active_after, mix.counts[op] * repeats);
        }
    }
}

/** Row-buffer gather moves: @p rows rows x read+write per tile. */
void
emitRowMoves(Trace &trace, const MouseShape &shape,
             std::uint64_t rows, unsigned tiles, unsigned active)
{
    trace.append(Opcode::kReadRow, shape.tileCols, active,
                 rows * tiles);
    trace.append(Opcode::kWriteRow, shape.tileCols, active,
                 rows * tiles);
}

unsigned
ceilDiv(std::uint64_t a, std::uint64_t b)
{
    return static_cast<unsigned>((a + b - 1) / b);
}

unsigned
bitsFor(std::uint64_t n)
{
    unsigned bits = 1;
    while ((1ull << bits) <= n) {
        ++bits;
    }
    return bits;
}

} // namespace

SvmWorkload
SvmWorkload::fromModel(const std::string &name, const SvmModel &model,
                       unsigned dim, unsigned input_bits)
{
    SvmWorkload work;
    work.name = name;
    work.numSupportVectors =
        static_cast<unsigned>(model.totalSupportVectors());
    work.dim = dim;
    work.inputBits = input_bits;
    work.numClasses = model.numClasses;
    if (input_bits == 1) {
        // Binarized dot products are popcounts of at most dim.
        work.accBits = bitsFor(dim);
        work.squareBits = 2 * work.accBits;
        work.scoreBits = work.squareBits + work.coefBits;
    }
    return work;
}

Trace
buildSvmTrace(const GateLibrary &lib, const SvmWorkload &work,
              const MouseShape &shape, MappingInfo *info)
{
    mouse_assert(work.numSupportVectors > 0 && work.dim > 0,
                 "empty workload");
    const bool binary = work.inputBits == 1;

    // -- Layout: element pairs per column -----------------------------
    // Per element pair: inputBits rows for the SV element + inputBits
    // for the input element; binarized MACs additionally keep their
    // AND products alive for the popcount tree.
    unsigned k;
    const unsigned reserve = 72;  // scratch + accumulator reserve
    if (binary) {
        k = (shape.tileRows - reserve) / 3;
    } else {
        k = (shape.tileRows - work.accBits - reserve) /
            (2 * work.inputBits);
    }
    mouse_assert(k >= 1, "tile rows cannot hold one element pair");
    k = std::min(k, work.dim);

    const unsigned cols_per_sv = ceilDiv(work.dim, k);
    const std::uint64_t sv_slots = shape.totalColumns() / cols_per_sv;
    mouse_assert(sv_slots > 0, "no column slots");
    const std::uint64_t units_per_batch =
        std::min<std::uint64_t>(work.numSupportVectors, sv_slots);
    const unsigned batches =
        ceilDiv(work.numSupportVectors, units_per_batch);
    const std::uint64_t active_mac = units_per_batch * cols_per_sv;
    const unsigned tiles_used = ceilDiv(active_mac, shape.tileCols);

    // -- Measured kernels ----------------------------------------------
    InstrMix mac_mix;
    if (binary) {
        // Whole-column binarized MAC: k AND products reduced by a
        // popcount tree.
        mac_mix = measureMix(lib, [&](KernelBuilder &kb) {
            std::vector<Val> products;
            products.reserve(k);
            for (unsigned i = 0; i < k; ++i) {
                products.push_back(
                    kb.andSame(kb.pinned(0), kb.pinned(2)));
            }
            Word count = kb.popcountTree(std::move(products));
            (void)count;
        });
    } else {
        // Per-element MAC: 8x8 multiply + accumulate into accBits.
        mac_mix = measureMix(lib, [&](KernelBuilder &kb) {
            const Word a = kb.pinnedWord(0, work.inputBits);
            const Word b = kb.pinnedWord(
                static_cast<RowAddr>(2 * work.inputBits),
                work.inputBits);
            const Word acc = kb.pinnedWord(
                static_cast<RowAddr>(4 * work.inputBits),
                work.accBits);
            Word p = kb.mulUnsigned(a, b);
            Word sum = kb.add(acc, p, /*grow=*/false);
            (void)sum;
        });
    }
    const InstrMix reduce_mix = measureMix(lib, [&](KernelBuilder &kb) {
        const Word a = kb.pinnedWord(0, work.accBits);
        const Word b = kb.pinnedWord(
            static_cast<RowAddr>(2 * work.accBits), work.accBits);
        Word s = kb.add(a, b, /*grow=*/false);
        (void)s;
    });
    const InstrMix square_mix = measureMix(lib, [&](KernelBuilder &kb) {
        const Word d = kb.pinnedWord(0, work.accBits);
        Word sq = kb.mulUnsigned(d, d);
        (void)sq;
    });
    const InstrMix coef_mix = measureMix(lib, [&](KernelBuilder &kb) {
        const Word sq = kb.pinnedWord(0, work.squareBits);
        const Word alpha = kb.pinnedWord(
            static_cast<RowAddr>(2 * work.squareBits), work.coefBits);
        Word scaled = kb.mulSigned(sq, alpha);
        (void)scaled;
    });
    const InstrMix score_add_mix =
        measureMix(lib, [&](KernelBuilder &kb) {
            const Word a = kb.pinnedWord(0, work.scoreBits);
            const Word b = kb.pinnedWord(
                static_cast<RowAddr>(2 * work.scoreBits),
                work.scoreBits);
            Word s = kb.add(a, b, /*grow=*/false);
            (void)s;
        });

    // -- Trace assembly ---------------------------------------------------
    Trace trace;
    const auto active =
        static_cast<unsigned>(std::min<std::uint64_t>(
            active_mac, shape.totalColumns()));
    for (unsigned batch = 0; batch < batches; ++batch) {
        // Activate the batch's column blocks.
        trace.append(Opcode::kActivateRange, active, active, 1);

        // Input distribution: the input vector's element slices are
        // written into every column (k * inputBits rows per tile).
        emitRowMoves(trace, shape,
                     static_cast<std::uint64_t>(k) * work.inputBits,
                     tiles_used, active);

        // Zero the dot-product accumulators.
        if (!binary) {
            trace.append(Opcode::kPreset0, active, active,
                         work.accBits);
        }

        // Element-wise MAC phase (serial over the packed elements,
        // parallel across all active columns).
        emitMix(trace, mac_mix, active, active, binary ? 1 : k);

        // Gather per-SV partial sums into the SV's first column:
        // buffer-shift moves then reduction adds.
        if (cols_per_sv > 1) {
            emitRowMoves(trace, shape,
                         static_cast<std::uint64_t>(cols_per_sv - 1) *
                             work.accBits,
                         tiles_used,
                         static_cast<unsigned>(units_per_batch));
            emitMix(trace, reduce_mix,
                    static_cast<unsigned>(units_per_batch),
                    static_cast<unsigned>(units_per_batch),
                    cols_per_sv - 1);
        }

        // Kernel tail per SV: square, then coefficient multiply.
        emitMix(trace, square_mix,
                static_cast<unsigned>(units_per_batch),
                static_cast<unsigned>(units_per_batch), 1);
        emitMix(trace, coef_mix,
                static_cast<unsigned>(units_per_batch),
                static_cast<unsigned>(units_per_batch), 1);

        // Class-score reduction: tree-sum the per-SV terms of each
        // classifier (log2 rounds of shift-move + add).
        const std::uint64_t per_class =
            std::max<std::uint64_t>(1,
                                    units_per_batch / work.numClasses);
        const unsigned rounds = bitsFor(per_class - 1);
        std::uint64_t live = units_per_batch;
        for (unsigned r = 0; r < rounds; ++r) {
            live = std::max<std::uint64_t>(live / 2, work.numClasses);
            emitRowMoves(trace, shape, work.scoreBits, tiles_used,
                         static_cast<unsigned>(live));
            emitMix(trace, score_add_mix,
                    static_cast<unsigned>(live),
                    static_cast<unsigned>(live), 1);
        }
    }
    // Arg-max: pairwise score comparisons in the score columns.
    emitMix(trace, score_add_mix, work.numClasses, work.numClasses,
            work.numClasses - 1);

    if (info) {
        info->elementsPerColumn = k;
        info->colsPerUnit = cols_per_sv;
        info->unitsPerBatch = units_per_batch;
        info->batches = batches;
        info->peakActiveColumns = active;
        info->dataMB =
            static_cast<double>(active_mac) * shape.tileRows /
            (8.0 * 1024 * 1024);
        info->instrMB = static_cast<double>(trace.totalInstructions()) *
                        8.0 / (1024 * 1024);
    }
    return trace;
}

Trace
buildBnnTrace(const GateLibrary &lib, const BnnShape &net,
              const MouseShape &shape, MappingInfo *info)
{
    // Per column: k (weight, activation) pairs plus the XNOR products
    // kept alive for the popcount tree.
    const unsigned reserve = 64;
    const unsigned k = (shape.tileRows - reserve) / 3;
    mouse_assert(k >= 1, "tile too small for BNN mapping");

    Trace trace;
    MappingInfo local;
    local.elementsPerColumn = k;

    // The per-column MAC kernel depends only on the slice width; use
    // the full-k version (boundary columns are cheaper; charging the
    // full slice is slightly conservative).
    const InstrMix mac_mix = measureMix(lib, [&](KernelBuilder &kb) {
        std::vector<Val> products;
        products.reserve(k);
        for (unsigned i = 0; i < k; ++i) {
            products.push_back(
                kb.xnorFlip(kb.pinned(1), kb.pinned(3)));
        }
        Word count = kb.popcountTree(std::move(products));
        (void)count;
    });

    std::vector<unsigned> widths = net.hiddenWidths;
    widths.push_back(net.numClasses);
    unsigned in_bits = net.inputBits;
    std::uint64_t peak_cols = 0;
    std::uint64_t data_cols = 0;

    for (std::size_t layer = 0; layer < widths.size(); ++layer) {
        const unsigned out = widths[layer];
        const unsigned cols_per_neuron = ceilDiv(in_bits, k);
        const std::uint64_t cols =
            static_cast<std::uint64_t>(out) * cols_per_neuron;
        const std::uint64_t limit = shape.totalColumns();
        mouse_assert(limit >= cols_per_neuron,
                     "BNN layer exceeds the array; add tiles or "
                     "raise the parallelism cap");
        // Power-budgeted layouts process the layer in neuron chunks
        // (Section IV-C: parallelism traded for power draw).  Floor
        // the per-chunk neuron count so a chunk never exceeds the
        // column limit.
        const unsigned out_chunk = static_cast<unsigned>(std::min(
            static_cast<std::uint64_t>(out),
            limit / cols_per_neuron));
        const unsigned chunks = ceilDiv(out, out_chunk);
        const std::uint64_t chunk_cols =
            static_cast<std::uint64_t>(out_chunk) * cols_per_neuron;
        const unsigned tiles = ceilDiv(chunk_cols, shape.tileCols);
        const auto active = static_cast<unsigned>(chunk_cols);
        const unsigned acc_bits = bitsFor(in_bits);
        peak_cols = std::max(peak_cols, chunk_cols);
        data_cols += cols;

        for (unsigned chunk = 0; chunk < chunks; ++chunk) {
            trace.append(Opcode::kActivateRange, active, active, 1);

            // Distribute this layer's input activations into each
            // neuron's column slices.
            emitRowMoves(trace, shape, std::min(in_bits, k), tiles,
                         active);

            // XNOR + popcount-tree MAC in every column.
            emitMix(trace, mac_mix, active, active, 1);

            // Gather per-neuron partial counts and sum them.
            if (cols_per_neuron > 1) {
                emitRowMoves(trace, shape,
                             static_cast<std::uint64_t>(
                                 cols_per_neuron - 1) *
                                 acc_bits,
                             tiles, out_chunk);
                const InstrMix add_mix =
                    measureMix(lib, [&](KernelBuilder &kb) {
                        const Word a = kb.pinnedWord(0, acc_bits);
                        const Word b = kb.pinnedWord(
                            static_cast<RowAddr>(2 * acc_bits),
                            acc_bits);
                        Word s = kb.add(a, b, false);
                        (void)s;
                    });
                emitMix(trace, add_mix, out_chunk, out_chunk,
                        cols_per_neuron - 1);
            }

            // Threshold (batch-norm fold): count - threshold.
            const InstrMix thresh_mix =
                measureMix(lib, [&](KernelBuilder &kb) {
                    const Word count = kb.pinnedWord(0, acc_bits);
                    const Word thresh = kb.pinnedWord(
                        static_cast<RowAddr>(2 * acc_bits),
                        acc_bits);
                    Word diff = kb.sub(count, thresh);
                    (void)diff;
                });
            emitMix(trace, thresh_mix, out_chunk, out_chunk, 1);
        }

        in_bits = out;
    }

    if (info) {
        local.colsPerUnit = ceilDiv(net.inputBits, k);
        local.unitsPerBatch = widths.front();
        local.batches = 1;
        local.peakActiveColumns = peak_cols;
        local.dataMB = static_cast<double>(data_cols) *
                       shape.tileRows / (8.0 * 1024 * 1024);
        local.instrMB =
            static_cast<double>(trace.totalInstructions()) * 8.0 /
            (1024 * 1024);
        *info = local;
    }
    return trace;
}

void
buildSmallBnnNeuronKernel(KernelBuilder &kb, RowAddr w_base,
                          RowAddr x_base, RowAddr thresh_base,
                          unsigned k, Word &count_out,
                          Val &fires_out)
{
    mouse_assert(k > 0, "empty neuron");
    mouse_assert((w_base & 1) == 0 && (x_base & 1) == 0,
                 "weights/activations live on even rows");
    mouse_assert((thresh_base & 1) == 1,
                 "threshold must sit on odd rows (popcount parity)");
    std::vector<Val> products;
    products.reserve(k);
    for (unsigned i = 0; i < k; ++i) {
        // XNOR flips parity: even-row operands, odd-row products.
        products.push_back(kb.xnorFlip(
            kb.pinned(static_cast<RowAddr>(w_base + 4 * i)),
            kb.pinned(static_cast<RowAddr>(x_base + 4 * i))));
    }
    count_out = kb.popcountTree(std::move(products));

    // Threshold compare: diff = count - threshold (two's complement,
    // both on the odd bitline); the neuron fires iff diff >= 0.
    // Both operands are *unsigned*, so zero-extend them by one bit
    // before the signed subtract (the popcount can fill its top
    // bit, which sign extension would misread as negative).
    unsigned thresh_bits = 1;
    while ((1u << thresh_bits) <= k) {
        ++thresh_bits;
    }
    const Val zero = kb.constant(0, 1);
    Word count_ext = count_out;
    count_ext.push_back(zero);
    Word thresh = kb.pinnedWord(thresh_base, thresh_bits);
    thresh.push_back(zero);
    Word diff = kb.sub(count_ext, thresh);
    fires_out = kb.not_(diff.back());
    kb.freeWord(diff);
    kb.free(zero);
}

void
buildSmallSvmKernel(KernelBuilder &kb, RowAddr sv_rows, RowAddr x_rows,
                    unsigned dim, unsigned input_bits,
                    unsigned acc_bits, Word &square_out)
{
    Word acc = kb.zeroWord(acc_bits);
    for (unsigned e = 0; e < dim; ++e) {
        const Word sv = kb.pinnedWord(
            static_cast<RowAddr>(sv_rows + e * 2 * input_bits),
            input_bits);
        const Word x = kb.pinnedWord(
            static_cast<RowAddr>(x_rows + e * 2 * input_bits),
            input_bits);
        Word p = kb.mulUnsigned(sv, x);
        Word next = kb.add(acc, p, /*grow=*/false);
        kb.freeWord(acc);
        kb.freeWord(p);
        acc = std::move(next);
    }
    square_out = kb.mulUnsigned(acc, acc);
    kb.freeWord(acc);
}

} // namespace mouse
